#include "sim/event_queue.hpp"

#include "util/expects.hpp"

namespace ftcf::sim {

void EventQueue::schedule(SimTime at, Callback fn) {
  util::expects(at >= now_, "cannot schedule an event in the past");
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; the callback is moved out via const_cast,
  // which is safe because the entry is popped before the callback runs.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.at;
  ++processed_;
  entry.fn();
  return true;
}

bool EventQueue::run(std::uint64_t limit) {
  while (limit-- > 0) {
    if (!step()) return true;
  }
  return heap_.empty();
}

}  // namespace ftcf::sim
