// Discrete-event engine: a time-ordered queue of callbacks.
//
// Ties are broken by insertion sequence so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace ftcf::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `at` (>= now()).
  void schedule(SimTime at, Callback fn);
  /// Schedule `fn` `delay` ns from now.
  void schedule_in(SimTime delay, Callback fn) {
    schedule(now_ + delay, std::move(fn));
  }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

  /// Pop and run the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `limit` events were processed.
  /// Returns true when drained.
  bool run(std::uint64_t limit = UINT64_MAX);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace ftcf::sim
