// Flow-level (fluid) network simulator for paper-scale sweeps.
//
// Instead of packets, each in-flight message is a fluid flow along its
// routed path; link bandwidth is shared max-min fairly among the flows
// crossing it, and the simulation advances between flow starts/completions.
// This captures the first-order effect the paper measures — multiple flows
// squeezed through one oversubscribed link — at a cost independent of
// message size, which makes 1944-node full-sequence runs practical. It does
// not model input-queue head-of-line blocking (the packet simulator does);
// in exchange every stage of a large sequence can be simulated exactly.
//
// Per-message startup (MPI software overhead + path propagation) is charged
// serially before a host's next flow becomes active, reproducing the
// message-size dependence of effective bandwidth.
#pragma once

#include "obs/sim_hooks.hpp"
#include "routing/lft.hpp"
#include "sim/ib_calibration.hpp"
#include "sim/metrics.hpp"
#include "sim/traffic.hpp"

namespace ftcf::sim {

class FlowSim {
 public:
  FlowSim(const topo::Fabric& fabric, const route::ForwardingTables& tables,
          Calibration calibration = Calibration::qdr_pcie_gen2());

  /// Attach the observability layer; the fluid simulator records flow
  /// start/end events, stage markers and per-step live-flow/aggregate-rate
  /// series (it has no queues, so there are no link samples). Observation
  /// never changes simulation behavior.
  void set_observer(const obs::SimObserver& observer) noexcept {
    obs_ = observer;
  }

  [[nodiscard]] RunResult run(const std::vector<StageTraffic>& stages,
                              Progression progression,
                              std::uint64_t event_limit = 100'000'000ULL);

 private:
  const topo::Fabric* fabric_;
  const route::ForwardingTables* tables_;
  Calibration calib_;
  obs::SimObserver obs_;
};

}  // namespace ftcf::sim
