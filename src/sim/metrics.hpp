// Result records shared by the simulators.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace ftcf::sim {

struct RunResult {
  SimTime makespan = 0;                ///< time of last delivery
  std::uint64_t bytes_delivered = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t packets_delivered = 0; ///< packet sim only
  /// Packets that arrived after a later packet of the same message (packet
  /// sim only; nonzero under adaptive routing, the §I transport objection).
  std::uint64_t out_of_order_packets = 0;
  std::uint64_t events = 0;
  std::uint64_t active_hosts = 0;      ///< hosts that injected anything

  /// Mean per-host goodput in bytes/s: bytes / (makespan * active_hosts).
  double effective_bw_per_host = 0.0;
  /// effective_bw_per_host normalized to the host (PCIe) injection rate —
  /// the y-axis of paper Fig. 2.
  double normalized_bw = 0.0;

  util::Accumulator message_latency_us;  ///< injection-start to last byte

  // Per-directed-link observations, indexed by the source PortId
  // (packet sim only; empty for the fluid simulator).
  std::vector<SimTime> link_busy_ns;          ///< serialization time carried
  std::vector<std::uint32_t> max_queue_depth; ///< input-queue high-watermark

  /// Fraction of the makespan a link spent transmitting.
  [[nodiscard]] double link_utilization(std::size_t port) const {
    if (makespan <= 0 || port >= link_busy_ns.size()) return 0.0;
    return static_cast<double>(link_busy_ns[port]) /
           static_cast<double>(makespan);
  }
};

}  // namespace ftcf::sim
