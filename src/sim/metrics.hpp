// Result records shared by the simulators.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace ftcf::sim {

struct RunResult {
  /// Time of the last delivery, in integer nanoseconds of simulation time
  /// (SimTime *is* nanoseconds; see sim/time.hpp). Same unit as
  /// link_busy_ns below — the two are directly comparable.
  SimTime makespan = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t packets_delivered = 0; ///< packet sim only
  /// Packets that arrived after a later packet of the same message (packet
  /// sim only; nonzero under adaptive routing, the §I transport objection).
  std::uint64_t out_of_order_packets = 0;
  /// Simulation events dispatched. Counts the same events for any partition
  /// count (stage-barrier bookkeeping events are excluded), so serial and
  /// PDES runs of one workload report identical totals.
  std::uint64_t events = 0;
  std::uint64_t active_hosts = 0;      ///< hosts that injected anything

  // Resilience accounting (packet sim only; all zero on a pristine fabric
  // with resilience off — the default path has no timeouts or drops).
  std::uint64_t packets_dropped = 0;        ///< dropped at a dead/unrouted port
  std::uint64_t packets_retransmitted = 0;  ///< timeout-driven re-injections
  std::uint64_t duplicate_packets = 0;      ///< late twins of resolved packets
  std::uint64_t messages_failed = 0;        ///< retries exhausted / host cut off
  std::uint64_t bytes_failed = 0;           ///< bytes written off as undeliverable
  std::uint64_t link_down_events = 0;       ///< scripted mid-run cable deaths

  /// Mean per-host goodput in bytes/s: bytes / (makespan * active_hosts).
  double effective_bw_per_host = 0.0;
  /// effective_bw_per_host normalized to the host (PCIe) injection rate —
  /// the y-axis of paper Fig. 2.
  double normalized_bw = 0.0;

  util::Accumulator message_latency_us;  ///< injection-start to last byte

  // Per-directed-link observations, indexed by the source PortId
  // (packet sim only; empty for the fluid simulator).
  /// Total serialization time carried per link, in nanoseconds of simulation
  /// time (the same unit as `makespan`). A packet's full serialization time
  /// is charged when its transfer is granted, so the last grant can overhang
  /// the final delivery slightly.
  std::vector<SimTime> link_busy_ns;
  std::vector<std::uint32_t> max_queue_depth; ///< input-queue high-watermark

  /// Fraction of the makespan a link spent transmitting, clamped to [0, 1]
  /// (the grant-time charging above can push the raw ratio of a saturated
  /// link marginally past 1). For timelines instead of one end-of-run
  /// scalar, attach an obs::SimObserver and read the
  /// "packet_sim.link_util.*" series.
  [[nodiscard]] double link_utilization(std::size_t port) const {
    if (makespan <= 0 || port >= link_busy_ns.size()) return 0.0;
    const double util = static_cast<double>(link_busy_ns[port]) /
                        static_cast<double>(makespan);
    return util < 0.0 ? 0.0 : (util > 1.0 ? 1.0 : util);
  }
};

}  // namespace ftcf::sim
