#include "sim/partition.hpp"

#include <algorithm>

#include "util/expects.hpp"

namespace ftcf::sim {

using topo::NodeId;
using util::expects;

PartitionMap partition_fabric(const topo::Fabric& fabric,
                              std::uint32_t partitions) {
  // Count the leaf (level-1) switches; they anchor the subtree groups.
  std::vector<NodeId> leaves;
  for (const NodeId sw : fabric.switch_ids())
    if (fabric.node(sw).level == 1) leaves.push_back(sw);

  PartitionMap map;
  const auto num_leaves = static_cast<std::uint32_t>(leaves.size());
  map.num_partitions = std::clamp<std::uint32_t>(
      partitions, 1, std::max<std::uint32_t>(1, num_leaves));
  const std::uint32_t p = map.num_partitions;

  map.owner_of_node.assign(fabric.num_nodes(), 0);
  if (p > 1) {
    // Leaf l of L total -> contiguous group l*P/L (balanced to within one).
    for (std::uint32_t l = 0; l < num_leaves; ++l) {
      const auto group = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(l) * p) / num_leaves);
      map.owner_of_node[leaves[l]] = group;
    }
    // Upper levels: round-robin by ordinal, spreading spine load.
    for (const NodeId sw : fabric.switch_ids()) {
      const topo::Node& node = fabric.node(sw);
      if (node.level >= 2) map.owner_of_node[sw] = node.ordinal % p;
    }
    // Hosts live with their leaf subtree.
    for (std::uint64_t h = 0; h < fabric.num_hosts(); ++h) {
      const NodeId host = fabric.host_node(h);
      map.owner_of_node[host] =
          map.owner_of_node[fabric.leaf_switch_of_host(h)];
    }
  }

  map.owner_of_host.assign(fabric.num_hosts(), 0);
  map.hosts_of.resize(p);
  for (std::uint64_t h = 0; h < fabric.num_hosts(); ++h) {
    const std::uint32_t owner = map.owner_of_node[fabric.host_node(h)];
    map.owner_of_host[h] = owner;
    map.hosts_of[owner].push_back(h);
  }
  map.nodes_of.resize(p);
  for (NodeId n = 0; n < fabric.num_nodes(); ++n)
    map.nodes_of[map.owner_of_node[n]].push_back(n);

  for (std::uint32_t g = 0; g < p; ++g)
    expects(!map.hosts_of[g].empty(),
            "every partition must own at least one traffic source");
  return map;
}

}  // namespace ftcf::sim
