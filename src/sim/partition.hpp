// Fabric partitioning for the parallel discrete-event packet simulator.
//
// A partition (logical process, LP) owns a region of the fabric: every host
// and switch node maps to exactly one partition, and an LP's event loop only
// touches state of ports on nodes it owns. The scheme follows the fat-tree
// structure:
//
//   - Leaf subtrees stay together: level-1 switches are split into
//     `num_partitions` contiguous ordinal ranges, and every host lives in
//     the partition of its leaf switch. Host <-> leaf traffic (the majority
//     of hops) therefore never crosses a partition boundary.
//   - Upper-level switches (level >= 2) are dealt round-robin by ordinal, so
//     spine load spreads evenly across partitions.
//
// The map is a pure function of (fabric, num_partitions) — no randomness, no
// thread-count dependence — which is what makes the PDES determinism
// contract (same seed + same partition count => byte-identical results at
// any --threads) possible.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/fabric.hpp"

namespace ftcf::sim {

/// Node -> partition ownership map. Built by partition_fabric(); all lookup
/// tables are dense and index-addressed for hot-loop use.
struct PartitionMap {
  std::uint32_t num_partitions = 1;
  std::vector<std::uint32_t> owner_of_node;  ///< by NodeId
  std::vector<std::uint32_t> owner_of_host;  ///< by host index
  /// Host indices per partition, ascending (kick order within an LP).
  std::vector<std::vector<std::uint64_t>> hosts_of;
  /// Node ids per partition, ascending (port-scan order within an LP).
  std::vector<std::vector<topo::NodeId>> nodes_of;

  [[nodiscard]] std::uint32_t owner_node(topo::NodeId node) const {
    return owner_of_node[node];
  }
  [[nodiscard]] std::uint32_t owner_host(std::uint64_t host) const {
    return owner_of_host[host];
  }
  [[nodiscard]] std::uint32_t owner_port(const topo::Fabric& fabric,
                                         topo::PortId port) const {
    return owner_of_node[fabric.port(port).node];
  }
};

/// Build the ownership map described above. `partitions` is clamped to
/// [1, number of leaf switches] (a partition without a leaf subtree would
/// own no traffic sources); fabrics without switches collapse to one
/// partition.
[[nodiscard]] PartitionMap partition_fabric(const topo::Fabric& fabric,
                                            std::uint32_t partitions);

}  // namespace ftcf::sim
