#include "sim/packet_sim.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <utility>

#include "obs/profile.hpp"
#include "sim/typed_queue.hpp"
#include "util/expects.hpp"
#include "util/rng.hpp"

namespace ftcf::sim {

using topo::Fabric;
using topo::NodeKind;
using topo::PortId;
using util::expects;

namespace {

/// Sentinel: this packet has no pending-table entry (non-resilient runs).
constexpr std::uint32_t kNoPend = std::numeric_limits<std::uint32_t>::max();

/// The single source of truth for per-port credit grants and rates: the
/// engine initializes itself from this, and PacketSim::buffer_topology()
/// exposes the same values to static analysis.
PortBuffer port_buffer(const Fabric& fabric, const Calibration& calib,
                       PortId pid) {
  const topo::Port& pt = fabric.port(pid);
  const topo::Port& peer = fabric.port(pt.peer);
  const bool to_switch = fabric.node(peer.node).kind == NodeKind::kSwitch;
  const bool host_side = fabric.node(pt.node).kind == NodeKind::kHost ||
                         fabric.node(peer.node).kind == NodeKind::kHost;
  PortBuffer buffer;
  buffer.finite = to_switch;
  buffer.credits = to_switch ? calib.input_buffer_packets
                             : std::numeric_limits<std::uint32_t>::max() / 2;
  buffer.rate_bytes_per_sec =
      host_side ? calib.host_bw_bytes_per_sec : calib.link_bw_bytes_per_sec;
  return buffer;
}

struct Packet {
  std::uint32_t dst = 0;
  std::uint32_t bytes = 0;
  std::uint32_t msg = 0;
  std::uint32_t seq = 0;  ///< position within the message (reorder tracking)
  std::uint32_t pend = kNoPend;  ///< pending-table slot (resilient runs only)
};

enum class EvType : std::uint8_t {
  kArrive,
  kOutFree,
  kCredit,
  kHostKick,
  kTimeout,   ///< per-packet retransmit timer (resilient runs)
  kLinkDown,  ///< scripted cable death (both directions)
  kLinkUp,    ///< scripted cable revival
};

struct Ev {
  EvType type;
  PortId port;   ///< kArrive: receiving port; kOutFree/kCredit: source port;
                 ///< kHostKick: host index; kTimeout: pending-table slot;
                 ///< kLinkDown/kLinkUp: the cable's scheduled endpoint
  Packet pkt;    ///< kArrive only
};

struct MsgMeta {
  std::uint64_t remaining = 0;
  SimTime start = -1;
  std::uint32_t src = 0;
  std::uint32_t max_seq_seen = 0;
  std::uint16_t stage = obs::kNoStage;  ///< CPS stage the message belongs to
  bool any_delivered = false;
  bool failed = false;  ///< some bytes were written off (resilient runs)
};

struct HostCursor {
  std::vector<Message> msgs;       ///< messages of the current phase
  std::vector<std::uint16_t> stage_of;  ///< CPS stage per message (parallel)
  std::size_t index = 0;           ///< current message
  std::uint64_t offset = 0;        ///< bytes already injected of it
  std::uint32_t first_msg_id = 0;  ///< msg ids are first_msg_id + index

  [[nodiscard]] bool done() const noexcept { return index >= msgs.size(); }
};

/// Clamp a stage index into the trace event's uint16 field.
std::uint16_t stage_tag(std::size_t stage) noexcept {
  return stage >= obs::kNoStage ? obs::kNoStage
                                : static_cast<std::uint16_t>(stage);
}

/// One in-flight packet awaiting delivery confirmation (resilient runs).
/// Resolution is single-shot: the first delivery (or the final timeout)
/// claims the slot; late twins of a retransmitted packet count as duplicates
/// and touch no message accounting — so bytes are never double-counted.
struct Pending {
  Packet pkt;
  std::uint32_t attempts = 1;  ///< sends so far (first injection included)
  bool resolved = false;
};

class Engine {
 public:
  Engine(const Fabric& fabric, const route::ForwardingTables& tables,
         const Calibration& calib, UpSelection up_selection,
         SimTime jitter_max_ns, std::uint64_t jitter_seed,
         const obs::SimObserver& obs, const fault::FaultState* faults,
         const Resilience& resilience, bool resilience_forced)
      : fabric_(fabric),
        tables_(tables),
        calib_(calib),
        up_selection_(up_selection),
        jitter_max_ns_(jitter_max_ns),
        jitter_seed_(jitter_seed),
        obs_(obs),
        faults_(faults),
        resilience_(resilience) {
    const std::uint32_t ports = fabric.num_ports();
    busy_.assign(ports, false);
    credits_.assign(ports, 0);
    rr_.assign(ports, 0);
    busy_ns_.assign(ports, 0);
    max_depth_.assign(ports, 0);
    queues_.resize(ports);
    for (PortId pid = 0; pid < ports; ++pid) {
      const PortBuffer buffer = port_buffer(fabric, calib, pid);
      credits_[pid] = buffer.credits;
      rate_.push_back(buffer.rate_bytes_per_sec);
    }
    cursors_.resize(fabric.num_hosts());
    retx_.resize(fabric.num_hosts());
    dead_.assign(ports, 0);
    revives_at_.assign(ports, kNever);
    resilient_ = resilience_forced || (faults_ != nullptr && !faults_->pristine());
    if (faults_ != nullptr) {
      expects(&faults_->fabric() == &fabric_,
              "fault state resolved against a different fabric");
      for (PortId pid = 0; pid < ports; ++pid) {
        if (!faults_->link_up(pid)) dead_[pid] = 1;
        rate_[pid] *= faults_->rate_factor(pid);
      }
    }
    if (resilient_) {
      expects(resilience_.timeout_ns > 0 && resilience_.max_attempts > 0,
              "resilience policy must allow at least one timed attempt");
    }
    if (obs_.sampling()) {
      sampling_ = true;
      next_sample_ = obs_.sample_period_ns;
      sampled_busy_.assign(ports, 0);
    }
  }

  RunResult run(const std::vector<StageTraffic>& stages,
                Progression progression, std::uint64_t event_limit) {
    FTCF_PROF_SCOPE("packet_sim_run");
    progression_ = progression;
    stages_ = &stages;
    next_stage_ = 0;

    if (progression == Progression::kAsync) {
      // Concatenate every stage into one per-host sequence. Stage identity
      // is lost (hosts free-run), so the trace gets begin markers only.
      std::vector<HostCursor> cursors(fabric_.num_hosts());
      for (std::size_t s = 0; s < stages.size(); ++s) {
        const StageTraffic& st = stages[s];
        expects(st.sends.size() == fabric_.num_hosts(),
                "stage traffic must cover every host");
        for (std::uint64_t h = 0; h < st.sends.size(); ++h) {
          cursors[h].msgs.insert(cursors[h].msgs.end(), st.sends[h].begin(),
                                 st.sends[h].end());
          cursors[h].stage_of.insert(cursors[h].stage_of.end(),
                                     st.sends[h].size(), stage_tag(s));
        }
        if (obs_.trace)
          trace_event(0, 0, obs::EventKind::kStageBegin,
                      static_cast<std::uint32_t>(s), 0, 0, stage_tag(s));
      }
      load_cursors(std::move(cursors));
      next_stage_ = stages.size();
    } else {
      advance_stage();
    }

    if (faults_ != nullptr) schedule_flaps();
    kick_all_hosts();

    while (!queue_.empty()) {
      expects(queue_.processed() < event_limit,
              "packet simulation exceeded its event limit");
      if (sampling_ && queue_.next_time() > next_sample_)
        take_samples(queue_.next_time());
      dispatch(queue_.pop());
    }
    if (sampling_) {
      take_samples(last_delivery_ + 1);
      // Close the final partial window so short runs still get >= 1 sample.
      if (last_delivery_ > last_sample_at_) sample_at(last_delivery_);
    }
    expects(outstanding_msgs_ == 0 && next_stage_ >= stages_->size(),
            "simulation drained with undelivered traffic");

    RunResult result;
    result.makespan = last_delivery_;
    result.bytes_delivered = bytes_delivered_;
    result.messages_delivered = messages_delivered_;
    result.packets_delivered = packets_delivered_;
    result.events = queue_.processed();
    result.active_hosts = active_hosts_;
    result.out_of_order_packets = out_of_order_;
    result.message_latency_us = latency_;
    result.link_busy_ns = busy_ns_;
    result.max_queue_depth = max_depth_;
    result.packets_dropped = packets_dropped_;
    result.packets_retransmitted = packets_retransmitted_;
    result.duplicate_packets = duplicate_packets_;
    result.messages_failed = messages_failed_;
    result.bytes_failed = bytes_failed_;
    result.link_down_events = link_down_events_;
    if (result.makespan > 0 && result.active_hosts > 0) {
      result.effective_bw_per_host =
          static_cast<double>(result.bytes_delivered) /
          to_seconds(result.makespan) /
          static_cast<double>(result.active_hosts);
      result.normalized_bw =
          result.effective_bw_per_host / calib_.host_bw_bytes_per_sec;
    }
    if (obs_.metrics) export_run_metrics(result);
    return result;
  }

 private:
  /// Assemble one tagged trace event (brace-init would mis-map the new
  /// vl/stage fields at the many call sites, so build it explicitly).
  void trace_event(SimTime at, SimTime dur, obs::EventKind kind,
                   std::uint32_t a, std::uint32_t b, std::uint32_t c,
                   std::uint16_t stage = obs::kNoStage, std::uint8_t vl = 0) {
    obs::TraceEvent ev;
    ev.at = at;
    ev.dur = dur;
    ev.kind = kind;
    ev.vl = vl;
    ev.stage = stage;
    ev.a = a;
    ev.b = b;
    ev.c = c;
    obs_.trace->record(ev);
  }

  // --- traffic loading ------------------------------------------------------

  void load_cursors(std::vector<HostCursor> cursors) {
    std::uint64_t active = 0;
    for (std::uint64_t h = 0; h < cursors.size(); ++h) {
      HostCursor& cur = cursors[h];
      cur.index = 0;
      cur.offset = 0;
      cur.first_msg_id = static_cast<std::uint32_t>(msgs_.size());
      for (std::size_t i = 0; i < cur.msgs.size(); ++i) {
        const Message& msg = cur.msgs[i];
        expects(msg.dst < fabric_.num_hosts() && msg.dst != h,
                "message destination invalid");
        MsgMeta meta{msg.bytes, -1, static_cast<std::uint32_t>(h)};
        if (i < cur.stage_of.size()) meta.stage = cur.stage_of[i];
        msgs_.push_back(meta);
        ++outstanding_msgs_;
      }
      if (!cur.msgs.empty()) ++active;
    }
    active_hosts_ = std::max(active_hosts_, active);
    cursors_ = std::move(cursors);
  }

  /// Load the next synchronized stage (if any) and kick every host.
  void advance_stage() {
    if (obs_.trace && stage_active_) {
      trace_event(queue_.now(), 0, obs::EventKind::kStageEnd, current_stage_,
                  0, 0, stage_tag(current_stage_));
      stage_active_ = false;
    }
    while (next_stage_ < stages_->size()) {
      const std::size_t stage = next_stage_;
      const StageTraffic& st = (*stages_)[next_stage_++];
      expects(st.sends.size() == fabric_.num_hosts(),
              "stage traffic must cover every host");
      std::vector<HostCursor> cursors(fabric_.num_hosts());
      for (std::uint64_t h = 0; h < st.sends.size(); ++h) {
        cursors[h].msgs = st.sends[h];
        cursors[h].stage_of.assign(st.sends[h].size(), stage_tag(stage));
      }
      load_cursors(std::move(cursors));
      if (outstanding_msgs_ > 0) {  // non-empty stage loaded
        if (obs_.trace) {
          current_stage_ = static_cast<std::uint32_t>(stage);
          stage_active_ = true;
          trace_event(queue_.now(), 0, obs::EventKind::kStageBegin,
                      current_stage_, 0, 0, stage_tag(stage));
        }
        return;
      }
    }
  }

  /// Translate the fault state's flap and repair schedules into
  /// kLinkDown/kLinkUp events and remember each port's revival time
  /// (consulted while it is dead to decide wait-vs-drop).
  void schedule_flaps() {
    for (const fault::FlapEvent& f : faults_->flaps()) {
      const PortId peer = fabric_.port(f.port).peer;
      revives_at_[f.port] = f.up_at;
      revives_at_[peer] = f.up_at;
      queue_.push(f.down_at, Ev{EvType::kLinkDown, f.port, {}});
      if (f.up_at != kNever) queue_.push(f.up_at, Ev{EvType::kLinkUp, f.port, {}});
    }
    // A repaired cable is dead from t=0 (the static resolution already
    // marked it) and revives at up_at — exactly a flap whose down event
    // has already happened. Setting revives_at_ before the first host kick
    // makes senders park on the dead cable instead of writing it off.
    for (const fault::RepairEvent& r : faults_->repairs()) {
      const PortId peer = fabric_.port(r.port).peer;
      revives_at_[r.port] = r.up_at;
      revives_at_[peer] = r.up_at;
      queue_.push(r.up_at, Ev{EvType::kLinkUp, r.port, {}});
    }
  }

  // --- event dispatch -------------------------------------------------------

  /// Start (or resume) every host, applying per-host stage jitter when
  /// configured (§VII: OS jitter delays entry into each collective stage).
  void kick_all_hosts() {
    for (std::uint64_t h = 0; h < fabric_.num_hosts(); ++h) {
      if (jitter_max_ns_ <= 0) {
        host_try_send(h);
        continue;
      }
      util::SplitMix64 mix(jitter_seed_ ^ (next_stage_ * 0x9e37ULL) ^ h);
      const auto delay = static_cast<SimTime>(
          mix.next() % static_cast<std::uint64_t>(jitter_max_ns_ + 1));
      queue_.push(queue_.now() + delay,
                  Ev{EvType::kHostKick, static_cast<PortId>(h), {}});
    }
  }

  void dispatch(const Ev& ev) {
    switch (ev.type) {
      case EvType::kArrive: on_arrive(ev.port, ev.pkt); break;
      case EvType::kOutFree: on_out_free(ev.port); break;
      case EvType::kCredit: on_credit(ev.port); break;
      case EvType::kHostKick: host_try_send(ev.port); break;
      case EvType::kTimeout: on_timeout(ev.port); break;
      case EvType::kLinkDown: on_link_down(ev.port); break;
      case EvType::kLinkUp: on_link_up(ev.port); break;
    }
  }

  void on_arrive(PortId in_port, const Packet& pkt) {
    const topo::Port& pt = fabric_.port(in_port);
    const topo::Node& node = fabric_.node(pt.node);
    if (node.kind == NodeKind::kHost) {
      deliver(pt.node, pkt);
      return;
    }
    auto& queue = queues_[in_port];
    queue.push_back(pkt);
    const auto depth = static_cast<std::uint32_t>(queue.size());
    if (depth > max_depth_[in_port]) {
      max_depth_[in_port] = depth;
      if (obs_.trace)
        trace_event(queue_.now(), 0, obs::EventKind::kQueueDepth, in_port,
                    depth, 0, msgs_[pkt.msg].stage, obs_.vl_of(pkt.dst));
    }
    if (queue.size() == 1) kick_head(pt.node, in_port);
  }

  /// Arbitration entry for the head of one input queue: try every output the
  /// head may leave through. Every packet passes through here exactly when it
  /// becomes a head, so this is also where resilient runs drop packets that
  /// can never leave — no LFT entry, or a dead out-port with no scheduled
  /// revival — instead of wedging the queue behind them. Heads parked on a
  /// dead-but-revivable port simply wait; the kLinkUp event re-arbitrates.
  void kick_head(topo::NodeId sw, PortId in_port) {
    auto& queue = queues_[in_port];
    while (!queue.empty()) {
      const Packet pkt = queue.front();
      if (up_selection_ == UpSelection::kDeterministic ||
          fabric_.is_ancestor_of_host(sw, pkt.dst)) {
        if (resilient_ && !tables_.has_entry(sw, pkt.dst)) {
          drop_head(in_port, in_port);
          continue;
        }
        const PortId out = route_port(sw, pkt.dst);
        if (resilient_ && dead_[out]) {
          if (revives_at_[out] == kNever) {
            drop_head(in_port, out);
            continue;
          }
          return;  // parked until the scheduled revival re-kicks this queue
        }
        try_forward(out);
        return;
      }
      // Adaptive ascent: any live up-port may take the packet.
      const topo::Node& node = fabric_.node(sw);
      bool any_alive = false;
      bool revivable = false;
      for (std::uint32_t q = 0; q < node.num_up_ports; ++q) {
        const PortId up = fabric_.port_id(sw, node.num_down_ports + q);
        if (resilient_ && dead_[up]) {
          if (revives_at_[up] != kNever) revivable = true;
          continue;
        }
        any_alive = true;
        try_forward(up);
      }
      if (resilient_ && !any_alive && !revivable) {
        drop_head(in_port, in_port);
        continue;
      }
      return;
    }
  }

  /// Drop the head of `in_port`'s queue: free the buffer slot (credit goes
  /// back to the upstream sender) and let the retransmit timer — not the
  /// drop — decide the packet's fate.
  void drop_head(PortId in_port, PortId blame_port) {
    auto& queue = queues_[in_port];
    const Packet pkt = queue.front();
    queue.pop_front();
    ++packets_dropped_;
    if (obs_.trace)
      trace_event(queue_.now(), 0, obs::EventKind::kPacketDropped, blame_port,
                  pkt.msg, pkt.seq, msgs_[pkt.msg].stage, obs_.vl_of(pkt.dst));
    queue_.push(queue_.now() + calib_.cable_latency_ns,
                Ev{EvType::kCredit, fabric_.port(in_port).peer, {}});
  }

  void on_out_free(PortId out_port) {
    busy_[out_port] = false;
    const topo::Port& pt = fabric_.port(out_port);
    if (fabric_.node(pt.node).kind == NodeKind::kHost) {
      host_try_send(fabric_.host_index(pt.node));
    } else {
      try_forward(out_port);
    }
  }

  void on_credit(PortId out_port) {
    ++credits_[out_port];
    const topo::Port& pt = fabric_.port(out_port);
    if (fabric_.node(pt.node).kind == NodeKind::kHost) {
      host_try_send(fabric_.host_index(pt.node));
    } else {
      try_forward(out_port);
    }
  }

  /// A scripted cable died: both directions stop granting. Transfers already
  /// on the wire still arrive (they left before the cut); heads parked on the
  /// dead port are re-arbitrated so permanent cuts drop them (freeing their
  /// buffer slots) instead of leaking credits forever.
  void on_link_down(PortId port) {
    const PortId peer = fabric_.port(port).peer;
    ++link_down_events_;
    dead_[port] = 1;
    dead_[peer] = 1;
    if (obs_.trace) {
      trace_event(queue_.now(), 0, obs::EventKind::kLinkDown, port, 0, 0);
      trace_event(queue_.now(), 0, obs::EventKind::kLinkDown, peer, 0, 0);
    }
    for (const PortId end : {port, peer}) {
      const topo::Port& pt = fabric_.port(end);
      const topo::Node& node = fabric_.node(pt.node);
      if (node.kind == NodeKind::kHost) {
        // A host cut off with no scheduled revival can never finish its
        // sends: write the rest of its workload off now.
        if (revives_at_[end] == kNever) fail_host(fabric_.host_index(pt.node));
        continue;
      }
      const std::uint32_t nports = node.num_down_ports + node.num_up_ports;
      for (std::uint32_t i = 0; i < nports; ++i) {
        const PortId in_port = fabric_.port_id(pt.node, i);
        if (!queues_[in_port].empty()) kick_head(pt.node, in_port);
      }
    }
  }

  /// A scripted cable revived: resume flow in both directions.
  void on_link_up(PortId port) {
    const PortId peer = fabric_.port(port).peer;
    dead_[port] = 0;
    dead_[peer] = 0;
    if (obs_.trace) {
      trace_event(queue_.now(), 0, obs::EventKind::kLinkUp, port, 0, 0);
      trace_event(queue_.now(), 0, obs::EventKind::kLinkUp, peer, 0, 0);
    }
    for (const PortId end : {port, peer}) {
      const topo::Port& pt = fabric_.port(end);
      if (fabric_.node(pt.node).kind == NodeKind::kHost) {
        host_try_send(fabric_.host_index(pt.node));
      } else {
        try_forward(end);  // parked heads may now leave through this port
      }
    }
  }

  /// A packet's retransmit timer fired. Unresolved with tries left: queue a
  /// copy at the source (retransmissions preempt new traffic there).
  /// Unresolved with tries exhausted: write the packet's bytes off so its
  /// message still completes — as failed — and the run terminates.
  void on_timeout(std::uint32_t pend_idx) {
    Pending& p = pending_[pend_idx];
    if (p.resolved) return;
    if (p.attempts >= resilience_.max_attempts) {
      p.resolved = true;
      account_failed(p.pkt.msg, p.pkt.bytes);
      return;
    }
    ++p.attempts;
    const std::uint64_t src = msgs_[p.pkt.msg].src;
    retx_[src].push_back(pend_idx);
    host_try_send(src);
  }

  // --- forwarding -----------------------------------------------------------

  [[nodiscard]] PortId route_port(topo::NodeId sw, std::uint32_t dst) const {
    return fabric_.port_id(sw, tables_.out_port(sw, dst));
  }

  void try_forward(PortId out_port) {
    if (busy_[out_port]) return;
    if (resilient_ && dead_[out_port]) return;
    if (credits_[out_port] == 0) {
      ++credit_stalls_;
      if (obs_.trace)
        trace_event(queue_.now(), 0, obs::EventKind::kCreditStall, out_port, 0,
                    0);
      return;
    }
    const topo::Port& out = fabric_.port(out_port);
    const topo::NodeId sw = out.node;
    const topo::Node& node = fabric_.node(sw);
    const std::uint32_t nports = node.num_down_ports + node.num_up_ports;

    for (std::uint32_t k = 0; k < nports; ++k) {
      const std::uint32_t i = (rr_[out_port] + k) % nports;
      const PortId in_port = fabric_.port_id(sw, i);
      auto& queue = queues_[in_port];
      if (queue.empty()) continue;
      if (!may_leave_through(sw, queue.front(), out_port)) continue;

      const Packet pkt = queue.front();
      queue.pop_front();
      rr_[out_port] = i + 1;
      --credits_[out_port];
      busy_[out_port] = true;

      const SimTime ser = transfer_time(pkt.bytes, rate_[out_port]);
      busy_ns_[out_port] += ser;
      account_vl_busy(pkt.dst, ser);
      if (obs_.trace)
        trace_event(queue_.now(), ser, obs::EventKind::kPacketForwarded,
                    out_port, pkt.msg, pkt.seq, msgs_[pkt.msg].stage,
                    obs_.vl_of(pkt.dst));
      queue_.push(queue_.now() + ser, Ev{EvType::kOutFree, out_port, {}});
      // Return a buffer credit to the upstream sender of the input link.
      queue_.push(queue_.now() + calib_.cable_latency_ns,
                  Ev{EvType::kCredit, fabric_.port(in_port).peer, {}});
      queue_.push(queue_.now() + calib_.switch_latency_ns + ser +
                      calib_.cable_latency_ns,
                  Ev{EvType::kArrive, out.peer, pkt});

      // The new head of this input queue may target a different, idle output.
      if (!queue.empty()) kick_head(sw, in_port);
      return;  // one packet per grant; the OutFree event re-arbitrates
    }
  }

  /// Is `out_port` a legal egress for this packet at switch `sw`?
  [[nodiscard]] bool may_leave_through(topo::NodeId sw, const Packet& pkt,
                                       PortId out_port) const {
    if (resilient_ && !tables_.has_entry(sw, pkt.dst)) return false;
    if (up_selection_ == UpSelection::kDeterministic)
      return route_port(sw, pkt.dst) == out_port;
    if (fabric_.is_ancestor_of_host(sw, pkt.dst))
      return route_port(sw, pkt.dst) == out_port;  // down stays deterministic
    const topo::Port& out = fabric_.port(out_port);
    return out.node == sw &&
           out.index >= fabric_.node(sw).num_down_ports;  // any up port
  }

  // --- hosts ----------------------------------------------------------------

  void host_try_send(std::uint64_t h) {
    HostCursor& cur = cursors_[h];
    auto& retxq = retx_[h];
    if (cur.done() && retxq.empty()) return;
    const topo::NodeId node_id = fabric_.host_node(h);
    const topo::Node& node = fabric_.node(node_id);
    expects(node.num_up_ports == 1, "packet sim requires single-cable hosts");
    const PortId up = fabric_.port_id(node_id, node.num_down_ports);
    if (resilient_ && dead_[up]) {
      // Cut off for good: write the rest of the workload off. A revivable
      // host just parks; the kLinkUp event re-kicks it.
      if (revives_at_[up] == kNever) fail_host(h);
      return;
    }
    if (busy_[up]) return;
    if (credits_[up] == 0) {
      ++credit_stalls_;
      if (obs_.trace)
        trace_event(queue_.now(), 0, obs::EventKind::kCreditStall, up, 0, 0);
      return;
    }

    // Retransmissions go out ahead of new traffic. Copies whose original
    // has since been delivered are discarded unsent.
    while (!retxq.empty()) {
      const std::uint32_t pend = retxq.front();
      retxq.pop_front();
      Pending& p = pending_[pend];
      if (p.resolved) continue;
      ++packets_retransmitted_;
      if (obs_.trace)
        trace_event(queue_.now(), 0, obs::EventKind::kPacketRetransmit,
                    static_cast<std::uint32_t>(h), p.pkt.msg, p.pkt.seq,
                    msgs_[p.pkt.msg].stage, obs_.vl_of(p.pkt.dst));
      send_packet(up, p.pkt, p.attempts);
      return;
    }
    if (cur.done()) return;

    const Message& msg = cur.msgs[cur.index];
    const std::uint32_t msg_id =
        cur.first_msg_id + static_cast<std::uint32_t>(cur.index);
    MsgMeta& meta = msgs_[msg_id];
    if (meta.start < 0) meta.start = queue_.now();

    const std::uint64_t left = msg.bytes - cur.offset;
    const auto chunk =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(left, calib_.mtu_bytes));
    const auto seq = static_cast<std::uint32_t>(cur.offset / calib_.mtu_bytes);
    cur.offset += chunk;
    if (cur.offset == msg.bytes) {
      // "Sent to the wire": the host moves on to its next message.
      ++cur.index;
      cur.offset = 0;
    }

    Packet pkt{static_cast<std::uint32_t>(msg.dst), chunk, msg_id, seq, kNoPend};
    if (resilient_) {
      pkt.pend = static_cast<std::uint32_t>(pending_.size());
      pending_.push_back(Pending{pkt, 1, false});
    }
    if (obs_.trace)
      trace_event(queue_.now(), 0, obs::EventKind::kPacketInjected,
                  static_cast<std::uint32_t>(h), msg_id, seq, meta.stage,
                  obs_.vl_of(pkt.dst));
    send_packet(up, pkt, 1);
  }

  /// Put one packet on the host's up-link (shared by fresh sends and
  /// retransmits). In resilient mode this also arms the packet's timeout,
  /// backed off exponentially in the attempt count.
  void send_packet(PortId up, const Packet& pkt, std::uint32_t attempt) {
    busy_[up] = true;
    --credits_[up];
    const SimTime ser = transfer_time(pkt.bytes, rate_[up]);
    busy_ns_[up] += ser;
    account_vl_busy(pkt.dst, ser);
    if (obs_.trace)
      trace_event(queue_.now(), ser, obs::EventKind::kPacketForwarded, up,
                  pkt.msg, pkt.seq, msgs_[pkt.msg].stage,
                  obs_.vl_of(pkt.dst));
    queue_.push(queue_.now() + ser, Ev{EvType::kOutFree, up, {}});
    queue_.push(queue_.now() + ser + calib_.cable_latency_ns,
                Ev{EvType::kArrive, fabric_.port(up).peer, pkt});
    if (resilient_ && pkt.pend != kNoPend) {
      const SimTime wait = resilience_.timeout_ns
                           << std::min<std::uint32_t>(attempt - 1, 20);
      queue_.push(queue_.now() + ser + wait,
                  Ev{EvType::kTimeout, pkt.pend, {}});
    }
  }

  /// Write off everything a permanently cut-off host still had to send:
  /// queued retransmissions and every uninjected byte of its cursor.
  void fail_host(std::uint64_t h) {
    auto& retxq = retx_[h];
    while (!retxq.empty()) {
      const std::uint32_t pend = retxq.front();
      retxq.pop_front();
      Pending& p = pending_[pend];
      if (p.resolved) continue;
      p.resolved = true;
      account_failed(p.pkt.msg, p.pkt.bytes);
    }
    // Snapshot then reset the cursor *before* accounting: finishing the last
    // outstanding message can advance the stage and replace cursors_.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> writeoffs;
    {
      HostCursor& cur = cursors_[h];
      for (; cur.index < cur.msgs.size(); ++cur.index) {
        writeoffs.emplace_back(
            cur.first_msg_id + static_cast<std::uint32_t>(cur.index),
            cur.msgs[cur.index].bytes - cur.offset);
        cur.offset = 0;
      }
    }
    for (const auto& [msg_id, bytes] : writeoffs) account_failed(msg_id, bytes);
  }

  /// Mark `bytes` of message `msg_id` undeliverable; completes the message
  /// (as failed) once every byte is accounted for.
  void account_failed(std::uint32_t msg_id, std::uint64_t bytes) {
    if (bytes == 0) return;
    MsgMeta& meta = msgs_[msg_id];
    if (meta.start < 0) meta.start = queue_.now();
    meta.failed = true;
    bytes_failed_ += bytes;
    expects(meta.remaining >= bytes, "failure accounting underflow");
    meta.remaining -= bytes;
    if (meta.remaining == 0) finish_message(msg_id);
  }

  /// Every byte of the message is accounted for (delivered or written off).
  void finish_message(std::uint32_t msg_id) {
    const MsgMeta& meta = msgs_[msg_id];
    if (meta.failed) {
      ++messages_failed_;
    } else {
      ++messages_delivered_;
      latency_.add(to_us(queue_.now() - meta.start));
      if (obs_.metrics)
        obs_.metrics->histogram("packet_sim.msg_latency_us", 0.0, 10'000.0, 100)
            .add(to_us(queue_.now() - meta.start));
    }
    expects(outstanding_msgs_ > 0, "message accounting underflow");
    if (--outstanding_msgs_ == 0 &&
        progression_ == Progression::kSynchronized) {
      advance_stage();
      kick_all_hosts();
    }
  }

  void deliver(topo::NodeId host, const Packet& pkt) {
    expects(fabric_.host_index(host) == pkt.dst, "packet at wrong host");
    if (resilient_ && pkt.pend != kNoPend) {
      Pending& p = pending_[pkt.pend];
      if (p.resolved) {  // a twin of this packet already claimed its bytes
        ++duplicate_packets_;
        return;
      }
      p.resolved = true;
    }
    ++packets_delivered_;
    bytes_delivered_ += pkt.bytes;
    last_delivery_ = std::max(last_delivery_, queue_.now());
    if (obs_.trace)
      trace_event(queue_.now(), 0, obs::EventKind::kPacketDelivered, pkt.dst,
                  pkt.msg, pkt.seq, msgs_[pkt.msg].stage,
                  obs_.vl_of(pkt.dst));
    MsgMeta& meta = msgs_[pkt.msg];
    expects(meta.remaining >= pkt.bytes, "over-delivery on a message");
    meta.remaining -= pkt.bytes;
    if (meta.any_delivered && pkt.seq < meta.max_seq_seen) ++out_of_order_;
    meta.max_seq_seen = std::max(meta.max_seq_seen, pkt.seq);
    meta.any_delivered = true;
    if (meta.remaining == 0) finish_message(pkt.msg);
  }

  // --- observability --------------------------------------------------------

  /// Emit link samples at every elapsed period boundary strictly before
  /// `upto`. Pure observation: reads busy_ns_/queues_, schedules nothing, so
  /// the event sequence (and RunResult) is identical with sampling off.
  void take_samples(SimTime upto) {
    while (next_sample_ < upto) {
      sample_at(next_sample_);
      // Bound catch-up after long idle gaps (sync-stage barriers): skip to
      // the last boundary before `upto` once a gap exceeds 1024 periods.
      const SimTime behind = (upto - 1 - next_sample_) / obs_.sample_period_ns;
      if (behind > 1024)
        next_sample_ += (behind - 1) * obs_.sample_period_ns;
      next_sample_ += obs_.sample_period_ns;
    }
  }

  void sample_at(SimTime at) {
    // Window = time since the previous sample (a full period mid-run, shorter
    // for the closing end-of-run sample).
    const auto window = static_cast<double>(at - last_sample_at_);
    last_sample_at_ = at;
    if (window <= 0.0) return;
    double util_sum = 0.0;
    double util_max = 0.0;
    std::uint32_t links_active = 0;
    std::uint64_t depth_total = 0;
    std::uint32_t depth_max = 0;
    for (PortId pid = 0; pid < static_cast<PortId>(busy_ns_.size()); ++pid) {
      const auto depth = static_cast<std::uint32_t>(queues_[pid].size());
      depth_total += depth;
      depth_max = std::max(depth_max, depth);
      if (busy_ns_[pid] == 0 && depth == 0) continue;  // never-used link
      // Utilization of this window; a packet's full serialization time is
      // charged at grant time, so clamp spans overhanging the boundary.
      const double util = std::min(
          1.0,
          static_cast<double>(busy_ns_[pid] - sampled_busy_[pid]) / window);
      sampled_busy_[pid] = busy_ns_[pid];
      util_sum += util;
      util_max = std::max(util_max, util);
      ++links_active;
      if (obs_.trace)
        trace_event(at, 0, obs::EventKind::kLinkSample, pid,
                    static_cast<std::uint32_t>(util * 1000.0), depth,
                    stage_active_ ? stage_tag(current_stage_) : obs::kNoStage);
    }
    if (obs_.metrics) {
      obs_.metrics->series("packet_sim.link_util.mean")
          .sample(at, links_active ? util_sum / links_active : 0.0);
      obs_.metrics->series("packet_sim.link_util.max").sample(at, util_max);
      obs_.metrics->series("packet_sim.queue_depth.max")
          .sample(at, static_cast<double>(depth_max));
      obs_.metrics->series("packet_sim.queue_depth.total")
          .sample(at, static_cast<double>(depth_total));
    }
  }

  /// Fold serialization time into the destination lane's busy total (only
  /// when a VL table is attached; lanes appear on first use).
  void account_vl_busy(std::uint32_t dst, SimTime ser) {
    if (obs_.vl_of_dst == nullptr || obs_.metrics == nullptr) return;
    const std::uint8_t lane = obs_.vl_of(dst);
    if (vl_busy_ns_.size() <= lane) vl_busy_ns_.resize(lane + 1u, 0);
    vl_busy_ns_[lane] += ser;
  }

  void export_run_metrics(const RunResult& result) {
    obs::MetricsRegistry& m = *obs_.metrics;
    m.counter("packet_sim.packets_delivered").inc(result.packets_delivered);
    m.counter("packet_sim.messages_delivered").inc(result.messages_delivered);
    m.counter("packet_sim.bytes_delivered").inc(result.bytes_delivered);
    m.counter("packet_sim.events").inc(result.events);
    m.counter("packet_sim.credit_stalls").inc(credit_stalls_);
    m.counter("packet_sim.out_of_order_packets")
        .inc(result.out_of_order_packets);
    m.counter("packet_sim.packets_dropped").inc(result.packets_dropped);
    m.counter("packet_sim.packets_retransmitted")
        .inc(result.packets_retransmitted);
    m.counter("packet_sim.duplicate_packets").inc(result.duplicate_packets);
    m.counter("packet_sim.messages_failed").inc(result.messages_failed);
    m.counter("packet_sim.bytes_failed").inc(result.bytes_failed);
    m.counter("packet_sim.link_down_events").inc(result.link_down_events);
    m.gauge("packet_sim.makespan_us").set(to_us(result.makespan));
    m.gauge("packet_sim.normalized_bw").set(result.normalized_bw);
    for (std::size_t lane = 0; lane < vl_busy_ns_.size(); ++lane) {
      if (vl_busy_ns_[lane] == 0) continue;
      m.gauge("packet_sim.vl_busy_us." + std::to_string(lane))
          .set(to_us(static_cast<SimTime>(vl_busy_ns_[lane])));
    }
  }

  const Fabric& fabric_;
  const route::ForwardingTables& tables_;
  Calibration calib_;

  TypedEventQueue<Ev> queue_;
  std::vector<bool> busy_;               ///< per source port
  std::vector<std::uint32_t> credits_;   ///< per source port
  std::vector<std::uint32_t> rr_;        ///< per switch output port
  std::vector<double> rate_;             ///< per source port (bytes/s)
  std::vector<SimTime> busy_ns_;         ///< per source port: tx time carried
  std::vector<std::uint32_t> max_depth_; ///< per input port: queue watermark
  std::vector<std::deque<Packet>> queues_;  ///< per switch input port

  std::vector<HostCursor> cursors_;
  std::vector<MsgMeta> msgs_;
  const std::vector<StageTraffic>* stages_ = nullptr;
  std::size_t next_stage_ = 0;
  Progression progression_ = Progression::kAsync;

  UpSelection up_selection_ = UpSelection::kDeterministic;
  SimTime jitter_max_ns_ = 0;
  std::uint64_t jitter_seed_ = 1;

  obs::SimObserver obs_;
  bool sampling_ = false;
  SimTime next_sample_ = 0;
  SimTime last_sample_at_ = 0;
  std::vector<SimTime> sampled_busy_;  ///< busy_ns_ at the previous sample
  std::vector<std::uint64_t> vl_busy_ns_;  ///< per destination lane
  std::uint32_t current_stage_ = 0;
  bool stage_active_ = false;
  std::uint64_t credit_stalls_ = 0;

  // Resilience (active only with a non-pristine fault state or when forced;
  // otherwise every structure below stays empty and no timer is scheduled).
  const fault::FaultState* faults_ = nullptr;
  Resilience resilience_;
  bool resilient_ = false;
  std::vector<std::uint8_t> dead_;      ///< per directed link (source port)
  std::vector<SimTime> revives_at_;     ///< per port: scheduled revival
  std::vector<Pending> pending_;        ///< per injected packet
  std::vector<std::deque<std::uint32_t>> retx_;  ///< per host: pending slots
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_retransmitted_ = 0;
  std::uint64_t duplicate_packets_ = 0;
  std::uint64_t messages_failed_ = 0;
  std::uint64_t bytes_failed_ = 0;
  std::uint64_t link_down_events_ = 0;

  std::uint64_t outstanding_msgs_ = 0;
  std::uint64_t out_of_order_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t active_hosts_ = 0;
  SimTime last_delivery_ = 0;
  util::Accumulator latency_;
};

}  // namespace

PacketSim::PacketSim(const Fabric& fabric,
                     const route::ForwardingTables& tables,
                     Calibration calibration)
    : fabric_(&fabric), tables_(&tables), calib_(calibration) {}

std::vector<PortBuffer> PacketSim::buffer_topology() const {
  std::vector<PortBuffer> out;
  out.reserve(fabric_->num_ports());
  for (PortId pid = 0; pid < fabric_->num_ports(); ++pid)
    out.push_back(port_buffer(*fabric_, calib_, pid));
  return out;
}

RunResult PacketSim::run(const std::vector<StageTraffic>& stages,
                         Progression progression, std::uint64_t event_limit) {
  Engine engine(*fabric_, *tables_, calib_, up_selection_, jitter_max_ns_,
                jitter_seed_, obs_, faults_, resilience_, resilience_forced_);
  return engine.run(stages, progression, event_limit);
}

}  // namespace ftcf::sim
