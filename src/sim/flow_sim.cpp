#include "sim/flow_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "obs/profile.hpp"
#include "routing/trace.hpp"
#include "util/expects.hpp"

namespace ftcf::sim {

using topo::Fabric;
using topo::PortId;
using util::expects;

namespace {

struct Flow {
  std::uint64_t host = 0;         ///< source host (one active flow per host)
  std::uint64_t dst = 0;          ///< destination host (trace labelling)
  std::uint64_t total_bytes = 0;  ///< message size
  double remaining = 0.0;         ///< bytes left
  double rate = 0.0;              ///< current bytes/s (0 while starting up)
  SimTime starts_at = 0;          ///< becomes active at this time
  SimTime started = 0;            ///< for latency accounting
  std::vector<PortId> path;
  std::uint16_t stage = obs::kNoStage;  ///< CPS stage (sync runs only)
  bool active = false;            ///< consuming bandwidth
};

/// Clamp a stage index into the trace event's uint16 field.
std::uint16_t stage_tag(std::size_t stage) noexcept {
  return stage >= obs::kNoStage ? obs::kNoStage
                                : static_cast<std::uint16_t>(stage);
}

class Engine {
 public:
  Engine(const Fabric& fabric, const route::ForwardingTables& tables,
         const Calibration& calib, const obs::SimObserver& obs)
      : fabric_(fabric), tables_(tables), calib_(calib), obs_(obs) {
    capacity_.reserve(fabric.num_ports());
    for (PortId pid = 0; pid < fabric.num_ports(); ++pid) {
      const topo::Port& pt = fabric.port(pid);
      const topo::Port& peer = fabric.port(pt.peer);
      const bool host_side =
          fabric_.node(pt.node).kind == topo::NodeKind::kHost ||
          fabric_.node(peer.node).kind == topo::NodeKind::kHost;
      capacity_.push_back(host_side ? calib.host_bw_bytes_per_sec
                                    : calib.link_bw_bytes_per_sec);
    }
    cursors_.resize(fabric.num_hosts());
    flows_.resize(fabric.num_hosts());
  }

  RunResult run(const std::vector<StageTraffic>& stages,
                Progression progression, std::uint64_t event_limit) {
    FTCF_PROF_SCOPE("flow_sim_run");
    progression_ = progression;
    stages_ = &stages;

    if (progression == Progression::kAsync) {
      for (std::size_t s = 0; s < stages.size(); ++s) {
        const StageTraffic& st = stages[s];
        expects(st.sends.size() == fabric_.num_hosts(),
                "stage traffic must cover every host");
        for (std::uint64_t h = 0; h < st.sends.size(); ++h)
          cursors_[h].insert(cursors_[h].end(), st.sends[h].begin(),
                             st.sends[h].end());
        if (obs_.trace)
          trace_event(0, 0, obs::EventKind::kStageBegin,
                      static_cast<std::uint32_t>(s), 0, 0, stage_tag(s));
      }
      next_stage_ = stages.size();
      for (std::uint64_t h = 0; h < fabric_.num_hosts(); ++h)
        if (!cursors_[h].empty()) ++active_hosts_;
    } else {
      advance_stage();
    }
    for (std::uint64_t h = 0; h < fabric_.num_hosts(); ++h) start_next(h);

    while (live_flows_ > 0) {
      expects(events_ < event_limit, "flow simulation exceeded event limit");
      step();
    }
    // Async runs have no stage barrier to flush link occupancy: emit the
    // whole-run samples now (sync runs flushed at each stage advance).
    if (obs_.trace && !busy_by_port_vl_.empty())
      emit_link_samples(obs::kNoStage);

    RunResult result;
    result.makespan = now_;
    result.bytes_delivered = bytes_delivered_;
    result.messages_delivered = messages_delivered_;
    result.events = events_;
    result.active_hosts = active_hosts_;
    result.message_latency_us = latency_;
    if (now_ > 0 && active_hosts_ > 0) {
      result.effective_bw_per_host = static_cast<double>(bytes_delivered_) /
                                     to_seconds(now_) /
                                     static_cast<double>(active_hosts_);
      result.normalized_bw =
          result.effective_bw_per_host / calib_.host_bw_bytes_per_sec;
    }
    if (obs_.metrics) {
      obs::MetricsRegistry& m = *obs_.metrics;
      m.counter("flow_sim.messages_delivered").inc(messages_delivered_);
      m.counter("flow_sim.bytes_delivered").inc(bytes_delivered_);
      m.counter("flow_sim.events").inc(events_);
      m.gauge("flow_sim.makespan_us").set(to_us(result.makespan));
      m.gauge("flow_sim.normalized_bw").set(result.normalized_bw);
    }
    return result;
  }

 private:
  /// Assemble one tagged trace event (brace-init would mis-map the new
  /// vl/stage fields at the many call sites, so build it explicitly).
  void trace_event(SimTime at, SimTime dur, obs::EventKind kind,
                   std::uint32_t a, std::uint32_t b, std::uint32_t c,
                   std::uint16_t stage = obs::kNoStage, std::uint8_t vl = 0) {
    obs::TraceEvent ev;
    ev.at = at;
    ev.dur = dur;
    ev.kind = kind;
    ev.vl = vl;
    ev.stage = stage;
    ev.a = a;
    ev.b = b;
    ev.c = c;
    obs_.trace->record(ev);
  }

  /// Flush accumulated per-(port, VL) occupancy as kLinkSample events at
  /// `now_`, utilization normalized over the window since the last flush.
  void emit_link_samples(std::uint16_t stage) {
    const double window_s = to_seconds(now_ - window_start_);
    for (const auto& [key, busy_s] : busy_by_port_vl_) {
      if (busy_s <= 0.0) continue;
      const auto pid = static_cast<PortId>(key >> 8);
      const auto vl = static_cast<std::uint8_t>(key & 0xFF);
      const double util = window_s > 0.0 ? std::min(1.0, busy_s / window_s)
                                         : 1.0;
      trace_event(now_, 0, obs::EventKind::kLinkSample, pid,
                  static_cast<std::uint32_t>(util * 1000.0), 0, stage, vl);
    }
    busy_by_port_vl_.clear();
    window_start_ = now_;
  }

  void advance_stage() {
    if (obs_.trace && stage_active_) {
      emit_link_samples(stage_tag(current_stage_));
      trace_event(now_, 0, obs::EventKind::kStageEnd, current_stage_, 0, 0,
                  stage_tag(current_stage_));
      stage_active_ = false;
    }
    while (next_stage_ < stages_->size()) {
      const std::size_t stage = next_stage_;
      const StageTraffic& st = (*stages_)[next_stage_++];
      expects(st.sends.size() == fabric_.num_hosts(),
              "stage traffic must cover every host");
      bool any = false;
      std::uint64_t active = 0;
      for (std::uint64_t h = 0; h < st.sends.size(); ++h) {
        cursors_[h] = st.sends[h];
        if (!st.sends[h].empty()) {
          any = true;
          ++active;
        }
      }
      if (any) {
        active_hosts_ = std::max(active_hosts_, active);
        loaded_stage_ = stage_tag(stage);
        if (obs_.trace) {
          current_stage_ = static_cast<std::uint32_t>(stage);
          stage_active_ = true;
          window_start_ = now_;
          trace_event(now_, 0, obs::EventKind::kStageBegin, current_stage_, 0,
                      0, stage_tag(stage));
        }
        return;
      }
    }
  }

  /// Make the host's next message a (starting-up) flow.
  void start_next(std::uint64_t h) {
    auto& pending = cursors_[h];
    if (pending.empty()) return;
    const Message msg = pending.front();
    pending.erase(pending.begin());
    expects(msg.dst != h && msg.dst < fabric_.num_hosts(),
            "flow destination invalid");

    Flow& flow = flows_[h];
    flow.host = h;
    flow.dst = msg.dst;
    flow.total_bytes = msg.bytes;
    flow.remaining = static_cast<double>(msg.bytes);
    flow.path = route::trace_route(fabric_, tables_, h, msg.dst);
    const SimTime startup =
        static_cast<SimTime>(calib_.mpi_overhead_ns) +
        static_cast<SimTime>(flow.path.size()) *
            (calib_.switch_latency_ns + calib_.cable_latency_ns);
    flow.starts_at = now_ + startup;
    flow.started = now_;
    flow.active = false;
    flow.rate = 0.0;
    flow.stage = progression_ == Progression::kSynchronized ? loaded_stage_
                                                            : obs::kNoStage;
    ++live_flows_;
    rates_dirty_ = true;
    if (obs_.trace)
      trace_event(now_, 0, obs::EventKind::kFlowStart,
                  static_cast<std::uint32_t>(h),
                  static_cast<std::uint32_t>(msg.dst),
                  static_cast<std::uint32_t>(msg.bytes / 1024), flow.stage,
                  obs_.vl_of(static_cast<std::uint32_t>(msg.dst)));
  }

  /// Max-min fair rates for all active flows (progressive filling).
  void recompute_rates() {
    // Sparse link state over links used by active flows.
    link_index_.assign(fabric_.num_ports(), -1);
    links_.clear();
    unfixed_.clear();
    for (Flow& flow : flows_) {
      if (!flow.active) continue;
      unfixed_.push_back(&flow);
      flow.rate = -1.0;
      for (const PortId pid : flow.path) {
        if (link_index_[pid] < 0) {
          link_index_[pid] = static_cast<std::int32_t>(links_.size());
          links_.push_back({pid, capacity_[pid], 0});
        }
        ++links_[static_cast<std::size_t>(link_index_[pid])].count;
      }
    }

    std::size_t fixed = 0;
    while (fixed < unfixed_.size()) {
      // Bottleneck link: smallest fair share among links with unfixed flows.
      double best = std::numeric_limits<double>::infinity();
      for (const LinkEntry& le : links_) {
        if (le.count == 0) continue;
        best = std::min(best, le.residual / le.count);
      }
      expects(std::isfinite(best), "water-filling found no bottleneck");
      // Fix every unfixed flow crossing a link at the bottleneck share.
      for (Flow* flow : unfixed_) {
        if (flow->rate >= 0.0) continue;
        bool limited = false;
        for (const PortId pid : flow->path) {
          const LinkEntry& le =
              links_[static_cast<std::size_t>(link_index_[pid])];
          if (le.count > 0 && le.residual / le.count <= best * (1 + 1e-12)) {
            limited = true;
            break;
          }
        }
        if (!limited) continue;
        flow->rate = best;
        ++fixed;
        for (const PortId pid : flow->path) {
          LinkEntry& le = links_[static_cast<std::size_t>(link_index_[pid])];
          le.residual -= best;
          --le.count;
        }
      }
    }
    rates_dirty_ = false;
  }

  void step() {
    // Activate flows whose startup delay elapsed.
    SimTime next_event = kNever;
    for (Flow& flow : flows_) {
      if (flow.remaining <= 0.0) continue;
      if (!flow.active) {
        if (flow.starts_at <= now_) {
          flow.active = true;
          rates_dirty_ = true;
        } else {
          next_event = std::min(next_event, flow.starts_at);
        }
      }
    }
    if (rates_dirty_) recompute_rates();

    // Earliest completion among active flows.
    for (const Flow& flow : flows_) {
      if (!flow.active || flow.remaining <= 0.0) continue;
      if (flow.rate <= 0.0) continue;
      const double dt_s = flow.remaining / flow.rate;
      const auto dt = static_cast<SimTime>(std::ceil(dt_s * 1e9));
      next_event = std::min(next_event, now_ + std::max<SimTime>(dt, 1));
    }
    expects(next_event != kNever, "flow simulation stalled");

    // Advance fluid state to next_event.
    const double dt_s = to_seconds(next_event - now_);
    // Charge the interval's bandwidth to each used (port, VL) before flows
    // complete below (rates are constant across the interval).
    if (obs_.trace && dt_s > 0.0) {
      for (const Flow& flow : flows_) {
        if (!flow.active || flow.remaining <= 0.0 || flow.rate <= 0.0)
          continue;
        const std::uint8_t vl =
            obs_.vl_of(static_cast<std::uint32_t>(flow.dst));
        for (const PortId pid : flow.path) {
          const double cap = capacity_[pid];
          if (cap <= 0.0) continue;
          busy_by_port_vl_[(static_cast<std::uint64_t>(pid) << 8) | vl] +=
              flow.rate * dt_s / cap;
        }
      }
    }
    now_ = next_event;
    ++events_;
    for (std::uint64_t h = 0; h < flows_.size(); ++h) {
      Flow& flow = flows_[h];
      if (!flow.active || flow.remaining <= 0.0) continue;
      flow.remaining -= flow.rate * dt_s;
      if (flow.remaining <= 0.5) {  // sub-byte residue: done
        flow.remaining = 0.0;
        flow.active = false;
        --live_flows_;
        rates_dirty_ = true;
        bytes_delivered_ += flow.total_bytes;
        ++messages_delivered_;
        latency_.add(to_us(now_ - flow.started));
        if (obs_.trace)
          trace_event(now_, 0, obs::EventKind::kFlowEnd,
                      static_cast<std::uint32_t>(h),
                      static_cast<std::uint32_t>(flow.dst), 0, flow.stage,
                      obs_.vl_of(static_cast<std::uint32_t>(flow.dst)));
        if (obs_.metrics)
          obs_.metrics->histogram("flow_sim.msg_latency_us", 0.0, 10'000.0, 100)
              .add(to_us(now_ - flow.started));
        // Hosts walk their own message list in both modes; in synchronized
        // mode the list only holds the current stage, so the barrier is
        // enforced by the stage advance below.
        start_next(h);
      }
    }
    if (live_flows_ == 0 && progression_ == Progression::kSynchronized) {
      advance_stage();
      for (std::uint64_t h = 0; h < fabric_.num_hosts(); ++h) start_next(h);
    }
    if (obs_.metrics) {
      double agg_rate = 0.0;
      for (const Flow& flow : flows_)
        if (flow.active && flow.remaining > 0.0) agg_rate += flow.rate;
      obs_.metrics->series("flow_sim.live_flows")
          .sample(now_, static_cast<double>(live_flows_));
      obs_.metrics->series("flow_sim.agg_rate_gbs")
          .sample(now_, agg_rate / 1e9);
    }
  }

  struct LinkEntry {
    PortId pid;
    double residual;
    std::uint32_t count;
  };

  const Fabric& fabric_;
  const route::ForwardingTables& tables_;
  Calibration calib_;
  obs::SimObserver obs_;
  std::uint32_t current_stage_ = 0;
  std::uint16_t loaded_stage_ = obs::kNoStage;  ///< stage of current cursors
  bool stage_active_ = false;
  SimTime window_start_ = 0;  ///< occupancy window anchor (since last flush)
  /// (port << 8 | vl) -> busy seconds in the current window (sorted map:
  /// flush order is deterministic).
  std::map<std::uint64_t, double> busy_by_port_vl_;

  std::vector<double> capacity_;
  std::vector<std::vector<Message>> cursors_;
  std::vector<Flow> flows_;
  std::vector<std::int32_t> link_index_;
  std::vector<LinkEntry> links_;
  std::vector<Flow*> unfixed_;

  const std::vector<StageTraffic>* stages_ = nullptr;
  std::size_t next_stage_ = 0;
  Progression progression_ = Progression::kAsync;

  SimTime now_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t live_flows_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t active_hosts_ = 0;
  bool rates_dirty_ = true;
  util::Accumulator latency_;
};

}  // namespace

FlowSim::FlowSim(const Fabric& fabric, const route::ForwardingTables& tables,
                 Calibration calibration)
    : fabric_(&fabric), tables_(&tables), calib_(calibration) {}

RunResult FlowSim::run(const std::vector<StageTraffic>& stages,
                       Progression progression, std::uint64_t event_limit) {
  Engine engine(*fabric_, *tables_, calib_, obs_);
  return engine.run(stages, progression, event_limit);
}

}  // namespace ftcf::sim
