// Simulation time: integer nanoseconds, like OMNeT++'s fixed-point simtime.
// Integer time makes event ordering exact and runs reproducible.
#pragma once

#include <cstdint>

namespace ftcf::sim {

/// Nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kNever = INT64_MAX;

constexpr SimTime from_us(double us) noexcept {
  return static_cast<SimTime>(us * 1e3);
}
constexpr double to_us(SimTime t) noexcept {
  return static_cast<double>(t) / 1e3;
}
constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / 1e9;
}

/// Serialization time of `bytes` at `bytes_per_sec`, rounded up to 1 ns.
constexpr SimTime transfer_time(std::uint64_t bytes,
                                double bytes_per_sec) noexcept {
  const double ns = static_cast<double>(bytes) / bytes_per_sec * 1e9;
  const auto t = static_cast<SimTime>(ns);
  return t > 0 ? t : 1;
}

}  // namespace ftcf::sim
