// Internal entry point of the shared packet-simulation engine core.
//
// PacketSim (serial) and ParallelPacketSim (PDES) are thin configuration
// shells over one engine: run_core executes the simulation over a
// PartitionMap — one logical process per partition, conservatively
// synchronized windows with the cut-through cable delay as lookahead. A
// single-partition map degenerates to the classic serial event loop. Having
// exactly one implementation is what makes "PDES ≡ serial" a structural
// property rather than a maintenance promise; the `pdes` differential tests
// pin it from the outside.
//
// This header is internal to ftcf::sim — tools and tests use packet_sim.hpp
// / pdes.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/degraded.hpp"
#include "obs/sim_hooks.hpp"
#include "routing/lft.hpp"
#include "sim/ib_calibration.hpp"
#include "sim/metrics.hpp"
#include "sim/packet_sim.hpp"
#include "sim/partition.hpp"
#include "sim/pdes.hpp"
#include "sim/traffic.hpp"

namespace ftcf::sim::detail {

/// Everything both engine shells configure, in one bag.
struct EngineConfig {
  const topo::Fabric* fabric = nullptr;
  const route::ForwardingTables* tables = nullptr;
  Calibration calib;
  UpSelection up_selection = UpSelection::kDeterministic;
  SimTime jitter_max_ns = 0;
  std::uint64_t jitter_seed = 1;
  obs::SimObserver obs;
  const fault::FaultState* faults = nullptr;
  Resilience resilience;
  bool resilience_forced = false;
};

/// The per-port credit grant / rate both engines initialize from and
/// buffer_topology() exposes to the static credit-loop prover.
[[nodiscard]] PortBuffer engine_port_buffer(const topo::Fabric& fabric,
                                            const Calibration& calib,
                                            topo::PortId pid);

/// Run the simulation over `map` (1 partition = serial loop, >1 = windowed
/// conservative PDES). `stats`, when non-null, receives window/channel
/// counts.
[[nodiscard]] RunResult run_core(const EngineConfig& cfg,
                                 const PartitionMap& map,
                                 const std::vector<StageTraffic>& stages,
                                 Progression progression,
                                 std::uint64_t event_limit, PdesStats* stats);

}  // namespace ftcf::sim::detail
