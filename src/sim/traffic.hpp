// Traffic specification shared by the packet-level and flow-level simulators.
//
// A workload is a list of stages; each stage gives every host an optional
// message (destination + size). The two progression modes of paper §II:
//   * kAsync       — each end-port walks its own message sequence, starting
//                    the next message as soon as the previous one has been
//                    handed to the wire (no global coordination);
//   * kSynchronized — a barrier separates stages: stage s+1 starts only when
//                    every stage-s message has been fully delivered.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cps/stage.hpp"
#include "ordering/ordering.hpp"

namespace ftcf::sim {

struct Message {
  std::uint64_t dst = 0;    ///< destination host index
  std::uint64_t bytes = 0;
};

/// One stage: per-host message list (hosts may send several or none).
struct StageTraffic {
  /// sends[i] = messages host i injects this stage (in order).
  std::vector<std::vector<Message>> sends;

  explicit StageTraffic(std::uint64_t num_hosts) : sends(num_hosts) {}
  void add(std::uint64_t src, std::uint64_t dst, std::uint64_t bytes) {
    sends.at(src).push_back(Message{dst, bytes});
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& host : sends)
      for (const Message& msg : host) total += msg.bytes;
    return total;
  }
};

enum class Progression { kAsync, kSynchronized };

/// Build simulator traffic from a CPS and a node ordering: stage pairs are
/// mapped from ranks to hosts and every pair becomes one `bytes`-sized
/// message. `stage_subset` (optional, sorted stage indices) restricts to a
/// sample of stages for bounded runtimes on huge sequences.
[[nodiscard]] std::vector<StageTraffic> traffic_from_cps(
    const cps::Sequence& seq, const order::NodeOrdering& ordering,
    std::uint64_t num_hosts, std::uint64_t bytes,
    const std::vector<std::size_t>* stage_subset = nullptr);

}  // namespace ftcf::sim
