// ParallelPacketSim: the partitioned shell over the shared engine core.
// See pdes.hpp for the synchronization scheme and determinism contract.
#include "sim/pdes.hpp"

#include "sim/engine_core.hpp"

namespace ftcf::sim {

ParallelPacketSim::ParallelPacketSim(const topo::Fabric& fabric,
                                     const route::ForwardingTables& tables,
                                     Calibration calibration)
    : fabric_(&fabric), tables_(&tables), calib_(calibration) {}

std::vector<PortBuffer> ParallelPacketSim::buffer_topology() const {
  std::vector<PortBuffer> out;
  out.reserve(fabric_->num_ports());
  for (topo::PortId pid = 0; pid < fabric_->num_ports(); ++pid)
    out.push_back(detail::engine_port_buffer(*fabric_, calib_, pid));
  return out;
}

RunResult ParallelPacketSim::run(const std::vector<StageTraffic>& stages,
                                 Progression progression,
                                 std::uint64_t event_limit) {
  detail::EngineConfig cfg;
  cfg.fabric = fabric_;
  cfg.tables = tables_;
  cfg.calib = calib_;
  cfg.up_selection = up_selection_;
  cfg.jitter_max_ns = jitter_max_ns_;
  cfg.jitter_seed = jitter_seed_;
  cfg.obs = obs_;
  cfg.faults = faults_;
  cfg.resilience = resilience_;
  cfg.resilience_forced = resilience_forced_;
  const PartitionMap map =
      partition_fabric(*fabric_, partitions_ == 0 ? 1 : partitions_);
  stats_ = PdesStats{};
  RunResult result =
      detail::run_core(cfg, map, stages, progression, event_limit, &stats_);
  return result;
}

}  // namespace ftcf::sim
