// A typed event queue for hot simulation loops: unlike EventQueue's
// std::function callbacks (fine for coarse events), this stores plain
// event records and dispatches through one switch, avoiding per-event
// allocations in multi-million-event runs.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/expects.hpp"

namespace ftcf::sim {

/// Event queue with a *canonical* total order: entries pop by
/// (timestamp, KeyFn(event), push order). TypedEventQueue's FIFO tie-break
/// is stable, but the tie order it realizes is the *push* order — a
/// schedule-history artifact that a partitioned simulator cannot reproduce
/// (two logical processes pushing the same instant's events never agree on
/// a global push sequence). KeyFn derives the tie order from event
/// *content* instead, so any execution that delivers the same event set
/// pops it in the same order. Events whose keys compare equal must commute;
/// the push-order seq remains as a final stabilizer for exact duplicates.
///
/// KeyFn must be a stateless callable returning a totally ordered value
/// (e.g. a std::tuple of integral fields).
template <typename Event, typename KeyFn>
class KeyedEventQueue {
 public:
  void push(SimTime at, Event ev) {
    util::expects(at >= now_, "cannot schedule an event in the past");
    heap_.push(Entry{at, next_seq_++, KeyFn{}(ev), ev});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  /// Timestamp of the next event to pop; kNever when empty.
  [[nodiscard]] SimTime next_time() const noexcept {
    return heap_.empty() ? kNever : heap_.top().at;
  }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Pop the next event, advancing now(). Precondition: !empty().
  Event pop() {
    util::expects(!heap_.empty(), "pop from empty event queue");
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.at;
    ++processed_;
    return entry.ev;
  }

 private:
  using Key = decltype(KeyFn{}(std::declval<const Event&>()));
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Key key;
    Event ev;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      if (a.key != b.key) return b.key < a.key;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

template <typename Event>
class TypedEventQueue {
 public:
  void push(SimTime at, Event ev) {
    util::expects(at >= now_, "cannot schedule an event in the past");
    heap_.push(Entry{at, next_seq_++, ev});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  /// Timestamp of the next event to pop; kNever when empty. Lets callers
  /// interleave bookkeeping (e.g. periodic samplers) at exact boundaries.
  [[nodiscard]] SimTime next_time() const noexcept {
    return heap_.empty() ? kNever : heap_.top().at;
  }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Pop the next event, advancing now(). Precondition: !empty().
  Event pop() {
    util::expects(!heap_.empty(), "pop from empty event queue");
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.at;
    ++processed_;
    return entry.ev;
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Event ev;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace ftcf::sim
