// A typed event queue for hot simulation loops: unlike EventQueue's
// std::function callbacks (fine for coarse events), this stores plain
// event records and dispatches through one switch, avoiding per-event
// allocations in multi-million-event runs.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/time.hpp"
#include "util/expects.hpp"

namespace ftcf::sim {

template <typename Event>
class TypedEventQueue {
 public:
  void push(SimTime at, Event ev) {
    util::expects(at >= now_, "cannot schedule an event in the past");
    heap_.push(Entry{at, next_seq_++, ev});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  /// Timestamp of the next event to pop; kNever when empty. Lets callers
  /// interleave bookkeeping (e.g. periodic samplers) at exact boundaries.
  [[nodiscard]] SimTime next_time() const noexcept {
    return heap_.empty() ? kNever : heap_.top().at;
  }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Pop the next event, advancing now(). Precondition: !empty().
  Event pop() {
    util::expects(!heap_.empty(), "pop from empty event queue");
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.at;
    ++processed_;
    return entry.ev;
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Event ev;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace ftcf::sim
