// Conservative parallel discrete-event packet simulator (PDES).
//
// ParallelPacketSim runs the exact same simulation semantics as PacketSim,
// but partitioned: the fabric is split into per-LP regions (leaf subtrees
// plus round-robin spine groups — see partition.hpp), each logical process
// owns a private canonically-ordered event queue, and cross-partition link
// events travel through per-pair outbox channels that are exchanged at
// window barriers.
//
// Synchronization is conservative, Lubachevsky-style bounded windows: every
// cross-partition event (a packet crossing a cable, a credit returning
// upstream, delivery accounting flowing back to the source) is scheduled at
// least one cut-through cable delay in the future, so
//
//   horizon = min(next event time over all partitions) + cable_latency_ns
//
// is a safe lookahead bound — no LP can receive an event earlier than the
// horizon, so every LP may process its queue up to (but excluding) the
// horizon without ever rolling back. Synchronized-mode stage barriers ride
// the same bound: the stage-advance event is scheduled one cable delay
// after the globally last message completion.
//
// Determinism contract (same seed + same partition count):
//   * RunResult is byte-identical at any --threads, and also byte-identical
//     to the serial PacketSim for every partition count — the serial engine
//     is the differential oracle (pinned by the `pdes` ctest label).
//   * Metrics JSON, traces and heatmaps are byte-identical at any --threads
//     for a fixed partition count. Trace *order* and link-sample boundaries
//     may differ between partition counts; per-partition trace shards merge
//     by content (timestamp, shard, seq) — see docs/OBSERVABILITY.md.
#pragma once

#include "sim/packet_sim.hpp"
#include "sim/partition.hpp"

namespace ftcf::sim {

/// Execution statistics of the last ParallelPacketSim::run (deterministic:
/// pure functions of the workload and partition count, no wall-clock).
struct PdesStats {
  std::uint32_t partitions = 1;
  std::uint64_t windows = 0;  ///< conservative synchronization windows
  std::uint64_t events = 0;   ///< core events processed (== RunResult::events)
  std::uint64_t channel_events = 0;  ///< cross-partition link events exchanged
};

/// Drop-in parallel counterpart of PacketSim: identical configuration
/// surface, identical RunResult for any partition count. Partition window
/// execution fans out over ftcf::par (the --threads pool); with one
/// partition the engine degenerates to the serial event loop.
class ParallelPacketSim {
 public:
  ParallelPacketSim(const topo::Fabric& fabric,
                    const route::ForwardingTables& tables,
                    Calibration calibration = Calibration::qdr_pcie_gen2());

  /// Number of fabric partitions (logical processes). 0 and 1 both select
  /// the serial path; larger values are clamped to the number of leaf
  /// switches (see partition_fabric). Partitioned runs require
  /// calib.cable_latency_ns >= 1 — the conservative lookahead.
  void set_partitions(std::uint32_t partitions) noexcept {
    partitions_ = partitions;
  }

  void set_up_selection(UpSelection mode) noexcept { up_selection_ = mode; }
  void set_observer(const obs::SimObserver& observer) noexcept {
    obs_ = observer;
  }
  void set_stage_jitter(SimTime max_ns, std::uint64_t seed) noexcept {
    jitter_max_ns_ = max_ns;
    jitter_seed_ = seed;
  }
  void set_fault_state(const fault::FaultState* state) noexcept {
    faults_ = state;
  }
  void set_resilience(const Resilience& policy) noexcept {
    resilience_ = policy;
    resilience_forced_ = true;
  }

  /// Same credit-flow buffer topology as PacketSim::buffer_topology().
  [[nodiscard]] std::vector<PortBuffer> buffer_topology() const;

  /// Simulate the workload to completion. Semantics and RunResult match
  /// PacketSim::run exactly; `event_limit` is enforced at window
  /// granularity in partitioned runs.
  [[nodiscard]] RunResult run(const std::vector<StageTraffic>& stages,
                              Progression progression,
                              std::uint64_t event_limit = 2'000'000'000ULL);

  /// Stats of the most recent run().
  [[nodiscard]] const PdesStats& last_stats() const noexcept { return stats_; }

 private:
  const topo::Fabric* fabric_;
  const route::ForwardingTables* tables_;
  Calibration calib_;
  std::uint32_t partitions_ = 1;
  UpSelection up_selection_ = UpSelection::kDeterministic;
  SimTime jitter_max_ns_ = 0;
  std::uint64_t jitter_seed_ = 1;
  obs::SimObserver obs_;
  const fault::FaultState* faults_ = nullptr;
  Resilience resilience_;
  bool resilience_forced_ = false;
  PdesStats stats_;
};

}  // namespace ftcf::sim
