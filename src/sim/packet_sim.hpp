// Packet-level discrete-event network simulator (the OMNeT++ substitute).
//
// Mechanisms modelled, matching the paper's §II setup:
//   * hosts inject MTU-sized packets at PCIe rate, walking their message
//     sequence asynchronously (next message as soon as the previous one is
//     on the wire) or under a per-stage barrier;
//   * input-buffered switches: per-input FIFO queues -> head-of-line
//     blocking, the mechanism behind the measured bandwidth loss;
//   * credit-based link-level flow control (finite input buffers, so
//     congestion backpressures toward the sources);
//   * round-robin output arbitration; cut-through-style per-hop latency
//     (switch + cable) added per packet, pipelined at packet granularity;
//   * links run at QDR rate, host-adjacent links at the PCIe rate.
//
// Determinism: same-time events order by a canonical content key (time,
// event type, port, message, packet seq) rather than by push order, so the
// serial engine and the partitioned PDES engine (pdes.hpp) realize the same
// schedule; no randomness inside the simulator — workloads carry all the
// randomness. PacketSim is the single-partition differential oracle for
// ParallelPacketSim.
#pragma once

#include <algorithm>
#include <deque>
#include <memory>

#include "fault/degraded.hpp"
#include "obs/sim_hooks.hpp"
#include "routing/lft.hpp"
#include "sim/ib_calibration.hpp"
#include "sim/metrics.hpp"
#include "sim/traffic.hpp"

namespace ftcf::sim {

/// How switches pick the up-going port for ascending packets:
///   kDeterministic — follow the forwarding tables (the paper's proposal);
///   kAdaptive      — any currently grantable up-port may take the packet
///                    (idealized adaptive routing: reactive, per-packet).
/// Adaptive routing avoids persistent hot spots but reorders packets — the
/// §I objection for transports like InfiniBand Reliable Connected; the
/// RunResult reports the reordering it caused.
enum class UpSelection { kDeterministic, kAdaptive };

/// Static description of one directed link's receive side as the credit
/// flow control configures it: the initial credit grant and whether that
/// grant models a finite input buffer (links into switches) or the
/// effectively-unbounded host sink. Indexed by the *source* PortId of the
/// link, like every per-channel quantity in the simulator.
struct PortBuffer {
  std::uint32_t credits = 0;          ///< initial credit grant, in packets
  bool finite = false;                ///< true: finite input buffer (can block)
  double rate_bytes_per_sec = 0.0;    ///< pristine drain rate of the link
};

/// Retry policy for resilient runs (transport-level, IB-RC-style semantics).
/// A packet's timeout is armed when it goes on the wire; on expiry the source
/// re-injects a copy with exponential backoff (timeout_ns << attempts so
/// far, clamped — see retx_backoff_ns). After `max_attempts` total tries the
/// packet's bytes are written off and its message completes as *failed*
/// rather than hanging the run.
struct Resilience {
  SimTime timeout_ns = 500'000;    ///< base per-packet timeout (500 us)
  std::uint32_t max_attempts = 4;  ///< total tries, first send included
};

/// Ceiling for one retransmit wait: 2^40 ns (~18.3 simulated minutes), far
/// beyond any sane timeout yet small enough that `now + ser + wait` can
/// never overflow SimTime. Documented contract: backoff doubles per attempt
/// until it reaches this ceiling and then stays there.
inline constexpr SimTime kRetxBackoffCeilingNs = SimTime{1} << 40;

/// The exponential-backoff wait armed for retransmit attempt `attempt`
/// (1-based; attempt 1 is the first injection). Doubles per attempt —
/// base << (attempt - 1) — but saturates at kRetxBackoffCeilingNs instead
/// of shifting into overflow: the naive `timeout_ns << attempts` is UB for
/// large timeouts or attempt counts (a 2^43 ns timeout overflows SimTime on
/// the second attempt). Shared by the serial and partitioned engines.
[[nodiscard]] constexpr SimTime retx_backoff_ns(SimTime base_timeout_ns,
                                                std::uint32_t attempt) noexcept {
  const std::uint32_t shift = attempt > 1 ? std::min(attempt - 1, 40u) : 0u;
  if (base_timeout_ns >= (kRetxBackoffCeilingNs >> shift))
    return kRetxBackoffCeilingNs;
  return base_timeout_ns << shift;
}

class PacketSim {
 public:
  PacketSim(const topo::Fabric& fabric, const route::ForwardingTables& tables,
            Calibration calibration = Calibration::qdr_pcie_gen2());

  void set_up_selection(UpSelection mode) noexcept { up_selection_ = mode; }

  /// Attach the observability layer (trace recorder / metrics registry /
  /// sampling period) to subsequent run() calls. Default: fully disabled.
  /// Observation never changes simulation behavior — event schedules and
  /// RunResults are identical with and without an observer.
  void set_observer(const obs::SimObserver& observer) noexcept {
    obs_ = observer;
  }

  /// Synchronized-mode OS jitter (§VII discussion): each host's entry into
  /// each stage is delayed by an independent uniform [0, max_ns] draw.
  /// Zero (default) disables it.
  void set_stage_jitter(SimTime max_ns, std::uint64_t seed) noexcept {
    jitter_max_ns_ = max_ns;
    jitter_seed_ = seed;
  }

  /// Attach a resolved fault state (must outlive the sim and be resolved
  /// against the same Fabric). Static dead links/switches and degraded rates
  /// apply from t=0; the flap schedule is executed as mid-run events. A
  /// non-pristine state switches the resilient machinery on automatically.
  /// Pass nullptr to detach.
  void set_fault_state(const fault::FaultState* state) noexcept {
    faults_ = state;
  }

  /// Override the retry policy and force the resilient path on even on a
  /// pristine fabric. Without this call (and with no non-pristine fault
  /// state) the simulator runs its classic path, byte-identical to builds
  /// without the fault layer.
  void set_resilience(const Resilience& policy) noexcept {
    resilience_ = policy;
    resilience_forced_ = true;
  }

  /// The port-buffer topology the credit flow control runs over, indexed by
  /// source PortId — exactly the per-port credit grants and rates the engine
  /// initializes itself with, exposed for static analysis (the credit-loop
  /// prover in ftcf::check). Reflects the pristine calibration: fault-state
  /// rate factors apply at run time and never change which buffers are
  /// finite. Pure accessor; no simulation state is created or touched.
  [[nodiscard]] std::vector<PortBuffer> buffer_topology() const;

  /// Simulate the workload to completion and report aggregate metrics.
  /// `event_limit` guards against runaway configurations. With faults the
  /// run still always terminates: every packet either delivers or times out,
  /// and every message completes as delivered or failed.
  [[nodiscard]] RunResult run(const std::vector<StageTraffic>& stages,
                              Progression progression,
                              std::uint64_t event_limit = 2'000'000'000ULL);

 private:
  const topo::Fabric* fabric_;
  const route::ForwardingTables* tables_;
  Calibration calib_;
  UpSelection up_selection_ = UpSelection::kDeterministic;
  SimTime jitter_max_ns_ = 0;
  std::uint64_t jitter_seed_ = 1;
  obs::SimObserver obs_;
  const fault::FaultState* faults_ = nullptr;
  Resilience resilience_;
  bool resilience_forced_ = false;
};

}  // namespace ftcf::sim
