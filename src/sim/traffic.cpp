#include "sim/traffic.hpp"

#include "util/expects.hpp"

namespace ftcf::sim {

std::vector<StageTraffic> traffic_from_cps(
    const cps::Sequence& seq, const order::NodeOrdering& ordering,
    std::uint64_t num_hosts, std::uint64_t bytes,
    const std::vector<std::size_t>* stage_subset) {
  util::expects(bytes > 0, "messages must carry at least one byte");
  std::vector<StageTraffic> out;
  const auto emit = [&](const cps::Stage& stage) {
    StageTraffic st(num_hosts);
    for (const cps::Pair& pr : ordering.map_stage(stage)) {
      if (pr.src == pr.dst) continue;
      st.add(pr.src, pr.dst, bytes);
    }
    out.push_back(std::move(st));
  };

  if (stage_subset == nullptr) {
    for (const cps::Stage& stage : seq.stages) emit(stage);
    return out;
  }
  for (const std::size_t idx : *stage_subset) {
    util::expects(idx < seq.stages.size(), "stage subset index out of range");
    emit(seq.stages[idx]);
  }
  return out;
}

}  // namespace ftcf::sim
