// Calibration constants matching the paper's §II simulation setup:
// InfiniBand QDR links of Mellanox IS4 36-port switches (4000 MB/s
// unidirectional) feeding hosts over PCIe Gen2 8x (3250 MB/s unidirectional).
#pragma once

#include <cstdint>

namespace ftcf::sim {

struct Calibration {
  double link_bw_bytes_per_sec = 4000e6;   ///< QDR 4x effective data rate
  double host_bw_bytes_per_sec = 3250e6;   ///< PCIe Gen2 8x injection limit
  std::uint64_t mtu_bytes = 2048;          ///< IB MTU used by the model
  std::int64_t switch_latency_ns = 100;    ///< IS4-class cut-through latency
  std::int64_t cable_latency_ns = 10;      ///< ~2 m copper cable
  std::uint32_t input_buffer_packets = 32; ///< per input port (credits)
  std::uint64_t mpi_overhead_ns = 500;     ///< per-message software overhead

  static Calibration qdr_pcie_gen2() { return Calibration{}; }
};

}  // namespace ftcf::sim
