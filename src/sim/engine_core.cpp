// The shared packet-simulation engine: one implementation executing over a
// PartitionMap. Design notes (docs/PERF.md has the long-form discussion):
//
//   * Canonical event order. Every queue pops by (time, event-type rank,
//     port, message, packet seq) — event *content*, not push order. Push
//     order is a schedule-history artifact no partitioned execution can
//     reproduce; content keys give a total order every execution realizes
//     identically. Events with equal keys commute (duplicate credits,
//     identical retransmit twins), so the residual push-order stabilizer
//     never changes results.
//   * Ownership. Port state (queues, credits, busy, round-robin cursors)
//     belongs to the partition owning the port's node. Message accounting
//     (MsgMeta, pending table, retransmit queues, host cursors) belongs to
//     the partition owning the *source* host: a delivery at the destination
//     forwards a kDeliverAcct event — one cable delay later — back to the
//     source partition, which arbitrates duplicate claims and completes the
//     message. The serial engine uses the same accounting delay, so both
//     engines realize the same schedule.
//   * Conservative lookahead. Every cross-partition event is scheduled at
//     least cable_latency_ns ahead, so each window may process all events
//     strictly before (global min next-event time + cable_latency_ns).
//   * Stage barriers. In synchronized mode the coordinator detects the
//     global outstanding-message count reaching zero at a window boundary
//     and schedules a kStageAdvance event one cable delay after the last
//     completion — provably at or after every partition's local clock, so
//     the barrier needs no rollback either.
#include "sim/engine_core.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <memory>
#include <tuple>
#include <utility>

#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "sim/typed_queue.hpp"
#include "util/expects.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::sim::detail {

using topo::Fabric;
using topo::NodeKind;
using topo::PortId;
using util::expects;

namespace {

/// Sentinel: this packet has no pending-table entry (non-resilient runs).
constexpr std::uint32_t kNoPend = std::numeric_limits<std::uint32_t>::max();

struct Packet {
  std::uint32_t dst = 0;
  std::uint32_t bytes = 0;
  std::uint32_t msg = 0;
  std::uint32_t seq = 0;  ///< position within the message (reorder tracking)
  std::uint32_t pend = kNoPend;  ///< src-partition pending slot (resilient)
  std::uint32_t src = 0;         ///< source host (routes delivery accounting)
  std::uint16_t stage = obs::kNoStage;  ///< CPS stage (trace tagging)
};

/// Enumerator order IS the canonical same-timestamp rank: at equal times,
/// link state changes apply first, then packet motion, then bookkeeping,
/// with the stage barrier sorting after everything else of its instant.
enum class EvType : std::uint8_t {
  kLinkDown,      ///< scripted cable death (one event per endpoint)
  kLinkUp,        ///< scripted cable revival (one event per endpoint)
  kArrive,        ///< packet reaches a port after wire + switch latency
  kOutFree,       ///< output port finished serializing
  kCredit,        ///< buffer credit returns upstream
  kHostKick,      ///< (re)start a host's injection loop
  kDeliverAcct,   ///< delivery accounting at the source partition
  kTimeout,       ///< per-packet retransmit timer (resilient runs)
  kStageAdvance,  ///< synchronized-mode stage barrier release
};

struct Ev {
  EvType type = EvType::kArrive;
  PortId port = 0;  ///< kArrive: receiving port; kOutFree/kCredit: source
                    ///< port; kHostKick/kDeliverAcct: host index;
                    ///< kTimeout: pending slot; kLinkDown/Up: the endpoint
  Packet pkt;       ///< kArrive / kDeliverAcct
  SimTime aux = 0;  ///< kDeliverAcct: arrival time; kLinkDown/Up: 1 on the
                    ///< primary endpoint (counts the flap once)
};

/// Canonical tie key — see typed_queue.hpp's KeyedEventQueue.
struct EvKeyFn {
  [[nodiscard]] std::tuple<std::uint8_t, std::uint32_t, std::uint32_t,
                           std::uint32_t>
  operator()(const Ev& ev) const noexcept {
    return {static_cast<std::uint8_t>(ev.type), ev.port, ev.pkt.msg,
            ev.pkt.seq};
  }
};

using EvQueue = KeyedEventQueue<Ev, EvKeyFn>;

/// One event crossing a partition boundary (outbox -> inbox channel entry).
struct ChannelEv {
  SimTime at = 0;
  Ev ev;
};

struct MsgMeta {
  std::uint64_t remaining = 0;
  SimTime start = -1;
  std::uint32_t src = 0;
  std::uint32_t max_seq_seen = 0;
  std::uint16_t stage = obs::kNoStage;  ///< CPS stage the message belongs to
  bool any_delivered = false;
  bool failed = false;  ///< some bytes were written off (resilient runs)
};

struct HostCursor {
  std::vector<Message> msgs;            ///< messages of the current phase
  std::vector<std::uint16_t> stage_of;  ///< CPS stage per message (parallel)
  std::size_t index = 0;                ///< current message
  std::uint64_t offset = 0;             ///< bytes already injected of it
  std::uint32_t first_msg_id = 0;       ///< msg ids are first_msg_id + index

  [[nodiscard]] bool done() const noexcept { return index >= msgs.size(); }
};

/// Clamp a stage index into the trace event's uint16 field.
std::uint16_t stage_tag(std::size_t stage) noexcept {
  return stage >= obs::kNoStage ? obs::kNoStage
                                : static_cast<std::uint16_t>(stage);
}

/// One in-flight packet awaiting delivery confirmation (resilient runs).
/// Resolution is single-shot: the first delivery accounting (or the final
/// timeout) claims the slot; late twins count as duplicates and touch no
/// message accounting — so bytes are never double-counted.
struct Pending {
  Packet pkt;
  std::uint32_t attempts = 1;  ///< sends so far (first injection included)
  bool resolved = false;
};

// GCC/Clang both provide __int128 on every 64-bit target the project
// supports; __extension__ silences the pedantic "not ISO C++" diagnostic.
__extension__ typedef unsigned __int128 U128;

/// Exact integer latency moments: count / sum / sum-of-squares (128-bit) /
/// min / max in nanoseconds. Unlike streaming Welford updates these merge
/// by pure summation, so the final statistics are independent of partition
/// count and accumulation order — the PDES ≡ serial property extends to
/// RunResult::message_latency_us.
struct LatencyMoments {
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  U128 sumsq_ns = 0;
  SimTime min_ns = kNever;
  SimTime max_ns = 0;

  void add(SimTime ns) noexcept {
    ++count;
    sum_ns += static_cast<std::uint64_t>(ns);
    sumsq_ns += static_cast<U128>(ns) * static_cast<U128>(ns);
    min_ns = std::min(min_ns, ns);
    max_ns = std::max(max_ns, ns);
  }
  void merge(const LatencyMoments& other) noexcept {
    count += other.count;
    sum_ns += other.sum_ns;
    sumsq_ns += other.sumsq_ns;
    min_ns = std::min(min_ns, other.min_ns);
    max_ns = std::max(max_ns, other.max_ns);
  }
  /// Convert to the reporting accumulator (microseconds). One fixed
  /// expression over the merged integer moments: deterministic for any
  /// partition count.
  [[nodiscard]] util::Accumulator to_accumulator_us() const {
    if (count == 0) return {};
    const double n = static_cast<double>(count);
    const double sum_us = static_cast<double>(sum_ns) / 1000.0;
    const double sumsq_us = static_cast<double>(sumsq_ns) / 1.0e6;
    double m2 = sumsq_us - (sum_us / n) * sum_us;
    if (m2 < 0.0) m2 = 0.0;  // fp cancellation guard
    return util::Accumulator::from_moments(
        count, sum_us, sum_us / n, m2, static_cast<double>(min_ns) / 1000.0,
        static_cast<double>(max_ns) / 1000.0);
  }
};

/// One link-sample boundary's contribution from one partition; index-aligned
/// across partitions (every LP fires the identical boundary list) and merged
/// into the global time series by the coordinator.
struct SamplePartial {
  SimTime at = 0;
  double util_sum = 0.0;
  double util_max = 0.0;
  std::uint32_t links_active = 0;
  std::uint64_t depth_total = 0;
  std::uint32_t depth_max = 0;
};

/// Per-partition logical process: private event queue, the state of every
/// owned port and source host, outbox channels toward the other partitions.
/// State vectors are fabric-sized for O(1) indexing; an LP only ever touches
/// entries it owns.
struct Lp {
  std::uint32_t self = 0;

  EvQueue heap;
  std::vector<ChannelEv> inbox;
  std::vector<std::vector<ChannelEv>> outbox;  ///< by destination partition

  std::vector<bool> busy;                ///< per source port
  std::vector<std::uint32_t> credits;    ///< per source port
  std::vector<std::uint32_t> rr;         ///< per switch output port
  std::vector<double> rate;              ///< per source port (bytes/s)
  std::vector<SimTime> busy_ns;          ///< per source port: tx time carried
  std::vector<std::uint32_t> max_depth;  ///< per input port: queue watermark
  std::vector<std::deque<Packet>> queues;  ///< per switch input port
  std::vector<PortId> owned_ports;         ///< ascending, sampling scan order

  std::vector<HostCursor> cursors;  ///< by host; only owned hosts populated
  std::vector<MsgMeta> msgs;        ///< by global msg id; only owned valid

  std::vector<std::uint8_t> dead;    ///< per directed link (source port)
  std::vector<SimTime> revives_at;   ///< per port: scheduled revival
  std::vector<Pending> pending;      ///< per injected packet (owned hosts)
  std::vector<std::deque<std::uint32_t>> retx_q;  ///< per host: pending slots

  obs::TraceRecorder* trace = nullptr;  ///< user trace (serial) or own shard

  // Tallies (merged by the coordinator in partition order).
  std::uint64_t events = 0;  ///< dispatched events (stage barriers excluded)
  std::uint64_t channel_events = 0;
  std::uint64_t credit_stalls = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_retransmitted = 0;
  std::uint64_t duplicate_packets = 0;
  std::uint64_t messages_failed = 0;
  std::uint64_t bytes_failed = 0;
  std::uint64_t link_down_events = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t finished_msgs = 0;  ///< delivered + failed (barrier counting)
  SimTime last_delivery = 0;
  SimTime last_finish_at = 0;
  LatencyMoments latency;
  obs::Histogram latency_hist{0.0, 10'000.0, 100};
  std::vector<std::uint64_t> vl_busy_ns;  ///< per destination lane

  // Link sampling.
  SimTime next_sample = 0;
  SimTime last_sample_at = 0;
  std::vector<SimTime> sampled_busy;  ///< busy_ns at the previous sample
  std::vector<SamplePartial> partials;
};

class Core {
 public:
  Core(const EngineConfig& cfg, const PartitionMap& map,
       const std::vector<StageTraffic>& stages, Progression progression)
      : cfg_(cfg),
        fabric_(*cfg.fabric),
        tables_(*cfg.tables),
        map_(map),
        stages_(stages),
        progression_(progression),
        num_parts_(map.num_partitions),
        lookahead_(cfg.calib.cable_latency_ns) {
    resilient_ = cfg_.resilience_forced ||
                 (cfg_.faults != nullptr && !cfg_.faults->pristine());
    if (resilient_) {
      expects(cfg_.resilience.timeout_ns > 0 &&
                  cfg_.resilience.max_attempts > 0,
              "resilience policy must allow at least one timed attempt");
    }
    if (cfg_.faults != nullptr) {
      expects(&cfg_.faults->fabric() == &fabric_,
              "fault state resolved against a different fabric");
    }
    sampling_ = cfg_.obs.sampling();
    if (num_parts_ > 1) {
      expects(lookahead_ >= 1,
              "partitioned simulation requires cable_latency_ns >= 1 (the "
              "conservative lookahead)");
      shards_ = std::make_unique<obs::ShardedTraceRecorder>(num_parts_);
    }
    init_lps();
  }

  RunResult run(std::uint64_t event_limit, PdesStats* stats) {
    FTCF_PROF_SCOPE("packet_sim_run");
    load_initial_traffic();
    for (auto& lp : lps_) schedule_flaps(*lp);
    for (auto& lp : lps_) kick_hosts(*lp, 0);
    if (num_parts_ == 1) {
      drive_serial(event_limit);
    } else {
      drive_windows(event_limit);
    }
    finalize_sampling();
    expects(finished_total() == loaded_total_ &&
                next_stage_ >= stages_.size(),
            "simulation drained with undelivered traffic");
    return assemble(stats);
  }

 private:
  // --- setup ----------------------------------------------------------------

  void init_lps() {
    const std::uint32_t ports = fabric_.num_ports();
    lps_.reserve(num_parts_);
    for (std::uint32_t p = 0; p < num_parts_; ++p) {
      auto lp = std::make_unique<Lp>();
      lp->self = p;
      lp->outbox.resize(num_parts_);
      lp->busy.assign(ports, false);
      lp->credits.assign(ports, 0);
      lp->rr.assign(ports, 0);
      lp->busy_ns.assign(ports, 0);
      lp->max_depth.assign(ports, 0);
      lp->queues.resize(ports);
      lp->rate.reserve(ports);
      for (PortId pid = 0; pid < ports; ++pid) {
        const PortBuffer buffer = engine_port_buffer(fabric_, cfg_.calib, pid);
        lp->credits[pid] = buffer.credits;
        lp->rate.push_back(buffer.rate_bytes_per_sec);
      }
      lp->cursors.resize(fabric_.num_hosts());
      lp->retx_q.resize(fabric_.num_hosts());
      lp->dead.assign(ports, 0);
      lp->revives_at.assign(ports, kNever);
      if (cfg_.faults != nullptr) {
        for (PortId pid = 0; pid < ports; ++pid) {
          if (!cfg_.faults->link_up(pid)) lp->dead[pid] = 1;
          lp->rate[pid] *= cfg_.faults->rate_factor(pid);
        }
      }
      for (const topo::NodeId node : map_.nodes_of[p]) {
        const topo::Node& n = fabric_.node(node);
        const std::uint32_t nports = n.num_down_ports + n.num_up_ports;
        for (std::uint32_t i = 0; i < nports; ++i)
          lp->owned_ports.push_back(fabric_.port_id(node, i));
      }
      std::sort(lp->owned_ports.begin(), lp->owned_ports.end());
      if (sampling_) {
        lp->next_sample = cfg_.obs.sample_period_ns;
        lp->sampled_busy.assign(ports, 0);
      }
      lp->trace = cfg_.obs.trace != nullptr
                      ? (num_parts_ > 1 ? &shards_->shard(p) : cfg_.obs.trace)
                      : nullptr;
      lps_.push_back(std::move(lp));
    }
    if (sampling_) coord_next_sample_ = cfg_.obs.sample_period_ns;
  }

  /// Assemble one tagged trace event (brace-init would mis-map the vl/stage
  /// fields at the many call sites, so build it explicitly).
  static void trace_event(obs::TraceRecorder* sink, SimTime at, SimTime dur,
                          obs::EventKind kind, std::uint32_t a,
                          std::uint32_t b, std::uint32_t c,
                          std::uint16_t stage = obs::kNoStage,
                          std::uint8_t vl = 0) {
    obs::TraceEvent ev;
    ev.at = at;
    ev.dur = dur;
    ev.kind = kind;
    ev.vl = vl;
    ev.stage = stage;
    ev.a = a;
    ev.b = b;
    ev.c = c;
    sink->record(ev);
  }

  /// The coordinator's trace sink: the user's recorder when serial, shard 0
  /// of the merge when partitioned (stage markers carry no port identity).
  [[nodiscard]] obs::TraceRecorder* coord_trace() const {
    return lps_[0]->trace;
  }

  // --- traffic loading (coordinator only, between windows) ------------------

  /// Distribute per-host cursors to their owning partitions and append the
  /// message metadata block. Msg ids are global and assigned host-major in
  /// ascending host order — identical for every partition count.
  void distribute_cursors(std::vector<HostCursor> cursors) {
    std::uint64_t active = 0;
    auto next_id = static_cast<std::uint32_t>(msgs_total_);
    std::vector<std::pair<std::uint64_t, HostCursor>> placed;
    placed.reserve(cursors.size());
    for (std::uint64_t h = 0; h < cursors.size(); ++h) {
      HostCursor& cur = cursors[h];
      cur.index = 0;
      cur.offset = 0;
      cur.first_msg_id = next_id;
      for (const Message& msg : cur.msgs) {
        expects(msg.dst < fabric_.num_hosts() && msg.dst != h,
                "message destination invalid");
      }
      next_id += static_cast<std::uint32_t>(cur.msgs.size());
      if (!cur.msgs.empty()) ++active;
      placed.emplace_back(h, std::move(cur));
    }
    msgs_total_ = next_id;
    active_hosts_ = std::max(active_hosts_, active);
    for (auto& lp : lps_) lp->msgs.resize(msgs_total_);
    for (auto& [h, cur] : placed) {
      Lp& lp = *lps_[map_.owner_host(h)];
      for (std::size_t i = 0; i < cur.msgs.size(); ++i) {
        const Message& msg = cur.msgs[i];
        MsgMeta meta{msg.bytes, -1, static_cast<std::uint32_t>(h)};
        if (i < cur.stage_of.size()) meta.stage = cur.stage_of[i];
        lp.msgs[cur.first_msg_id + i] = meta;
        ++loaded_total_;
      }
      lp.cursors[h] = std::move(cur);
    }
  }

  void load_initial_traffic() {
    if (progression_ == Progression::kAsync) {
      // Concatenate every stage into one per-host sequence. Stage identity
      // is lost (hosts free-run), so the trace gets begin markers only.
      std::vector<HostCursor> cursors(fabric_.num_hosts());
      for (std::size_t s = 0; s < stages_.size(); ++s) {
        const StageTraffic& st = stages_[s];
        expects(st.sends.size() == fabric_.num_hosts(),
                "stage traffic must cover every host");
        for (std::uint64_t h = 0; h < st.sends.size(); ++h) {
          cursors[h].msgs.insert(cursors[h].msgs.end(), st.sends[h].begin(),
                                 st.sends[h].end());
          cursors[h].stage_of.insert(cursors[h].stage_of.end(),
                                     st.sends[h].size(), stage_tag(s));
        }
        if (cfg_.obs.trace != nullptr)
          trace_event(coord_trace(), 0, 0, obs::EventKind::kStageBegin,
                      static_cast<std::uint32_t>(s), 0, 0, stage_tag(s));
      }
      distribute_cursors(std::move(cursors));
      next_stage_ = stages_.size();
    } else {
      load_next_sync_stage(0);
    }
  }

  /// Load the next non-empty synchronized stage; begin_at tags the trace
  /// marker with the time hosts will actually enter it.
  bool load_next_sync_stage(SimTime begin_at) {
    while (next_stage_ < stages_.size()) {
      const std::size_t stage = next_stage_;
      const StageTraffic& st = stages_[next_stage_++];
      expects(st.sends.size() == fabric_.num_hosts(),
              "stage traffic must cover every host");
      const std::uint64_t before = loaded_total_;
      std::vector<HostCursor> cursors(fabric_.num_hosts());
      for (std::uint64_t h = 0; h < st.sends.size(); ++h) {
        cursors[h].msgs = st.sends[h];
        cursors[h].stage_of.assign(st.sends[h].size(), stage_tag(stage));
      }
      distribute_cursors(std::move(cursors));
      if (loaded_total_ > before) {  // non-empty stage loaded
        if (cfg_.obs.trace != nullptr) {
          current_stage_ = static_cast<std::uint32_t>(stage);
          stage_active_ = true;
          trace_event(coord_trace(), begin_at, 0, obs::EventKind::kStageBegin,
                      current_stage_, 0, 0, stage_tag(stage));
        }
        return true;
      }
    }
    return false;
  }

  /// Translate the fault state's flap and repair schedules into per-endpoint
  /// kLinkDown/kLinkUp events on the owning partitions; remember each owned
  /// port's revival time (consulted while dead to decide wait-vs-drop). The
  /// primary endpoint (aux = 1) counts the flap once.
  void schedule_flaps(Lp& lp) {
    if (cfg_.faults == nullptr) return;
    const auto schedule_end = [&](PortId end, SimTime down_at, SimTime up_at,
                                  bool primary) {
      if (map_.owner_port(fabric_, end) != lp.self) return;
      lp.revives_at[end] = up_at;
      if (down_at >= 0) {
        Ev ev{EvType::kLinkDown, end, {}, primary ? 1 : 0};
        lp.heap.push(down_at, ev);
      }
      if (up_at != kNever) {
        Ev ev{EvType::kLinkUp, end, {}, primary ? 1 : 0};
        lp.heap.push(up_at, ev);
      }
    };
    for (const fault::FlapEvent& f : cfg_.faults->flaps()) {
      schedule_end(f.port, f.down_at, f.up_at, true);
      schedule_end(fabric_.port(f.port).peer, f.down_at, f.up_at, false);
    }
    // A repaired cable is dead from t=0 (the static resolution already
    // marked it) and revives at up_at — a flap whose down event has already
    // happened. Setting revives_at before the first host kick makes senders
    // park on the dead cable instead of writing it off.
    for (const fault::RepairEvent& r : cfg_.faults->repairs()) {
      schedule_end(r.port, -1, r.up_at, true);
      schedule_end(fabric_.port(r.port).peer, -1, r.up_at, false);
    }
  }

  // --- event routing --------------------------------------------------------

  /// Partition that must process `ev`. Timeouts and stage barriers never
  /// travel (they are scheduled by their owner); everything else derives
  /// its owner from the port or host it targets.
  [[nodiscard]] std::uint32_t dest_partition(const Ev& ev) const {
    switch (ev.type) {
      case EvType::kArrive:
      case EvType::kOutFree:
      case EvType::kCredit:
        return map_.owner_port(fabric_, ev.port);
      case EvType::kHostKick:
        return map_.owner_host(ev.port);
      case EvType::kDeliverAcct:
        return map_.owner_host(ev.pkt.src);
      case EvType::kTimeout:
      case EvType::kLinkDown:
      case EvType::kLinkUp:
      case EvType::kStageAdvance:
        break;  // scheduled directly onto their owner, never via send()
    }
    expects(false, "event type is not routable");
    return 0;
  }

  /// Schedule `ev` at `at`: locally when this LP owns the handler, else
  /// through the outbox channel toward the owning partition (exchanged at
  /// the next window barrier — always >= one cable delay in the future).
  void send(Lp& lp, SimTime at, const Ev& ev) {
    if (num_parts_ == 1) {
      lp.heap.push(at, ev);
      return;
    }
    const std::uint32_t dst = dest_partition(ev);
    if (dst == lp.self) {
      lp.heap.push(at, ev);
    } else {
      lp.outbox[dst].push_back(ChannelEv{at, ev});
      ++lp.channel_events;
    }
  }

  // --- event dispatch -------------------------------------------------------

  /// Start (or resume) the LP's own hosts, applying per-host stage jitter
  /// when configured (§VII: OS jitter delays entry into each collective
  /// stage). Hosts are independent at kick time, so per-partition kicking
  /// in ascending host order matches the serial engine.
  void kick_hosts(Lp& lp, SimTime at) {
    for (const std::uint64_t h : map_.hosts_of[lp.self]) {
      if (cfg_.jitter_max_ns <= 0) {
        host_try_send(lp, h);
        continue;
      }
      util::SplitMix64 mix(cfg_.jitter_seed ^ (next_stage_ * 0x9e37ULL) ^ h);
      const auto delay = static_cast<SimTime>(
          mix.next() % static_cast<std::uint64_t>(cfg_.jitter_max_ns + 1));
      Ev ev{EvType::kHostKick, static_cast<PortId>(h), {}, 0};
      lp.heap.push(at + delay, ev);
    }
  }

  void dispatch(Lp& lp, const Ev& ev) {
    if (ev.type != EvType::kStageAdvance) ++lp.events;
    switch (ev.type) {
      case EvType::kArrive: on_arrive(lp, ev.port, ev.pkt); break;
      case EvType::kOutFree: on_out_free(lp, ev.port); break;
      case EvType::kCredit: on_credit(lp, ev.port); break;
      case EvType::kHostKick: host_try_send(lp, ev.port); break;
      case EvType::kDeliverAcct: on_deliver_acct(lp, ev); break;
      case EvType::kTimeout: on_timeout(lp, ev.port); break;
      case EvType::kLinkDown: on_link_down(lp, ev.port, ev.aux != 0); break;
      case EvType::kLinkUp: on_link_up(lp, ev.port); break;
      case EvType::kStageAdvance: kick_hosts(lp, lp.heap.now()); break;
    }
  }

  void on_arrive(Lp& lp, PortId in_port, const Packet& pkt) {
    const topo::Port& pt = fabric_.port(in_port);
    const topo::Node& node = fabric_.node(pt.node);
    if (node.kind == NodeKind::kHost) {
      deliver(lp, pt.node, pkt);
      return;
    }
    auto& queue = lp.queues[in_port];
    queue.push_back(pkt);
    const auto depth = static_cast<std::uint32_t>(queue.size());
    if (depth > lp.max_depth[in_port]) {
      lp.max_depth[in_port] = depth;
      if (lp.trace != nullptr)
        trace_event(lp.trace, lp.heap.now(), 0, obs::EventKind::kQueueDepth,
                    in_port, depth, 0, pkt.stage, cfg_.obs.vl_of(pkt.dst));
    }
    if (queue.size() == 1) kick_head(lp, pt.node, in_port);
  }

  /// Arbitration entry for the head of one input queue: try every output
  /// the head may leave through. Every packet passes through here exactly
  /// when it becomes a head, so this is also where resilient runs drop
  /// packets that can never leave — no LFT entry, or a dead out-port with
  /// no scheduled revival — instead of wedging the queue behind them. Heads
  /// parked on a dead-but-revivable port simply wait; the kLinkUp event
  /// re-arbitrates.
  void kick_head(Lp& lp, topo::NodeId sw, PortId in_port) {
    auto& queue = lp.queues[in_port];
    while (!queue.empty()) {
      const Packet pkt = queue.front();
      if (cfg_.up_selection == UpSelection::kDeterministic ||
          fabric_.is_ancestor_of_host(sw, pkt.dst)) {
        if (resilient_ && !tables_.has_entry(sw, pkt.dst)) {
          drop_head(lp, in_port, in_port);
          continue;
        }
        const PortId out = route_port(sw, pkt.dst);
        if (resilient_ && lp.dead[out] != 0) {
          if (lp.revives_at[out] == kNever) {
            drop_head(lp, in_port, out);
            continue;
          }
          return;  // parked until the scheduled revival re-kicks this queue
        }
        try_forward(lp, out);
        return;
      }
      // Adaptive ascent: any live up-port may take the packet.
      const topo::Node& node = fabric_.node(sw);
      bool any_alive = false;
      bool revivable = false;
      for (std::uint32_t q = 0; q < node.num_up_ports; ++q) {
        const PortId up = fabric_.port_id(sw, node.num_down_ports + q);
        if (resilient_ && lp.dead[up] != 0) {
          if (lp.revives_at[up] != kNever) revivable = true;
          continue;
        }
        any_alive = true;
        try_forward(lp, up);
      }
      if (resilient_ && !any_alive && !revivable) {
        drop_head(lp, in_port, in_port);
        continue;
      }
      return;
    }
  }

  /// Drop the head of `in_port`'s queue: free the buffer slot (credit goes
  /// back to the upstream sender) and let the retransmit timer — not the
  /// drop — decide the packet's fate.
  void drop_head(Lp& lp, PortId in_port, PortId blame_port) {
    auto& queue = lp.queues[in_port];
    const Packet pkt = queue.front();
    queue.pop_front();
    ++lp.packets_dropped;
    if (lp.trace != nullptr)
      trace_event(lp.trace, lp.heap.now(), 0, obs::EventKind::kPacketDropped,
                  blame_port, pkt.msg, pkt.seq, pkt.stage,
                  cfg_.obs.vl_of(pkt.dst));
    Ev credit{EvType::kCredit, fabric_.port(in_port).peer, {}, 0};
    send(lp, lp.heap.now() + cfg_.calib.cable_latency_ns, credit);
  }

  void on_out_free(Lp& lp, PortId out_port) {
    lp.busy[out_port] = false;
    const topo::Port& pt = fabric_.port(out_port);
    if (fabric_.node(pt.node).kind == NodeKind::kHost) {
      host_try_send(lp, fabric_.host_index(pt.node));
    } else {
      try_forward(lp, out_port);
    }
  }

  void on_credit(Lp& lp, PortId out_port) {
    ++lp.credits[out_port];
    const topo::Port& pt = fabric_.port(out_port);
    if (fabric_.node(pt.node).kind == NodeKind::kHost) {
      host_try_send(lp, fabric_.host_index(pt.node));
    } else {
      try_forward(lp, out_port);
    }
  }

  /// One endpoint of a scripted cable died: this direction stops granting.
  /// Transfers already on the wire still arrive (they left before the cut);
  /// heads parked on the dead port are re-arbitrated so permanent cuts drop
  /// them (freeing their buffer slots) instead of leaking credits forever.
  /// The peer endpoint processes its own kLinkDown at the same instant —
  /// link events rank before packet motion at equal timestamps.
  void on_link_down(Lp& lp, PortId end, bool primary) {
    if (primary) ++lp.link_down_events;
    lp.dead[end] = 1;
    if (lp.trace != nullptr)
      trace_event(lp.trace, lp.heap.now(), 0, obs::EventKind::kLinkDown, end,
                  0, 0);
    const topo::Port& pt = fabric_.port(end);
    const topo::Node& node = fabric_.node(pt.node);
    if (node.kind == NodeKind::kHost) {
      // A host cut off with no scheduled revival can never finish its
      // sends: write the rest of its workload off now.
      if (lp.revives_at[end] == kNever) fail_host(lp, fabric_.host_index(pt.node));
      return;
    }
    const std::uint32_t nports = node.num_down_ports + node.num_up_ports;
    for (std::uint32_t i = 0; i < nports; ++i) {
      const PortId in_port = fabric_.port_id(pt.node, i);
      if (!lp.queues[in_port].empty()) kick_head(lp, pt.node, in_port);
    }
  }

  /// One endpoint of a scripted cable revived: resume flow in this
  /// direction.
  void on_link_up(Lp& lp, PortId end) {
    lp.dead[end] = 0;
    if (lp.trace != nullptr)
      trace_event(lp.trace, lp.heap.now(), 0, obs::EventKind::kLinkUp, end, 0,
                  0);
    const topo::Port& pt = fabric_.port(end);
    if (fabric_.node(pt.node).kind == NodeKind::kHost) {
      host_try_send(lp, fabric_.host_index(pt.node));
    } else {
      try_forward(lp, end);  // parked heads may now leave through this port
    }
  }

  /// A packet's retransmit timer fired. Unresolved with tries left: queue a
  /// copy at the source (retransmissions preempt new traffic there).
  /// Unresolved with tries exhausted: write the packet's bytes off so its
  /// message still completes — as failed — and the run terminates.
  void on_timeout(Lp& lp, std::uint32_t pend_idx) {
    Pending& p = lp.pending[pend_idx];
    if (p.resolved) return;
    if (p.attempts >= cfg_.resilience.max_attempts) {
      p.resolved = true;
      account_failed(lp, p.pkt.msg, p.pkt.bytes);
      return;
    }
    ++p.attempts;
    lp.retx_q[p.pkt.src].push_back(pend_idx);
    host_try_send(lp, p.pkt.src);
  }

  // --- forwarding -----------------------------------------------------------

  [[nodiscard]] PortId route_port(topo::NodeId sw, std::uint32_t dst) const {
    return fabric_.port_id(sw, tables_.out_port(sw, dst));
  }

  void try_forward(Lp& lp, PortId out_port) {
    if (lp.busy[out_port]) return;
    if (resilient_ && lp.dead[out_port] != 0) return;
    if (lp.credits[out_port] == 0) {
      ++lp.credit_stalls;
      if (lp.trace != nullptr)
        trace_event(lp.trace, lp.heap.now(), 0, obs::EventKind::kCreditStall,
                    out_port, 0, 0);
      return;
    }
    const topo::Port& out = fabric_.port(out_port);
    const topo::NodeId sw = out.node;
    const topo::Node& node = fabric_.node(sw);
    const std::uint32_t nports = node.num_down_ports + node.num_up_ports;

    for (std::uint32_t k = 0; k < nports; ++k) {
      const std::uint32_t i = (lp.rr[out_port] + k) % nports;
      const PortId in_port = fabric_.port_id(sw, i);
      auto& queue = lp.queues[in_port];
      if (queue.empty()) continue;
      if (!may_leave_through(lp, sw, queue.front(), out_port)) continue;

      const Packet pkt = queue.front();
      queue.pop_front();
      lp.rr[out_port] = i + 1;
      --lp.credits[out_port];
      lp.busy[out_port] = true;

      const SimTime ser = transfer_time(pkt.bytes, lp.rate[out_port]);
      lp.busy_ns[out_port] += ser;
      account_vl_busy(lp, pkt.dst, ser);
      if (lp.trace != nullptr)
        trace_event(lp.trace, lp.heap.now(), ser,
                    obs::EventKind::kPacketForwarded, out_port, pkt.msg,
                    pkt.seq, pkt.stage, cfg_.obs.vl_of(pkt.dst));
      Ev free_ev{EvType::kOutFree, out_port, {}, 0};
      lp.heap.push(lp.heap.now() + ser, free_ev);
      // Return a buffer credit to the upstream sender of the input link.
      Ev credit{EvType::kCredit, fabric_.port(in_port).peer, {}, 0};
      send(lp, lp.heap.now() + cfg_.calib.cable_latency_ns, credit);
      Ev arrive{EvType::kArrive, out.peer, pkt, 0};
      send(lp,
           lp.heap.now() + cfg_.calib.switch_latency_ns + ser +
               cfg_.calib.cable_latency_ns,
           arrive);

      // The new head of this input queue may target a different, idle
      // output.
      if (!queue.empty()) kick_head(lp, sw, in_port);
      return;  // one packet per grant; the OutFree event re-arbitrates
    }
  }

  /// Is `out_port` a legal egress for this packet at switch `sw`?
  [[nodiscard]] bool may_leave_through(const Lp& lp, topo::NodeId sw,
                                       const Packet& pkt,
                                       PortId out_port) const {
    (void)lp;
    if (resilient_ && !tables_.has_entry(sw, pkt.dst)) return false;
    if (cfg_.up_selection == UpSelection::kDeterministic)
      return route_port(sw, pkt.dst) == out_port;
    if (fabric_.is_ancestor_of_host(sw, pkt.dst))
      return route_port(sw, pkt.dst) == out_port;  // down stays deterministic
    const topo::Port& out = fabric_.port(out_port);
    return out.node == sw &&
           out.index >= fabric_.node(sw).num_down_ports;  // any up port
  }

  // --- hosts ----------------------------------------------------------------

  void host_try_send(Lp& lp, std::uint64_t h) {
    HostCursor& cur = lp.cursors[h];
    auto& retxq = lp.retx_q[h];
    if (cur.done() && retxq.empty()) return;
    const topo::NodeId node_id = fabric_.host_node(h);
    const topo::Node& node = fabric_.node(node_id);
    expects(node.num_up_ports == 1, "packet sim requires single-cable hosts");
    const PortId up = fabric_.port_id(node_id, node.num_down_ports);
    if (resilient_ && lp.dead[up] != 0) {
      // Cut off for good: write the rest of the workload off. A revivable
      // host just parks; the kLinkUp event re-kicks it.
      if (lp.revives_at[up] == kNever) fail_host(lp, h);
      return;
    }
    if (lp.busy[up]) return;
    if (lp.credits[up] == 0) {
      ++lp.credit_stalls;
      if (lp.trace != nullptr)
        trace_event(lp.trace, lp.heap.now(), 0, obs::EventKind::kCreditStall,
                    up, 0, 0);
      return;
    }

    // Retransmissions go out ahead of new traffic. Copies whose original
    // has since been delivered are discarded unsent.
    while (!retxq.empty()) {
      const std::uint32_t pend = retxq.front();
      retxq.pop_front();
      Pending& p = lp.pending[pend];
      if (p.resolved) continue;
      ++lp.packets_retransmitted;
      if (lp.trace != nullptr)
        trace_event(lp.trace, lp.heap.now(), 0,
                    obs::EventKind::kPacketRetransmit,
                    static_cast<std::uint32_t>(h), p.pkt.msg, p.pkt.seq,
                    p.pkt.stage, cfg_.obs.vl_of(p.pkt.dst));
      send_packet(lp, up, p.pkt, p.attempts);
      return;
    }
    if (cur.done()) return;

    const Message& msg = cur.msgs[cur.index];
    const std::uint32_t msg_id =
        cur.first_msg_id + static_cast<std::uint32_t>(cur.index);
    MsgMeta& meta = lp.msgs[msg_id];
    if (meta.start < 0) meta.start = lp.heap.now();

    const std::uint64_t left = msg.bytes - cur.offset;
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(left, cfg_.calib.mtu_bytes));
    const auto seq =
        static_cast<std::uint32_t>(cur.offset / cfg_.calib.mtu_bytes);
    cur.offset += chunk;
    if (cur.offset == msg.bytes) {
      // "Sent to the wire": the host moves on to its next message.
      ++cur.index;
      cur.offset = 0;
    }

    Packet pkt;
    pkt.dst = static_cast<std::uint32_t>(msg.dst);
    pkt.bytes = chunk;
    pkt.msg = msg_id;
    pkt.seq = seq;
    pkt.src = static_cast<std::uint32_t>(h);
    pkt.stage = meta.stage;
    if (resilient_) {
      pkt.pend = static_cast<std::uint32_t>(lp.pending.size());
      lp.pending.push_back(Pending{pkt, 1, false});
    }
    if (lp.trace != nullptr)
      trace_event(lp.trace, lp.heap.now(), 0, obs::EventKind::kPacketInjected,
                  static_cast<std::uint32_t>(h), msg_id, seq, meta.stage,
                  cfg_.obs.vl_of(pkt.dst));
    send_packet(lp, up, pkt, 1);
  }

  /// Put one packet on the host's up-link (shared by fresh sends and
  /// retransmits). In resilient mode this also arms the packet's timeout,
  /// backed off exponentially in the attempt count and clamped to
  /// kRetxBackoffCeilingNs (the naive shift overflows for large timeouts).
  void send_packet(Lp& lp, PortId up, const Packet& pkt,
                   std::uint32_t attempt) {
    lp.busy[up] = true;
    --lp.credits[up];
    const SimTime ser = transfer_time(pkt.bytes, lp.rate[up]);
    lp.busy_ns[up] += ser;
    account_vl_busy(lp, pkt.dst, ser);
    if (lp.trace != nullptr)
      trace_event(lp.trace, lp.heap.now(), ser,
                  obs::EventKind::kPacketForwarded, up, pkt.msg, pkt.seq,
                  pkt.stage, cfg_.obs.vl_of(pkt.dst));
    Ev free_ev{EvType::kOutFree, up, {}, 0};
    lp.heap.push(lp.heap.now() + ser, free_ev);
    Ev arrive{EvType::kArrive, fabric_.port(up).peer, pkt, 0};
    send(lp, lp.heap.now() + ser + cfg_.calib.cable_latency_ns, arrive);
    if (resilient_ && pkt.pend != kNoPend) {
      const SimTime wait = retx_backoff_ns(cfg_.resilience.timeout_ns, attempt);
      Ev timeout{EvType::kTimeout, pkt.pend, {}, 0};
      lp.heap.push(lp.heap.now() + ser + wait, timeout);
    }
  }

  /// Write off everything a permanently cut-off host still had to send:
  /// queued retransmissions and every uninjected byte of its cursor.
  void fail_host(Lp& lp, std::uint64_t h) {
    auto& retxq = lp.retx_q[h];
    while (!retxq.empty()) {
      const std::uint32_t pend = retxq.front();
      retxq.pop_front();
      Pending& p = lp.pending[pend];
      if (p.resolved) continue;
      p.resolved = true;
      account_failed(lp, p.pkt.msg, p.pkt.bytes);
    }
    // Snapshot then reset the cursor *before* accounting: finishing the
    // last outstanding message can advance the stage and replace cursors.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> writeoffs;
    {
      HostCursor& cur = lp.cursors[h];
      for (; cur.index < cur.msgs.size(); ++cur.index) {
        writeoffs.emplace_back(
            cur.first_msg_id + static_cast<std::uint32_t>(cur.index),
            cur.msgs[cur.index].bytes - cur.offset);
        cur.offset = 0;
      }
    }
    for (const auto& [msg_id, bytes] : writeoffs)
      account_failed(lp, msg_id, bytes);
  }

  /// Mark `bytes` of message `msg_id` undeliverable; completes the message
  /// (as failed) once every byte is accounted for.
  void account_failed(Lp& lp, std::uint32_t msg_id, std::uint64_t bytes) {
    if (bytes == 0) return;
    MsgMeta& meta = lp.msgs[msg_id];
    if (meta.start < 0) meta.start = lp.heap.now();
    meta.failed = true;
    lp.bytes_failed += bytes;
    expects(meta.remaining >= bytes, "failure accounting underflow");
    meta.remaining -= bytes;
    if (meta.remaining == 0) finish_message(lp, msg_id);
  }

  /// Every byte of the message is accounted for (delivered or written off).
  void finish_message(Lp& lp, std::uint32_t msg_id) {
    const MsgMeta& meta = lp.msgs[msg_id];
    if (meta.failed) {
      ++lp.messages_failed;
    } else {
      ++lp.messages_delivered;
      const SimTime lat_ns = lp.heap.now() - meta.start;
      lp.latency.add(lat_ns);
      if (cfg_.obs.metrics != nullptr) lp.latency_hist.add(to_us(lat_ns));
    }
    lp.last_finish_at = std::max(lp.last_finish_at, lp.heap.now());
    ++lp.finished_msgs;
    // The serial drive advances stages reentrantly at the zeroing finish;
    // windowed drives detect the zero at the next barrier instead.
    if (num_parts_ == 1 && progression_ == Progression::kSynchronized)
      maybe_advance_stage(lp.heap.now());
  }

  /// A packet reached its destination host. The wire-level part ends here;
  /// accounting (duplicate arbitration, completion, latency) belongs to the
  /// *source* partition and travels there as a kDeliverAcct event one cable
  /// delay later — the same delay in the serial engine, so both realize
  /// identical schedules.
  void deliver(Lp& lp, topo::NodeId host, const Packet& pkt) {
    expects(fabric_.host_index(host) == pkt.dst, "packet at wrong host");
    Ev acct{EvType::kDeliverAcct, pkt.dst, pkt, lp.heap.now()};
    send(lp, lp.heap.now() + cfg_.calib.cable_latency_ns, acct);
  }

  /// Delivery accounting at the source partition: claim the pending slot
  /// (or count a duplicate), account bytes/ordering, complete the message.
  void on_deliver_acct(Lp& lp, const Ev& ev) {
    const Packet& pkt = ev.pkt;
    const SimTime arrived_at = ev.aux;
    if (resilient_ && pkt.pend != kNoPend) {
      Pending& p = lp.pending[pkt.pend];
      if (p.resolved) {  // a twin of this packet already claimed its bytes
        ++lp.duplicate_packets;
        return;
      }
      p.resolved = true;
    }
    ++lp.packets_delivered;
    lp.bytes_delivered += pkt.bytes;
    lp.last_delivery = std::max(lp.last_delivery, arrived_at);
    if (lp.trace != nullptr)  // stamped at accounting time: keeps the
      trace_event(lp.trace, lp.heap.now(), 0,  // serial trace monotone
                  obs::EventKind::kPacketDelivered, pkt.dst, pkt.msg, pkt.seq,
                  pkt.stage, cfg_.obs.vl_of(pkt.dst));
    MsgMeta& meta = lp.msgs[pkt.msg];
    expects(meta.remaining >= pkt.bytes, "over-delivery on a message");
    meta.remaining -= pkt.bytes;
    if (meta.any_delivered && pkt.seq < meta.max_seq_seen) ++lp.out_of_order;
    meta.max_seq_seen = std::max(meta.max_seq_seen, pkt.seq);
    meta.any_delivered = true;
    if (meta.remaining == 0) finish_message(lp, pkt.msg);
  }

  // --- stage barrier --------------------------------------------------------

  [[nodiscard]] std::uint64_t finished_total() const {
    std::uint64_t total = 0;
    for (const auto& lp : lps_) total += lp->finished_msgs;
    return total;
  }

  /// Fires once per synchronized stage, when every loaded message has
  /// completed: closes the stage trace-wise, loads the next non-empty stage
  /// and schedules the barrier release one cable delay after the globally
  /// last completion — at or after every partition's local clock, so the
  /// kStageAdvance push never time-travels.
  void maybe_advance_stage(SimTime t_zero) {
    if (finished_total() != loaded_total_) return;
    if (loaded_total_ <= zero_handled_at_) return;  // this zero already done
    zero_handled_at_ = loaded_total_;
    if (cfg_.obs.trace != nullptr && stage_active_) {
      trace_event(coord_trace(), t_zero, 0, obs::EventKind::kStageEnd,
                  current_stage_, 0, 0, stage_tag(current_stage_));
      stage_active_ = false;
    }
    // The begin marker is stamped at barrier-detection time (t_zero), like
    // the classic engine; hosts enter the stage one cable delay later.
    if (!load_next_sync_stage(t_zero)) return;
    const SimTime t_adv = t_zero + cfg_.calib.cable_latency_ns;
    for (auto& lp : lps_) {
      Ev ev{EvType::kStageAdvance, 0, {}, 0};
      lp->heap.push(t_adv, ev);
    }
  }

  // --- drive loops ----------------------------------------------------------

  void drive_serial(std::uint64_t event_limit) {
    Lp& lp = *lps_[0];
    while (!lp.heap.empty()) {
      expects(lp.events < event_limit,
              "packet simulation exceeded its event limit");
      if (sampling_ && lp.heap.next_time() > lp.next_sample)
        take_samples_serial(lp, lp.heap.next_time());
      dispatch(lp, lp.heap.pop());
    }
  }

  void drive_windows(std::uint64_t event_limit) {
    std::vector<SimTime> boundaries;
    while (true) {
      if (progression_ == Progression::kSynchronized) {
        SimTime t_zero = 0;
        for (const auto& lp : lps_)
          t_zero = std::max(t_zero, lp->last_finish_at);
        maybe_advance_stage(t_zero);
      }
      route_channels();
      SimTime gmin = kNever;
      for (const auto& lp : lps_) {
        gmin = std::min(gmin, lp->heap.next_time());
        for (const ChannelEv& ch : lp->inbox) gmin = std::min(gmin, ch.at);
      }
      if (gmin == kNever) break;
      const SimTime horizon = gmin + lookahead_;
      boundaries.clear();
      if (sampling_) collect_boundaries(horizon, boundaries);
      par::parallel_for(
          num_parts_,
          [this, horizon, &boundaries](std::size_t i, std::uint32_t) {
            run_window(*lps_[i], horizon, boundaries);
          },
          par::ForOptions{0, 1, nullptr});
      ++windows_;
      std::uint64_t total = 0;
      for (const auto& lp : lps_) total += lp->events;
      expects(total < event_limit,
              "packet simulation exceeded its event limit");
    }
  }

  /// Move every outbox into its destination inbox (coordinator only, between
  /// windows). Source-partition order is fixed, so inbox contents are
  /// deterministic; heap ordering is canonical anyway.
  void route_channels() {
    for (auto& src : lps_) {
      for (std::uint32_t dst = 0; dst < num_parts_; ++dst) {
        auto& box = src->outbox[dst];
        if (box.empty()) continue;
        auto& inbox = lps_[dst]->inbox;
        inbox.insert(inbox.end(), box.begin(), box.end());
        channel_total_ += box.size();
        box.clear();
      }
    }
  }

  /// Process one conservative window: adopt the channel events received at
  /// the barrier, then run the local queue strictly below the horizon,
  /// firing the window's link-sample boundaries in order.
  void run_window(Lp& lp, SimTime horizon,
                  const std::vector<SimTime>& boundaries) {
    for (const ChannelEv& ch : lp.inbox) lp.heap.push(ch.at, ch.ev);
    lp.inbox.clear();
    std::size_t bi = 0;
    while (!lp.heap.empty() && lp.heap.next_time() < horizon) {
      const SimTime t = lp.heap.next_time();
      while (bi < boundaries.size() && boundaries[bi] < t)
        sample_partial(lp, boundaries[bi++]);
      dispatch(lp, lp.heap.pop());
    }
    while (bi < boundaries.size()) sample_partial(lp, boundaries[bi++]);
  }

  // --- observability --------------------------------------------------------

  /// Serial-path sampling, identical to the classic engine: emit link
  /// samples at every elapsed period boundary strictly before `upto`. Pure
  /// observation: reads busy_ns/queues, schedules nothing, so the event
  /// sequence (and RunResult) is identical with sampling off.
  void take_samples_serial(Lp& lp, SimTime upto) {
    while (lp.next_sample < upto) {
      emit_sample_serial(lp, lp.next_sample);
      // Bound catch-up after long idle gaps (sync-stage barriers): skip to
      // the last boundary before `upto` once a gap exceeds 1024 periods.
      const SimTime behind =
          (upto - 1 - lp.next_sample) / cfg_.obs.sample_period_ns;
      if (behind > 1024)
        lp.next_sample += (behind - 1) * cfg_.obs.sample_period_ns;
      lp.next_sample += cfg_.obs.sample_period_ns;
    }
  }

  /// The windowed drives fire the identical boundary list on every LP; the
  /// coordinator advances the shared boundary cursor with the same skip
  /// rule, using the window horizon as the catch-up limit.
  void collect_boundaries(SimTime upto, std::vector<SimTime>& out) {
    while (coord_next_sample_ < upto) {
      out.push_back(coord_next_sample_);
      const SimTime behind =
          (upto - 1 - coord_next_sample_) / cfg_.obs.sample_period_ns;
      if (behind > 1024)
        coord_next_sample_ += (behind - 1) * cfg_.obs.sample_period_ns;
      coord_next_sample_ += cfg_.obs.sample_period_ns;
    }
  }

  /// Scan the LP's owned ports at a boundary: link utilization over the
  /// window since the previous sample, queue depths, per-port trace
  /// samples. Returns the partition's aggregate contribution.
  SamplePartial scan_ports(Lp& lp, SimTime at) {
    SamplePartial part;
    part.at = at;
    const auto window = static_cast<double>(at - lp.last_sample_at);
    lp.last_sample_at = at;
    if (window <= 0.0) return part;
    for (const PortId pid : lp.owned_ports) {
      const auto depth = static_cast<std::uint32_t>(lp.queues[pid].size());
      part.depth_total += depth;
      part.depth_max = std::max(part.depth_max, depth);
      if (lp.busy_ns[pid] == 0 && depth == 0) continue;  // never-used link
      // Utilization of this window; a packet's full serialization time is
      // charged at grant time, so clamp spans overhanging the boundary.
      const double util = std::min(
          1.0, static_cast<double>(lp.busy_ns[pid] - lp.sampled_busy[pid]) /
                   window);
      lp.sampled_busy[pid] = lp.busy_ns[pid];
      part.util_sum += util;
      part.util_max = std::max(part.util_max, util);
      ++part.links_active;
      if (lp.trace != nullptr)
        trace_event(lp.trace, at, 0, obs::EventKind::kLinkSample, pid,
                    static_cast<std::uint32_t>(util * 1000.0), depth,
                    stage_active_ ? stage_tag(current_stage_) : obs::kNoStage);
    }
    return part;
  }

  void emit_sample_serial(Lp& lp, SimTime at) {
    if (at <= lp.last_sample_at) return;  // zero-width window: skipped
    emit_series_sample(scan_ports(lp, at));
  }

  void sample_partial(Lp& lp, SimTime at) {
    lp.partials.push_back(scan_ports(lp, at));
  }

  void emit_series_sample(const SamplePartial& part) {
    if (cfg_.obs.metrics == nullptr) return;
    obs::MetricsRegistry& m = *cfg_.obs.metrics;
    m.series("packet_sim.link_util.mean")
        .sample(part.at, part.links_active != 0
                             ? part.util_sum / part.links_active
                             : 0.0);
    m.series("packet_sim.link_util.max").sample(part.at, part.util_max);
    m.series("packet_sim.queue_depth.max")
        .sample(part.at, static_cast<double>(part.depth_max));
    m.series("packet_sim.queue_depth.total")
        .sample(part.at, static_cast<double>(part.depth_total));
  }

  /// Close the sampling streams after the run: fire the remaining
  /// boundaries up to the makespan plus one short closing window, then (for
  /// partitioned runs) merge the index-aligned per-LP partials into the
  /// global time series.
  void finalize_sampling() {
    if (!sampling_) return;
    // Close at the drain end (the last processed event, >= the last trace
    // stamp) so the closing samples keep the serial trace monotone.
    SimTime end = 0;
    for (const auto& lp : lps_) end = std::max(end, lp->heap.now());
    if (num_parts_ == 1) {
      Lp& lp = *lps_[0];
      take_samples_serial(lp, end + 1);
      if (end > lp.last_sample_at) emit_sample_serial(lp, end);
      return;
    }
    std::vector<SimTime> tail;
    collect_boundaries(end + 1, tail);
    for (auto& lp : lps_)
      for (const SimTime at : tail) sample_partial(*lp, at);
    if (end > lps_[0]->last_sample_at)
      for (auto& lp : lps_) sample_partial(*lp, end);
    const std::size_t n = lps_[0]->partials.size();
    for (const auto& lp : lps_)
      expects(lp->partials.size() == n,
              "partitions diverged on sample boundaries");
    for (std::size_t i = 0; i < n; ++i) {
      SamplePartial merged = lps_[0]->partials[i];
      for (std::uint32_t p = 1; p < num_parts_; ++p) {
        const SamplePartial& part = lps_[p]->partials[i];
        merged.util_sum += part.util_sum;
        merged.util_max = std::max(merged.util_max, part.util_max);
        merged.links_active += part.links_active;
        merged.depth_total += part.depth_total;
        merged.depth_max = std::max(merged.depth_max, part.depth_max);
      }
      emit_series_sample(merged);
    }
  }

  /// Fold serialization time into the destination lane's busy total (only
  /// when a VL table is attached; lanes appear on first use).
  void account_vl_busy(Lp& lp, std::uint32_t dst, SimTime ser) {
    if (cfg_.obs.vl_of_dst == nullptr || cfg_.obs.metrics == nullptr) return;
    const std::uint8_t lane = cfg_.obs.vl_of(dst);
    if (lp.vl_busy_ns.size() <= lane) lp.vl_busy_ns.resize(lane + 1u, 0);
    lp.vl_busy_ns[lane] += static_cast<std::uint64_t>(ser);
  }

  // --- result assembly ------------------------------------------------------

  RunResult assemble(PdesStats* stats) {
    RunResult result;
    LatencyMoments latency;
    std::uint64_t credit_stalls = 0;
    std::vector<std::uint64_t> vl_busy;
    result.link_busy_ns.assign(fabric_.num_ports(), 0);
    result.max_queue_depth.assign(fabric_.num_ports(), 0);
    for (const auto& lp : lps_) {
      result.makespan = std::max(result.makespan, lp->last_delivery);
      result.bytes_delivered += lp->bytes_delivered;
      result.messages_delivered += lp->messages_delivered;
      result.packets_delivered += lp->packets_delivered;
      result.events += lp->events;
      result.out_of_order_packets += lp->out_of_order;
      result.packets_dropped += lp->packets_dropped;
      result.packets_retransmitted += lp->packets_retransmitted;
      result.duplicate_packets += lp->duplicate_packets;
      result.messages_failed += lp->messages_failed;
      result.bytes_failed += lp->bytes_failed;
      result.link_down_events += lp->link_down_events;
      credit_stalls += lp->credit_stalls;
      latency.merge(lp->latency);
      for (PortId pid = 0; pid < fabric_.num_ports(); ++pid) {
        result.link_busy_ns[pid] += lp->busy_ns[pid];
        result.max_queue_depth[pid] =
            std::max(result.max_queue_depth[pid], lp->max_depth[pid]);
      }
      if (lp->vl_busy_ns.size() > vl_busy.size())
        vl_busy.resize(lp->vl_busy_ns.size(), 0);
      for (std::size_t lane = 0; lane < lp->vl_busy_ns.size(); ++lane)
        vl_busy[lane] += lp->vl_busy_ns[lane];
    }
    result.active_hosts = active_hosts_;
    result.message_latency_us = latency.to_accumulator_us();
    if (result.makespan > 0 && result.active_hosts > 0) {
      result.effective_bw_per_host =
          static_cast<double>(result.bytes_delivered) /
          to_seconds(result.makespan) /
          static_cast<double>(result.active_hosts);
      result.normalized_bw =
          result.effective_bw_per_host / cfg_.calib.host_bw_bytes_per_sec;
    }
    merge_traces();
    if (cfg_.obs.metrics != nullptr)
      export_run_metrics(result, credit_stalls, vl_busy);
    if (stats != nullptr) {
      stats->partitions = num_parts_;
      stats->windows = windows_;
      stats->events = result.events;
      stats->channel_events = channel_total_;
    }
    return result;
  }

  /// Partitioned runs record into per-LP shards; merge them into the user's
  /// recorder by content order (timestamp, shard, seq) — deterministic for
  /// a fixed partition count at any thread count.
  void merge_traces() {
    if (num_parts_ == 1 || cfg_.obs.trace == nullptr) return;
    for (const obs::TraceEvent& ev : shards_->merged())
      cfg_.obs.trace->record(ev);
  }

  void export_run_metrics(const RunResult& result, std::uint64_t credit_stalls,
                          const std::vector<std::uint64_t>& vl_busy) {
    obs::MetricsRegistry& m = *cfg_.obs.metrics;
    m.counter("packet_sim.packets_delivered").inc(result.packets_delivered);
    m.counter("packet_sim.messages_delivered").inc(result.messages_delivered);
    m.counter("packet_sim.bytes_delivered").inc(result.bytes_delivered);
    m.counter("packet_sim.events").inc(result.events);
    m.counter("packet_sim.credit_stalls").inc(credit_stalls);
    m.counter("packet_sim.out_of_order_packets")
        .inc(result.out_of_order_packets);
    m.counter("packet_sim.packets_dropped").inc(result.packets_dropped);
    m.counter("packet_sim.packets_retransmitted")
        .inc(result.packets_retransmitted);
    m.counter("packet_sim.duplicate_packets").inc(result.duplicate_packets);
    m.counter("packet_sim.messages_failed").inc(result.messages_failed);
    m.counter("packet_sim.bytes_failed").inc(result.bytes_failed);
    m.counter("packet_sim.link_down_events").inc(result.link_down_events);
    m.gauge("packet_sim.makespan_us").set(to_us(result.makespan));
    m.gauge("packet_sim.normalized_bw").set(result.normalized_bw);
    obs::Histogram& hist =
        m.histogram("packet_sim.msg_latency_us", 0.0, 10'000.0, 100);
    for (const auto& lp : lps_) hist.merge(lp->latency_hist);
    for (std::size_t lane = 0; lane < vl_busy.size(); ++lane) {
      if (vl_busy[lane] == 0) continue;
      m.gauge("packet_sim.vl_busy_us." + std::to_string(lane))
          .set(to_us(static_cast<SimTime>(vl_busy[lane])));
    }
    if (num_parts_ > 1) {
      // Deterministic PDES execution-shape metrics (never wall-clock —
      // events/sec lives in bench JSON and stdout, not here, to keep the
      // metrics export byte-identical across machines).
      m.gauge("pdes.partitions").set(static_cast<double>(num_parts_));
      m.counter("pdes.windows").inc(windows_);
      m.counter("pdes.channel_events").inc(channel_total_);
    }
  }

  const EngineConfig& cfg_;
  const Fabric& fabric_;
  const route::ForwardingTables& tables_;
  const PartitionMap& map_;
  const std::vector<StageTraffic>& stages_;
  Progression progression_;
  std::uint32_t num_parts_;
  SimTime lookahead_;
  bool resilient_ = false;
  bool sampling_ = false;

  std::vector<std::unique_ptr<Lp>> lps_;
  std::unique_ptr<obs::ShardedTraceRecorder> shards_;

  // Coordinator state (mutated between windows, or reentrantly when serial).
  std::size_t next_stage_ = 0;
  std::uint64_t msgs_total_ = 0;
  std::uint64_t loaded_total_ = 0;
  std::uint64_t zero_handled_at_ = 0;
  std::uint64_t active_hosts_ = 0;
  std::uint32_t current_stage_ = 0;
  bool stage_active_ = false;
  SimTime coord_next_sample_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t channel_total_ = 0;
};

}  // namespace

PortBuffer engine_port_buffer(const Fabric& fabric, const Calibration& calib,
                              PortId pid) {
  const topo::Port& pt = fabric.port(pid);
  const topo::Port& peer = fabric.port(pt.peer);
  const bool to_switch = fabric.node(peer.node).kind == NodeKind::kSwitch;
  const bool host_side = fabric.node(pt.node).kind == NodeKind::kHost ||
                         fabric.node(peer.node).kind == NodeKind::kHost;
  PortBuffer buffer;
  buffer.finite = to_switch;
  buffer.credits = to_switch ? calib.input_buffer_packets
                             : std::numeric_limits<std::uint32_t>::max() / 2;
  buffer.rate_bytes_per_sec =
      host_side ? calib.host_bw_bytes_per_sec : calib.link_bw_bytes_per_sec;
  return buffer;
}

RunResult run_core(const EngineConfig& cfg, const PartitionMap& map,
                   const std::vector<StageTraffic>& stages,
                   Progression progression, std::uint64_t event_limit,
                   PdesStats* stats) {
  Core core(cfg, map, stages, progression);
  return core.run(event_limit, stats);
}

}  // namespace ftcf::sim::detail
