// Annotated synchronization primitives for the thread-safety analysis.
//
// std::mutex and std::lock_guard carry no capability attributes in
// libstdc++/libc++, so clang's -Wthread-safety cannot reason about them.
// These thin wrappers add the attributes (util/thread_annotations.hpp)
// without changing behaviour:
//
//   * util::Mutex      — a std::mutex marked FTCF_CAPABILITY;
//   * util::LockGuard  — a scoped lock marked FTCF_SCOPED_CAPABILITY;
//   * util::CondVar    — a std::condition_variable_any waiting directly on
//                        a Mutex (the _any variant is what makes annotated
//                        waits possible; wait() REQUIRES the mutex).
//
// Waits are written as explicit `while (!predicate) cv.wait(mutex);` loops
// rather than the predicate-lambda overload: lambdas are analyzed as
// capability-free functions, so a predicate touching GUARDED_BY state
// inside a lambda would defeat the analysis the wrappers exist to enable.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace ftcf::util {

/// std::mutex with the clang capability attribute.
class FTCF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FTCF_ACQUIRE() { m_.lock(); }
  void unlock() FTCF_RELEASE() { m_.unlock(); }

  /// The wrapped handle, for CondVar only (std::condition_variable_any
  /// takes any BasicLockable; we hand it the annotated wrapper itself).
  friend class CondVar;

 private:
  std::mutex m_;
};

/// RAII lock on a util::Mutex, visible to the analysis as holding the
/// capability from construction to destruction.
class FTCF_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) FTCF_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() FTCF_RELEASE() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable waiting directly on util::Mutex. wait() releases and
/// reacquires the mutex, which the analysis models as REQUIRES(m).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& m) FTCF_REQUIRES(m) { cv_.wait(m); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace ftcf::util
