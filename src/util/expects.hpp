// Contract checking in the spirit of the C++ Core Guidelines' Expects/Ensures.
//
// These checks are *always on* (including Release builds): the library's
// correctness claims (congestion-freedom theorems) are only as strong as its
// invariants, and the cost of the checks is negligible next to the
// simulations they guard.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ftcf::util {

/// Thrown when a precondition (caller error) is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a postcondition or internal invariant (library bug) is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void fail_contract(std::string_view kind, std::string_view msg,
                                const std::source_location& loc);
}  // namespace detail

/// Check a precondition; throws PreconditionError with source location on failure.
inline void expects(bool cond, std::string_view msg = "precondition violated",
                    const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::fail_contract("Expects", msg, loc);
}

/// Check a postcondition/invariant; throws InvariantError on failure.
inline void ensures(bool cond, std::string_view msg = "invariant violated",
                    const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::fail_contract("Ensures", msg, loc);
}

}  // namespace ftcf::util
