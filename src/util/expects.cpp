#include "util/expects.hpp"

namespace ftcf::util::detail {

[[noreturn]] void fail_contract(std::string_view kind, std::string_view msg,
                                const std::source_location& loc) {
  std::string what;
  what.reserve(msg.size() + 128);
  what.append(kind);
  what.append(" failed at ");
  what.append(loc.file_name());
  what.push_back(':');
  what.append(std::to_string(loc.line()));
  what.append(" (");
  what.append(loc.function_name());
  what.append("): ");
  what.append(msg);
  if (kind == "Expects") throw PreconditionError(what);
  throw InvariantError(what);
}

}  // namespace ftcf::util::detail
