#include "util/cli.hpp"

#include <charconv>
#include <iostream>

#include "util/error.hpp"
#include "util/expects.hpp"

namespace ftcf::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  add_flag("help", "print this help and exit");
}

void Cli::add_flag(const std::string& name, const std::string& help) {
  expects(!opts_.contains(name), "duplicate CLI option");
  opts_[name] = Opt{.help = help, .value = "false", .is_flag = true};
  declared_order_.push_back(name);
}

void Cli::add_option(const std::string& name, const std::string& help,
                     const std::string& default_value) {
  expects(!opts_.contains(name), "duplicate CLI option");
  opts_[name] = Opt{.help = help, .value = default_value, .is_flag = false};
  declared_order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw Error("unexpected positional argument: " + arg);
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    const auto it = opts_.find(arg);
    if (it == opts_.end()) throw Error("unknown option: --" + arg);
    Opt& opt = it->second;
    if (opt.is_flag) {
      if (has_value) throw Error("flag --" + arg + " takes no value");
      opt.value = "true";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) throw Error("option --" + arg + " needs a value");
        value = argv[++i];
      }
      opt.value = value;
    }
    opt.seen = true;
  }
  if (flag("help")) {
    print_help(std::cout);
    return false;
  }
  return true;
}

const Cli::Opt& Cli::lookup(const std::string& name) const {
  const auto it = opts_.find(name);
  expects(it != opts_.end(), "CLI option was never declared");
  return it->second;
}

bool Cli::flag(const std::string& name) const {
  return lookup(name).value == "true";
}

std::string Cli::str(const std::string& name) const {
  return lookup(name).value;
}

namespace {
template <typename T>
T parse_number(const std::string& name, const std::string& text) {
  T out{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end)
    throw Error("option --" + name + ": cannot parse number '" + text + "'");
  return out;
}
}  // namespace

std::int64_t Cli::integer(const std::string& name) const {
  return parse_number<std::int64_t>(name, lookup(name).value);
}

std::uint64_t Cli::uinteger(const std::string& name) const {
  return parse_number<std::uint64_t>(name, lookup(name).value);
}

double Cli::real(const std::string& name) const {
  const std::string& text = lookup(name).value;
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw Error("option --" + name + ": cannot parse real '" + text + "'");
  }
}

std::vector<std::uint64_t> Cli::uint_list(const std::string& name) const {
  const std::string& text = lookup(name).value;
  std::vector<std::uint64_t> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const auto piece = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!piece.empty()) out.push_back(parse_number<std::uint64_t>(name, piece));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void Cli::print_help(std::ostream& os) const {
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : declared_order_) {
    const Opt& opt = opts_.at(name);
    os << "  --" << name;
    if (!opt.is_flag) os << " <value> (default: " << opt.value << ")";
    os << "\n      " << opt.help << '\n';
  }
}

}  // namespace ftcf::util
