#include "util/stats.hpp"

#include <algorithm>

#include "util/expects.hpp"

namespace ftcf::util {

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string IntHistogram::to_string() const {
  std::string out;
  for (const auto& [value, count] : bins_) {
    if (!out.empty()) out.push_back(' ');
    out += std::to_string(value);
    out.push_back(':');
    out += std::to_string(count);
  }
  return out;
}

namespace {

/// Percentile of an already-sorted sample (closest-ranks interpolation).
double sorted_percentile(const std::vector<double>& sorted, double q) {
  expects(q >= 0.0 && q <= 1.0, "percentile rank must be in [0,1]");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace

double percentile(std::vector<double> sample, double q) {
  expects(!sample.empty(), "percentile of empty sample");
  std::sort(sample.begin(), sample.end());
  return sorted_percentile(sample, q);
}

std::vector<double> percentiles(std::vector<double> sample,
                                std::span<const double> qs) {
  expects(!sample.empty(), "percentile of empty sample");
  std::sort(sample.begin(), sample.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(sorted_percentile(sample, q));
  return out;
}

}  // namespace ftcf::util
