// Deterministic random number generation.
//
// All randomness in ftcf flows through explicitly-seeded generators so every
// experiment is reproducible from its printed seed. We implement
// splitmix64 (seeding) and xoshiro256** (bulk generation) rather than rely on
// std::mt19937 so that sequences are identical across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "util/expects.hpp"

namespace ftcf::util {

/// splitmix64: tiny, high-quality 64-bit mixer; used to expand seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Random-access seed derivation: the (index+1)-th output of
/// SplitMix64(base), computed directly. Use this — never `base + index` —
/// to give trial t of an ensemble its own seed: with plain addition the
/// ensembles for adjacent bases (seed, seed + 1) share all but one trial,
/// silently correlating runs that should be independent.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base,
                                                  std::uint64_t index) noexcept {
  // SplitMix64 state after k steps is base + k * gamma; mixing it yields
  // the k-th output, so this is equivalent to (but O(1) instead of O(k))
  // stepping a SplitMix64 forward index+1 times.
  std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: fast all-purpose 64-bit PRNG (Blackman & Vigna).
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed'f7cf'2011ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's nearly-divisionless rejection method.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Derive an independent child generator (for per-trial streams).
  Xoshiro256 split() noexcept { return Xoshiro256((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Fisher-Yates shuffle of a vector-like container.
template <typename Container>
void shuffle(Container& c, Xoshiro256& rng) {
  using std::swap;
  const std::size_t n = c.size();
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    swap(c[i - 1], c[j]);
  }
}

/// A uniformly random permutation of {0, 1, ..., n-1}.
std::vector<std::size_t> random_permutation(std::size_t n, Xoshiro256& rng);

/// A uniformly random k-subset of {0, 1, ..., n-1}, returned sorted.
std::vector<std::size_t> random_subset(std::size_t n, std::size_t k,
                                       Xoshiro256& rng);

}  // namespace ftcf::util
