// Checked number parsing for file/CLI readers.
//
// std::stoul-style parsing has two failure modes that bite in parsers: it
// throws (uncaught, that aborts instead of reporting a ParseError with
// context) and it silently accepts partial tokens ("3x" -> 3). These helpers
// sit on std::from_chars: no exceptions, no locale, and the whole token must
// parse or the result is nullopt — callers turn that into a typed error with
// their own line/field context.
#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <string_view>

namespace ftcf::util {

/// Parse the entire token as a number of type T; nullopt on any leftover
/// characters, overflow, or an empty token.
template <typename T>
[[nodiscard]] std::optional<T> parse_number(std::string_view token) noexcept {
  if (token.empty()) return std::nullopt;
  T value{};
  const char* const last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

[[nodiscard]] inline std::optional<std::uint64_t> parse_u64(
    std::string_view token) noexcept {
  return parse_number<std::uint64_t>(token);
}

[[nodiscard]] inline std::optional<std::uint32_t> parse_u32(
    std::string_view token) noexcept {
  return parse_number<std::uint32_t>(token);
}

[[nodiscard]] inline std::optional<double> parse_f64(
    std::string_view token) noexcept {
  return parse_number<double>(token);
}

}  // namespace ftcf::util
