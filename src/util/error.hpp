// Library error type for recoverable, user-facing failures
// (malformed topology specs, unparsable files, impossible requests).
#pragma once

#include <stdexcept>
#include <string>

namespace ftcf::util {

/// Base class of all recoverable ftcf errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A topology/routing/CPS specification is structurally invalid.
class SpecError : public Error {
 public:
  using Error::Error;
};

/// A file or stream could not be parsed.
class ParseError : public Error {
 public:
  using Error::Error;
};

}  // namespace ftcf::util
