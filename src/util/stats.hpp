// Streaming statistics and simple histograms for experiment reporting.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace ftcf::util {

/// Streaming accumulator: count / min / max / mean / variance (Welford).
class Accumulator {
 public:
  void add(double x) noexcept {
    ++count_;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Merge another accumulator into this one (parallel-friendly).
  void merge(const Accumulator& other) noexcept;

  /// Rebuild an accumulator from externally computed moments. Used by code
  /// that accumulates exact integer moments (count / sum / sum-of-squares)
  /// and derives mean and m2 once at the end — unlike streaming Welford
  /// updates, such moments are independent of accumulation order, which is
  /// what the partitioned simulator needs for partition-count-invariant
  /// latency statistics. `m2` is the sum of squared deviations from the
  /// mean (so variance() = m2 / (count - 1)).
  [[nodiscard]] static Accumulator from_moments(std::uint64_t count,
                                                double sum, double mean,
                                                double m2, double min,
                                                double max) noexcept {
    Accumulator acc;
    if (count == 0) return acc;
    acc.count_ = count;
    acc.sum_ = sum;
    acc.mean_ = mean;
    acc.m2_ = m2;
    acc.min_ = min;
    acc.max_ = max;
    return acc;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact integer-valued histogram (value -> occurrence count).
/// Used for link-load distributions, where values are small integers.
class IntHistogram {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1) {
    bins_[value] += weight;
    total_ += weight;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count_of(std::int64_t value) const {
    const auto it = bins_.find(value);
    return it == bins_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::int64_t max_value() const noexcept {
    return bins_.empty() ? 0 : bins_.rbegin()->first;
  }
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& bins() const noexcept {
    return bins_;
  }

  /// Render as "v:count v:count ..." for logs and tests.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Exact percentile of a sample (linear interpolation between closest ranks).
/// q in [0, 1]. The sample is copied and sorted; fine for experiment sizes.
[[nodiscard]] double percentile(std::vector<double> sample, double q);

/// All requested percentiles of one sample with a single sort: qs[i] in
/// [0, 1], result[i] = percentile(sample, qs[i]). Use this instead of
/// repeated percentile() calls when querying p50/p95/p99 of the same
/// sample — the one-q form re-sorts the whole sample per call.
[[nodiscard]] std::vector<double> percentiles(std::vector<double> sample,
                                              std::span<const double> qs);

}  // namespace ftcf::util
