// Console table and CSV rendering for benchmark/experiment output.
//
// Every bench binary prints its paper table/figure as an aligned console
// table (human diffing against the paper) and optionally as CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ftcf::util {

/// A simple column-aligned text table with an optional title.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row. Cell count must match the header.
  void add_row(std::vector<std::string> cells);

  void set_title(std::string title) { title_ = std::move(title); }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& row_data()
      const noexcept {
    return rows_;
  }

  /// Render with box-drawing-free ASCII (pipe/dash) alignment.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (quotes cells containing separators).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used across benches.
[[nodiscard]] std::string fmt_double(double v, int precision = 3);
[[nodiscard]] std::string fmt_bytes(std::uint64_t bytes);
[[nodiscard]] std::string fmt_ratio_percent(double ratio, int precision = 1);

}  // namespace ftcf::util
