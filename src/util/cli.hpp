// Minimal command-line option parser for the bench and example binaries.
//
// Supports `--name value`, `--name=value` and boolean `--flag`. Unknown
// options are an error so typos in sweep scripts fail fast.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ftcf::util {

class Cli {
 public:
  /// Declare options before parse(); each gets a help line and a default.
  Cli(std::string program, std::string description);

  void add_flag(const std::string& name, const std::string& help);
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parse argv. Returns false (after printing help) when --help was given.
  /// Throws util::Error on unknown/malformed options.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] std::int64_t integer(const std::string& name) const;
  [[nodiscard]] std::uint64_t uinteger(const std::string& name) const;
  [[nodiscard]] double real(const std::string& name) const;

  /// Comma-separated integer list option ("8,16,32").
  [[nodiscard]] std::vector<std::uint64_t> uint_list(
      const std::string& name) const;

  void print_help(std::ostream& os) const;

 private:
  struct Opt {
    std::string help;
    std::string value;   // current (default until parsed)
    bool is_flag = false;
    bool seen = false;
  };

  const Opt& lookup(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Opt> opts_;
  std::vector<std::string> declared_order_;
};

}  // namespace ftcf::util
