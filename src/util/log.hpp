// Lightweight leveled logging to stderr.
//
// The library itself never logs in hot paths; logging is for the bench
// harnesses and examples to narrate progress of long sweeps.
//
// Each line carries the elapsed time since process start and a small
// per-thread id:  "[  12.345s t0 info] message".
//
// The threshold can be set before main() runs via the FTCF_LOG_LEVEL
// environment variable ("debug" | "info" | "warn" | "error", or 0-3);
// set_log_level() overrides it at runtime. For debug messages whose
// *arguments* are expensive to build, use the FTCF_LOG_DEBUG call-site guard
// macro below — plain log_debug() drops the message below threshold but
// still evaluates its arguments.
#pragma once

#include <sstream>
#include <string_view>

namespace ftcf::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo, or
/// FTCF_LOG_LEVEL from the environment when set.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// True when a message at `level` would currently be emitted.
[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

/// Emit one line "[<elapsed>s t<tid> <level>] message" to stderr
/// (thread-safe: one fwrite per line; tids are assigned per thread in order
/// of first log call).
void log_line(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  log_line(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace ftcf::util

/// Call-site guard: skips argument evaluation AND formatting entirely when
/// debug logging is below threshold.
#define FTCF_LOG_DEBUG(...)                                              \
  do {                                                                   \
    if (::ftcf::util::log_enabled(::ftcf::util::LogLevel::kDebug))       \
      ::ftcf::util::log_debug(__VA_ARGS__);                              \
  } while (0)
