// Lightweight leveled logging to stderr.
//
// The library itself never logs in hot paths; logging is for the bench
// harnesses and examples to narrate progress of long sweeps.
#pragma once

#include <sstream>
#include <string_view>

namespace ftcf::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one line "[level] message" to stderr (thread-safe via stderr locking).
void log_line(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  log_line(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace ftcf::util
