// Lightweight leveled logging to stderr.
//
// The library itself never logs in hot paths; logging is for the bench
// harnesses and examples to narrate progress of long sweeps.
//
// Each line carries the elapsed time since process start and a small
// per-thread id:  "[  12.345s t0 info] message".
//
// The threshold can be set before main() runs via the FTCF_LOG_LEVEL
// environment variable ("debug" | "info" | "warn" | "error", or 0-3), or
// forced to debug with a truthy FTCF_LOG_DEBUG; an unparseable value in
// either variable earns one warning line on stderr and falls back to the
// default instead of silently misbehaving. set_log_level() overrides both at
// runtime. For debug messages whose *arguments* are expensive to build, use
// the FTCF_LOG_DEBUG call-site guard macro below — plain log_debug() drops
// the message below threshold but still evaluates its arguments.
#pragma once

#include <optional>
#include <sstream>
#include <string_view>

namespace ftcf::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Parse a log-level spelling: "debug"|"info"|"warn"|"error" (any ASCII
/// case) or "0".."3". Empty or unrecognized input yields nullopt — callers
/// decide the fallback.
[[nodiscard]] std::optional<LogLevel> parse_log_level(
    std::string_view s) noexcept;

/// Parse a boolean environment value: 1/true/on/yes vs 0/false/off/no (any
/// ASCII case). Anything else yields nullopt.
[[nodiscard]] std::optional<bool> parse_env_bool(std::string_view s) noexcept;

/// Global threshold; messages below it are dropped. Default: kInfo, or
/// FTCF_LOG_LEVEL / FTCF_LOG_DEBUG from the environment when set.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// True when a message at `level` would currently be emitted.
[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

/// Emit one line "[<elapsed>s t<tid> <level>] message" to stderr
/// (thread-safe: one fwrite per line; tids are assigned per thread in order
/// of first log call).
void log_line(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  log_line(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace ftcf::util

/// Call-site guard: skips argument evaluation AND formatting entirely when
/// debug logging is below threshold.
#define FTCF_LOG_DEBUG(...)                                              \
  do {                                                                   \
    if (::ftcf::util::log_enabled(::ftcf::util::LogLevel::kDebug))       \
      ::ftcf::util::log_debug(__VA_ARGS__);                              \
  } while (0)
