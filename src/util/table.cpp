#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/expects.hpp"

namespace ftcf::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  expects(!header_.empty(), "table must have at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  expects(cells.size() == header_.size(),
          "row cell count must match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::setw(static_cast<int>(width[c])) << std::left << row[c]
         << " |";
    os << '\n';
  };
  const auto print_rule = [&] {
    os << '+';
    for (const std::size_t w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out.push_back('"');
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  const auto print_cells = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  print_cells(header_);
  for (const auto& row : rows_) print_cells(row);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string fmt_bytes(std::uint64_t bytes) {
  constexpr std::uint64_t kib = 1024;
  constexpr std::uint64_t mib = kib * 1024;
  constexpr std::uint64_t gib = mib * 1024;
  std::ostringstream oss;
  if (bytes >= gib && bytes % gib == 0) oss << bytes / gib << " GiB";
  else if (bytes >= mib && bytes % mib == 0) oss << bytes / mib << " MiB";
  else if (bytes >= kib && bytes % kib == 0) oss << bytes / kib << " KiB";
  else oss << bytes << " B";
  return oss.str();
}

std::string fmt_ratio_percent(double ratio, int precision) {
  return fmt_double(ratio * 100.0, precision) + "%";
}

}  // namespace ftcf::util
