#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace ftcf::util {

namespace {

/// ASCII-case-insensitive comparison (env values only; no locale).
bool iequals(std::string_view s, std::string_view t) noexcept {
  if (s.size() != t.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char a = s[i];
    const char b = t[i];
    const char al = (a >= 'A' && a <= 'Z') ? static_cast<char>(a + 32) : a;
    if (al != b) return false;
  }
  return true;
}

/// Combine both environment knobs; runs during static initialization, so
/// warnings go straight to stderr (the logger itself is not up yet) and an
/// invalid value costs exactly one line, never silent misbehavior.
int level_from_env() {
  constexpr int kDefault = static_cast<int>(LogLevel::kInfo);
  int level = kDefault;
  if (const char* env = std::getenv("FTCF_LOG_LEVEL");
      env != nullptr && *env != '\0') {
    if (const auto parsed = parse_log_level(env)) {
      level = static_cast<int>(*parsed);
    } else {
      std::fprintf(stderr,
                   "ftcf: ignoring invalid FTCF_LOG_LEVEL='%s' "
                   "(want debug|info|warn|error or 0-3), using info\n",
                   env);
    }
  }
  if (const char* env = std::getenv("FTCF_LOG_DEBUG");
      env != nullptr && *env != '\0') {
    if (const auto parsed = parse_env_bool(env)) {
      if (*parsed) level = static_cast<int>(LogLevel::kDebug);
    } else {
      std::fprintf(stderr,
                   "ftcf: ignoring invalid FTCF_LOG_DEBUG='%s' "
                   "(want 1/0, true/false, on/off or yes/no)\n",
                   env);
    }
  }
  return level;
}

std::atomic<int> g_level{level_from_env()};

constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

using Clock = std::chrono::steady_clock;

Clock::time_point process_start() noexcept {
  static const Clock::time_point start = Clock::now();
  return start;
}

/// Small dense thread ids in order of first log call (t0, t1, ...), far more
/// readable than std::thread::id hashes.
std::uint32_t thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1);
  return id;
}

// Touch the start time during static initialization so "elapsed" means
// elapsed since program start, not since the first log call.
const Clock::time_point g_start_anchor = process_start();

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view s) noexcept {
  if (iequals(s, "debug") || s == "0") return LogLevel::kDebug;
  if (iequals(s, "info") || s == "1") return LogLevel::kInfo;
  if (iequals(s, "warn") || s == "2") return LogLevel::kWarn;
  if (iequals(s, "error") || s == "3") return LogLevel::kError;
  return std::nullopt;
}

std::optional<bool> parse_env_bool(std::string_view s) noexcept {
  if (s == "1" || iequals(s, "true") || iequals(s, "on") || iequals(s, "yes"))
    return true;
  if (s == "0" || iequals(s, "false") || iequals(s, "off") || iequals(s, "no"))
    return false;
  return std::nullopt;
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, std::string_view message) {
  if (!log_enabled(level)) return;
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - process_start()).count();
  char prefix[64];
  const int n =
      std::snprintf(prefix, sizeof prefix, "[%9.3fs t%u %.*s] ", elapsed,
                    thread_ordinal(),
                    static_cast<int>(level_name(level).size()),
                    level_name(level).data());
  std::string line;
  line.reserve(message.size() + static_cast<std::size_t>(n) + 1);
  line.append(prefix, static_cast<std::size_t>(n > 0 ? n : 0));
  line.append(message);
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace ftcf::util
