#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <string>

namespace ftcf::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::string line;
  line.reserve(message.size() + 16);
  line.push_back('[');
  line.append(level_name(level));
  line.append("] ");
  line.append(message);
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace ftcf::util
