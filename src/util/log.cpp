#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace ftcf::util {

namespace {

int level_from_env() {
  const char* env = std::getenv("FTCF_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "0") == 0)
    return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(env, "info") == 0 || std::strcmp(env, "1") == 0)
    return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "2") == 0)
    return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "error") == 0 || std::strcmp(env, "3") == 0)
    return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kInfo);  // unknown value: keep default
}

std::atomic<int> g_level{level_from_env()};

constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

using Clock = std::chrono::steady_clock;

Clock::time_point process_start() noexcept {
  static const Clock::time_point start = Clock::now();
  return start;
}

/// Small dense thread ids in order of first log call (t0, t1, ...), far more
/// readable than std::thread::id hashes.
std::uint32_t thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1);
  return id;
}

// Touch the start time during static initialization so "elapsed" means
// elapsed since program start, not since the first log call.
const Clock::time_point g_start_anchor = process_start();

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, std::string_view message) {
  if (!log_enabled(level)) return;
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - process_start()).count();
  char prefix[64];
  const int n =
      std::snprintf(prefix, sizeof prefix, "[%9.3fs t%u %.*s] ", elapsed,
                    thread_ordinal(),
                    static_cast<int>(level_name(level).size()),
                    level_name(level).data());
  std::string line;
  line.reserve(message.size() + static_cast<std::size_t>(n) + 1);
  line.append(prefix, static_cast<std::size_t>(n > 0 ? n : 0));
  line.append(message);
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace ftcf::util
