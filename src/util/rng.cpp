#include "util/rng.hpp"

#include <algorithm>

namespace ftcf::util {

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Lemire 2019: multiply-shift with rejection to remove modulo bias.
  if (bound == 0) return 0;  // degenerate; callers validate separately
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo expected
  return lo + static_cast<std::int64_t>(below(span));
}

std::vector<std::size_t> random_permutation(std::size_t n, Xoshiro256& rng) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  shuffle(perm, rng);
  return perm;
}

std::vector<std::size_t> random_subset(std::size_t n, std::size_t k,
                                       Xoshiro256& rng) {
  expects(k <= n, "random_subset: k must not exceed n");
  // Floyd's algorithm would avoid the O(n) permutation, but n is small in all
  // our uses (<= tens of thousands) and this keeps the distribution obvious.
  auto perm = random_permutation(n, rng);
  perm.resize(k);
  std::sort(perm.begin(), perm.end());
  return perm;
}

}  // namespace ftcf::util
