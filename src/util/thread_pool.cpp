#include "util/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "util/expects.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ftcf::par {

namespace {

std::atomic<std::uint32_t> g_default_threads{0};  // 0 = hardware
std::atomic<TimingSink> g_timing_sink{nullptr};
thread_local bool t_in_region = false;

/// RAII flag so nested parallel loops on this thread run inline.
struct RegionGuard {
  RegionGuard() noexcept : prev(t_in_region) { t_in_region = true; }
  ~RegionGuard() { t_in_region = prev; }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;
  bool prev;
};

}  // namespace

std::uint32_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : static_cast<std::uint32_t>(n);
}

void set_default_threads(std::uint32_t n) noexcept {
  g_default_threads.store(n, std::memory_order_relaxed);
}

std::uint32_t default_threads() noexcept {
  const std::uint32_t n = g_default_threads.load(std::memory_order_relaxed);
  return n == 0 ? hardware_threads() : n;
}

bool in_parallel_region() noexcept { return t_in_region; }

void set_timing_sink(TimingSink sink) noexcept {
  g_timing_sink.store(sink, std::memory_order_relaxed);
}

TimingSink timing_sink() noexcept {
  return g_timing_sink.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ThreadPool

struct ThreadPool::Impl {
  std::vector<std::thread> workers;  ///< num_threads - 1 background threads

  util::Mutex run_mutex;  ///< serialises whole batches: one run() at a time
  util::Mutex mutex;
  util::CondVar work_cv;  ///< workers wait here for a batch
  util::CondVar done_cv;  ///< run() waits here for the drain

  // Current batch, published under `mutex` with a generation bump.
  std::uint64_t generation FTCF_GUARDED_BY(mutex) = 0;
  std::size_t num_tasks FTCF_GUARDED_BY(mutex) = 0;
  std::uint32_t max_workers FTCF_GUARDED_BY(mutex) = 0;
  const std::function<void(std::size_t, std::uint32_t)>* body
      FTCF_GUARDED_BY(mutex) = nullptr;

  std::atomic<std::size_t> cursor{0};  ///< next unclaimed task
  std::atomic<bool> failed{false};
  std::exception_ptr error FTCF_GUARDED_BY(mutex);  ///< first task exception
  /// Background workers done with the current generation.
  std::size_t workers_idle FTCF_GUARDED_BY(mutex) = 0;
  bool stopping FTCF_GUARDED_BY(mutex) = false;

  /// Claim and execute tasks of the current batch as logical `worker`.
  ///
  /// Reads `num_tasks` and `body` without holding `mutex`: both are
  /// published by run() under the lock *before* the generation bump that
  /// releases workers (and before run() itself drains as worker 0), and
  /// stay frozen until every participant reports idle — the generation
  /// protocol is the happens-before edge, not the lock, so the analysis is
  /// waived here (validated by the TSan CI job).
  void drain(std::uint32_t worker) FTCF_NO_THREAD_SAFETY_ANALYSIS {
    RegionGuard in_region;
    const std::size_t n = num_tasks;
    for (;;) {
      const std::size_t task = cursor.fetch_add(1, std::memory_order_relaxed);
      if (task >= n) break;
      if (failed.load(std::memory_order_relaxed)) continue;
      try {
        (*body)(task, worker);
      } catch (...) {
        bool expected = false;
        if (failed.compare_exchange_strong(expected, true)) {
          const util::LockGuard lock(mutex);
          error = std::current_exception();
        }
      }
    }
  }
};

ThreadPool::ThreadPool(std::uint32_t threads) : impl_(std::make_unique<Impl>()) {
  const std::uint32_t n = threads == 0 ? default_threads() : threads;
  impl_->workers.reserve(n > 0 ? n - 1 : 0);
  for (std::uint32_t w = 1; w < n; ++w) {
    impl_->workers.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const util::LockGuard lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

std::uint32_t ThreadPool::num_threads() const noexcept {
  return static_cast<std::uint32_t>(impl_->workers.size()) + 1;
}

void ThreadPool::worker_loop(std::uint32_t worker) {
  Impl& impl = *impl_;
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::uint32_t max_workers;
    {
      const util::LockGuard lock(impl.mutex);
      while (!impl.stopping && impl.generation == seen_generation)
        impl.work_cv.wait(impl.mutex);
      if (impl.stopping) return;
      seen_generation = impl.generation;
      max_workers = impl.max_workers;
    }
    // Workers beyond the batch's cap sit this generation out.
    if (worker < max_workers) impl.drain(worker);
    {
      const util::LockGuard lock(impl.mutex);
      ++impl.workers_idle;
    }
    impl.done_cv.notify_one();
  }
}

void ThreadPool::run(
    std::size_t num_tasks,
    const std::function<void(std::size_t, std::uint32_t)>& task,
    std::uint32_t max_workers) {
  util::expects(!in_parallel_region(),
                "ThreadPool::run from inside a parallel region would "
                "deadlock; nested loops must run inline");
  Impl& impl = *impl_;
  // Batches are exclusive: a run() issued while another batch is in flight
  // (from a different caller thread) waits its turn, so library entry
  // points that fan out internally stay safe to call from user threads.
  const util::LockGuard batch(impl.run_mutex);
  if (max_workers == 0 || max_workers > num_threads()) {
    max_workers = num_threads();
  }
  {
    const util::LockGuard lock(impl.mutex);
    impl.num_tasks = num_tasks;
    impl.max_workers = max_workers;
    impl.body = &task;
    impl.cursor.store(0, std::memory_order_relaxed);
    impl.failed.store(false, std::memory_order_relaxed);
    impl.error = nullptr;
    impl.workers_idle = 0;
    ++impl.generation;
  }
  impl.work_cv.notify_all();

  impl.drain(0);  // the caller is worker 0

  std::exception_ptr error;
  {
    const util::LockGuard lock(impl.mutex);
    while (impl.workers_idle != impl.workers.size())
      impl.done_cv.wait(impl.mutex);
    impl.body = nullptr;
    error = impl.error;
    impl.error = nullptr;
  }
  // Rethrown outside the lock scope so a throwing destructor chain in the
  // caller can issue new batches.
  if (error != nullptr) std::rethrow_exception(error);
}

// ---------------------------------------------------------------------------
// parallel_for over a lazily-created shared pool

namespace {

util::Mutex g_pool_mutex;
std::shared_ptr<ThreadPool> g_pool FTCF_GUARDED_BY(g_pool_mutex);

/// Shared pool with at least `threads` lanes, grown (never shrunk) on
/// demand. Callers hold the returned shared_ptr across their batch: when a
/// wider pool replaces this one while another thread's batch is still in
/// flight, the old pool is destroyed (and its workers joined) only after
/// that batch releases its reference.
std::shared_ptr<ThreadPool> shared_pool(std::uint32_t threads) {
  const util::LockGuard lock(g_pool_mutex);
  if (g_pool == nullptr || g_pool->num_threads() < threads) {
    g_pool = std::make_shared<ThreadPool>(threads);
  }
  return g_pool;
}

struct LoopShape {
  std::size_t num_tasks = 0;
  std::uint32_t width = 1;  ///< distinct worker indices the body can see
};

LoopShape loop_shape(std::size_t n, const ForOptions& options) {
  LoopShape shape;
  const std::size_t grain = options.grain == 0 ? 1 : options.grain;
  shape.num_tasks = (n + grain - 1) / grain;
  const std::uint32_t threads =
      options.threads == 0 ? default_threads() : options.threads;
  if (!in_parallel_region() && threads > 1 && shape.num_tasks > 1) {
    shape.width = threads;
  }
  return shape;
}

}  // namespace

std::uint32_t region_width(std::size_t n, const ForOptions& options) {
  return loop_shape(n, options).width;
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::uint32_t)>& body,
                  const ForOptions& options) {
  if (n == 0) return;
  const std::size_t grain = options.grain == 0 ? 1 : options.grain;
  const LoopShape shape = loop_shape(n, options);

  const TimingSink sink = timing_sink();
  std::vector<double> task_seconds;
  const bool timed = sink != nullptr && options.label != nullptr;
  if (timed) task_seconds.assign(shape.num_tasks, 0.0);

  // One task covers indices [task * grain, min(n, (task+1) * grain)).
  const auto run_task = [&](std::size_t task, std::uint32_t worker) {
    const std::size_t begin = task * grain;
    const std::size_t end = std::min(n, begin + grain);
    if (timed) {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = begin; i < end; ++i) body(i, worker);
      const auto dt = std::chrono::steady_clock::now() - t0;
      task_seconds[task] = std::chrono::duration<double>(dt).count();
    } else {
      for (std::size_t i = begin; i < end; ++i) body(i, worker);
    }
  };

  if (shape.width <= 1) {
    // Inline: nested region, single thread, or a single task.
    RegionGuard in_region;
    for (std::size_t task = 0; task < shape.num_tasks; ++task) {
      run_task(task, 0);
    }
  } else {
    shared_pool(shape.width)->run(shape.num_tasks, run_task, shape.width);
  }

  if (timed) sink(options.label, task_seconds.data(), task_seconds.size());
}

}  // namespace ftcf::par
