// Clang thread-safety analysis attributes, no-ops elsewhere.
//
// The annotations let `clang++ -Wthread-safety` prove, at compile time,
// that every access to a GUARDED_BY member happens under its mutex. The
// library's own synchronization types (util::Mutex, util::LockGuard,
// util::CondVar in util/mutex.hpp) carry the attributes; the lint CI job
// compiles the annotated translation units with -Werror=thread-safety.
// GCC and MSVC ignore the attributes entirely, so no runtime or codegen
// difference exists between toolchains.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define FTCF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FTCF_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a synchronization capability (a mutex).
#define FTCF_CAPABILITY(name) FTCF_THREAD_ANNOTATION(capability(name))

/// Marks a RAII type that acquires a capability for its lifetime.
#define FTCF_SCOPED_CAPABILITY FTCF_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define FTCF_GUARDED_BY(x) FTCF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define FTCF_PT_GUARDED_BY(x) FTCF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called while holding the given mutex(es).
#define FTCF_REQUIRES(...) \
  FTCF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called while NOT holding the given mutex(es).
#define FTCF_EXCLUDES(...) FTCF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability (and does not release it).
#define FTCF_ACQUIRE(...) \
  FTCF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define FTCF_RELEASE(...) \
  FTCF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function returning a reference to the capability guarding it.
#define FTCF_RETURN_CAPABILITY(x) FTCF_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot follow (e.g. publication
/// protocols with a happens-before argument outside the lock discipline).
/// Every use must carry a comment naming the protocol that makes it safe.
#define FTCF_NO_THREAD_SAFETY_ANALYSIS \
  FTCF_THREAD_ANNOTATION(no_thread_safety_analysis)
