// ftcf::par — deterministic parallel execution for the library's sweeps.
//
// A small fixed-size thread pool plus `parallel_for` / `parallel_map`
// helpers. Design constraints, in priority order:
//
//   1. *Determinism.* Parallel output must be byte-identical to serial
//      output. Every helper therefore assigns work by index (task i always
//      covers the same index range regardless of thread count or claim
//      order) and leaves result merging to the caller, who folds the
//      index-ordered results serially. Nothing here depends on timing.
//   2. *Race freedom.* Bodies receive a dense worker index in
//      [0, region_width), so callers can hand each worker private scratch
//      (see analysis::HsdAnalyzer::Workspace).
//   3. *No oversubscription.* A parallel_for issued from inside another
//      parallel_for body runs inline on the calling worker; only top-level
//      loops fan out.
//
// Thread count resolution: an explicit ForOptions::threads wins, else the
// process-wide default set by set_default_threads (the --threads flag),
// else std::thread::hardware_concurrency().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

namespace ftcf::par {

/// std::thread::hardware_concurrency(), clamped to >= 1.
[[nodiscard]] std::uint32_t hardware_threads() noexcept;

/// Process-wide default worker count used when ForOptions::threads == 0.
/// Passing 0 restores the hardware default. Wired to --threads in the CLI
/// front ends; set it before the first parallel loop.
void set_default_threads(std::uint32_t n) noexcept;
[[nodiscard]] std::uint32_t default_threads() noexcept;

/// True on a thread currently executing a parallel_for body; such threads
/// run nested parallel loops inline instead of fanning out again.
[[nodiscard]] bool in_parallel_region() noexcept;

/// Per-sweep timing callback: after a top-level parallel loop with a label
/// finishes, the sink receives each task's wall time in seconds. Reported
/// from the issuing thread, after all tasks completed. Timing is collected
/// only while a sink is installed; it never influences scheduling, so
/// results stay deterministic with or without one.
using TimingSink = void (*)(const char* label, const double* task_seconds,
                            std::size_t num_tasks);
void set_timing_sink(TimingSink sink) noexcept;
[[nodiscard]] TimingSink timing_sink() noexcept;

/// Fixed-size pool of persistent workers. The calling thread of run()
/// participates as worker 0; the pool owns num_threads() - 1 background
/// threads. Tasks are claimed dynamically (an atomic cursor), which only
/// affects *which worker* runs a task, never what the task computes.
class ThreadPool {
 public:
  /// threads == 0 means default_threads(). A pool of 1 spawns no threads.
  explicit ThreadPool(std::uint32_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::uint32_t num_threads() const noexcept;

  /// Execute task(i, worker) for i in [0, num_tasks), blocking until all
  /// complete. `worker` is dense in [0, max_workers). max_workers caps the
  /// participating workers (0 = all of num_threads()). The first exception
  /// thrown by a task is rethrown here after the batch drains; remaining
  /// tasks are skipped once an exception is recorded. Safe to call from
  /// several threads at once — batches are exclusive and queue up.
  void run(std::size_t num_tasks,
           const std::function<void(std::size_t, std::uint32_t)>& task,
           std::uint32_t max_workers = 0);

 private:
  struct Impl;
  void worker_loop(std::uint32_t worker);

  std::unique_ptr<Impl> impl_;
};

/// Options for parallel_for / parallel_map.
struct ForOptions {
  std::uint32_t threads = 0;    ///< 0 = default_threads()
  std::size_t grain = 1;        ///< consecutive indices per task
  const char* label = nullptr;  ///< timing-sink label (nullptr = untimed)
};

/// Number of distinct worker indices a parallel_for over n indices with
/// these options passes to its body: 1 when the loop would run inline
/// (nested region, single thread, or a single task), else the resolved
/// thread count. Size per-worker scratch with this.
[[nodiscard]] std::uint32_t region_width(std::size_t n,
                                         const ForOptions& options = {});

/// body(index, worker) for every index in [0, n), in parallel. Indices are
/// grouped into ceil(n / grain) tasks of `grain` consecutive indices; task
/// boundaries depend only on n and grain, never on the thread count.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::uint32_t)>& body,
                  const ForOptions& options = {});

/// out[i] = fn(i) (or fn(i, worker)) for every i, in parallel; results are
/// positioned by index, so the returned vector is identical for any thread
/// count. The result type must be default-constructible and assignable.
template <typename Fn>
[[nodiscard]] auto parallel_map(std::size_t n, Fn&& fn,
                                const ForOptions& options = {}) {
  constexpr bool kTakesWorker =
      std::is_invocable_v<Fn&, std::size_t, std::uint32_t>;
  using R = std::decay_t<typename std::conditional_t<
      kTakesWorker, std::invoke_result<Fn&, std::size_t, std::uint32_t>,
      std::invoke_result<Fn&, std::size_t>>::type>;
  std::vector<R> out(n);
  parallel_for(
      n,
      [&out, &fn](std::size_t i, std::uint32_t worker) {
        if constexpr (kTakesWorker) {
          out[i] = fn(i, worker);
        } else {
          (void)worker;
          out[i] = fn(i);
        }
      },
      options);
  return out;
}

}  // namespace ftcf::par
