// The handle a simulator holds on the observability layer.
//
// A SimObserver bundles the (optional) trace recorder and metrics registry a
// run should feed, plus the sim-time sampling period for link-utilization /
// queue-depth timelines. Both simulators take one by value via
// `set_observer`; all fields null/zero (the default) means fully off, and the
// simulators guard every hook behind `if (obs_.trace)` / `if (obs_.metrics)`
// so a disabled run pays only untaken branches.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace ftcf::obs {

struct SimObserver {
  TraceRecorder* trace = nullptr;      ///< event capture (not owned)
  MetricsRegistry* metrics = nullptr;  ///< aggregates/series (not owned)
  /// Optional destination-host -> virtual-lane table (not owned; e.g.
  /// check::VlAssignment::lane_of_dest). When attached, packet/flow events
  /// carry the destination's VL so heatmaps get real per-VL cells.
  const std::vector<std::uint32_t>* vl_of_dst = nullptr;
  /// Sim-time distance between link samples; <= 0 disables sampling even
  /// when a metrics registry is attached.
  sim::SimTime sample_period_ns = 10'000;

  [[nodiscard]] bool active() const noexcept {
    return trace != nullptr || metrics != nullptr;
  }
  [[nodiscard]] bool sampling() const noexcept {
    return sample_period_ns > 0 && (trace != nullptr || metrics != nullptr);
  }
  /// TraceEvent::vl for a destination host (0 when no table is attached or
  /// the host has no lane; lanes clamp into the event's uint8 field).
  [[nodiscard]] std::uint8_t vl_of(std::uint32_t dst) const noexcept {
    if (vl_of_dst == nullptr || dst >= vl_of_dst->size()) return 0;
    const std::uint32_t lane = (*vl_of_dst)[dst];
    if (lane == 0xFFFF'FFFFu) return 0;  // check::kNoLane sentinel
    return lane > 0xFF ? std::uint8_t{0xFF} : static_cast<std::uint8_t>(lane);
  }
};

}  // namespace ftcf::obs
