// The handle a simulator holds on the observability layer.
//
// A SimObserver bundles the (optional) trace recorder and metrics registry a
// run should feed, plus the sim-time sampling period for link-utilization /
// queue-depth timelines. Both simulators take one by value via
// `set_observer`; all fields null/zero (the default) means fully off, and the
// simulators guard every hook behind `if (obs_.trace)` / `if (obs_.metrics)`
// so a disabled run pays only untaken branches.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace ftcf::obs {

struct SimObserver {
  TraceRecorder* trace = nullptr;      ///< event capture (not owned)
  MetricsRegistry* metrics = nullptr;  ///< aggregates/series (not owned)
  /// Sim-time distance between link samples; <= 0 disables sampling even
  /// when a metrics registry is attached.
  sim::SimTime sample_period_ns = 10'000;

  [[nodiscard]] bool active() const noexcept {
    return trace != nullptr || metrics != nullptr;
  }
  [[nodiscard]] bool sampling() const noexcept {
    return sample_period_ns > 0 && (trace != nullptr || metrics != nullptr);
  }
};

}  // namespace ftcf::obs
