// Wall-clock profiling scopes for the library's construction-heavy phases
// (routing-table computation, fabric build, simulator runs).
//
//   FTCF_PROF_SCOPE("dmodk_build");
//
// drops an RAII timer whose duration is accumulated into a process-global
// registry keyed by name. Cost model:
//   * compiled out entirely under -DFTCF_OBS_DISABLED (the macro expands to
//     nothing);
//   * with profiling compiled in but not enabled at runtime (the default),
//     a scope costs one relaxed atomic load and a branch;
//   * enabled, it costs two steady_clock reads and one mutex-guarded map
//     update at scope exit — fine for the coarse phases it instruments,
//     which is why none of the hooks sit on per-event simulator paths.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ftcf::obs {

class Profiler {
 public:
  struct Entry {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };

  [[nodiscard]] static Profiler& instance();

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Fold one timed scope into the named entry (thread-safe).
  void add(const char* name, std::uint64_t ns);

  /// Snapshot of all entries, sorted by descending total time.
  [[nodiscard]] std::vector<Entry> entries() const;

  /// Drop all accumulated entries (enabled flag unchanged).
  void reset();

  /// Render the entries as an aligned table ("scope | calls | total | mean |
  /// max"); prints a placeholder line when nothing was recorded.
  void report(std::ostream& os) const;

 private:
  Profiler() = default;
  std::atomic<bool> enabled_{false};
};

/// RAII timer; use via FTCF_PROF_SCOPE, not directly.
class ProfScope {
 public:
  explicit ProfScope(const char* name) noexcept {
    if (Profiler::instance().enabled()) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ProfScope() {
    if (name_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    Profiler::instance().add(name_, static_cast<std::uint64_t>(ns));
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  const char* name_ = nullptr;  ///< non-null iff armed at construction
  std::chrono::steady_clock::time_point start_{};
};

class MetricsRegistry;  // metrics.hpp

/// Route ftcf::par per-task timings into the observability layer: installs
/// a par::TimingSink that folds every task of a labelled parallel sweep
/// into the Profiler (entry "par.<label>") and, when `registry` is
/// non-null, records per-sweep gauges "par.<label>.tasks" and
/// ".p50_ms/.p95_ms/.p99_ms" (one sort per sweep via util::percentiles).
/// Timing never feeds back into scheduling, so results stay deterministic;
/// keep timing gauges out of registries whose JSON export must be
/// byte-stable across runs.
void enable_par_timing(MetricsRegistry* registry = nullptr);

/// Uninstall the sink (the registry pointer is dropped too).
void disable_par_timing() noexcept;

}  // namespace ftcf::obs

#define FTCF_PROF_CONCAT_INNER(a, b) a##b
#define FTCF_PROF_CONCAT(a, b) FTCF_PROF_CONCAT_INNER(a, b)

#ifndef FTCF_OBS_DISABLED
/// Time the enclosing scope under `name` (a string literal) when profiling
/// is enabled via Profiler::set_enabled(true).
#define FTCF_PROF_SCOPE(name) \
  ::ftcf::obs::ProfScope FTCF_PROF_CONCAT(ftcf_prof_scope_, __COUNTER__) { \
    name                                                                   \
  }
#else
#define FTCF_PROF_SCOPE(name) static_cast<void>(0)
#endif
