#include "obs/bench_compare.hpp"

#include <cmath>
#include <cstdio>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace ftcf::obs {

namespace {

/// Minimal recursive-descent JSON reader, sized for the MetricsRegistry
/// export: objects/arrays/strings/numbers/true/false/null, no comments, no
/// trailing commas. Values outside the sections the caller cares about are
/// parsed and discarded (structure still validated).
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void skip_ws() noexcept {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  [[nodiscard]] bool consume(char c) noexcept {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Parse a JSON string (after ws); decodes the simple escapes the
  /// registry writer emits; \uXXXX decodes as ASCII when it fits, '?' else.
  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          std::uint32_t hex = 0;
          for (std::size_t i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            std::uint32_t digit = 0;
            if (h >= '0' && h <= '9') digit = static_cast<std::uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f')
              digit = static_cast<std::uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              digit = static_cast<std::uint32_t>(h - 'A' + 10);
            else
              fail("bad \\u escape");
            hex = hex * 16 + digit;
          }
          pos_ += 4;
          out.push_back(hex < 0x80 ? static_cast<char>(hex) : '?');
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  /// Parse a number or the null literal; null -> NaN (the writer encodes
  /// NaN gauges as null).
  double parse_number_or_null() {
    skip_ws();
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::numeric_limits<double>::quiet_NaN();
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    const auto v = util::parse_f64(text_.substr(start, pos_ - start));
    if (!v) fail("expected a number");
    return *v;
  }

  /// Parse and discard any JSON value.
  void skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos_;
      if (consume('}')) return;
      do {
        skip_ws();
        (void)parse_string();
        expect(':');
        skip_value();
      } while (consume(','));
      expect('}');
    } else if (c == '[') {
      ++pos_;
      if (consume(']')) return;
      do skip_value();
      while (consume(','));
      expect(']');
    } else if (c == '"') {
      (void)parse_string();
    } else if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else {
      (void)parse_number_or_null();
    }
  }

  /// Walk an object, calling fn(key) positioned at each value; fn must
  /// consume the value.
  template <typename Fn>
  void parse_object(Fn&& fn) {
    expect('{');
    if (consume('}')) return;
    do {
      skip_ws();
      std::string key = parse_string();
      expect(':');
      fn(key);
    } while (consume(','));
    expect('}');
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw util::ParseError("bench json: " + what + " at byte " +
                           std::to_string(pos_));
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

constexpr std::string_view kLowerBetterPrefix = "ns_per_op.";
constexpr std::string_view kHigherBetterPrefix = "items_per_second.";

bool has_prefix(std::string_view name, std::string_view prefix) noexcept {
  return name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0;
}

bool perf_gauge(std::string_view name) noexcept {
  return has_prefix(name, kLowerBetterPrefix) ||
         has_prefix(name, kHigherBetterPrefix);
}

void print_percent(std::ostream& os, double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", fraction * 100.0);
  os << buf;
}

void print_value(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  os << buf;
}

}  // namespace

BenchSample parse_bench_json(std::string_view text) {
  BenchSample out;
  JsonCursor cur(text);
  cur.parse_object([&](const std::string& section) {
    if (section == "meta") {
      cur.parse_object(
          [&](const std::string& key) { out.meta[key] = cur.parse_string(); });
    } else if (section == "counters") {
      cur.parse_object([&](const std::string& key) {
        const double v = cur.parse_number_or_null();
        out.counters[key] =
            std::isfinite(v) && v >= 0 ? static_cast<std::uint64_t>(v) : 0;
      });
    } else if (section == "gauges") {
      cur.parse_object([&](const std::string& key) {
        out.gauges[key] = cur.parse_number_or_null();
      });
    } else {
      cur.skip_value();
    }
  });
  cur.skip_ws();
  return out;
}

BenchSample parse_bench_json(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  return parse_bench_json(text);
}

BenchComparison compare_bench(const BenchSample& baseline,
                              const BenchSample& current, double threshold) {
  BenchComparison cmp;
  cmp.threshold = threshold;
  for (const auto& [name, base] : baseline.gauges) {
    if (!perf_gauge(name)) continue;
    const auto it = current.gauges.find(name);
    if (it == current.gauges.end()) {
      cmp.missing.push_back(name);
      continue;
    }
    const double cur = it->second;
    if (!std::isfinite(base) || !std::isfinite(cur) || base <= 0 || cur <= 0)
      continue;
    BenchDelta delta;
    delta.name = name;
    delta.baseline = base;
    delta.current = cur;
    delta.higher_better = has_prefix(name, kHigherBetterPrefix);
    delta.regression =
        delta.higher_better ? base / cur - 1.0 : cur / base - 1.0;
    delta.regressed = delta.regression > threshold;
    cmp.deltas.push_back(std::move(delta));
  }
  for (const auto& [name, cur] : current.gauges) {
    (void)cur;
    if (!perf_gauge(name)) continue;
    if (baseline.gauges.find(name) == baseline.gauges.end())
      cmp.added.push_back(name);
  }
  return cmp;
}

void write_bench_diff_text(std::ostream& os, const BenchComparison& cmp) {
  for (const BenchDelta& d : cmp.deltas) {
    os << d.name << ": ";
    print_value(os, d.baseline);
    os << " -> ";
    print_value(os, d.current);
    // Signed change of the raw gauge value; the regressed flag already folds
    // in which direction is good for this gauge.
    os << " (";
    print_percent(os, d.current / d.baseline - 1.0);
    os << ")";
    if (d.regressed) {
      os << "  REGRESSION (>";
      print_value(os, cmp.threshold * 100.0);
      os << "%)";
    }
    os << '\n';
  }
  for (const std::string& name : cmp.missing)
    os << name << ": present in baseline, missing from current run\n";
  for (const std::string& name : cmp.added)
    os << name << ": new case (no baseline)\n";
  os << "bench diff: " << cmp.deltas.size() << " case(s) compared, "
     << cmp.regressions() << " regression(s) beyond ";
  print_value(os, cmp.threshold * 100.0);
  os << "%, " << cmp.missing.size() << " missing, " << cmp.added.size()
     << " new\n";
}

}  // namespace ftcf::obs
