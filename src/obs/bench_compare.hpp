// Bench regression tracking: parse and diff the BENCH_*.json artifacts the
// micro-benchmark harness exports (bench/micro_perf.cpp writes a
// MetricsRegistry JSON document; see FTCF_BENCH_JSON).
//
// parse_bench_json is a minimal recursive-descent reader for exactly that
// document shape — top-level "meta" / "counters" / "gauges" objects; every
// other section is skipped structurally. compare_bench pairs up the
// performance gauges by name and direction:
//   * `ns_per_op.<case>`          — lower is better,
//   * `items_per_second.<case>`   — higher is better (event/table rates),
// and flags any case whose regression fraction exceeds the threshold
// (default 15%). The text rendering is deterministic (name-sorted), so the
// `tools/bench_diff` CLI built on top has a stable exit-code and output
// contract for CI.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ftcf::obs {

/// One parsed BENCH_*.json document (the sections bench diffing needs).
struct BenchSample {
  std::map<std::string, std::string> meta;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;  ///< NaN for JSON null (skipped)
};

/// Parse a MetricsRegistry JSON export. Throws util::ParseError (with byte
/// offset context) on malformed input.
[[nodiscard]] BenchSample parse_bench_json(std::string_view text);
[[nodiscard]] BenchSample parse_bench_json(std::istream& is);

/// One benchmark case present in both samples.
struct BenchDelta {
  std::string name;          ///< full gauge name (with direction prefix)
  double baseline = 0.0;
  double current = 0.0;
  /// Regression fraction: > 0 means worse than baseline (slower ns/op or
  /// fewer items/s), < 0 means improved. 0.10 = 10% worse.
  double regression = 0.0;
  bool higher_better = false;
  bool regressed = false;  ///< regression > threshold
};

struct BenchComparison {
  double threshold = 0.15;          ///< regression fraction that fails
  std::vector<BenchDelta> deltas;   ///< name-sorted comparable cases
  std::vector<std::string> missing;  ///< in baseline, absent from current
  std::vector<std::string> added;    ///< in current, absent from baseline

  [[nodiscard]] std::size_t regressions() const noexcept {
    std::size_t n = 0;
    for (const BenchDelta& d : deltas) n += d.regressed ? 1 : 0;
    return n;
  }
  [[nodiscard]] bool regressed() const noexcept { return regressions() > 0; }
};

/// Pair the performance gauges of two samples and flag regressions beyond
/// `threshold` (a fraction; 0.15 = 15%). Gauges without a recognized
/// direction prefix, and cases with non-finite or non-positive values on
/// either side, are ignored.
[[nodiscard]] BenchComparison compare_bench(const BenchSample& baseline,
                                            const BenchSample& current,
                                            double threshold = 0.15);

/// Render the comparison as deterministic human-readable text: one line per
/// case ("name: base -> cur (+x.x%) REGRESSION"), then missing/added cases,
/// then a summary line.
void write_bench_diff_text(std::ostream& os, const BenchComparison& cmp);

}  // namespace ftcf::obs
