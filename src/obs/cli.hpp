// Shared --trace/--metrics/--profile wiring for ftcf_tool and the bench
// harnesses.
//
//   util::Cli cli(...);
//   obs::ObsCli::add_options(cli);
//   ... cli.parse(...) ...
//   obs::ObsCli obs(cli);          // allocates recorder/registry as requested
//   sim.set_observer(obs.observer());
//   ... run ...
//   obs.finish(naming);            // writes the files, prints the profile
//
// When a harness performs several simulator runs in one invocation, all runs
// append into the same trace (each restarts sim time at zero) — use a
// single-configuration invocation when capturing a trace to inspect.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "obs/sim_hooks.hpp"
#include "util/cli.hpp"

namespace ftcf::obs {

class ObsCli {
 public:
  /// Declare --trace, --trace-csv, --trace-cap, --metrics, --heatmap,
  /// --sample-us and --profile.
  static void add_options(util::Cli& cli);

  /// Read the parsed options; allocates only what was asked for and enables
  /// the profiler when --profile was given. --heatmap implies an event
  /// recorder even without --trace/--trace-csv.
  explicit ObsCli(const util::Cli& cli);

  [[nodiscard]] const SimObserver& observer() const noexcept { return obs_; }
  [[nodiscard]] bool active() const noexcept {
    return obs_.active() || profile_;
  }
  [[nodiscard]] MetricsRegistry* metrics() noexcept { return metrics_.get(); }

  /// Attach a destination-host -> VL table for per-VL event tagging; the
  /// table must outlive the simulator runs.
  void set_vl_table(const std::vector<std::uint32_t>* vl_of_dst) noexcept {
    obs_.vl_of_dst = vl_of_dst;
  }

  /// Content-only metadata for the heatmap JSON header (mirrors the
  /// certificate writer's meta discipline: no timestamps, no thread counts).
  void set_heatmap_meta(const std::string& key, const std::string& value) {
    heatmap_meta_[key] = value;
  }

  /// Write the requested output files (throws util::Error on I/O failure)
  /// and print the profiling table to stderr when --profile was given.
  void finish(const TraceNaming& naming = {});

 private:
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<MetricsRegistry> metrics_;
  SimObserver obs_;
  std::string trace_path_;
  std::string trace_csv_path_;
  std::string metrics_path_;
  std::string heatmap_path_;
  std::map<std::string, std::string> heatmap_meta_;
  bool profile_ = false;
};

}  // namespace ftcf::obs
