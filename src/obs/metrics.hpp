// Metrics registry: named counters, gauges, fixed-bucket histograms and
// time series, with a JSON exporter.
//
// This is the aggregate side of the observability layer (trace.hpp is the
// event side): the simulators register what they measure under stable dotted
// names ("packet_sim.link_util.max", "flow_sim.live_flows", ...) and periodic
// sampling turns end-of-run scalars like RunResult::link_busy_ns into
// timelines. Instruments are owned by the registry and returned by reference;
// hot paths resolve an instrument once and touch a plain field afterwards.
//
// Naming convention: lowercase dotted paths, "<subsystem>.<measure>[.<agg>]".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ftcf::obs {

/// Monotonically increasing integer.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins scalar.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram over [lo, hi): `buckets` equal-width bins plus
/// explicit underflow/overflow counts; tracks count/sum/min/max exactly.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double v) noexcept;

  /// Fold another histogram of identical shape (lo / hi / bucket count)
  /// into this one: bucket counts, under/overflow, count and sum add;
  /// min/max widen. Used to merge per-partition histograms after a
  /// partitioned simulation; merging in a fixed partition order keeps the
  /// floating-point sum deterministic.
  void merge(const Histogram& other);

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// (sim-time, value) samples in recording order, bounded by a configurable
/// capacity with deterministic downsampling.
///
/// When the buffer is full, every second retained sample is discarded in
/// place and the acceptance stride doubles: from then on only every
/// `stride()`-th *offered* sample is recorded. The retained set is always
/// "offers at indices divisible by stride()" — a pure function of the offer
/// sequence, never of timing or thread count — so two identical runs keep
/// byte-identical series regardless of when decimation fires. Memory is
/// bounded by capacity() * 16 bytes per series (8 B time + 8 B value).
class TimeSeries {
 public:
  /// Default bound: 64 Ki samples = 1 MiB per series.
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  void sample(sim::SimTime at, double v) {
    const std::uint64_t index = offered_++;
    if (index % stride_ != 0) return;
    if (at_.size() >= capacity_) decimate();
    if (index % stride_ != 0) return;  // stride may have just doubled
    at_.push_back(at);
    values_.push_back(v);
  }

  /// Shrink (never grow) the memory bound; clamped to >= 2. Applies
  /// immediately: an over-full series decimates until it fits.
  void set_capacity(std::size_t cap);

  [[nodiscard]] std::size_t size() const noexcept { return at_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Samples offered via sample(), including ones decimated away.
  [[nodiscard]] std::uint64_t offered() const noexcept { return offered_; }
  /// Current acceptance stride (power of two; 1 until the first decimation).
  [[nodiscard]] std::uint64_t stride() const noexcept { return stride_; }
  [[nodiscard]] const std::vector<sim::SimTime>& times() const noexcept {
    return at_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  void decimate();

  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t stride_ = 1;
  std::uint64_t offered_ = 0;
  std::vector<sim::SimTime> at_;
  std::vector<double> values_;
};

/// Owner of named instruments. Lookup creates on first use; the reference
/// stays valid for the registry's lifetime (node-based map storage).
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// lo/hi/buckets are fixed on first creation; later calls with the same
  /// name return the existing histogram unchanged.
  [[nodiscard]] Histogram& histogram(const std::string& name, double lo,
                                     double hi, std::size_t buckets);
  [[nodiscard]] TimeSeries& series(const std::string& name);

  /// Capacity applied to series created *after* this call (existing series
  /// keep theirs). Clamped to >= 2.
  void set_series_capacity(std::size_t cap) noexcept {
    series_capacity_ = cap < 2 ? 2 : cap;
  }

  /// Free-form run metadata carried into the JSON export.
  void set_meta(const std::string& key, const std::string& value);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;
  [[nodiscard]] const TimeSeries* find_series(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }

  /// One JSON object: {"meta":{...},"counters":{...},"gauges":{...},
  /// "histograms":{...},"series":{...}} — keys sorted (map order), so two
  /// identical runs export byte-identical files.
  void write_json(std::ostream& os) const;

 private:
  std::size_t series_capacity_ = TimeSeries::kDefaultCapacity;
  std::map<std::string, std::string> meta_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, TimeSeries> series_;
};

}  // namespace ftcf::obs
