#include "obs/cli.hpp"

#include <fstream>
#include <iostream>

#include "obs/heatmap.hpp"
#include "obs/profile.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ftcf::obs {

void ObsCli::add_options(util::Cli& cli) {
  cli.add_option("trace", "write a Chrome trace-event JSON ('' = off)", "");
  cli.add_option("trace-csv", "write the raw event CSV ('' = off)", "");
  cli.add_option("trace-cap",
                 "trace buffer capacity in events (overflow keeps the first "
                 "N and counts drops)",
                 std::to_string(TraceRecorder::kDefaultCapacity));
  cli.add_option("metrics", "write the metrics-registry JSON ('' = off)", "");
  cli.add_option("heatmap",
                 "write the per-link/per-stage/per-VL contention heatmap "
                 "JSON ('' = off)",
                 "");
  cli.add_option("sample-us",
                 "link-utilization/queue sampling period (sim microseconds)",
                 "10");
  cli.add_flag("profile", "time construction/sim phases, report at exit");
}

ObsCli::ObsCli(const util::Cli& cli)
    : trace_path_(cli.str("trace")),
      trace_csv_path_(cli.str("trace-csv")),
      metrics_path_(cli.str("metrics")),
      heatmap_path_(cli.str("heatmap")),
      profile_(cli.flag("profile")) {
  if (!trace_path_.empty() || !trace_csv_path_.empty() ||
      !heatmap_path_.empty())
    trace_ = std::make_unique<TraceRecorder>(
        static_cast<std::size_t>(cli.uinteger("trace-cap")));
  if (!metrics_path_.empty()) metrics_ = std::make_unique<MetricsRegistry>();
  obs_.trace = trace_.get();
  obs_.metrics = metrics_.get();
  obs_.sample_period_ns =
      static_cast<sim::SimTime>(cli.uinteger("sample-us")) * 1000;
  if (profile_) {
    Profiler::instance().reset();
    Profiler::instance().set_enabled(true);
  }
}

void ObsCli::finish(const TraceNaming& naming) {
  const auto write_file = [](const std::string& path, const auto& writer) {
    std::ofstream os(path);
    if (!os) throw util::Error("cannot open '" + path + "' for writing");
    writer(os);
    if (!os) throw util::Error("write to '" + path + "' failed");
  };
  if (trace_ && !trace_path_.empty()) {
    write_file(trace_path_,
               [&](std::ostream& os) { write_chrome_trace(*trace_, os, naming); });
    util::log_info("wrote trace ", trace_path_, " (", trace_->size(),
                   " events, ", trace_->dropped(), " dropped)");
  }
  if (trace_ && !trace_csv_path_.empty()) {
    write_file(trace_csv_path_,
               [&](std::ostream& os) { write_trace_csv(*trace_, os); });
    util::log_info("wrote trace CSV ", trace_csv_path_);
  }
  if (trace_ && !heatmap_path_.empty()) {
    ContentionHeatmap heatmap;
    heatmap.ingest(*trace_);
    if (trace_->dropped() > 0) {
      util::log_warn("heatmap built from a truncated trace (",
                     trace_->dropped(),
                     " dropped events) — raise --trace-cap for full coverage");
    }
    write_file(heatmap_path_, [&](std::ostream& os) {
      write_heatmap_json(os, heatmap, heatmap_meta_);
    });
    util::log_info("wrote heatmap ", heatmap_path_, " (",
                   heatmap.cells().size(), " cells)");
  }
  if (metrics_ && !metrics_path_.empty()) {
    write_file(metrics_path_,
               [&](std::ostream& os) { metrics_->write_json(os); });
    util::log_info("wrote metrics ", metrics_path_);
  }
  if (profile_) Profiler::instance().report(std::cerr);
}

}  // namespace ftcf::obs
