#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/expects.hpp"

namespace ftcf::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// JSON has no NaN/Inf literals; shortest round-trippable double otherwise.
void print_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << (std::isnan(v) ? "null" : (v > 0 ? "1e308" : "-1e308"));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

/// Comma management for "key": value sequences inside one object.
struct FieldJoiner {
  std::ostream& os;
  bool first = true;
  std::ostream& key(const std::string& k) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(k) << "\":";
    return os;
  }
};

}  // namespace

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  util::expects(hi > lo && buckets > 0, "histogram needs hi > lo, buckets > 0");
  counts_.assign(buckets, 0);
}

void Histogram::merge(const Histogram& other) {
  util::expects(lo_ == other.lo_ && hi_ == other.hi_ &&
                    counts_.size() == other.counts_.size(),
                "histogram merge requires identical shapes");
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
}

void Histogram::add(double v) noexcept {
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
  if (v < lo_) {
    ++underflow_;
  } else if (v >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((v - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge at hi
    ++counts_[idx];
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t buckets) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(lo, hi, buckets);
  return *slot;
}

void TimeSeries::decimate() {
  // Keep retained samples at even positions (offer indices divisible by the
  // doubled stride); compact in place, no allocation.
  const std::size_t kept = (at_.size() + 1) / 2;
  for (std::size_t i = 0; i < kept; ++i) {
    at_[i] = at_[2 * i];
    values_[i] = values_[2 * i];
  }
  at_.resize(kept);
  values_.resize(kept);
  stride_ *= 2;
}

void TimeSeries::set_capacity(std::size_t cap) {
  capacity_ = cap < 2 ? 2 : cap;
  while (at_.size() > capacity_) decimate();
}

TimeSeries& MetricsRegistry::series(const std::string& name) {
  const auto it = series_.find(name);
  if (it != series_.end()) return it->second;
  TimeSeries& ts = series_[name];
  ts.set_capacity(series_capacity_);
  return ts;
}

void MetricsRegistry::set_meta(const std::string& key,
                               const std::string& value) {
  meta_[key] = value;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

const TimeSeries* MetricsRegistry::find_series(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n \"meta\":{";
  {
    FieldJoiner j{os};
    for (const auto& [k, v] : meta_)
      j.key(k) << '"' << json_escape(v) << '"';
  }
  os << "},\n \"counters\":{";
  {
    FieldJoiner j{os};
    for (const auto& [k, c] : counters_) j.key(k) << c.value();
  }
  os << "},\n \"gauges\":{";
  {
    FieldJoiner j{os};
    for (const auto& [k, g] : gauges_) print_double(j.key(k), g.value());
  }
  os << "},\n \"histograms\":{";
  {
    FieldJoiner j{os};
    for (const auto& [k, h] : histograms_) {
      auto& s = j.key(k);
      s << "{\"lo\":";
      print_double(s, h->lo());
      s << ",\"hi\":";
      print_double(s, h->hi());
      s << ",\"count\":" << h->count() << ",\"sum\":";
      print_double(s, h->sum());
      s << ",\"min\":";
      print_double(s, h->count() ? h->min() : 0.0);
      s << ",\"max\":";
      print_double(s, h->count() ? h->max() : 0.0);
      s << ",\"underflow\":" << h->underflow()
        << ",\"overflow\":" << h->overflow() << ",\"buckets\":[";
      bool first = true;
      for (const std::uint64_t n : h->buckets()) {
        if (!first) s << ',';
        first = false;
        s << n;
      }
      s << "]}";
    }
  }
  os << "},\n \"series\":{";
  {
    FieldJoiner j{os};
    for (const auto& [k, ts] : series_) {
      auto& s = j.key(k);
      s << "{\"t_ns\":[";
      bool first = true;
      for (const sim::SimTime t : ts.times()) {
        if (!first) s << ',';
        first = false;
        s << t;
      }
      s << "],\"v\":[";
      first = true;
      for (const double v : ts.values()) {
        if (!first) s << ',';
        first = false;
        print_double(s, v);
      }
      s << "]}";
    }
  }
  os << "}\n}\n";
}

}  // namespace ftcf::obs
