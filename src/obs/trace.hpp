// Simulation trace capture (the BigSim/OTF-style recorder of ROADMAP's
// observability step).
//
// The simulators feed a TraceRecorder with compact typed events — packet
// injected/forwarded/delivered, queue-depth high-watermark crossings, credit
// stalls, CPS stage boundaries, periodic link samples — into a pre-sized
// buffer (no allocation after construction; overflow drops-and-counts, it
// never reallocates under a hot loop). Every event additionally carries the
// CPS stage it belongs to and the virtual lane of the packet's destination,
// so post-run analyses (the contention heatmap, the cert-telemetry replay)
// can slice the stream per (stage, link, VL) without re-simulating.
//
// For parallel producers (one simulator replay per ftcf::par task), a
// ShardedTraceRecorder owns one TraceRecorder per shard; work is assigned to
// shards by *task index* — never by worker thread — and the merged view is
// sorted by (timestamp, shard, intra-shard sequence), so the merged stream is
// byte-identical at any --threads count (the same contract as
// par_determinism_test).
//
// Exporters turn an event stream into
//   * Chrome trace-event JSON (chrome://tracing / Perfetto loadable), with
//     one duration track per directed link, per-link utilization counter
//     tracks and CPS stage markers;
//   * a compact CSV for ad-hoc scripting.
//
// Recording costs one branch and one bounds-checked append per event; with no
// recorder attached the simulators skip the hooks entirely, and compiling
// with -DFTCF_OBS_DISABLED removes the profiling macros too (see profile.hpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ftcf::obs {

/// Typed trace events. Field meaning per kind (a/b/c are kind-specific):
///   kPacketInjected   a=host        b=msg id      c=seq
///   kPacketForwarded  a=src port    b=msg id      c=seq       dur=serialization
///   kPacketDelivered  a=host        b=msg id      c=seq
///   kQueueDepth       a=input port  b=new high-watermark
///   kCreditStall      a=out port (blocked by zero credits)
///   kStageBegin       a=stage index
///   kStageEnd         a=stage index
///   kLinkSample       a=src port    b=util permille (window)  c=queue depth
///   kFlowStart        a=src host    b=dst host    c=KiB (flow sim)
///   kFlowEnd          a=src host    b=dst host
///   kPacketDropped    a=port where dropped          b=msg id  c=seq
///   kPacketRetransmit a=host        b=msg id      c=seq
///   kLinkDown         a=src port (cable dies; peer gets its own event)
///   kLinkUp           a=src port (cable revives)
enum class EventKind : std::uint8_t {
  kPacketInjected,
  kPacketForwarded,
  kPacketDelivered,
  kQueueDepth,
  kCreditStall,
  kStageBegin,
  kStageEnd,
  kLinkSample,
  kFlowStart,
  kFlowEnd,
  kPacketDropped,
  kPacketRetransmit,
  kLinkDown,
  kLinkUp,
};

[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;

/// Sentinel stage for events outside any CPS stage (async free-run, link
/// flaps, samples between stages).
inline constexpr std::uint16_t kNoStage = 0xFFFF;

struct TraceEvent {
  sim::SimTime at = 0;   ///< simulation time (ns)
  sim::SimTime dur = 0;  ///< duration (ns) for span-like kinds, else 0
  EventKind kind = EventKind::kPacketInjected;
  std::uint8_t vl = 0;           ///< virtual lane of the destination (0 = none)
  std::uint16_t stage = kNoStage;  ///< CPS stage, kNoStage when not stage-bound
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
};
// vl/stage live in what used to be struct padding: the event stays 32 bytes.
static_assert(sizeof(TraceEvent) == 32, "TraceEvent grew past one half-line");

/// Fixed-capacity event buffer. Overflow policy: keep the first `capacity`
/// events, count the rest in `dropped()` (the head of a run is where routing
/// decisions happen; the tail is usually drain).
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  /// Append one event; drops (and counts) once the buffer is full.
  void record(const TraceEvent& ev) noexcept {
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(ev);
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Forget all events (capacity is kept); for per-run reuse.
  void clear() noexcept {
    events_.clear();
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

/// Per-shard trace capture for parallel producers. Each shard is a private
/// TraceRecorder: no lock, no false sharing on the hot append path. The
/// caller assigns shards by task index (shard i <- task i), so which worker
/// thread ran the task never influences which buffer its events land in —
/// the merged stream is a pure function of the work, not the schedule.
class ShardedTraceRecorder {
 public:
  explicit ShardedTraceRecorder(
      std::size_t num_shards,
      std::size_t capacity_per_shard = TraceRecorder::kDefaultCapacity);

  [[nodiscard]] TraceRecorder& shard(std::size_t i) { return shards_[i]; }
  [[nodiscard]] const TraceRecorder& shard(std::size_t i) const {
    return shards_[i];
  }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t total_size() const noexcept;
  [[nodiscard]] std::uint64_t total_dropped() const noexcept;

  /// All shards' events merged deterministically: sorted by (timestamp,
  /// shard index, intra-shard sequence). Within one shard the recording
  /// order is preserved; across shards ties at one timestamp resolve by
  /// shard index. The result is byte-identical for any worker-thread count.
  [[nodiscard]] std::vector<TraceEvent> merged() const;

  void clear() noexcept;

 private:
  std::vector<TraceRecorder> shards_;
};

/// Human-readable track names for the exporter. Leave vectors empty to fall
/// back to "port N" / "host N". topology/obs_names.hpp builds one from a
/// Fabric (obs itself stays topology-agnostic to keep the dependency DAG).
struct TraceNaming {
  std::vector<std::string> port_names;  ///< indexed by source PortId
  std::vector<std::string> host_names;  ///< indexed by host linear index
};

/// Write an event stream as Chrome trace-event JSON ("traceEvents"
/// object form, displayTimeUnit ns). Track layout:
///   pid 1 "CPS stages"   — one "X" span per begin/end stage pair plus an
///                          instant marker per stage begin;
///   pid 2 "links"        — tid per source port, one "X" span per forwarded
///                          packet (the per-link busy timeline);
///   pid 3 "link samples" — one counter track per port: util % and queue
///                          depth from kLinkSample events;
///   pid 4 "hosts"        — tid per host, instants for inject/deliver and
///                          flow start/end, plus credit-stall instants.
void write_chrome_trace(std::span<const TraceEvent> events,
                        std::uint64_t dropped, std::ostream& os,
                        const TraceNaming& naming = {});
void write_chrome_trace(const TraceRecorder& recorder, std::ostream& os,
                        const TraceNaming& naming = {});
void write_chrome_trace(const ShardedTraceRecorder& recorder, std::ostream& os,
                        const TraceNaming& naming = {});

/// Write "ts_ns,kind,a,b,c,dur_ns,vl,stage" CSV (header line first; stage
/// prints as -1 for kNoStage).
void write_trace_csv(std::span<const TraceEvent> events, std::ostream& os);
void write_trace_csv(const TraceRecorder& recorder, std::ostream& os);
void write_trace_csv(const ShardedTraceRecorder& recorder, std::ostream& os);

}  // namespace ftcf::obs
