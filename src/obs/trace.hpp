// Simulation trace capture (the BigSim/OTF-style recorder of ROADMAP's
// observability step).
//
// The simulators feed a TraceRecorder with compact typed events — packet
// injected/forwarded/delivered, queue-depth high-watermark crossings, credit
// stalls, CPS stage boundaries, periodic link samples — into a pre-sized
// buffer (no allocation after construction; overflow drops-and-counts, it
// never reallocates under a hot loop). Exporters turn the buffer into
//   * Chrome trace-event JSON (chrome://tracing / Perfetto loadable), with
//     one duration track per directed link, per-link utilization counter
//     tracks and CPS stage markers;
//   * a compact CSV for ad-hoc scripting.
//
// Recording costs one branch and one bounds-checked append per event; with no
// recorder attached the simulators skip the hooks entirely, and compiling
// with -DFTCF_OBS_DISABLED removes the profiling macros too (see profile.hpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ftcf::obs {

/// Typed trace events. Field meaning per kind (a/b/c are kind-specific):
///   kPacketInjected   a=host        b=msg id      c=seq
///   kPacketForwarded  a=src port    b=msg id      c=seq       dur=serialization
///   kPacketDelivered  a=host        b=msg id      c=seq
///   kQueueDepth       a=input port  b=new high-watermark
///   kCreditStall      a=out port (blocked by zero credits)
///   kStageBegin       a=stage index
///   kStageEnd         a=stage index
///   kLinkSample       a=src port    b=util permille (window)  c=queue depth
///   kFlowStart        a=src host    b=dst host    c=KiB (flow sim)
///   kFlowEnd          a=src host    b=dst host
///   kPacketDropped    a=port where dropped          b=msg id  c=seq
///   kPacketRetransmit a=host        b=msg id      c=seq
///   kLinkDown         a=src port (cable dies; peer gets its own event)
///   kLinkUp           a=src port (cable revives)
enum class EventKind : std::uint8_t {
  kPacketInjected,
  kPacketForwarded,
  kPacketDelivered,
  kQueueDepth,
  kCreditStall,
  kStageBegin,
  kStageEnd,
  kLinkSample,
  kFlowStart,
  kFlowEnd,
  kPacketDropped,
  kPacketRetransmit,
  kLinkDown,
  kLinkUp,
};

[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;

struct TraceEvent {
  sim::SimTime at = 0;   ///< simulation time (ns)
  sim::SimTime dur = 0;  ///< duration (ns) for span-like kinds, else 0
  EventKind kind = EventKind::kPacketInjected;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
};

/// Fixed-capacity event buffer. Overflow policy: keep the first `capacity`
/// events, count the rest in `dropped()` (the head of a run is where routing
/// decisions happen; the tail is usually drain).
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  /// Append one event; drops (and counts) once the buffer is full.
  void record(const TraceEvent& ev) noexcept {
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(ev);
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Forget all events (capacity is kept); for per-run reuse.
  void clear() noexcept {
    events_.clear();
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

/// Human-readable track names for the exporter. Leave vectors empty to fall
/// back to "port N" / "host N". topology/obs_names.hpp builds one from a
/// Fabric (obs itself stays topology-agnostic to keep the dependency DAG).
struct TraceNaming {
  std::vector<std::string> port_names;  ///< indexed by source PortId
  std::vector<std::string> host_names;  ///< indexed by host linear index
};

/// Write the recorded events as Chrome trace-event JSON ("traceEvents"
/// object form, displayTimeUnit ns). Track layout:
///   pid 1 "CPS stages"   — one "X" span per begin/end stage pair plus an
///                          instant marker per stage begin;
///   pid 2 "links"        — tid per source port, one "X" span per forwarded
///                          packet (the per-link busy timeline);
///   pid 3 "link samples" — one counter track per port: util % and queue
///                          depth from kLinkSample events;
///   pid 4 "hosts"        — tid per host, instants for inject/deliver and
///                          flow start/end, plus credit-stall instants.
void write_chrome_trace(const TraceRecorder& recorder, std::ostream& os,
                        const TraceNaming& naming = {});

/// Write "ts_ns,kind,a,b,c,dur_ns" CSV (header line first).
void write_trace_csv(const TraceRecorder& recorder, std::ostream& os);

}  // namespace ftcf::obs
