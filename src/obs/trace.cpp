#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <ostream>
#include <string_view>

namespace ftcf::obs {

namespace {

/// Minimal JSON string escaper (names may contain quotes/backslashes).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string port_name(const TraceNaming& naming, std::uint32_t port) {
  if (port < naming.port_names.size()) return naming.port_names[port];
  return "port " + std::to_string(port);
}

std::string host_name(const TraceNaming& naming, std::uint32_t host) {
  if (host < naming.host_names.size()) return naming.host_names[host];
  return "host " + std::to_string(host);
}

/// Chrome trace "ts" is in microseconds; fractional values are allowed, so
/// print ns as us with three decimals to keep full integer-ns fidelity.
void print_ts(std::ostream& os, sim::SimTime ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {}

  /// Begin one event object; the caller appends fields via raw() and calls
  /// close(). Emits the separating comma between events.
  std::ostream& open() {
    if (!first_) os_ << ",\n";
    first_ = false;
    os_ << "  {";
    return os_;
  }
  void close() { os_ << '}'; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

void write_metadata(EventWriter& w, int pid, const std::string& name) {
  w.open() << "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}";
  w.close();
}

void write_thread_name(EventWriter& w, int pid, std::uint32_t tid,
                       const std::string& name) {
  w.open() << "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
           << json_escape(name) << "\"}";
  w.close();
}

constexpr int kPidStages = 1;
constexpr int kPidLinks = 2;
constexpr int kPidSamples = 3;
constexpr int kPidHosts = 4;

}  // namespace

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kPacketInjected: return "packet_injected";
    case EventKind::kPacketForwarded: return "packet_forwarded";
    case EventKind::kPacketDelivered: return "packet_delivered";
    case EventKind::kQueueDepth: return "queue_depth";
    case EventKind::kCreditStall: return "credit_stall";
    case EventKind::kStageBegin: return "stage_begin";
    case EventKind::kStageEnd: return "stage_end";
    case EventKind::kLinkSample: return "link_sample";
    case EventKind::kFlowStart: return "flow_start";
    case EventKind::kFlowEnd: return "flow_end";
    case EventKind::kPacketDropped: return "packet_dropped";
    case EventKind::kPacketRetransmit: return "packet_retransmit";
    case EventKind::kLinkDown: return "link_down";
    case EventKind::kLinkUp: return "link_up";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  events_.reserve(capacity_);
}

ShardedTraceRecorder::ShardedTraceRecorder(std::size_t num_shards,
                                           std::size_t capacity_per_shard) {
  shards_.reserve(num_shards == 0 ? 1 : num_shards);
  for (std::size_t i = 0; i < std::max<std::size_t>(num_shards, 1); ++i)
    shards_.emplace_back(capacity_per_shard);
}

std::size_t ShardedTraceRecorder::total_size() const noexcept {
  std::size_t n = 0;
  for (const TraceRecorder& s : shards_) n += s.size();
  return n;
}

std::uint64_t ShardedTraceRecorder::total_dropped() const noexcept {
  std::uint64_t n = 0;
  for (const TraceRecorder& s : shards_) n += s.dropped();
  return n;
}

std::vector<TraceEvent> ShardedTraceRecorder::merged() const {
  struct Tagged {
    std::uint32_t shard;
    std::uint32_t pos;
  };
  std::vector<Tagged> order;
  order.reserve(total_size());
  for (std::size_t s = 0; s < shards_.size(); ++s)
    for (std::size_t i = 0; i < shards_[s].size(); ++i)
      order.push_back({static_cast<std::uint32_t>(s),
                       static_cast<std::uint32_t>(i)});
  // stable total order (at, shard, intra-shard seq) — independent of how
  // many worker threads filled the shards.
  std::sort(order.begin(), order.end(), [this](const Tagged& x,
                                               const Tagged& y) {
    const sim::SimTime ax = shards_[x.shard].events()[x.pos].at;
    const sim::SimTime ay = shards_[y.shard].events()[y.pos].at;
    if (ax != ay) return ax < ay;
    if (x.shard != y.shard) return x.shard < y.shard;
    return x.pos < y.pos;
  });
  std::vector<TraceEvent> out;
  out.reserve(order.size());
  for (const Tagged& t : order)
    out.push_back(shards_[t.shard].events()[t.pos]);
  return out;
}

void ShardedTraceRecorder::clear() noexcept {
  for (TraceRecorder& s : shards_) s.clear();
}

void write_chrome_trace(std::span<const TraceEvent> events,
                        std::uint64_t dropped, std::ostream& os,
                        const TraceNaming& naming) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  EventWriter w(os);

  write_metadata(w, kPidStages, "CPS stages");
  write_metadata(w, kPidLinks, "links (per-packet busy spans)");
  write_metadata(w, kPidSamples, "link samples (util %, queue depth)");
  write_metadata(w, kPidHosts, "hosts");

  // Name every track that will appear (ports/hosts referenced by events).
  std::map<std::uint32_t, bool> link_tracks;  // port -> has samples too
  std::map<std::uint32_t, bool> host_tracks;
  for (const TraceEvent& ev : events) {
    switch (ev.kind) {
      case EventKind::kPacketForwarded:
      case EventKind::kQueueDepth:
      case EventKind::kCreditStall:
      case EventKind::kPacketDropped:
      case EventKind::kLinkDown:
      case EventKind::kLinkUp:
        link_tracks.emplace(ev.a, false);
        break;
      case EventKind::kLinkSample:
        link_tracks[ev.a] = true;
        break;
      case EventKind::kPacketInjected:
      case EventKind::kPacketDelivered:
      case EventKind::kFlowStart:
      case EventKind::kFlowEnd:
      case EventKind::kPacketRetransmit:
        host_tracks.emplace(ev.a, false);
        break;
      default:
        break;
    }
  }
  for (const auto& [port, _] : link_tracks)
    write_thread_name(w, kPidLinks, port, port_name(naming, port));
  for (const auto& [host, _] : host_tracks)
    write_thread_name(w, kPidHosts, host, host_name(naming, host));

  // Pair stage begin/end into "X" spans; unmatched begins stay markers only.
  std::map<std::uint32_t, sim::SimTime> stage_begun;

  for (const TraceEvent& ev : events) {
    switch (ev.kind) {
      case EventKind::kStageBegin: {
        stage_begun[ev.a] = ev.at;
        auto& s = w.open();
        s << "\"name\":\"stage " << ev.a
          << " begin\",\"ph\":\"i\",\"s\":\"g\",\"pid\":" << kPidStages
          << ",\"tid\":0,\"ts\":";
        print_ts(s, ev.at);
        w.close();
        break;
      }
      case EventKind::kStageEnd: {
        const auto it = stage_begun.find(ev.a);
        if (it == stage_begun.end()) break;
        auto& s = w.open();
        s << "\"name\":\"CPS stage " << ev.a << "\",\"ph\":\"X\",\"pid\":"
          << kPidStages << ",\"tid\":0,\"ts\":";
        print_ts(s, it->second);
        s << ",\"dur\":";
        print_ts(s, ev.at - it->second);
        w.close();
        stage_begun.erase(it);
        break;
      }
      case EventKind::kPacketForwarded: {
        auto& s = w.open();
        s << "\"name\":\"m" << ev.b << "#" << ev.c << "\",\"ph\":\"X\",\"pid\":"
          << kPidLinks << ",\"tid\":" << ev.a << ",\"ts\":";
        print_ts(s, ev.at);
        s << ",\"dur\":";
        print_ts(s, ev.dur);
        if (ev.stage != kNoStage || ev.vl != 0) {
          s << ",\"args\":{";
          if (ev.stage != kNoStage) {
            s << "\"stage\":" << ev.stage;
            if (ev.vl != 0) s << ',';
          }
          if (ev.vl != 0) s << "\"vl\":" << static_cast<unsigned>(ev.vl);
          s << '}';
        }
        w.close();
        break;
      }
      case EventKind::kLinkSample: {
        auto& s = w.open();
        s << "\"name\":\"" << json_escape(port_name(naming, ev.a))
          << "\",\"ph\":\"C\",\"pid\":" << kPidSamples << ",\"tid\":0,\"ts\":";
        print_ts(s, ev.at);
        s << ",\"args\":{\"util%\":" << ev.b / 10 << '.' << ev.b % 10
          << ",\"queue\":" << ev.c << '}';
        w.close();
        break;
      }
      case EventKind::kQueueDepth: {
        auto& s = w.open();
        s << "\"name\":\"queue depth " << ev.b
          << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kPidLinks
          << ",\"tid\":" << ev.a << ",\"ts\":";
        print_ts(s, ev.at);
        w.close();
        break;
      }
      case EventKind::kCreditStall: {
        auto& s = w.open();
        s << "\"name\":\"credit stall\",\"ph\":\"i\",\"s\":\"t\",\"pid\":"
          << kPidLinks << ",\"tid\":" << ev.a << ",\"ts\":";
        print_ts(s, ev.at);
        w.close();
        break;
      }
      case EventKind::kPacketInjected:
      case EventKind::kPacketDelivered: {
        auto& s = w.open();
        s << "\"name\":\""
          << (ev.kind == EventKind::kPacketInjected ? "inject" : "deliver")
          << " m" << ev.b << "#" << ev.c
          << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << kPidHosts
          << ",\"tid\":" << ev.a << ",\"ts\":";
        print_ts(s, ev.at);
        w.close();
        break;
      }
      case EventKind::kFlowStart:
      case EventKind::kFlowEnd: {
        auto& s = w.open();
        s << "\"name\":\"flow to "
          << json_escape(host_name(naming, ev.b)) << "\",\"ph\":\""
          << (ev.kind == EventKind::kFlowStart ? 'B' : 'E')
          << "\",\"pid\":" << kPidHosts << ",\"tid\":" << ev.a << ",\"ts\":";
        print_ts(s, ev.at);
        w.close();
        break;
      }
      default:
        break;
    }
  }
  os << "\n],\"otherData\":{\"dropped_events\":" << dropped << "}}\n";
}

void write_chrome_trace(const TraceRecorder& recorder, std::ostream& os,
                        const TraceNaming& naming) {
  write_chrome_trace(std::span<const TraceEvent>(recorder.events()),
                     recorder.dropped(), os, naming);
}

void write_chrome_trace(const ShardedTraceRecorder& recorder, std::ostream& os,
                        const TraceNaming& naming) {
  const std::vector<TraceEvent> merged = recorder.merged();
  write_chrome_trace(std::span<const TraceEvent>(merged),
                     recorder.total_dropped(), os, naming);
}

void write_trace_csv(std::span<const TraceEvent> events, std::ostream& os) {
  os << "ts_ns,kind,a,b,c,dur_ns,vl,stage\n";
  for (const TraceEvent& ev : events) {
    os << ev.at << ',' << event_kind_name(ev.kind) << ',' << ev.a << ','
       << ev.b << ',' << ev.c << ',' << ev.dur << ','
       << static_cast<unsigned>(ev.vl) << ',';
    if (ev.stage == kNoStage) {
      os << "-1";
    } else {
      os << ev.stage;
    }
    os << '\n';
  }
}

void write_trace_csv(const TraceRecorder& recorder, std::ostream& os) {
  write_trace_csv(std::span<const TraceEvent>(recorder.events()), os);
}

void write_trace_csv(const ShardedTraceRecorder& recorder, std::ostream& os) {
  const std::vector<TraceEvent> merged = recorder.merged();
  write_trace_csv(std::span<const TraceEvent>(merged), os);
}

}  // namespace ftcf::obs
