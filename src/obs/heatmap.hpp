// Contention heatmap: fold a trace event stream into per-(stage, link, VL)
// occupancy cells.
//
// This is the dynamic counterpart of the static certifier's StageWitness: for
// every CPS stage the heatmap records, per directed link and virtual lane,
// how long the link was busy serializing packets, how many packets crossed
// it, how many *distinct messages* crossed it (= concurrent flows for a
// deterministic single-path routing, i.e. the dynamic HSD witness), the queue
// high-watermark behind it, and the peak sampled utilization. The JSON
// artifact is deterministic — sorted (stage, port, vl) cells, content-only
// meta — so `ftcf_tool simulate --heatmap` output is byte-identical at any
// --threads count.
//
// obs stays topology-agnostic: link speeds arrive through the optional
// LinkInfo table (the tool derives it from sim::buffer_topology()), and a
// missing table simply leaves util derived from busy time over the stage
// window, which is exact for the packet sim's serialization spans.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace ftcf::obs {

/// One (stage, link, VL) occupancy cell.
struct HeatmapCell {
  std::uint64_t busy_ns = 0;    ///< summed serialization time on the link
  std::uint64_t packets = 0;    ///< kPacketForwarded events
  std::uint64_t flows = 0;      ///< distinct message ids (dynamic link load)
  std::uint32_t max_queue = 0;  ///< queue-depth high-watermark behind the link
  std::uint32_t max_sample_permille = 0;  ///< peak kLinkSample util (flow sim)
};

/// Cell key; stage uses kNoStage for events outside any CPS stage.
struct HeatmapKey {
  std::uint16_t stage = kNoStage;
  std::uint32_t port = 0;
  std::uint8_t vl = 0;

  friend bool operator<(const HeatmapKey& x, const HeatmapKey& y) noexcept {
    if (x.stage != y.stage) return x.stage < y.stage;
    if (x.port != y.port) return x.port < y.port;
    return x.vl < y.vl;
  }
};

class ContentionHeatmap {
 public:
  /// Fold an event stream into cells. May be called repeatedly (streams
  /// accumulate); stage windows extend over all ingested streams.
  void ingest(std::span<const TraceEvent> events);
  void ingest(const TraceRecorder& recorder);
  void ingest(const ShardedTraceRecorder& recorder);

  [[nodiscard]] const std::map<HeatmapKey, HeatmapCell>& cells()
      const noexcept {
    return cells_;
  }

  /// [begin, end] sim-time window observed for a stage (from kStageBegin/End
  /// events; falls back to the full ingested span when a stage never got
  /// explicit markers). Returns window length in ns, 0 when unknown.
  [[nodiscard]] std::uint64_t stage_window_ns(std::uint16_t stage) const;

  /// Max over directed links of distinct messages that crossed the link
  /// during `stage` (summing the link's VL cells — a message has one VL).
  /// This is the dynamic analogue of StageWitness::max_hsd.
  [[nodiscard]] std::uint64_t max_flows_in_stage(std::uint16_t stage) const;

  /// Stages that have at least one cell, ascending (kNoStage last if present).
  [[nodiscard]] std::vector<std::uint16_t> stages() const;

 private:
  struct Window {
    sim::SimTime begin = 0;
    sim::SimTime end = 0;
    bool has_begin = false;
    bool has_end = false;
  };

  std::map<HeatmapKey, HeatmapCell> cells_;
  std::map<std::uint16_t, Window> windows_;
  // distinct-message tracking per cell (messages seen so far)
  std::map<HeatmapKey, std::vector<std::uint32_t>> msgs_seen_;
  sim::SimTime span_begin_ = 0;
  sim::SimTime span_end_ = 0;
  bool any_event_ = false;
};

/// Write the heatmap as one deterministic JSON object:
///   {"meta":{...},
///    "heatmap":{"num_stages":N,"total_cells":M,
///      "stages":[{"stage":S,"window_ns":W,"max_flows":F,
///                 "links":[{"port":P,"vl":V,"busy_ns":B,"packets":K,
///                           "flows":F,"max_queue":Q,"util":U}, ...]}, ...]}}
/// Cells sort by (stage, port, vl); the out-of-stage group (stage -1) sorts
/// last. `util` is busy_ns over the stage window (%.17g), clamped to [0,1];
/// when the window is unknown or zero it falls back to the peak sampled
/// permille / 1000.
void write_heatmap_json(std::ostream& os, const ContentionHeatmap& heatmap,
                        const std::map<std::string, std::string>& meta = {});

}  // namespace ftcf::obs
