#include "obs/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace ftcf::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Same formatting contract as the metrics exporter: shortest round-trippable
/// double, no NaN/Inf literals.
void print_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << (std::isnan(v) ? "null" : (v > 0 ? "1e308" : "-1e308"));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

void ContentionHeatmap::ingest(std::span<const TraceEvent> events) {
  for (const TraceEvent& ev : events) {
    if (!any_event_ || ev.at < span_begin_) span_begin_ = ev.at;
    const sim::SimTime end = ev.at + ev.dur;
    if (!any_event_ || end > span_end_) span_end_ = end;
    any_event_ = true;

    switch (ev.kind) {
      case EventKind::kStageBegin: {
        Window& win = windows_[static_cast<std::uint16_t>(ev.a)];
        if (!win.has_begin || ev.at < win.begin) win.begin = ev.at;
        win.has_begin = true;
        break;
      }
      case EventKind::kStageEnd: {
        Window& win = windows_[static_cast<std::uint16_t>(ev.a)];
        if (!win.has_end || ev.at > win.end) win.end = ev.at;
        win.has_end = true;
        break;
      }
      case EventKind::kPacketForwarded: {
        const HeatmapKey key{ev.stage, ev.a, ev.vl};
        HeatmapCell& cell = cells_[key];
        cell.busy_ns += ev.dur;
        ++cell.packets;
        std::vector<std::uint32_t>& seen = msgs_seen_[key];
        if (std::find(seen.begin(), seen.end(), ev.b) == seen.end()) {
          seen.push_back(ev.b);
          ++cell.flows;
        }
        break;
      }
      case EventKind::kQueueDepth: {
        HeatmapCell& cell = cells_[HeatmapKey{ev.stage, ev.a, ev.vl}];
        cell.max_queue = std::max(cell.max_queue, ev.b);
        break;
      }
      case EventKind::kLinkSample: {
        HeatmapCell& cell = cells_[HeatmapKey{ev.stage, ev.a, ev.vl}];
        cell.max_sample_permille = std::max(cell.max_sample_permille, ev.b);
        cell.max_queue = std::max(cell.max_queue, ev.c);
        break;
      }
      default:
        break;
    }
  }
}

void ContentionHeatmap::ingest(const TraceRecorder& recorder) {
  ingest(std::span<const TraceEvent>(recorder.events()));
}

void ContentionHeatmap::ingest(const ShardedTraceRecorder& recorder) {
  for (std::size_t i = 0; i < recorder.num_shards(); ++i)
    ingest(recorder.shard(i));
}

std::uint64_t ContentionHeatmap::stage_window_ns(std::uint16_t stage) const {
  const auto it = windows_.find(stage);
  if (it != windows_.end() && it->second.has_begin && it->second.has_end &&
      it->second.end > it->second.begin) {
    return it->second.end - it->second.begin;
  }
  if (any_event_ && span_end_ > span_begin_) return span_end_ - span_begin_;
  return 0;
}

std::uint64_t ContentionHeatmap::max_flows_in_stage(
    std::uint16_t stage) const {
  std::uint64_t best = 0;
  std::uint64_t per_port = 0;
  std::uint32_t cur_port = 0;
  bool open = false;
  // cells_ is sorted (stage, port, vl): one linear pass sums a port's VLs.
  for (const auto& [key, cell] : cells_) {
    if (key.stage != stage) continue;
    if (!open || key.port != cur_port) {
      best = std::max(best, per_port);
      per_port = 0;
      cur_port = key.port;
      open = true;
    }
    per_port += cell.flows;
  }
  return std::max(best, per_port);
}

std::vector<std::uint16_t> ContentionHeatmap::stages() const {
  std::vector<std::uint16_t> out;
  for (const auto& [key, _] : cells_)
    if (out.empty() || out.back() != key.stage) out.push_back(key.stage);
  // cells_ sorts kNoStage (0xFFFF) last already; dedupe is complete because
  // the map iterates stages in ascending runs.
  return out;
}

void write_heatmap_json(std::ostream& os, const ContentionHeatmap& heatmap,
                        const std::map<std::string, std::string>& meta) {
  os << "{\n \"meta\":{";
  bool first = true;
  for (const auto& [k, v] : meta) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(k) << "\":\"" << json_escape(v) << '"';
  }
  const std::vector<std::uint16_t> stages = heatmap.stages();
  os << "},\n \"heatmap\":{\"num_stages\":" << stages.size()
     << ",\"total_cells\":" << heatmap.cells().size() << ",\"stages\":[";
  const auto& cells = heatmap.cells();
  auto it = cells.begin();
  bool first_stage = true;
  for (const std::uint16_t stage : stages) {
    if (!first_stage) os << ',';
    first_stage = false;
    const std::uint64_t window = heatmap.stage_window_ns(stage);
    os << "\n  {\"stage\":";
    if (stage == kNoStage) {
      os << -1;
    } else {
      os << stage;
    }
    os << ",\"window_ns\":" << window
       << ",\"max_flows\":" << heatmap.max_flows_in_stage(stage)
       << ",\"links\":[";
    bool first_link = true;
    for (; it != cells.end() && it->first.stage == stage; ++it) {
      const HeatmapKey& key = it->first;
      const HeatmapCell& cell = it->second;
      if (!first_link) os << ',';
      first_link = false;
      double util = 0.0;
      if (cell.busy_ns > 0 && window > 0) {
        util = std::min(1.0, static_cast<double>(cell.busy_ns) /
                                 static_cast<double>(window));
      } else {
        util = static_cast<double>(cell.max_sample_permille) / 1000.0;
      }
      os << "\n   {\"port\":" << key.port
         << ",\"vl\":" << static_cast<unsigned>(key.vl)
         << ",\"busy_ns\":" << cell.busy_ns << ",\"packets\":" << cell.packets
         << ",\"flows\":" << cell.flows << ",\"max_queue\":" << cell.max_queue
         << ",\"util\":";
      print_double(os, util);
      os << '}';
    }
    os << "]}";
  }
  os << "\n ]}\n}\n";
}

}  // namespace ftcf::obs
