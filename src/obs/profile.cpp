#include "obs/profile.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <ostream>
#include <vector>

#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::obs {

namespace {

struct Slot {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

// Keyed by name text (not pointer): the same scope name may appear at
// several call sites and should aggregate into one row.
util::Mutex g_mutex;
std::map<std::string, Slot>& slots() FTCF_REQUIRES(g_mutex) {
  static std::map<std::string, Slot> s;
  return s;
}

std::string fmt_ns(double ns) {
  if (ns >= 1e9) return util::fmt_double(ns / 1e9, 2) + " s";
  if (ns >= 1e6) return util::fmt_double(ns / 1e6, 2) + " ms";
  if (ns >= 1e3) return util::fmt_double(ns / 1e3, 2) + " us";
  return util::fmt_double(ns, 0) + " ns";
}

}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::add(const char* name, std::uint64_t ns) {
  const util::LockGuard lock(g_mutex);
  Slot& slot = slots()[name];
  ++slot.calls;
  slot.total_ns += ns;
  slot.max_ns = std::max(slot.max_ns, ns);
}

std::vector<Profiler::Entry> Profiler::entries() const {
  std::vector<Entry> out;
  {
    const util::LockGuard lock(g_mutex);
    for (const auto& [name, slot] : slots())
      out.push_back(Entry{name, slot.calls, slot.total_ns, slot.max_ns});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
    return a.name < b.name;
  });
  return out;
}

void Profiler::reset() {
  const util::LockGuard lock(g_mutex);
  slots().clear();
}

namespace {

// Registry for the par-timing sink. The sink runs on whichever thread
// issued the (top-level) parallel loop; installation itself is expected
// from the single-threaded driver before the sweeps start.
MetricsRegistry* g_par_registry = nullptr;

void par_timing_sink(const char* label, const double* task_seconds,
                     std::size_t num_tasks) {
  if (num_tasks == 0) return;
  const std::string entry = std::string("par.") + label;
  Profiler& profiler = Profiler::instance();
  for (std::size_t t = 0; t < num_tasks; ++t) {
    profiler.add(entry.c_str(), static_cast<std::uint64_t>(
                                    task_seconds[t] * 1e9));
  }
  if (g_par_registry == nullptr) return;
  std::vector<double> sample(task_seconds, task_seconds + num_tasks);
  static constexpr std::array<double, 3> kQs = {0.5, 0.95, 0.99};
  const std::vector<double> ps = util::percentiles(std::move(sample), kQs);
  g_par_registry->gauge(entry + ".tasks")
      .set(static_cast<double>(num_tasks));
  g_par_registry->gauge(entry + ".p50_ms").set(ps[0] * 1e3);
  g_par_registry->gauge(entry + ".p95_ms").set(ps[1] * 1e3);
  g_par_registry->gauge(entry + ".p99_ms").set(ps[2] * 1e3);
}

}  // namespace

void enable_par_timing(MetricsRegistry* registry) {
  g_par_registry = registry;
  par::set_timing_sink(&par_timing_sink);
}

void disable_par_timing() noexcept {
  par::set_timing_sink(nullptr);
  g_par_registry = nullptr;
}

void Profiler::report(std::ostream& os) const {
  const std::vector<Entry> rows = entries();
  util::Table table({"scope", "calls", "total", "mean", "max"});
  table.set_title("profiling scopes (wall clock)");
  for (const Entry& e : rows) {
    const double mean =
        e.calls ? static_cast<double>(e.total_ns) / static_cast<double>(e.calls)
                : 0.0;
    table.add_row({e.name, std::to_string(e.calls),
                   fmt_ns(static_cast<double>(e.total_ns)), fmt_ns(mean),
                   fmt_ns(static_cast<double>(e.max_ns))});
  }
  if (rows.empty())
    table.add_row({"(no scopes recorded)", "0", "-", "-", "-"});
  table.print(os);
}

}  // namespace ftcf::obs
