// MPI node ordering: the assignment of MPI ranks to cluster end-ports.
//
// The paper's central practical lever: with D-Mod-K routing, the *topology*
// order (rank == host linear index) makes every unidirectional CPS
// congestion-free, while random order costs ~40% of bandwidth and an
// adversarial order up to 92.9% (§I, §II).
//
// An ordering may cover only a subset of the hosts (a partial job): ranks
// 0..P-1 map to P distinct hosts of an N-host fabric.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cps/stage.hpp"
#include "topology/fabric.hpp"

namespace ftcf::order {

class NodeOrdering {
 public:
  /// rank r -> hosts[r]. Host indices must be distinct.
  explicit NodeOrdering(std::vector<std::uint64_t> rank_to_host,
                        std::uint64_t num_fabric_hosts);

  [[nodiscard]] std::uint64_t num_ranks() const noexcept {
    return rank_to_host_.size();
  }
  [[nodiscard]] std::uint64_t num_fabric_hosts() const noexcept {
    return num_fabric_hosts_;
  }
  [[nodiscard]] std::uint64_t host_of(std::uint64_t rank) const;
  [[nodiscard]] std::optional<std::uint64_t> rank_of(std::uint64_t host) const;
  [[nodiscard]] std::span<const std::uint64_t> hosts() const noexcept {
    return rank_to_host_;
  }

  // --- factories -----------------------------------------------------------

  /// Topology-aware order over the whole fabric: rank == host index.
  /// This is the paper's "MPI-node-order matching the routing".
  static NodeOrdering topology(const topo::Fabric& fabric);

  /// Uniformly random order over the whole fabric (the §II baseline).
  static NodeOrdering random(const topo::Fabric& fabric, std::uint64_t seed);

  /// Partial job over the given hosts, ranked in ascending host order
  /// ("compact" ranking).
  static NodeOrdering compact_subset(std::vector<std::uint64_t> hosts,
                                     std::uint64_t num_fabric_hosts);

  /// Partial job over the given hosts in random rank order.
  static NodeOrdering random_subset(std::vector<std::uint64_t> hosts,
                                    std::uint64_t num_fabric_hosts,
                                    std::uint64_t seed);

  /// §V sub-allocations: the hosts whose linear index is congruent to one of
  /// `residues` modulo  C = N / prod(w_i)  (the number of distinct
  /// sub-allocations), ranked compactly. A single residue class provably
  /// shifts congestion-free; unions are evaluated by the Table 3 bench.
  static NodeOrdering residue_allocation(const topo::Fabric& fabric,
                                         std::span<const std::uint32_t> residues);

  /// §II adversarial order: under D-Mod-K, the successor (rank+1) of every
  /// host in a leaf lives behind the *same* up-going port of that leaf, so a
  /// Ring/Shift(1) stage oversubscribes one link per leaf by up to K.
  /// Requires an RLFT (leaf up-port count == hosts per leaf).
  static NodeOrdering adversarial_ring(const topo::Fabric& fabric);

  /// Leaves permuted randomly, hosts within each leaf kept in order — what a
  /// batch scheduler does when it grants whole switches in arrival order.
  /// Preserves intra-leaf locality but not the inter-leaf arithmetic D-Mod-K
  /// wants.
  static NodeOrdering leaf_random(const topo::Fabric& fabric,
                                  std::uint64_t seed);

  /// Round-robin across leaves: rank r sits on leaf (r mod L), slot (r / L).
  /// A plausible "spread the job out" placement that maximally breaks the
  /// shift arithmetic.
  static NodeOrdering leaf_interleaved(const topo::Fabric& fabric);

  // --- application ---------------------------------------------------------

  /// Map a CPS stage over ranks to (src-host, dst-host) pairs. Ranks beyond
  /// num_ranks() are rejected.
  [[nodiscard]] std::vector<cps::Pair> map_stage(const cps::Stage& stage) const;

 private:
  std::vector<std::uint64_t> rank_to_host_;
  std::vector<std::uint64_t> host_to_rank_;  ///< npos when not participating
  std::uint64_t num_fabric_hosts_;

  static constexpr std::uint64_t kNoRank = static_cast<std::uint64_t>(-1);
};

/// Number of distinct §V sub-allocations of a fabric: N / prod(w_i).
[[nodiscard]] std::uint64_t num_sub_allocations(const topo::Fabric& fabric);

}  // namespace ftcf::order
