#include "ordering/ordering.hpp"

#include <algorithm>
#include <numeric>

#include "util/expects.hpp"
#include "util/rng.hpp"

namespace ftcf::order {

using util::expects;

NodeOrdering::NodeOrdering(std::vector<std::uint64_t> rank_to_host,
                           std::uint64_t num_fabric_hosts)
    : rank_to_host_(std::move(rank_to_host)),
      num_fabric_hosts_(num_fabric_hosts) {
  expects(!rank_to_host_.empty(), "ordering must place at least one rank");
  host_to_rank_.assign(num_fabric_hosts_, kNoRank);
  for (std::uint64_t r = 0; r < rank_to_host_.size(); ++r) {
    const std::uint64_t host = rank_to_host_[r];
    expects(host < num_fabric_hosts_, "ordering places rank on unknown host");
    expects(host_to_rank_[host] == kNoRank,
            "ordering places two ranks on one host");
    host_to_rank_[host] = r;
  }
}

std::uint64_t NodeOrdering::host_of(std::uint64_t rank) const {
  expects(rank < rank_to_host_.size(), "rank out of range");
  return rank_to_host_[rank];
}

std::optional<std::uint64_t> NodeOrdering::rank_of(std::uint64_t host) const {
  expects(host < num_fabric_hosts_, "host out of range");
  const std::uint64_t r = host_to_rank_[host];
  if (r == kNoRank) return std::nullopt;
  return r;
}

NodeOrdering NodeOrdering::topology(const topo::Fabric& fabric) {
  std::vector<std::uint64_t> hosts(fabric.num_hosts());
  std::iota(hosts.begin(), hosts.end(), std::uint64_t{0});
  return NodeOrdering(std::move(hosts), fabric.num_hosts());
}

NodeOrdering NodeOrdering::random(const topo::Fabric& fabric,
                                  std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> hosts(fabric.num_hosts());
  std::iota(hosts.begin(), hosts.end(), std::uint64_t{0});
  util::shuffle(hosts, rng);
  return NodeOrdering(std::move(hosts), fabric.num_hosts());
}

NodeOrdering NodeOrdering::compact_subset(std::vector<std::uint64_t> hosts,
                                          std::uint64_t num_fabric_hosts) {
  std::sort(hosts.begin(), hosts.end());
  return NodeOrdering(std::move(hosts), num_fabric_hosts);
}

NodeOrdering NodeOrdering::random_subset(std::vector<std::uint64_t> hosts,
                                         std::uint64_t num_fabric_hosts,
                                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  util::shuffle(hosts, rng);
  return NodeOrdering(std::move(hosts), num_fabric_hosts);
}

std::uint64_t num_sub_allocations(const topo::Fabric& fabric) {
  const topo::PgftSpec& spec = fabric.spec();
  const std::uint64_t columns = spec.w_prefix_product(spec.height());
  expects(columns > 0 && fabric.num_hosts() % columns == 0,
          "sub-allocation stride must divide the host count");
  return fabric.num_hosts() / columns;
}

NodeOrdering NodeOrdering::residue_allocation(
    const topo::Fabric& fabric, std::span<const std::uint32_t> residues) {
  const std::uint64_t stride = num_sub_allocations(fabric);
  std::vector<std::uint64_t> hosts;
  for (std::uint64_t j = 0; j < fabric.num_hosts(); ++j) {
    const auto residue = static_cast<std::uint32_t>(j % stride);
    if (std::find(residues.begin(), residues.end(), residue) != residues.end())
      hosts.push_back(j);
  }
  expects(!hosts.empty(), "residue allocation selected no hosts");
  return NodeOrdering(std::move(hosts), fabric.num_hosts());
}

NodeOrdering NodeOrdering::adversarial_ring(const topo::Fabric& fabric) {
  const topo::PgftSpec& spec = fabric.spec();
  const std::uint64_t n = fabric.num_hosts();
  const std::uint32_t per_leaf = spec.m(1);              // hosts per leaf
  const std::uint32_t up_ports = spec.up_ports_at_level(1);
  expects(spec.height() >= 2, "adversarial order needs at least 2 levels");
  expects(per_leaf == up_ports,
          "adversarial construction assumes an RLFT (m1 == w2*p2)");
  const std::uint64_t leaves = n / per_leaf;
  expects(leaves % up_ports == 0,
          "leaf count must be a multiple of the leaf up-port count");
  const std::uint64_t groups = leaves / up_ports;  // leaves sharing a residue

  // successor(l, t): host (l*K + t) is succeeded by the residue-c host of
  // leaf (t*groups + l/K), c = l mod K. Under D-Mod-K the leaf-level up-port
  // for destination j is j mod K, so every successor of leaf l's hosts sits
  // behind up-port c of leaf l: a Ring stage loads that one link K times.
  std::vector<std::uint64_t> successor(n);
  for (std::uint64_t leaf = 0; leaf < leaves; ++leaf) {
    const std::uint64_t c = leaf % up_ports;
    for (std::uint64_t t = 0; t < per_leaf; ++t) {
      const std::uint64_t target_leaf = t * groups + leaf / up_ports;
      successor[leaf * per_leaf + t] = target_leaf * per_leaf + c;
    }
  }

  // The successor map is a permutation but not necessarily one cycle; chain
  // its cycles into a single rank order. Only the splice points (one per
  // cycle) deviate from the adversarial pattern.
  std::vector<std::uint64_t> rank_to_host;
  rank_to_host.reserve(n);
  std::vector<bool> visited(n, false);
  for (std::uint64_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    std::uint64_t at = start;
    while (!visited[at]) {
      visited[at] = true;
      rank_to_host.push_back(at);
      at = successor[at];
    }
  }
  return NodeOrdering(std::move(rank_to_host), n);
}

NodeOrdering NodeOrdering::leaf_random(const topo::Fabric& fabric,
                                       std::uint64_t seed) {
  const std::uint32_t per_leaf = fabric.spec().m(1);
  const std::uint64_t leaves = fabric.num_hosts() / per_leaf;
  util::Xoshiro256 rng(seed);
  const auto leaf_order = util::random_permutation(leaves, rng);

  std::vector<std::uint64_t> hosts;
  hosts.reserve(fabric.num_hosts());
  for (const std::size_t leaf : leaf_order)
    for (std::uint32_t t = 0; t < per_leaf; ++t)
      hosts.push_back(static_cast<std::uint64_t>(leaf) * per_leaf + t);
  return NodeOrdering(std::move(hosts), fabric.num_hosts());
}

NodeOrdering NodeOrdering::leaf_interleaved(const topo::Fabric& fabric) {
  const std::uint32_t per_leaf = fabric.spec().m(1);
  const std::uint64_t leaves = fabric.num_hosts() / per_leaf;
  std::vector<std::uint64_t> hosts;
  hosts.reserve(fabric.num_hosts());
  for (std::uint32_t t = 0; t < per_leaf; ++t)
    for (std::uint64_t leaf = 0; leaf < leaves; ++leaf)
      hosts.push_back(leaf * per_leaf + t);
  return NodeOrdering(std::move(hosts), fabric.num_hosts());
}

std::vector<cps::Pair> NodeOrdering::map_stage(const cps::Stage& stage) const {
  std::vector<cps::Pair> mapped;
  mapped.reserve(stage.pairs.size());
  for (const cps::Pair& pr : stage.pairs) {
    mapped.push_back(cps::Pair{host_of(pr.src), host_of(pr.dst)});
  }
  return mapped;
}

}  // namespace ftcf::order
