#include "topology/presets.hpp"

#include "util/error.hpp"
#include "util/expects.hpp"

namespace ftcf::topo {

PgftSpec fig4a_xgft16() { return PgftSpec::xgft({4, 4}, {1, 4}); }

PgftSpec fig4b_pgft16() { return PgftSpec({4, 4}, {1, 2}, {1, 2}); }

PgftSpec rlft2_full(std::uint32_t arity) {
  return PgftSpec({arity, 2 * arity}, {1, arity}, {1, 1});
}

PgftSpec rlft2_leaves(std::uint32_t arity, std::uint32_t leaves) {
  util::expects(leaves >= 1 && leaves <= 2 * arity,
                "2-level RLFT supports at most 2K leaf switches");
  // Pick the largest parallel-port count p2 dividing K with leaves*p2 <= 2K,
  // so the spine layer uses as few, as-fully-connected switches as possible.
  std::uint32_t p2 = 1;
  for (std::uint32_t p = 1; p <= arity; ++p) {
    if (arity % p == 0 && leaves * p <= 2 * arity) p2 = p;
  }
  return PgftSpec({arity, leaves}, {1, arity / p2}, {1, p2});
}

PgftSpec rlft3_full(std::uint32_t arity) {
  return PgftSpec({arity, arity, 2 * arity}, {1, arity, arity}, {1, 1, 1});
}

PgftSpec rlft3_top(std::uint32_t arity, std::uint32_t top) {
  util::expects(top >= 1 && top <= 2 * arity,
                "3-level RLFT supports at most 2K top columns");
  return PgftSpec({arity, arity, top}, {1, arity, arity}, {1, 1, 1});
}

PgftSpec paper_cluster(std::uint64_t nodes) {
  switch (nodes) {
    case 16: return fig4b_pgft16();
    case 128: return rlft2_full(8);
    case 324: return PgftSpec({18, 18}, {1, 9}, {1, 2});
    case 648: return rlft2_full(18);
    case 1728: return rlft3_top(12, 12);
    case 1944: return rlft3_top(18, 6);
    case 11664: return rlft3_full(18);
    default:
      throw util::SpecError("no paper preset for " + std::to_string(nodes) +
                            " nodes (have 16/128/324/648/1728/1944/11664)");
  }
}

std::vector<Preset> all_presets() {
  return {
      {"fig4a-xgft16", "Fig. 4(a): 16-node XGFT, half-used spines",
       fig4a_xgft16()},
      {"fig4b-pgft16", "Fig. 4(b): 16-node PGFT, 2 parallel ports",
       fig4b_pgft16()},
      {"rlft2-128", "2-level K=8 full (paper size 128)", paper_cluster(128)},
      {"rlft2-324", "2-level K=18, 18 leaves, dual-port spines (paper 324)",
       paper_cluster(324)},
      {"rlft2-648", "2-level K=18 full (648-port director)",
       paper_cluster(648)},
      {"rlft3-1728", "3-level K=12, 12 top columns (paper size 1728)",
       paper_cluster(1728)},
      {"rlft3-1944", "3-level K=18, 6 top columns (paper size 1944)",
       paper_cluster(1944)},
      {"rlft3-11664", "maximal 3-level 36-port RLFT (paper §V example)",
       paper_cluster(11664)},
  };
}

}  // namespace ftcf::topo
