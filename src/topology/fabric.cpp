#include "topology/fabric.hpp"

#include <sstream>

#include "obs/profile.hpp"
#include "util/expects.hpp"

namespace ftcf::topo {

using util::ensures;
using util::expects;

Fabric::Fabric(PgftSpec spec) : spec_(std::move(spec)) { build(); }

void Fabric::build() {
  FTCF_PROF_SCOPE("fabric_build");
  const std::uint32_t h = spec_.height();
  num_hosts_ = spec_.num_hosts();

  // --- create nodes level by level (hosts first), assigning digit vectors ---
  level_first_node_.resize(h + 1);
  std::uint64_t total_nodes = 0;
  for (std::uint32_t l = 0; l <= h; ++l) total_nodes += spec_.nodes_at_level(l);
  nodes_.reserve(total_nodes);

  std::uint64_t total_ports = 0;
  for (std::uint32_t l = 0; l <= h; ++l) {
    level_first_node_[l] = static_cast<NodeId>(nodes_.size());
    const std::uint64_t count = spec_.nodes_at_level(l);
    const std::uint32_t down =
        l == 0 ? 0u : spec_.down_ports_at_level(l);
    const std::uint32_t up = spec_.up_ports_at_level(l);
    // Digit radices for a level-l node: positions 1..l are w-range,
    // positions l+1..h are m-range. Position 1 is least significant.
    std::vector<std::uint32_t> radix(h);
    for (std::uint32_t pos = 1; pos <= h; ++pos)
      radix[pos - 1] = pos <= l ? spec_.w(pos) : spec_.m(pos);

    for (std::uint64_t ord = 0; ord < count; ++ord) {
      Node n;
      n.kind = l == 0 ? NodeKind::kHost : NodeKind::kSwitch;
      n.level = l;
      n.ordinal = static_cast<std::uint32_t>(ord);
      n.digits.resize(h);
      std::uint64_t rest = ord;
      for (std::uint32_t pos = 1; pos <= h; ++pos) {
        n.digits[pos - 1] = static_cast<std::uint32_t>(rest % radix[pos - 1]);
        rest /= radix[pos - 1];
      }
      ensures(rest == 0, "node ordinal decomposed cleanly");
      n.num_down_ports = down;
      n.num_up_ports = up;
      n.first_port = static_cast<PortId>(total_ports);
      total_ports += down + up;
      if (l >= 1) switch_ids_.push_back(static_cast<NodeId>(nodes_.size()));
      nodes_.push_back(std::move(n));
    }
  }

  ports_.resize(total_ports);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    for (std::uint32_t i = 0; i < n.num_down_ports + n.num_up_ports; ++i) {
      Port& pt = ports_[n.first_port + i];
      pt.node = id;
      pt.index = i;
    }
  }

  // --- wire levels l <-> l+1 following the PGFT connection rule ---
  for (std::uint32_t l = 0; l < h; ++l) {
    const std::uint32_t wl1 = spec_.w(l + 1);
    const std::uint32_t ml1 = spec_.m(l + 1);
    const std::uint32_t pl1 = spec_.p(l + 1);
    const std::uint64_t low_count = spec_.nodes_at_level(l);

    // Mixed-radix strides for computing the upper node's ordinal from its
    // digits (positions 1..l+1 are w-range for it, l+2..h m-range).
    std::vector<std::uint64_t> up_stride(h);
    {
      std::uint64_t s = 1;
      for (std::uint32_t pos = 1; pos <= h; ++pos) {
        up_stride[pos - 1] = s;
        s *= pos <= l + 1 ? spec_.w(pos) : spec_.m(pos);
      }
    }

    for (std::uint64_t low_ord = 0; low_ord < low_count; ++low_ord) {
      const NodeId low_id = level_first_node_[l] + static_cast<NodeId>(low_ord);
      const Node& low = nodes_[low_id];
      const std::uint32_t a = low.digits[l];  // position l+1 digit (m-range)

      // Upper ordinal with position-(l+1) digit zeroed; add b * stride later.
      std::uint64_t base_ord = 0;
      for (std::uint32_t pos = 1; pos <= h; ++pos) {
        if (pos == l + 1) continue;
        base_ord += static_cast<std::uint64_t>(low.digits[pos - 1]) *
                    up_stride[pos - 1];
      }

      for (std::uint32_t b = 0; b < wl1; ++b) {
        const std::uint64_t up_ord = base_ord + b * up_stride[l];
        const NodeId up_id =
            level_first_node_[l + 1] + static_cast<NodeId>(up_ord);
        const Node& up = nodes_[up_id];
        ensures(up.digits[l] == b, "upper node digit matches parent index");

        for (std::uint32_t k = 0; k < pl1; ++k) {
          const std::uint32_t up_port_idx =
              low.num_down_ports + b + k * wl1;        // up-going on lower
          const std::uint32_t down_port_idx = a + k * ml1;  // down on upper
          const PortId lo_pt = low.first_port + up_port_idx;
          const PortId hi_pt = up.first_port + down_port_idx;
          ensures(ports_[lo_pt].peer == kInvalidPort &&
                      ports_[hi_pt].peer == kInvalidPort,
                  "each port wired exactly once");
          ports_[lo_pt].peer = hi_pt;
          ports_[hi_pt].peer = lo_pt;
        }
      }
    }
  }

  for (const Port& pt : ports_)
    ensures(pt.peer != kInvalidPort, "all ports wired");
}

NodeId Fabric::host_node(std::uint64_t j) const {
  expects(j < num_hosts_, "host index out of range");
  return level_first_node_[0] + static_cast<NodeId>(j);
}

std::uint64_t Fabric::host_index(NodeId id) const {
  const Node& n = node(id);
  expects(n.kind == NodeKind::kHost, "host_index of a non-host node");
  return n.ordinal;
}

NodeId Fabric::switch_node(std::uint32_t level, std::uint64_t ordinal) const {
  expects(level >= 1 && level <= height(), "switch level out of range");
  expects(ordinal < spec_.nodes_at_level(level), "switch ordinal out of range");
  return level_first_node_[level] + static_cast<NodeId>(ordinal);
}

PortId Fabric::port_id(NodeId id, std::uint32_t index) const {
  const Node& n = node(id);
  expects(index < n.num_down_ports + n.num_up_ports, "port index out of range");
  return n.first_port + index;
}

bool Fabric::is_up_port(NodeId id, std::uint32_t index) const {
  const Node& n = node(id);
  expects(index < n.num_down_ports + n.num_up_ports, "port index out of range");
  return index >= n.num_down_ports;
}

NodeId Fabric::neighbor(NodeId id, std::uint32_t index) const {
  return ports_[ports_[port_id(id, index)].peer].node;
}

NodeId Fabric::leaf_switch_of_host(std::uint64_t j) const {
  const NodeId host = host_node(j);
  // Hosts have exactly w_1*p_1 up ports; the leaf is the peer of port 0.
  return neighbor(host, node(host).num_down_ports);
}

bool Fabric::is_ancestor_of_host(NodeId sw, std::uint64_t j) const {
  const Node& n = node(sw);
  expects(n.kind == NodeKind::kSwitch, "ancestor test requires a switch");
  for (std::uint32_t pos = n.level + 1; pos <= height(); ++pos) {
    if (n.digits[pos - 1] != host_digit(j, pos)) return false;
  }
  return true;
}

std::uint32_t Fabric::host_digit(std::uint64_t j, std::uint32_t pos) const {
  expects(pos >= 1 && pos <= height(), "host digit position out of range");
  return static_cast<std::uint32_t>(
      (j / spec_.m_prefix_product(pos - 1)) % spec_.m(pos));
}

std::string Fabric::node_name(NodeId id) const {
  const Node& n = node(id);
  std::ostringstream oss;
  if (n.kind == NodeKind::kHost) {
    oss << 'H' << n.ordinal;
  } else {
    oss << 'S' << n.level << '_' << n.ordinal;
  }
  return oss.str();
}

}  // namespace ftcf::topo
