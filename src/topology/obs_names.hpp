// Build obs::TraceNaming (human-readable trace track names) from a Fabric.
//
// Lives in topology rather than obs so the obs module stays free of a
// topology dependency (topology itself carries profiling scopes from obs).
#pragma once

#include "obs/trace.hpp"
#include "topology/fabric.hpp"

namespace ftcf::topo {

/// Port p is named "<owner>:<index> -> <peer>" (a directed link is identified
/// with its source port); hosts get their fabric node names ("H0013").
[[nodiscard]] obs::TraceNaming trace_naming(const Fabric& fabric);

}  // namespace ftcf::topo
