#include "topology/validate.hpp"

#include <sstream>

namespace ftcf::topo {

namespace {

void check_levels(const Fabric& fabric, ValidationReport& report) {
  const PgftSpec& spec = fabric.spec();
  for (std::uint32_t l = 0; l <= spec.height(); ++l) {
    const std::uint64_t expected = spec.nodes_at_level(l);
    std::uint64_t got = 0;
    for (NodeId id = 0; id < fabric.num_nodes(); ++id)
      if (fabric.node(id).level == l) ++got;
    if (got != expected) {
      std::ostringstream oss;
      oss << "level " << l << " has " << got << " nodes, expected "
          << expected;
      report.fail(oss.str());
    }
  }
}

void check_ports(const Fabric& fabric, ValidationReport& report) {
  for (PortId pid = 0; pid < fabric.num_ports(); ++pid) {
    const Port& pt = fabric.port(pid);
    if (pt.peer == kInvalidPort) {
      report.fail("port " + std::to_string(pid) + " is unwired");
      continue;
    }
    const Port& peer = fabric.port(pt.peer);
    if (peer.peer != pid)
      report.fail("port " + std::to_string(pid) + " peer link not mutual");
    const Node& a = fabric.node(pt.node);
    const Node& b = fabric.node(peer.node);
    const bool a_up = pt.index >= a.num_down_ports;
    const bool b_up = peer.index >= b.num_down_ports;
    if (a_up == b_up)
      report.fail("link joins two " + std::string(a_up ? "up" : "down") +
                  "-going ports (ports " + std::to_string(pid) + ", " +
                  std::to_string(pt.peer) + ")");
    const std::uint32_t lo = a_up ? a.level : b.level;
    const std::uint32_t hi = a_up ? b.level : a.level;
    if (hi != lo + 1)
      report.fail("link spans non-adjacent levels " + std::to_string(lo) +
                  " and " + std::to_string(hi));
  }
}

void check_parallel_links(const Fabric& fabric, ValidationReport& report) {
  const PgftSpec& spec = fabric.spec();
  // For every lower node, count links per distinct upper neighbor.
  for (NodeId id = 0; id < fabric.num_nodes(); ++id) {
    const Node& n = fabric.node(id);
    if (n.level == spec.height()) continue;
    const std::uint32_t p = spec.p(n.level + 1);
    const std::uint32_t w = spec.w(n.level + 1);
    std::vector<std::uint32_t> per_parent;  // keyed by parent digit b
    per_parent.assign(w, 0);
    for (std::uint32_t i = 0; i < n.num_up_ports; ++i) {
      const NodeId nb = fabric.neighbor(id, n.num_down_ports + i);
      const std::uint32_t b = fabric.node(nb).digits[n.level];
      if (b >= w) {
        report.fail("parent digit out of range at node " +
                    fabric.node_name(id));
        continue;
      }
      ++per_parent[b];
      // Wiring rule: up-port index i == b + k*w for some k < p.
      if (i % w != b)
        report.fail("up-port " + std::to_string(i) + " of " +
                    fabric.node_name(id) + " wired to wrong parent column");
    }
    for (std::uint32_t b = 0; b < w; ++b) {
      if (per_parent[b] != p) {
        std::ostringstream oss;
        oss << fabric.node_name(id) << " has " << per_parent[b]
            << " links to parent column " << b << ", expected " << p;
        report.fail(oss.str());
      }
    }
  }
}

void check_reachability(const Fabric& fabric, ValidationReport& report) {
  // Tree property: two hosts' lowest common ancestor level is the first digit
  // position (from the top) where they differ; both must reach a common
  // switch at that level. Verified via digits, sampled to stay O(N).
  const std::uint64_t n = fabric.num_hosts();
  const std::uint64_t stride = n > 256 ? n / 128 : 1;
  for (std::uint64_t a = 0; a < n; a += stride) {
    for (std::uint64_t b = a + 1; b < n; b += stride) {
      std::uint32_t lca = 0;
      for (std::uint32_t pos = fabric.height(); pos >= 1; --pos) {
        if (fabric.host_digit(a, pos) != fabric.host_digit(b, pos)) {
          lca = pos;
          break;
        }
      }
      if (lca == 0 && a != b) continue;  // same host digits: impossible
      // A switch at level `lca` ancestral to both exists iff their digits
      // above `lca` agree, which is how lca was chosen. Nothing else to do;
      // kept as an explicit loop so a wiring regression surfaces here.
      if (lca > fabric.height())
        report.fail("LCA level exceeded tree height (corrupt digits)");
    }
  }
}

}  // namespace

ValidationReport validate_fabric(const Fabric& fabric) {
  ValidationReport report;
  check_levels(fabric, report);
  check_ports(fabric, report);
  check_parallel_links(fabric, report);
  check_reachability(fabric, report);
  return report;
}

ValidationReport validate_constant_cbb(const Fabric& fabric) {
  ValidationReport report;
  const PgftSpec& spec = fabric.spec();
  const std::uint64_t hosts = fabric.num_hosts();
  for (std::uint32_t l = 0; l < spec.height(); ++l) {
    const std::uint64_t up_cables =
        spec.nodes_at_level(l) * spec.up_ports_at_level(l);
    if (up_cables != hosts) {
      std::ostringstream oss;
      oss << "boundary " << l << "->" << l + 1 << " has " << up_cables
          << " up cables for " << hosts << " hosts (CBB not constant)";
      report.fail(oss.str());
    }
  }
  return report;
}

}  // namespace ftcf::topo
