// Structural validation of an instantiated Fabric against its spec —
// the executable form of the PGFT definition (paper §IV.B) and the RLFT
// restrictions (§IV.C). Used by tests and by topo-file import.
#pragma once

#include <string>
#include <vector>

#include "topology/fabric.hpp"

namespace ftcf::topo {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> problems;

  void fail(std::string problem) {
    ok = false;
    problems.push_back(std::move(problem));
  }
};

/// Full structural audit:
///  * level populations match  prod_{i<=l} w_i * prod_{i>l} m_i
///  * every port is wired, peers are mutual, up-ports meet down-ports
///  * each (child, parent) pair with matching digits has exactly p parallel
///    links at the indices required by the wiring rule
///  * every host reaches every other host going up then down (tree property)
ValidationReport validate_fabric(const Fabric& fabric);

/// Cross-bisectional-bandwidth audit: at each level boundary the number of
/// up-going cables equals the number of host cables (constant-CBB RLFTs).
ValidationReport validate_constant_cbb(const Fabric& fabric);

}  // namespace ftcf::topo
