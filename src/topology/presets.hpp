// Named topology presets used by the paper's evaluation (§II, §VII) plus the
// worked examples of §IV. Where the paper names only a node count, the exact
// PGFT tuple is chosen to be the natural RLFT of that size built from
// same-radix switches; each preset documents that choice.
#pragma once

#include <string>
#include <vector>

#include "topology/spec.hpp"

namespace ftcf::topo {

struct Preset {
  std::string name;
  std::string note;
  PgftSpec spec;
};

/// Fig. 4(a): 16 nodes from 8-port switches as an XGFT — 4 spines, each with
/// only 4 of 8 ports used (the motivating inefficiency).
PgftSpec fig4a_xgft16();

/// Fig. 4(b): the same 16 nodes as a PGFT with 2 parallel ports — 2 spines,
/// fully used. PGFT(2; 4,4; 1,2; 1,2).
PgftSpec fig4b_pgft16();

/// Two-level RLFT of arity K fully populated: PGFT(2; K,2K; 1,K; 1,1),
/// N = 2K^2 (e.g. K=18 -> the classic 648-port InfiniBand director).
PgftSpec rlft2_full(std::uint32_t arity);

/// Two-level RLFT with S <= 2K leaf switches, spine count minimised with
/// parallel ports where S divides K evenly: PGFT(2; K,S; 1,K/g... ) — we use
/// PGFT(2; K, S; 1, w2; 1, p2) with w2*p2 = K and p2 = K / gcd-free choice.
/// For simplicity: p2 = max p such that p divides K and S*p <= 2K; w2 = K/p2.
PgftSpec rlft2_leaves(std::uint32_t arity, std::uint32_t leaves);

/// Three-level RLFT fully populated: PGFT(3; K,K,2K; 1,K,K; 1,1,1), N = 2K^3.
PgftSpec rlft3_full(std::uint32_t arity);

/// Three-level RLFT with reduced top: PGFT(3; K,K,T; 1,K,K; 1,1,1), N = K^2*T.
/// T <= 2K is the number of level-3 subtree columns ("m_3").
PgftSpec rlft3_top(std::uint32_t arity, std::uint32_t top);

/// The paper's cluster sizes:
///   128  -> 2-level K=8  (PGFT(2; 8,16; 1,8; 1,1))
///   324  -> 2-level K=18, 18 leaves, 9 dual-ported spines
///            (PGFT(2; 18,18; 1,9; 1,2))
///   1728 -> 3-level K=12, 12 top columns (PGFT(3; 12,12,12; 1,12,12; 1,1,1))
///   1944 -> 3-level K=18, 6 top columns (PGFT(3; 18,18,6; 1,18,18; 1,1,1))
///   11664-> maximal 3-level 36-port RLFT(3; 18,18,36; 1,18,18; 1,1,1)
PgftSpec paper_cluster(std::uint64_t nodes);

/// All presets for table-driven tests/benches.
std::vector<Preset> all_presets();

}  // namespace ftcf::topo
