// Topology file I/O, modelled on the ibdm/ibutils topo-file workflow the
// paper's §VII tooling builds on: a text file listing every node and cable.
//
// Format (line-oriented, '#' comments):
//
//   pgft PGFT(2; 4,4; 1,2; 1,2)
//   node S1_0 kind=switch level=1 ports=8
//   node H0   kind=host   level=0 ports=1
//   link S1_0:4 S2_0:0
//
// The `pgft` header makes round-tripping trivial; the explicit node/link
// lines exist so externally-produced files can be cross-checked against the
// generated fabric (import verifies the cable list matches the wiring rule).
#pragma once

#include <iosfwd>
#include <string>

#include "topology/fabric.hpp"

namespace ftcf::topo {

/// Write the fabric in the text format above.
void write_topo(const Fabric& fabric, std::ostream& os);

/// Convenience: render to a string.
std::string to_topo_string(const Fabric& fabric);

/// Parse a topo file. The `pgft` header is used to rebuild the fabric; the
/// node and link lines (when present) are verified against it. Throws
/// util::ParseError on malformed input or util::SpecError on mismatches.
Fabric read_topo(std::istream& is);

/// Convenience: parse from a string.
Fabric from_topo_string(const std::string& text);

}  // namespace ftcf::topo
