// The instantiated fabric graph of a PGFT: hosts, switches, ports and links.
//
// Node addressing follows the paper's tuple scheme: a node at level l carries
// h digits; digit positions 1..l range over w_i (the node's "column" within
// its subtree) and positions l+1..h range over m_i (which subtree it is in).
// Hosts are level 0 (all digits m-range); their mixed-radix value
//     j = sum_i a_i * prod_{k<i} m_k
// is the host's linear index and *is* the paper's topology-aware MPI node
// order.
//
// Port layout per node: a level-l switch has its m_l*p_l down-going ports
// first (indices [0, m_l*p_l)), then its w_{l+1}*p_{l+1} up-going ports.
// Hosts have only up-going ports (one for RLFTs).
//
// The wiring rule (paper Fig. 5): nodes at levels l and l+1 whose digit
// vectors agree everywhere except position l+1 are joined by p_{l+1} parallel
// links; the k-th link uses up-port  b_{l+1} + k*w_{l+1}  on the lower node
// and down-port  a_{l+1} + k*m_{l+1}  on the upper node, where a/b are the
// position-(l+1) digits of the lower/upper node.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "topology/spec.hpp"

namespace ftcf::topo {

using NodeId = std::uint32_t;
using PortId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr PortId kInvalidPort = static_cast<PortId>(-1);

enum class NodeKind : std::uint8_t { kHost, kSwitch };

/// One endpoint of a cable. A directed link is identified with its source
/// port: traffic "through port P" means traffic leaving P towards its peer.
struct Port {
  NodeId node = kInvalidNode;   ///< owning node
  std::uint32_t index = 0;      ///< port index within the owning node
  PortId peer = kInvalidPort;   ///< the port at the other end of the cable
};

struct Node {
  NodeKind kind = NodeKind::kSwitch;
  std::uint32_t level = 0;             ///< 0 for hosts, 1..h for switches
  std::uint32_t ordinal = 0;           ///< index within its level
  std::vector<std::uint32_t> digits;   ///< h digits, position i at digits[i-1]
  PortId first_port = kInvalidPort;    ///< ports are contiguous per node
  std::uint32_t num_down_ports = 0;
  std::uint32_t num_up_ports = 0;
};

/// Immutable instantiated PGFT.
class Fabric {
 public:
  /// Build the full fabric for a spec (wiring rule above).
  explicit Fabric(PgftSpec spec);

  [[nodiscard]] const PgftSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint32_t height() const noexcept { return spec_.height(); }

  // --- nodes ---
  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] std::uint64_t num_hosts() const noexcept { return num_hosts_; }
  [[nodiscard]] std::uint64_t num_switches() const noexcept {
    return nodes_.size() - num_hosts_;
  }

  /// NodeId of host with linear index j (also its MPI topology order).
  [[nodiscard]] NodeId host_node(std::uint64_t j) const;
  /// Linear index of a host node.
  [[nodiscard]] std::uint64_t host_index(NodeId id) const;
  /// NodeId of the switch with a given level (1..h) and within-level ordinal.
  [[nodiscard]] NodeId switch_node(std::uint32_t level,
                                   std::uint64_t ordinal) const;
  [[nodiscard]] std::uint64_t switches_at_level(std::uint32_t level) const {
    return spec_.nodes_at_level(level);
  }
  /// All switch NodeIds, ascending by (level, ordinal).
  [[nodiscard]] std::span<const NodeId> switch_ids() const noexcept {
    return switch_ids_;
  }

  // --- ports ---
  [[nodiscard]] std::uint32_t num_ports() const noexcept {
    return static_cast<std::uint32_t>(ports_.size());
  }
  [[nodiscard]] const Port& port(PortId id) const { return ports_.at(id); }
  /// PortId of port `index` on node `id`.
  [[nodiscard]] PortId port_id(NodeId id, std::uint32_t index) const;
  /// True when `index` addresses an up-going port of its node.
  [[nodiscard]] bool is_up_port(NodeId id, std::uint32_t index) const;
  /// The node on the other end of port `index` of node `id`.
  [[nodiscard]] NodeId neighbor(NodeId id, std::uint32_t index) const;

  // --- tree relations ---
  /// The level-1 switch a host hangs off.
  [[nodiscard]] NodeId leaf_switch_of_host(std::uint64_t j) const;
  /// True when `sw` (a switch) is an ancestor of host j, i.e. j lives in
  /// the subtree rooted at `sw`.
  [[nodiscard]] bool is_ancestor_of_host(NodeId sw, std::uint64_t j) const;
  /// Digit of host j at position `pos` in [1, h]: (j / M_{pos-1}) mod m_pos.
  [[nodiscard]] std::uint32_t host_digit(std::uint64_t j,
                                         std::uint32_t pos) const;

  /// Human-readable node name, e.g. "H0013" or "S2_005".
  [[nodiscard]] std::string node_name(NodeId id) const;

  /// Total directed links (== num_ports(); each port sources one).
  [[nodiscard]] std::uint32_t num_directed_links() const noexcept {
    return num_ports();
  }

 private:
  void build();

  PgftSpec spec_;
  std::uint64_t num_hosts_ = 0;
  std::vector<Node> nodes_;
  std::vector<Port> ports_;
  std::vector<NodeId> switch_ids_;
  /// first NodeId of each level (levels 0..h), for switch_node lookup
  std::vector<NodeId> level_first_node_;
};

}  // namespace ftcf::topo
