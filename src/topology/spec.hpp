// Fat-tree topology specifications: XGFT -> PGFT -> RLFT (paper §IV).
//
// A Parallel-Ports Generalized Fat-Tree is canonically defined by the tuple
//
//     PGFT(h; m_1..m_h; w_1..w_h; p_1..p_h)
//
// where h is the number of switch levels, m_l the number of distinct
// lower-level nodes attached to a level-l node, w_l the number of distinct
// level-l nodes attached to a level-(l-1) node, and p_l the number of
// parallel links on each such attachment. Level 0 holds the end-ports
// (hosts); levels 1..h hold switches.
//
// Real-Life Fat-Trees (RLFT) are the PGFT subclass the paper studies:
//   1. constant cross-bisectional bandwidth:  m_l * p_l == w_{l+1} * p_{l+1}
//   2. single-cable hosts:                    w_1 == p_1 == 1
//   3. same-radix switches of arity K:        m_l*p_l == K for l = 1..h
//      (the top level exposes up to 2K down ports: m_h*p_h <= 2K).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftcf::topo {

/// PGFT tuple. Vectors are indexed 0-based: index i-1 stores level-i values.
class PgftSpec {
 public:
  /// Validates basic well-formedness (h >= 1, all entries >= 1, matching
  /// vector lengths); throws util::SpecError otherwise.
  PgftSpec(std::vector<std::uint32_t> m, std::vector<std::uint32_t> w,
           std::vector<std::uint32_t> p);

  /// XGFT(h; m...; w...) is the special case with all p_l == 1.
  static PgftSpec xgft(std::vector<std::uint32_t> m,
                       std::vector<std::uint32_t> w);

  [[nodiscard]] std::uint32_t height() const noexcept {
    return static_cast<std::uint32_t>(m_.size());
  }
  /// m_l, w_l, p_l for level l in [1, h].
  [[nodiscard]] std::uint32_t m(std::uint32_t level) const;
  [[nodiscard]] std::uint32_t w(std::uint32_t level) const;
  [[nodiscard]] std::uint32_t p(std::uint32_t level) const;

  /// Number of end-ports: N = prod m_l.
  [[nodiscard]] std::uint64_t num_hosts() const noexcept;

  /// Number of nodes at a level in [0, h]:
  ///   prod_{i<=l} w_i * prod_{i>l} m_i.
  [[nodiscard]] std::uint64_t nodes_at_level(std::uint32_t level) const;

  /// Up-going ports of a level-l node (0 for l == h): w_{l+1} * p_{l+1}.
  [[nodiscard]] std::uint32_t up_ports_at_level(std::uint32_t level) const;
  /// Down-going ports of a level-l node (l >= 1): m_l * p_l.
  [[nodiscard]] std::uint32_t down_ports_at_level(std::uint32_t level) const;

  /// prod_{i=1..level} w_i  (W_0 == 1). Divisor used by D-Mod-K.
  [[nodiscard]] std::uint64_t w_prefix_product(std::uint32_t level) const;
  /// prod_{i=1..level} m_i  (M_0 == 1).
  [[nodiscard]] std::uint64_t m_prefix_product(std::uint32_t level) const;

  /// RLFT checks (paper §IV.C). `arity` is meaningful only when is_rlft().
  [[nodiscard]] bool has_constant_cbb() const noexcept;
  [[nodiscard]] bool has_single_cable_hosts() const noexcept;
  [[nodiscard]] bool has_constant_arity() const noexcept;
  [[nodiscard]] bool is_rlft() const noexcept;
  /// Switch arity K = m_1 * p_1 (valid for RLFTs).
  [[nodiscard]] std::uint32_t arity() const noexcept;

  /// Canonical text form: "PGFT(2; 4,4; 1,2; 1,2)".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const PgftSpec&, const PgftSpec&) = default;

 private:
  std::vector<std::uint32_t> m_;
  std::vector<std::uint32_t> w_;
  std::vector<std::uint32_t> p_;
};

/// Parse the canonical text form produced by PgftSpec::to_string().
/// Accepts both "PGFT(...)" and "XGFT(h; m...; w...)".
PgftSpec parse_pgft(const std::string& text);

}  // namespace ftcf::topo
