#include "topology/spec.hpp"

#include <charconv>
#include <sstream>

#include "util/error.hpp"
#include "util/expects.hpp"

namespace ftcf::topo {

using util::expects;
using util::ParseError;
using util::SpecError;

PgftSpec::PgftSpec(std::vector<std::uint32_t> m, std::vector<std::uint32_t> w,
                   std::vector<std::uint32_t> p)
    : m_(std::move(m)), w_(std::move(w)), p_(std::move(p)) {
  if (m_.empty()) throw SpecError("PGFT must have at least one level");
  if (m_.size() != w_.size() || m_.size() != p_.size())
    throw SpecError("PGFT m/w/p vectors must have equal length");
  for (std::size_t i = 0; i < m_.size(); ++i) {
    if (m_[i] == 0 || w_[i] == 0 || p_[i] == 0)
      throw SpecError("PGFT m/w/p entries must all be >= 1");
  }
  // Guard against absurd sizes that would overflow downstream arithmetic.
  std::uint64_t hosts = 1;
  for (const auto mi : m_) {
    hosts *= mi;
    if (hosts > (1ULL << 32))
      throw SpecError("PGFT host count exceeds 2^32; refusing to build");
  }
}

PgftSpec PgftSpec::xgft(std::vector<std::uint32_t> m,
                        std::vector<std::uint32_t> w) {
  std::vector<std::uint32_t> p(m.size(), 1);
  return PgftSpec(std::move(m), std::move(w), std::move(p));
}

std::uint32_t PgftSpec::m(std::uint32_t level) const {
  expects(level >= 1 && level <= height(), "m(level): level out of range");
  return m_[level - 1];
}

std::uint32_t PgftSpec::w(std::uint32_t level) const {
  expects(level >= 1 && level <= height(), "w(level): level out of range");
  return w_[level - 1];
}

std::uint32_t PgftSpec::p(std::uint32_t level) const {
  expects(level >= 1 && level <= height(), "p(level): level out of range");
  return p_[level - 1];
}

std::uint64_t PgftSpec::num_hosts() const noexcept {
  std::uint64_t n = 1;
  for (const auto mi : m_) n *= mi;
  return n;
}

std::uint64_t PgftSpec::nodes_at_level(std::uint32_t level) const {
  expects(level <= height(), "nodes_at_level: level out of range");
  std::uint64_t n = 1;
  for (std::uint32_t i = 1; i <= level; ++i) n *= w_[i - 1];
  for (std::uint32_t i = level + 1; i <= height(); ++i) n *= m_[i - 1];
  return n;
}

std::uint32_t PgftSpec::up_ports_at_level(std::uint32_t level) const {
  expects(level <= height(), "up_ports_at_level: level out of range");
  if (level == height()) return 0;
  return w_[level] * p_[level];
}

std::uint32_t PgftSpec::down_ports_at_level(std::uint32_t level) const {
  expects(level >= 1 && level <= height(),
          "down_ports_at_level: level out of range");
  return m_[level - 1] * p_[level - 1];
}

std::uint64_t PgftSpec::w_prefix_product(std::uint32_t level) const {
  expects(level <= height(), "w_prefix_product: level out of range");
  std::uint64_t prod = 1;
  for (std::uint32_t i = 1; i <= level; ++i) prod *= w_[i - 1];
  return prod;
}

std::uint64_t PgftSpec::m_prefix_product(std::uint32_t level) const {
  expects(level <= height(), "m_prefix_product: level out of range");
  std::uint64_t prod = 1;
  for (std::uint32_t i = 1; i <= level; ++i) prod *= m_[i - 1];
  return prod;
}

bool PgftSpec::has_constant_cbb() const noexcept {
  for (std::uint32_t l = 1; l < height(); ++l) {
    if (static_cast<std::uint64_t>(m_[l - 1]) * p_[l - 1] !=
        static_cast<std::uint64_t>(w_[l]) * p_[l])
      return false;
  }
  return true;
}

bool PgftSpec::has_single_cable_hosts() const noexcept {
  return w_[0] == 1 && p_[0] == 1;
}

bool PgftSpec::has_constant_arity() const noexcept {
  // All levels present the same half-radix K = m_l * p_l downwards. The top
  // level may expose anywhere up to 2K down-going ports (paper: m_h p_h = 2K
  // for the maximal tree; real clusters often populate fewer).
  const std::uint64_t k = static_cast<std::uint64_t>(m_[0]) * p_[0];
  for (std::uint32_t l = 2; l < height(); ++l) {
    if (static_cast<std::uint64_t>(m_[l - 1]) * p_[l - 1] != k) return false;
  }
  if (height() >= 2) {
    const std::uint64_t top =
        static_cast<std::uint64_t>(m_[height() - 1]) * p_[height() - 1];
    if (top > 2 * k) return false;
  }
  return true;
}

bool PgftSpec::is_rlft() const noexcept {
  return has_constant_cbb() && has_single_cable_hosts() && has_constant_arity();
}

std::uint32_t PgftSpec::arity() const noexcept { return m_[0] * p_[0]; }

std::string PgftSpec::to_string() const {
  std::ostringstream oss;
  const auto join = [&oss](const std::vector<std::uint32_t>& v) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) oss << ',';
      oss << v[i];
    }
  };
  oss << "PGFT(" << height() << "; ";
  join(m_);
  oss << "; ";
  join(w_);
  oss << "; ";
  join(p_);
  oss << ')';
  return oss.str();
}

namespace {

std::vector<std::uint32_t> parse_uint_list(const std::string& piece,
                                           const std::string& what) {
  std::vector<std::uint32_t> out;
  std::size_t start = 0;
  while (start <= piece.size()) {
    auto comma = piece.find(',', start);
    if (comma == std::string::npos) comma = piece.size();
    std::uint32_t value = 0;
    const char* begin = piece.data() + start;
    const char* end = piece.data() + comma;
    while (begin < end && *begin == ' ') ++begin;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || (ptr != end && *ptr != ' '))
      throw ParseError("cannot parse " + what + " list: '" + piece + "'");
    out.push_back(value);
    if (comma == piece.size()) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

PgftSpec parse_pgft(const std::string& text) {
  const auto open = text.find('(');
  const auto close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close < open)
    throw ParseError("PGFT text must look like 'PGFT(h; m...; w...; p...)'");
  const std::string kind = text.substr(0, open);
  const std::string body = text.substr(open + 1, close - open - 1);

  std::vector<std::string> pieces;
  std::size_t start = 0;
  while (start <= body.size()) {
    auto semi = body.find(';', start);
    if (semi == std::string::npos) semi = body.size();
    pieces.push_back(body.substr(start, semi - start));
    if (semi == body.size()) break;
    start = semi + 1;
  }

  const bool is_xgft = kind.find("XGFT") != std::string::npos;
  const std::size_t expected = is_xgft ? 3 : 4;
  if (pieces.size() != expected)
    throw ParseError("expected " + std::to_string(expected) +
                     " ';'-separated groups in '" + text + "'");

  const auto h_list = parse_uint_list(pieces[0], "height");
  if (h_list.size() != 1) throw ParseError("height group must be one number");
  auto m = parse_uint_list(pieces[1], "m");
  auto w = parse_uint_list(pieces[2], "w");
  if (m.size() != h_list[0] || w.size() != h_list[0])
    throw ParseError("m/w list length must equal the declared height");
  if (is_xgft) return PgftSpec::xgft(std::move(m), std::move(w));
  auto p = parse_uint_list(pieces[3], "p");
  if (p.size() != h_list[0])
    throw ParseError("p list length must equal the declared height");
  return PgftSpec(std::move(m), std::move(w), std::move(p));
}

}  // namespace ftcf::topo
