#include "topology/obs_names.hpp"

namespace ftcf::topo {

obs::TraceNaming trace_naming(const Fabric& fabric) {
  obs::TraceNaming naming;
  naming.port_names.reserve(fabric.num_ports());
  for (PortId pid = 0; pid < fabric.num_ports(); ++pid) {
    const Port& pt = fabric.port(pid);
    const Port& peer = fabric.port(pt.peer);
    naming.port_names.push_back(fabric.node_name(pt.node) + ":" +
                                std::to_string(pt.index) + " -> " +
                                fabric.node_name(peer.node));
  }
  naming.host_names.reserve(fabric.num_hosts());
  for (std::uint64_t h = 0; h < fabric.num_hosts(); ++h)
    naming.host_names.push_back(fabric.node_name(fabric.host_node(h)));
  return naming;
}

}  // namespace ftcf::topo
