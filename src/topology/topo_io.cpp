#include "topology/topo_io.hpp"

#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace ftcf::topo {

using util::ParseError;
using util::SpecError;

void write_topo(const Fabric& fabric, std::ostream& os) {
  os << "# ftcf topology file\n";
  os << "pgft " << fabric.spec().to_string() << '\n';
  for (NodeId id = 0; id < fabric.num_nodes(); ++id) {
    const Node& n = fabric.node(id);
    os << "node " << fabric.node_name(id)
       << (n.kind == NodeKind::kHost ? " kind=host" : " kind=switch")
       << " level=" << n.level
       << " ports=" << n.num_down_ports + n.num_up_ports << '\n';
  }
  // Emit each cable once, from its lower (up-going) endpoint.
  for (PortId pid = 0; pid < fabric.num_ports(); ++pid) {
    const Port& pt = fabric.port(pid);
    const Node& n = fabric.node(pt.node);
    if (pt.index < n.num_down_ports) continue;  // only from up-going side
    const Port& peer = fabric.port(pt.peer);
    os << "link " << fabric.node_name(pt.node) << ':' << pt.index << ' '
       << fabric.node_name(peer.node) << ':' << peer.index << '\n';
  }
}

std::string to_topo_string(const Fabric& fabric) {
  std::ostringstream oss;
  write_topo(fabric, oss);
  return oss.str();
}

namespace {

struct Endpoint {
  std::string node;
  std::uint32_t port = 0;
};

Endpoint parse_endpoint(const std::string& token, std::size_t lineno) {
  const auto colon = token.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= token.size())
    throw ParseError("line " + std::to_string(lineno) +
                     ": link endpoint must be NAME:PORT, got '" + token + "'");
  Endpoint ep;
  ep.node = token.substr(0, colon);
  const auto port = util::parse_u32(std::string_view(token).substr(colon + 1));
  if (!port)
    throw ParseError("line " + std::to_string(lineno) +
                     ": bad port number in endpoint '" + token + "'");
  ep.port = *port;
  return ep;
}

}  // namespace

Fabric read_topo(std::istream& is) {
  std::optional<PgftSpec> spec;
  std::vector<std::pair<Endpoint, Endpoint>> links;
  std::map<std::string, std::uint32_t> node_ports;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank/comment line

    if (keyword == "pgft") {
      if (spec)
        throw ParseError("line " + std::to_string(lineno) +
                         ": duplicate 'pgft' header");
      std::string rest;
      std::getline(ls, rest);
      // Strip leading spaces.
      rest.erase(0, rest.find_first_not_of(' '));
      try {
        spec = parse_pgft(rest);
      } catch (const ParseError& e) {
        throw ParseError("line " + std::to_string(lineno) + ": " + e.what());
      }
    } else if (keyword == "node") {
      std::string name;
      if (!(ls >> name))
        throw ParseError("line " + std::to_string(lineno) + ": node needs a name");
      std::string attr;
      std::uint32_t ports = 0;
      while (ls >> attr) {
        if (attr.rfind("ports=", 0) == 0) {
          const auto parsed =
              util::parse_u32(std::string_view(attr).substr(6));
          if (!parsed)
            throw ParseError("line " + std::to_string(lineno) +
                             ": bad port count '" + attr + "'");
          ports = *parsed;
        }
      }
      node_ports[name] = ports;
    } else if (keyword == "link") {
      std::string a, b;
      if (!(ls >> a >> b))
        throw ParseError("line " + std::to_string(lineno) +
                         ": link needs two endpoints");
      links.emplace_back(parse_endpoint(a, lineno), parse_endpoint(b, lineno));
    } else {
      throw ParseError("line " + std::to_string(lineno) +
                       ": unknown keyword '" + keyword + "'");
    }
  }

  if (!spec)
    throw ParseError("topo file lacks the mandatory 'pgft PGFT(...)' header");
  Fabric fabric(*spec);

  // Cross-check: names -> ids, declared port counts, and every listed cable.
  std::map<std::string, NodeId> by_name;
  for (NodeId id = 0; id < fabric.num_nodes(); ++id)
    by_name[fabric.node_name(id)] = id;

  for (const auto& [name, ports] : node_ports) {
    const auto it = by_name.find(name);
    if (it == by_name.end())
      throw SpecError("topo file names unknown node '" + name + "'");
    const Node& n = fabric.node(it->second);
    if (ports != n.num_down_ports + n.num_up_ports)
      throw SpecError("node '" + name + "' declares " + std::to_string(ports) +
                      " ports; fabric has " +
                      std::to_string(n.num_down_ports + n.num_up_ports));
  }
  for (const auto& [a, b] : links) {
    const auto ia = by_name.find(a.node);
    const auto ib = by_name.find(b.node);
    if (ia == by_name.end() || ib == by_name.end())
      throw SpecError("link references unknown node(s) " + a.node + " / " +
                      b.node);
    const Node& na = fabric.node(ia->second);
    if (a.port >= na.num_down_ports + na.num_up_ports)
      throw SpecError("endpoint " + a.node + ":" + std::to_string(a.port) +
                      " exceeds the node's " +
                      std::to_string(na.num_down_ports + na.num_up_ports) +
                      " ports");
    const Node& nb = fabric.node(ib->second);
    if (b.port >= nb.num_down_ports + nb.num_up_ports)
      throw SpecError("endpoint " + b.node + ":" + std::to_string(b.port) +
                      " exceeds the node's " +
                      std::to_string(nb.num_down_ports + nb.num_up_ports) +
                      " ports");
    const PortId pa = fabric.port_id(ia->second, a.port);
    const Port& pt = fabric.port(pa);
    const Port& peer = fabric.port(pt.peer);
    if (peer.node != ib->second || peer.index != b.port)
      throw SpecError("cable " + a.node + ":" + std::to_string(a.port) +
                      " -> " + b.node + ":" + std::to_string(b.port) +
                      " contradicts the PGFT wiring rule");
  }
  return fabric;
}

Fabric from_topo_string(const std::string& text) {
  std::istringstream iss(text);
  return read_topo(iss);
}

}  // namespace ftcf::topo
