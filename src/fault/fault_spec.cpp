#include "fault/fault_spec.hpp"

#include <charconv>
#include <sstream>

#include "util/error.hpp"

namespace ftcf::fault {

using util::ParseError;

namespace {

/// Split `text` on `sep`, keeping empty pieces (they are parse errors the
/// caller reports with context).
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto pos = text.find(sep, start);
    if (pos == std::string::npos) pos = text.size();
    out.push_back(text.substr(start, pos - start));
    if (pos == text.size()) break;
    start = pos + 1;
  }
  return out;
}

std::uint64_t parse_u64_field(const std::string& token, const std::string& ctx) {
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    throw ParseError("fault spec: bad " + ctx + " '" + token + "'");
  return value;
}

double parse_factor_field(const std::string& token, const std::string& ctx) {
  double value = 0.0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    throw ParseError("fault spec: bad " + ctx + " '" + token + "'");
  return value;
}

void need_fields(const std::vector<std::string>& f, std::size_t lo,
                 std::size_t hi, const std::string& token) {
  if (f.size() < lo || f.size() > hi)
    throw ParseError("fault spec: malformed fault '" + token + "'");
  for (const std::string& piece : f)
    if (piece.empty())
      throw ParseError("fault spec: empty field in '" + token + "'");
}

Fault parse_one(const std::string& token) {
  const auto fields = split(token, ':');
  const std::string& kind = fields.front();
  Fault fault;
  if (kind == "link") {
    need_fields(fields, 3, 3, token);
    fault.kind = FaultKind::kLinkDown;
    fault.node = fields[1];
    fault.port = static_cast<std::uint32_t>(parse_u64_field(fields[2], "port"));
  } else if (kind == "switch") {
    need_fields(fields, 2, 2, token);
    fault.kind = FaultKind::kSwitchDown;
    fault.node = fields[1];
  } else if (kind == "rate") {
    need_fields(fields, 4, 4, token);
    fault.kind = FaultKind::kDegradedRate;
    fault.node = fields[1];
    fault.port = static_cast<std::uint32_t>(parse_u64_field(fields[2], "port"));
    fault.rate_factor = parse_factor_field(fields[3], "rate factor");
    if (!(fault.rate_factor > 0.0) || fault.rate_factor > 1.0)
      throw ParseError("fault spec: rate factor must be in (0, 1], got '" +
                       fields[3] + "'");
  } else if (kind == "flap") {
    need_fields(fields, 4, 5, token);
    fault.kind = FaultKind::kLinkFlap;
    fault.node = fields[1];
    fault.port = static_cast<std::uint32_t>(parse_u64_field(fields[2], "port"));
    fault.down_at = static_cast<sim::SimTime>(
        parse_u64_field(fields[3], "flap down time") * 1000);
    if (fields.size() == 5) {
      fault.up_at = static_cast<sim::SimTime>(
          parse_u64_field(fields[4], "flap up time") * 1000);
      if (fault.up_at <= fault.down_at)
        throw ParseError("fault spec: flap revival must come after death in '" +
                         token + "'");
    }
  } else if (kind == "rand-links") {
    need_fields(fields, 3, 3, token);
    fault.kind = FaultKind::kRandomLinks;
    fault.count = parse_u64_field(fields[1], "link count");
    fault.seed = parse_u64_field(fields[2], "seed");
    if (fault.count == 0)
      throw ParseError("fault spec: rand-links count must be positive");
  } else {
    throw ParseError("fault spec: unknown fault kind '" + kind +
                     "' (link|switch|rate|flap|rand-links)");
  }
  return fault;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kSwitchDown: return "switch-down";
    case FaultKind::kDegradedRate: return "degraded-rate";
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kRandomLinks: return "random-links";
  }
  return "?";
}

std::string Fault::to_string() const {
  std::ostringstream oss;
  switch (kind) {
    case FaultKind::kLinkDown:
      oss << "link:" << node << ':' << port;
      break;
    case FaultKind::kSwitchDown:
      oss << "switch:" << node;
      break;
    case FaultKind::kDegradedRate:
      oss << "rate:" << node << ':' << port << ':' << rate_factor;
      break;
    case FaultKind::kLinkFlap:
      oss << "flap:" << node << ':' << port << ':' << down_at / 1000;
      if (up_at != sim::kNever) oss << ':' << up_at / 1000;
      break;
    case FaultKind::kRandomLinks:
      oss << "rand-links:" << count << ':' << seed;
      break;
  }
  return oss.str();
}

std::string FaultSpec::to_string() const {
  std::string out;
  for (const Fault& fault : faults) {
    if (!out.empty()) out += ',';
    out += fault.to_string();
  }
  return out;
}

FaultSpec parse_faults(const std::string& text) {
  FaultSpec spec;
  if (text.empty()) return spec;
  for (const std::string& token : split(text, ',')) {
    if (token.empty())
      throw ParseError("fault spec: empty fault entry in '" + text + "'");
    spec.faults.push_back(parse_one(token));
  }
  return spec;
}

}  // namespace ftcf::fault
