#include "fault/fault_spec.hpp"

#include <charconv>
#include <sstream>

#include "util/error.hpp"

namespace ftcf::fault {

using util::ParseError;

namespace {

/// Split `text` on `sep`, keeping empty pieces (they are parse errors the
/// caller reports with context).
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto pos = text.find(sep, start);
    if (pos == std::string::npos) pos = text.size();
    out.push_back(text.substr(start, pos - start));
    if (pos == text.size()) break;
    start = pos + 1;
  }
  return out;
}

std::uint64_t parse_u64_field(const std::string& token, const std::string& ctx) {
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    throw ParseError("fault spec: bad " + ctx + " '" + token + "'");
  return value;
}

double parse_factor_field(const std::string& token, const std::string& ctx) {
  double value = 0.0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    throw ParseError("fault spec: bad " + ctx + " '" + token + "'");
  return value;
}

void need_fields(const std::vector<std::string>& f, std::size_t lo,
                 std::size_t hi, const std::string& token) {
  if (f.size() < lo || f.size() > hi)
    throw ParseError("fault spec: malformed fault '" + token + "'");
  for (const std::string& piece : f)
    if (piece.empty())
      throw ParseError("fault spec: empty field in '" + token + "'");
}

/// Parse an `@t=` time value: a number with an optional us/ms/s unit suffix
/// (default microseconds). Returns nanoseconds.
sim::SimTime parse_time_field(const std::string& text,
                              const std::string& token) {
  std::size_t digits = 0;
  while (digits < text.size() &&
         text[digits] >= '0' && text[digits] <= '9')
    ++digits;
  if (digits == 0)
    throw ParseError("fault spec: bad time '" + text + "' in '" + token + "'");
  const std::string unit = text.substr(digits);
  std::uint64_t scale = 1000;  // default: microseconds
  if (unit == "us" || unit.empty()) scale = 1000;
  else if (unit == "ms") scale = 1000 * 1000;
  else if (unit == "s") scale = 1000ull * 1000 * 1000;
  else
    throw ParseError("fault spec: bad time unit '" + unit + "' in '" + token +
                     "' (us|ms|s)");
  const std::uint64_t value = parse_u64_field(text.substr(0, digits), "time");
  return static_cast<sim::SimTime>(value * scale);
}

Fault parse_one(const std::string& token) {
  // Strip an optional `@t=TIME` suffix first; it composes with the
  // timestampable kinds below.
  std::string body = token;
  sim::SimTime at = 0;
  if (const auto at_pos = token.find('@'); at_pos != std::string::npos) {
    const std::string suffix = token.substr(at_pos + 1);
    if (suffix.rfind("t=", 0) != 0)
      throw ParseError("fault spec: bad event-time suffix '@" + suffix +
                       "' in '" + token + "' (expected @t=TIME)");
    at = parse_time_field(suffix.substr(2), token);
    if (at <= 0)
      throw ParseError("fault spec: event time must be positive in '" + token +
                       "'");
    body = token.substr(0, at_pos);
  }

  auto fields = split(body, ':');
  std::string kind = fields.front();
  Fault fault;
  fault.at = at;
  bool repair = false;
  if (kind == "repair") {
    // repair:link:NODE:PORT@t=T | repair:switch:NODE@t=T — re-dispatch on
    // the repaired kind with the leading "repair" stripped.
    if (fields.size() < 2)
      throw ParseError("fault spec: malformed fault '" + token + "'");
    repair = true;
    fields.erase(fields.begin());
    kind = fields.front();
    if (kind != "link" && kind != "switch")
      throw ParseError("fault spec: repair targets link or switch, got '" +
                       token + "'");
    if (at == 0)
      throw ParseError("fault spec: repair needs an event time (@t=...) in '" +
                       token + "'");
  }
  if (kind == "link") {
    need_fields(fields, 3, 3, token);
    fault.kind = repair ? FaultKind::kRepairLink : FaultKind::kLinkDown;
    fault.node = fields[1];
    fault.port = static_cast<std::uint32_t>(parse_u64_field(fields[2], "port"));
  } else if (kind == "switch") {
    need_fields(fields, 2, 2, token);
    fault.kind = repair ? FaultKind::kRepairSwitch : FaultKind::kSwitchDown;
    fault.node = fields[1];
  } else if (kind == "rate") {
    need_fields(fields, 4, 4, token);
    if (at != 0)
      throw ParseError("fault spec: rate faults are static (no @t=) in '" +
                       token + "'");
    fault.kind = FaultKind::kDegradedRate;
    fault.node = fields[1];
    fault.port = static_cast<std::uint32_t>(parse_u64_field(fields[2], "port"));
    fault.rate_factor = parse_factor_field(fields[3], "rate factor");
    if (!(fault.rate_factor > 0.0) || fault.rate_factor > 1.0)
      throw ParseError("fault spec: rate factor must be in (0, 1], got '" +
                       fields[3] + "'");
  } else if (kind == "flap") {
    need_fields(fields, 4, 5, token);
    if (at != 0)
      throw ParseError("fault spec: flap carries its own times (no @t=) in '" +
                       token + "'");
    fault.kind = FaultKind::kLinkFlap;
    fault.node = fields[1];
    fault.port = static_cast<std::uint32_t>(parse_u64_field(fields[2], "port"));
    fault.down_at = static_cast<sim::SimTime>(
        parse_u64_field(fields[3], "flap down time") * 1000);
    if (fields.size() == 5) {
      fault.up_at = static_cast<sim::SimTime>(
          parse_u64_field(fields[4], "flap up time") * 1000);
      if (fault.up_at <= fault.down_at)
        throw ParseError("fault spec: flap revival must come after death in '" +
                         token + "'");
    }
  } else if (kind == "rand-links") {
    need_fields(fields, 3, 3, token);
    fault.kind = FaultKind::kRandomLinks;
    fault.count = parse_u64_field(fields[1], "link count");
    fault.seed = parse_u64_field(fields[2], "seed");
    if (fault.count == 0)
      throw ParseError("fault spec: rand-links count must be positive");
  } else if (kind == "mtbf") {
    need_fields(fields, 6, 6, token);
    if (at != 0)
      throw ParseError("fault spec: mtbf carries its own horizon (no @t=) in '" +
                       token + "'");
    fault.kind = FaultKind::kMtbf;
    fault.count = parse_u64_field(fields[1], "cable count");
    fault.down_at = static_cast<sim::SimTime>(
        parse_u64_field(fields[2], "mtbf") * 1000);
    fault.up_at = static_cast<sim::SimTime>(
        parse_u64_field(fields[3], "mttr") * 1000);
    fault.horizon = static_cast<sim::SimTime>(
        parse_u64_field(fields[4], "horizon") * 1000);
    fault.seed = parse_u64_field(fields[5], "seed");
    if (fault.count == 0)
      throw ParseError("fault spec: mtbf cable count must be positive");
    if (fault.down_at <= 0 || fault.up_at <= 0 || fault.horizon <= 0)
      throw ParseError("fault spec: mtbf/mttr/horizon must be positive in '" +
                       token + "'");
  } else {
    throw ParseError("fault spec: unknown fault kind '" + kind +
                     "' (link|switch|rate|flap|rand-links|repair|mtbf)");
  }
  return fault;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kSwitchDown: return "switch-down";
    case FaultKind::kDegradedRate: return "degraded-rate";
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kRandomLinks: return "random-links";
    case FaultKind::kRepairLink: return "repair-link";
    case FaultKind::kRepairSwitch: return "repair-switch";
    case FaultKind::kMtbf: return "mtbf-schedule";
  }
  return "?";
}

std::string Fault::to_string() const {
  std::ostringstream oss;
  switch (kind) {
    case FaultKind::kLinkDown:
      oss << "link:" << node << ':' << port;
      break;
    case FaultKind::kSwitchDown:
      oss << "switch:" << node;
      break;
    case FaultKind::kDegradedRate:
      oss << "rate:" << node << ':' << port << ':' << rate_factor;
      break;
    case FaultKind::kLinkFlap:
      oss << "flap:" << node << ':' << port << ':' << down_at / 1000;
      if (up_at != sim::kNever) oss << ':' << up_at / 1000;
      break;
    case FaultKind::kRandomLinks:
      oss << "rand-links:" << count << ':' << seed;
      break;
    case FaultKind::kRepairLink:
      oss << "repair:link:" << node << ':' << port;
      break;
    case FaultKind::kRepairSwitch:
      oss << "repair:switch:" << node;
      break;
    case FaultKind::kMtbf:
      oss << "mtbf:" << count << ':' << down_at / 1000 << ':' << up_at / 1000
          << ':' << horizon / 1000 << ':' << seed;
      break;
  }
  if (at != 0) oss << "@t=" << at / 1000 << "us";
  return oss.str();
}

std::string FaultSpec::to_string() const {
  std::string out;
  for (const Fault& fault : faults) {
    if (!out.empty()) out += ',';
    out += fault.to_string();
  }
  return out;
}

FaultSpec parse_faults(const std::string& text) {
  FaultSpec spec;
  if (text.empty()) return spec;
  for (const std::string& token : split(text, ',')) {
    if (token.empty())
      throw ParseError("fault spec: empty fault entry in '" + text + "'");
    spec.faults.push_back(parse_one(token));
  }
  return spec;
}

}  // namespace ftcf::fault
