#include "fault/connectivity.hpp"

#include <algorithm>

namespace ftcf::fault {

using topo::Fabric;
using topo::NodeId;
using topo::PortId;

std::vector<std::uint8_t> updown_reachable_hosts(const Fabric& fabric,
                                                 const LinkHealth& health,
                                                 std::uint64_t src) {
  std::vector<std::uint8_t> out(fabric.num_hosts(), 0);
  const NodeId src_node = fabric.host_node(src);
  if (!health.node_up(src_node)) return out;

  // Up phase: the set of switches a packet from src can occupy while still
  // climbing. Seeded by src's alive injection cables; a switch in the set
  // extends it through every alive up-link to an alive parent. Levels are
  // processed bottom-up, which is a topological order for up-links.
  std::vector<std::uint8_t> up_reach(fabric.num_nodes(), 0);
  const topo::Node& src_n = fabric.node(src_node);
  bool injects = false;
  for (std::uint32_t i = 0; i < src_n.num_up_ports; ++i) {
    const PortId up = fabric.port_id(src_node, src_n.num_down_ports + i);
    if (!health.link_up(up)) continue;
    const NodeId leaf = fabric.port(fabric.port(up).peer).node;
    if (!health.node_up(leaf)) continue;
    up_reach[leaf] = 1;
    injects = true;
  }
  if (!injects) return out;
  out[src] = 1;

  for (std::uint32_t l = 1; l < fabric.height(); ++l) {
    for (std::uint64_t o = 0; o < fabric.switches_at_level(l); ++o) {
      const NodeId sw = fabric.switch_node(l, o);
      if (!up_reach[sw]) continue;
      const topo::Node& node = fabric.node(sw);
      for (std::uint32_t q = 0; q < node.num_up_ports; ++q) {
        const PortId up = fabric.port_id(sw, node.num_down_ports + q);
        if (!health.link_up(up)) continue;
        const NodeId parent = fabric.port(fabric.port(up).peer).node;
        if (health.node_up(parent)) up_reach[parent] = 1;
      }
    }
  }

  // Down phase: from any switch the packet can occupy (turning down is
  // allowed at every level), descend through alive down-links to alive
  // children. Top-down level order is topological for down-links.
  std::vector<std::uint8_t>& down_reach = up_reach;  // turn is free: reuse
  for (std::uint32_t l = fabric.height(); l >= 2; --l) {
    for (std::uint64_t o = 0; o < fabric.switches_at_level(l); ++o) {
      const NodeId sw = fabric.switch_node(l, o);
      if (!down_reach[sw]) continue;
      const topo::Node& node = fabric.node(sw);
      for (std::uint32_t d = 0; d < node.num_down_ports; ++d) {
        const PortId down = fabric.port_id(sw, d);
        if (!health.link_up(down)) continue;
        const NodeId child = fabric.port(fabric.port(down).peer).node;
        if (health.node_up(child)) down_reach[child] = 1;
      }
    }
  }

  // Delivery: a host is reachable when some reachable leaf has an alive
  // cable to it and the host itself is alive.
  for (std::uint64_t o = 0; o < fabric.switches_at_level(1); ++o) {
    const NodeId leaf = fabric.switch_node(1, o);
    if (!down_reach[leaf]) continue;
    const topo::Node& node = fabric.node(leaf);
    for (std::uint32_t d = 0; d < node.num_down_ports; ++d) {
      const PortId down = fabric.port_id(leaf, d);
      if (!health.link_up(down)) continue;
      const NodeId host = fabric.port(fabric.port(down).peer).node;
      if (!health.node_up(host)) continue;
      out[fabric.host_index(host)] = 1;
    }
  }
  return out;
}

}  // namespace ftcf::fault
