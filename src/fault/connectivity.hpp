// BFS reachability oracle over a degraded fabric, restricted to valid
// up*/down* paths (the only shape deadlock-free fat-tree routing may use):
// a destination is reachable from `src` iff some alive switch reached by
// climbing alive up-links can descend to it over alive down-links.
//
// This is routing-table-free ground truth: the churn campaign and the
// degraded-routing tests compare what the D-Mod-K chooser programmed against
// what the graph actually allows.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/degraded.hpp"

namespace ftcf::fault {

/// Per-host reachability (indexed by host linear index) from `src` over the
/// degraded graph via up*/down* paths. out[src] mirrors health.host_up(src);
/// every entry is 0 when src cannot inject at all (dead host or no alive
/// cable to an alive leaf).
[[nodiscard]] std::vector<std::uint8_t> updown_reachable_hosts(
    const topo::Fabric& fabric, const LinkHealth& health, std::uint64_t src);

}  // namespace ftcf::fault
