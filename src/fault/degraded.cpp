#include "fault/degraded.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ftcf::fault {

using topo::Fabric;
using topo::NodeId;
using topo::PortId;
using util::SpecError;

namespace {

/// Parse a full-token unsigned value; returns false on any trailing garbage.
bool parse_index(std::string_view text, std::uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

}  // namespace

bool LinkHealth::host_up(std::uint64_t j) const {
  const NodeId host = fabric->host_node(j);
  if (!node_up(host)) return false;
  const topo::Node& n = fabric->node(host);
  for (std::uint32_t i = 0; i < n.num_up_ports; ++i) {
    const PortId up = fabric->port_id(host, n.num_down_ports + i);
    if (!link_up(up)) continue;
    if (node_up(fabric->port(fabric->port(up).peer).node)) return true;
  }
  return false;
}

NodeId FaultState::resolve_node(const Fabric& fabric, const std::string& name) {
  std::uint64_t index = 0;
  // Aliases first: leafK, spineK, Ll_Sk.
  if (name.rfind("leaf", 0) == 0 && parse_index(name.substr(4), index)) {
    if (index >= fabric.switches_at_level(1))
      throw SpecError("fault spec: no leaf switch '" + name + "'");
    return fabric.switch_node(1, index);
  }
  if (name.rfind("spine", 0) == 0 && parse_index(name.substr(5), index)) {
    if (index >= fabric.switches_at_level(fabric.height()))
      throw SpecError("fault spec: no spine switch '" + name + "'");
    return fabric.switch_node(fabric.height(), index);
  }
  if (name.size() >= 4 && name[0] == 'L') {
    const auto sep = name.find("_S");
    std::uint64_t level = 0;
    if (sep != std::string::npos &&
        parse_index(name.substr(1, sep - 1), level) &&
        parse_index(name.substr(sep + 2), index)) {
      if (level < 1 || level > fabric.height() ||
          index >= fabric.switches_at_level(static_cast<std::uint32_t>(level)))
        throw SpecError("fault spec: no switch '" + name + "'");
      return fabric.switch_node(static_cast<std::uint32_t>(level), index);
    }
  }
  // Exact fabric names ("S2_005", "H0013").
  for (NodeId id = 0; id < fabric.num_nodes(); ++id)
    if (fabric.node_name(id) == name) return id;
  throw SpecError("fault spec: unknown node '" + name +
                  "' (use a fabric name, leafK, spineK or Ll_Sk)");
}

PortId FaultState::resolve_cable(const Fabric& fabric, const std::string& node,
                                 std::uint32_t index) {
  const NodeId id = resolve_node(fabric, node);
  const topo::Node& n = fabric.node(id);
  if (index >= n.num_down_ports + n.num_up_ports)
    throw SpecError("fault spec: node '" + node + "' has no port " +
                    std::to_string(index));
  return fabric.port_id(id, index);
}

FaultState::FaultState(const Fabric& fabric, const FaultSpec& spec)
    : fabric_(&fabric), spec_(spec) {
  link_down_.assign(fabric.num_ports(), 0);
  node_down_.assign(fabric.num_nodes(), 0);
  rate_factor_.assign(fabric.num_ports(), 1.0);

  for (const Fault& fault : spec.faults) {
    switch (fault.kind) {
      case FaultKind::kLinkDown: {
        const PortId port = resolve_cable(fabric, fault.node, fault.port);
        // A timed link fault is a scripted death, not a static hole.
        if (fault.at > 0)
          flaps_.push_back(FlapEvent{port, fault.at, sim::kNever});
        else
          kill_cable(port);
        break;
      }
      case FaultKind::kSwitchDown: {
        const NodeId id = resolve_node(fabric, fault.node);
        if (fabric.node(id).kind != topo::NodeKind::kSwitch)
          throw SpecError("fault spec: switch fault targets non-switch '" +
                          fault.node + "'");
        if (fault.at > 0) {
          // A timed switch death: every adjacent cable dies at that time.
          const topo::Node& n = fabric.node(id);
          for (std::uint32_t i = 0; i < n.num_down_ports + n.num_up_ports; ++i)
            flaps_.push_back(
                FlapEvent{fabric.port_id(id, i), fault.at, sim::kNever});
        } else {
          kill_switch(id);
        }
        break;
      }
      case FaultKind::kDegradedRate: {
        const PortId port = resolve_cable(fabric, fault.node, fault.port);
        const PortId peer = fabric.port(port).peer;
        // Degrade both directions (a renegotiated cable is symmetric).
        if (rate_factor_[port] == 1.0 && rate_factor_[peer] == 1.0)
          ++cables_degraded_;
        rate_factor_[port] = std::min(rate_factor_[port], fault.rate_factor);
        rate_factor_[peer] = std::min(rate_factor_[peer], fault.rate_factor);
        break;
      }
      case FaultKind::kLinkFlap: {
        const PortId port = resolve_cable(fabric, fault.node, fault.port);
        flaps_.push_back(FlapEvent{port, fault.down_at, fault.up_at});
        break;
      }
      case FaultKind::kRandomLinks: {
        // Deterministic sample over switch-switch cables, identified by
        // their lower (up-going) endpoint in ascending PortId order.
        std::vector<PortId> cables;
        for (PortId pid = 0; pid < fabric.num_ports(); ++pid) {
          const topo::Port& pt = fabric.port(pid);
          const topo::Node& n = fabric.node(pt.node);
          if (n.kind != topo::NodeKind::kSwitch) continue;
          if (pt.index < n.num_down_ports) continue;  // count each cable once
          cables.push_back(pid);
        }
        util::Xoshiro256 rng(fault.seed);
        util::shuffle(cables, rng);
        const std::uint64_t take =
            std::min<std::uint64_t>(fault.count, cables.size());
        for (std::uint64_t i = 0; i < take; ++i) {
          if (fault.at > 0)
            flaps_.push_back(FlapEvent{cables[i], fault.at, sim::kNever});
          else
            kill_cable(cables[i]);
        }
        break;
      }
      case FaultKind::kRepairLink: {
        // A repair applies to the state built so far: the cable must be
        // statically down (killed by an earlier token) and comes back at
        // the scripted time.
        const PortId port = resolve_cable(fabric, fault.node, fault.port);
        if (link_up(port))
          throw SpecError("fault spec: repair of a cable that is not down: '" +
                          fault.to_string() +
                          "' (order the link fault before its repair)");
        repairs_.push_back(RepairEvent{port, fault.at});
        break;
      }
      case FaultKind::kRepairSwitch:
        throw SpecError(
            "fault spec: repair:switch is timeline-only — replay it with "
            "'ftcf_tool churn'");
      case FaultKind::kMtbf:
        throw SpecError(
            "fault spec: mtbf schedules are timeline-only — replay them with "
            "'ftcf_tool churn'");
    }
  }
}

void FaultState::kill_cable(PortId port) {
  const PortId peer = fabric_->port(port).peer;
  if (link_down_[port] && link_down_[peer]) return;  // already dead
  link_down_[port] = 1;
  link_down_[peer] = 1;
  ++cables_down_;
}

void FaultState::kill_switch(NodeId node) {
  if (node_down_[node]) return;
  node_down_[node] = 1;
  ++switches_down_;
  const topo::Node& n = fabric_->node(node);
  for (std::uint32_t i = 0; i < n.num_down_ports + n.num_up_ports; ++i)
    kill_cable(fabric_->port_id(node, i));
}

bool FaultState::host_up(std::uint64_t j) const {
  return health().host_up(j);
}

std::vector<std::uint64_t> FaultState::surviving_hosts() const {
  std::vector<std::uint64_t> out;
  out.reserve(fabric_->num_hosts());
  for (std::uint64_t j = 0; j < fabric_->num_hosts(); ++j)
    if (host_up(j)) out.push_back(j);
  return out;
}

std::string FaultState::summary() const {
  std::ostringstream oss;
  oss << cables_down_ << " cable(s) down, " << switches_down_
      << " switch(es) down, " << cables_degraded_ << " cable(s) degraded, "
      << flaps_.size() << " scripted flap(s); "
      << surviving_hosts().size() << '/' << fabric_->num_hosts()
      << " hosts up";
  return oss.str();
}

}  // namespace ftcf::fault
