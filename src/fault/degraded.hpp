// FaultState: a FaultSpec resolved against a concrete Fabric.
//
// The resolution is the single source of truth every layer shares:
//   * routing reads link_up()/node_up() to re-route around missing cables;
//   * the packet simulator reads rate_factor() and the flap/repair schedules;
//   * analysis/benches read the summary counts to label their output.
//
// A "cable" is an undirected pair of ports; killing it marks both directed
// links down. A dead switch kills all of its cables. Flaps are *not* down at
// t=0 — they are scripted sim-time events the simulator executes — so static
// routing treats flapping cables as healthy (the §VII rerouting latency of a
// real subnet manager is far above a collective's makespan). A timed fault
// (`link:...@t=`, `switch:...@t=`) resolves to flaps the same way; a
// `repair:link:...@t=` revives a statically-dead cable at a scripted time.
// Timeline-only kinds (repair:switch, mtbf) are rejected here — they are
// resolved by churn::resolve_timeline instead.
//
// Resolution is deterministic: the same spec + fabric (+ seeds) always yields
// the same state, so fault experiments reproduce bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_spec.hpp"
#include "topology/fabric.hpp"

namespace ftcf::fault {

/// A borrowed, mutation-agnostic view of per-link / per-node liveness: the
/// minimal surface degraded routing and the BFS connectivity oracle need.
/// FaultState exposes one over its static resolution; the churn engine
/// exposes one over its mutable health arrays — both route through the exact
/// same chooser code, which is what makes incremental ≡ full provable.
struct LinkHealth {
  const topo::Fabric* fabric = nullptr;
  const std::vector<std::uint8_t>* link_down = nullptr;  ///< per PortId
  const std::vector<std::uint8_t>* node_down = nullptr;  ///< per NodeId

  /// True when the directed link leaving `port` is up.
  [[nodiscard]] bool link_up(topo::PortId port) const {
    return !(*link_down)[port];
  }
  [[nodiscard]] bool node_up(topo::NodeId node) const {
    return !(*node_down)[node];
  }
  /// True when host j can inject/receive at all: the host, some up cable
  /// and the switch behind it are alive.
  [[nodiscard]] bool host_up(std::uint64_t j) const;
};

/// One scripted cable event for the simulator, resolved to a PortId (the
/// cable's lower, up-going endpoint; the simulator kills both directions).
struct FlapEvent {
  topo::PortId port = topo::kInvalidPort;
  sim::SimTime down_at = 0;
  sim::SimTime up_at = sim::kNever;  ///< kNever = the cable never revives
};

/// One scripted revival of a statically-dead cable (a `repair:link:...@t=`
/// token): the cable is down from t=0 and comes back at `up_at`.
struct RepairEvent {
  topo::PortId port = topo::kInvalidPort;
  sim::SimTime up_at = 0;
};

class FaultState {
 public:
  /// Resolve `spec` against `fabric`. Throws util::SpecError when a fault
  /// names an unknown node, an out-of-range port, targets a host where a
  /// switch is required, repairs a cable that is not statically down, or
  /// uses a timeline-only kind (repair:switch, mtbf).
  FaultState(const topo::Fabric& fabric, const FaultSpec& spec);

  [[nodiscard]] const topo::Fabric& fabric() const noexcept { return *fabric_; }
  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  /// True when the spec resolved to no faults at all (pristine fabric).
  [[nodiscard]] bool pristine() const noexcept {
    return cables_down_ == 0 && switches_down_ == 0 && cables_degraded_ == 0 &&
           flaps_.empty();
  }

  /// True when the directed link leaving `port` is statically up.
  [[nodiscard]] bool link_up(topo::PortId port) const {
    return !link_down_.at(port);
  }
  /// True when the node is statically alive.
  [[nodiscard]] bool node_up(topo::NodeId node) const {
    return !node_down_.at(node);
  }
  /// True when host j can inject/receive at all: the host, its leaf switch
  /// and the cable between them are alive.
  [[nodiscard]] bool host_up(std::uint64_t j) const;

  /// The shared liveness view over this static resolution.
  [[nodiscard]] LinkHealth health() const noexcept {
    return LinkHealth{fabric_, &link_down_, &node_down_};
  }

  /// Static bandwidth multiplier of the directed link leaving `port`
  /// (1.0 = nominal).
  [[nodiscard]] double rate_factor(topo::PortId port) const {
    return rate_factor_.at(port);
  }

  [[nodiscard]] const std::vector<FlapEvent>& flaps() const noexcept {
    return flaps_;
  }
  [[nodiscard]] const std::vector<RepairEvent>& repairs() const noexcept {
    return repairs_;
  }

  // --- summary (for reports/benches) ---
  [[nodiscard]] std::uint64_t cables_down() const noexcept {
    return cables_down_;
  }
  [[nodiscard]] std::uint64_t switches_down() const noexcept {
    return switches_down_;
  }
  [[nodiscard]] std::uint64_t cables_degraded() const noexcept {
    return cables_degraded_;
  }
  /// Hosts with host_up() true, in ascending order.
  [[nodiscard]] std::vector<std::uint64_t> surviving_hosts() const;

  [[nodiscard]] std::string summary() const;

  /// Resolve a node name/alias ("S2_005", "H0013", "leaf0", "spine4",
  /// "L2_S1") to a NodeId; throws util::SpecError on unknown names.
  [[nodiscard]] static topo::NodeId resolve_node(const topo::Fabric& fabric,
                                                 const std::string& name);
  /// The cable attached to port `index` of `node`, identified by its PortId.
  /// Throws util::SpecError on unknown nodes or out-of-range ports.
  [[nodiscard]] static topo::PortId resolve_cable(const topo::Fabric& fabric,
                                                  const std::string& node,
                                                  std::uint32_t index);

 private:
  void kill_cable(topo::PortId port);
  void kill_switch(topo::NodeId node);

  const topo::Fabric* fabric_;
  FaultSpec spec_;
  std::vector<std::uint8_t> link_down_;   ///< per directed link (PortId)
  std::vector<std::uint8_t> node_down_;   ///< per NodeId
  std::vector<double> rate_factor_;       ///< per directed link (PortId)
  std::vector<FlapEvent> flaps_;
  std::vector<RepairEvent> repairs_;
  std::uint64_t cables_down_ = 0;
  std::uint64_t switches_down_ = 0;
  std::uint64_t cables_degraded_ = 0;
};

}  // namespace ftcf::fault
