// Fault specifications: a declarative description of what is broken (or will
// break) in a fabric, before it is resolved against concrete nodes/ports.
//
// Zahavi's theorems assume a pristine RLFT; production fabrics are never
// pristine. A FaultSpec captures the fault classes we model:
//   * link down       — one cable dead from t=0 (both directions);
//   * switch down     — a switch dead with all of its cables;
//   * degraded rate   — a cable running at a fraction of nominal bandwidth
//                       (a renegotiated-width/speed port);
//   * flap schedule   — a cable dying at a scripted sim time, optionally
//                       reviving later (the mid-run fault event);
//   * random links    — a seed-reproducible sample of switch-switch cables
//                       to kill (deterministic: same seed, same cables);
//   * repair          — a previously-failed cable or switch coming back at a
//                       scripted time (churn timelines; repair:link also
//                       drives the packet simulator's mid-run revival);
//   * mtbf schedule   — a random fail/repair timeline over sampled cables,
//                       MTBF/MTTR driven, seeded via util::derive_seed.
//
// Text grammar (one spec = comma-separated faults; see docs/FAULTS.md):
//   link:NODE:PORT[@t=T]        rate:NODE:PORT:FACTOR
//   switch:NODE[@t=T]           flap:NODE:PORT:DOWN_US[:UP_US]
//   rand-links:COUNT:SEED[@t=T]
//   repair:link:NODE:PORT@t=T   repair:switch:NODE@t=T
//   mtbf:COUNT:MTBF_US:MTTR_US:HORIZON_US:SEED
// T is a number with an optional unit suffix (us, ms, s; default us).
// NODE is a fabric node name ("S2_005", "H0013") or one of the aliases
// leafK (level-1 switch K), spineK (top-level switch K), or Ll_Sk (level l,
// ordinal k). Parse failures throw util::ParseError naming the bad token.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ftcf::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown,
  kSwitchDown,
  kDegradedRate,
  kLinkFlap,
  kRandomLinks,
  kRepairLink,
  kRepairSwitch,
  kMtbf,
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

/// One fault, still in name space (unresolved against a Fabric).
struct Fault {
  FaultKind kind = FaultKind::kLinkDown;
  std::string node;              ///< target node name/alias (not kRandomLinks)
  std::uint32_t port = 0;        ///< port index on `node` (link/rate/flap)
  double rate_factor = 1.0;      ///< kDegradedRate: fraction of nominal, (0,1]
  sim::SimTime down_at = 0;      ///< kLinkFlap: death time; kMtbf: MTBF (ns)
  sim::SimTime up_at = sim::kNever;  ///< kLinkFlap: revival; kMtbf: MTTR (ns)
  std::uint64_t count = 0;       ///< kRandomLinks/kMtbf: cables to touch
  std::uint64_t seed = 1;        ///< kRandomLinks/kMtbf: sampling seed
  /// Event time of the `@t=` suffix (ns); 0 = static (present from t=0).
  /// Repairs require a positive time — a fault cannot be repaired before
  /// it exists.
  sim::SimTime at = 0;
  sim::SimTime horizon = 0;      ///< kMtbf: schedule end (ns)

  [[nodiscard]] std::string to_string() const;
};

/// An ordered list of faults. Order matters only for reporting and for
/// repair tokens (a repair applies to the state built so far); the resolved
/// FaultState is otherwise the union of all faults.
struct FaultSpec {
  std::vector<Fault> faults;

  [[nodiscard]] bool empty() const noexcept { return faults.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Parse the comma-separated grammar above. Throws util::ParseError with the
/// offending token on any malformed input; never crashes on garbage.
[[nodiscard]] FaultSpec parse_faults(const std::string& text);

}  // namespace ftcf::fault
