// Incremental D-Mod-K repair under fabric churn.
//
// A churn event (cable/switch failure or repair) invalidates only the LFT
// columns of destinations whose paths interact with the changed component.
// IncrementalRepair maintains, per destination, the set of cables its
// programmed column traverses plus a count of deviations from pristine
// D-Mod-K, and on each event re-routes exactly the dirty destinations
// through the same DestinationRouter the full build uses. The dirty sets
// are provably sufficient (monotonicity of the chooser's accept/reject
// decisions under health changes):
//
//   * cable FAIL     — health only degrades, so previously-rejected
//     candidates stay rejected; an entry changes only when its own cable
//     died or a viability flip chain (which bottoms out at a programmed
//     column cable) reached it. Dirty = destinations whose column uses the
//     failed cable.
//   * cable REPAIR   — health only improves, so accepted candidates stay
//     accepted; the chooser scans the pristine candidate first, so a fully
//     pristine column cannot improve. Dirty = destinations with any
//     deviation (rerouted or unrouted entry at an alive switch).
//   * switch FAIL    — equivalent to failing every adjacent cable that was
//     still up, plus dropping the dead switch from the per-destination
//     bookkeeping (its unrouted count no longer exists in a full build).
//   * switch REPAIR  — non-pristine destinations recompute; fully pristine
//     destinations only need the revived switch's row filled with the
//     pristine entry, validated against the chooser's acceptance rule
//     (validation failure demotes the destination to a full recompute).
//
// Every event returns a RepairDelta: which columns changed (the exact
// re-certification dirty set), which rows were fast-path filled, and the
// post-event aggregate stats. The differential oracle in tests/churn
// asserts tables() == compute_degraded_dmodk(fabric, health()) after every
// event of a long random timeline, at several thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/degraded.hpp"

namespace ftcf::route {

/// What one churn event did to the forwarding state.
struct RepairDelta {
  /// False when the event changed no link/node health bit (e.g. failing an
  /// already-dead cable, or repairing a cable whose endpoint switch is
  /// still down); the tables are untouched in that case.
  bool applied = false;
  /// Destinations whose LFT column actually changed, ascending. This is
  /// the exact dirty set a re-certification must re-walk.
  std::vector<std::uint64_t> changed_dests;
  /// Destinations whose only change is a pristine entry filled into the
  /// revived switch's row (switch repair fast path), ascending.
  std::vector<std::uint64_t> row_filled_dests;
  /// The revived switch for row_filled_dests (kInvalidNode otherwise).
  topo::NodeId row_switch = topo::kInvalidNode;
  /// Total (switch, destination) slots whose value changed.
  std::uint64_t entries_changed = 0;
  /// Aggregate stats after the event (what a full rebuild would report).
  DegradedStats stats;
};

/// Streaming repair engine: owns the live health arrays and forwarding
/// tables, and applies churn events in amortized sub-linear time. All
/// recomputation funnels through DestinationRouter, so the tables are at
/// every point byte-identical to a from-scratch compute_degraded_dmodk over
/// the same health view — incremental is an optimization, never a fork.
class IncrementalRepair {
 public:
  /// Start from a health snapshot (full table build, parallelized over
  /// destinations with a deterministic serial fold).
  IncrementalRepair(const topo::Fabric& fabric,
                    const fault::LinkHealth& initial);
  /// Start from a resolved static fault state.
  explicit IncrementalRepair(const fault::FaultState& state);

  [[nodiscard]] const topo::Fabric& fabric() const noexcept {
    return *fabric_;
  }
  [[nodiscard]] const ForwardingTables& tables() const noexcept {
    return tables_;
  }
  /// Live liveness view (valid as long as this object exists; reflects all
  /// events applied so far).
  [[nodiscard]] fault::LinkHealth health() const noexcept {
    return fault::LinkHealth{fabric_, &link_down_, &node_down_};
  }
  /// Aggregate of the per-destination stats (== a full rebuild's stats).
  [[nodiscard]] DegradedStats stats() const;

  /// Destinations currently deviating from pristine D-Mod-K (rerouted or
  /// unrouted at some alive switch) — the HSD-degradation denominator.
  [[nodiscard]] std::uint64_t non_pristine_dests() const;

  // --- events; `port` may be either endpoint of the cable ---
  RepairDelta fail_cable(topo::PortId port);
  RepairDelta repair_cable(topo::PortId port);
  RepairDelta fail_switch(topo::NodeId sw);
  RepairDelta repair_switch(topo::NodeId sw);

 private:
  [[nodiscard]] topo::PortId canonical(topo::PortId port) const {
    return std::min(port, fabric_->port(port).peer);
  }
  [[nodiscard]] bool column_uses(std::uint64_t dest,
                                 const std::vector<topo::PortId>& cables) const;
  void refresh_dest(std::uint64_t dest);
  /// Re-route `dests` (ascending) in parallel, then serially diff against
  /// the pre-event columns, updating bookkeeping and `delta`.
  void recompute_columns(const std::vector<std::uint64_t>& dests,
                         RepairDelta* delta);

  const topo::Fabric* fabric_;
  std::vector<std::uint8_t> link_down_;     ///< per directed link (PortId)
  std::vector<std::uint8_t> node_down_;     ///< per NodeId
  /// Per canonical cable id (the lower PortId of the pair): the cable
  /// itself is failed, independently of its endpoint switches. A switch
  /// repair does not revive independently-failed adjacent cables.
  std::vector<std::uint8_t> cable_failed_;
  ForwardingTables tables_;
  std::vector<DestStats> dest_stats_;       ///< per destination
  /// Sorted canonical cable ids each destination's programmed column uses.
  std::vector<std::vector<topo::PortId>> column_links_;
  /// Per destination: alive-switch entries deviating from pristine D-Mod-K
  /// (different port, or missing). 0 == fully pristine column.
  std::vector<std::uint32_t> non_pristine_;
};

}  // namespace ftcf::route
