#include "routing/lft.hpp"

#include <algorithm>

#include "util/expects.hpp"

namespace ftcf::route {

using util::expects;

ForwardingTables::ForwardingTables(const topo::Fabric& fabric)
    : fabric_(&fabric), num_hosts_(fabric.num_hosts()) {
  expects(fabric.num_switches() > 0, "fabric has no switches to program");
  first_switch_ = fabric.switch_ids().front();
  table_.assign(fabric.num_switches() * num_hosts_, kUnroutedPort);
}

std::size_t ForwardingTables::slot(topo::NodeId sw, std::uint64_t dest) const {
  const topo::Node& n = fabric_->node(sw);
  expects(n.kind == topo::NodeKind::kSwitch, "LFT lookup on a non-switch");
  expects(dest < num_hosts_, "LFT destination out of range");
  // Switches are contiguous NodeIds after the hosts.
  return static_cast<std::size_t>(sw - first_switch_) * num_hosts_ + dest;
}

std::uint32_t ForwardingTables::out_port(topo::NodeId sw,
                                         std::uint64_t dest) const {
  const std::uint32_t port = table_[slot(sw, dest)];
  expects(port != kUnroutedPort, "LFT entry was never programmed");
  return port;
}

void ForwardingTables::set_out_port(topo::NodeId sw, std::uint64_t dest,
                                    std::uint32_t port) {
  const topo::Node& n = fabric_->node(sw);
  expects(port < n.num_down_ports + n.num_up_ports,
          "LFT out-port exceeds switch radix");
  table_[slot(sw, dest)] = port;
}

bool ForwardingTables::has_entry(topo::NodeId sw, std::uint64_t dest) const {
  return table_[slot(sw, dest)] != kUnroutedPort;
}

void ForwardingTables::clear_entry(topo::NodeId sw, std::uint64_t dest) {
  table_[slot(sw, dest)] = kUnroutedPort;
}

bool ForwardingTables::complete() const noexcept {
  return std::none_of(table_.begin(), table_.end(), [](std::uint32_t port) {
    return port == kUnroutedPort;
  });
}

}  // namespace ftcf::route
