// Router interface: a routing engine fills ForwardingTables for a fabric.
#pragma once

#include <memory>
#include <string>

#include "routing/lft.hpp"

namespace ftcf::route {

class Router {
 public:
  virtual ~Router() = default;

  /// Short stable identifier ("dmodk", "updown", "random").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Program complete forwarding tables for the fabric.
  [[nodiscard]] virtual ForwardingTables compute(
      const topo::Fabric& fabric) const = 0;
};

enum class RouterKind { kDModK, kFtree, kUpDown, kRandom };

/// Factory used by benches/CLIs. `seed` feeds the randomized routers and is
/// ignored by deterministic ones.
std::unique_ptr<Router> make_router(RouterKind kind, std::uint64_t seed = 1);

/// Parse "dmodk" / "ftree" / "updown" / "random" (throws util::Error otherwise).
RouterKind parse_router_kind(const std::string& text);

}  // namespace ftcf::route
