#include "routing/dmodk.hpp"

#include "obs/profile.hpp"
#include "util/expects.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::route {

using topo::Fabric;
using topo::PgftSpec;
using util::expects;

std::uint32_t DModKRouter::up_port_formula(const PgftSpec& spec,
                                           std::uint32_t level,
                                           std::uint64_t dest) {
  expects(level < spec.height(), "no up-going ports above the top level");
  const std::uint64_t divisor = spec.w_prefix_product(level);
  const std::uint64_t ports = static_cast<std::uint64_t>(spec.w(level + 1)) *
                              spec.p(level + 1);
  return static_cast<std::uint32_t>((dest / divisor) % ports);
}

std::uint32_t DModKRouter::down_rail_formula(const PgftSpec& spec,
                                             std::uint32_t level,
                                             std::uint64_t dest) {
  expects(level >= 1 && level <= spec.height(),
          "down rail is defined per level boundary 1..h");
  const std::uint64_t divisor = spec.w_prefix_product(level - 1);
  const std::uint64_t ports =
      static_cast<std::uint64_t>(spec.w(level)) * spec.p(level);
  const auto q = static_cast<std::uint32_t>((dest / divisor) % ports);
  return q / spec.w(level);
}

ForwardingTables DModKRouter::compute(const Fabric& fabric) const {
  FTCF_PROF_SCOPE("dmodk_build");
  const PgftSpec& spec = fabric.spec();
  ForwardingTables tables(fabric);
  const std::uint64_t n = fabric.num_hosts();

  // Sharded per switch: each task programs one switch's LFT row, a
  // disjoint slice of the table, so the parallel build needs no locking
  // and the resulting tables are identical for any thread count.
  const std::span<const topo::NodeId> switches = fabric.switch_ids();
  par::parallel_for(
      switches.size(),
      [&](std::size_t idx, std::uint32_t) {
        const topo::NodeId sw = switches[idx];
        const topo::Node& node = fabric.node(sw);
        const std::uint32_t l = node.level;
        for (std::uint64_t j = 0; j < n; ++j) {
          std::uint32_t port;
          if (fabric.is_ancestor_of_host(sw, j)) {
            // Down: the unique child subtree containing j, over the rail the
            // up-path of j takes at this boundary.
            const std::uint32_t child = fabric.host_digit(j, l);
            const std::uint32_t rail = down_rail_formula(spec, l, j);
            port = child + rail * spec.m(l);
          } else {
            port = node.num_down_ports + up_port_formula(spec, l, j);
          }
          tables.set_out_port(sw, j, port);
        }
      },
      par::ForOptions{.threads = 0, .grain = 1, .label = "dmodk.switch"});
  util::ensures(tables.complete(), "D-Mod-K programmed every LFT entry");
  return tables;
}

std::vector<DmodkLevelDigits> dmodk_level_digits(const topo::PgftSpec& spec) {
  std::vector<DmodkLevelDigits> levels;
  levels.reserve(spec.height());
  for (std::uint32_t l = 1; l <= spec.height(); ++l) {
    DmodkLevelDigits d;
    d.block = spec.m_prefix_product(l);
    d.columns = spec.w_prefix_product(l);
    d.key_modulus = d.columns * spec.p(l);
    d.closed_form = d.key_modulus == spec.m_prefix_product(l - 1);
    levels.push_back(d);
  }
  return levels;
}

}  // namespace ftcf::route
