#include "routing/trace.hpp"

#include "util/expects.hpp"

namespace ftcf::route {

using topo::Fabric;
using util::ensures;
using util::expects;

std::uint32_t host_up_port(const Fabric& fabric, std::uint64_t src,
                           std::uint64_t dest) {
  const topo::Node& host = fabric.node(fabric.host_node(src));
  if (host.num_up_ports == 1) return 0;
  return static_cast<std::uint32_t>(dest % host.num_up_ports);
}

std::vector<topo::PortId> trace_route(const Fabric& fabric,
                                      const ForwardingTables& tables,
                                      std::uint64_t src, std::uint64_t dst) {
  expects(src < fabric.num_hosts() && dst < fabric.num_hosts(),
          "trace endpoints must be valid hosts");
  std::vector<topo::PortId> links;
  if (src == dst) return links;

  const topo::NodeId dst_node = fabric.host_node(dst);
  topo::NodeId at = fabric.host_node(src);
  std::uint32_t out_index =
      fabric.node(at).num_down_ports + host_up_port(fabric, src, dst);

  // A minimal fat-tree route has at most 2h+1 links; allow slack so that a
  // malformed table is reported as a loop, not an infinite walk.
  const std::size_t max_links = 2ull * fabric.height() + 2;
  while (true) {
    ensures(links.size() <= max_links, "forwarding tables loop");
    const topo::PortId out = fabric.port_id(at, out_index);
    links.push_back(out);
    const topo::PortId in = fabric.port(out).peer;
    at = fabric.port(in).node;
    if (at == dst_node) return links;
    ensures(fabric.node(at).kind == topo::NodeKind::kSwitch,
            "route crossed a foreign host");
    out_index = tables.out_port(at, dst);
  }
}

std::size_t route_hops(const Fabric& fabric, const ForwardingTables& tables,
                       std::uint64_t src, std::uint64_t dst) {
  const auto links = trace_route(fabric, tables, src, dst);
  return links.empty() ? 0 : links.size() - 1;
}

}  // namespace ftcf::route
