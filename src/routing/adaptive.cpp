#include "routing/adaptive.hpp"

#include <algorithm>

namespace ftcf::route {

using topo::Fabric;
using topo::NodeId;

std::uint32_t adaptive_candidates(const Fabric& fabric,
                                  const ForwardingTables& tables, NodeId sw,
                                  std::uint64_t dest,
                                  std::vector<std::uint32_t>& out) {
  out.clear();
  if (fabric.is_ancestor_of_host(sw, dest)) {
    if (tables.has_entry(sw, dest)) out.push_back(tables.out_port(sw, dest));
  } else {
    const topo::Node& node = fabric.node(sw);
    out.reserve(node.num_up_ports);
    for (std::uint32_t q = 0; q < node.num_up_ports; ++q)
      out.push_back(node.num_down_ports + q);
  }
  return static_cast<std::uint32_t>(out.size());
}

AdaptiveRelationStats adaptive_relation_stats(const Fabric& fabric,
                                              const ForwardingTables& tables) {
  AdaptiveRelationStats stats;
  std::vector<std::uint32_t> candidates;
  const std::uint64_t n = fabric.num_hosts();
  for (const NodeId sw : fabric.switch_ids()) {
    for (std::uint64_t d = 0; d < n; ++d) {
      const std::uint32_t fanout =
          adaptive_candidates(fabric, tables, sw, d, candidates);
      if (fanout == 0) continue;
      ++stats.pairs;
      stats.candidates += fanout;
      stats.max_fanout = std::max(stats.max_fanout, fanout);
    }
  }
  return stats;
}

}  // namespace ftcf::route
