#include "routing/degraded.hpp"

#include <algorithm>

#include "obs/profile.hpp"
#include "routing/dmodk.hpp"
#include "util/expects.hpp"

namespace ftcf::route {

using fault::FaultState;
using fault::LinkHealth;
using topo::Fabric;
using topo::NodeId;
using topo::PgftSpec;
using topo::PortId;
using util::expects;

std::uint32_t pristine_dmodk_port(const Fabric& fabric, NodeId sw,
                                  std::uint64_t dest) {
  const PgftSpec& spec = fabric.spec();
  const topo::Node& node = fabric.node(sw);
  const std::uint32_t l = node.level;
  if (fabric.is_ancestor_of_host(sw, dest)) {
    const std::uint32_t child_col = fabric.host_digit(dest, l);
    return child_col + DModKRouter::down_rail_formula(spec, l, dest) * spec.m(l);
  }
  return node.num_down_ports + DModKRouter::up_port_formula(spec, l, dest);
}

DestinationRouter::DestinationRouter(const Fabric& fabric, LinkHealth health)
    : fabric_(&fabric), health_(health), viable_(fabric.num_nodes(), 0) {}

/// Per-destination viability of every switch on the degraded graph:
/// viable[sw] == packets for `dest` sitting at `sw` can still be delivered.
/// For ancestors of dest this is down-viability (the unique descent works);
/// for non-ancestors it is "some surviving up-link reaches a viable parent".
void DestinationRouter::sweep(std::uint64_t dest) {
  std::fill(viable_.begin(), viable_.end(), 0);
  const PgftSpec& spec = fabric_->spec();
  // Ancestors, bottom-up: descent through the unique child subtree.
  for (std::uint32_t l = 1; l <= fabric_->height(); ++l) {
    for (std::uint64_t o = 0; o < fabric_->switches_at_level(l); ++o) {
      const NodeId sw = fabric_->switch_node(l, o);
      if (!health_.node_up(sw)) continue;
      if (!fabric_->is_ancestor_of_host(sw, dest)) continue;
      const std::uint32_t child_col = fabric_->host_digit(dest, l);
      for (std::uint32_t k = 0; k < spec.p(l); ++k) {
        const PortId down = fabric_->port_id(sw, child_col + k * spec.m(l));
        if (!health_.link_up(down)) continue;
        const NodeId child = fabric_->port(fabric_->port(down).peer).node;
        if (!health_.node_up(child)) break;  // same child on every rail
        if (l > 1 && !viable_[child]) break;
        viable_[sw] = 1;
        break;
      }
    }
  }
  // Non-ancestors, top-down: any surviving up-link to a viable parent.
  for (std::uint32_t l = fabric_->height(); l-- > 1;) {
    for (std::uint64_t o = 0; o < fabric_->switches_at_level(l); ++o) {
      const NodeId sw = fabric_->switch_node(l, o);
      if (!health_.node_up(sw)) continue;
      if (fabric_->is_ancestor_of_host(sw, dest)) continue;
      const topo::Node& node = fabric_->node(sw);
      for (std::uint32_t q = 0; q < node.num_up_ports; ++q) {
        const PortId up = fabric_->port_id(sw, node.num_down_ports + q);
        if (!health_.link_up(up)) continue;
        const NodeId parent = fabric_->port(fabric_->port(up).peer).node;
        if (health_.node_up(parent) && viable_[parent]) {
          viable_[sw] = 1;
          break;
        }
      }
    }
  }
}

DestStats DestinationRouter::route(std::uint64_t dest,
                                   ForwardingTables& tables) {
  sweep(dest);
  const PgftSpec& spec = fabric_->spec();
  const bool dest_up = health_.host_up(dest);
  DestStats out;

  for (const NodeId sw : fabric_->switch_ids()) {
    tables.clear_entry(sw, dest);
    if (!health_.node_up(sw)) continue;
    const topo::Node& node = fabric_->node(sw);
    const std::uint32_t l = node.level;
    std::uint32_t chosen = kUnroutedPort;
    std::uint32_t pristine = kUnroutedPort;

    if (fabric_->is_ancestor_of_host(sw, dest)) {
      // Down: the child subtree is fixed; fall back across parallel rails.
      const std::uint32_t child_col = fabric_->host_digit(dest, l);
      const std::uint32_t p = spec.p(l);
      const std::uint32_t r0 = DModKRouter::down_rail_formula(spec, l, dest);
      pristine = child_col + r0 * spec.m(l);
      for (std::uint32_t i = 0; i < p && chosen == kUnroutedPort; ++i) {
        const std::uint32_t rail = (r0 + i) % p;
        const std::uint32_t port = child_col + rail * spec.m(l);
        const PortId down = fabric_->port_id(sw, port);
        if (!health_.link_up(down)) continue;
        const NodeId child = fabric_->port(fabric_->port(down).peer).node;
        if (!health_.node_up(child)) break;
        if (l == 1) {
          if (!dest_up) break;
        } else if (!viable_[child]) {
          break;
        }
        chosen = port;
      }
    } else {
      // Up: next surviving parallel rail of the same parent, then the
      // next parent group — the least disruptive deviation first.
      const std::uint32_t w = spec.w(l + 1);
      const std::uint32_t p = spec.p(l + 1);
      const std::uint32_t q0 = DModKRouter::up_port_formula(spec, l, dest);
      pristine = node.num_down_ports + q0;
      const std::uint32_t b0 = q0 % w;
      const std::uint32_t k0 = q0 / w;
      for (std::uint32_t g = 0; g < w && chosen == kUnroutedPort; ++g) {
        const std::uint32_t b = (b0 + g) % w;
        for (std::uint32_t r = 0; r < p; ++r) {
          const std::uint32_t k = (k0 + r) % p;
          const std::uint32_t q = b + k * w;
          const PortId up = fabric_->port_id(sw, node.num_down_ports + q);
          if (!health_.link_up(up)) continue;
          const NodeId parent = fabric_->port(fabric_->port(up).peer).node;
          if (!health_.node_up(parent) || !viable_[parent]) continue;
          chosen = node.num_down_ports + q;
          break;
        }
      }
    }

    if (chosen == kUnroutedPort) {
      ++out.unrouted;
      continue;
    }
    tables.set_out_port(sw, dest, chosen);
    ++out.programmed;
    if (chosen != pristine) ++out.rerouted;
    out.reachable = true;
  }
  return out;
}

ForwardingTables compute_degraded_dmodk(const Fabric& fabric,
                                        const LinkHealth& health,
                                        DegradedStats* stats) {
  ForwardingTables tables(fabric);
  DegradedStats local;
  DestinationRouter router(fabric, health);

  for (std::uint64_t dest = 0; dest < fabric.num_hosts(); ++dest) {
    const DestStats ds = router.route(dest, tables);
    local.entries_programmed += ds.programmed;
    local.entries_rerouted += ds.rerouted;
    local.entries_unrouted += ds.unrouted;
    if (!ds.reachable) ++local.unreachable_hosts;
  }

  if (stats != nullptr) *stats = local;
  return tables;
}

ForwardingTables compute_degraded_dmodk(const FaultState& state,
                                        DegradedStats* stats) {
  FTCF_PROF_SCOPE("dmodk_degraded_build");
  return compute_degraded_dmodk(state.fabric(), state.health(), stats);
}

ForwardingTables DegradedDModKRouter::compute(const Fabric& fabric) const {
  expects(&fabric == &state_->fabric(),
          "degraded router used with a foreign fabric");
  return compute_degraded_dmodk(*state_);
}

}  // namespace ftcf::route
