// Forwarding-table dump I/O, in the spirit of OpenSM's `ibroute` /
// dump_lfts output: one block per switch listing destination -> port.
//
//   switch S1_0
//   0 : 0
//   1 : 1
//   ...
//
// Dumps let the computed tables be diffed against a production subnet
// manager's, and re-imported to drive analysis/simulation of tables that
// came from elsewhere.
#pragma once

#include <iosfwd>
#include <string>

#include "routing/lft.hpp"

namespace ftcf::route {

/// Write every switch's table.
void write_lfts(const topo::Fabric& fabric, const ForwardingTables& tables,
                std::ostream& os);

[[nodiscard]] std::string to_lft_string(const topo::Fabric& fabric,
                                        const ForwardingTables& tables);

/// Parse a dump back into tables for `fabric`. Unknown switch names and bad
/// ports throw util::ParseError / util::SpecError; so do incomplete tables
/// unless `require_complete` is false (degraded dumps legitimately omit
/// unrouted entries — the static analyzer reads them back for audit).
[[nodiscard]] ForwardingTables read_lfts(const topo::Fabric& fabric,
                                         std::istream& is,
                                         bool require_complete = true);

[[nodiscard]] ForwardingTables from_lft_string(const topo::Fabric& fabric,
                                               const std::string& text,
                                               bool require_complete = true);

}  // namespace ftcf::route
