// Forwarding-table dump I/O, in the spirit of OpenSM's `ibroute` /
// dump_lfts output: one block per switch listing destination -> port.
//
//   switch S1_0
//   0 : 0
//   1 : 1
//   ...
//
// Dumps let the computed tables be diffed against a production subnet
// manager's, and re-imported to drive analysis/simulation of tables that
// came from elsewhere.
#pragma once

#include <iosfwd>
#include <string>

#include "routing/lft.hpp"

namespace ftcf::route {

/// Write every switch's table.
void write_lfts(const topo::Fabric& fabric, const ForwardingTables& tables,
                std::ostream& os);

[[nodiscard]] std::string to_lft_string(const topo::Fabric& fabric,
                                        const ForwardingTables& tables);

/// Parse a dump back into tables for `fabric`. Unknown switch names, bad
/// ports or incomplete tables throw util::ParseError / util::SpecError.
[[nodiscard]] ForwardingTables read_lfts(const topo::Fabric& fabric,
                                         std::istream& is);

[[nodiscard]] ForwardingTables from_lft_string(const topo::Fabric& fabric,
                                               const std::string& text);

}  // namespace ftcf::route
