// The minimal-path adaptive routing *relation* over a PGFT.
//
// The packet simulator's adaptive mode (sim::UpSelection::kAdaptive) keeps
// descents deterministic — once a switch is an ancestor of the destination
// the LFT entry decides the out-port — but lets the ascent pick *any* up
// port. Deadlock analysis of that mode therefore cannot look at one
// forwarding function: it must consider the whole relation of out-ports a
// packet may legally take at each (switch, destination). This header exposes
// exactly that relation, with semantics mirroring the engine
// (sim/engine_core.cpp) so the static proof covers what the simulator does:
//   * ancestor of the destination: the single LFT entry (whatever it is —
//     degraded or hand-edited tables may point anywhere);
//   * not an ancestor: every up port, regardless of the tables;
//   * ancestor with no programmed entry: no candidates (the engine drops or
//     parks such heads; they forward nowhere).
#pragma once

#include <cstdint>
#include <vector>

#include "routing/lft.hpp"

namespace ftcf::route {

/// Append the out-port indices (on `sw`) a packet for host `dest` may leave
/// through under adaptive minimal routing. `out` is cleared first; candidates
/// are ascending. Returns the number of candidates.
std::uint32_t adaptive_candidates(const topo::Fabric& fabric,
                                  const ForwardingTables& tables,
                                  topo::NodeId sw, std::uint64_t dest,
                                  std::vector<std::uint32_t>& out);

/// Aggregate size of the relation — how much wider it is than a function.
struct AdaptiveRelationStats {
  std::uint64_t pairs = 0;       ///< (switch, dest) pairs with >= 1 candidate
  std::uint64_t candidates = 0;  ///< total out-port candidates over all pairs
  std::uint32_t max_fanout = 0;  ///< widest single (switch, dest) choice
};

[[nodiscard]] AdaptiveRelationStats adaptive_relation_stats(
    const topo::Fabric& fabric, const ForwardingTables& tables);

}  // namespace ftcf::route
