#include "routing/baselines.hpp"

#include <vector>

#include "obs/profile.hpp"
#include "util/expects.hpp"
#include "util/rng.hpp"

namespace ftcf::route {

using topo::Fabric;
using topo::PgftSpec;

namespace {

/// Program the down-going direction shared by every minimal fat-tree router:
/// at an ancestor switch, descend into the unique child subtree holding j.
/// `rail(sw, level, j)` selects among the p_l parallel links.
template <typename RailFn>
void program_down(const Fabric& fabric, ForwardingTables& tables,
                  RailFn&& rail) {
  const PgftSpec& spec = fabric.spec();
  for (const topo::NodeId sw : fabric.switch_ids()) {
    const topo::Node& node = fabric.node(sw);
    for (std::uint64_t j = 0; j < fabric.num_hosts(); ++j) {
      if (!fabric.is_ancestor_of_host(sw, j)) continue;
      const std::uint32_t child = fabric.host_digit(j, node.level);
      const std::uint32_t k = rail(sw, node.level, j);
      tables.set_out_port(sw, j, child + k * spec.m(node.level));
    }
  }
}

}  // namespace

ForwardingTables UpDownMinHopRouter::compute(const Fabric& fabric) const {
  FTCF_PROF_SCOPE("updown_build");
  const PgftSpec& spec = fabric.spec();
  ForwardingTables tables(fabric);

  program_down(fabric, tables,
               [&](topo::NodeId, std::uint32_t level, std::uint64_t j) {
                 // Balance parallel rails round-robin over destinations.
                 return static_cast<std::uint32_t>(j % spec.p(level));
               });

  // Up: greedy least-loaded candidate, in destination id order. Every
  // up-going port is on a minimal route, so all are candidates.
  std::vector<std::uint32_t> load;
  for (const topo::NodeId sw : fabric.switch_ids()) {
    const topo::Node& node = fabric.node(sw);
    if (node.num_up_ports == 0) continue;
    load.assign(node.num_up_ports, 0);
    for (std::uint64_t j = 0; j < fabric.num_hosts(); ++j) {
      if (fabric.is_ancestor_of_host(sw, j)) continue;
      std::uint32_t best = 0;
      for (std::uint32_t q = 1; q < node.num_up_ports; ++q)
        if (load[q] < load[best]) best = q;
      ++load[best];
      tables.set_out_port(sw, j, node.num_down_ports + best);
    }
  }
  util::ensures(tables.complete(), "up/down router programmed every entry");
  return tables;
}

ForwardingTables RandomRouter::compute(const Fabric& fabric) const {
  FTCF_PROF_SCOPE("random_build");
  const PgftSpec& spec = fabric.spec();
  ForwardingTables tables(fabric);
  const auto pick = [this](topo::NodeId sw, std::uint64_t j,
                           std::uint32_t choices) {
    util::SplitMix64 mixer(seed_ ^ (static_cast<std::uint64_t>(sw) << 32) ^ j);
    return static_cast<std::uint32_t>(mixer.next() % choices);
  };

  program_down(fabric, tables,
               [&](topo::NodeId sw, std::uint32_t level, std::uint64_t j) {
                 return pick(sw, j, spec.p(level));
               });
  for (const topo::NodeId sw : fabric.switch_ids()) {
    const topo::Node& node = fabric.node(sw);
    if (node.num_up_ports == 0) continue;
    for (std::uint64_t j = 0; j < fabric.num_hosts(); ++j) {
      if (fabric.is_ancestor_of_host(sw, j)) continue;
      tables.set_out_port(sw, j,
                          node.num_down_ports + pick(sw, j, node.num_up_ports));
    }
  }
  util::ensures(tables.complete(), "random router programmed every entry");
  return tables;
}

}  // namespace ftcf::route
