// Routing validation: reachability of every (src, dst) pair and the up*/down*
// property (a route never turns upward after its first descent), which is
// what makes fat-tree deterministic routing deadlock-free.
//
// Two entry points:
//   * validate_routing — the historical audit for complete tables; any
//     failure (including a missing entry) is a problem.
//   * validate_lft — usable on ANY tables, including degraded ones with
//     unprogrammed entries: unreachable destinations come back as typed
//     (src, dst) pairs instead of exceptions, while loops, diversions,
//     up-after-down turns and routes crossing dead links remain problems.
#pragma once

#include <optional>

#include "fault/degraded.hpp"
#include "routing/trace.hpp"
#include "topology/validate.hpp"

namespace ftcf::route {

/// Audit the tables. For fabrics above `exhaustive_limit` hosts, (src, dst)
/// pairs are sampled deterministically instead of enumerated.
topo::ValidationReport validate_routing(const topo::Fabric& fabric,
                                        const ForwardingTables& tables,
                                        std::uint64_t exhaustive_limit = 512);

/// Outcome of walking one (src, dst) pair through the tables.
enum class RouteStatus : std::uint8_t {
  kOk,           ///< delivered, up*/down*
  kUnrouted,     ///< hit an unprogrammed LFT entry (typed unreachability)
  kLoop,         ///< exceeded the maximal fat-tree route length
  kForeignHost,  ///< delivered to the wrong host
  kNotUpDown,    ///< turned upward after descending (deadlock hazard)
  kDeadLink,     ///< crossed a statically-down link or dead node
};

[[nodiscard]] const char* route_status_name(RouteStatus status) noexcept;

struct RouteWalk {
  RouteStatus status = RouteStatus::kOk;
  std::vector<topo::PortId> links;  ///< links walked (up to the failure)
};

/// Non-throwing route walk: follows the tables from src towards dst and
/// classifies the outcome. With `faults`, additionally flags routes that
/// cross statically-down links or dead switches.
[[nodiscard]] RouteWalk walk_route(const topo::Fabric& fabric,
                                   const ForwardingTables& tables,
                                   std::uint64_t src, std::uint64_t dst,
                                   const fault::FaultState* faults = nullptr);

/// Externally-computed channel-dependency-graph verdict (produced by
/// check::analyze_cdg) that validate_lft cross-checks against its walks:
/// the walk audit samples (src, dst) pairs, the CDG covers every programmed
/// entry, and the two must never contradict each other.
struct CdgVerdict {
  bool acyclic = true;               ///< no dependency cycle: deadlock-free
  std::uint64_t down_up_turns = 0;   ///< dependencies turning up after down
  /// Virtual lanes the verdict was established over: 1 = the classic
  /// single-lane CDG; > 1 = `acyclic` means every lane's restricted graph is
  /// acyclic under a destination-based assignment (check::analyze_cdg_per_vl)
  /// with `down_up_turns` summed across lanes — the walk cross-check
  /// invariant (a bad walk turn implies a down->up dependency in the lane of
  /// the walk's destination) holds for any lane count.
  std::uint32_t lanes = 1;
};

/// Full reachability + deadlock-freedom audit of possibly-degraded tables.
struct LftAudit {
  std::uint64_t pairs_checked = 0;
  std::uint64_t pairs_reachable = 0;
  /// Walks that turned upward after descending (kNotUpDown outcomes).
  std::uint64_t not_updown_routes = 0;
  /// Surviving pairs whose walk hit an unprogrammed entry. Typed data, not
  /// an error: degraded fabrics legitimately strand host pairs.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> unreachable;
  /// Hard routing bugs: loops, diversions, up-after-down, dead-link usage.
  std::vector<std::string> problems;
  /// Set when a CdgVerdict was supplied: true = deadlock-freedom proved.
  std::optional<bool> deadlock_free;
  /// Walks hit an up-after-down turn the CDG claims cannot exist — an
  /// internal inconsistency between the two analyses.
  bool cdg_mismatch = false;

  /// No loops/diversions/up-after-down/dead links (unreachable pairs OK),
  /// and the CDG — when consulted — proved deadlock-freedom.
  [[nodiscard]] bool clean() const noexcept {
    return problems.empty() && deadlock_free.value_or(true);
  }
  /// clean() and every checked pair delivered.
  [[nodiscard]] bool all_reachable() const noexcept {
    return clean() && unreachable.empty();
  }
  /// First problem for one-line reports; synthesizes the CDG verdict when
  /// the walks themselves were clean. Empty when clean().
  [[nodiscard]] std::string first_problem() const;
};

/// Walk every ordered pair of surviving hosts (all hosts when `faults` is
/// null). Pairs are sampled deterministically above `exhaustive_limit`
/// hosts, like validate_routing. With `cdg`, the graph-based verdict is
/// folded in: a dependency cycle fails the audit even when no sampled walk
/// exposes it, and walk/CDG contradictions are reported as problems.
[[nodiscard]] LftAudit validate_lft(const topo::Fabric& fabric,
                                    const ForwardingTables& tables,
                                    const fault::FaultState* faults = nullptr,
                                    std::uint64_t exhaustive_limit = 512,
                                    const CdgVerdict* cdg = nullptr);

}  // namespace ftcf::route
