// Routing validation: reachability of every (src, dst) pair and the up*/down*
// property (a route never turns upward after its first descent), which is
// what makes fat-tree deterministic routing deadlock-free.
#pragma once

#include "routing/trace.hpp"
#include "topology/validate.hpp"

namespace ftcf::route {

/// Audit the tables. For fabrics above `exhaustive_limit` hosts, (src, dst)
/// pairs are sampled deterministically instead of enumerated.
topo::ValidationReport validate_routing(const topo::Fabric& fabric,
                                        const ForwardingTables& tables,
                                        std::uint64_t exhaustive_limit = 512);

}  // namespace ftcf::route
