// Linear Forwarding Tables, as programmed into InfiniBand switches by a
// subnet manager: for every switch, a dense map destination-host -> out-port.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/fabric.hpp"

namespace ftcf::route {

/// Forwarding state for one fabric. Indexed by switch NodeId and destination
/// host index; the stored value is a port index *within the switch*.
class ForwardingTables {
 public:
  explicit ForwardingTables(const topo::Fabric& fabric);

  /// Out-port index of `sw` towards destination host j. Switches never
  /// forward towards hosts that are unreachable, so this is total.
  [[nodiscard]] std::uint32_t out_port(topo::NodeId sw, std::uint64_t dest) const;

  void set_out_port(topo::NodeId sw, std::uint64_t dest, std::uint32_t port);

  /// True when the (switch, destination) entry has been programmed.
  [[nodiscard]] bool has_entry(topo::NodeId sw, std::uint64_t dest) const;

  /// Revert the (switch, destination) entry to unprogrammed. The repair
  /// engine uses this when a path component dies out from under an entry.
  void clear_entry(topo::NodeId sw, std::uint64_t dest);

  /// Entry-wise equality over the same fabric — the incremental-repair
  /// differential oracle's definition of "identical tables".
  friend bool operator==(const ForwardingTables& a, const ForwardingTables& b) {
    return a.table_ == b.table_;
  }

  [[nodiscard]] const topo::Fabric& fabric() const noexcept { return *fabric_; }

  /// True once every (switch, destination) entry has been programmed.
  [[nodiscard]] bool complete() const noexcept;

 private:
  [[nodiscard]] std::size_t slot(topo::NodeId sw, std::uint64_t dest) const;

  const topo::Fabric* fabric_;
  std::uint64_t num_hosts_;
  topo::NodeId first_switch_;
  std::vector<std::uint32_t> table_;  ///< [switch-ordinal * N + dest]
};

inline constexpr std::uint32_t kUnroutedPort = static_cast<std::uint32_t>(-1);

}  // namespace ftcf::route
