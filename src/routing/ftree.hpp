// OpenSM-style "ftree" routing: the engineering form of D-Mod-K that
// InfiniBand subnet managers actually run (the paper's routing was adopted
// into OpenSM's ftree/updn engines; ref. [22]).
//
// Instead of evaluating Eq. (1) per (switch, destination), the SM walks the
// tree once per destination: starting from the destination's leaf it
// ascends, at each switch assigning the *least-loaded* up-going port to the
// destination's downward route (counters per port), then programs all other
// switches to forward towards that chosen core. Destinations are processed
// in host-index order.
//
// On complete RLFTs this greedy counter walk reproduces the closed-form
// D-Mod-K tables exactly (tested), which is why the closed form describes
// deployed behaviour; on irregular fabrics the greedy form still yields
// balanced tables where the formula has no meaning.
#pragma once

#include "routing/router.hpp"

namespace ftcf::route {

class FtreeRouter final : public Router {
 public:
  [[nodiscard]] std::string name() const override { return "ftree"; }
  [[nodiscard]] ForwardingTables compute(
      const topo::Fabric& fabric) const override;
};

}  // namespace ftcf::route
