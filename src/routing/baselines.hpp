// Baseline (collective-oblivious) routers the paper's §II degradations arise
// under. Both produce valid minimal up*/down* fat-tree routes; they differ
// only in how they pick among the equally-short up-going candidates:
//
//  * UpDownMinHopRouter — greedy per-switch load balancing over destination
//    ids, like OpenSM's min-hop port balancing: for each destination in id
//    order pick the candidate up-port with the fewest destinations already
//    assigned (lowest index on ties).
//  * RandomRouter — a deterministic hash of (seed, switch, destination)
//    picks the up-port; models arbitrary deterministic routing with no
//    structure ("random ranking" simulations of §II).
#pragma once

#include <cstdint>

#include "routing/router.hpp"

namespace ftcf::route {

class UpDownMinHopRouter final : public Router {
 public:
  [[nodiscard]] std::string name() const override { return "updown"; }
  [[nodiscard]] ForwardingTables compute(
      const topo::Fabric& fabric) const override;
};

class RandomRouter final : public Router {
 public:
  explicit RandomRouter(std::uint64_t seed) : seed_(seed) {}
  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] ForwardingTables compute(
      const topo::Fabric& fabric) const override;

 private:
  std::uint64_t seed_;
};

}  // namespace ftcf::route
