#include "routing/lft_io.hpp"

#include <map>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace ftcf::route {

using util::ParseError;
using util::SpecError;

void write_lfts(const topo::Fabric& fabric, const ForwardingTables& tables,
                std::ostream& os) {
  os << "# ftcf forwarding tables (dest : out-port per switch)\n";
  for (const topo::NodeId sw : fabric.switch_ids()) {
    os << "switch " << fabric.node_name(sw) << '\n';
    // Unprogrammed entries (degraded tables) are simply omitted; complete
    // tables emit every destination.
    for (std::uint64_t d = 0; d < fabric.num_hosts(); ++d)
      if (tables.has_entry(sw, d)) os << d << " : " << tables.out_port(sw, d) << '\n';
  }
}

std::string to_lft_string(const topo::Fabric& fabric,
                          const ForwardingTables& tables) {
  std::ostringstream oss;
  write_lfts(fabric, tables, oss);
  return oss.str();
}

ForwardingTables read_lfts(const topo::Fabric& fabric, std::istream& is,
                           bool require_complete) {
  std::map<std::string, topo::NodeId> by_name;
  for (const topo::NodeId sw : fabric.switch_ids())
    by_name[fabric.node_name(sw)] = sw;

  ForwardingTables tables(fabric);
  topo::NodeId current = topo::kInvalidNode;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;

    if (first == "switch") {
      std::string name;
      if (!(ls >> name))
        throw ParseError("line " + std::to_string(lineno) +
                         ": switch needs a name");
      const auto it = by_name.find(name);
      if (it == by_name.end())
        throw SpecError("LFT dump names unknown switch '" + name + "'");
      current = it->second;
      continue;
    }

    if (current == topo::kInvalidNode)
      throw ParseError("line " + std::to_string(lineno) +
                       ": table entry before any 'switch' header");
    const auto dest = util::parse_u64(first);
    if (!dest)
      throw ParseError("line " + std::to_string(lineno) +
                       ": expected a destination number, got '" + first + "'");
    std::string colon, port_tok;
    if (!(ls >> colon >> port_tok) || colon != ":")
      throw ParseError("line " + std::to_string(lineno) +
                       ": expected 'DEST : PORT'");
    const auto port = util::parse_u32(port_tok);
    if (!port)
      throw ParseError("line " + std::to_string(lineno) +
                       ": expected an out-port number, got '" + port_tok + "'");
    if (*dest >= fabric.num_hosts())
      throw SpecError("line " + std::to_string(lineno) +
                      ": destination out of range");
    const topo::Node& sw = fabric.node(current);
    if (*port >= sw.num_down_ports + sw.num_up_ports)
      throw SpecError("line " + std::to_string(lineno) + ": out-port " +
                      port_tok + " exceeds the switch's " +
                      std::to_string(sw.num_down_ports + sw.num_up_ports) +
                      " ports");
    tables.set_out_port(current, *dest, *port);
  }
  if (require_complete && !tables.complete())
    throw SpecError("LFT dump does not cover every (switch, destination)");
  return tables;
}

ForwardingTables from_lft_string(const topo::Fabric& fabric,
                                 const std::string& text,
                                 bool require_complete) {
  std::istringstream iss(text);
  return read_lfts(fabric, iss, require_complete);
}

}  // namespace ftcf::route
