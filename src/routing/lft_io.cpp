#include "routing/lft_io.hpp"

#include <map>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace ftcf::route {

using util::ParseError;
using util::SpecError;

void write_lfts(const topo::Fabric& fabric, const ForwardingTables& tables,
                std::ostream& os) {
  os << "# ftcf forwarding tables (dest : out-port per switch)\n";
  for (const topo::NodeId sw : fabric.switch_ids()) {
    os << "switch " << fabric.node_name(sw) << '\n';
    for (std::uint64_t d = 0; d < fabric.num_hosts(); ++d)
      os << d << " : " << tables.out_port(sw, d) << '\n';
  }
}

std::string to_lft_string(const topo::Fabric& fabric,
                          const ForwardingTables& tables) {
  std::ostringstream oss;
  write_lfts(fabric, tables, oss);
  return oss.str();
}

ForwardingTables read_lfts(const topo::Fabric& fabric, std::istream& is) {
  std::map<std::string, topo::NodeId> by_name;
  for (const topo::NodeId sw : fabric.switch_ids())
    by_name[fabric.node_name(sw)] = sw;

  ForwardingTables tables(fabric);
  topo::NodeId current = topo::kInvalidNode;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;

    if (first == "switch") {
      std::string name;
      if (!(ls >> name))
        throw ParseError("line " + std::to_string(lineno) +
                         ": switch needs a name");
      const auto it = by_name.find(name);
      if (it == by_name.end())
        throw SpecError("LFT dump names unknown switch '" + name + "'");
      current = it->second;
      continue;
    }

    if (current == topo::kInvalidNode)
      throw ParseError("line " + std::to_string(lineno) +
                       ": table entry before any 'switch' header");
    std::uint64_t dest = 0;
    std::string colon;
    std::uint32_t port = 0;
    try {
      dest = std::stoull(first);
    } catch (const std::exception&) {
      throw ParseError("line " + std::to_string(lineno) +
                       ": expected a destination number, got '" + first + "'");
    }
    if (!(ls >> colon >> port) || colon != ":")
      throw ParseError("line " + std::to_string(lineno) +
                       ": expected 'DEST : PORT'");
    if (dest >= fabric.num_hosts())
      throw SpecError("line " + std::to_string(lineno) +
                      ": destination out of range");
    tables.set_out_port(current, dest, port);
  }
  if (!tables.complete())
    throw SpecError("LFT dump does not cover every (switch, destination)");
  return tables;
}

ForwardingTables from_lft_string(const topo::Fabric& fabric,
                                 const std::string& text) {
  std::istringstream iss(text);
  return read_lfts(fabric, iss);
}

}  // namespace ftcf::route
