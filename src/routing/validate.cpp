#include "routing/validate.hpp"

#include <sstream>

namespace ftcf::route {

using topo::Fabric;
using topo::ValidationReport;

namespace {

void check_pair(const Fabric& fabric, const ForwardingTables& tables,
                std::uint64_t src, std::uint64_t dst,
                ValidationReport& report) {
  std::vector<topo::PortId> links;
  try {
    links = trace_route(fabric, tables, src, dst);
  } catch (const std::exception& ex) {
    std::ostringstream oss;
    oss << "route " << src << " -> " << dst << " failed: " << ex.what();
    report.fail(oss.str());
    return;
  }
  // up*/down*: once a link goes down (out of a down-going port), every later
  // link must also go down.
  bool descending = false;
  for (const topo::PortId pid : links) {
    const topo::Port& pt = fabric.port(pid);
    const topo::Node& n = fabric.node(pt.node);
    const bool up = pt.index >= n.num_down_ports;
    if (up && descending) {
      std::ostringstream oss;
      oss << "route " << src << " -> " << dst
          << " turns upward after descending (not up*/down*)";
      report.fail(oss.str());
      return;
    }
    if (!up) descending = true;
  }
}

}  // namespace

ValidationReport validate_routing(const Fabric& fabric,
                                  const ForwardingTables& tables,
                                  std::uint64_t exhaustive_limit) {
  ValidationReport report;
  const std::uint64_t n = fabric.num_hosts();
  if (n <= exhaustive_limit) {
    for (std::uint64_t s = 0; s < n; ++s)
      for (std::uint64_t d = 0; d < n; ++d)
        if (s != d) check_pair(fabric, tables, s, d, report);
    return report;
  }
  // Deterministic sample: every source against a strided set of
  // destinations, plus the full matrix for a strided set of sources.
  const std::uint64_t stride = n / 64 + 1;
  for (std::uint64_t s = 0; s < n; ++s)
    for (std::uint64_t d = s % stride; d < n; d += stride)
      if (s != d) check_pair(fabric, tables, s, d, report);
  return report;
}

}  // namespace ftcf::route
