#include "routing/validate.hpp"

#include <sstream>

#include "util/expects.hpp"

namespace ftcf::route {

using topo::Fabric;
using topo::ValidationReport;

namespace {

void check_pair(const Fabric& fabric, const ForwardingTables& tables,
                std::uint64_t src, std::uint64_t dst,
                ValidationReport& report) {
  std::vector<topo::PortId> links;
  try {
    links = trace_route(fabric, tables, src, dst);
  } catch (const std::exception& ex) {
    std::ostringstream oss;
    oss << "route " << src << " -> " << dst << " failed: " << ex.what();
    report.fail(oss.str());
    return;
  }
  // up*/down*: once a link goes down (out of a down-going port), every later
  // link must also go down.
  bool descending = false;
  for (const topo::PortId pid : links) {
    const topo::Port& pt = fabric.port(pid);
    const topo::Node& n = fabric.node(pt.node);
    const bool up = pt.index >= n.num_down_ports;
    if (up && descending) {
      std::ostringstream oss;
      oss << "route " << src << " -> " << dst
          << " turns upward after descending (not up*/down*)";
      report.fail(oss.str());
      return;
    }
    if (!up) descending = true;
  }
}

/// Apply `fn(src, dst)` over the pair set validate_routing uses: exhaustive
/// below the limit, the deterministic strided sample above it.
template <typename Fn>
void for_each_pair(std::uint64_t n, std::uint64_t exhaustive_limit, Fn&& fn) {
  if (n <= exhaustive_limit) {
    for (std::uint64_t s = 0; s < n; ++s)
      for (std::uint64_t d = 0; d < n; ++d)
        if (s != d) fn(s, d);
    return;
  }
  const std::uint64_t stride = n / 64 + 1;
  for (std::uint64_t s = 0; s < n; ++s)
    for (std::uint64_t d = s % stride; d < n; d += stride)
      if (s != d) fn(s, d);
}

}  // namespace

ValidationReport validate_routing(const Fabric& fabric,
                                  const ForwardingTables& tables,
                                  std::uint64_t exhaustive_limit) {
  ValidationReport report;
  for_each_pair(fabric.num_hosts(), exhaustive_limit,
                [&](std::uint64_t s, std::uint64_t d) {
                  check_pair(fabric, tables, s, d, report);
                });
  return report;
}

const char* route_status_name(RouteStatus status) noexcept {
  switch (status) {
    case RouteStatus::kOk: return "ok";
    case RouteStatus::kUnrouted: return "unrouted";
    case RouteStatus::kLoop: return "loop";
    case RouteStatus::kForeignHost: return "foreign-host";
    case RouteStatus::kNotUpDown: return "not-up-down";
    case RouteStatus::kDeadLink: return "dead-link";
  }
  return "?";
}

RouteWalk walk_route(const Fabric& fabric, const ForwardingTables& tables,
                     std::uint64_t src, std::uint64_t dst,
                     const fault::FaultState* faults) {
  util::expects(src < fabric.num_hosts() && dst < fabric.num_hosts(),
                "walk endpoints must be valid hosts");
  RouteWalk walk;
  if (src == dst) return walk;

  const topo::NodeId dst_node = fabric.host_node(dst);
  topo::NodeId at = fabric.host_node(src);
  std::uint32_t out_index =
      fabric.node(at).num_down_ports + host_up_port(fabric, src, dst);
  const std::size_t max_links = 2ull * fabric.height() + 2;
  bool descending = false;

  while (true) {
    if (walk.links.size() > max_links) {
      walk.status = RouteStatus::kLoop;
      return walk;
    }
    const topo::PortId out = fabric.port_id(at, out_index);
    walk.links.push_back(out);
    const bool up = out_index >= fabric.node(at).num_down_ports;
    if (up && descending) {
      walk.status = RouteStatus::kNotUpDown;
      return walk;
    }
    if (!up) descending = true;
    if (faults != nullptr &&
        (!faults->node_up(at) || !faults->link_up(out))) {
      walk.status = RouteStatus::kDeadLink;
      return walk;
    }
    at = fabric.port(fabric.port(out).peer).node;
    if (faults != nullptr && !faults->node_up(at)) {
      walk.status = RouteStatus::kDeadLink;
      return walk;
    }
    if (at == dst_node) return walk;  // kOk
    if (fabric.node(at).kind != topo::NodeKind::kSwitch) {
      walk.status = RouteStatus::kForeignHost;
      return walk;
    }
    if (!tables.has_entry(at, dst)) {
      walk.status = RouteStatus::kUnrouted;
      return walk;
    }
    out_index = tables.out_port(at, dst);
  }
}

std::string LftAudit::first_problem() const {
  if (!problems.empty()) return problems.front();
  if (deadlock_free.has_value() && !*deadlock_free)
    return "channel dependency graph contains a cycle (deadlock hazard)";
  return {};
}

LftAudit validate_lft(const Fabric& fabric, const ForwardingTables& tables,
                      const fault::FaultState* faults,
                      std::uint64_t exhaustive_limit, const CdgVerdict* cdg) {
  LftAudit audit;
  // With faults, restrict to surviving hosts: dead hosts cannot take part in
  // any collective, so their pairs carry no information.
  std::vector<std::uint64_t> hosts;
  if (faults != nullptr) {
    hosts = faults->surviving_hosts();
  } else {
    hosts.resize(fabric.num_hosts());
    for (std::uint64_t j = 0; j < hosts.size(); ++j) hosts[j] = j;
  }

  for_each_pair(hosts.size(), exhaustive_limit, [&](std::uint64_t si,
                                                    std::uint64_t di) {
    const std::uint64_t s = hosts[si];
    const std::uint64_t d = hosts[di];
    ++audit.pairs_checked;
    const RouteWalk walk = walk_route(fabric, tables, s, d, faults);
    switch (walk.status) {
      case RouteStatus::kOk:
        ++audit.pairs_reachable;
        break;
      case RouteStatus::kUnrouted:
        audit.unreachable.emplace_back(s, d);
        break;
      default: {
        if (walk.status == RouteStatus::kNotUpDown) ++audit.not_updown_routes;
        std::ostringstream oss;
        oss << "route " << s << " -> " << d << ": "
            << route_status_name(walk.status) << " after "
            << walk.links.size() << " link(s)";
        audit.problems.push_back(oss.str());
        break;
      }
    }
  });

  if (cdg != nullptr) {
    audit.deadlock_free = cdg->acyclic;
    // A walk that turns upward after descending traverses a down-going
    // channel followed by an up-going one at the same switch for the same
    // destination — exactly a down->up dependency. If the CDG claims none
    // exist, one of the two analyses is wrong.
    if (audit.not_updown_routes > 0 && cdg->down_up_turns == 0) {
      audit.cdg_mismatch = true;
      std::ostringstream oss;
      oss << "walk/CDG cross-check failed: " << audit.not_updown_routes
          << " up-after-down route(s) but the channel dependency graph "
             "reports no down->up dependency";
      audit.problems.push_back(oss.str());
    }
  }
  return audit;
}

}  // namespace ftcf::route
