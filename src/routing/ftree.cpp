#include "routing/ftree.hpp"

#include <limits>
#include <vector>

#include "obs/profile.hpp"
#include "util/expects.hpp"

namespace ftcf::route {

using topo::Fabric;
using topo::PgftSpec;

namespace {

/// Least-loaded index among `count` counters starting at `base`, preferring
/// the lowest index on ties (OpenSM behaviour).
std::uint32_t least_loaded(const std::vector<std::uint64_t>& counters,
                           std::size_t base, std::uint32_t count,
                           std::uint32_t stride = 1) {
  std::uint32_t best = 0;
  std::uint64_t best_load = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t load = counters[base + i * stride];
    if (load < best_load) {
      best_load = load;
      best = i;
    }
  }
  return best;
}

}  // namespace

ForwardingTables FtreeRouter::compute(const Fabric& fabric) const {
  FTCF_PROF_SCOPE("ftree_build");
  const PgftSpec& spec = fabric.spec();
  ForwardingTables tables(fabric);
  const std::uint64_t n = fabric.num_hosts();
  const std::uint32_t h = fabric.height();

  // Per-port usage counters (indexed by PortId); up- and down-going counters
  // are kept in the same array since port ids are globally unique.
  std::vector<std::uint64_t> counters(fabric.num_ports(), 0);

  // Digits of the peak (top-level) switch chosen for each destination; the
  // position-(l+1) digit tells every off-chain switch which parent column
  // leads towards the peak.
  std::vector<std::uint32_t> peak_digits(h);

  for (std::uint64_t j = 0; j < n; ++j) {
    // --- climb from the destination's leaf, least-loaded up-port first ---
    topo::NodeId at = fabric.leaf_switch_of_host(j);
    {
      // Leaf delivers j on the down port facing the host (rail 0: hosts are
      // single-cable in every fabric this router accepts).
      util::expects(spec.p(1) == 1 && spec.w(1) == 1,
                    "ftree router requires single-cable hosts");
      tables.set_out_port(at, j, fabric.host_digit(j, 1));
    }
    for (std::uint32_t l = 1; l < h; ++l) {
      const topo::Node& node = fabric.node(at);
      const std::uint32_t q = least_loaded(
          counters, node.first_port + node.num_down_ports, node.num_up_ports);
      const topo::PortId up = fabric.port_id(at, node.num_down_ports + q);
      ++counters[up];
      const topo::PortId down = fabric.port(up).peer;
      const topo::Node& parent = fabric.node(fabric.port(down).node);
      tables.set_out_port(fabric.port(down).node, j,
                          fabric.port(down).index);
      at = fabric.port(down).node;
      peak_digits[l] = parent.digits[l];  // position l+1 digit of the chain
    }

    // --- program every remaining switch towards the chain ---
    for (const topo::NodeId sw : fabric.switch_ids()) {
      const topo::Node& node = fabric.node(sw);
      if (fabric.is_ancestor_of_host(sw, j)) {
        // Descend into the unique child subtree holding j; pick the
        // least-loaded parallel rail. The leaf and the chain switches
        // already have entries (the climb chose their rails); keep those.
        if (tables.has_entry(sw, j)) continue;
        const std::uint32_t child = fabric.host_digit(j, node.level);
        const std::uint32_t rail =
            least_loaded(counters, node.first_port + child, spec.p(node.level),
                         spec.m(node.level));
        const std::uint32_t port = child + rail * spec.m(node.level);
        ++counters[fabric.port_id(sw, port)];
        tables.set_out_port(sw, j, port);
      } else {
        // Ascend towards the peak: parent column fixed by the chain digits,
        // parallel rail balanced by counters.
        const std::uint32_t w_up = spec.w(node.level + 1);
        const std::uint32_t p_up = spec.p(node.level + 1);
        const std::uint32_t column = peak_digits[node.level];
        const std::uint32_t rail = least_loaded(
            counters, node.first_port + node.num_down_ports + column, p_up,
            w_up);
        const std::uint32_t port =
            node.num_down_ports + column + rail * w_up;
        ++counters[fabric.port_id(sw, port)];
        tables.set_out_port(sw, j, port);
      }
    }
  }
  util::ensures(tables.complete(), "ftree programmed every LFT entry");
  return tables;
}

}  // namespace ftcf::route
