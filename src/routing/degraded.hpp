// Degraded-mode D-Mod-K routing: Eq. (1) with local re-route around faults.
//
// On a pristine fabric this reproduces DModKRouter exactly. With faults
// present, every up-port choice falls back from the closed-form port to the
// next surviving parallel rail of the same parent (k+1, k+2, ... mod p), then
// to the next parent group (b+1, b+2, ... mod w) — the cheapest deviation
// from the contention-free assignment first. Down-going choices keep the
// unique child subtree (a tree property, faults cannot change it) and fall
// back across the p parallel rails the same way.
//
// A candidate port is accepted only when its cable is up, its peer switch is
// alive, *and* the peer can still reach the destination (a per-destination
// viability sweep over the degraded graph) — so the tables never steer
// packets into a cul-de-sac. Destinations with no surviving path are left
// unprogrammed (route::kUnroutedPort) and reported as typed counts, never as
// crashes; route::validate_lft() surfaces them per pair.
//
// The chooser is exposed per destination (DestinationRouter) over the
// mutation-agnostic fault::LinkHealth view: full builds loop it over every
// destination, and route::IncrementalRepair re-runs it for exactly the
// destinations a fabric-churn event dirtied. Both paths execute the same
// code, which is what makes "incremental ≡ full recompute" a theorem about
// dirty-set soundness rather than a hope about duplicated logic.
#pragma once

#include "fault/degraded.hpp"
#include "routing/router.hpp"

namespace ftcf::route {

/// What the degraded table build did, for reports and tests.
struct DegradedStats {
  std::uint64_t entries_programmed = 0;
  std::uint64_t entries_rerouted = 0;   ///< differ from pristine D-Mod-K
  std::uint64_t entries_unrouted = 0;   ///< no surviving path (alive switches)
  std::uint64_t unreachable_hosts = 0;  ///< hosts no alive switch can reach
};

/// One destination's slice of DegradedStats: what the chooser did across all
/// alive switches for that destination column.
struct DestStats {
  std::uint32_t programmed = 0;
  std::uint32_t rerouted = 0;
  std::uint32_t unrouted = 0;
  bool reachable = false;  ///< some alive switch can deliver to this host
};

/// The pristine D-Mod-K out-port of `sw` towards `dest` (the closed forms of
/// Eq. (1)); what the chooser would program on a fault-free fabric, and the
/// yardstick "rerouted" is measured against.
[[nodiscard]] std::uint32_t pristine_dmodk_port(const topo::Fabric& fabric,
                                                topo::NodeId sw,
                                                std::uint64_t dest);

/// The degraded chooser for one destination at a time. Holds the viability
/// scratch, so one instance per worker thread; distinct destinations write
/// disjoint LFT columns and may be routed concurrently.
class DestinationRouter {
 public:
  DestinationRouter(const topo::Fabric& fabric, fault::LinkHealth health);

  /// Clear destination `dest`'s column (every switch, dead or alive) and
  /// re-program it against the current health view. Returns what happened.
  DestStats route(std::uint64_t dest, ForwardingTables& tables);

 private:
  void sweep(std::uint64_t dest);
  [[nodiscard]] bool viable(topo::NodeId sw) const { return viable_[sw] != 0; }

  const topo::Fabric* fabric_;
  fault::LinkHealth health_;
  std::vector<std::uint8_t> viable_;
};

/// Build degraded D-Mod-K tables for `fabric` against a liveness view.
/// Entries of dead switches are left unprogrammed (they forward nothing).
[[nodiscard]] ForwardingTables compute_degraded_dmodk(
    const topo::Fabric& fabric, const fault::LinkHealth& health,
    DegradedStats* stats = nullptr);

/// Build degraded D-Mod-K tables for the fault state's fabric.
[[nodiscard]] ForwardingTables compute_degraded_dmodk(
    const fault::FaultState& state, DegradedStats* stats = nullptr);

/// Router-interface adapter over compute_degraded_dmodk. `compute` must be
/// called with the same fabric the fault state was resolved against.
class DegradedDModKRouter final : public Router {
 public:
  explicit DegradedDModKRouter(const fault::FaultState& state)
      : state_(&state) {}

  [[nodiscard]] std::string name() const override { return "dmodk-degraded"; }
  [[nodiscard]] ForwardingTables compute(
      const topo::Fabric& fabric) const override;

 private:
  const fault::FaultState* state_;
};

}  // namespace ftcf::route
