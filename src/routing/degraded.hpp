// Degraded-mode D-Mod-K routing: Eq. (1) with local re-route around faults.
//
// On a pristine fabric this reproduces DModKRouter exactly. With a FaultState
// attached, every up-port choice falls back from the closed-form port to the
// next surviving parallel rail of the same parent (k+1, k+2, ... mod p), then
// to the next parent group (b+1, b+2, ... mod w) — the cheapest deviation
// from the contention-free assignment first. Down-going choices keep the
// unique child subtree (a tree property, faults cannot change it) and fall
// back across the p parallel rails the same way.
//
// A candidate port is accepted only when its cable is up, its peer switch is
// alive, *and* the peer can still reach the destination (a per-destination
// viability sweep over the degraded graph) — so the tables never steer
// packets into a cul-de-sac. Destinations with no surviving path are left
// unprogrammed (route::kUnroutedPort) and reported as typed counts, never as
// crashes; route::validate_lft() surfaces them per pair.
#pragma once

#include "fault/degraded.hpp"
#include "routing/router.hpp"

namespace ftcf::route {

/// What the degraded table build did, for reports and tests.
struct DegradedStats {
  std::uint64_t entries_programmed = 0;
  std::uint64_t entries_rerouted = 0;   ///< differ from pristine D-Mod-K
  std::uint64_t entries_unrouted = 0;   ///< no surviving path (alive switches)
  std::uint64_t unreachable_hosts = 0;  ///< hosts no alive switch can reach
};

/// Build degraded D-Mod-K tables for the fault state's fabric. Entries of
/// dead switches are left unprogrammed (they forward nothing).
[[nodiscard]] ForwardingTables compute_degraded_dmodk(
    const fault::FaultState& state, DegradedStats* stats = nullptr);

/// Router-interface adapter over compute_degraded_dmodk. `compute` must be
/// called with the same fabric the fault state was resolved against.
class DegradedDModKRouter final : public Router {
 public:
  explicit DegradedDModKRouter(const fault::FaultState& state)
      : state_(&state) {}

  [[nodiscard]] std::string name() const override { return "dmodk-degraded"; }
  [[nodiscard]] ForwardingTables compute(
      const topo::Fabric& fabric) const override;

 private:
  const fault::FaultState* state_;
};

}  // namespace ftcf::route
