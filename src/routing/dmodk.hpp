// D-Mod-K routing for PGFTs/RLFTs (paper §V, Eq. (1)).
//
// Closed form: at a level-l switch, traffic to destination host j that must
// still travel upwards leaves through up-going port
//
//     q_l(j) = floor(j / W_l) mod (w_{l+1} * p_{l+1}),   W_l = prod_{i<=l} w_i
//
// which reaches parent column  b_{l+1} = q mod w_{l+1}  over parallel rail
// k = floor(q / w_{l+1}).  Traffic travelling down follows the unique child
// that is an ancestor of j; among the p_l parallel links, the same rail the
// up-path of j uses at that boundary is taken, making each down-going port
// carry exactly one destination (Theorem 2).
#pragma once

#include "routing/router.hpp"

namespace ftcf::route {

class DModKRouter final : public Router {
 public:
  [[nodiscard]] std::string name() const override { return "dmodk"; }
  [[nodiscard]] ForwardingTables compute(
      const topo::Fabric& fabric) const override;

  /// The closed-form up-port (index within the up-going range) a level-l
  /// switch uses for destination j. Exposed for tests of Eq. (1) itself.
  [[nodiscard]] static std::uint32_t up_port_formula(
      const topo::PgftSpec& spec, std::uint32_t level, std::uint64_t dest);

  /// The parallel rail k used at the level-(l-1)/l boundary for destination
  /// j; selects among the p_l parallel down-links.
  [[nodiscard]] static std::uint32_t down_rail_formula(
      const topo::PgftSpec& spec, std::uint32_t level, std::uint64_t dest);
};

}  // namespace ftcf::route
