// D-Mod-K routing for PGFTs/RLFTs (paper §V, Eq. (1)).
//
// Closed form: at a level-l switch, traffic to destination host j that must
// still travel upwards leaves through up-going port
//
//     q_l(j) = floor(j / W_l) mod (w_{l+1} * p_{l+1}),   W_l = prod_{i<=l} w_i
//
// which reaches parent column  b_{l+1} = q mod w_{l+1}  over parallel rail
// k = floor(q / w_{l+1}).  Traffic travelling down follows the unique child
// that is an ancestor of j; among the p_l parallel links, the same rail the
// up-path of j uses at that boundary is taken, making each down-going port
// carry exactly one destination (Theorem 2).
#pragma once

#include <vector>

#include "routing/router.hpp"

namespace ftcf::route {

/// Per-level constants of the Eq. (1) digit decomposition, specialized to
/// the RLFT closed form the symbolic certifier (check/symbolic.hpp) builds
/// on. At the level-l boundary the up-going link a flow (i -> j) takes is
/// keyed by (floor(i / M_l), q_l(j) digits); when the identity
/// W_l * p_l == M_{l-1} holds at every level, the (column, up-port) digits
/// collapse to j mod M_l, so the key is exactly
///
///     (floor(i / M_l),  j mod M_l)
///
/// and per-stage link-injectivity becomes a statement about digit
/// permutations of Z_{M_l} — no flow enumeration required.
struct DmodkLevelDigits {
  std::uint64_t block = 0;        ///< M_l = m_1 * ... * m_l
  std::uint64_t columns = 0;      ///< W_l = w_1 * ... * w_l
  std::uint64_t key_modulus = 0;  ///< W_l * p_l
  bool closed_form = false;       ///< key_modulus == M_{l-1}
};

/// The digit constants for levels 1..h. The symbolic certifier requires
/// closed_form at every level; anything else falls back to the enumerative
/// walk (the closed form is exactly what makes "up-link key == j mod M_l"
/// true, and a wrong proof must be impossible).
[[nodiscard]] std::vector<DmodkLevelDigits> dmodk_level_digits(
    const topo::PgftSpec& spec);

class DModKRouter final : public Router {
 public:
  [[nodiscard]] std::string name() const override { return "dmodk"; }
  [[nodiscard]] ForwardingTables compute(
      const topo::Fabric& fabric) const override;

  /// The closed-form up-port (index within the up-going range) a level-l
  /// switch uses for destination j. Exposed for tests of Eq. (1) itself.
  [[nodiscard]] static std::uint32_t up_port_formula(
      const topo::PgftSpec& spec, std::uint32_t level, std::uint64_t dest);

  /// The parallel rail k used at the level-(l-1)/l boundary for destination
  /// j; selects among the p_l parallel down-links.
  [[nodiscard]] static std::uint32_t down_rail_formula(
      const topo::PgftSpec& spec, std::uint32_t level, std::uint64_t dest);
};

}  // namespace ftcf::route
