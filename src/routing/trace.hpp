// Path tracing over programmed forwarding tables: turns a (src, dst) host
// pair into the ordered list of directed links (source ports) it traverses.
// This is the primitive the Hot-Spot-Degree analysis counts over.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/lft.hpp"

namespace ftcf::route {

/// The up-going port a *host* uses towards `dest`. RLFT hosts have a single
/// cable; for general PGFTs we apply the level-0 form of Eq. (1),
/// q = dest mod (w_1 p_1), which all routers in this library share.
[[nodiscard]] std::uint32_t host_up_port(const topo::Fabric& fabric,
                                         std::uint64_t src, std::uint64_t dest);

/// Trace src -> dst. Returns the directed links in order, each identified by
/// the PortId it leaves from (host NIC port first, destination NIC not
/// included). Throws util::InvariantError if the tables loop or divert.
[[nodiscard]] std::vector<topo::PortId> trace_route(
    const topo::Fabric& fabric, const ForwardingTables& tables,
    std::uint64_t src, std::uint64_t dst);

/// Number of switch hops of the traced route (links minus the host link).
[[nodiscard]] std::size_t route_hops(const topo::Fabric& fabric,
                                     const ForwardingTables& tables,
                                     std::uint64_t src, std::uint64_t dst);

}  // namespace ftcf::route
