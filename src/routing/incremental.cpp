#include "routing/incremental.hpp"

#include <algorithm>
#include <numeric>

#include "obs/profile.hpp"
#include "util/expects.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::route {

using fault::FaultState;
using fault::LinkHealth;
using topo::Fabric;
using topo::NodeId;
using topo::PortId;
using util::expects;

namespace {

std::uint32_t entry_or_unrouted(const ForwardingTables& tables, NodeId sw,
                                std::uint64_t dest) {
  return tables.has_entry(sw, dest) ? tables.out_port(sw, dest) : kUnroutedPort;
}

}  // namespace

IncrementalRepair::IncrementalRepair(const Fabric& fabric,
                                     const LinkHealth& initial)
    : fabric_(&fabric),
      link_down_(fabric.num_ports(), 0),
      node_down_(fabric.num_nodes(), 0),
      cable_failed_(fabric.num_ports(), 0),
      tables_(fabric),
      dest_stats_(fabric.num_hosts()),
      column_links_(fabric.num_hosts()),
      non_pristine_(fabric.num_hosts(), 0) {
  FTCF_PROF_SCOPE("incremental_repair_build");
  expects(initial.fabric == &fabric,
          "incremental repair health view targets a foreign fabric");
  for (PortId p = 0; p < fabric.num_ports(); ++p)
    link_down_[p] = initial.link_up(p) ? 0 : 1;
  for (NodeId n = 0; n < fabric.num_nodes(); ++n)
    node_down_[n] = initial.node_up(n) ? 0 : 1;
  // A cable down while both endpoints are alive is an independent cable
  // fault; one adjacent to a dead node is attributed to that node (and so
  // revives with it).
  for (PortId p = 0; p < fabric.num_ports(); ++p) {
    if (canonical(p) != p || !link_down_[p]) continue;
    const NodeId a = fabric.port(p).node;
    const NodeId b = fabric.port(fabric.port(p).peer).node;
    if (!node_down_[a] && !node_down_[b]) cable_failed_[p] = 1;
  }
  std::vector<std::uint64_t> all(fabric.num_hosts());
  std::iota(all.begin(), all.end(), std::uint64_t{0});
  recompute_columns(all, nullptr);
}

IncrementalRepair::IncrementalRepair(const FaultState& state)
    : IncrementalRepair(state.fabric(), state.health()) {}

DegradedStats IncrementalRepair::stats() const {
  DegradedStats out;
  for (const DestStats& ds : dest_stats_) {
    out.entries_programmed += ds.programmed;
    out.entries_rerouted += ds.rerouted;
    out.entries_unrouted += ds.unrouted;
    if (!ds.reachable) ++out.unreachable_hosts;
  }
  return out;
}

std::uint64_t IncrementalRepair::non_pristine_dests() const {
  return static_cast<std::uint64_t>(
      std::count_if(non_pristine_.begin(), non_pristine_.end(),
                    [](std::uint32_t n) { return n > 0; }));
}

bool IncrementalRepair::column_uses(
    std::uint64_t dest, const std::vector<PortId>& cables) const {
  const std::vector<PortId>& col = column_links_[dest];
  for (const PortId c : cables)
    if (std::binary_search(col.begin(), col.end(), c)) return true;
  return false;
}

void IncrementalRepair::refresh_dest(std::uint64_t dest) {
  std::vector<PortId>& col = column_links_[dest];
  col.clear();
  std::uint32_t deviations = 0;
  for (const NodeId sw : fabric_->switch_ids()) {
    if (node_down_[sw]) continue;
    if (!tables_.has_entry(sw, dest)) {
      ++deviations;
      continue;
    }
    const std::uint32_t port_idx = tables_.out_port(sw, dest);
    col.push_back(canonical(fabric_->port_id(sw, port_idx)));
    if (port_idx != pristine_dmodk_port(*fabric_, sw, dest)) ++deviations;
  }
  std::sort(col.begin(), col.end());
  col.erase(std::unique(col.begin(), col.end()), col.end());
  non_pristine_[dest] = deviations;
}

void IncrementalRepair::recompute_columns(
    const std::vector<std::uint64_t>& dests, RepairDelta* delta) {
  if (dests.empty()) return;
  const auto switch_ids = fabric_->switch_ids();

  // Snapshot the pre-event columns so the post-route diff can report which
  // destinations actually changed and by how many entries.
  std::vector<std::vector<std::uint32_t>> before;
  if (delta != nullptr) {
    before.resize(dests.size());
    for (std::size_t i = 0; i < dests.size(); ++i) {
      before[i].reserve(switch_ids.size());
      for (const NodeId sw : switch_ids)
        before[i].push_back(entry_or_unrouted(tables_, sw, dests[i]));
    }
  }

  // Distinct destinations occupy disjoint LFT slots, so routing them
  // concurrently is race-free; stats and bookkeeping fold serially below
  // in ascending destination order for byte determinism.
  const par::ForOptions opts{0, 1, "route.incremental"};
  const std::uint32_t width = par::region_width(dests.size(), opts);
  std::vector<DestinationRouter> routers;
  routers.reserve(width);
  for (std::uint32_t w = 0; w < width; ++w)
    routers.emplace_back(*fabric_, health());
  std::vector<DestStats> fresh(dests.size());
  par::parallel_for(
      dests.size(),
      [&](std::size_t i, std::uint32_t worker) {
        fresh[i] = routers[worker].route(dests[i], tables_);
      },
      opts);

  for (std::size_t i = 0; i < dests.size(); ++i) {
    const std::uint64_t dest = dests[i];
    if (delta != nullptr) {
      std::uint64_t changed = 0;
      for (std::size_t j = 0; j < switch_ids.size(); ++j)
        if (before[i][j] != entry_or_unrouted(tables_, switch_ids[j], dest))
          ++changed;
      if (changed > 0) {
        delta->changed_dests.push_back(dest);
        delta->entries_changed += changed;
      }
    }
    dest_stats_[dest] = fresh[i];
    refresh_dest(dest);
  }
}

RepairDelta IncrementalRepair::fail_cable(PortId port) {
  RepairDelta delta;
  const PortId peer = fabric_->port(port).peer;
  const PortId cable = canonical(port);
  const bool was_down = link_down_[port] != 0;
  // Record the independent fault even when the link is already down from a
  // dead endpoint: repairing that switch must not revive this cable.
  cable_failed_[cable] = 1;
  if (was_down) {
    delta.stats = stats();
    return delta;
  }
  link_down_[port] = 1;
  link_down_[peer] = 1;
  delta.applied = true;

  const std::vector<PortId> changed{cable};
  std::vector<std::uint64_t> dirty;
  for (std::uint64_t d = 0; d < fabric_->num_hosts(); ++d)
    if (column_uses(d, changed)) dirty.push_back(d);
  recompute_columns(dirty, &delta);
  delta.stats = stats();
  return delta;
}

RepairDelta IncrementalRepair::repair_cable(PortId port) {
  RepairDelta delta;
  const PortId peer = fabric_->port(port).peer;
  const PortId cable = canonical(port);
  if (!cable_failed_[cable]) {
    delta.stats = stats();
    return delta;
  }
  cable_failed_[cable] = 0;
  const NodeId a = fabric_->port(port).node;
  const NodeId b = fabric_->port(peer).node;
  if (node_down_[a] || node_down_[b]) {
    // The cable itself is mended but an endpoint is still dead; the link
    // revives with the switch repair.
    delta.stats = stats();
    return delta;
  }
  link_down_[port] = 0;
  link_down_[peer] = 0;
  delta.applied = true;

  std::vector<std::uint64_t> dirty;
  for (std::uint64_t d = 0; d < fabric_->num_hosts(); ++d)
    if (non_pristine_[d] > 0) dirty.push_back(d);
  recompute_columns(dirty, &delta);
  delta.stats = stats();
  return delta;
}

RepairDelta IncrementalRepair::fail_switch(NodeId sw) {
  expects(fabric_->node(sw).kind == topo::NodeKind::kSwitch,
          "fail_switch targets a non-switch");
  RepairDelta delta;
  if (node_down_[sw]) {
    delta.stats = stats();
    return delta;
  }
  node_down_[sw] = 1;
  delta.applied = true;

  // Equivalent to failing every adjacent cable that was still up.
  std::vector<PortId> newly_down;
  const topo::Node& node = fabric_->node(sw);
  for (std::uint32_t i = 0; i < node.num_down_ports + node.num_up_ports; ++i) {
    const PortId pid = fabric_->port_id(sw, i);
    const PortId peer = fabric_->port(pid).peer;
    if (!link_down_[pid]) newly_down.push_back(canonical(pid));
    link_down_[pid] = 1;
    link_down_[peer] = 1;
  }
  std::sort(newly_down.begin(), newly_down.end());

  std::vector<std::uint64_t> dirty;
  std::vector<std::uint8_t> is_dirty(fabric_->num_hosts(), 0);
  for (std::uint64_t d = 0; d < fabric_->num_hosts(); ++d) {
    if (!column_uses(d, newly_down)) continue;
    dirty.push_back(d);
    is_dirty[d] = 1;
  }
  // Destinations whose column avoids the dead switch entirely cannot have
  // an entry there (an entry's out-cable is adjacent); their only change is
  // that the switch's unrouted contribution leaves the bookkeeping.
  for (std::uint64_t d = 0; d < fabric_->num_hosts(); ++d) {
    if (is_dirty[d]) continue;
    expects(!tables_.has_entry(sw, d),
            "non-dirty destination has an entry at the failed switch");
    expects(dest_stats_[d].unrouted > 0 && non_pristine_[d] > 0,
            "failed switch missing from destination bookkeeping");
    --dest_stats_[d].unrouted;
    --non_pristine_[d];
  }
  recompute_columns(dirty, &delta);
  delta.stats = stats();
  return delta;
}

RepairDelta IncrementalRepair::repair_switch(NodeId sw) {
  expects(fabric_->node(sw).kind == topo::NodeKind::kSwitch,
          "repair_switch targets a non-switch");
  RepairDelta delta;
  if (!node_down_[sw]) {
    delta.stats = stats();
    return delta;
  }
  node_down_[sw] = 0;
  delta.applied = true;
  delta.row_switch = sw;

  // Adjacent cables revive with the switch unless independently failed or
  // attached to another dead node.
  const topo::Node& node = fabric_->node(sw);
  for (std::uint32_t i = 0; i < node.num_down_ports + node.num_up_ports; ++i) {
    const PortId pid = fabric_->port_id(sw, i);
    const PortId peer = fabric_->port(pid).peer;
    const NodeId other = fabric_->port(peer).node;
    const std::uint8_t down =
        (cable_failed_[canonical(pid)] || node_down_[other]) ? 1 : 0;
    link_down_[pid] = down;
    link_down_[peer] = down;
  }

  // Fully pristine destinations only need the revived switch's row filled:
  // every other alive switch already holds the first-scanned (pristine)
  // candidate, which an improving event cannot displace. The fill is
  // validated against the chooser's acceptance rule; failures demote the
  // destination to a full recompute.
  std::vector<std::uint64_t> dirty;
  for (std::uint64_t d = 0; d < fabric_->num_hosts(); ++d) {
    if (non_pristine_[d] > 0) {
      dirty.push_back(d);
      continue;
    }
    const std::uint32_t port_idx = pristine_dmodk_port(*fabric_, sw, d);
    const PortId pid = fabric_->port_id(sw, port_idx);
    bool ok = !link_down_[pid];
    if (ok) {
      const NodeId target = fabric_->port(fabric_->port(pid).peer).node;
      if (node_down_[target])
        ok = false;
      else if (fabric_->node(target).kind == topo::NodeKind::kHost)
        ok = true;  // alive cable + alive host == deliverable
      else
        ok = tables_.has_entry(target, d);  // entry <=> viable when alive
    }
    if (!ok) {
      dirty.push_back(d);
      continue;
    }
    tables_.set_out_port(sw, d, port_idx);
    delta.row_filled_dests.push_back(d);
    ++delta.entries_changed;
    ++dest_stats_[d].programmed;
    dest_stats_[d].reachable = true;
    const PortId cable = canonical(pid);
    std::vector<PortId>& col = column_links_[d];
    const auto it = std::lower_bound(col.begin(), col.end(), cable);
    if (it == col.end() || *it != cable) col.insert(it, cable);
  }
  recompute_columns(dirty, &delta);
  delta.stats = stats();
  return delta;
}

}  // namespace ftcf::route
