#include "routing/router.hpp"

#include "routing/baselines.hpp"
#include "routing/ftree.hpp"
#include "routing/dmodk.hpp"
#include "util/error.hpp"

namespace ftcf::route {

std::unique_ptr<Router> make_router(RouterKind kind, std::uint64_t seed) {
  switch (kind) {
    case RouterKind::kDModK: return std::make_unique<DModKRouter>();
    case RouterKind::kFtree: return std::make_unique<FtreeRouter>();
    case RouterKind::kUpDown: return std::make_unique<UpDownMinHopRouter>();
    case RouterKind::kRandom: return std::make_unique<RandomRouter>(seed);
  }
  throw util::Error("unknown router kind");
}

RouterKind parse_router_kind(const std::string& text) {
  if (text == "dmodk") return RouterKind::kDModK;
  if (text == "ftree") return RouterKind::kFtree;
  if (text == "updown") return RouterKind::kUpDown;
  if (text == "random") return RouterKind::kRandom;
  throw util::Error("unknown router '" + text +
                    "' (expected dmodk|ftree|updown|random)");
}

}  // namespace ftcf::route
