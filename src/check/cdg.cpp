#include "check/cdg.hpp"

#include <sstream>

#include "check/depgraph.hpp"
#include "obs/profile.hpp"
#include "routing/adaptive.hpp"

namespace ftcf::check {

using topo::Fabric;
using topo::PortId;

CdgAnalysis analyze_cdg(const Fabric& fabric,
                        const route::ForwardingTables& tables) {
  FTCF_PROF_SCOPE("check.cdg");
  CdgAnalysis analysis;
  const ChannelIndex ci = switch_channels(fabric);
  analysis.num_channels = ci.size();
  if (ci.empty()) return analysis;  // single-switch or host-only

  const std::vector<std::uint64_t> deps = build_dependencies(
      fabric, tables, ci, DependencyOptions{.label = "check.cdg"});
  analysis.num_dependencies = deps.size();
  for (const std::uint64_t packed : deps) {
    const PortId from = ci.channels[packed >> 32];
    const PortId to = ci.channels[packed & 0xffffffffu];
    if (!is_up_channel(fabric, from) && is_up_channel(fabric, to))
      ++analysis.down_up_turns;
  }

  const ChannelGraph graph = build_graph(ci.size(), deps);
  const SccSummary sccs = find_cyclic_sccs(graph);
  analysis.cyclic_scc_count = sccs.cyclic_sccs;
  analysis.acyclic = sccs.cyclic_sccs == 0;
  if (!analysis.acyclic) {
    for (const std::uint32_t dense :
         extract_cycle(graph, sccs.first_cycle_members))
      analysis.cycle.push_back(ci.channels[dense]);
  }
  return analysis;
}

AdaptiveCdgAnalysis analyze_adaptive_cdg(const Fabric& fabric,
                                         const route::ForwardingTables& tables) {
  FTCF_PROF_SCOPE("check.cdg.adaptive");
  AdaptiveCdgAnalysis analysis;
  const route::AdaptiveRelationStats stats =
      route::adaptive_relation_stats(fabric, tables);
  analysis.relation_pairs = stats.pairs;
  analysis.relation_choices = stats.candidates;
  analysis.max_fanout = stats.max_fanout;

  const ChannelIndex ci = switch_channels(fabric);
  analysis.cdg.num_channels = ci.size();
  if (ci.empty()) return analysis;  // single-switch or host-only

  const std::vector<std::uint64_t> deps = build_relation_dependencies(
      fabric,
      [&](topo::NodeId sw, std::uint64_t dest, std::vector<std::uint32_t>& out) {
        route::adaptive_candidates(fabric, tables, sw, dest, out);
      },
      ci, "check.cdg.adaptive");
  analysis.cdg.num_dependencies = deps.size();
  for (const std::uint64_t packed : deps) {
    const PortId from = ci.channels[packed >> 32];
    const PortId to = ci.channels[packed & 0xffffffffu];
    if (!is_up_channel(fabric, from) && is_up_channel(fabric, to))
      ++analysis.cdg.down_up_turns;
  }

  const ChannelGraph graph = build_graph(ci.size(), deps);
  const SccSummary sccs = find_cyclic_sccs(graph);
  analysis.cdg.cyclic_scc_count = sccs.cyclic_sccs;
  analysis.cdg.acyclic = sccs.cyclic_sccs == 0;
  if (!analysis.cdg.acyclic) {
    for (const std::uint32_t dense :
         extract_cycle(graph, sccs.first_cycle_members))
      analysis.cdg.cycle.push_back(ci.channels[dense]);
  }
  return analysis;
}

std::string cycle_to_string(const Fabric& fabric,
                            const std::vector<PortId>& cycle) {
  std::ostringstream oss;
  for (std::size_t i = 0; i <= cycle.size(); ++i) {
    if (cycle.empty()) break;
    const topo::Port& port = fabric.port(cycle[i % cycle.size()]);
    if (i != 0) oss << " -> ";
    oss << fabric.node_name(port.node) << "[port " << port.index << ']';
  }
  return oss.str();
}

}  // namespace ftcf::check
