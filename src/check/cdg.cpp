#include "check/cdg.hpp"

#include <algorithm>
#include <sstream>

#include "obs/profile.hpp"
#include "util/expects.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {

using topo::Fabric;
using topo::NodeId;
using topo::PortId;

namespace {

constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);

/// Dense numbering of the switch-to-switch directed links.
struct ChannelIndex {
  std::vector<PortId> channels;      ///< dense id -> PortId
  std::vector<std::uint32_t> dense;  ///< PortId -> dense id (kNone = not a channel)
};

ChannelIndex build_channels(const Fabric& fabric) {
  ChannelIndex ci;
  ci.dense.assign(fabric.num_ports(), kNone);
  for (PortId p = 0; p < fabric.num_ports(); ++p) {
    const topo::Port& port = fabric.port(p);
    if (fabric.node(port.node).kind != topo::NodeKind::kSwitch) continue;
    const NodeId peer_node = fabric.port(port.peer).node;
    if (fabric.node(peer_node).kind != topo::NodeKind::kSwitch) continue;
    ci.dense[p] = static_cast<std::uint32_t>(ci.channels.size());
    ci.channels.push_back(p);
  }
  return ci;
}

bool is_up_channel(const Fabric& fabric, PortId p) {
  const topo::Port& port = fabric.port(p);
  return port.index >= fabric.node(port.node).num_down_ports;
}

/// All distinct dependencies, packed (from_dense << 32 | to_dense) and
/// sorted ascending. Generated per source switch in parallel, merged in
/// switch-index order, then globally sorted — identical for any thread count.
std::vector<std::uint64_t> build_dependencies(
    const Fabric& fabric, const route::ForwardingTables& tables,
    const ChannelIndex& ci) {
  const std::span<const NodeId> switches = fabric.switch_ids();
  const std::uint64_t n = fabric.num_hosts();

  auto per_switch = par::parallel_map(
      switches.size(),
      [&](std::size_t idx) {
        std::vector<std::uint64_t> deps;
        const NodeId u = switches[idx];
        for (std::uint64_t d = 0; d < n; ++d) {
          if (!tables.has_entry(u, d)) continue;
          const PortId e1 = fabric.port_id(u, tables.out_port(u, d));
          const std::uint32_t c1 = ci.dense[e1];
          if (c1 == kNone) continue;  // terminates at a host
          const NodeId v = fabric.port(fabric.port(e1).peer).node;
          if (!tables.has_entry(v, d)) continue;
          const PortId e2 = fabric.port_id(v, tables.out_port(v, d));
          const std::uint32_t c2 = ci.dense[e2];
          if (c2 == kNone) continue;
          deps.push_back((static_cast<std::uint64_t>(c1) << 32) | c2);
        }
        std::sort(deps.begin(), deps.end());
        deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
        return deps;
      },
      par::ForOptions{.threads = 0, .grain = 1, .label = "check.cdg"});

  std::vector<std::uint64_t> all;
  for (const auto& deps : per_switch) all.insert(all.end(), deps.begin(), deps.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

/// Compressed adjacency over dense channel ids; successor lists ascending.
struct Csr {
  std::vector<std::uint32_t> offsets;  ///< size num_channels + 1
  std::vector<std::uint32_t> targets;
};

Csr build_csr(std::size_t num_channels, const std::vector<std::uint64_t>& deps) {
  Csr csr;
  csr.offsets.assign(num_channels + 1, 0);
  csr.targets.reserve(deps.size());
  for (const std::uint64_t packed : deps)
    ++csr.offsets[static_cast<std::size_t>(packed >> 32) + 1];
  for (std::size_t i = 1; i < csr.offsets.size(); ++i)
    csr.offsets[i] += csr.offsets[i - 1];
  for (const std::uint64_t packed : deps)
    csr.targets.push_back(static_cast<std::uint32_t>(packed & 0xffffffffu));
  return csr;
}

/// Iterative Tarjan SCC. Returns the members of the first cyclic SCC found
/// (empty when the graph is acyclic) and counts all cyclic SCCs.
struct SccResult {
  std::uint64_t cyclic_sccs = 0;
  std::vector<std::uint32_t> first_cycle_members;
};

SccResult tarjan_cyclic_sccs(const Csr& csr, std::size_t num_nodes) {
  SccResult result;
  std::vector<std::uint32_t> index(num_nodes, kNone);
  std::vector<std::uint32_t> lowlink(num_nodes, 0);
  std::vector<std::uint8_t> on_stack(num_nodes, 0);
  std::vector<std::uint32_t> stack;
  std::uint32_t next_index = 0;

  struct Frame {
    std::uint32_t v;
    std::uint32_t edge;  ///< next offset into csr.targets to explore
  };
  std::vector<Frame> frames;

  for (std::uint32_t root = 0; root < num_nodes; ++root) {
    if (index[root] != kNone) continue;
    frames.push_back({root, csr.offsets[root]});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::uint32_t v = frame.v;
      if (frame.edge < csr.offsets[v + 1]) {
        const std::uint32_t w = csr.targets[frame.edge++];
        if (index[w] == kNone) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, csr.offsets[w]});
        } else if (on_stack[w] != 0) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      // v is fully explored: close its SCC if it is a root.
      if (lowlink[v] == index[v]) {
        std::vector<std::uint32_t> members;
        while (true) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          members.push_back(w);
          if (w == v) break;
        }
        if (members.size() > 1) {  // self-loops cannot occur in a CDG
          ++result.cyclic_sccs;
          if (result.first_cycle_members.empty())
            result.first_cycle_members = std::move(members);
        }
      }
      frames.pop_back();
      if (!frames.empty())
        lowlink[frames.back().v] =
            std::min(lowlink[frames.back().v], lowlink[v]);
    }
  }
  return result;
}

/// Walk inside a cyclic SCC following the smallest in-SCC successor until a
/// node repeats; the slice from its first visit is a concrete cycle.
std::vector<std::uint32_t> extract_cycle(const Csr& csr,
                                         const std::vector<std::uint32_t>& scc) {
  std::vector<std::uint8_t> member(csr.offsets.size() - 1, 0);
  std::uint32_t start = scc.front();
  for (const std::uint32_t v : scc) {
    member[v] = 1;
    start = std::min(start, v);
  }
  std::vector<std::uint32_t> path;
  std::vector<std::uint32_t> pos(csr.offsets.size() - 1, kNone);
  std::uint32_t at = start;
  while (pos[at] == kNone) {
    pos[at] = static_cast<std::uint32_t>(path.size());
    path.push_back(at);
    std::uint32_t next = kNone;
    for (std::uint32_t e = csr.offsets[at]; e < csr.offsets[at + 1]; ++e) {
      if (member[csr.targets[e]] != 0) {
        next = csr.targets[e];  // targets ascending: first hit is smallest
        break;
      }
    }
    util::expects(next != kNone,
                  "every member of a cyclic SCC has an in-SCC successor");
    at = next;
  }
  return {path.begin() + pos[at], path.end()};
}

}  // namespace

CdgAnalysis analyze_cdg(const Fabric& fabric,
                        const route::ForwardingTables& tables) {
  FTCF_PROF_SCOPE("check.cdg");
  CdgAnalysis analysis;
  const ChannelIndex ci = build_channels(fabric);
  analysis.num_channels = ci.channels.size();
  if (ci.channels.empty()) return analysis;  // single-switch or host-only

  const std::vector<std::uint64_t> deps = build_dependencies(fabric, tables, ci);
  analysis.num_dependencies = deps.size();
  for (const std::uint64_t packed : deps) {
    const PortId from = ci.channels[packed >> 32];
    const PortId to = ci.channels[packed & 0xffffffffu];
    if (!is_up_channel(fabric, from) && is_up_channel(fabric, to))
      ++analysis.down_up_turns;
  }

  const Csr csr = build_csr(ci.channels.size(), deps);
  const SccResult sccs = tarjan_cyclic_sccs(csr, ci.channels.size());
  analysis.cyclic_scc_count = sccs.cyclic_sccs;
  analysis.acyclic = sccs.cyclic_sccs == 0;
  if (!analysis.acyclic) {
    for (const std::uint32_t dense : extract_cycle(csr, sccs.first_cycle_members))
      analysis.cycle.push_back(ci.channels[dense]);
  }
  return analysis;
}

std::string cycle_to_string(const Fabric& fabric,
                            const std::vector<PortId>& cycle) {
  std::ostringstream oss;
  for (std::size_t i = 0; i <= cycle.size(); ++i) {
    if (cycle.empty()) break;
    const topo::Port& port = fabric.port(cycle[i % cycle.size()]);
    if (i != 0) oss << " -> ";
    oss << fabric.node_name(port.node) << "[port " << port.index << ']';
  }
  return oss.str();
}

}  // namespace ftcf::check
