// Exact lane-minimality prover for the destination-based VL assignment.
//
// propose_vl_assignment (check/vl.hpp) is a greedy first-fit heuristic: it
// proves its lane count *sufficient* but says nothing about necessity. This
// module closes that gap with an exact branch-and-bound search over the
// destination-conflict graph:
//
//   1. Suspects. A cycle in the union of any subset of per-destination
//      dependency sets is a cycle in the full union graph, hence confined to
//      one of its cyclic SCCs. Destinations contributing no edge inside a
//      cyclic SCC ("non-suspects") can therefore never close a cycle on any
//      lane, in any combination — they are free riders on lane 0 and the
//      search space shrinks to the suspects and their SCC-internal edges.
//   2. Conflict graph. Two suspects conflict when the union of their
//      restricted dependency sets is cyclic: they can never share a lane.
//      A greedy clique over this graph is a sound chromatic lower bound
//      (clique members need pairwise-distinct lanes).
//   3. Branch and bound. DSATUR-ordered exact search for a feasible
//      k-lane placement of the suspects, with clique members pre-placed on
//      lanes 0..c-1 and at most one fresh lane opened per step (empty lanes
//      are interchangeable). Feasibility of every placement is checked
//      against the real per-lane union graphs, so a found assignment is
//      valid — and an exhausted search at k proves k+1 lanes necessary.
//
// Outcomes: lower == upper certifies minimality (rule vl-optimal, clique as
// witness); a search that beats the greedy count replaces the assignment;
// a tripped node budget reports the proven [lower, upper] gap honestly
// (rule vl-bound-gap). Entirely serial after the parallel per-destination
// precomputation — results are byte-identical at any thread count.
#pragma once

#include <span>

#include "check/vl.hpp"

namespace ftcf::check {

struct VlOptimalityOptions {
  /// Abort the branch-and-bound after this many vertex placements and report
  /// the bounds proven so far. The default is far above anything realistic
  /// fabrics need (pristine tables have zero suspects and never search).
  std::uint64_t node_budget = 1'000'000;
};

/// Verdict of the minimality proof. `upper_bound` is the best lane count a
/// feasible assignment is known for (0 = none exists within the lane
/// budget); `lower_bound` lanes are proven necessary. Equality certifies
/// minimality.
struct VlOptimality {
  std::uint32_t lower_bound = 1;
  std::uint32_t upper_bound = 0;
  /// Mutually conflicting destinations — the witness for the clique part of
  /// the lower bound (ascending host indices).
  std::vector<std::uint64_t> clique;
  /// Destinations whose own dependency set is cyclic: a routing loop no lane
  /// count can fix. When non-empty the bounds are meaningless and the proof
  /// is abandoned.
  std::vector<std::uint64_t> unfixable;
  std::uint64_t suspects = 0;        ///< destinations that can conflict at all
  std::uint64_t conflict_edges = 0;  ///< pairs that can never share a lane
  std::uint64_t nodes_explored = 0;  ///< B&B vertex placements performed
  std::uint64_t node_budget = 0;     ///< the budget the search ran under
  bool budget_exhausted = false;
  /// The search found a feasible assignment with fewer lanes than the greedy
  /// proposal (which was therefore suboptimal) and replaced it.
  bool improved = false;

  [[nodiscard]] bool provable() const noexcept { return unfixable.empty(); }
  [[nodiscard]] bool optimal() const noexcept {
    return provable() && upper_bound != 0 && lower_bound == upper_bound;
  }
};

/// Prove bounds on the minimum lane count for `tables`, reusing the greedy
/// proposal in `assignment` (and its `per_dest` dependency sets) as the
/// starting upper bound. `max_lanes` is the same lane budget the greedy
/// search ran under (<= 64). When the search finds a smaller feasible
/// assignment, `assignment` is replaced by it and `improved` is set.
[[nodiscard]] VlOptimality prove_vl_optimality(
    const topo::Fabric& fabric,
    std::span<const std::vector<std::uint64_t>> per_dest,
    std::uint32_t max_lanes, VlAssignment& assignment,
    const VlOptimalityOptions& options = {});

}  // namespace ftcf::check
