#include "check/credit.hpp"

#include "check/depgraph.hpp"
#include "obs/profile.hpp"
#include "util/expects.hpp"

namespace ftcf::check {

using topo::Fabric;
using topo::PortId;

CreditLoopAnalysis analyze_credit_loops(
    const Fabric& fabric, const route::ForwardingTables& tables,
    std::span<const sim::PortBuffer> buffers) {
  FTCF_PROF_SCOPE("check.credit");
  util::expects(buffers.size() == fabric.num_ports(),
                "buffer topology must cover every port");

  std::vector<std::uint8_t> finite(buffers.size(), 0);
  for (std::size_t p = 0; p < buffers.size(); ++p)
    finite[p] = buffers[p].finite ? 1 : 0;

  CreditLoopAnalysis analysis;
  const ChannelIndex ci = buffered_channels(fabric, finite);
  analysis.num_buffered_channels = ci.size();
  for (const PortId channel : ci.channels)
    if (fabric.node(fabric.port(channel).node).kind == topo::NodeKind::kHost)
      ++analysis.host_injection_channels;
  if (ci.empty()) return analysis;

  const std::vector<std::uint64_t> deps = build_dependencies(
      fabric, tables, ci,
      DependencyOptions{.host_injections = true, .label = "check.credit"});
  analysis.num_dependencies = deps.size();

  const ChannelGraph graph = build_graph(ci.size(), deps);
  const SccSummary sccs = find_cyclic_sccs(graph);
  analysis.cyclic_scc_count = sccs.cyclic_sccs;
  analysis.acyclic = sccs.cyclic_sccs == 0;
  if (!analysis.acyclic) {
    for (const std::uint32_t dense :
         extract_cycle(graph, sccs.first_cycle_members))
      analysis.cycle.push_back(ci.channels[dense]);
  }
  return analysis;
}

}  // namespace ftcf::check
