// Incremental re-certification under fabric churn.
//
// certify_contention_freedom re-walks every flow of every stage; under churn
// only the flows whose destination column changed can load different links.
// IncrementalCertifier keeps, per stage, the live per-link flow counts plus
// load histograms (all/up/down link classes), and per (destination,
// first-switch) the cached switch path every flow into that leaf shares. A
// route::RepairDelta names exactly the dirtied columns; update() subtracts
// the affected flows' old cached paths, re-walks them against the repaired
// tables, and re-derives the per-stage witnesses from the histograms — so
// the certificate() it maintains is field-identical (and its JSON
// byte-identical) to a from-scratch certify over the same tables, at a
// fraction of the cost. The exchange rate is measured by bench/churn_bench
// and pinned by the differential oracle in tests/churn.
//
// Row-fill fast path: a switch repair that only fills pristine rows touches
// flow paths only when the revived switch is a leaf (flows inject through
// it); no path ever enters a revived *upper* switch for a fully pristine
// destination, because no surviving entry pointed into it while it was dead.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "check/certify.hpp"
#include "routing/incremental.hpp"

namespace ftcf::check {

/// What one re-certification pass did, plus the post-event verdict.
struct CertificateDelta {
  bool applied = false;            ///< some flow was re-walked
  std::uint64_t entries_changed = 0;  ///< LFT slots changed (from routing)
  std::uint64_t changed_dests = 0;    ///< recomputed destination columns
  std::uint64_t rows_filled = 0;      ///< pristine row fills (switch repair)
  std::uint64_t flows_rewalked = 0;   ///< flow paths subtracted + re-added
  std::uint64_t stages_touched = 0;   ///< stages with >= 1 re-walked flow
  std::uint64_t stages_changed = 0;   ///< stages whose witness row changed
  /// First kMaxDeltaStagesShown changed witnesses, stage-ascending.
  std::vector<std::pair<std::size_t, StageWitness>> changed_witnesses;
  bool contention_free = false;    ///< post-event verdict
  std::vector<StageBlame> blames;  ///< post-event violations (all stages)
};

inline constexpr std::size_t kMaxDeltaStagesShown = 16;

/// Deterministic delta document:
/// {"meta":{...},"delta":{...},"stages":[...],"violations":[...]} — stage
/// and violation rows use the same byte format as write_certificate_json.
void write_certificate_delta_json(
    std::ostream& os, const CertificateDelta& delta,
    const std::map<std::string, std::string>& meta = {});

/// Streaming certifier over live forwarding tables. Construction runs one
/// full certification; each update() consumes a route::RepairDelta produced
/// against the *same* tables object and costs O(changed columns), not
/// O(all flows). certificate() is at every point equal to
/// certify_contention_freedom(fabric, tables, ordering, sequence).
class IncrementalCertifier {
 public:
  /// `tables` must outlive this object and is read again on every update —
  /// pass the live tables owned by route::IncrementalRepair.
  IncrementalCertifier(const topo::Fabric& fabric,
                       const route::ForwardingTables& tables,
                       const order::NodeOrdering& ordering,
                       const cps::Sequence& sequence);

  /// Consume one churn event's routing delta (the tables have already been
  /// repaired in place). Re-walks only the affected flows.
  CertificateDelta update(const route::RepairDelta& delta);

  /// Assemble the current certificate from the maintained state.
  [[nodiscard]] Certificate certificate() const;

 private:
  struct LeafPath {
    bool present = false;   ///< some flow enters this (dest, leaf) pair
    bool routable = false;  ///< the walk reached the destination host
    /// Directed links from the leaf onward; on an unroutable walk this
    /// holds the prefix up to the missing entry (blame evidence needs it).
    std::vector<topo::PortId> links;
  };
  struct FlowRef {
    std::uint32_t stage = 0;
    std::uint32_t src = 0;
    std::uint32_t ordinal = 0;  ///< first_leaf_ordinal(src, dest), cached
    std::uint32_t pair = 0;     ///< index into the stage's mapped pair list
  };
  struct StageState {
    StageShape shape = StageShape::kEmpty;
    std::uint64_t num_flows = 0;          ///< static: src != dst pairs
    std::vector<cps::Pair> flows;         ///< stage-pair order (colliding)
    std::vector<std::uint32_t> loads;     ///< per PortId
    std::uint64_t unroutable = 0;
    std::uint64_t links_loaded = 0;
    /// hist[k][v] = links of class k (0 all, 1 up, 2 down) with load v >= 1.
    std::vector<std::uint32_t> hist[3];
    std::uint32_t max_load[3] = {0, 0, 0};
    std::vector<topo::PortId> hot_pids;   ///< sorted; load >= 2
  };

  [[nodiscard]] std::uint32_t first_leaf_ordinal(std::uint64_t src,
                                                 std::uint64_t dst) const;
  [[nodiscard]] topo::PortId injection_link(std::uint64_t src,
                                            std::uint64_t dst) const;
  [[nodiscard]] LeafPath walk_leafpath(std::uint64_t dest,
                                       topo::NodeId leaf) const;
  void bump(StageState& stage, topo::PortId pid, int dir);
  void apply_flow(StageState& stage, const LeafPath& path, topo::PortId inject,
                  int dir);
  [[nodiscard]] bool flow_crosses(std::uint64_t src, std::uint64_t dst,
                                  const LeafPath& path,
                                  topo::PortId link) const;
  [[nodiscard]] topo::PortId hottest(const StageState& stage) const;
  [[nodiscard]] StageWitness witness(const StageState& stage) const;
  [[nodiscard]] std::vector<StageBlame> build_blames() const;
  void index_path_links(std::uint64_t dest, std::uint32_t ordinal,
                        const std::vector<topo::PortId>& links, bool add);
  void collect_colliding(std::size_t stage, topo::PortId hot,
                         StageBlame& blame) const;

  const topo::Fabric* fabric_;
  const route::ForwardingTables* tables_;
  std::uint64_t num_ranks_ = 0;
  std::string sequence_name_;
  std::vector<std::uint8_t> port_class_;  ///< 0 host, 1 up, 2 down
  std::vector<StageState> stages_;
  std::vector<std::vector<FlowRef>> flows_by_dest_;
  /// flow_offsets_[dest][s] .. [s+1]: the flows_by_dest_[dest] slice of
  /// stage s (flows_by_dest_ is built stage-ascending, pair-ascending).
  std::vector<std::vector<std::uint32_t>> flow_offsets_;
  /// paths_[dest][leaf-ordinal]: the shared switch path into `dest`.
  std::vector<std::vector<LeafPath>> paths_;
  /// link_paths_[pid]: sorted packed (dest << 32 | leaf-ordinal) keys of the
  /// cached paths crossing that switch link — the blame inversion: colliding
  /// flows of a hot link resolve by lookup instead of an all-flow rescan.
  std::vector<std::vector<std::uint64_t>> link_paths_;
  Diagnostics base_lints_;  ///< fabric/ordering/sequence lints (static)
};

}  // namespace ftcf::check
