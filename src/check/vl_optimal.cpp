#include "check/vl_optimal.hpp"

#include <algorithm>
#include <numeric>

#include "check/depgraph.hpp"
#include "obs/profile.hpp"
#include "util/expects.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {

namespace {

constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);

/// Full SCC partition of a channel graph: component id per node plus member
/// counts (find_cyclic_sccs stops at the first cyclic component; the hazard
/// classification below needs them all).
struct SccPartition {
  std::vector<std::uint32_t> comp;
  std::vector<std::uint32_t> comp_size;
};

SccPartition scc_partition(const ChannelGraph& graph) {
  const std::size_t num_nodes = graph.num_nodes();
  SccPartition result;
  result.comp.assign(num_nodes, kNone);
  std::vector<std::uint32_t> index(num_nodes, kNone);
  std::vector<std::uint32_t> lowlink(num_nodes, 0);
  std::vector<std::uint8_t> on_stack(num_nodes, 0);
  std::vector<std::uint32_t> stack;
  std::uint32_t next_index = 0;

  struct Frame {
    std::uint32_t v;
    std::uint32_t edge;
  };
  std::vector<Frame> frames;

  for (std::uint32_t root = 0; root < num_nodes; ++root) {
    if (index[root] != kNone) continue;
    frames.push_back({root, graph.offsets[root]});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::uint32_t v = frame.v;
      if (frame.edge < graph.offsets[v + 1]) {
        const std::uint32_t w = graph.targets[frame.edge++];
        if (index[w] == kNone) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, graph.offsets[w]});
        } else if (on_stack[w] != 0) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        const auto id = static_cast<std::uint32_t>(result.comp_size.size());
        std::uint32_t members = 0;
        while (true) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          result.comp[w] = id;
          ++members;
          if (w == v) break;
        }
        result.comp_size.push_back(members);
      }
      frames.pop_back();
      if (!frames.empty())
        lowlink[frames.back().v] =
            std::min(lowlink[frames.back().v], lowlink[v]);
    }
  }
  return result;
}

std::vector<std::uint64_t> merge_edges(const std::vector<std::uint64_t>& a,
                                       const std::vector<std::uint64_t>& b) {
  std::vector<std::uint64_t> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// The DSATUR-ordered exact search for a feasible k-lane placement of the
/// suspects. One instance is reused across decreasing k so the node budget
/// is cumulative.
class LaneSearch {
 public:
  enum class Result : std::uint8_t { kFeasible, kInfeasible, kBudget };

  LaneSearch(std::size_t num_suspects, std::size_t num_compact,
             const std::vector<std::uint64_t>& adj, std::size_t words,
             const std::vector<std::uint32_t>& degree,
             const std::vector<std::vector<std::uint64_t>>& restricted,
             const std::vector<std::uint32_t>& clique,
             std::uint64_t node_budget)
      : s_(num_suspects),
        num_compact_(num_compact),
        adj_(adj),
        words_(words),
        degree_(degree),
        restricted_(restricted),
        clique_(clique),
        budget_(node_budget) {}

  [[nodiscard]] std::uint64_t nodes_explored() const noexcept {
    return nodes_;
  }

  /// Search for a feasible placement using at most `k` lanes. On kFeasible,
  /// `lanes_out` holds one lane per suspect and `used_out` the number of
  /// distinct lanes it occupies (== max lane + 1; may be < k).
  Result run(std::uint32_t k, std::vector<std::uint32_t>& lanes_out,
             std::uint32_t& used_out) {
    if (clique_.size() > k) return Result::kInfeasible;
    k_ = k;
    lane_of_.assign(s_, kNone);
    lanes_used_ = 0;
    lane_edges_.assign(k, {});
    cnt_.assign(s_ * k, 0);
    sat_.assign(s_, 0);
    budget_hit_ = false;

    // Symmetry breaking: any feasible assignment gives clique members
    // pairwise distinct lanes, so WLOG clique[i] sits on lane i.
    for (std::uint32_t i = 0; i < clique_.size(); ++i)
      place(clique_[i], i);

    const bool feasible = dfs();
    if (budget_hit_) return Result::kBudget;
    if (!feasible) return Result::kInfeasible;
    lanes_out = lane_of_;
    used_out = lanes_used_;
    return Result::kFeasible;
  }

 private:
  [[nodiscard]] bool adjacent(std::uint32_t u, std::uint32_t v) const {
    return (adj_[u * words_ + (v >> 6)] >> (v & 63)) & 1u;
  }

  void place(std::uint32_t v, std::uint32_t lane) {
    lane_of_[v] = lane;
    lanes_used_ = std::max(lanes_used_, lane + 1);
    lane_edges_[lane] = merge_edges(lane_edges_[lane], restricted_[v]);
    for (std::uint32_t u = 0; u < s_; ++u) {
      if (!adjacent(v, u)) continue;
      if (cnt_[u * k_ + lane]++ == 0) ++sat_[u];
    }
  }

  /// DSATUR vertex choice: max saturation, tie max conflict degree, tie
  /// lowest index — fully deterministic.
  [[nodiscard]] std::uint32_t next_vertex() const {
    std::uint32_t best = kNone;
    for (std::uint32_t v = 0; v < s_; ++v) {
      if (lane_of_[v] != kNone) continue;
      if (best == kNone || sat_[v] > sat_[best] ||
          (sat_[v] == sat_[best] && degree_[v] > degree_[best]))
        best = v;
    }
    return best;
  }

  bool dfs() {
    const std::uint32_t v = next_vertex();
    if (v == kNone) return true;  // every suspect placed
    // Try existing lanes in order plus at most one fresh lane (empty lanes
    // are interchangeable, so opening a specific one loses no solutions).
    const std::uint32_t tryable = std::min(lanes_used_ + 1, k_);
    for (std::uint32_t lane = 0; lane < tryable; ++lane) {
      if (cnt_[v * k_ + lane] != 0) continue;  // conflicting neighbor there
      if (++nodes_ > budget_) {
        budget_hit_ = true;
        return false;
      }
      std::vector<std::uint64_t> merged =
          merge_edges(lane_edges_[lane], restricted_[v]);
      if (!dependencies_acyclic(num_compact_, merged)) continue;

      std::vector<std::uint64_t> saved = std::move(lane_edges_[lane]);
      lane_edges_[lane] = std::move(merged);
      const bool opened = lane == lanes_used_;
      if (opened) ++lanes_used_;
      lane_of_[v] = lane;
      for (std::uint32_t u = 0; u < s_; ++u) {
        if (!adjacent(v, u)) continue;
        if (cnt_[u * k_ + lane]++ == 0) ++sat_[u];
      }

      if (dfs()) return true;

      for (std::uint32_t u = 0; u < s_; ++u) {
        if (!adjacent(v, u)) continue;
        if (--cnt_[u * k_ + lane] == 0) --sat_[u];
      }
      lane_of_[v] = kNone;
      if (opened) --lanes_used_;
      lane_edges_[lane] = std::move(saved);
      if (budget_hit_) return false;
    }
    return false;
  }

  std::size_t s_;
  std::size_t num_compact_;
  const std::vector<std::uint64_t>& adj_;
  std::size_t words_;
  const std::vector<std::uint32_t>& degree_;
  const std::vector<std::vector<std::uint64_t>>& restricted_;
  const std::vector<std::uint32_t>& clique_;
  std::uint64_t budget_;
  std::uint64_t nodes_ = 0;
  bool budget_hit_ = false;

  std::uint32_t k_ = 0;
  std::vector<std::uint32_t> lane_of_;
  std::uint32_t lanes_used_ = 0;
  std::vector<std::vector<std::uint64_t>> lane_edges_;
  std::vector<std::uint16_t> cnt_;
  std::vector<std::uint32_t> sat_;
};

}  // namespace

VlOptimality prove_vl_optimality(
    const topo::Fabric& fabric,
    std::span<const std::vector<std::uint64_t>> per_dest,
    std::uint32_t max_lanes, VlAssignment& assignment,
    const VlOptimalityOptions& options) {
  FTCF_PROF_SCOPE("check.vl.optimal");
  util::expects(max_lanes >= 1 && max_lanes <= 64,
                "lane-minimality proof supports 1..64 lanes");
  util::expects(assignment.lane_of_dest.size() == per_dest.size(),
                "assignment and dependency sets must cover the same hosts");
  const std::uint64_t n = per_dest.size();
  const std::size_t num_channels = switch_channels(fabric).size();

  VlOptimality out;
  out.node_budget = options.node_budget;
  if (assignment.complete())
    out.upper_bound = std::max<std::uint32_t>(assignment.num_lanes, 1);

  // Destinations the greedy search left out fall in two classes; only a
  // cyclic own-set is beyond repair (anything assigned has an acyclic set by
  // construction — it sits in a lane whose whole union is acyclic).
  for (const std::uint64_t d : assignment.unassigned)
    if (!dependencies_acyclic(num_channels, per_dest[d]))
      out.unfixable.push_back(d);
  if (!out.unfixable.empty()) return out;

  // The full union graph and its cyclic SCCs. A cycle in *any* subset union
  // is a cycle here, confined to one cyclic SCC — so only edges with both
  // endpoints inside the same cyclic SCC ("hazard edges") can ever matter.
  std::vector<std::uint64_t> all;
  {
    std::size_t total = 0;
    for (const auto& deps : per_dest) total += deps.size();
    all.reserve(total);
    for (const auto& deps : per_dest)
      all.insert(all.end(), deps.begin(), deps.end());
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
  }
  const ChannelGraph graph = build_graph(num_channels, all);
  const SccPartition sccs = scc_partition(graph);
  const auto hazard = [&](std::uint64_t e) {
    const auto a = static_cast<std::uint32_t>(e >> 32);
    const auto b = static_cast<std::uint32_t>(e & 0xffffffffu);
    return sccs.comp[a] == sccs.comp[b] && sccs.comp_size[sccs.comp[a]] > 1;
  };

  // Suspects: destinations contributing at least one hazard edge. Everyone
  // else can never close a cycle on any lane and rides lane 0 for free.
  std::vector<std::uint64_t> suspect_dests;
  std::vector<std::vector<std::uint64_t>> restricted;
  for (std::uint64_t d = 0; d < n; ++d) {
    std::vector<std::uint64_t> edges;
    for (const std::uint64_t e : per_dest[d])
      if (hazard(e)) edges.push_back(e);
    if (edges.empty()) continue;
    suspect_dests.push_back(d);
    restricted.push_back(std::move(edges));
  }
  out.suspects = suspect_dests.size();

  if (suspect_dests.empty()) {
    // No hazard edges means the union graph is acyclic: the greedy search
    // necessarily placed every destination on one lane, which is minimal.
    util::ensures(assignment.complete() && assignment.num_lanes <= 1,
                  "acyclic union must have yielded a 1-lane assignment");
    out.lower_bound = 1;
    return out;
  }

  // Compact renumbering of the hazard-edge endpoints keeps the per-placement
  // acyclicity checks proportional to the cyclic SCCs, not the fabric. The
  // dense->compact map is monotone, so sorted edge lists stay sorted.
  std::vector<std::uint32_t> compact(num_channels, kNone);
  std::uint32_t num_compact = 0;
  for (const auto& edges : restricted) {
    for (const std::uint64_t e : edges) {
      compact[e >> 32] = 0;
      compact[e & 0xffffffffu] = 0;
    }
  }
  for (std::uint32_t c = 0; c < num_channels; ++c)
    if (compact[c] == 0) compact[c] = num_compact++;
  for (auto& edges : restricted)
    for (std::uint64_t& e : edges)
      e = (static_cast<std::uint64_t>(compact[e >> 32]) << 32) |
          compact[e & 0xffffffffu];

  // Pairwise conflicts: two suspects whose restricted unions cycle can never
  // share a lane. Parallel over rows, merged in index order — deterministic.
  const std::size_t s = suspect_dests.size();
  const std::size_t words = (s + 63) / 64;
  std::vector<std::uint64_t> adj(s * words, 0);
  const auto rows = par::parallel_map(
      s,
      [&](std::size_t i) {
        std::vector<std::uint32_t> hits;
        for (std::size_t j = i + 1; j < s; ++j) {
          if (!dependencies_acyclic(num_compact,
                                    merge_edges(restricted[i], restricted[j])))
            hits.push_back(static_cast<std::uint32_t>(j));
        }
        return hits;
      },
      par::ForOptions{.threads = 0, .grain = 1, .label = "check.vl.conflicts"});
  std::vector<std::uint32_t> degree(s, 0);
  for (std::size_t i = 0; i < s; ++i) {
    for (const std::uint32_t j : rows[i]) {
      adj[i * words + (j >> 6)] |= 1ull << (j & 63);
      adj[j * words + (i >> 6)] |= 1ull << (i & 63);
      ++degree[i];
      ++degree[j];
      ++out.conflict_edges;
    }
  }

  // Greedy clique seed: highest-degree-first insertion. Members need
  // pairwise distinct lanes, so the size is a sound chromatic lower bound.
  std::vector<std::uint32_t> order(s);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return degree[a] != degree[b] ? degree[a] > degree[b] : a < b;
  });
  std::vector<std::uint32_t> clique;
  const auto adjacent = [&](std::uint32_t u, std::uint32_t v) {
    return ((adj[u * words + (v >> 6)] >> (v & 63)) & 1u) != 0;
  };
  for (const std::uint32_t v : order) {
    const bool extends = std::all_of(
        clique.begin(), clique.end(),
        [&](std::uint32_t m) { return adjacent(m, v); });
    if (extends) clique.push_back(v);
  }
  std::sort(clique.begin(), clique.end());
  out.lower_bound = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(clique.size()));
  for (const std::uint32_t v : clique) out.clique.push_back(suspect_dests[v]);

  // Branch and bound downward from the best known assignment.
  LaneSearch search(s, num_compact, adj, words, degree, restricted, clique,
                    options.node_budget);
  std::vector<std::uint32_t> best_lanes;
  std::uint32_t best_used = 0;
  std::uint32_t k = out.upper_bound == 0 ? max_lanes : out.upper_bound - 1;
  while (k >= out.lower_bound) {
    std::vector<std::uint32_t> lanes;
    std::uint32_t used = 0;
    const LaneSearch::Result result = search.run(k, lanes, used);
    if (result == LaneSearch::Result::kFeasible) {
      best_lanes = std::move(lanes);
      best_used = used;
      out.upper_bound = used;
      if (used <= 1) break;
      k = used - 1;
    } else if (result == LaneSearch::Result::kInfeasible) {
      out.lower_bound = k + 1;
      break;
    } else {
      out.budget_exhausted = true;
      break;
    }
  }
  out.nodes_explored = search.nodes_explored();

  if (!best_lanes.empty()) {
    // The search beat the greedy proposal (or found what greedy could not).
    VlAssignment replacement;
    replacement.num_lanes = best_used;
    replacement.lane_of_dest.assign(n, 0);
    for (std::size_t i = 0; i < s; ++i)
      replacement.lane_of_dest[suspect_dests[i]] = best_lanes[i];
    // Insurance on the SCC-restriction argument: every lane's *full*
    // (unrestricted) union must be acyclic too.
    for (std::uint32_t lane = 0; lane < best_used; ++lane) {
      std::vector<std::uint64_t> lane_union;
      for (std::uint64_t d = 0; d < n; ++d) {
        if (replacement.lane_of_dest[d] != lane) continue;
        lane_union = merge_edges(lane_union, per_dest[d]);
      }
      util::ensures(dependencies_acyclic(num_channels, lane_union),
                    "restricted-search lane must be acyclic on full edges");
    }
    assignment = std::move(replacement);
    out.improved = true;
  }
  return out;
}

}  // namespace ftcf::check
