#include "check/diagnostics.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/expects.hpp"

namespace ftcf::check {

const char* severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

Suppressions Suppressions::parse(std::istream& is) {
  Suppressions out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r");
    std::string token = line.substr(b, e - b + 1);

    Entry entry;
    const auto colon = token.find(':');
    if (colon != std::string::npos) {
      entry.rule = token.substr(0, colon);
      entry.location_part = token.substr(colon + 1);
    } else {
      entry.rule = token;
    }
    // Tolerate padding around the separator ("rule : location"): trim both
    // parts so hand-edited baselines match what the analyzers emit.
    const auto trim = [](std::string& s) {
      const auto tb = s.find_first_not_of(" \t");
      if (tb == std::string::npos) {
        s.clear();
        return;
      }
      const auto te = s.find_last_not_of(" \t");
      s = s.substr(tb, te - tb + 1);
    };
    trim(entry.rule);
    trim(entry.location_part);
    if (entry.rule.empty() ||
        entry.rule.find_first_of(" \t") != std::string::npos)
      throw util::ParseError("suppressions line " + std::to_string(lineno) +
                             ": expected 'rule' or 'rule:location', got '" +
                             token + "'");
    out.entries_.push_back(std::move(entry));
  }
  return out;
}

Suppressions Suppressions::parse_string(const std::string& text) {
  std::istringstream iss(text);
  return parse(iss);
}

std::vector<std::string> Suppressions::rules() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.rule);
  return out;
}

bool Suppressions::matches(const Finding& finding) const {
  for (const Entry& entry : entries_) {
    if (entry.rule != finding.rule) continue;
    if (entry.location_part.empty() ||
        finding.location.find(entry.location_part) != std::string::npos)
      return true;
  }
  return false;
}

void Diagnostics::set_suppressions(Suppressions suppressions) {
  suppressions_ = std::move(suppressions);
}

void Diagnostics::add(Finding finding) {
  // Drift guard: a rule outside the catalog could never be suppressed or
  // baselined, so emitting one is a library bug, not an input problem.
  if (!is_known_rule(finding.rule))
    util::ensures(false, "rule '" + finding.rule +
                             "' is not in the known-rule catalog; add it to "
                             "known_rule_ids()");
  if (suppressions_.matches(finding)) {
    ++suppressed_;
    return;
  }
  ++counts_[static_cast<std::size_t>(finding.severity)];
  findings_.push_back(std::move(finding));
}

void Diagnostics::note(std::string rule, std::string location,
                       std::string message) {
  add(Finding{std::move(rule), Severity::kNote, std::move(location),
              std::move(message)});
}

void Diagnostics::warning(std::string rule, std::string location,
                          std::string message) {
  add(Finding{std::move(rule), Severity::kWarning, std::move(location),
              std::move(message)});
}

void Diagnostics::error(std::string rule, std::string location,
                        std::string message) {
  add(Finding{std::move(rule), Severity::kError, std::move(location),
              std::move(message)});
}

std::uint64_t Diagnostics::count(Severity severity) const noexcept {
  return counts_[static_cast<std::size_t>(severity)];
}

void Diagnostics::write_text(std::ostream& os) const {
  for (const Finding& f : findings_) {
    os << severity_name(f.severity) << '[' << f.rule << ']';
    if (!f.location.empty()) os << ' ' << f.location;
    os << ": " << f.message << '\n';
  }
  os << "check: " << errors() << " error(s), " << warnings()
     << " warning(s), " << notes() << " note(s)";
  if (suppressed_ != 0) os << ", " << suppressed_ << " suppressed";
  os << '\n';
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void Diagnostics::write_json(
    std::ostream& os, const std::map<std::string, std::string>& meta) const {
  os << "{\n \"meta\":{";
  bool first = true;
  for (const auto& [key, value] : meta) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, key);
    os << ':';
    write_json_string(os, value);
  }
  os << "},\n \"summary\":{\"errors\":" << errors()
     << ",\"notes\":" << notes() << ",\"suppressed\":" << suppressed_
     << ",\"warnings\":" << warnings() << "},\n \"findings\":[";
  first = true;
  for (const Finding& f : findings_) {
    os << (first ? "\n  " : ",\n  ");
    first = false;
    os << "{\"location\":";
    write_json_string(os, f.location);
    os << ",\"message\":";
    write_json_string(os, f.message);
    os << ",\"rule\":";
    write_json_string(os, f.rule);
    os << ",\"severity\":\"" << severity_name(f.severity) << "\"}";
  }
  os << (findings_.empty() ? "]\n}\n" : "\n ]\n}\n");
}

std::span<const std::string_view> known_rule_ids() noexcept {
  // Sorted ascending; keep in sync with docs/STATIC_ANALYSIS.md.
  static constexpr std::string_view kRules[] = {
      "cdg-adaptive-cycle",
      "cdg-adaptive-ok",
      "cdg-cycle",
      "cdg-walk-mismatch",
      "cert-ok",
      "cert-symbolic-mismatch",
      "cert-symbolic-ok",
      "cert-telemetry-mismatch",
      "cert-telemetry-ok",
      "cps-displacement",
      "credit-cdg-mismatch",
      "credit-loop",
      "hsd-violation",
      "lft-incomplete",
      "order-mismatch",
      "order-partial",
      "pgft-structure",
      "rlft-cbb",
      "rlft-parallel-ports",
      "rlft-radix",
      "rlft-single-cable",
      "route-problem",
      "route-unreachable",
      "suppress-unknown-rule",
      "symbolic-inapplicable",
      "updown-turn",
      "vl-assignment",
      "vl-bound-gap",
      "vl-cycle",
      "vl-optimal",
  };
  return kRules;
}

bool is_known_rule(std::string_view rule) noexcept {
  constexpr std::string_view kBlamePrefix = "blame-";
  if (rule.rfind(kBlamePrefix, 0) == 0)
    return is_known_rule(rule.substr(kBlamePrefix.size()));
  const auto rules = known_rule_ids();
  return std::binary_search(rules.begin(), rules.end(), rule);
}

void write_baseline(const Diagnostics& diagnostics, std::ostream& os) {
  os << "# suppression baseline written by ftcf_tool check --write-baseline\n"
        "# one entry per line: rule or rule:location-substring\n";
  std::vector<std::string> seen;
  for (const Finding& f : diagnostics.findings()) {
    // A location the parser cannot reproduce — comment markers, line breaks,
    // or leading/trailing padding it would trim away — falls back to
    // suppressing the rule everywhere.
    const std::string& loc = f.location;
    const bool roundtrips =
        !loc.empty() && loc.find_first_of("#\r\n") == std::string::npos &&
        loc.front() != ' ' && loc.front() != '\t' && loc.back() != ' ' &&
        loc.back() != '\t';
    std::string token = f.rule;
    if (roundtrips) token += ':' + loc;
    if (std::find(seen.begin(), seen.end(), token) != seen.end()) continue;
    seen.push_back(token);
    os << token << '\n';
  }
}

}  // namespace ftcf::check
