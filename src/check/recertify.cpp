#include "check/recertify.hpp"

#include <algorithm>
#include <ostream>

#include "check/depgraph.hpp"
#include "obs/profile.hpp"
#include "routing/trace.hpp"
#include "util/expects.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {

using topo::Fabric;
using topo::NodeId;
using topo::PortId;
using util::expects;

namespace {

/// Bucket shift for one load transition `before -> after` on one class
/// histogram; keeps the class maximum current.
void hist_shift(std::vector<std::uint32_t>& hist, std::uint32_t& max_load,
                std::uint32_t before, std::uint32_t after) {
  if (before > 0) --hist[before];
  if (after > 0) {
    if (after >= hist.size()) hist.resize(after + 1, 0);
    ++hist[after];
  }
  if (after > max_load) max_load = after;
  while (max_load > 0 && hist[max_load] == 0) --max_load;
}

}  // namespace

IncrementalCertifier::IncrementalCertifier(const Fabric& fabric,
                                           const route::ForwardingTables& tables,
                                           const order::NodeOrdering& ordering,
                                           const cps::Sequence& sequence)
    : fabric_(&fabric),
      tables_(&tables),
      num_ranks_(sequence.num_ranks),
      sequence_name_(sequence.name) {
  FTCF_PROF_SCOPE("check.recertify_build");

  port_class_.resize(fabric.num_ports());
  for (PortId pid = 0; pid < fabric.num_ports(); ++pid) {
    const topo::Port& pt = fabric.port(pid);
    const topo::Node& n = fabric.node(pt.node);
    if (n.kind == topo::NodeKind::kHost)
      port_class_[pid] = 0;
    else
      port_class_[pid] = pt.index >= n.num_down_ports ? 1 : 2;
  }

  const std::size_t num_stages = sequence.stages.size();
  stages_.resize(num_stages);
  flows_by_dest_.resize(fabric.num_hosts());
  paths_.resize(fabric.num_hosts());
  const std::uint64_t num_leaves = fabric.switches_at_level(1);

  for (std::size_t s = 0; s < num_stages; ++s) {
    StageState& st = stages_[s];
    st.shape = classify_stage_shape(sequence.stages[s], sequence.num_ranks);
    if (sequence.stages[s].empty()) continue;
    st.flows = ordering.map_stage(sequence.stages[s]);
    for (std::size_t p = 0; p < st.flows.size(); ++p) {
      const cps::Pair& flow = st.flows[p];
      if (flow.src == flow.dst) continue;
      ++st.num_flows;
      const std::uint32_t ordinal = first_leaf_ordinal(flow.src, flow.dst);
      flows_by_dest_[flow.dst].push_back({static_cast<std::uint32_t>(s),
                                          static_cast<std::uint32_t>(flow.src),
                                          ordinal,
                                          static_cast<std::uint32_t>(p)});
      std::vector<LeafPath>& per_leaf = paths_[flow.dst];
      if (per_leaf.empty()) per_leaf.resize(num_leaves);
      per_leaf[ordinal].present = true;
    }
  }

  // Stage slices of each destination's flow list: flows_by_dest_ was filled
  // stage-ascending, so per-stage runs are contiguous.
  flow_offsets_.resize(fabric.num_hosts());
  for (std::uint64_t dest = 0; dest < fabric.num_hosts(); ++dest) {
    std::vector<std::uint32_t>& offsets = flow_offsets_[dest];
    offsets.assign(num_stages + 1, 0);
    for (const FlowRef& ref : flows_by_dest_[dest]) ++offsets[ref.stage + 1];
    for (std::size_t s = 0; s < num_stages; ++s) offsets[s + 1] += offsets[s];
  }

  // Cache every (destination, entry leaf) switch path. Destinations own
  // disjoint cache rows, so the fill parallelizes race-free.
  const par::ForOptions path_opts{.threads = 0, .grain = 16,
                                  .label = "check.recertify"};
  par::parallel_for(
      fabric.num_hosts(),
      [&](std::size_t dest, std::uint32_t) {
        for (std::uint64_t o = 0; o < paths_[dest].size(); ++o) {
          if (!paths_[dest][o].present) continue;
          LeafPath path = walk_leafpath(dest, fabric.switch_node(1, o));
          path.present = true;
          paths_[dest][o] = std::move(path);
        }
      },
      path_opts);

  // Blame inversion index: per switch link, the packed (dest, ordinal) keys
  // of every cached path crossing it. The dest-ascending, ordinal-ascending
  // fill appends packed keys in increasing order, so each per-link vector is
  // born sorted; a link repeated inside one path appends the same key twice
  // in a row and is dropped.
  link_paths_.resize(fabric.num_ports());
  for (std::uint64_t dest = 0; dest < fabric.num_hosts(); ++dest)
    for (std::uint64_t o = 0; o < paths_[dest].size(); ++o) {
      if (!paths_[dest][o].present) continue;
      const std::uint64_t packed = (dest << 32) | o;
      for (const PortId pid : paths_[dest][o].links) {
        std::vector<std::uint64_t>& keys = link_paths_[pid];
        if (keys.empty() || keys.back() != packed) keys.push_back(packed);
      }
    }

  // Per-stage load state from the cached paths (same walk the one-shot
  // certifier performs, shared across the sources entering each leaf).
  const par::ForOptions stage_opts{.threads = 0, .grain = 4,
                                   .label = "check.recertify"};
  par::parallel_for(
      num_stages,
      [&](std::size_t s, std::uint32_t) {
        StageState& st = stages_[s];
        if (st.flows.empty()) return;
        st.loads.assign(fabric.num_ports(), 0);
        for (const cps::Pair& flow : st.flows) {
          if (flow.src == flow.dst) continue;
          const LeafPath& path =
              paths_[flow.dst][first_leaf_ordinal(flow.src, flow.dst)];
          if (!path.routable) {
            ++st.unroutable;
            continue;
          }
          ++st.loads[injection_link(flow.src, flow.dst)];
          for (const PortId pid : path.links) ++st.loads[pid];
        }
        for (PortId pid = 0; pid < st.loads.size(); ++pid) {
          const std::uint32_t load = st.loads[pid];
          if (load == 0) continue;
          ++st.links_loaded;
          hist_shift(st.hist[0], st.max_load[0], 0, load);
          const std::uint8_t cls = port_class_[pid];
          if (cls != 0) hist_shift(st.hist[cls], st.max_load[cls], 0, load);
          if (load >= 2) st.hot_pids.push_back(pid);  // pid-ascending scan
        }
      },
      stage_opts);

  // Static lints (fabric wiring, ordering, stage shapes) never change under
  // churn; only lint_tables must re-run when a certificate needs blames.
  lint_fabric(fabric, base_lints_);
  lint_ordering(fabric, ordering, base_lints_);
  lint_sequence(sequence, base_lints_);
}

std::uint32_t IncrementalCertifier::first_leaf_ordinal(std::uint64_t src,
                                                       std::uint64_t dst) const {
  const NodeId host = fabric_->host_node(src);
  const topo::Node& n = fabric_->node(host);
  const NodeId leaf = fabric_->neighbor(
      host, n.num_down_ports + route::host_up_port(*fabric_, src, dst));
  return fabric_->node(leaf).ordinal;
}

PortId IncrementalCertifier::injection_link(std::uint64_t src,
                                            std::uint64_t dst) const {
  const NodeId host = fabric_->host_node(src);
  const topo::Node& n = fabric_->node(host);
  return fabric_->port_id(
      host, n.num_down_ports + route::host_up_port(*fabric_, src, dst));
}

IncrementalCertifier::LeafPath IncrementalCertifier::walk_leafpath(
    std::uint64_t dest, NodeId leaf) const {
  LeafPath path;
  const NodeId dst_node = fabric_->host_node(dest);
  NodeId at = leaf;
  const std::size_t max_links = 2ull * fabric_->height() + 2;
  for (std::size_t hop = 0;; ++hop) {
    util::ensures(hop <= max_links, "forwarding tables loop");
    if (!tables_->has_entry(at, dest)) return path;  // prefix kept for blame
    const PortId out = fabric_->port_id(at, tables_->out_port(at, dest));
    path.links.push_back(out);
    at = fabric_->port(fabric_->port(out).peer).node;
    if (at == dst_node) {
      path.routable = true;
      return path;
    }
  }
}

void IncrementalCertifier::bump(StageState& st, PortId pid, int dir) {
  std::uint32_t& load = st.loads[pid];
  expects(dir > 0 || load > 0, "negative link load in incremental recert");
  const std::uint32_t before = load;
  const std::uint32_t after = dir > 0 ? before + 1 : before - 1;
  load = after;
  if (before == 0) ++st.links_loaded;
  if (after == 0) --st.links_loaded;
  hist_shift(st.hist[0], st.max_load[0], before, after);
  const std::uint8_t cls = port_class_[pid];
  if (cls != 0) hist_shift(st.hist[cls], st.max_load[cls], before, after);
  if (before < 2 && after >= 2) {
    const auto it = std::lower_bound(st.hot_pids.begin(), st.hot_pids.end(), pid);
    st.hot_pids.insert(it, pid);
  } else if (before >= 2 && after < 2) {
    const auto it = std::lower_bound(st.hot_pids.begin(), st.hot_pids.end(), pid);
    st.hot_pids.erase(it);
  }
}

void IncrementalCertifier::apply_flow(StageState& st, const LeafPath& path,
                                      PortId inject, int dir) {
  if (!path.routable) {
    expects(dir > 0 || st.unroutable > 0,
            "negative unroutable count in incremental recert");
    if (dir > 0)
      ++st.unroutable;
    else
      --st.unroutable;
    return;
  }
  bump(st, inject, dir);
  for (const PortId pid : path.links) bump(st, pid, dir);
}

bool IncrementalCertifier::flow_crosses(std::uint64_t src, std::uint64_t dst,
                                        const LeafPath& path,
                                        PortId link) const {
  if (src == dst) return false;
  if (injection_link(src, dst) == link) return true;
  return std::find(path.links.begin(), path.links.end(), link) !=
         path.links.end();
}

PortId IncrementalCertifier::hottest(const StageState& st) const {
  // The one-shot analyzer reports the lowest PortId attaining the maximum;
  // every load >= 2 lives in hot_pids, which is pid-ascending.
  for (const PortId pid : st.hot_pids)
    if (st.loads[pid] == st.max_load[0]) return pid;
  expects(false, "stage maximum missing from hot-link index");
  return topo::kInvalidPort;
}

StageWitness IncrementalCertifier::witness(const StageState& st) const {
  StageWitness w;
  w.shape = st.shape;
  w.max_hsd = st.max_load[0];
  w.max_up_hsd = st.max_load[1];
  w.max_down_hsd = st.max_load[2];
  w.num_flows = st.num_flows;
  w.links_loaded = st.links_loaded;
  w.unroutable_flows = st.unroutable;
  return w;
}

void IncrementalCertifier::index_path_links(
    std::uint64_t dest, std::uint32_t ordinal,
    const std::vector<PortId>& links, bool add) {
  const std::uint64_t packed = (dest << 32) | ordinal;
  for (const PortId pid : links) {
    std::vector<std::uint64_t>& keys = link_paths_[pid];
    const auto it = std::lower_bound(keys.begin(), keys.end(), packed);
    const bool found = it != keys.end() && *it == packed;
    // Insert-if-absent / erase-if-found keeps a link repeated inside one
    // path as a single key, mirroring the build-time dedup.
    if (add && !found)
      keys.insert(it, packed);
    else if (!add && found)
      keys.erase(it);
  }
}

void IncrementalCertifier::collect_colliding(std::size_t stage, PortId hot,
                                             StageBlame& blame) const {
  // Injection links are host ports; a switch hot link can only be crossed
  // via a cached path, so the link index names every candidate directly.
  // A host hot link (a source sending twice in one stage) falls back to the
  // certifier's all-flow rescan.
  if (port_class_[hot] == 0) {
    const StageState& st = stages_[stage];
    for (const cps::Pair& flow : st.flows) {
      if (blame.colliding.size() == kMaxCollidingShown) break;
      if (flow.src == flow.dst) continue;
      const LeafPath& path =
          paths_[flow.dst][first_leaf_ordinal(flow.src, flow.dst)];
      if (flow_crosses(flow.src, flow.dst, path, hot))
        blame.colliding.push_back({flow.src, flow.dst});
    }
    return;
  }
  struct Hit {
    std::uint32_t pair;
    std::uint64_t src;
    std::uint64_t dst;
  };
  std::vector<Hit> hits;
  for (const std::uint64_t packed : link_paths_[hot]) {
    const std::uint64_t dest = packed >> 32;
    const auto ordinal = static_cast<std::uint32_t>(packed);
    const std::vector<FlowRef>& refs = flows_by_dest_[dest];
    const std::vector<std::uint32_t>& offsets = flow_offsets_[dest];
    for (std::uint32_t i = offsets[stage]; i < offsets[stage + 1]; ++i)
      if (refs[i].ordinal == ordinal)
        hits.push_back({refs[i].pair, refs[i].src, dest});
  }
  // Stage-pair order, first kMaxCollidingShown — byte-identical to the
  // one-shot certifier's in-order rescan.
  std::sort(hits.begin(), hits.end(),
            [](const Hit& a, const Hit& b) { return a.pair < b.pair; });
  if (hits.size() > kMaxCollidingShown) hits.resize(kMaxCollidingShown);
  for (const Hit& hit : hits) blame.colliding.push_back({hit.src, hit.dst});
}

std::vector<StageBlame> IncrementalCertifier::build_blames() const {
  std::vector<StageBlame> blames;
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const StageState& st = stages_[s];
    if (st.max_load[0] <= 1) continue;
    StageBlame blame;
    blame.stage = s;
    blame.max_hsd = st.max_load[0];
    blame.hot_link = hottest(st);
    blame.hot_link_name = channel_to_string(*fabric_, blame.hot_link);
    collect_colliding(s, blame.hot_link, blame);
    blames.push_back(std::move(blame));
  }
  if (!blames.empty()) {
    Diagnostics lints = base_lints_;
    lint_tables(*fabric_, *tables_, /*degraded_expected=*/false, lints);
    for (StageBlame& blame : blames)
      blame.blamed_rule = detail::blame_rule(lints, blame.stage);
  }
  return blames;
}

CertificateDelta IncrementalCertifier::update(const route::RepairDelta& delta) {
  FTCF_PROF_SCOPE("check.recertify_update");
  CertificateDelta out;
  out.entries_changed = delta.entries_changed;
  out.changed_dests = delta.changed_dests.size();
  out.rows_filled = delta.row_filled_dests.size();

  // Row fills touch flow paths only when the revived switch is a leaf: the
  // filled destinations are fully pristine, and no surviving entry pointed
  // into the switch while it was dead, so for an upper switch the new row
  // is load-invisible until some later event reroutes a column through it.
  const bool leaf_fill =
      !delta.row_filled_dests.empty() &&
      delta.row_switch != topo::kInvalidNode &&
      fabric_->node(delta.row_switch).level == 1;
  const std::uint32_t row_ordinal =
      leaf_fill ? fabric_->node(delta.row_switch).ordinal : 0;

  // Re-path the affected (destination, leaf) cache rows against the
  // repaired tables, copy-on-write, so old and new paths coexist while the
  // per-stage loads are shifted. A changed *column* usually leaves most of
  // its cached paths byte-identical (only the entry leaves whose rows moved
  // matter), so each fresh row records which ordinals actually differ — a
  // flow over an unchanged path would subtract and re-add the exact same
  // loads, and is skipped wholesale.
  struct FreshRow {
    std::uint64_t dest = 0;
    std::vector<LeafPath> paths;
    std::vector<std::uint8_t> changed;  ///< per ordinal
    bool any_changed = false;
    bool fill_only = false;  ///< row fill: only row_ordinal can move
  };
  const auto path_differs = [](const LeafPath& a, const LeafPath& b) {
    return a.routable != b.routable || a.links != b.links;
  };
  std::vector<FreshRow> fresh;
  {
    FTCF_PROF_SCOPE("check.recertify_repath");
    for (const std::uint64_t dest : delta.changed_dests)
      if (!paths_[dest].empty())  // else: no flow targets this host
        fresh.push_back({dest, {}, {}, false, false});
    if (leaf_fill) {
      for (const std::uint64_t dest : delta.row_filled_dests)
        if (!paths_[dest].empty() && paths_[dest][row_ordinal].present)
          fresh.push_back({dest, {}, {}, false, true});
      std::sort(fresh.begin(), fresh.end(),
                [](const FreshRow& a, const FreshRow& b) {
                  return a.dest < b.dest;
                });
    }
    // Rows are disjoint and read only the (immutable within this pass)
    // tables, so the re-walks parallelize; row order was fixed above.
    const par::ForOptions repath_opts{.threads = 0, .grain = 8,
                                      .label = "check.recertify"};
    par::parallel_for(
        fresh.size(),
        [&](std::size_t i, std::uint32_t) {
          FreshRow& row = fresh[i];
          row.paths = paths_[row.dest];
          row.changed.assign(row.paths.size(), 0);
          const std::uint64_t first = row.fill_only ? row_ordinal : 0;
          const std::uint64_t last =
              row.fill_only ? row_ordinal + 1 : row.paths.size();
          for (std::uint64_t o = first; o < last; ++o) {
            if (!row.paths[o].present) continue;
            LeafPath path = walk_leafpath(row.dest, fabric_->switch_node(1, o));
            path.present = true;
            if (path_differs(path, row.paths[o])) {
              row.changed[o] = 1;
              row.any_changed = true;
            }
            row.paths[o] = std::move(path);
          }
        },
        repath_opts);
  }

  // Collect the affected flows per stage: exactly those whose cached entry
  // path differs under the repaired tables.
  struct Touched {
    std::uint32_t src;
    std::uint32_t ordinal;
    std::uint64_t dst;
  };
  std::vector<std::vector<Touched>> touched(stages_.size());
  const auto lookup_fresh = [&fresh](std::uint64_t dest) -> const FreshRow& {
    const auto it = std::lower_bound(
        fresh.begin(), fresh.end(), dest,
        [](const FreshRow& row, std::uint64_t d) { return row.dest < d; });
    expects(it != fresh.end() && it->dest == dest,
            "re-walked flow without a re-pathed cache row");
    return *it;
  };
  for (const FreshRow& row : fresh) {
    if (!row.any_changed) continue;
    for (const FlowRef& ref : flows_by_dest_[row.dest])
      if (row.changed[ref.ordinal])
        touched[ref.stage].push_back({ref.src, ref.ordinal, row.dest});
  }

  std::vector<std::size_t> dirty_stages;
  for (std::size_t s = 0; s < stages_.size(); ++s)
    if (!touched[s].empty()) dirty_stages.push_back(s);
  out.stages_touched = dirty_stages.size();
  if (!dirty_stages.empty()) out.applied = true;

  // Shift each dirty stage's loads: subtract the old cached path of every
  // affected flow, add its re-walked path. Stages own disjoint state, so
  // this parallelizes; witness comparison happens in the same task.
  std::vector<std::uint8_t> witness_changed(dirty_stages.size(), 0);
  std::vector<StageWitness> new_witness(dirty_stages.size());
  const par::ForOptions opts{.threads = 0, .grain = 8,
                             .label = "check.recertify"};
  par::parallel_for(
      dirty_stages.size(),
      [&](std::size_t i, std::uint32_t) {
        StageState& st = stages_[dirty_stages[i]];
        const StageWitness before = witness(st);
        for (const Touched& t : touched[dirty_stages[i]]) {
          const PortId inject = injection_link(t.src, t.dst);
          apply_flow(st, paths_[t.dst][t.ordinal], inject, -1);
          apply_flow(st, lookup_fresh(t.dst).paths[t.ordinal], inject, +1);
        }
        const StageWitness after = witness(st);
        new_witness[i] = after;
        witness_changed[i] =
            after.max_hsd != before.max_hsd ||
            after.max_up_hsd != before.max_up_hsd ||
            after.max_down_hsd != before.max_down_hsd ||
            after.links_loaded != before.links_loaded ||
            after.unroutable_flows != before.unroutable_flows;
      },
      opts);

  for (std::size_t i = 0; i < dirty_stages.size(); ++i) {
    out.flows_rewalked += touched[dirty_stages[i]].size();
    if (!witness_changed[i]) continue;
    ++out.stages_changed;
    if (out.changed_witnesses.size() < kMaxDeltaStagesShown)
      out.changed_witnesses.emplace_back(dirty_stages[i], new_witness[i]);
  }

  for (FreshRow& row : fresh) {
    for (std::uint64_t o = 0; o < row.changed.size(); ++o) {
      if (!row.changed[o]) continue;
      const auto ordinal = static_cast<std::uint32_t>(o);
      index_path_links(row.dest, ordinal, paths_[row.dest][o].links,
                       /*add=*/false);
      index_path_links(row.dest, ordinal, row.paths[o].links, /*add=*/true);
    }
    paths_[row.dest] = std::move(row.paths);
  }

  out.contention_free = true;
  for (const StageState& st : stages_)
    if (st.max_load[0] > 1 || st.unroutable > 0) {
      out.contention_free = false;
      break;
    }
  {
    FTCF_PROF_SCOPE("check.recertify_blames");
    out.blames = build_blames();
  }
  return out;
}

Certificate IncrementalCertifier::certificate() const {
  Certificate cert;
  cert.num_ranks = num_ranks_;
  cert.sequence_name = sequence_name_;
  cert.contention_free = true;
  cert.stages.reserve(stages_.size());
  for (const StageState& st : stages_) {
    cert.stages.push_back(witness(st));
    if (st.unroutable > 0 || st.max_load[0] > 1) cert.contention_free = false;
  }
  cert.blames = build_blames();
  return cert;
}

void write_certificate_delta_json(std::ostream& os,
                                  const CertificateDelta& delta,
                                  const std::map<std::string, std::string>& meta) {
  os << "{\n \"meta\":{";
  bool first = true;
  for (const auto& [key, value] : meta) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, key);
    os << ':';
    write_json_string(os, value);
  }
  os << "},\n \"delta\":{\"applied\":" << (delta.applied ? "true" : "false")
     << ",\"changed_dests\":" << delta.changed_dests
     << ",\"contention_free\":" << (delta.contention_free ? "true" : "false")
     << ",\"entries_changed\":" << delta.entries_changed
     << ",\"flows_rewalked\":" << delta.flows_rewalked
     << ",\"rows_filled\":" << delta.rows_filled
     << ",\"stages_changed\":" << delta.stages_changed
     << ",\"stages_shown\":" << delta.changed_witnesses.size()
     << ",\"stages_touched\":" << delta.stages_touched
     << ",\"violations\":" << delta.blames.size() << "},\n \"stages\":[";
  first = true;
  for (const auto& [stage, w] : delta.changed_witnesses) {
    os << (first ? "\n  " : ",\n  ");
    first = false;
    detail::write_stage_row(os, w, stage);
  }
  os << (delta.changed_witnesses.empty() ? "]" : "\n ]")
     << ",\n \"violations\":[";
  first = true;
  for (const StageBlame& blame : delta.blames) {
    os << (first ? "\n  " : ",\n  ");
    first = false;
    detail::write_blame_row(os, blame);
  }
  os << (delta.blames.empty() ? "]\n}\n" : "\n ]\n}\n");
}

}  // namespace ftcf::check
