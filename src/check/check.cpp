#include "check/check.hpp"

#include <sstream>

#include "obs/profile.hpp"

namespace ftcf::check {

namespace {

constexpr std::size_t kMaxWalkProblems = 8;

void report_cdg(const topo::Fabric& fabric, const CdgAnalysis& cdg,
                Diagnostics& diagnostics) {
  if (!cdg.acyclic) {
    std::ostringstream oss;
    oss << "channel dependency graph has " << cdg.cyclic_scc_count
        << " cyclic SCC(s) over " << cdg.num_channels << " channels / "
        << cdg.num_dependencies
        << " dependencies; deterministic routing over these tables can "
           "deadlock. Cycle: "
        << cycle_to_string(fabric, cdg.cycle);
    diagnostics.error("cdg-cycle", "", oss.str());
  } else if (cdg.down_up_turns > 0) {
    std::ostringstream oss;
    oss << cdg.down_up_turns
        << " down->up channel dependenc"
        << (cdg.down_up_turns == 1 ? "y" : "ies")
        << " (up*/down* discipline broken) although no cycle closes; the "
           "tables are deadlock-free by graph analysis but no longer by "
           "construction";
    diagnostics.warning("updown-turn", "", oss.str());
  }
}

void report_walk(const route::LftAudit& walk, bool degraded_expected,
                 Diagnostics& diagnostics) {
  std::size_t shown = 0;
  for (const std::string& problem : walk.problems) {
    if (walk.cdg_mismatch && problem.rfind("walk/CDG", 0) == 0) {
      diagnostics.error("cdg-walk-mismatch", "", problem);
      continue;
    }
    if (shown == kMaxWalkProblems) {
      diagnostics.note("route-problem", "",
                       std::to_string(walk.problems.size() - shown) +
                           " further route problem(s) not shown");
      break;
    }
    diagnostics.error("route-problem", "", problem);
    ++shown;
  }
  if (!walk.unreachable.empty()) {
    const auto& [s, d] = walk.unreachable.front();
    std::ostringstream oss;
    oss << walk.unreachable.size() << " of " << walk.pairs_checked
        << " checked pair(s) unreachable (first: " << s << " -> " << d
        << ")";
    if (degraded_expected) {
      oss << "; expected where faults strand hosts";
      diagnostics.note("route-unreachable", "", oss.str());
    } else {
      oss << " on a pristine fabric";
      diagnostics.warning("route-unreachable", "", oss.str());
    }
  }
}

void record_metrics(obs::MetricsRegistry& metrics, const CheckReport& report) {
  const Diagnostics& d = report.diagnostics;
  metrics.counter("check.findings.errors").inc(d.errors());
  metrics.counter("check.findings.warnings").inc(d.warnings());
  metrics.counter("check.findings.notes").inc(d.notes());
  metrics.counter("check.findings.suppressed").inc(d.suppressed());
  metrics.counter("check.cdg.channels").inc(report.cdg.num_channels);
  metrics.counter("check.cdg.dependencies").inc(report.cdg.num_dependencies);
  metrics.counter("check.cdg.down_up_turns").inc(report.cdg.down_up_turns);
  metrics.gauge("check.cdg.acyclic").set(report.cdg.acyclic ? 1.0 : 0.0);
  metrics.counter("check.walk.pairs_checked").inc(report.walk.pairs_checked);
  metrics.counter("check.walk.pairs_reachable")
      .inc(report.walk.pairs_reachable);
  metrics.counter("check.walk.unreachable").inc(report.walk.unreachable.size());
}

}  // namespace

CheckReport run_check(const topo::Fabric& fabric,
                      const route::ForwardingTables& tables,
                      const CheckOptions& options) {
  FTCF_PROF_SCOPE("check.run");
  CheckReport report;
  report.diagnostics.set_suppressions(options.suppressions);

  lint_fabric(fabric, report.diagnostics);

  report.cdg = analyze_cdg(fabric, tables);
  report_cdg(fabric, report.cdg, report.diagnostics);

  const route::CdgVerdict verdict{report.cdg.acyclic,
                                  report.cdg.down_up_turns};
  report.walk = route::validate_lft(fabric, tables, options.faults,
                                    options.exhaustive_limit, &verdict);
  report_walk(report.walk, options.faults != nullptr, report.diagnostics);

  lint_tables(fabric, tables, options.faults != nullptr, report.diagnostics);
  if (options.ordering != nullptr)
    lint_ordering(fabric, *options.ordering, report.diagnostics);
  if (options.sequence != nullptr)
    lint_sequence(*options.sequence, report.diagnostics);

  if (options.metrics != nullptr) record_metrics(*options.metrics, report);
  return report;
}

}  // namespace ftcf::check
