#include "check/check.hpp"

#include <algorithm>
#include <sstream>

#include "obs/profile.hpp"
#include "util/expects.hpp"

namespace ftcf::check {

namespace {

constexpr std::size_t kMaxWalkProblems = 8;

void report_cdg(const topo::Fabric& fabric, const CdgAnalysis& cdg,
                Diagnostics& diagnostics) {
  if (!cdg.acyclic) {
    std::ostringstream oss;
    oss << "channel dependency graph has " << cdg.cyclic_scc_count
        << " cyclic SCC(s) over " << cdg.num_channels << " channels / "
        << cdg.num_dependencies
        << " dependencies; deterministic routing over these tables can "
           "deadlock. Cycle: "
        << cycle_to_string(fabric, cdg.cycle);
    diagnostics.error("cdg-cycle", "", oss.str());
  } else if (cdg.down_up_turns > 0) {
    std::ostringstream oss;
    oss << cdg.down_up_turns
        << " down->up channel dependenc"
        << (cdg.down_up_turns == 1 ? "y" : "ies")
        << " (up*/down* discipline broken) although no cycle closes; the "
           "tables are deadlock-free by graph analysis but no longer by "
           "construction";
    diagnostics.warning("updown-turn", "", oss.str());
  }
}

void report_walk(const route::LftAudit& walk, bool degraded_expected,
                 Diagnostics& diagnostics) {
  std::size_t shown = 0;
  for (const std::string& problem : walk.problems) {
    if (walk.cdg_mismatch && problem.rfind("walk/CDG", 0) == 0) {
      diagnostics.error("cdg-walk-mismatch", "", problem);
      continue;
    }
    if (shown == kMaxWalkProblems) {
      diagnostics.note("route-problem", "",
                       std::to_string(walk.problems.size() - shown) +
                           " further route problem(s) not shown");
      break;
    }
    diagnostics.error("route-problem", "", problem);
    ++shown;
  }
  if (!walk.unreachable.empty()) {
    const auto& [s, d] = walk.unreachable.front();
    std::ostringstream oss;
    oss << walk.unreachable.size() << " of " << walk.pairs_checked
        << " checked pair(s) unreachable (first: " << s << " -> " << d
        << ")";
    if (degraded_expected) {
      oss << "; expected where faults strand hosts";
      diagnostics.note("route-unreachable", "", oss.str());
    } else {
      oss << " on a pristine fabric";
      diagnostics.warning("route-unreachable", "", oss.str());
    }
  }
}

/// Suppression entries naming rules outside the catalog would otherwise be
/// dead weight a typo could hide behind; surface each one once.
void report_unknown_suppressions(const Suppressions& suppressions,
                                 Diagnostics& diagnostics) {
  std::vector<std::string> reported;
  for (const std::string& rule : suppressions.rules()) {
    if (is_known_rule(rule)) continue;
    if (std::find(reported.begin(), reported.end(), rule) != reported.end())
      continue;
    reported.push_back(rule);
    diagnostics.warning("suppress-unknown-rule", "",
                        "suppression entry names unknown rule '" + rule +
                            "' (not in the stable rule catalog); the entry "
                            "can never match a finding");
  }
}

/// Render a small destination list, e.g. "{3, 17, 41}".
std::string dest_set_to_string(const std::vector<std::uint64_t>& dests) {
  std::ostringstream oss;
  oss << '{';
  for (std::size_t i = 0; i < dests.size(); ++i)
    oss << (i == 0 ? "" : ", ") << dests[i];
  oss << '}';
  return oss.str();
}

void report_vl(const topo::Fabric& fabric, const VlProposal& vl,
               bool cdg_acyclic, Diagnostics& diagnostics) {
  const bool solved = vl.assignment.complete() && vl.analysis.all_acyclic();
  const VlOptimality* opt =
      vl.optimality.has_value() ? &*vl.optimality : nullptr;
  if (solved && opt != nullptr && opt->optimal()) {
    // The minimality proof upgrades the vl-assignment certificate.
    std::ostringstream oss;
    oss << opt->upper_bound
        << " lane(s) proven minimal: branch-and-bound lower bound "
        << opt->lower_bound << " equals the assigned lane count";
    if (opt->clique.size() >= 2)
      oss << "; clique witness " << dest_set_to_string(opt->clique)
          << " — these destinations pairwise conflict, no two can share a "
             "lane";
    else
      oss << "; the union dependency graph over every destination is "
             "acyclic, so one lane suffices";
    if (opt->improved)
      oss << "; the greedy first-fit proposal was suboptimal and has been "
             "replaced";
    oss << " (" << opt->nodes_explored << " search node(s) explored): "
        << vl_assignment_to_string(vl.assignment);
    diagnostics.note("vl-optimal", "", oss.str());
    return;
  }
  if (solved) {
    std::ostringstream oss;
    oss << "virtual-lane assignment with " << vl.assignment.num_lanes
        << " lane(s) renders every per-lane dependency graph acyclic";
    if (cdg_acyclic)
      oss << " (the single-lane CDG is already acyclic, so one lane "
             "suffices)";
    else
      oss << ", breaking the single-lane dependency cycle: "
          << vl_assignment_to_string(vl.assignment);
    diagnostics.note("vl-assignment", "", oss.str());
  } else {
    std::ostringstream oss;
    oss << "no destination->VL assignment within " << vl.assignment.num_lanes
        << " lane(s) breaks every dependency cycle";
    if (!vl.assignment.unassigned.empty())
      oss << " (" << vl.assignment.unassigned.size()
          << " destination(s) unplaceable — a per-destination routing loop "
             "cannot be fixed by lane separation)";
    for (const CdgAnalysis& lane : vl.analysis.lanes) {
      if (lane.acyclic) continue;
      oss << "; first cyclic lane: " << cycle_to_string(fabric, lane.cycle);
      break;
    }
    diagnostics.error("vl-cycle", "", oss.str());
  }

  // Honest bound reporting when the proof did not certify minimality.
  if (opt == nullptr || !opt->provable() || opt->optimal()) return;
  std::ostringstream oss;
  if (opt->budget_exhausted) {
    oss << "lane minimality unresolved: node budget " << opt->node_budget
        << " exhausted after " << opt->nodes_explored
        << " placement(s); proven lower bound " << opt->lower_bound;
    if (opt->clique.size() >= 2)
      oss << " (clique witness " << dest_set_to_string(opt->clique) << ')';
    if (opt->upper_bound != 0)
      oss << ", best known assignment " << opt->upper_bound << " lane(s)"
          << (opt->improved ? " (replacing the greedy proposal)" : "");
    else
      oss << ", no feasible assignment known yet";
  } else {
    // The search ran to exhaustion without finding any assignment the lane
    // budget admits: infeasibility is proven, not just unobserved.
    oss << "proven: no destination->VL assignment exists within the lane "
           "budget — at least "
        << opt->lower_bound << " lane(s) are required ("
        << opt->nodes_explored << " search node(s) explored)";
  }
  diagnostics.warning("vl-bound-gap", "", oss.str());
}

void report_adaptive(const topo::Fabric& fabric,
                     const AdaptiveCdgAnalysis& adaptive,
                     Diagnostics& diagnostics) {
  const CdgAnalysis& cdg = adaptive.cdg;
  if (cdg.acyclic) {
    std::ostringstream oss;
    oss << "adaptive-closure CDG acyclic: " << cdg.num_dependencies
        << " union dependencies over " << cdg.num_channels << " channels ("
        << adaptive.relation_pairs << " (switch, dest) pairs, "
        << adaptive.relation_choices << " candidate out-ports, max fanout "
        << adaptive.max_fanout
        << "); every per-packet minimal up-port policy is deadlock-free";
    diagnostics.note("cdg-adaptive-ok", "", oss.str());
  } else {
    std::ostringstream oss;
    oss << "adaptive routing relation closes a dependency cycle ("
        << cdg.cyclic_scc_count << " cyclic SCC(s) over " << cdg.num_channels
        << " channels / " << cdg.num_dependencies
        << " union dependencies); some legal sequence of up-port choices can "
           "deadlock even if the deterministic tables cannot. Cycle: "
        << cycle_to_string(fabric, cdg.cycle);
    diagnostics.error("cdg-adaptive-cycle", "", oss.str());
  }
}

void report_credit(const topo::Fabric& fabric,
                   const CreditLoopAnalysis& credit, bool cdg_acyclic,
                   Diagnostics& diagnostics) {
  if (!credit.acyclic) {
    std::ostringstream oss;
    oss << "credit flow-control graph has " << credit.cyclic_scc_count
        << " cyclic SCC(s) over " << credit.num_buffered_channels
        << " finite-buffered channels; every buffer in the loop can fill "
           "while waiting on the next — the simulated fabric can wedge. "
           "Loop: "
        << cycle_to_string(fabric, credit.cycle);
    diagnostics.error("credit-loop", "", oss.str());
  } else {
    std::ostringstream oss;
    oss << "credit flow-control graph acyclic: " << credit.num_dependencies
        << " buffer dependencies over " << credit.num_buffered_channels
        << " finite-buffered channels (" << credit.host_injection_channels
        << " host injection links included)";
    diagnostics.note("credit-loop", "", oss.str());
  }
  if (credit.acyclic != cdg_acyclic) {
    std::ostringstream oss;
    oss << "credit-loop prover and link-level CDG disagree (credit "
        << (credit.acyclic ? "acyclic" : "cyclic") << ", CDG "
        << (cdg_acyclic ? "acyclic" : "cyclic")
        << "); host injection channels have in-degree 0, so the verdicts "
           "must coincide — one of the two dependency derivations is wrong";
    diagnostics.error("credit-cdg-mismatch", "", oss.str());
  }
}

void record_metrics(obs::MetricsRegistry& metrics, const CheckReport& report) {
  const Diagnostics& d = report.diagnostics;
  metrics.counter("check.findings.errors").inc(d.errors());
  metrics.counter("check.findings.warnings").inc(d.warnings());
  metrics.counter("check.findings.notes").inc(d.notes());
  metrics.counter("check.findings.suppressed").inc(d.suppressed());
  metrics.counter("check.cdg.channels").inc(report.cdg.num_channels);
  metrics.counter("check.cdg.dependencies").inc(report.cdg.num_dependencies);
  metrics.counter("check.cdg.down_up_turns").inc(report.cdg.down_up_turns);
  metrics.gauge("check.cdg.acyclic").set(report.cdg.acyclic ? 1.0 : 0.0);
  metrics.counter("check.walk.pairs_checked").inc(report.walk.pairs_checked);
  metrics.counter("check.walk.pairs_reachable")
      .inc(report.walk.pairs_reachable);
  metrics.counter("check.walk.unreachable").inc(report.walk.unreachable.size());
  if (report.certificate) {
    metrics.gauge("check.cert.contention_free")
        .set(report.certificate->contention_free ? 1.0 : 0.0);
    metrics.counter("check.cert.stages").inc(report.certificate->stages.size());
    metrics.counter("check.cert.violations")
        .inc(report.certificate->blames.size());
  }
  if (report.telemetry) {
    metrics.counter("check.telemetry.stages")
        .inc(report.telemetry->stages.size());
    metrics.counter("check.telemetry.mismatches")
        .inc(report.telemetry->mismatches);
    metrics.counter("check.telemetry.inconclusive")
        .inc(report.telemetry->inconclusive);
    metrics.gauge("check.telemetry.consistent")
        .set(report.telemetry->consistent() ? 1.0 : 0.0);
  }
  if (report.vl) {
    metrics.gauge("check.vl.lanes").set(report.vl->assignment.num_lanes);
    metrics.gauge("check.vl.acyclic")
        .set(report.vl->analysis.all_acyclic() ? 1.0 : 0.0);
    if (report.vl->optimality) {
      const VlOptimality& opt = *report.vl->optimality;
      metrics.gauge("check.vl.lower_bound").set(opt.lower_bound);
      metrics.gauge("check.vl.optimal").set(opt.optimal() ? 1.0 : 0.0);
      metrics.counter("check.vl.suspects").inc(opt.suspects);
      metrics.counter("check.vl.conflict_edges").inc(opt.conflict_edges);
      metrics.counter("check.vl.bb_nodes").inc(opt.nodes_explored);
    }
  }
  if (report.adaptive) {
    metrics.counter("check.adaptive.dependencies")
        .inc(report.adaptive->cdg.num_dependencies);
    metrics.counter("check.adaptive.choices")
        .inc(report.adaptive->relation_choices);
    metrics.gauge("check.adaptive.acyclic")
        .set(report.adaptive->cdg.acyclic ? 1.0 : 0.0);
  }
  if (report.credit) {
    metrics.counter("check.credit.channels")
        .inc(report.credit->num_buffered_channels);
    metrics.counter("check.credit.dependencies")
        .inc(report.credit->num_dependencies);
    metrics.gauge("check.credit.acyclic")
        .set(report.credit->acyclic ? 1.0 : 0.0);
  }
}

}  // namespace

CheckReport run_check(const topo::Fabric& fabric,
                      const route::ForwardingTables& tables,
                      const CheckOptions& options) {
  FTCF_PROF_SCOPE("check.run");
  CheckReport report;
  report.diagnostics.set_suppressions(options.suppressions);
  report_unknown_suppressions(options.suppressions, report.diagnostics);

  lint_fabric(fabric, report.diagnostics, options.faults);

  report.cdg = analyze_cdg(fabric, tables);
  report_cdg(fabric, report.cdg, report.diagnostics);

  const route::CdgVerdict verdict{report.cdg.acyclic,
                                  report.cdg.down_up_turns};
  report.walk = route::validate_lft(fabric, tables, options.faults,
                                    options.exhaustive_limit, &verdict);
  report_walk(report.walk, options.faults != nullptr, report.diagnostics);

  lint_tables(fabric, tables, options.faults != nullptr, report.diagnostics);
  if (options.ordering != nullptr)
    lint_ordering(fabric, *options.ordering, report.diagnostics);
  if (options.sequence != nullptr)
    lint_sequence(*options.sequence, report.diagnostics);

  if (options.certify) {
    util::expects(options.ordering != nullptr && options.sequence != nullptr,
                  "certification needs a node ordering and a CPS");
    bool need_enumerative = true;
    if (options.symbolic) {
      report.symbolic =
          symbolic_certify(fabric, *options.ordering, *options.sequence,
                           options.tables_canonical_dmodk);
      if (report.symbolic->applicable) {
        if (options.symbolic_cross_check) {
          // Differential mode: run the enumerative walk anyway and demand
          // byte-identical certificates through the shared JSON writer.
          const Certificate enumerative = certify_contention_freedom(
              fabric, tables, *options.ordering, *options.sequence);
          std::ostringstream sym_doc;
          std::ostringstream enum_doc;
          write_certificate_json(sym_doc, report.symbolic->certificate);
          write_certificate_json(enum_doc, enumerative);
          if (sym_doc.str() != enum_doc.str()) {
            report.diagnostics.error(
                "cert-symbolic-mismatch", "",
                "symbolic and enumerative certificates diverge for '" +
                    report.symbolic->certificate.sequence_name +
                    "' — the algebraic proof is unsound for this input; "
                    "the enumerative certificate wins");
            report.certificate = enumerative;
            report_certificate(*report.certificate, report.diagnostics);
            need_enumerative = false;
          }
        }
        if (need_enumerative) {  // no cross-check, or cross-check agreed
          report.certificate = report.symbolic->certificate;
          report_certificate(*report.certificate, report.diagnostics);
          report_symbolic_proof(*report.symbolic, report.diagnostics);
          need_enumerative = false;
        }
      } else {
        report.diagnostics.note(
            "symbolic-inapplicable",
            report.symbolic->inapplicable_stage
                ? "stage " + std::to_string(*report.symbolic->inapplicable_stage)
                : "",
            "symbolic prover declined (" +
                report.symbolic->inapplicable_reason +
                "); falling back to the enumerative certifier");
      }
    }
    if (need_enumerative) {
      report.certificate = certify_contention_freedom(
          fabric, tables, *options.ordering, *options.sequence);
      report_certificate(*report.certificate, report.diagnostics);
    }
  }

  if (options.replay_telemetry) {
    util::expects(report.certificate.has_value(),
                  "telemetry replay needs a certificate (--certify)");
    report.telemetry = replay_certificate_telemetry(
        fabric, tables, *options.ordering, *options.sequence,
        *report.certificate, options.replay);
    report_telemetry_replay(*report.telemetry, report.diagnostics);
  }

  if (options.propose_vls > 0) {
    VlProposal vl;
    std::vector<std::vector<std::uint64_t>> per_dest;
    vl.assignment =
        propose_vl_assignment(fabric, tables, options.propose_vls,
                              options.prove_vl_optimal ? &per_dest : nullptr);
    if (options.prove_vl_optimal)
      vl.optimality = prove_vl_optimality(
          fabric, per_dest, options.propose_vls, vl.assignment,
          VlOptimalityOptions{.node_budget = options.vl_node_budget});
    // Validated after the prover so a replaced assignment is what gets the
    // per-lane verdicts.
    vl.analysis = analyze_cdg_per_vl(fabric, tables, vl.assignment);
    report.vl = std::move(vl);
    report_vl(fabric, *report.vl, report.cdg.acyclic, report.diagnostics);
  }

  if (options.adaptive_closure) {
    report.adaptive = analyze_adaptive_cdg(fabric, tables);
    report_adaptive(fabric, *report.adaptive, report.diagnostics);
  }

  if (options.credit_loops) {
    const std::vector<sim::PortBuffer> buffers =
        sim::PacketSim(fabric, tables).buffer_topology();
    report.credit = analyze_credit_loops(fabric, tables, buffers);
    report_credit(fabric, *report.credit, report.cdg.acyclic,
                  report.diagnostics);
  }

  if (options.metrics != nullptr) record_metrics(*options.metrics, report);
  return report;
}

}  // namespace ftcf::check
