// Symbolic contention certifier — the paper's Theorems 1-3 as closed-form
// digit algebra instead of flow enumeration.
//
// The enumerative certifier (check/certify.hpp) walks every (src, dst)
// flow of every stage: O(stages × flows × path length). This prover
// derives the *same certificate* from three algebraic ingredients:
//
//   1. the PGFT tuple's digit decomposition (route::dmodk_level_digits):
//      under the RLFT identity W_l p_l == M_{l-1}, the up-going link a
//      flow (i -> j) takes at the level-l boundary is keyed by
//      (floor(i / M_l), j mod M_l);
//   2. the CPS displacement algebra (cps::StageAlgebra): every stage of
//      the paper's eight sequences is a constant shift or constant XOR
//      over an arithmetic progression of sources;
//   3. composition: shift keys are the digit permutation
//      x -> (x + d) mod M_l of Z_{M_l}, XOR keys the digit permutation
//      x -> x ^ (d mod M_l) (when M_l is a power of two, or no flow
//      crosses the boundary at all) — injective, so every up link carries
//      at most one flow; down links are the Theorem-2 destination
//      bijection, and destinations are distinct. HSD = 1, no enumeration.
//
// The per-stage witness counts (flows, links_loaded, up/down HSD flags)
// reduce to counting boundary crossings A_l = #{flows with nca > l},
// a residue-class count over an arithmetic progression solved in O(log)
// per (stage, level) with a Euclidean floor-sum — certifying a
// million-endpoint shift set (10^12 flows) in well under a second.
//
// Honesty contract: anything outside the closed form — non-canonical
// tables, degraded fabrics, a non-identity node order, a stage with no
// recognized algebra, an XOR mask misaligned with a non-power-of-two
// level block — returns applicable == false with the violating
// stage/level pinpointed, and the caller falls back to the enumerative
// certifier. A wrong proof is never possible; at worst the prover
// declines. When it applies, the produced Certificate is byte-identical
// (through write_certificate_json) to the enumerative one — pinned on the
// 648-node RLFT by tools/check_symbolic.cmake and cross-checked by
// tests/check/symbolic_test.cpp across random PGFT tuples.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "check/certify.hpp"
#include "cps/symbolic.hpp"
#include "ordering/ordering.hpp"
#include "routing/dmodk.hpp"

namespace ftcf::check {

/// Per-stage injectivity record: the algebra, the flow count, and the
/// boundary-crossing counts A_l (l = 1..h-1) the witness row derives from.
struct SymbolicStageProof {
  cps::AlgebraKind kind = cps::AlgebraKind::kEmpty;
  std::uint64_t parameter = 0;  ///< shift displacement or XOR mask
  std::uint64_t flows = 0;
  std::vector<std::uint64_t> ascents;  ///< A_l, flows with nca > l
};

/// Outcome of the symbolic prover: a full proof (applicable) or a
/// pinpointed reason it declined (never a guess).
struct SymbolicProof {
  bool applicable = false;
  std::string inapplicable_reason;             ///< "" when applicable
  std::optional<std::size_t> inapplicable_stage;
  std::optional<std::uint32_t> inapplicable_level;

  std::vector<route::DmodkLevelDigits> levels;  ///< digit constants, 1..h
  std::vector<SymbolicStageProof> stages;

  /// Valid iff applicable: field-identical to what the enumerative
  /// certifier produces for the same inputs (contention_free == true by
  /// construction — the prover declines rather than proving a violation).
  Certificate certificate;
};

/// Pure-tuple prover: certify symbolic_sequence-style algebra directly
/// against the PGFT tuple, assuming the identity node order (rank r on
/// host r). Never materializes a flow — this is the million-endpoint path.
[[nodiscard]] SymbolicProof symbolic_certify(
    const topo::PgftSpec& spec, const cps::SequenceAlgebra& algebra);

/// Fabric-path prover: checks the full applicability frontier —
/// `tables_canonical_dmodk` is the caller's provenance statement that the
/// forwarding tables are exactly DModKRouter::compute on the pristine
/// fabric (false for --lft dumps, degraded reroutes, or other routers),
/// then identity order, then per-stage algebra recognition — and proves or
/// declines. Stage classification fans out over ftcf::par; the result is
/// byte-identical at any thread count.
[[nodiscard]] SymbolicProof symbolic_certify(
    const topo::Fabric& fabric, const order::NodeOrdering& ordering,
    const cps::Sequence& sequence, bool tables_canonical_dmodk);

/// Human-readable digit-permutation argument for one stage at one level,
/// e.g. "x -> (x + 5) mod 36" or "level uncrossed (2^3 | 36)". Used by the
/// proof document and the cert-symbolic-ok diagnostic.
[[nodiscard]] std::string symbolic_digit_map(const SymbolicStageProof& stage,
                                             std::uint64_t block);

/// Map an *applicable* proof onto the diagnostics engine: one
/// `cert-symbolic-ok` note naming the digit-permutation family per level
/// ("HSD = 1 proved algebraically: ... — no flow enumerated").
void report_symbolic_proof(const SymbolicProof& proof,
                           Diagnostics& diagnostics);

/// Deterministic proof document:
/// {"meta":{...},"proof":{...},"stages":[...]}. Stage rows are capped at
/// kMaxProofStagesShown (the certificate carries the full witness table;
/// the proof rows exist to name the digit permutations), with an
/// "elided_stages" count keeping the cap explicit.
void write_symbolic_proof_json(
    std::ostream& os, const SymbolicProof& proof,
    const std::map<std::string, std::string>& meta = {});

inline constexpr std::size_t kMaxProofStagesShown = 16;

namespace detail {

/// sum_{k=0}^{n-1} floor((a*k + b) / m) in O(log) Euclidean steps
/// (values bounded by a*n + b, no overflow for fabric-sized inputs).
/// Exposed for the unit tests pinning it against brute force.
[[nodiscard]] std::uint64_t floor_sum(std::uint64_t n, std::uint64_t m,
                                      std::uint64_t a, std::uint64_t b);

/// #{k < n : (base + stride*k) mod m < w} for w <= m: the residue-class
/// count behind every shift-stage crossing number. O(1) for stride 1,
/// O(log) otherwise.
[[nodiscard]] std::uint64_t count_strided_mod_lt(std::uint64_t n,
                                                 std::uint64_t base,
                                                 std::uint64_t stride,
                                                 std::uint64_t m,
                                                 std::uint64_t w);

}  // namespace detail

}  // namespace ftcf::check
