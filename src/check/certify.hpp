// Contention-freedom certifier: the paper's Theorems 1-3 as a
// machine-checkable artifact.
//
// The theorems' claim is *static*: under D-Mod-K routing with the topology
// node order, every stage of a constant-shift CPS (Theorems 1-2) or of
// grouped recursive doubling (Theorem 3) loads every directed link with at
// most one flow — HSD = 1, contention-free. The certifier derives the
// per-link flow counts of every stage from the (topology, LFT, order, CPS)
// tuple — the same inline route walk as analysis::HsdAnalyzer, fanned out
// per stage over ftcf::par with per-worker workspaces and folded in stage
// order, so the certificate is byte-identical at any thread count — and
// emits either
//   * a per-stage witness table (max HSD on up/down/all links, flows walked,
//     links loaded, the stage's displacement shape), proving the claim, or
//   * a root-cause blame per violating stage: the hot link, the colliding
//     (src, dst) host pairs crossing it, and which lint rule
//     (order-mismatch, cps-displacement, rlft-cbb, ...) explains the
//     collision.
//
// report_certificate maps the outcome onto the diagnostics engine
// (`cert-ok` note / `hsd-violation` error / `blame-<rule>` cross-reference
// notes); write_certificate_json emits the deterministic certificate
// document (sorted keys, stage-ordered arrays, no timestamps).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "check/lint.hpp"
#include "cps/stage.hpp"
#include "ordering/ordering.hpp"
#include "routing/lft.hpp"

namespace ftcf::check {

/// One flow crossing a violating stage's hot link, in host-index space.
struct CollidingFlow {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
};

/// Per-stage HSD witness (the proof row when max_hsd <= 1).
struct StageWitness {
  StageShape shape = StageShape::kEmpty;
  std::uint32_t max_hsd = 0;
  std::uint32_t max_up_hsd = 0;
  std::uint32_t max_down_hsd = 0;
  std::uint64_t num_flows = 0;        ///< routed flows (src != dst)
  std::uint64_t links_loaded = 0;     ///< directed links carrying >= 1 flow
  std::uint64_t unroutable_flows = 0; ///< flows stranded by incomplete tables
};

/// Root cause of one violating stage.
struct StageBlame {
  std::size_t stage = 0;
  std::uint32_t max_hsd = 0;
  topo::PortId hot_link = topo::kInvalidPort;
  std::string hot_link_name;  ///< rendered "NODE[port i] -> NODE[port j]"
  /// Flows crossing the hot link (exactly max_hsd exist; the first
  /// kMaxCollidingShown are listed, ascending in stage-pair order).
  std::vector<CollidingFlow> colliding;
  /// The lint rule that explains the collision (priority: order-mismatch,
  /// stage-specific cps-displacement, rlft-cbb, other rlft-*,
  /// pgft-structure, lft-incomplete); empty = no rule explains it.
  std::string blamed_rule;
};

inline constexpr std::size_t kMaxCollidingShown = 8;

/// The machine-checkable certificate for one (tables, order, CPS) tuple.
struct Certificate {
  bool contention_free = false;  ///< HSD <= 1 everywhere and no stranded flow
  std::uint64_t num_ranks = 0;
  std::string sequence_name;
  std::vector<StageWitness> stages;  ///< one per CPS stage, stage order
  std::vector<StageBlame> blames;    ///< violating stages, ascending
};

/// Derive the certificate. Stages are analyzed in parallel with per-worker
/// workspaces and merged in stage order — the result (and its JSON) is
/// byte-identical for every thread count.
[[nodiscard]] Certificate certify_contention_freedom(
    const topo::Fabric& fabric, const route::ForwardingTables& tables,
    const order::NodeOrdering& ordering, const cps::Sequence& sequence);

/// Map the certificate onto the diagnostics engine: `cert-ok` (note) when
/// contention-free, else one `hsd-violation` error per violating stage
/// (capped) with a `blame-<rule>` cross-reference note when a lint rule
/// explains the collision.
void report_certificate(const Certificate& certificate,
                        Diagnostics& diagnostics);

/// Deterministic certificate document:
/// {"meta":{...},"certificate":{...},"stages":[...],"violations":[...]}.
/// Keys sorted within every object; arrays in stage order; no timestamps or
/// thread-dependent content.
void write_certificate_json(
    std::ostream& os, const Certificate& certificate,
    const std::map<std::string, std::string>& meta = {});

namespace detail {

/// One stage-witness JSON row (sorted keys, no surrounding whitespace) —
/// shared by write_certificate_json and write_certificate_delta_json so the
/// two documents stay byte-compatible per row.
void write_stage_row(std::ostream& os, const StageWitness& witness,
                     std::size_t stage);

/// One violation JSON row (sorted keys, no surrounding whitespace).
void write_blame_row(std::ostream& os, const StageBlame& blame);

/// Pick the highest-priority lint rule that explains a collision at `stage`
/// (order-mismatch, stage cps-displacement, rlft-*, pgft-structure,
/// lft-incomplete); "" when nothing applies. Shared by the one-shot
/// certifier and the incremental re-certifier.
[[nodiscard]] std::string blame_rule(const Diagnostics& lints,
                                     std::size_t stage);

}  // namespace detail

}  // namespace ftcf::check
