// Theorem-precondition linter: static verification of the structural
// premises behind the paper's guarantees, with rule-tagged findings that
// explain which guarantee no longer applies.
//
// Rule catalog (stable IDs; see docs/STATIC_ANALYSIS.md):
//   pgft-structure      [error]   fabric violates the PGFT wiring rule
//   rlft-cbb            [warning] cross-bisectional bandwidth not constant
//                                 (Theorems 1-2 preconditions broken)
//   rlft-radix          [warning] switch radix varies across levels
//   rlft-single-cable   [warning] hosts have more than one cable (w1*p1 > 1)
//   rlft-parallel-ports [warning] parallel-link counts inconsistent with the
//                                 spec's p_l on some (child, parent) pair
//   order-mismatch      [warning] node order != RLFT index order (HSD=1 of
//                                 Theorems 1-2 not guaranteed)
//   order-partial       [note]    ordering covers a subset of the hosts
//   cps-displacement    [warning] a stage has no constant displacement
//                                 (Theorem 3 premise broken)
//   lft-incomplete      [note/warning] unprogrammed forwarding entries
#pragma once

#include "check/diagnostics.hpp"
#include "cps/stage.hpp"
#include "fault/degraded.hpp"
#include "ordering/ordering.hpp"
#include "routing/lft.hpp"

namespace ftcf::check {

/// Shape of a CPS stage in rank space — the Theorem 3 taxonomy. Shared by
/// lint_sequence and the contention-freedom certifier (check/certify.hpp).
enum class StageShape : std::uint8_t {
  kEmpty,              ///< no pairs (nothing to prove)
  kConstantShift,      ///< same (dst - src) mod N for every pair (Theorems 1-2)
  kSymmetricExchange,  ///< |dst - src| constant and the pair set an involution
                       ///< (grouped-RD / recursive-doubling, Theorem 3)
  kIrregular,          ///< neither: the stage-displacement premise is broken
};

[[nodiscard]] const char* stage_shape_name(StageShape shape) noexcept;

/// Classify one stage against the displacement premises above.
[[nodiscard]] StageShape classify_stage_shape(const cps::Stage& stage,
                                              std::uint64_t num_ranks);

/// Structural premises: PGFT wiring, constant CBB, uniform radix,
/// single-cable hosts, parallel-port consistency. With a non-pristine
/// `faults` state the structural rules additionally fire as *notes* on the
/// degraded wiring (removed cables/switches void the PGFT rule and the CBB
/// premise on the surviving fabric) — notes never gate, so degraded runs
/// still exit clean.
void lint_fabric(const topo::Fabric& fabric, Diagnostics& diagnostics,
                 const fault::FaultState* faults = nullptr);

/// Node order = RLFT index order (full jobs: rank r on host r; partial jobs:
/// hosts ascending with rank).
void lint_ordering(const topo::Fabric& fabric,
                   const order::NodeOrdering& ordering,
                   Diagnostics& diagnostics);

/// Stage displacement constancy: every stage must be either a constant
/// shift (same (dst - src) mod N for all pairs) or a symmetric constant-
/// distance exchange (the grouped-RD/recursive-doubling shape of Theorem 3).
void lint_sequence(const cps::Sequence& sequence, Diagnostics& diagnostics);

/// Unprogrammed (switch, destination) entries: a note when faults make them
/// expected, a warning on a fabric that should be fully routed.
void lint_tables(const topo::Fabric& fabric,
                 const route::ForwardingTables& tables, bool degraded_expected,
                 Diagnostics& diagnostics);

}  // namespace ftcf::check
