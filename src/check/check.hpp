// ftcf::check — static routing/ordering analyzer (the library's "compiler
// warnings for route plans").
//
// run_check combines, over any ForwardingTables:
//   1. the CDG deadlock prover (check/cdg.hpp): proves deadlock-freedom or
//      produces a concrete dependency cycle;
//   2. the theorem-precondition linter (check/lint.hpp): which of the
//      paper's guarantees still apply to this fabric/ordering/CPS;
//   3. the walk-based table audit (route::validate_lft), rewired to consume
//      the CDG verdict so the two analyses cross-check each other.
//
// All findings land in one Diagnostics sink with stable rule IDs; the JSON
// report is deterministic and byte-identical at any --threads count. CI
// gates on the exit-code contract: 0 clean, 1 findings at the gate severity.
#pragma once

#include "check/cdg.hpp"
#include "check/diagnostics.hpp"
#include "check/lint.hpp"
#include "fault/degraded.hpp"
#include "obs/metrics.hpp"
#include "routing/validate.hpp"

namespace ftcf::check {

struct CheckOptions {
  /// Fault state the tables were (or should have been) built against; when
  /// set, unreachable pairs and unprogrammed entries demote to notes.
  const fault::FaultState* faults = nullptr;
  /// When set, lint the node ordering against the RLFT index order.
  const order::NodeOrdering* ordering = nullptr;
  /// When set, lint the CPS's stage displacements (Theorem 3 premise).
  const cps::Sequence* sequence = nullptr;
  /// Pair-sampling threshold forwarded to route::validate_lft.
  std::uint64_t exhaustive_limit = 512;
  /// Baseline findings to silence.
  Suppressions suppressions;
  /// When set, findings counters and CDG/walk sizes are recorded here.
  obs::MetricsRegistry* metrics = nullptr;
};

struct CheckReport {
  Diagnostics diagnostics;
  CdgAnalysis cdg;
  route::LftAudit walk;

  /// Deadlock-freedom was proved (CDG acyclic) and the walks agree.
  [[nodiscard]] bool deadlock_free() const noexcept {
    return cdg.acyclic && !walk.cdg_mismatch;
  }
};

/// Run the full static analysis. Deterministic: the same inputs produce the
/// same report (and byte-identical JSON) at any thread count.
[[nodiscard]] CheckReport run_check(const topo::Fabric& fabric,
                                    const route::ForwardingTables& tables,
                                    const CheckOptions& options = {});

}  // namespace ftcf::check
