// ftcf::check — static routing/ordering analyzer and prover (the library's
// "compiler warnings for route plans", grown into a certificate emitter).
//
// run_check combines, over any ForwardingTables:
//   1. the CDG deadlock prover (check/cdg.hpp): proves deadlock-freedom or
//      produces a concrete dependency cycle;
//   2. the theorem-precondition linter (check/lint.hpp): which of the
//      paper's guarantees still apply to this fabric/ordering/CPS;
//   3. the walk-based table audit (route::validate_lft), rewired to consume
//      the CDG verdict so the two analyses cross-check each other;
//   4. optionally, the contention-freedom certifier (check/certify.hpp):
//      per-stage HSD = 1 witnesses or root-cause blame;
//   5. optionally, the per-virtual-lane CDG search (check/vl.hpp): the
//      minimum destination->lane assignment breaking every cycle;
//   6. optionally, the credit-loop prover (check/credit.hpp) over the packet
//      simulator's buffer topology, cross-checked against the CDG.
//
// All findings land in one Diagnostics sink with stable rule IDs; the JSON
// report is deterministic and byte-identical at any --threads count. CI
// gates on the exit-code contract: 0 clean, 1 findings at the gate severity.
#pragma once

#include <optional>

#include "check/cdg.hpp"
#include "check/certify.hpp"
#include "check/credit.hpp"
#include "check/diagnostics.hpp"
#include "check/lint.hpp"
#include "check/replay.hpp"
#include "check/symbolic.hpp"
#include "check/vl.hpp"
#include "check/vl_optimal.hpp"
#include "fault/degraded.hpp"
#include "obs/metrics.hpp"
#include "routing/validate.hpp"

namespace ftcf::check {

struct CheckOptions {
  /// Fault state the tables were (or should have been) built against; when
  /// set, unreachable pairs and unprogrammed entries demote to notes and the
  /// structural lints additionally describe the degraded wiring.
  const fault::FaultState* faults = nullptr;
  /// When set, lint the node ordering against the RLFT index order.
  const order::NodeOrdering* ordering = nullptr;
  /// When set, lint the CPS's stage displacements (Theorem 3 premise).
  const cps::Sequence* sequence = nullptr;
  /// Pair-sampling threshold forwarded to route::validate_lft.
  std::uint64_t exhaustive_limit = 512;
  /// Baseline findings to silence. Entries naming rules outside the
  /// known-rule catalog raise `suppress-unknown-rule` warnings.
  Suppressions suppressions;
  /// Run the contention-freedom certifier (requires `ordering` and
  /// `sequence`; rules cert-ok / hsd-violation / blame-<rule>).
  bool certify = false;
  /// With `certify`: try the symbolic prover (check/symbolic.hpp) first.
  /// When it applies, the certificate is derived algebraically (rule
  /// cert-symbolic-ok names the per-level digit permutations); when it
  /// declines, rule symbolic-inapplicable records the pinpointed reason and
  /// the enumerative certifier runs as before. Requires
  /// `tables_canonical_dmodk` for the proof to apply.
  bool symbolic = false;
  /// With `symbolic`: additionally run the enumerative certifier and
  /// byte-compare the two certificates (differential cross-check). Any
  /// divergence raises cert-symbolic-mismatch (an error) and the enumerative
  /// certificate wins.
  bool symbolic_cross_check = false;
  /// Caller's provenance statement: the tables are exactly
  /// route::DModKRouter::compute on the pristine fabric (no --lft load, no
  /// degraded reroute, no other router). The symbolic prover declines
  /// without it — a wrong proof must be impossible.
  bool tables_canonical_dmodk = false;
  /// Re-simulate a deterministic sample of the certified stages through
  /// sim::PacketSim and compare the per-link telemetry against the static
  /// witnesses (requires `certify`; rules cert-telemetry-ok /
  /// cert-telemetry-mismatch).
  bool replay_telemetry = false;
  /// Stage-sample size and message size for the telemetry replay.
  TelemetryReplayOptions replay;
  /// > 0: search for a destination->VL assignment with at most this many
  /// lanes whose per-lane dependency graphs are all acyclic (rules
  /// vl-assignment / vl-cycle).
  std::uint32_t propose_vls = 0;
  /// With propose_vls: also run the exact branch-and-bound lane-minimality
  /// prover. A certified-minimal proposal upgrades to rule vl-optimal (with
  /// the clique witness); a search that beats the greedy proposal replaces
  /// it; a tripped node budget reports the proven [lower, upper] gap as
  /// vl-bound-gap.
  bool prove_vl_optimal = false;
  /// Vertex-placement budget for the branch-and-bound search.
  std::uint64_t vl_node_budget = 1'000'000;
  /// Prove Dally–Seitz deadlock freedom over the *adaptive* routing relation
  /// (route::adaptive_candidates: deterministic descents, any-up-port
  /// ascents) instead of just the deterministic tables (rules
  /// cdg-adaptive-ok / cdg-adaptive-cycle).
  bool adaptive_closure = false;
  /// Run the credit-loop prover over the packet simulator's buffer topology
  /// (rules credit-loop / credit-cdg-mismatch).
  bool credit_loops = false;
  /// When set, findings counters and CDG/walk sizes are recorded here.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Outcome of the per-VL search: the proposed assignment and the per-lane
/// verdicts it was validated with.
struct VlProposal {
  VlAssignment assignment;
  VlCdgAnalysis analysis;
  /// Present when CheckOptions::prove_vl_optimal was set. When it marked the
  /// greedy proposal `improved`, `assignment` already is the replacement.
  std::optional<VlOptimality> optimality;
};

struct CheckReport {
  Diagnostics diagnostics;
  CdgAnalysis cdg;
  route::LftAudit walk;
  /// Present when CheckOptions::certify was set (with ordering + sequence).
  std::optional<Certificate> certificate;
  /// Present when CheckOptions::symbolic was set: the symbolic prover's
  /// outcome (applicable proof, or the pinpointed decline reason).
  std::optional<SymbolicProof> symbolic;
  /// Present when CheckOptions::replay_telemetry was set (with certify).
  std::optional<TelemetryReplay> telemetry;
  /// Present when CheckOptions::propose_vls > 0.
  std::optional<VlProposal> vl;
  /// Present when CheckOptions::adaptive_closure was set.
  std::optional<AdaptiveCdgAnalysis> adaptive;
  /// Present when CheckOptions::credit_loops was set.
  std::optional<CreditLoopAnalysis> credit;

  /// Deadlock-freedom was proved (CDG acyclic) and the walks agree.
  [[nodiscard]] bool deadlock_free() const noexcept {
    return cdg.acyclic && !walk.cdg_mismatch;
  }
};

/// Run the full static analysis. Deterministic: the same inputs produce the
/// same report (and byte-identical JSON) at any thread count.
[[nodiscard]] CheckReport run_check(const topo::Fabric& fabric,
                                    const route::ForwardingTables& tables,
                                    const CheckOptions& options = {});

}  // namespace ftcf::check
