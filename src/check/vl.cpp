#include "check/vl.hpp"

#include <algorithm>
#include <sstream>

#include "check/depgraph.hpp"
#include "obs/profile.hpp"
#include "util/expects.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {

using topo::Fabric;
using topo::PortId;

route::CdgVerdict VlCdgAnalysis::verdict() const noexcept {
  route::CdgVerdict out;
  out.acyclic = all_acyclic();
  out.lanes = std::max<std::uint32_t>(num_lanes(), 1);
  for (const CdgAnalysis& lane : lanes) out.down_up_turns += lane.down_up_turns;
  return out;
}

VlCdgAnalysis analyze_cdg_per_vl(const Fabric& fabric,
                                 const route::ForwardingTables& tables,
                                 const VlAssignment& assignment) {
  FTCF_PROF_SCOPE("check.vl");
  util::expects(assignment.lane_of_dest.size() == fabric.num_hosts(),
                "VL assignment must cover every host");
  const ChannelIndex ci = switch_channels(fabric);
  VlCdgAnalysis analysis;
  analysis.lanes.reserve(assignment.num_lanes);
  for (std::uint32_t lane = 0; lane < assignment.num_lanes; ++lane) {
    CdgAnalysis per_lane;
    per_lane.num_channels = ci.size();
    if (!ci.empty()) {
      const std::vector<std::uint64_t> deps = build_dependencies(
          fabric, tables, ci,
          DependencyOptions{.lane_of_dest = assignment.lane_of_dest,
                            .lane = lane,
                            .label = "check.vl"});
      per_lane.num_dependencies = deps.size();
      for (const std::uint64_t packed : deps) {
        const PortId from = ci.channels[packed >> 32];
        const PortId to = ci.channels[packed & 0xffffffffu];
        if (!is_up_channel(fabric, from) && is_up_channel(fabric, to))
          ++per_lane.down_up_turns;
      }
      const ChannelGraph graph = build_graph(ci.size(), deps);
      const SccSummary sccs = find_cyclic_sccs(graph);
      per_lane.cyclic_scc_count = sccs.cyclic_sccs;
      per_lane.acyclic = sccs.cyclic_sccs == 0;
      if (!per_lane.acyclic) {
        for (const std::uint32_t dense :
             extract_cycle(graph, sccs.first_cycle_members))
          per_lane.cycle.push_back(ci.channels[dense]);
      }
    }
    analysis.lanes.push_back(std::move(per_lane));
  }
  return analysis;
}

VlAssignment propose_vl_assignment(const Fabric& fabric,
                                   const route::ForwardingTables& tables,
                                   std::uint32_t max_lanes) {
  return propose_vl_assignment(fabric, tables, max_lanes, nullptr);
}

VlAssignment propose_vl_assignment(
    const Fabric& fabric, const route::ForwardingTables& tables,
    std::uint32_t max_lanes,
    std::vector<std::vector<std::uint64_t>>* per_dest_out) {
  FTCF_PROF_SCOPE("check.vl.propose");
  util::expects(max_lanes >= 1, "VL search needs at least one lane");
  const ChannelIndex ci = switch_channels(fabric);
  const std::uint64_t n = fabric.num_hosts();

  VlAssignment out;
  out.lane_of_dest.assign(n, kNoLane);

  // Per-destination dependency sets in parallel; the greedy placement below
  // is serial and ascending in destination, so the proposal is identical at
  // any thread count.
  auto per_dest = par::parallel_map(
      n,
      [&](std::size_t d) {
        return destination_dependencies(fabric, tables, ci, d);
      },
      par::ForOptions{.threads = 0, .grain = 16, .label = "check.vl.propose"});

  std::vector<std::vector<std::uint64_t>> lane_deps;
  std::vector<std::uint64_t> merged;
  for (std::uint64_t d = 0; d < n; ++d) {
    const std::vector<std::uint64_t>& deps = per_dest[d];
    if (!dependencies_acyclic(ci.size(), deps)) {
      // The destination's own graph cycles: a routing loop, unfixable by
      // lane separation.
      out.unassigned.push_back(d);
      continue;
    }
    bool placed = false;
    for (std::uint32_t lane = 0; lane < lane_deps.size() && !placed; ++lane) {
      merged.clear();
      merged.reserve(lane_deps[lane].size() + deps.size());
      std::merge(lane_deps[lane].begin(), lane_deps[lane].end(), deps.begin(),
                 deps.end(), std::back_inserter(merged));
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      if (dependencies_acyclic(ci.size(), merged)) {
        lane_deps[lane] = merged;
        out.lane_of_dest[d] = lane;
        placed = true;
      }
    }
    if (!placed) {
      if (lane_deps.size() < max_lanes) {
        out.lane_of_dest[d] = static_cast<std::uint32_t>(lane_deps.size());
        lane_deps.push_back(deps);
      } else {
        out.unassigned.push_back(d);
      }
    }
  }
  out.num_lanes = static_cast<std::uint32_t>(lane_deps.size());
  if (per_dest_out != nullptr) *per_dest_out = std::move(per_dest);
  return out;
}

namespace {

/// Compress an ascending destination list to "0-2,5,7-9".
std::string ranges_to_string(const std::vector<std::uint64_t>& dests) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < dests.size();) {
    std::size_t j = i;
    while (j + 1 < dests.size() && dests[j + 1] == dests[j] + 1) ++j;
    if (i != 0) oss << ',';
    oss << dests[i];
    if (j > i) oss << '-' << dests[j];
    i = j + 1;
  }
  return oss.str();
}

}  // namespace

std::string vl_assignment_to_string(const VlAssignment& assignment) {
  std::ostringstream oss;
  oss << assignment.num_lanes << " lane(s)";
  for (std::uint32_t lane = 0; lane < assignment.num_lanes; ++lane) {
    std::vector<std::uint64_t> dests;
    for (std::uint64_t d = 0; d < assignment.lane_of_dest.size(); ++d)
      if (assignment.lane_of_dest[d] == lane) dests.push_back(d);
    oss << (lane == 0 ? ": " : "; ") << "lane " << lane << " <- dests "
        << ranges_to_string(dests) << " (" << dests.size() << ')';
  }
  if (!assignment.unassigned.empty())
    oss << "; unassigned: " << ranges_to_string(assignment.unassigned);
  return oss.str();
}

}  // namespace ftcf::check
