// Channel dependency graph (CDG) deadlock analysis of forwarding tables.
//
// Dally–Seitz criterion: wormhole/credit-based routing is deadlock-free iff
// the channel dependency graph of the routing function is acyclic. Channels
// are directed links (identified by their source PortId); a dependency
// A -> B exists when some destination's tables forward traffic that arrives
// over channel A out through channel B at the same switch. Unlike the
// walk-based audit (route::validate_lft), which spot-checks (src, dst)
// pairs, this analysis covers *every programmed table entry* — including
// entries no sampled pair exercises — so an acyclic result is a proof.
//
// Host-attached channels cannot take part in a cycle (a host link is entered
// only by its own host), so the graph is built over switch-to-switch
// channels only. Dependencies are classified by turn direction; under clean
// up*/down* routing only up->up, up->down and down->down occur, and the
// level ordering of those turns is exactly why such tables are acyclic. A
// down->up dependency is the deadlock hazard the linter reports even before
// a full cycle closes.
//
// The per-switch dependency generation fans out over ftcf::par and is merged
// in switch-index order, so results are byte-identical at any thread count.
#pragma once

#include <string>
#include <vector>

#include "routing/lft.hpp"

namespace ftcf::check {

/// Outcome of the CDG analysis of one set of tables.
struct CdgAnalysis {
  std::uint64_t num_channels = 0;      ///< switch-to-switch directed links
  std::uint64_t num_dependencies = 0;  ///< distinct channel dependencies
  std::uint64_t down_up_turns = 0;     ///< dependencies violating up*/down*
  bool acyclic = true;
  std::uint64_t cyclic_scc_count = 0;  ///< SCCs containing a cycle
  /// One concrete dependency cycle when !acyclic: the channel chain
  /// c0 -> c1 -> ... -> c0 (first element not repeated).
  std::vector<topo::PortId> cycle;

  /// True when the tables are proved deadlock-free.
  [[nodiscard]] bool deadlock_free() const noexcept { return acyclic; }
};

/// Build and analyze the CDG of `tables` over its fabric. Accepts any
/// tables — pristine, degraded (unprogrammed entries contribute no
/// dependencies) or hand-edited.
[[nodiscard]] CdgAnalysis analyze_cdg(const topo::Fabric& fabric,
                                      const route::ForwardingTables& tables);

/// CDG of the adaptive routing *relation* (route::adaptive_candidates):
/// descents follow the tables, ascents may take any up port. The analyzed
/// graph is the union over every choice the relation admits, so an acyclic
/// verdict proves the simulator's adaptive mode deadlock-free for every
/// per-packet up-port selection policy — not just one schedule. The verdict
/// is strictly stronger than the deterministic CDG's: a cycle here can hide
/// behind tables whose deterministic graph is acyclic.
struct AdaptiveCdgAnalysis {
  CdgAnalysis cdg;                  ///< union-graph Dally–Seitz verdict
  std::uint64_t relation_pairs = 0; ///< (switch, dest) pairs with candidates
  std::uint64_t relation_choices = 0;  ///< total out-port candidates
  std::uint32_t max_fanout = 0;        ///< widest single choice

  [[nodiscard]] bool deadlock_free() const noexcept { return cdg.acyclic; }
};

[[nodiscard]] AdaptiveCdgAnalysis analyze_adaptive_cdg(
    const topo::Fabric& fabric, const route::ForwardingTables& tables);

/// Render a cycle as a switch/port chain, e.g.
/// "S1_0[port 4] -> S2_0[port 1] -> S1_0[port 4]".
[[nodiscard]] std::string cycle_to_string(const topo::Fabric& fabric,
                                          const std::vector<topo::PortId>& cycle);

}  // namespace ftcf::check
