#include "check/depgraph.hpp"

#include <algorithm>
#include <sstream>

#include "routing/trace.hpp"
#include "util/expects.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {

using topo::Fabric;
using topo::NodeId;
using topo::PortId;

namespace {

/// True when destination `d` participates under the lane restriction.
bool lane_match(const DependencyOptions& options, std::uint64_t d) {
  return options.lane_of_dest.empty() ||
         options.lane_of_dest[d] == options.lane;
}

/// Dependencies of one source switch: for every routed destination, the
/// in-channel that reaches this switch is the switch's own out-channel of
/// the previous hop — equivalently, every (out-channel here, out-channel at
/// the next switch) pair. Sorted and deduplicated per switch.
std::vector<std::uint64_t> switch_dependencies(
    const Fabric& fabric, const route::ForwardingTables& tables,
    const ChannelIndex& ci, NodeId u, const DependencyOptions& options) {
  std::vector<std::uint64_t> deps;
  const std::uint64_t n = fabric.num_hosts();
  for (std::uint64_t d = 0; d < n; ++d) {
    if (!lane_match(options, d)) continue;
    if (!tables.has_entry(u, d)) continue;
    const PortId e1 = fabric.port_id(u, tables.out_port(u, d));
    const std::uint32_t c1 = ci.dense[e1];
    if (c1 == kNoChannel) continue;  // terminates at a host
    const NodeId v = fabric.port(fabric.port(e1).peer).node;
    if (fabric.node(v).kind != topo::NodeKind::kSwitch) continue;
    if (!tables.has_entry(v, d)) continue;
    const PortId e2 = fabric.port_id(v, tables.out_port(v, d));
    const std::uint32_t c2 = ci.dense[e2];
    if (c2 == kNoChannel) continue;
    deps.push_back((static_cast<std::uint64_t>(c1) << 32) | c2);
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  return deps;
}

/// Host-injection dependencies of one host: its up-going channel(s) depend
/// on whatever out-channel the leaf switch forwards each destination to.
std::vector<std::uint64_t> host_dependencies(
    const Fabric& fabric, const route::ForwardingTables& tables,
    const ChannelIndex& ci, std::uint64_t h, const DependencyOptions& options) {
  std::vector<std::uint64_t> deps;
  const std::uint64_t n = fabric.num_hosts();
  const NodeId host = fabric.host_node(h);
  for (std::uint64_t d = 0; d < n; ++d) {
    if (d == h || !lane_match(options, d)) continue;
    const std::uint32_t up = route::host_up_port(fabric, h, d);
    const PortId e1 =
        fabric.port_id(host, fabric.node(host).num_down_ports + up);
    const std::uint32_t c1 = ci.dense[e1];
    if (c1 == kNoChannel) continue;
    const NodeId v = fabric.port(fabric.port(e1).peer).node;
    if (fabric.node(v).kind != topo::NodeKind::kSwitch) continue;
    if (!tables.has_entry(v, d)) continue;
    const PortId e2 = fabric.port_id(v, tables.out_port(v, d));
    const std::uint32_t c2 = ci.dense[e2];
    if (c2 == kNoChannel) continue;
    deps.push_back((static_cast<std::uint64_t>(c1) << 32) | c2);
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  return deps;
}

/// Relation analogue of switch_dependencies: every candidate out-channel of
/// (u, d) depends on every candidate out-channel of the peer switch it
/// reaches, for the same destination.
std::vector<std::uint64_t> switch_relation_dependencies(
    const Fabric& fabric, const RoutingRelation& relation,
    const ChannelIndex& ci, NodeId u) {
  std::vector<std::uint64_t> deps;
  std::vector<std::uint32_t> outs_u;
  std::vector<std::uint32_t> outs_v;
  const std::uint64_t n = fabric.num_hosts();
  for (std::uint64_t d = 0; d < n; ++d) {
    relation(u, d, outs_u);
    for (const std::uint32_t o1 : outs_u) {
      const PortId e1 = fabric.port_id(u, o1);
      const std::uint32_t c1 = ci.dense[e1];
      if (c1 == kNoChannel) continue;  // terminates at a host
      const NodeId v = fabric.port(fabric.port(e1).peer).node;
      if (fabric.node(v).kind != topo::NodeKind::kSwitch) continue;
      relation(v, d, outs_v);
      for (const std::uint32_t o2 : outs_v) {
        const PortId e2 = fabric.port_id(v, o2);
        const std::uint32_t c2 = ci.dense[e2];
        if (c2 == kNoChannel) continue;
        deps.push_back((static_cast<std::uint64_t>(c1) << 32) | c2);
      }
    }
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  return deps;
}

}  // namespace

ChannelIndex switch_channels(const Fabric& fabric) {
  ChannelIndex ci;
  ci.dense.assign(fabric.num_ports(), kNoChannel);
  for (PortId p = 0; p < fabric.num_ports(); ++p) {
    const topo::Port& port = fabric.port(p);
    if (fabric.node(port.node).kind != topo::NodeKind::kSwitch) continue;
    const NodeId peer_node = fabric.port(port.peer).node;
    if (fabric.node(peer_node).kind != topo::NodeKind::kSwitch) continue;
    ci.dense[p] = static_cast<std::uint32_t>(ci.channels.size());
    ci.channels.push_back(p);
  }
  return ci;
}

ChannelIndex buffered_channels(const Fabric& fabric,
                               std::span<const std::uint8_t> finite) {
  util::expects(finite.size() == fabric.num_ports(),
                "finite-buffer mask must cover every port");
  ChannelIndex ci;
  ci.dense.assign(fabric.num_ports(), kNoChannel);
  for (PortId p = 0; p < fabric.num_ports(); ++p) {
    if (finite[p] == 0) continue;
    ci.dense[p] = static_cast<std::uint32_t>(ci.channels.size());
    ci.channels.push_back(p);
  }
  return ci;
}

std::vector<std::uint64_t> build_dependencies(
    const Fabric& fabric, const route::ForwardingTables& tables,
    const ChannelIndex& ci, const DependencyOptions& options) {
  const std::span<const NodeId> switches = fabric.switch_ids();
  auto per_switch = par::parallel_map(
      switches.size(),
      [&](std::size_t idx) {
        return switch_dependencies(fabric, tables, ci, switches[idx], options);
      },
      par::ForOptions{.threads = 0, .grain = 1, .label = options.label});

  std::vector<std::uint64_t> all;
  for (const auto& deps : per_switch)
    all.insert(all.end(), deps.begin(), deps.end());

  if (options.host_injections) {
    auto per_host = par::parallel_map(
        fabric.num_hosts(),
        [&](std::size_t h) {
          return host_dependencies(fabric, tables, ci, h, options);
        },
        par::ForOptions{.threads = 0, .grain = 16, .label = options.label});
    for (const auto& deps : per_host)
      all.insert(all.end(), deps.begin(), deps.end());
  }

  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::vector<std::uint64_t> build_relation_dependencies(
    const Fabric& fabric, const RoutingRelation& relation,
    const ChannelIndex& ci, const char* label) {
  const std::span<const NodeId> switches = fabric.switch_ids();
  auto per_switch = par::parallel_map(
      switches.size(),
      [&](std::size_t idx) {
        return switch_relation_dependencies(fabric, relation, ci,
                                            switches[idx]);
      },
      par::ForOptions{.threads = 0, .grain = 1, .label = label});

  std::vector<std::uint64_t> all;
  for (const auto& deps : per_switch)
    all.insert(all.end(), deps.begin(), deps.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::vector<std::uint64_t> destination_dependencies(
    const Fabric& fabric, const route::ForwardingTables& tables,
    const ChannelIndex& ci, std::uint64_t dest) {
  std::vector<std::uint64_t> deps;
  for (const NodeId u : fabric.switch_ids()) {
    if (!tables.has_entry(u, dest)) continue;
    const PortId e1 = fabric.port_id(u, tables.out_port(u, dest));
    const std::uint32_t c1 = ci.dense[e1];
    if (c1 == kNoChannel) continue;
    const NodeId v = fabric.port(fabric.port(e1).peer).node;
    if (fabric.node(v).kind != topo::NodeKind::kSwitch) continue;
    if (!tables.has_entry(v, dest)) continue;
    const PortId e2 = fabric.port_id(v, tables.out_port(v, dest));
    const std::uint32_t c2 = ci.dense[e2];
    if (c2 == kNoChannel) continue;
    deps.push_back((static_cast<std::uint64_t>(c1) << 32) | c2);
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  return deps;
}

ChannelGraph build_graph(std::size_t num_channels,
                         const std::vector<std::uint64_t>& deps) {
  ChannelGraph graph;
  graph.offsets.assign(num_channels + 1, 0);
  graph.targets.reserve(deps.size());
  for (const std::uint64_t packed : deps)
    ++graph.offsets[static_cast<std::size_t>(packed >> 32) + 1];
  for (std::size_t i = 1; i < graph.offsets.size(); ++i)
    graph.offsets[i] += graph.offsets[i - 1];
  for (const std::uint64_t packed : deps)
    graph.targets.push_back(static_cast<std::uint32_t>(packed & 0xffffffffu));
  return graph;
}

SccSummary find_cyclic_sccs(const ChannelGraph& graph) {
  const std::size_t num_nodes = graph.num_nodes();
  SccSummary result;
  std::vector<std::uint32_t> index(num_nodes, kNoChannel);
  std::vector<std::uint32_t> lowlink(num_nodes, 0);
  std::vector<std::uint8_t> on_stack(num_nodes, 0);
  std::vector<std::uint32_t> stack;
  std::uint32_t next_index = 0;

  struct Frame {
    std::uint32_t v;
    std::uint32_t edge;  ///< next offset into graph.targets to explore
  };
  std::vector<Frame> frames;

  for (std::uint32_t root = 0; root < num_nodes; ++root) {
    if (index[root] != kNoChannel) continue;
    frames.push_back({root, graph.offsets[root]});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::uint32_t v = frame.v;
      if (frame.edge < graph.offsets[v + 1]) {
        const std::uint32_t w = graph.targets[frame.edge++];
        if (index[w] == kNoChannel) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, graph.offsets[w]});
        } else if (on_stack[w] != 0) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      // v is fully explored: close its SCC if it is a root.
      if (lowlink[v] == index[v]) {
        std::vector<std::uint32_t> members;
        while (true) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          members.push_back(w);
          if (w == v) break;
        }
        if (members.size() > 1) {  // self-loops cannot occur in a CDG
          ++result.cyclic_sccs;
          if (result.first_cycle_members.empty())
            result.first_cycle_members = std::move(members);
        }
      }
      frames.pop_back();
      if (!frames.empty())
        lowlink[frames.back().v] =
            std::min(lowlink[frames.back().v], lowlink[v]);
    }
  }
  return result;
}

std::vector<std::uint32_t> extract_cycle(const ChannelGraph& graph,
                                         const std::vector<std::uint32_t>& scc) {
  std::vector<std::uint8_t> member(graph.num_nodes(), 0);
  std::uint32_t start = scc.front();
  for (const std::uint32_t v : scc) {
    member[v] = 1;
    start = std::min(start, v);
  }
  std::vector<std::uint32_t> path;
  std::vector<std::uint32_t> pos(graph.num_nodes(), kNoChannel);
  std::uint32_t at = start;
  while (pos[at] == kNoChannel) {
    pos[at] = static_cast<std::uint32_t>(path.size());
    path.push_back(at);
    std::uint32_t next = kNoChannel;
    for (std::uint32_t e = graph.offsets[at]; e < graph.offsets[at + 1]; ++e) {
      if (member[graph.targets[e]] != 0) {
        next = graph.targets[e];  // targets ascending: first hit is smallest
        break;
      }
    }
    util::expects(next != kNoChannel,
                  "every member of a cyclic SCC has an in-SCC successor");
    at = next;
  }
  return {path.begin() + pos[at], path.end()};
}

bool dependencies_acyclic(std::size_t num_channels,
                          const std::vector<std::uint64_t>& deps) {
  const ChannelGraph graph = build_graph(num_channels, deps);
  enum : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<std::uint8_t> color(num_channels, kWhite);
  struct Frame {
    std::uint32_t v;
    std::uint32_t edge;
  };
  std::vector<Frame> frames;
  for (std::uint32_t root = 0; root < num_channels; ++root) {
    if (color[root] != kWhite) continue;
    color[root] = kGrey;
    frames.push_back({root, graph.offsets[root]});
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.edge < graph.offsets[frame.v + 1]) {
        const std::uint32_t w = graph.targets[frame.edge++];
        if (color[w] == kGrey) return false;  // back edge closes a cycle
        if (color[w] == kWhite) {
          color[w] = kGrey;
          frames.push_back({w, graph.offsets[w]});
        }
        continue;
      }
      color[frame.v] = kBlack;
      frames.pop_back();
    }
  }
  return true;
}

bool is_up_channel(const Fabric& fabric, PortId port) {
  const topo::Port& pt = fabric.port(port);
  return pt.index >= fabric.node(pt.node).num_down_ports;
}

std::string channel_to_string(const Fabric& fabric, PortId port) {
  const topo::Port& from = fabric.port(port);
  const topo::Port& to = fabric.port(from.peer);
  std::ostringstream oss;
  oss << fabric.node_name(from.node) << "[port " << from.index << "] -> "
      << fabric.node_name(to.node) << "[port " << to.index << ']';
  return oss.str();
}

}  // namespace ftcf::check
