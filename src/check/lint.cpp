#include "check/lint.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "topology/validate.hpp"

namespace ftcf::check {

using topo::Fabric;
using topo::NodeId;
using topo::PgftSpec;

namespace {

constexpr std::size_t kMaxPerRule = 8;  ///< findings cap per repeated rule

void lint_structure(const Fabric& fabric, Diagnostics& diagnostics) {
  const topo::ValidationReport report = topo::validate_fabric(fabric);
  std::size_t shown = 0;
  for (const std::string& problem : report.problems) {
    if (shown == kMaxPerRule) {
      diagnostics.note("pgft-structure", "",
                       std::to_string(report.problems.size() - kMaxPerRule) +
                           " further structure problem(s) not shown");
      break;
    }
    diagnostics.error("pgft-structure", "", problem);
    ++shown;
  }
}

void lint_cbb(const Fabric& fabric, Diagnostics& diagnostics) {
  const PgftSpec& spec = fabric.spec();
  for (std::uint32_t l = 1; l < spec.height(); ++l) {
    const std::uint64_t below =
        static_cast<std::uint64_t>(spec.m(l)) * spec.p(l);
    const std::uint64_t above =
        static_cast<std::uint64_t>(spec.w(l + 1)) * spec.p(l + 1);
    if (below == above) continue;
    std::ostringstream oss;
    oss << "cross-bisectional bandwidth is not constant at level " << l
        << ": m_" << l << "*p_" << l << " = " << below << " but w_" << l + 1
        << "*p_" << l + 1 << " = " << above
        << "; Theorems 1-2 (contention-free shift under D-Mod-K) "
           "do not apply";
    diagnostics.warning("rlft-cbb", "level " + std::to_string(l),
                        oss.str());
    return;
  }
  // Spec-level CBB holds; confirm the instantiated graph agrees (imported
  // fabrics could in principle diverge from their spec line).
  const topo::ValidationReport cbb = topo::validate_constant_cbb(fabric);
  if (!cbb.ok)
    diagnostics.warning("rlft-cbb", "", cbb.problems.front() +
                            "; Theorems 1-2 do not apply");
}

void lint_radix(const Fabric& fabric, Diagnostics& diagnostics) {
  const PgftSpec& spec = fabric.spec();
  if (spec.has_constant_arity()) return;
  std::ostringstream oss;
  oss << "switch radix varies across levels (";
  for (std::uint32_t l = 1; l <= spec.height(); ++l) {
    if (l > 1) oss << ", ";
    oss << "level " << l << ": "
        << static_cast<std::uint64_t>(spec.m(l)) * spec.p(l) << " down-ports";
  }
  oss << "); the fabric is not an RLFT, so the paper's closed-form "
         "guarantees are void";
  diagnostics.warning("rlft-radix", "", oss.str());
}

void lint_single_cable(const Fabric& fabric, Diagnostics& diagnostics) {
  const PgftSpec& spec = fabric.spec();
  if (spec.has_single_cable_hosts()) return;
  std::ostringstream oss;
  oss << "hosts have w_1*p_1 = "
      << static_cast<std::uint64_t>(spec.w(1)) * spec.p(1)
      << " cables; RLFTs require single-cable hosts (w_1 == p_1 == 1), and "
         "the D-Mod-K node-order guarantees assume it";
  diagnostics.warning("rlft-single-cable", "", oss.str());
}

void lint_parallel_ports(const Fabric& fabric, Diagnostics& diagnostics) {
  const PgftSpec& spec = fabric.spec();
  // Every (lower, upper) adjacent node pair must be joined by exactly
  // p_{l+1} parallel cables, and a level-l node must see exactly w_{l+1}
  // distinct parents.
  for (NodeId id = 0; id < fabric.num_nodes(); ++id) {
    const topo::Node& node = fabric.node(id);
    if (node.level >= spec.height()) continue;  // top level has no up-ports
    const std::uint32_t expect_parallel = spec.p(node.level + 1);
    const std::uint32_t expect_parents = spec.w(node.level + 1);
    std::map<NodeId, std::uint32_t> per_parent;
    for (std::uint32_t i = 0; i < node.num_up_ports; ++i)
      ++per_parent[fabric.neighbor(id, node.num_down_ports + i)];
    if (per_parent.size() != expect_parents) {
      std::ostringstream oss;
      oss << fabric.node_name(id) << " connects to " << per_parent.size()
          << " parent(s), spec requires w_" << node.level + 1 << " = "
          << expect_parents;
      diagnostics.warning("rlft-parallel-ports", fabric.node_name(id),
                          oss.str());
      return;
    }
    for (const auto& [parent, cables] : per_parent) {
      if (cables == expect_parallel) continue;
      std::ostringstream oss;
      oss << fabric.node_name(id) << " -> " << fabric.node_name(parent)
          << " has " << cables << " parallel cable(s), spec requires p_"
          << node.level + 1 << " = " << expect_parallel
          << "; grouped parallel-port displacement arguments assume "
             "uniform rails";
      diagnostics.warning("rlft-parallel-ports", fabric.node_name(id),
                          oss.str());
      return;
    }
  }
}

/// Degraded-wiring notes: with cables or switches removed, the *surviving*
/// fabric no longer satisfies the structural premises even when the
/// pristine wiring does. Fabric objects always describe the pristine graph
/// (faults overlay it), so these fire as notes alongside the pristine lints.
void lint_degraded_structure(const Fabric& fabric,
                             const fault::FaultState& faults,
                             Diagnostics& diagnostics) {
  if (faults.pristine()) return;
  const std::uint64_t cables = faults.cables_down();
  const std::uint64_t switches = faults.switches_down();
  if (cables == 0 && switches == 0) return;  // rate-only degradation
  {
    std::ostringstream oss;
    oss << "fault state removes " << cables << " cable(s) and " << switches
        << " switch(es); the surviving fabric violates the PGFT wiring rule "
           "(structural lints above describe the pristine wiring)";
    diagnostics.note("pgft-structure", "degraded", oss.str());
  }
  {
    std::ostringstream oss;
    oss << "cross-bisectional bandwidth is not constant on the surviving "
           "fabric ("
        << faults.surviving_hosts().size() << " of " << fabric.num_hosts()
        << " hosts reachable); Theorems 1-2 apply to the pristine wiring "
           "only";
    diagnostics.note("rlft-cbb", "degraded", oss.str());
  }
}

}  // namespace

const char* stage_shape_name(StageShape shape) noexcept {
  switch (shape) {
    case StageShape::kEmpty: return "empty";
    case StageShape::kConstantShift: return "constant-shift";
    case StageShape::kSymmetricExchange: return "symmetric-exchange";
    case StageShape::kIrregular: return "irregular";
  }
  return "?";
}

StageShape classify_stage_shape(const cps::Stage& stage,
                                std::uint64_t num_ranks) {
  if (stage.pairs.empty() || num_ranks == 0) return StageShape::kEmpty;
  const std::uint64_t n = num_ranks;

  // Constant shift: the same (dst - src) mod N for every pair.
  bool constant_shift = true;
  const std::uint64_t d0 =
      (stage.pairs.front().dst + n - stage.pairs.front().src) % n;
  for (const cps::Pair& pr : stage.pairs) {
    if ((pr.dst + n - pr.src) % n != d0) {
      constant_shift = false;
      break;
    }
  }
  if (constant_shift) return StageShape::kConstantShift;

  // Symmetric constant-distance exchange: |dst - src| constant and the
  // pair set is an involution (grouped-RD / recursive-doubling shape).
  const cps::Pair& f = stage.pairs.front();
  const std::uint64_t dist0 = f.dst > f.src ? f.dst - f.src : f.src - f.dst;
  std::vector<cps::Pair> sorted = stage.pairs;
  std::sort(sorted.begin(), sorted.end());
  for (const cps::Pair& pr : stage.pairs) {
    const std::uint64_t dist =
        pr.dst > pr.src ? pr.dst - pr.src : pr.src - pr.dst;
    if (dist != dist0 ||
        !std::binary_search(sorted.begin(), sorted.end(),
                            cps::Pair{pr.dst, pr.src}))
      return StageShape::kIrregular;
  }
  return StageShape::kSymmetricExchange;
}

void lint_fabric(const Fabric& fabric, Diagnostics& diagnostics,
                 const fault::FaultState* faults) {
  lint_structure(fabric, diagnostics);
  lint_cbb(fabric, diagnostics);
  lint_radix(fabric, diagnostics);
  lint_single_cable(fabric, diagnostics);
  lint_parallel_ports(fabric, diagnostics);
  if (faults != nullptr) lint_degraded_structure(fabric, *faults, diagnostics);
}

void lint_ordering(const Fabric& fabric, const order::NodeOrdering& ordering,
                   Diagnostics& diagnostics) {
  const std::uint64_t ranks = ordering.num_ranks();
  const bool partial = ranks < fabric.num_hosts();
  if (partial)
    diagnostics.note("order-partial", "",
                     "ordering covers " + std::to_string(ranks) + " of " +
                         std::to_string(fabric.num_hosts()) +
                         " hosts; Theorems 1-2 assume a full job (a single "
                         "sub-allocation residue class also shifts "
                         "contention-free, see paper Sec. V)");

  // Full jobs must place rank r on host r; partial jobs must keep ranks in
  // ascending host order (the compact restriction of the topology order).
  std::uint64_t mismatches = 0;
  std::string first;
  std::uint64_t prev_host = 0;
  for (std::uint64_t r = 0; r < ranks; ++r) {
    const std::uint64_t host = ordering.host_of(r);
    const bool bad = partial ? (r > 0 && host <= prev_host) : (host != r);
    if (bad) {
      ++mismatches;
      if (first.empty()) {
        std::ostringstream oss;
        oss << "rank " << r << " -> host " << host;
        if (!partial) oss << ", topology order requires host " << r;
        first = oss.str();
      }
    }
    prev_host = host;
  }
  if (mismatches != 0) {
    std::ostringstream oss;
    oss << "node order differs from the RLFT index order at " << mismatches
        << " rank(s) (first: " << first
        << "); D-Mod-K loses the HSD=1 guarantee of Theorems 1-2 under "
           "this placement";
    diagnostics.warning("order-mismatch", "", oss.str());
  }
}

void lint_sequence(const cps::Sequence& sequence, Diagnostics& diagnostics) {
  const std::uint64_t n = sequence.num_ranks;
  std::size_t shown = 0;
  std::uint64_t violations = 0;
  for (std::size_t s = 0; s < sequence.stages.size(); ++s) {
    if (classify_stage_shape(sequence.stages[s], n) != StageShape::kIrregular)
      continue;
    ++violations;
    if (shown < 4) {
      ++shown;
      diagnostics.warning(
          "cps-displacement", "stage " + std::to_string(s),
          "stage has no constant displacement (neither a constant shift "
          "nor a symmetric constant-distance exchange); the stage-"
          "displacement premise of Theorem 3 does not hold, so HSD=1 is "
          "not guaranteed even under D-Mod-K with topology order");
    }
  }
  if (violations > shown)
    diagnostics.note("cps-displacement", "",
                     std::to_string(violations - shown) +
                         " further stage(s) with non-constant displacement");
}

void lint_tables(const Fabric& fabric, const route::ForwardingTables& tables,
                 bool degraded_expected, Diagnostics& diagnostics) {
  if (tables.complete()) return;
  std::uint64_t missing = 0;
  for (const NodeId sw : fabric.switch_ids())
    for (std::uint64_t d = 0; d < fabric.num_hosts(); ++d)
      if (!tables.has_entry(sw, d)) ++missing;
  std::ostringstream oss;
  oss << missing << " unprogrammed (switch, destination) entr"
      << (missing == 1 ? "y" : "ies");
  if (degraded_expected) {
    oss << " (expected on a degraded fabric: destinations with no "
           "surviving path stay unrouted)";
    diagnostics.note("lft-incomplete", "", oss.str());
  } else {
    oss << " on a pristine fabric; affected pairs cannot communicate";
    diagnostics.warning("lft-incomplete", "", oss.str());
  }
}

}  // namespace ftcf::check
