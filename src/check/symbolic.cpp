#include "check/symbolic.hpp"

#include <algorithm>
#include <bit>
#include <ostream>
#include <sstream>

#include "check/diagnostics.hpp"
#include "obs/profile.hpp"
#include "util/expects.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {

namespace detail {

std::uint64_t floor_sum(std::uint64_t n, std::uint64_t m, std::uint64_t a,
                        std::uint64_t b) {
  util::expects(m > 0, "floor_sum needs a positive modulus");
  // Euclidean lattice-point count (the AtCoder floor_sum): each iteration
  // swaps the roles of slope and modulus, so the loop terminates like gcd.
  std::uint64_t ans = 0;
  while (n > 0) {
    if (a >= m) {
      ans += n * (n - 1) / 2 * (a / m);
      a %= m;
    }
    if (b >= m) {
      ans += n * (b / m);
      b %= m;
    }
    const std::uint64_t y_max = a * n + b;
    if (y_max < m) break;
    n = y_max / m;
    b = y_max % m;
    std::swap(m, a);
  }
  return ans;
}

namespace {

/// #{x < hi : x mod m < w} — the O(1) prefix form for unit strides.
std::uint64_t prefix_mod_lt(std::uint64_t hi, std::uint64_t m,
                            std::uint64_t w) {
  return (hi / m) * w + std::min(hi % m, w);
}

}  // namespace

std::uint64_t count_strided_mod_lt(std::uint64_t n, std::uint64_t base,
                                   std::uint64_t stride, std::uint64_t m,
                                   std::uint64_t w) {
  util::expects(w <= m, "residue window exceeds the modulus");
  if (n == 0 || w == 0) return 0;
  if (w == m) return n;
  if (stride == 1)
    return prefix_mod_lt(base + n, m, w) - prefix_mod_lt(base, m, w);
  // [x mod m < w] == floor(x/m) - floor((x + m - w)/m) + 1, summed over the
  // progression x = base + stride*k via two Euclidean floor-sums.
  return n + floor_sum(n, m, stride, base) -
         floor_sum(n, m, stride, base + m - w);
}

}  // namespace detail

namespace {

using cps::AlgebraKind;
using cps::SourceSet;
using cps::StageAlgebra;
using detail::count_strided_mod_lt;

/// Number of sources s in S with s < threshold (S sorted / ascending).
std::uint64_t count_below(const SourceSet& s, std::uint64_t threshold) {
  if (!s.strided) {
    return static_cast<std::uint64_t>(
        std::lower_bound(s.values.begin(), s.values.end(), threshold) -
        s.values.begin());
  }
  if (s.base >= threshold) return 0;
  const std::uint64_t k = (threshold - s.base + s.stride - 1) / s.stride;
  return std::min(s.count, k);
}

/// Flows of a shift stage staying inside their size-m block:
///   no-wrap sources (s < N - d): same block iff d < m and s mod m < m - d;
///   wrapping sources (s >= N - d): same block iff N - d < m and
///   s mod m >= N - d.
std::uint64_t shift_same_block(const SourceSet& sources, std::uint64_t d,
                               std::uint64_t m, std::uint64_t n) {
  const std::uint64_t wrap_gap = n - d;  // d in [1, n)
  if (!sources.strided) {
    std::uint64_t same = 0;
    for (const std::uint64_t s : sources.values) {
      if (s < wrap_gap) {
        same += (d < m && s % m < m - d) ? 1 : 0;
      } else {
        same += (wrap_gap < m && s % m >= wrap_gap) ? 1 : 0;
      }
    }
    return same;
  }
  const std::uint64_t cut = count_below(sources, wrap_gap);
  std::uint64_t same = 0;
  if (d < m) {
    same += count_strided_mod_lt(cut, sources.base, sources.stride, m, m - d);
  }
  if (wrap_gap < m) {
    const std::uint64_t tail = sources.count - cut;
    const std::uint64_t tail_base = sources.base + sources.stride * cut;
    same += tail - count_strided_mod_lt(tail, tail_base, sources.stride, m,
                                        wrap_gap);
  }
  return same;
}

/// Smallest power of two strictly containing every bit of mask (mask != 0).
std::uint64_t xor_span(std::uint64_t mask) { return std::bit_floor(mask) << 1; }

/// Max source value, for range validation.
std::uint64_t max_source(const SourceSet& s) {
  if (!s.strided) return s.values.empty() ? 0 : s.values.back();
  return s.count == 0 ? 0 : s.base + s.stride * (s.count - 1);
}

/// The stage shape classify_stage_shape would recover from materialized
/// pairs, derived analytically for the pure-tuple path. Exact for every
/// generator algebra (symbolic_sequence normalizes the one degenerate
/// XOR-equals-shift stage); conservative (kIrregular) beyond it.
StageShape shape_of_algebra(const StageAlgebra& a) {
  switch (a.kind) {
    case AlgebraKind::kEmpty: return StageShape::kEmpty;
    case AlgebraKind::kShift: return StageShape::kConstantShift;
    case AlgebraKind::kXor: {
      // Symmetric exchange needs a constant |dst - src| (single-bit mask)
      // and an involution (sources closed under the mask).
      const bool single_bit = std::has_single_bit(a.xor_mask);
      const std::uint64_t span = single_bit ? a.xor_mask * 2 : 0;
      const bool closed = single_bit && a.sources.strided &&
                          a.sources.stride == 1 &&
                          a.sources.base % span == 0 &&
                          a.sources.count % span == 0;
      return closed ? StageShape::kSymmetricExchange : StageShape::kIrregular;
    }
    case AlgebraKind::kOpaque: return StageShape::kIrregular;
  }
  return StageShape::kIrregular;
}

struct Declined {
  std::string reason;
  std::optional<std::size_t> stage;
  std::optional<std::uint32_t> level;
};

SymbolicProof declined(Declined d) {
  SymbolicProof proof;
  proof.applicable = false;
  proof.inapplicable_reason = std::move(d.reason);
  proof.inapplicable_stage = d.stage;
  proof.inapplicable_level = d.level;
  return proof;
}

/// Validate one stage's algebra against the level blocks and produce its
/// proof record (flows + boundary-crossing counts). Returns a reason when
/// the stage has no digit-permutation argument.
std::optional<Declined> prove_stage(
    std::size_t index, const StageAlgebra& a, std::uint64_t n,
    const std::vector<route::DmodkLevelDigits>& levels,
    SymbolicStageProof& out) {
  out.kind = a.kind;
  out.ascents.assign(levels.empty() ? 0 : levels.size() - 1, 0);
  const auto stage_loc = [index] { return "stage " + std::to_string(index); };
  if (a.kind == AlgebraKind::kOpaque) {
    return Declined{stage_loc() +
                        " has no closed-form displacement algebra (not a "
                        "constant shift or constant XOR over distinct "
                        "in-range sources)",
                    index, std::nullopt};
  }
  if (a.kind == AlgebraKind::kEmpty) return std::nullopt;
  if (!a.sources.strided &&
      !std::is_sorted(a.sources.values.begin(), a.sources.values.end()))
    return Declined{stage_loc() + " has an unsorted explicit source set",
                    index, std::nullopt};
  if (a.sources.size() == 0) return std::nullopt;
  if (max_source(a.sources) >= n)
    return Declined{stage_loc() + " has source ranks beyond the fabric",
                    index, std::nullopt};

  if (a.kind == AlgebraKind::kShift) {
    const std::uint64_t d = a.displacement % n;
    out.parameter = d;
    if (d == 0) return std::nullopt;  // all self-pairs: nothing routed
    out.flows = a.sources.size();
    for (std::uint32_t l = 1; l + 1 <= levels.size(); ++l) {
      const std::uint64_t m = levels[l - 1].block;
      out.ascents[l - 1] =
          out.flows - shift_same_block(a.sources, d, m, n);
    }
    return std::nullopt;
  }

  // XOR: dst = src ^ mask. The map must stay inside [0, n) — guaranteed
  // when the source range is closed under the mask's bit span.
  const std::uint64_t mask = a.xor_mask;
  out.parameter = mask;
  const std::uint64_t span = xor_span(mask);
  const bool closed_range = a.sources.strided && a.sources.stride == 1 &&
                            a.sources.base % span == 0 &&
                            a.sources.count % span == 0;
  if (!closed_range)
    return Declined{stage_loc() +
                        ": XOR stage sources are not closed under the mask's "
                        "bit span, so the destination range is unproven",
                    index, std::nullopt};
  out.flows = a.sources.size();
  for (std::uint32_t l = 1; l + 1 <= levels.size(); ++l) {
    const std::uint64_t m = levels[l - 1].block;
    if (std::has_single_bit(m)) {
      // Low digit permutation x -> x ^ (mask mod m); the boundary is
      // crossed by every source or none, depending on the high bits.
      out.ascents[l - 1] = mask >= m ? out.flows : 0;
    } else if (m % span == 0) {
      out.ascents[l - 1] = 0;  // the mask's bits never leave a block
    } else {
      std::ostringstream oss;
      oss << stage_loc() << ": XOR mask " << mask
          << " crosses level-" << l << " blocks of size " << m
          << " (neither a power of two nor a multiple of " << span
          << "), so x -> x ^ d is not a digit permutation of Z_" << m;
      return Declined{oss.str(), index, l};
    }
  }
  return std::nullopt;
}

StageWitness witness_of(const SymbolicStageProof& proof, StageShape shape) {
  StageWitness w;
  w.shape = shape;
  w.num_flows = proof.flows;
  w.unroutable_flows = 0;
  if (proof.flows == 0) return w;
  // Every link loads at most one flow (the digit-injectivity argument), so
  // links_loaded is exactly the total link uses: each flow with nca t uses
  // 2t links, and sum over flows of nca equals A_0 + sum_l A_l.
  std::uint64_t ascent_sum = 0;
  for (const std::uint64_t a : proof.ascents) ascent_sum += a;
  w.links_loaded = 2 * (proof.flows + ascent_sum);
  w.max_hsd = 1;
  w.max_down_hsd = 1;  // every delivered flow ends on a down link
  w.max_up_hsd = (!proof.ascents.empty() && proof.ascents.front() > 0) ? 1 : 0;
  return w;
}

SymbolicProof certify_algebra(const topo::PgftSpec& spec,
                              const cps::SequenceAlgebra& algebra,
                              const std::vector<StageShape>* shapes) {
  const std::uint64_t n = spec.num_hosts();
  if (algebra.num_ranks != n) {
    std::ostringstream oss;
    oss << "sequence is over " << algebra.num_ranks << " rank(s) but the "
        << "fabric has " << n << " host(s)";
    return declined({oss.str(), std::nullopt, std::nullopt});
  }
  SymbolicProof proof;
  proof.levels = route::dmodk_level_digits(spec);
  for (std::uint32_t l = 0; l < proof.levels.size(); ++l) {
    if (proof.levels[l].closed_form) continue;
    std::ostringstream oss;
    oss << "the D-Mod-K closed form does not hold: W_l*p_l = "
        << proof.levels[l].key_modulus << " != M_(l-1) = "
        << spec.m_prefix_product(l) << " at level " << (l + 1)
        << " (PGFT tuple outside the RLFT digit frontier)";
    SymbolicProof out = declined({oss.str(), std::nullopt, l + 1});
    out.levels = std::move(proof.levels);
    return out;
  }

  proof.stages.resize(algebra.stages.size());
  proof.certificate.num_ranks = algebra.num_ranks;
  proof.certificate.sequence_name = algebra.name;
  proof.certificate.contention_free = true;
  proof.certificate.stages.reserve(algebra.stages.size());
  for (std::size_t s = 0; s < algebra.stages.size(); ++s) {
    if (auto bad = prove_stage(s, algebra.stages[s], n, proof.levels,
                               proof.stages[s])) {
      SymbolicProof out = declined(std::move(*bad));
      out.levels = std::move(proof.levels);
      return out;
    }
    const StageShape shape =
        shapes != nullptr ? (*shapes)[s] : shape_of_algebra(algebra.stages[s]);
    proof.certificate.stages.push_back(witness_of(proof.stages[s], shape));
  }
  proof.applicable = true;
  return proof;
}

}  // namespace

SymbolicProof symbolic_certify(const topo::PgftSpec& spec,
                               const cps::SequenceAlgebra& algebra) {
  FTCF_PROF_SCOPE("check.symbolic");
  return certify_algebra(spec, algebra, nullptr);
}

SymbolicProof symbolic_certify(const topo::Fabric& fabric,
                               const order::NodeOrdering& ordering,
                               const cps::Sequence& sequence,
                               bool tables_canonical_dmodk) {
  FTCF_PROF_SCOPE("check.symbolic");
  if (!tables_canonical_dmodk) {
    return declined(
        {"forwarding tables are not provenance-tracked as canonical D-Mod-K "
         "on the pristine fabric (hand-loaded LFTs, degraded reroutes, and "
         "non-dmodk routers have no closed-form digit decomposition)",
         std::nullopt, std::nullopt});
  }
  const std::uint64_t n = fabric.num_hosts();
  if (ordering.num_ranks() != n) {
    std::ostringstream oss;
    oss << "node ordering covers " << ordering.num_ranks() << " of " << n
        << " host(s); the closed form needs the full identity order";
    return declined({oss.str(), std::nullopt, std::nullopt});
  }
  for (std::uint64_t r = 0; r < n; ++r) {
    if (ordering.host_of(r) == r) continue;
    std::ostringstream oss;
    oss << "node ordering is not the RLFT index order (rank " << r
        << " runs on host " << ordering.host_of(r)
        << "), so stage displacements in rank space say nothing about "
        << "host-index digits";
    return declined({oss.str(), std::nullopt, std::nullopt});
  }

  // Classify every stage's algebra and shape in parallel; both are pure
  // per-stage functions, so the fold below is deterministic.
  struct Classified {
    StageAlgebra algebra;
    StageShape shape = StageShape::kEmpty;
  };
  const std::vector<Classified> classified = par::parallel_map(
      sequence.stages.size(),
      [&](std::size_t s) {
        const cps::Stage& stage = sequence.stages[s];
        return Classified{cps::classify_stage_algebra(stage, n),
                          classify_stage_shape(stage, n)};
      },
      par::ForOptions{.threads = 0, .grain = 1,
                      .label = "check.symbolic.classify"});

  cps::SequenceAlgebra algebra;
  algebra.name = sequence.name;
  algebra.num_ranks = sequence.num_ranks;
  algebra.stages.reserve(classified.size());
  std::vector<StageShape> shapes;
  shapes.reserve(classified.size());
  for (const Classified& c : classified) {
    algebra.stages.push_back(c.algebra);
    shapes.push_back(c.shape);
  }
  return certify_algebra(fabric.spec(), algebra, &shapes);
}

std::string symbolic_digit_map(const SymbolicStageProof& stage,
                               std::uint64_t block) {
  std::ostringstream oss;
  switch (stage.kind) {
    case AlgebraKind::kEmpty:
      oss << "no flows";
      break;
    case AlgebraKind::kShift:
      oss << "x -> (x + " << stage.parameter % block << ") mod " << block;
      break;
    case AlgebraKind::kXor:
      if (std::has_single_bit(block)) {
        oss << "x -> x ^ " << (stage.parameter & (block - 1));
      } else {
        oss << "boundary uncrossed (" << xor_span(stage.parameter)
            << " divides " << block << ")";
      }
      break;
    case AlgebraKind::kOpaque:
      oss << "no digit map";
      break;
  }
  return oss.str();
}

void report_symbolic_proof(const SymbolicProof& proof,
                           Diagnostics& diagnostics) {
  util::expects(proof.applicable,
                "only an applicable proof can be reported as cert-symbolic-ok");
  std::uint64_t shift_stages = 0;
  std::uint64_t xor_stages = 0;
  for (const SymbolicStageProof& s : proof.stages) {
    if (s.flows == 0) continue;
    if (s.kind == AlgebraKind::kShift) ++shift_stages;
    if (s.kind == AlgebraKind::kXor) ++xor_stages;
  }
  std::ostringstream oss;
  oss << "HSD = 1 proved algebraically for " << (shift_stages + xor_stages)
      << " loaded stage(s) of '" << proof.certificate.sequence_name
      << "' over " << proof.certificate.num_ranks
      << " rank(s): up-link keys (floor(i/M_l), j mod M_l) with M = [";
  for (std::size_t l = 0; l < proof.levels.size(); ++l)
    oss << (l == 0 ? "" : ",") << proof.levels[l].block;
  oss << "]";
  if (shift_stages > 0)
    oss << "; " << shift_stages
        << " stage(s) act by the digit rotation x -> (x + d) mod M_l";
  if (xor_stages > 0)
    oss << "; " << xor_stages
        << " stage(s) act by the digit involution x -> x ^ d";
  oss << " — injective at every crossed boundary, no flow enumerated";
  diagnostics.note("cert-symbolic-ok", "", oss.str());
}

void write_symbolic_proof_json(std::ostream& os, const SymbolicProof& proof,
                               const std::map<std::string, std::string>& meta) {
  os << "{\n \"meta\":{";
  bool first = true;
  for (const auto& [key, value] : meta) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, key);
    os << ':';
    write_json_string(os, value);
  }
  os << "},\n \"proof\":{\"applicable\":"
     << (proof.applicable ? "true" : "false");
  if (!proof.applicable) {
    if (proof.inapplicable_level)
      os << ",\"level\":" << *proof.inapplicable_level;
    os << ",\"reason\":";
    write_json_string(os, proof.inapplicable_reason);
    if (proof.inapplicable_stage)
      os << ",\"stage\":" << *proof.inapplicable_stage;
    os << "},\n \"stages\":[]\n}\n";
    return;
  }
  os << ",\"argument\":";
  write_json_string(
      os,
      "up-link keys (floor(i/M_l), j mod M_l) are digit-injective at every "
      "crossed boundary; down-links follow the Theorem-2 destination "
      "bijection; per-stage sources and destinations are distinct");
  os << ",\"levels\":[";
  for (std::size_t l = 0; l < proof.levels.size(); ++l) {
    if (l != 0) os << ',';
    const route::DmodkLevelDigits& d = proof.levels[l];
    os << "{\"block\":" << d.block << ",\"closed_form\":"
       << (d.closed_form ? "true" : "false") << ",\"columns\":" << d.columns
       << ",\"key_modulus\":" << d.key_modulus << ",\"level\":" << (l + 1)
       << '}';
  }
  os << "],\"num_ranks\":" << proof.certificate.num_ranks
     << ",\"num_stages\":" << proof.stages.size() << ",\"sequence\":";
  write_json_string(os, proof.certificate.sequence_name);
  os << "},\n \"stages\":[";
  const std::size_t shown =
      std::min(proof.stages.size(), kMaxProofStagesShown);
  for (std::size_t s = 0; s < shown; ++s) {
    os << (s == 0 ? "\n  " : ",\n  ");
    const SymbolicStageProof& sp = proof.stages[s];
    os << "{\"algebra\":\"" << cps::algebra_kind_name(sp.kind)
       << "\",\"ascents\":[";
    for (std::size_t l = 0; l < sp.ascents.size(); ++l)
      os << (l == 0 ? "" : ",") << sp.ascents[l];
    os << "],\"digit_maps\":[";
    for (std::size_t l = 0; l < sp.ascents.size(); ++l) {
      if (l != 0) os << ',';
      write_json_string(os, sp.ascents[l] == 0
                                ? "uncrossed"
                                : symbolic_digit_map(
                                      sp, proof.levels[l].block));
    }
    os << "],\"flows\":" << sp.flows << ",\"parameter\":" << sp.parameter
       << ",\"stage\":" << s << '}';
  }
  os << (shown == 0 ? "]" : "\n ]") << ",\n \"elided_stages\":"
     << proof.stages.size() - shown << "\n}\n";
}

}  // namespace ftcf::check
