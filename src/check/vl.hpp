// Per-virtual-lane channel-dependency analysis (LASH-style escape lanes).
//
// InfiniBand breaks routing deadlocks that the single-lane CDG exposes by
// spreading traffic over virtual lanes: each lane has its own buffers, so
// only dependencies *within* one lane can deadlock. We model the standard
// destination-based assignment (every packet travels on the lane of its
// destination host, as in LASH): the dependency set partitions by
// destination, and routing is deadlock-free iff every lane's restricted
// dependency graph is acyclic — the Dally–Seitz criterion applied per lane.
//
// propose_vl_assignment runs the greedy layered search: destinations are
// placed in ascending order onto the lowest lane whose graph stays acyclic,
// opening a new lane only when every existing one would close a cycle. The
// loop is serial and index-ordered, so the proposal is deterministic at any
// thread count (only the per-destination dependency precomputation fans out
// over ftcf::par).
#pragma once

#include <string>
#include <vector>

#include "check/cdg.hpp"
#include "routing/validate.hpp"

namespace ftcf::check {

inline constexpr std::uint32_t kNoLane = static_cast<std::uint32_t>(-1);

/// A destination-based virtual-lane assignment over the fabric's hosts.
struct VlAssignment {
  std::uint32_t num_lanes = 0;
  /// Host index -> lane; kNoLane for destinations the search could not place
  /// (also listed in `unassigned`).
  std::vector<std::uint32_t> lane_of_dest;
  /// Destinations not placeable within the lane budget — either the budget
  /// was exhausted or the destination's own dependency set is cyclic (a
  /// routing loop no lane count can fix).
  std::vector<std::uint64_t> unassigned;

  [[nodiscard]] bool complete() const noexcept { return unassigned.empty(); }
};

/// Per-lane CDG verdicts under an assignment. Destinations left at kNoLane
/// contribute to no lane's graph.
struct VlCdgAnalysis {
  std::vector<CdgAnalysis> lanes;

  [[nodiscard]] std::uint32_t num_lanes() const noexcept {
    return static_cast<std::uint32_t>(lanes.size());
  }
  [[nodiscard]] bool all_acyclic() const noexcept {
    for (const CdgAnalysis& lane : lanes)
      if (!lane.acyclic) return false;
    return true;
  }
  /// The generalized Dally–Seitz verdict: acyclic iff every lane is, with
  /// down->up turns summed across lanes (a walk's bad turn lands in the lane
  /// of its destination, so the walk/CDG cross-check invariant carries over).
  [[nodiscard]] route::CdgVerdict verdict() const noexcept;
};

/// Analyze one restricted dependency graph per lane of `assignment`.
[[nodiscard]] VlCdgAnalysis analyze_cdg_per_vl(
    const topo::Fabric& fabric, const route::ForwardingTables& tables,
    const VlAssignment& assignment);

/// Greedy layered search for a minimal destination->lane assignment whose
/// per-lane graphs are all acyclic, using at most `max_lanes` lanes.
/// Acyclic tables come back as one lane; tables with cycles typically split
/// into two.
[[nodiscard]] VlAssignment propose_vl_assignment(
    const topo::Fabric& fabric, const route::ForwardingTables& tables,
    std::uint32_t max_lanes);

/// As above, but additionally hands back the per-destination dependency sets
/// the search computed (indexed by destination, packed like
/// destination_dependencies) so the optimality prover can reuse them instead
/// of rebuilding.
[[nodiscard]] VlAssignment propose_vl_assignment(
    const topo::Fabric& fabric, const route::ForwardingTables& tables,
    std::uint32_t max_lanes,
    std::vector<std::vector<std::uint64_t>>* per_dest_out);

/// Render an assignment for reports, e.g.
/// "2 lane(s): lane 0 <- dests 0-2,5 (4); lane 1 <- dests 3-4 (2)".
[[nodiscard]] std::string vl_assignment_to_string(
    const VlAssignment& assignment);

}  // namespace ftcf::check
