#include "check/replay.hpp"

#include <algorithm>
#include <cstddef>
#include <string>

#include "obs/heatmap.hpp"
#include "obs/sim_hooks.hpp"
#include "obs/trace.hpp"
#include "sim/packet_sim.hpp"
#include "sim/traffic.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {

namespace {

/// Stages worth replaying: loaded (num_flows > 0) and fully routable. A
/// stage with stranded flows cannot run through the packet simulator (it
/// would never drain), and an empty stage has nothing to compare.
bool replayable(const StageWitness& witness) noexcept {
  return witness.num_flows > 0 && witness.unroutable_flows == 0;
}

/// Deterministic stage sample: every blamed (routable) stage, plus evenly
/// spaced loaded stages up to `max_stages`. Sorted ascending, no duplicates —
/// a pure function of the certificate, never of the thread count.
std::vector<std::size_t> sample_stages(const Certificate& certificate,
                                       std::size_t max_stages) {
  std::vector<std::size_t> loaded;
  for (std::size_t s = 0; s < certificate.stages.size(); ++s)
    if (replayable(certificate.stages[s])) loaded.push_back(s);

  std::vector<std::size_t> picked;
  if (max_stages == 0 || loaded.size() <= max_stages) {
    picked = loaded;
  } else if (max_stages == 1) {
    picked.push_back(loaded.front());
  } else {
    for (std::size_t i = 0; i < max_stages; ++i)
      picked.push_back(loaded[i * (loaded.size() - 1) / (max_stages - 1)]);
  }
  for (const StageBlame& blame : certificate.blames)
    if (blame.stage < certificate.stages.size() &&
        replayable(certificate.stages[blame.stage]))
      picked.push_back(blame.stage);

  std::sort(picked.begin(), picked.end());
  picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
  return picked;
}

}  // namespace

TelemetryReplay replay_certificate_telemetry(
    const topo::Fabric& fabric, const route::ForwardingTables& tables,
    const order::NodeOrdering& ordering, const cps::Sequence& sequence,
    const Certificate& certificate, const TelemetryReplayOptions& options) {
  TelemetryReplay out;
  const std::vector<std::size_t> subset =
      sample_stages(certificate, options.max_stages);
  if (subset.empty()) return out;

  const std::vector<sim::StageTraffic> traffic = sim::traffic_from_cps(
      sequence, ordering, fabric.num_hosts(), options.bytes, &subset);

  // One private trace shard per sampled stage (shard i <- task i, per the
  // ShardedTraceRecorder contract), sized so a single-stage replay on a
  // full-bisection fabric never drops: ~one packet per flow, a handful of
  // events per hop.
  const std::size_t per_shard = std::max<std::size_t>(
      std::size_t{1} << 16, fabric.num_hosts() * 64);
  obs::ShardedTraceRecorder shards(subset.size(), per_shard);
  out.stages.resize(subset.size());

  par::parallel_for(
      subset.size(),
      [&](std::size_t i, std::uint32_t /*worker*/) {
        obs::TraceRecorder& shard = shards.shard(i);
        obs::SimObserver observer;
        observer.trace = &shard;
        observer.sample_period_ns = 0;  // spans only; no sampling noise

        sim::PacketSim psim(fabric, tables);
        psim.set_observer(observer);
        (void)psim.run({traffic[i]}, sim::Progression::kSynchronized);

        // The replayed stage is positionally stage 0 of its one-stage run.
        obs::ContentionHeatmap heatmap;
        heatmap.ingest(shard);

        StageReplay& replayed = out.stages[i];
        replayed.stage = subset[i];
        replayed.static_max_hsd = certificate.stages[subset[i]].max_hsd;
        replayed.dynamic_max_flows = heatmap.max_flows_in_stage(0);
        replayed.dropped_events = shard.dropped();
        replayed.match = replayed.dropped_events == 0 &&
                         replayed.dynamic_max_flows == replayed.static_max_hsd;
      },
      par::ForOptions{.threads = 0, .grain = 1, .label = "check.replay"});

  for (const StageReplay& replayed : out.stages) {
    if (replayed.dropped_events > 0) {
      ++out.inconclusive;
      continue;
    }
    if (!replayed.match) ++out.mismatches;
    if (replayed.match && replayed.static_max_hsd > 1)
      ++out.contended_confirmed;
  }
  return out;
}

void report_telemetry_replay(const TelemetryReplay& replay,
                             Diagnostics& diagnostics) {
  if (replay.stages.empty()) return;

  if (replay.consistent()) {
    const std::uint64_t conclusive =
        replay.stages.size() - replay.inconclusive;
    std::string message =
        "telemetry replay: " + std::to_string(conclusive) +
        " stage(s) re-simulated, dynamic per-link flow maxima match the "
        "static witnesses";
    if (replay.contended_confirmed > 0)
      message += "; " + std::to_string(replay.contended_confirmed) +
                 " contended stage(s) confirmed dynamically";
    if (replay.inconclusive > 0) {
      message += "; " + std::to_string(replay.inconclusive) +
                 " stage(s) inconclusive (trace truncated)";
      diagnostics.warning("cert-telemetry-ok", "", std::move(message));
    } else {
      diagnostics.note("cert-telemetry-ok", "", std::move(message));
    }
    return;
  }

  constexpr std::uint64_t kMaxReported = 4;
  std::uint64_t reported = 0;
  for (const StageReplay& replayed : replay.stages) {
    if (replayed.dropped_events > 0 || replayed.match) continue;
    if (reported == kMaxReported) {
      diagnostics.error(
          "cert-telemetry-mismatch", "",
          "and " + std::to_string(replay.mismatches - kMaxReported) +
              " more mismatching stage(s)");
      break;
    }
    ++reported;
    diagnostics.error(
        "cert-telemetry-mismatch", "stage " + std::to_string(replayed.stage),
        "replayed telemetry saw max " +
            std::to_string(replayed.dynamic_max_flows) +
            " concurrent flow(s) on a link, certificate proves max HSD " +
            std::to_string(replayed.static_max_hsd) +
            " — the simulator and the static certifier disagree about these "
            "routing tables");
  }
  if (replay.inconclusive > 0)
    diagnostics.warning("cert-telemetry-mismatch", "",
                        std::to_string(replay.inconclusive) +
                            " replayed stage(s) inconclusive (trace "
                            "truncated; raise the replay trace capacity)");
}

}  // namespace ftcf::check
