// Diagnostics engine for ftcf::check — the static analyzer's findings model.
//
// Every analyzer (CDG prover, theorem-precondition linter, table audit)
// reports rule-tagged Findings into one Diagnostics sink. A finding carries a
// stable rule ID (e.g. "rlft-cbb", "cdg-cycle"), a severity, an optional
// location ("S1_0", "stage 3") and a human-readable message explaining which
// paper guarantee is affected.
//
// Suppressions: a baseline file of `rule` or `rule:location-substring` lines
// silences known findings; suppressed findings are counted but excluded from
// the report and the exit code, so CI can gate on "nothing new".
//
// Reporters: a text form for humans and a deterministic JSON form (sorted
// keys, insertion-ordered findings) that is byte-identical across runs and
// thread counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ftcf::check {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

[[nodiscard]] const char* severity_name(Severity severity) noexcept;

/// One rule-tagged diagnostic.
struct Finding {
  std::string rule;      ///< stable kebab-case rule ID ("rlft-cbb")
  Severity severity = Severity::kWarning;
  std::string location;  ///< node/stage/pair the finding anchors to ("" = global)
  std::string message;   ///< what is wrong and which guarantee it voids

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// Parsed suppression/baseline rules. File format, one entry per line:
///
///   rule-id                 # silence the rule everywhere
///   rule-id:location-part   # silence it where location contains the part
///
/// '#' starts a comment; blank lines are ignored.
class Suppressions {
 public:
  /// Parse the file format above; throws util::ParseError on malformed lines.
  [[nodiscard]] static Suppressions parse(std::istream& is);
  [[nodiscard]] static Suppressions parse_string(const std::string& text);

  /// True when `finding` matches a suppression entry.
  [[nodiscard]] bool matches(const Finding& finding) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Rule IDs of the parsed entries, in file order (duplicates preserved) —
  /// what run_check validates against the known-rule catalog.
  [[nodiscard]] std::vector<std::string> rules() const;

 private:
  struct Entry {
    std::string rule;
    std::string location_part;  ///< empty = any location
  };
  std::vector<Entry> entries_;
};

/// Ordered findings sink with severity accounting and reporters.
class Diagnostics {
 public:
  /// Install suppressions before adding findings; matching findings are
  /// counted as suppressed instead of recorded.
  void set_suppressions(Suppressions suppressions);

  void add(Finding finding);
  void note(std::string rule, std::string location, std::string message);
  void warning(std::string rule, std::string location, std::string message);
  void error(std::string rule, std::string location, std::string message);

  [[nodiscard]] const std::vector<Finding>& findings() const noexcept {
    return findings_;
  }
  [[nodiscard]] std::uint64_t count(Severity severity) const noexcept;
  [[nodiscard]] std::uint64_t errors() const noexcept {
    return count(Severity::kError);
  }
  [[nodiscard]] std::uint64_t warnings() const noexcept {
    return count(Severity::kWarning);
  }
  [[nodiscard]] std::uint64_t notes() const noexcept {
    return count(Severity::kNote);
  }
  [[nodiscard]] std::uint64_t suppressed() const noexcept {
    return suppressed_;
  }

  /// No errors (and, when strict, no warnings either). Notes never gate.
  [[nodiscard]] bool clean(bool strict = false) const noexcept {
    return errors() == 0 && (!strict || warnings() == 0);
  }
  /// CLI contract: 0 when clean(strict), else 1.
  [[nodiscard]] int exit_code(bool strict = false) const noexcept {
    return clean(strict) ? 0 : 1;
  }

  /// Human-readable report: one line per finding plus a summary line.
  void write_text(std::ostream& os) const;

  /// Deterministic JSON: {"meta":{...},"summary":{...},"findings":[...]}.
  /// Meta keys and summary keys are sorted; findings keep insertion order.
  /// Identical analysis input yields a byte-identical document.
  void write_json(std::ostream& os,
                  const std::map<std::string, std::string>& meta = {}) const;

 private:
  std::vector<Finding> findings_;
  Suppressions suppressions_;
  std::uint64_t counts_[3] = {0, 0, 0};
  std::uint64_t suppressed_ = 0;
};

/// Escape and quote one string for the deterministic JSON reports (shared
/// by Diagnostics::write_json and check::write_certificate_json).
void write_json_string(std::ostream& os, std::string_view s);

/// The catalog of stable rule IDs the analyzers emit, sorted ascending.
/// Suppression files referencing anything else trip `suppress-unknown-rule`.
[[nodiscard]] std::span<const std::string_view> known_rule_ids() noexcept;

/// True when `rule` is in the catalog. `blame-<rule>` cross-references are
/// known exactly when their target rule is.
[[nodiscard]] bool is_known_rule(std::string_view rule) noexcept;

/// Emit a suppression baseline covering every current finding: one
/// `rule:location` (or bare `rule`) line per distinct finding, parseable by
/// Suppressions::parse. Re-running the same analysis under the emitted
/// baseline reports zero findings — the brownfield path to `--strict`.
void write_baseline(const Diagnostics& diagnostics, std::ostream& os);

}  // namespace ftcf::check
