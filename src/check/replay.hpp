// Obs <-> check cross-validation: the dynamic witness for the static
// certificate.
//
// The certifier (check/certify.hpp) *proves* per-stage HSD statically by
// walking routes. This module re-simulates a sample of the certified stages
// through sim::PacketSim with a trace recorder attached and extracts, from
// the telemetry alone, the maximum number of distinct messages that crossed
// any directed link during the stage. For deterministic single-path routing
// with every packet delivered, that count must equal the stage witness's
// max_hsd exactly — on clean stages (both 1) and on violating stages (both
// the contended count). Any divergence means the simulator and the static
// analyzer disagree about what the routing tables do, which is a bug in one
// of them — surfaced as the `cert-telemetry-mismatch` error. Agreement earns
// the `cert-telemetry-ok` note.
//
// Stages replay in parallel (one ftcf::par task per sampled stage, one
// private trace shard per stage), and stages are sampled deterministically
// (evenly spaced over the loaded stages, plus every blamed stage), so the
// outcome is byte-identical at any --threads count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "check/certify.hpp"
#include "check/diagnostics.hpp"
#include "cps/stage.hpp"
#include "ordering/ordering.hpp"
#include "routing/lft.hpp"
#include "topology/fabric.hpp"

namespace ftcf::check {

struct TelemetryReplayOptions {
  /// Replay at most this many evenly spaced loaded stages (blamed stages are
  /// always added on top). 0 disables sampling-by-count (replay everything).
  std::size_t max_stages = 6;
  /// Bytes per stage message; keep at/below the MTU so one message is one
  /// packet and the flow count is exact.
  std::uint64_t bytes = 2048;
};

/// Verdict for one replayed stage.
struct StageReplay {
  std::size_t stage = 0;             ///< CPS stage index
  std::uint32_t static_max_hsd = 0;  ///< StageWitness::max_hsd
  std::uint64_t dynamic_max_flows = 0;  ///< max distinct msgs on any link
  std::uint64_t dropped_events = 0;  ///< > 0: trace truncated, inconclusive
  bool match = false;                ///< dynamic == static (and conclusive)
};

struct TelemetryReplay {
  std::vector<StageReplay> stages;  ///< ascending stage order
  std::uint64_t mismatches = 0;     ///< conclusive stages that disagree
  std::uint64_t inconclusive = 0;   ///< truncated-trace stages
  std::uint64_t contended_confirmed = 0;  ///< blamed stages seen contended
  [[nodiscard]] bool consistent() const noexcept { return mismatches == 0; }
};

/// Re-simulate a deterministic sample of the certificate's stages and compare
/// per-link concurrent-flow maxima against the static witnesses.
[[nodiscard]] TelemetryReplay replay_certificate_telemetry(
    const topo::Fabric& fabric, const route::ForwardingTables& tables,
    const order::NodeOrdering& ordering, const cps::Sequence& sequence,
    const Certificate& certificate, const TelemetryReplayOptions& options = {});

/// Map the replay onto the diagnostics engine: `cert-telemetry-ok` note when
/// every conclusive stage matches (warning instead when stages were
/// inconclusive), one `cert-telemetry-mismatch` error per disagreeing stage
/// (capped).
void report_telemetry_replay(const TelemetryReplay& replay,
                             Diagnostics& diagnostics);

}  // namespace ftcf::check
