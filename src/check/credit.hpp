// Credit-loop prover: the Dally–Seitz criterion applied to the buffer level
// the packet simulator actually models.
//
// The simulator's credit flow control grants each directed link an initial
// credit pool equal to the free space in the receiving input buffer
// (sim::PacketSim::buffer_topology()). A packet holding buffer space on
// channel A while waiting for credit on channel B creates a buffer
// dependency A -> B; a cycle of such dependencies is a credit loop — every
// buffer in the ring full, every packet waiting on the next — and the
// simulation would wedge. The dependency universe differs from the
// link-level CDG in one way: host *injection* links (host -> leaf switch)
// also land in finite switch buffers, so they join the graph; host
// *delivery* links (switch -> host) drain into the unbounded host sink and
// stay out.
//
// Injection channels are never the target of a dependency (a dependency's
// `to` channel is always sourced by a switch), so they have in-degree 0 and
// cannot take part in a cycle: on the same tables the credit verdict must
// equal the link-level CDG verdict. A disagreement means one of the two
// derivations is wrong — run_check reports it as `credit-cdg-mismatch`,
// an implementation-inconsistency detector that should never fire.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "routing/lft.hpp"
#include "sim/packet_sim.hpp"

namespace ftcf::check {

/// Outcome of the credit-loop analysis of one set of tables.
struct CreditLoopAnalysis {
  std::uint64_t num_buffered_channels = 0;  ///< finite-buffer directed links
  std::uint64_t host_injection_channels = 0;  ///< of those, host -> switch
  std::uint64_t num_dependencies = 0;
  bool acyclic = true;
  std::uint64_t cyclic_scc_count = 0;
  /// One concrete credit loop when !acyclic (same rendering contract as
  /// CdgAnalysis::cycle; feed to cycle_to_string).
  std::vector<topo::PortId> cycle;

  [[nodiscard]] bool deadlock_free() const noexcept { return acyclic; }
};

/// Build and analyze the buffer-dependency graph induced by `tables` over
/// the credit topology `buffers` (from sim::PacketSim::buffer_topology();
/// must cover every port of `fabric`).
[[nodiscard]] CreditLoopAnalysis analyze_credit_loops(
    const topo::Fabric& fabric, const route::ForwardingTables& tables,
    std::span<const sim::PortBuffer> buffers);

}  // namespace ftcf::check
