// Shared channel-dependency machinery for the ftcf::check provers.
//
// Three analyses walk the same mathematical object — a dependency graph over
// the fabric's directed links ("channels") induced by the forwarding tables:
//   * the classic CDG deadlock proof (check/cdg.hpp) over switch-to-switch
//     channels;
//   * the per-virtual-lane CDGs (check/vl.hpp), which restrict the
//     destination set contributing dependencies to one lane at a time;
//   * the credit-loop prover (check/credit.hpp), whose universe is every
//     channel guarded by a finite credit pool in the packet simulator.
// This header factors the pieces they share: dense channel numbering,
// dependency generation (parallel over ftcf::par, merged in switch-index
// order — byte-identical at any thread count), CSR adjacency, iterative
// Tarjan SCC and concrete-cycle extraction.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "routing/lft.hpp"

namespace ftcf::check {

inline constexpr std::uint32_t kNoChannel = static_cast<std::uint32_t>(-1);

/// Dense numbering of a subset of the fabric's directed links.
struct ChannelIndex {
  std::vector<topo::PortId> channels;  ///< dense id -> PortId
  std::vector<std::uint32_t> dense;    ///< PortId -> dense id (kNoChannel = excluded)

  [[nodiscard]] std::size_t size() const noexcept { return channels.size(); }
  [[nodiscard]] bool empty() const noexcept { return channels.empty(); }
};

/// Switch-to-switch channels only — the classic CDG universe (host links
/// cannot take part in a dependency cycle: a host link is entered only by
/// its own host).
[[nodiscard]] ChannelIndex switch_channels(const topo::Fabric& fabric);

/// Channels whose receiving endpoint is a finite input buffer: `finite` is
/// indexed by PortId and ports with finite[p] == 0 are excluded. This is the
/// credit-loop universe; it includes host injection links when the packet
/// simulator grants them finite credit.
[[nodiscard]] ChannelIndex buffered_channels(
    const topo::Fabric& fabric, std::span<const std::uint8_t> finite);

struct DependencyOptions {
  /// When non-empty (size == num_hosts), only destinations d with
  /// lane_of_dest[d] == lane contribute dependencies (per-VL restriction).
  std::span<const std::uint32_t> lane_of_dest = {};
  std::uint32_t lane = 0;
  /// Also generate host-injection dependencies: the channel a host injects
  /// over depends on the out-channel its leaf switch forwards to, for every
  /// destination the host can address. Host channels must then be part of
  /// the ChannelIndex (see buffered_channels).
  bool host_injections = false;
  /// Label for the parallel region (profiling/timing).
  const char* label = "check.deps";
};

/// All distinct dependencies, packed (from_dense << 32 | to_dense) and
/// sorted ascending. Generated per source switch in parallel, merged in
/// switch-index order, then globally sorted — identical for any thread
/// count.
[[nodiscard]] std::vector<std::uint64_t> build_dependencies(
    const topo::Fabric& fabric, const route::ForwardingTables& tables,
    const ChannelIndex& ci, const DependencyOptions& options = {});

/// Dependencies a single destination's table entries contribute, sorted
/// ascending (the incremental unit of the greedy VL-assignment search).
[[nodiscard]] std::vector<std::uint64_t> destination_dependencies(
    const topo::Fabric& fabric, const route::ForwardingTables& tables,
    const ChannelIndex& ci, std::uint64_t dest);

/// A routing *relation*: fill `out` with every out-port index (on the given
/// switch) a packet for the destination may take. Must be deterministic and
/// callable concurrently (the builder fans out over ftcf::par).
using RoutingRelation = std::function<void(
    topo::NodeId, std::uint64_t, std::vector<std::uint32_t>&)>;

/// build_dependencies generalized from a forwarding function to a relation:
/// a dependency A -> B exists when *some* candidate out-channel A of a
/// (switch, dest) pair reaches a switch where B is *some* candidate for the
/// same destination. Packed/sorted like build_dependencies and equally
/// thread-count independent. The Dally–Seitz criterion over this union graph
/// proves deadlock freedom for every routing function — and every per-packet
/// dynamic choice — the relation admits.
[[nodiscard]] std::vector<std::uint64_t> build_relation_dependencies(
    const topo::Fabric& fabric, const RoutingRelation& relation,
    const ChannelIndex& ci, const char* label = "check.deps.relation");

/// Compressed adjacency over dense channel ids; successor lists ascending.
struct ChannelGraph {
  std::vector<std::uint32_t> offsets;  ///< size num_channels + 1
  std::vector<std::uint32_t> targets;

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
};

[[nodiscard]] ChannelGraph build_graph(std::size_t num_channels,
                                       const std::vector<std::uint64_t>& deps);

/// Iterative Tarjan SCC summary: the number of cyclic SCCs and the members
/// of the first one found (empty when the graph is acyclic).
struct SccSummary {
  std::uint64_t cyclic_sccs = 0;
  std::vector<std::uint32_t> first_cycle_members;
};

[[nodiscard]] SccSummary find_cyclic_sccs(const ChannelGraph& graph);

/// Walk inside a cyclic SCC following the smallest in-SCC successor until a
/// node repeats; the slice from its first visit is a concrete cycle.
[[nodiscard]] std::vector<std::uint32_t> extract_cycle(
    const ChannelGraph& graph, const std::vector<std::uint32_t>& scc);

/// True when the edges `deps` (packed like build_dependencies) over
/// `num_channels` nodes contain no directed cycle. O(V + E) colored DFS;
/// used by the incremental VL-assignment search where running full Tarjan
/// per candidate would be wasteful.
[[nodiscard]] bool dependencies_acyclic(std::size_t num_channels,
                                        const std::vector<std::uint64_t>& deps);

/// True when `port` sources an up-going link of its node.
[[nodiscard]] bool is_up_channel(const topo::Fabric& fabric, topo::PortId port);

/// Render one directed link with both endpoints, e.g.
/// "S1_0[port 4] -> S2_0[port 1]".
[[nodiscard]] std::string channel_to_string(const topo::Fabric& fabric,
                                            topo::PortId port);

}  // namespace ftcf::check
