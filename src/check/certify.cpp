#include "check/certify.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "analysis/hsd.hpp"
#include "check/depgraph.hpp"
#include "obs/profile.hpp"
#include "routing/trace.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {

using topo::Fabric;
using topo::PortId;

namespace {

/// True when the (src, dst) flow's route crosses `link`. Same walk as the
/// HSD analyzer's inline loop; bails out (false) on unprogrammed entries.
bool flow_uses_link(const Fabric& fabric, const route::ForwardingTables& tables,
                    std::uint64_t src, std::uint64_t dst, PortId link) {
  if (src == dst) return false;
  const topo::NodeId dst_node = fabric.host_node(dst);
  topo::NodeId at = fabric.host_node(src);
  std::uint32_t out_index = fabric.node(at).num_down_ports +
                            route::host_up_port(fabric, src, dst);
  const std::size_t max_links = 2ull * fabric.height() + 2;
  for (std::size_t hop = 0; hop <= max_links; ++hop) {
    const PortId out = fabric.port_id(at, out_index);
    if (out == link) return true;
    at = fabric.port(fabric.port(out).peer).node;
    if (at == dst_node) return false;
    if (!tables.has_entry(at, dst)) return false;
    out_index = tables.out_port(at, dst);
  }
  return false;
}

}  // namespace

std::string detail::blame_rule(const Diagnostics& lints, std::size_t stage) {
  const std::string stage_loc = "stage " + std::to_string(stage);
  const auto has = [&](std::string_view rule,
                       std::string_view location) -> bool {
    for (const Finding& f : lints.findings())
      if (f.rule == rule && (location.empty() || f.location == location))
        return true;
    return false;
  };
  // An ordering that breaks the D-Mod-K arithmetic explains any collision;
  // after that, stage-local CPS shape problems, then fabric premises in
  // decreasing specificity, then incomplete tables.
  if (has("order-mismatch", "")) return "order-mismatch";
  if (has("cps-displacement", stage_loc)) return "cps-displacement";
  if (has("cps-displacement", "")) return "cps-displacement";
  for (const char* rule : {"rlft-cbb", "rlft-radix", "rlft-single-cable",
                           "rlft-parallel-ports", "pgft-structure",
                           "lft-incomplete"})
    if (has(rule, "")) return rule;
  return "";
}

namespace {

std::string flows_to_string(const std::vector<CollidingFlow>& flows) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (i != 0) oss << ", ";
    oss << flows[i].src << "->" << flows[i].dst;
  }
  return oss.str();
}

}  // namespace

Certificate certify_contention_freedom(const Fabric& fabric,
                                       const route::ForwardingTables& tables,
                                       const order::NodeOrdering& ordering,
                                       const cps::Sequence& sequence) {
  FTCF_PROF_SCOPE("check.certify");
  analysis::HsdAnalyzer analyzer(fabric, tables);
  // Tolerate incomplete tables: stranded flows are counted per stage and
  // void the certificate instead of aborting the analysis.
  analyzer.set_tolerate_unroutable(true);

  struct StageResult {
    StageWitness witness;
    PortId hot = topo::kInvalidPort;
    std::vector<CollidingFlow> colliding;
  };

  const std::size_t num_stages = sequence.stages.size();
  const par::ForOptions options{.threads = 0, .grain = 1,
                                .label = "check.certify"};
  const std::uint32_t width = par::region_width(num_stages, options);
  std::vector<analysis::HsdAnalyzer::Workspace> workspaces(width);
  std::vector<std::vector<std::uint32_t>> loads_scratch(width);
  std::vector<StageResult> per_stage(num_stages);

  par::parallel_for(
      num_stages,
      [&](std::size_t s, std::uint32_t worker) {
        const cps::Stage& stage = sequence.stages[s];
        StageResult& result = per_stage[s];
        result.witness.shape =
            classify_stage_shape(stage, sequence.num_ranks);
        if (stage.empty()) return;
        const std::vector<cps::Pair> flows = ordering.map_stage(stage);
        std::vector<std::uint32_t>& loads = loads_scratch[worker];
        const analysis::StageMetrics metrics =
            analyzer.analyze_stage(flows, workspaces[worker], &loads);
        result.witness.max_hsd = metrics.max_hsd;
        result.witness.max_up_hsd = metrics.max_up_hsd;
        result.witness.max_down_hsd = metrics.max_down_hsd;
        result.witness.num_flows = metrics.num_flows;
        result.witness.unroutable_flows = metrics.unroutable_flows;
        for (const std::uint32_t load : loads)
          if (load > 0) ++result.witness.links_loaded;
        if (metrics.max_hsd > 1) {
          // Root-cause evidence: the flows actually crossing the hot link,
          // in stage-pair order (deterministic re-walk, thread-independent).
          result.hot = metrics.hottest_port;
          for (const cps::Pair& flow : flows) {
            if (result.colliding.size() == kMaxCollidingShown) break;
            if (flow_uses_link(fabric, tables, flow.src, flow.dst, result.hot))
              result.colliding.push_back({flow.src, flow.dst});
          }
        }
      },
      options);

  // Serial stage-order fold: certificates are byte-identical at any thread
  // count.
  Certificate cert;
  cert.num_ranks = sequence.num_ranks;
  cert.sequence_name = sequence.name;
  cert.contention_free = true;
  cert.stages.reserve(num_stages);
  for (std::size_t s = 0; s < num_stages; ++s) {
    StageResult& result = per_stage[s];
    cert.stages.push_back(result.witness);
    if (result.witness.unroutable_flows > 0) cert.contention_free = false;
    if (result.hot == topo::kInvalidPort) continue;
    cert.contention_free = false;
    StageBlame blame;
    blame.stage = s;
    blame.max_hsd = result.witness.max_hsd;
    blame.hot_link = result.hot;
    blame.hot_link_name = channel_to_string(fabric, result.hot);
    blame.colliding = std::move(result.colliding);
    cert.blames.push_back(std::move(blame));
  }

  if (!cert.blames.empty()) {
    // One scratch lint pass explains every violating stage.
    Diagnostics lints;
    lint_fabric(fabric, lints);
    lint_ordering(fabric, ordering, lints);
    lint_sequence(sequence, lints);
    lint_tables(fabric, tables, /*degraded_expected=*/false, lints);
    for (StageBlame& blame : cert.blames)
      blame.blamed_rule = detail::blame_rule(lints, blame.stage);
  }
  return cert;
}

namespace {

constexpr std::size_t kMaxViolationsShown = 4;

}  // namespace

void report_certificate(const Certificate& certificate,
                        Diagnostics& diagnostics) {
  if (certificate.contention_free) {
    std::uint64_t loaded_stages = 0;
    bool any_exchange = false;
    for (const StageWitness& witness : certificate.stages) {
      if (witness.num_flows > 0) ++loaded_stages;
      if (witness.shape == StageShape::kSymmetricExchange) any_exchange = true;
    }
    std::ostringstream oss;
    oss << "contention-freedom certified: " << loaded_stages
        << " loaded stage(s) of '" << certificate.sequence_name << "' over "
        << certificate.num_ranks
        << " rank(s) with HSD = 1 on every loaded link (Theorems 1-2"
        << (any_exchange ? " and Theorem 3" : "") << ')';
    diagnostics.note("cert-ok", "", oss.str());
    return;
  }
  std::size_t shown = 0;
  for (const StageBlame& blame : certificate.blames) {
    if (shown == kMaxViolationsShown) {
      diagnostics.note("hsd-violation", "",
                       std::to_string(certificate.blames.size() - shown) +
                           " further stage(s) with HSD > 1 not shown");
      break;
    }
    ++shown;
    const std::string location = "stage " + std::to_string(blame.stage);
    std::ostringstream oss;
    oss << "HSD = " << blame.max_hsd << " > 1 on link " << blame.hot_link_name
        << "; " << blame.max_hsd << " flow(s) collide there (first "
        << blame.colliding.size() << ": " << flows_to_string(blame.colliding)
        << "); the HSD = 1 witness of Theorems 1-3 fails at this stage";
    if (blame.blamed_rule.empty())
      oss << "; no lint rule explains the collision";
    diagnostics.error("hsd-violation", location, oss.str());
    if (!blame.blamed_rule.empty())
      diagnostics.note(
          "blame-" + blame.blamed_rule, location,
          "the hsd-violation at this stage is explained by lint rule '" +
              blame.blamed_rule + "' — see that finding for the root cause");
  }
  // Stranded flows with no hot link still void the certificate.
  if (certificate.blames.empty()) {
    std::uint64_t stranded = 0;
    for (const StageWitness& witness : certificate.stages)
      stranded += witness.unroutable_flows;
    diagnostics.error("hsd-violation", "",
                      "certificate void: " + std::to_string(stranded) +
                          " flow(s) unroutable through the supplied tables, "
                          "so per-link flow counts are not witnesses");
  }
}

void detail::write_stage_row(std::ostream& os, const StageWitness& w,
                             std::size_t stage) {
  os << "{\"flows\":" << w.num_flows << ",\"links_loaded\":" << w.links_loaded
     << ",\"max_down_hsd\":" << w.max_down_hsd << ",\"max_hsd\":" << w.max_hsd
     << ",\"max_up_hsd\":" << w.max_up_hsd << ",\"shape\":\""
     << stage_shape_name(w.shape) << "\",\"stage\":" << stage
     << ",\"unroutable\":" << w.unroutable_flows << '}';
}

void detail::write_blame_row(std::ostream& os, const StageBlame& blame) {
  os << "{\"blame\":";
  write_json_string(
      os, blame.blamed_rule.empty() ? "unexplained" : blame.blamed_rule);
  os << ",\"colliding\":[";
  for (std::size_t i = 0; i < blame.colliding.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"dst\":" << blame.colliding[i].dst
       << ",\"src\":" << blame.colliding[i].src << '}';
  }
  os << "],\"hot_link\":";
  write_json_string(os, blame.hot_link_name);
  os << ",\"max_hsd\":" << blame.max_hsd << ",\"stage\":" << blame.stage << '}';
}

void write_certificate_json(std::ostream& os, const Certificate& certificate,
                            const std::map<std::string, std::string>& meta) {
  os << "{\n \"meta\":{";
  bool first = true;
  for (const auto& [key, value] : meta) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, key);
    os << ':';
    write_json_string(os, value);
  }
  os << "},\n \"certificate\":{\"contention_free\":"
     << (certificate.contention_free ? "true" : "false")
     << ",\"num_ranks\":" << certificate.num_ranks
     << ",\"num_stages\":" << certificate.stages.size() << ",\"sequence\":";
  write_json_string(os, certificate.sequence_name);
  os << ",\"violations\":" << certificate.blames.size() << "},\n \"stages\":[";
  first = true;
  for (std::size_t s = 0; s < certificate.stages.size(); ++s) {
    os << (first ? "\n  " : ",\n  ");
    first = false;
    detail::write_stage_row(os, certificate.stages[s], s);
  }
  os << (certificate.stages.empty() ? "]" : "\n ]") << ",\n \"violations\":[";
  first = true;
  for (const StageBlame& blame : certificate.blames) {
    os << (first ? "\n  " : ",\n  ");
    first = false;
    detail::write_blame_row(os, blame);
  }
  os << (certificate.blames.empty() ? "]\n}\n" : "\n ]\n}\n");
}

}  // namespace ftcf::check
