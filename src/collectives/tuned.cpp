#include "collectives/tuned.hpp"

#include <bit>

#include "util/expects.hpp"

namespace ftcf::coll {

namespace {
constexpr std::uint64_t kElementBytes = sizeof(Element);
}

TunedCollectives::TunedCollectives(std::uint64_t ranks, TunedConfig config)
    : ranks_(ranks), config_(config) {
  util::expects(ranks >= 2, "tuned collectives need at least 2 ranks");
}

bool TunedCollectives::pow2() const noexcept {
  return std::has_single_bit(ranks_);
}

TunedResult<Buffer> TunedCollectives::allreduce(
    ReduceOp op, const std::vector<Buffer>& inputs) const {
  util::expects(inputs.size() == ranks_, "rank count mismatch");
  const std::uint64_t bytes = inputs.front().size() * kElementBytes;
  if (!small(bytes) && pow2() && inputs.front().size() % ranks_ == 0) {
    return {"rabenseifner (reduce-scatter + allgather)",
            allreduce_rabenseifner(op, inputs)};
  }
  return {"recursive doubling", allreduce_recursive_doubling(op, inputs)};
}

TunedResult<Buffer> TunedCollectives::allgather(
    const std::vector<Buffer>& inputs) const {
  util::expects(inputs.size() == ranks_, "rank count mismatch");
  const std::uint64_t bytes = inputs.front().size() * kElementBytes;
  if (!small(bytes)) return {"ring", allgather_ring(inputs)};
  if (pow2())
    return {"recursive doubling", allgather_recursive_doubling(inputs)};
  return {"bruck (dissemination)", allgather_bruck(inputs)};
}

TunedResult<Buffer> TunedCollectives::bcast(const Buffer& root_data) const {
  const std::uint64_t bytes = root_data.size() * kElementBytes;
  if (!small(bytes) && root_data.size() % ranks_ == 0)
    return {"binomial scatter + ring allgather",
            bcast_scatter_ring(ranks_, root_data)};
  return {"binomial tree", bcast_binomial(ranks_, root_data)};
}

TunedResult<Buffer> TunedCollectives::reduce(
    ReduceOp op, const std::vector<Buffer>& inputs) const {
  util::expects(inputs.size() == ranks_, "rank count mismatch");
  return {"binomial tree (reversed)", reduce_binomial(op, inputs)};
}

TunedResult<Buffer> TunedCollectives::gather(
    const std::vector<Buffer>& inputs) const {
  util::expects(inputs.size() == ranks_, "rank count mismatch");
  const std::uint64_t bytes = inputs.front().size() * kElementBytes;
  if (small(bytes)) return {"binomial tree", gather_binomial(inputs)};
  return {"linear", gather_linear(inputs)};
}

TunedResult<Buffer> TunedCollectives::scatter(const Buffer& root_data) const {
  const std::uint64_t bytes = root_data.size() / ranks_ * kElementBytes;
  if (small(bytes)) return {"binomial tree", scatter_binomial(ranks_, root_data)};
  return {"linear", scatter_linear(ranks_, root_data)};
}

TunedResult<Buffer> TunedCollectives::alltoall(
    const std::vector<Buffer>& inputs, std::uint64_t count) const {
  util::expects(inputs.size() == ranks_, "rank count mismatch");
  return {"pairwise exchange (shift)", alltoall_pairwise(inputs, count)};
}

TunedResult<std::uint64_t> TunedCollectives::barrier() const {
  return {"dissemination", barrier_dissemination(ranks_)};
}

}  // namespace ftcf::coll
