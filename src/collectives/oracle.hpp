// Sequential reference implementations ("what the collective must compute"),
// used by tests to validate the staged algorithms.
#pragma once

#include <vector>

#include "collectives/buffer.hpp"

namespace ftcf::coll::oracle {

/// Element-wise reduction of all inputs.
[[nodiscard]] Buffer reduce(ReduceOp op, const std::vector<Buffer>& inputs);

/// Concatenation of all inputs in rank order.
[[nodiscard]] Buffer gather(const std::vector<Buffer>& inputs);

/// outputs[i] = concatenation (allgather result, same for every rank).
[[nodiscard]] std::vector<Buffer> allgather(const std::vector<Buffer>& inputs);

/// outputs[i] = block i of the element-wise reduction (block = count elems).
[[nodiscard]] std::vector<Buffer> reduce_scatter(
    ReduceOp op, const std::vector<Buffer>& inputs, std::uint64_t count);

/// outputs[i] block j == inputs[j] block i.
[[nodiscard]] std::vector<Buffer> alltoall(const std::vector<Buffer>& inputs,
                                           std::uint64_t count);

}  // namespace ftcf::coll::oracle
