#include "collectives/cost_model.hpp"

#include "util/expects.hpp"

namespace ftcf::coll {

CostEstimate estimate_cost(const Trace& trace, const topo::Fabric& fabric,
                           const route::ForwardingTables& tables,
                           const order::NodeOrdering& ordering,
                           const sim::Calibration& calib) {
  util::expects(trace.bytes_per_pair.size() == trace.sequence.stages.size(),
                "trace bytes must align with stages");
  const analysis::HsdAnalyzer analyzer(fabric, tables);
  const double alpha = static_cast<double>(calib.mpi_overhead_ns) * 1e-9;
  const double beta = 1.0 / calib.host_bw_bytes_per_sec;

  CostEstimate est;
  analysis::HsdAnalyzer::Workspace workspace;
  for (std::size_t s = 0; s < trace.sequence.stages.size(); ++s) {
    const cps::Stage& stage = trace.sequence.stages[s];
    if (stage.empty()) continue;
    ++est.stages;
    const auto flows = ordering.map_stage(stage);
    const analysis::StageMetrics metrics =
        analyzer.analyze_stage(flows, workspace);
    const double bytes = static_cast<double>(trace.bytes_per_pair[s]);
    const double hsd = std::max<std::uint32_t>(metrics.max_hsd, 1);
    est.seconds += alpha + bytes * beta * hsd;
    est.ideal_seconds += alpha + bytes * beta;
  }
  est.congestion_factor =
      est.ideal_seconds > 0 ? est.seconds / est.ideal_seconds : 1.0;
  return est;
}

}  // namespace ftcf::coll
