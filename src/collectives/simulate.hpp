// Bridge from collective traces to the packet simulator: replay the exact
// per-stage traffic a collective generated (pairs + bytes) as synchronized
// stages on a fabric, and measure — rather than model — its completion time.
//
// Together with the alpha-beta-HSD estimate this closes the loop: the
// static model predicts, the simulator confirms (tests assert they agree on
// ordering between node orders).
#pragma once

#include "collectives/collectives.hpp"
#include "obs/sim_hooks.hpp"
#include "ordering/ordering.hpp"
#include "routing/lft.hpp"
#include "sim/packet_sim.hpp"

namespace ftcf::coll {

struct SimulatedCost {
  double seconds = 0.0;
  sim::RunResult run;  ///< full simulator metrics of the replay
};

/// Replay `trace` under `ordering` on the fabric with synchronized stages.
/// Zero-byte stages (barrier notifications) are charged one MTU so they
/// still traverse the network. `observer` (optional) captures the replay in
/// the observability layer — stage spans then map 1:1 to the trace's stages.
[[nodiscard]] SimulatedCost simulate_trace(
    const Trace& trace, const topo::Fabric& fabric,
    const route::ForwardingTables& tables, const order::NodeOrdering& ordering,
    const sim::Calibration& calib = sim::Calibration::qdr_pcie_gen2(),
    const obs::SimObserver& observer = {});

}  // namespace ftcf::coll
