// Alpha-beta-HSD cost model: collective completion time estimated as
//
//   T = sum over stages of ( alpha + bytes_stage * HSD_stage / link_bw )
//
// i.e. the classic alpha-beta model with the beta term stretched by the
// stage's hot-spot degree — the paper's observation that, with synchronized
// stage progression, "the maximal number of flows contending on all the
// links dictates the worst completion time for each stage" (§II). With
// HSD == 1 this reduces to the contention-oblivious model the literature
// uses; the ratio between the two quantifies what congestion costs.
#pragma once

#include "analysis/hsd.hpp"
#include "collectives/collectives.hpp"
#include "sim/ib_calibration.hpp"

namespace ftcf::coll {

struct CostEstimate {
  double seconds = 0.0;             ///< with measured per-stage HSD
  double ideal_seconds = 0.0;       ///< assuming HSD == 1 everywhere
  double congestion_factor = 1.0;   ///< seconds / ideal_seconds
  std::uint64_t stages = 0;
};

/// Estimate a traced collective's completion time on a fabric. The trace's
/// stage pairs are mapped through `ordering` and routed by `tables` to get
/// each stage's HSD.
[[nodiscard]] CostEstimate estimate_cost(
    const Trace& trace, const topo::Fabric& fabric,
    const route::ForwardingTables& tables, const order::NodeOrdering& ordering,
    const sim::Calibration& calib = sim::Calibration::qdr_pcie_gen2());

}  // namespace ftcf::coll
