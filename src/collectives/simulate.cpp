#include "collectives/simulate.hpp"

#include "obs/profile.hpp"
#include "util/expects.hpp"

namespace ftcf::coll {

SimulatedCost simulate_trace(const Trace& trace, const topo::Fabric& fabric,
                             const route::ForwardingTables& tables,
                             const order::NodeOrdering& ordering,
                             const sim::Calibration& calib,
                             const obs::SimObserver& observer) {
  FTCF_PROF_SCOPE("collective_replay");
  util::expects(trace.bytes_per_pair.size() == trace.sequence.stages.size(),
                "trace bytes must align with stages");

  std::vector<sim::StageTraffic> stages;
  stages.reserve(trace.sequence.stages.size());
  for (std::size_t s = 0; s < trace.sequence.stages.size(); ++s) {
    const cps::Stage& stage = trace.sequence.stages[s];
    if (stage.empty()) continue;
    const std::uint64_t bytes =
        std::max<std::uint64_t>(trace.bytes_per_pair[s], calib.mtu_bytes);
    sim::StageTraffic st(fabric.num_hosts());
    for (const cps::Pair& pr : ordering.map_stage(stage)) {
      if (pr.src == pr.dst) continue;
      st.add(pr.src, pr.dst, bytes);
    }
    stages.push_back(std::move(st));
  }

  sim::PacketSim psim(fabric, tables, calib);
  psim.set_observer(observer);
  SimulatedCost cost;
  cost.run = psim.run(stages, sim::Progression::kSynchronized);
  cost.seconds = sim::to_seconds(cost.run.makespan);
  return cost;
}

}  // namespace ftcf::coll
