// Data-content primitives for the collective engine (§III: a collective =
// permutation sequence x content). Elements are 64-bit integers so reduction
// results are exact regardless of combination order.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/expects.hpp"

namespace ftcf::coll {

using Element = std::int64_t;
using Buffer = std::vector<Element>;

enum class ReduceOp { kSum, kMax, kMin, kProd, kBxor };

[[nodiscard]] constexpr Element apply(ReduceOp op, Element a,
                                      Element b) noexcept {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kMax: return a > b ? a : b;
    case ReduceOp::kMin: return a < b ? a : b;
    case ReduceOp::kProd: return a * b;
    case ReduceOp::kBxor: return a ^ b;
  }
  return a;
}

/// Element-wise in-place reduction: into[i] = op(into[i], from[i]).
inline void reduce_into(ReduceOp op, Buffer& into, const Buffer& from) {
  util::expects(into.size() == from.size(), "reduce length mismatch");
  for (std::size_t i = 0; i < into.size(); ++i)
    into[i] = apply(op, into[i], from[i]);
}

}  // namespace ftcf::coll
