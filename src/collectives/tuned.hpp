// Tuned collective selection — the front end a user calls.
//
// MVAPICH and OpenMPI pick a collective algorithm per call from the message
// size and rank count (that selection is exactly what Table 1 tabulates).
// TunedCollectives reproduces that behaviour over this library's
// implementations: every call runs the real data movement, returns the
// result, and reports which algorithm ran plus its traffic trace, so the
// choice can be audited for congestion on a concrete fabric.
//
// Selection policy (mirroring the cited implementations):
//   * small messages (< small_threshold bytes per rank):
//       allreduce -> recursive doubling; allgather -> bruck (recursive
//       doubling when P is a power of two); bcast/gather/scatter/reduce ->
//       binomial trees; barrier -> dissemination
//   * large messages:
//       allreduce -> Rabenseifner (power-of-two P) else recursive doubling;
//       allgather -> ring; bcast -> binomial scatter + ring allgather
//       (when the payload splits evenly) else binomial;
//       gather/scatter -> linear; alltoall -> pairwise exchange always
#pragma once

#include <string>

#include "collectives/collectives.hpp"

namespace ftcf::coll {

struct TunedConfig {
  std::uint64_t small_threshold_bytes = 8192;  ///< MVAPICH-style switch point
};

template <typename Out>
struct TunedResult {
  std::string algorithm;  ///< which implementation was selected
  Result<Out> result;
};

class TunedCollectives {
 public:
  explicit TunedCollectives(std::uint64_t ranks, TunedConfig config = {});

  [[nodiscard]] std::uint64_t ranks() const noexcept { return ranks_; }

  [[nodiscard]] TunedResult<Buffer> allreduce(
      ReduceOp op, const std::vector<Buffer>& inputs) const;
  [[nodiscard]] TunedResult<Buffer> allgather(
      const std::vector<Buffer>& inputs) const;
  [[nodiscard]] TunedResult<Buffer> bcast(const Buffer& root_data) const;
  [[nodiscard]] TunedResult<Buffer> reduce(
      ReduceOp op, const std::vector<Buffer>& inputs) const;
  [[nodiscard]] TunedResult<Buffer> gather(
      const std::vector<Buffer>& inputs) const;
  [[nodiscard]] TunedResult<Buffer> scatter(const Buffer& root_data) const;
  [[nodiscard]] TunedResult<Buffer> alltoall(
      const std::vector<Buffer>& inputs, std::uint64_t count) const;
  [[nodiscard]] TunedResult<std::uint64_t> barrier() const;

 private:
  [[nodiscard]] bool small(std::uint64_t bytes_per_rank) const noexcept {
    return bytes_per_rank < config_.small_threshold_bytes;
  }
  [[nodiscard]] bool pow2() const noexcept;

  std::uint64_t ranks_;
  TunedConfig config_;
};

}  // namespace ftcf::coll
