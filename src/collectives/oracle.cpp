#include "collectives/oracle.hpp"

#include "util/expects.hpp"

namespace ftcf::coll::oracle {

Buffer reduce(ReduceOp op, const std::vector<Buffer>& inputs) {
  util::expects(!inputs.empty(), "oracle reduce of nothing");
  Buffer acc = inputs.front();
  for (std::size_t i = 1; i < inputs.size(); ++i)
    reduce_into(op, acc, inputs[i]);
  return acc;
}

Buffer gather(const std::vector<Buffer>& inputs) {
  Buffer out;
  for (const Buffer& buf : inputs) out.insert(out.end(), buf.begin(), buf.end());
  return out;
}

std::vector<Buffer> allgather(const std::vector<Buffer>& inputs) {
  return std::vector<Buffer>(inputs.size(), gather(inputs));
}

std::vector<Buffer> reduce_scatter(ReduceOp op,
                                   const std::vector<Buffer>& inputs,
                                   std::uint64_t count) {
  const Buffer total = reduce(op, inputs);
  util::expects(total.size() == inputs.size() * count,
                "oracle reduce_scatter size mismatch");
  std::vector<Buffer> outputs(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    outputs[i].assign(total.begin() + static_cast<std::ptrdiff_t>(i * count),
                      total.begin() + static_cast<std::ptrdiff_t>((i + 1) * count));
  return outputs;
}

std::vector<Buffer> alltoall(const std::vector<Buffer>& inputs,
                             std::uint64_t count) {
  const std::size_t ranks = inputs.size();
  std::vector<Buffer> outputs(ranks, Buffer(ranks * count, 0));
  for (std::size_t i = 0; i < ranks; ++i) {
    util::expects(inputs[i].size() == ranks * count,
                  "oracle alltoall input size mismatch");
    for (std::size_t j = 0; j < ranks; ++j)
      for (std::size_t e = 0; e < count; ++e)
        outputs[j][i * count + e] = inputs[i][j * count + e];
  }
  return outputs;
}

}  // namespace ftcf::coll::oracle
