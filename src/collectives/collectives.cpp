#include "collectives/collectives.hpp"

#include <algorithm>
#include <bit>
#include <span>
#include <string>

#include "util/expects.hpp"

namespace ftcf::coll {

using cps::Pair;
using cps::Rank;
using cps::Stage;
using util::expects;

namespace {

constexpr std::uint64_t kElementBytes = sizeof(Element);

std::uint64_t pow2_floor(std::uint64_t n) {
  return 1ULL << (63u - static_cast<std::uint32_t>(std::countl_zero(n)));
}

/// Collects the stages a collective actually executed.
class TraceBuilder {
 public:
  TraceBuilder(std::string name, std::uint64_t ranks) {
    trace_.sequence.name = std::move(name);
    trace_.sequence.num_ranks = ranks;
  }

  void add(Stage stage, std::uint64_t bytes_per_pair) {
    trace_.sequence.stages.push_back(std::move(stage));
    trace_.bytes_per_pair.push_back(bytes_per_pair);
  }

  Trace take() { return std::move(trace_); }

 private:
  Trace trace_;
};

std::uint64_t common_count(const std::vector<Buffer>& inputs) {
  expects(!inputs.empty(), "collective needs at least one rank");
  const std::size_t count = inputs.front().size();
  for (const Buffer& buf : inputs)
    expects(buf.size() == count, "all ranks must contribute equal counts");
  return count;
}

}  // namespace

// --- broadcast ---------------------------------------------------------------

Result<Buffer> bcast_binomial(std::uint64_t ranks, const Buffer& root_data) {
  expects(ranks >= 2, "bcast needs at least 2 ranks");
  std::vector<Buffer> state(ranks);
  std::vector<bool> has(ranks, false);
  state[0] = root_data;
  has[0] = true;

  TraceBuilder trace("binomial", ranks);
  for (std::uint64_t step = 1; step < ranks; step <<= 1) {
    Stage stage;
    for (Rank i = 0; i < step && i + step < ranks; ++i) {
      expects(has[i], "binomial bcast sender must be informed");
      state[i + step] = state[i];
      has[i + step] = true;
      stage.pairs.push_back({i, i + step});
    }
    trace.add(std::move(stage), root_data.size() * kElementBytes);
  }
  return {std::move(state), trace.take()};
}

// --- reductions to a root ----------------------------------------------------

Result<Buffer> reduce_binomial(ReduceOp op, const std::vector<Buffer>& inputs) {
  const std::uint64_t ranks = inputs.size();
  expects(ranks >= 2, "reduce needs at least 2 ranks");
  const std::uint64_t count = common_count(inputs);
  std::vector<Buffer> acc = inputs;

  TraceBuilder trace("binomial-reverse", ranks);
  // The Binomial CPS stages replayed backwards with reversed arrows:
  // descending step, i+step sends its partial to i (i < step).
  std::uint64_t top = pow2_floor(ranks - 1);
  for (std::uint64_t step = top; step >= 1; step >>= 1) {
    Stage stage;
    for (Rank i = 0; i < step && i + step < ranks; ++i) {
      reduce_into(op, acc[i], acc[i + step]);
      stage.pairs.push_back({i + step, i});
    }
    trace.add(std::move(stage), count * kElementBytes);
  }
  return {std::move(acc), trace.take()};
}

Result<Buffer> reduce_tournament(ReduceOp op,
                                 const std::vector<Buffer>& inputs) {
  const std::uint64_t ranks = inputs.size();
  expects(ranks >= 2, "reduce needs at least 2 ranks");
  const std::uint64_t count = common_count(inputs);
  std::vector<Buffer> acc = inputs;

  TraceBuilder trace("tournament", ranks);
  for (std::uint64_t step = 1; step < ranks; step <<= 1) {
    Stage stage;
    for (Rank i = 0; i + step < ranks; i += 2 * step) {
      reduce_into(op, acc[i], acc[i + step]);
      stage.pairs.push_back({i + step, i});
    }
    trace.add(std::move(stage), count * kElementBytes);
  }
  return {std::move(acc), trace.take()};
}

// --- scatter / gather --------------------------------------------------------

Result<Buffer> scatter_binomial(std::uint64_t ranks, const Buffer& root_data) {
  expects(ranks >= 2, "scatter needs at least 2 ranks");
  expects(root_data.size() % ranks == 0,
          "scatter data must split evenly across ranks");
  const std::uint64_t count = root_data.size() / ranks;

  // Each rank holds the blocks for rank range [lo, hi).
  struct Range {
    std::uint64_t lo = 0, hi = 0;
    Buffer data;
  };
  std::vector<Range> state(ranks);
  state[0] = {0, ranks, root_data};

  TraceBuilder trace("binomial", ranks);
  // Descending-step halving: at step s the holders (ranks = 0 mod 2s) pass
  // the upper half of their range to rank i+s. Constant displacement per
  // stage, so still Binomial-CPS-shaped traffic.
  for (std::uint64_t step = pow2_floor(ranks - 1); step >= 1; step >>= 1) {
    Stage stage;
    std::uint64_t stage_bytes = 0;
    for (Rank i = 0; i + step < ranks; i += 2 * step) {
      Range& src = state[i];
      if (src.hi <= i + step) continue;  // nothing beyond the split point
      Range& dst = state[i + step];
      dst.lo = i + step;
      dst.hi = src.hi;
      dst.data.assign(src.data.begin() +
                          static_cast<std::ptrdiff_t>((dst.lo - src.lo) * count),
                      src.data.end());
      src.data.resize((i + step - src.lo) * count);
      src.hi = i + step;
      stage.pairs.push_back({i, i + step});
      stage_bytes = std::max<std::uint64_t>(stage_bytes,
                                            dst.data.size() * kElementBytes);
    }
    trace.add(std::move(stage), stage_bytes);
    if (step == 1) break;
  }

  std::vector<Buffer> outputs(ranks);
  for (Rank i = 0; i < ranks; ++i) {
    expects(state[i].lo == i && state[i].hi == i + 1,
            "scatter must leave each rank exactly its own block");
    outputs[i] = std::move(state[i].data);
  }
  return {std::move(outputs), trace.take()};
}

Result<Buffer> gather_binomial(const std::vector<Buffer>& inputs) {
  const std::uint64_t ranks = inputs.size();
  expects(ranks >= 2, "gather needs at least 2 ranks");
  const std::uint64_t count = common_count(inputs);

  struct Range {
    std::uint64_t lo, hi;
    Buffer data;
  };
  std::vector<Range> state(ranks);
  for (Rank i = 0; i < ranks; ++i) state[i] = {i, i + 1, inputs[i]};

  // MPI's "binomial gather" pairs are the paper's Tournament CPS: at step s
  // the rank with bit s set sends its aggregated range to its parent.
  TraceBuilder trace("tournament", ranks);
  for (std::uint64_t step = 1; step < ranks; step <<= 1) {
    Stage stage;
    std::uint64_t stage_bytes = 0;
    for (Rank i = 0; i + step < ranks; i += 2 * step) {
      Range& src = state[i + step];
      Range& dst = state[i];
      expects(dst.hi == src.lo, "gather ranges must be adjacent");
      dst.data.insert(dst.data.end(), src.data.begin(), src.data.end());
      dst.hi = src.hi;
      stage_bytes =
          std::max<std::uint64_t>(stage_bytes, src.data.size() * kElementBytes);
      src.data.clear();
      stage.pairs.push_back({i + step, i});
    }
    trace.add(std::move(stage), stage_bytes);
  }
  expects(state[0].lo == 0 && state[0].hi == ranks &&
              state[0].data.size() == ranks * count,
          "gather must assemble every block at the root");

  std::vector<Buffer> outputs(ranks);
  outputs[0] = std::move(state[0].data);
  return {std::move(outputs), trace.take()};
}

Result<Buffer> gather_linear(const std::vector<Buffer>& inputs) {
  const std::uint64_t ranks = inputs.size();
  expects(ranks >= 2, "gather needs at least 2 ranks");
  const std::uint64_t count = common_count(inputs);

  std::vector<Buffer> outputs(ranks);
  Buffer& root = outputs[0];
  root = inputs[0];
  TraceBuilder trace("linear-reverse", ranks);
  for (Rank i = 1; i < ranks; ++i) {
    root.insert(root.end(), inputs[i].begin(), inputs[i].end());
    Stage stage;
    stage.pairs.push_back({i, 0});
    trace.add(std::move(stage), count * kElementBytes);
  }
  return {std::move(outputs), trace.take()};
}

// --- allgather ---------------------------------------------------------------

Result<Buffer> allgather_ring(const std::vector<Buffer>& inputs) {
  const std::uint64_t ranks = inputs.size();
  expects(ranks >= 2, "allgather needs at least 2 ranks");
  const std::uint64_t count = common_count(inputs);

  // blocks[i][j]: rank i's copy of rank j's block (empty until received).
  std::vector<std::vector<Buffer>> blocks(ranks,
                                          std::vector<Buffer>(ranks));
  for (Rank i = 0; i < ranks; ++i) blocks[i][i] = inputs[i];

  TraceBuilder trace("ring", ranks);
  for (std::uint64_t t = 0; t < ranks - 1; ++t) {
    Stage stage;
    stage.pairs.reserve(ranks);
    // Stage t: rank i forwards block (i - t) mod P to its ring successor.
    for (Rank i = 0; i < ranks; ++i) {
      const Rank block = (i + ranks - t % ranks) % ranks;
      const Rank dst = (i + 1) % ranks;
      expects(!blocks[i][block].empty(), "ring forwards a block it holds");
      blocks[dst][block] = blocks[i][block];
      stage.pairs.push_back({i, dst});
    }
    trace.add(std::move(stage), count * kElementBytes);
  }

  std::vector<Buffer> outputs(ranks);
  for (Rank i = 0; i < ranks; ++i) {
    outputs[i].reserve(ranks * count);
    for (Rank j = 0; j < ranks; ++j) {
      expects(blocks[i][j].size() == count, "allgather missing a block");
      outputs[i].insert(outputs[i].end(), blocks[i][j].begin(),
                        blocks[i][j].end());
    }
  }
  return {std::move(outputs), trace.take()};
}

Result<Buffer> allgather_bruck(const std::vector<Buffer>& inputs) {
  const std::uint64_t ranks = inputs.size();
  expects(ranks >= 2, "allgather needs at least 2 ranks");
  const std::uint64_t count = common_count(inputs);

  std::vector<std::vector<Buffer>> blocks(ranks,
                                          std::vector<Buffer>(ranks));
  for (Rank i = 0; i < ranks; ++i) blocks[i][i] = inputs[i];

  TraceBuilder trace("dissemination", ranks);
  for (std::uint64_t step = 1; step < ranks; step <<= 1) {
    // Snapshot which blocks each rank holds, then ship them all: after the
    // stage, (i+step) also knows everything i knew (doubling coverage).
    std::vector<std::vector<Rank>> known(ranks);
    for (Rank i = 0; i < ranks; ++i)
      for (Rank j = 0; j < ranks; ++j)
        if (!blocks[i][j].empty()) known[i].push_back(j);

    Stage stage;
    stage.pairs.reserve(ranks);
    std::uint64_t stage_bytes = 0;
    for (Rank i = 0; i < ranks; ++i) {
      const Rank dst = (i + step) % ranks;
      std::uint64_t shipped = 0;
      for (const Rank j : known[i]) {
        if (blocks[dst][j].empty()) {
          blocks[dst][j] = blocks[i][j];
          ++shipped;
        }
      }
      stage.pairs.push_back({i, dst});
      stage_bytes =
          std::max<std::uint64_t>(stage_bytes, shipped * count * kElementBytes);
    }
    trace.add(std::move(stage), stage_bytes);
  }

  std::vector<Buffer> outputs(ranks);
  for (Rank i = 0; i < ranks; ++i) {
    for (Rank j = 0; j < ranks; ++j) {
      expects(blocks[i][j].size() == count, "bruck allgather missing a block");
      outputs[i].insert(outputs[i].end(), blocks[i][j].begin(),
                        blocks[i][j].end());
    }
  }
  return {std::move(outputs), trace.take()};
}

// --- allreduce ---------------------------------------------------------------

Result<Buffer> allreduce_over_sequence(ReduceOp op,
                                       const std::vector<Buffer>& inputs,
                                       const cps::Sequence& seq) {
  const std::uint64_t ranks = inputs.size();
  expects(seq.num_ranks == ranks, "sequence rank count mismatch");
  const std::uint64_t count = common_count(inputs);
  std::vector<Buffer> acc = inputs;

  for (const Stage& stage : seq.stages) {
    // Deliveries computed against pre-stage state (true exchange semantics).
    std::vector<std::pair<Rank, Buffer>> incoming;
    incoming.reserve(stage.pairs.size());
    for (const Pair& pr : stage.pairs) {
      expects(pr.src < ranks && pr.dst < ranks, "stage pair out of range");
      incoming.emplace_back(pr.dst, acc[pr.src]);
    }
    for (auto& [dst, payload] : incoming) {
      if (stage.role == cps::StageRole::kUnfold) acc[dst] = std::move(payload);
      else reduce_into(op, acc[dst], payload);
    }
  }

  Trace trace;
  trace.sequence = seq;
  trace.bytes_per_pair.assign(seq.stages.size(), count * kElementBytes);
  return {std::move(acc), std::move(trace)};
}

Result<Buffer> allreduce_recursive_doubling(
    ReduceOp op, const std::vector<Buffer>& inputs) {
  return allreduce_over_sequence(op, inputs,
                                 cps::recursive_doubling(inputs.size()));
}

// --- reduce-scatter ----------------------------------------------------------

Result<Buffer> reduce_scatter_halving(ReduceOp op,
                                      const std::vector<Buffer>& inputs) {
  const std::uint64_t ranks = inputs.size();
  expects(ranks >= 2 && std::has_single_bit(ranks),
          "recursive halving requires a power-of-two rank count");
  const std::uint64_t total = common_count(inputs);
  expects(total % ranks == 0,
          "reduce-scatter input must split evenly into rank blocks");
  const std::uint64_t count = total / ranks;

  struct Range {
    std::uint64_t lo, hi;  ///< block range currently being reduced
    Buffer data;
  };
  std::vector<Range> state(ranks);
  for (Rank i = 0; i < ranks; ++i) state[i] = {0, ranks, inputs[i]};

  TraceBuilder trace("recursive-halving", ranks);
  for (std::uint64_t step = ranks / 2; step >= 1; step >>= 1) {
    Stage stage;
    stage.pairs.reserve(ranks);
    // Snapshot halves to ship, then apply, to keep exchange symmetric.
    std::vector<Buffer> shipped(ranks);
    for (Rank i = 0; i < ranks; ++i) {
      const Range& r = state[i];
      const std::uint64_t mid = (r.lo + r.hi) / 2;
      const bool keep_low = (i & step) == 0;
      const std::uint64_t ship_lo = keep_low ? mid : r.lo;
      const std::uint64_t ship_hi = keep_low ? r.hi : mid;
      shipped[i].assign(
          r.data.begin() + static_cast<std::ptrdiff_t>((ship_lo - r.lo) * count),
          r.data.begin() + static_cast<std::ptrdiff_t>((ship_hi - r.lo) * count));
      stage.pairs.push_back({i, i ^ step});
    }
    for (Rank i = 0; i < ranks; ++i) {
      Range& r = state[i];
      const std::uint64_t mid = (r.lo + r.hi) / 2;
      const bool keep_low = (i & step) == 0;
      const std::uint64_t keep_lo = keep_low ? r.lo : mid;
      const std::uint64_t keep_hi = keep_low ? mid : r.hi;
      Buffer kept(
          r.data.begin() + static_cast<std::ptrdiff_t>((keep_lo - r.lo) * count),
          r.data.begin() + static_cast<std::ptrdiff_t>((keep_hi - r.lo) * count));
      Buffer& partner_half = shipped[i ^ step];
      expects(partner_half.size() == kept.size(),
              "halving partners must ship matching halves");
      reduce_into(op, kept, partner_half);
      r.data = std::move(kept);
      r.lo = keep_lo;
      r.hi = keep_hi;
    }
    trace.add(std::move(stage), (state[0].hi - state[0].lo) * count *
                                    kElementBytes);
  }

  std::vector<Buffer> outputs(ranks);
  for (Rank i = 0; i < ranks; ++i) {
    expects(state[i].lo == i && state[i].hi == i + 1,
            "halving must leave each rank its own block");
    outputs[i] = std::move(state[i].data);
  }
  return {std::move(outputs), trace.take()};
}

// --- alltoall ----------------------------------------------------------------

Result<Buffer> alltoall_pairwise(const std::vector<Buffer>& inputs,
                                 std::uint64_t count) {
  const std::uint64_t ranks = inputs.size();
  expects(ranks >= 2, "alltoall needs at least 2 ranks");
  for (const Buffer& buf : inputs)
    expects(buf.size() == ranks * count, "alltoall input must hold P blocks");

  std::vector<Buffer> outputs(ranks, Buffer(ranks * count, 0));
  const auto block = [count](const Buffer& buf, Rank j) {
    return std::span<const Element>(buf).subspan(j * count, count);
  };

  TraceBuilder trace("shift", ranks);
  for (Rank i = 0; i < ranks; ++i) {  // local copy, no traffic
    const auto b = block(inputs[i], i);
    std::copy(b.begin(), b.end(),
              outputs[i].begin() + static_cast<std::ptrdiff_t>(i * count));
  }
  for (std::uint64_t s = 1; s < ranks; ++s) {
    Stage stage;
    stage.pairs.reserve(ranks);
    for (Rank i = 0; i < ranks; ++i) {
      const Rank dst = (i + s) % ranks;
      const auto b = block(inputs[i], dst);
      std::copy(b.begin(), b.end(),
                outputs[dst].begin() + static_cast<std::ptrdiff_t>(i * count));
      stage.pairs.push_back({i, dst});
    }
    trace.add(std::move(stage), count * kElementBytes);
  }
  return {std::move(outputs), trace.take()};
}

// --- composite algorithms ------------------------------------------------------

Result<Buffer> scatter_linear(std::uint64_t ranks, const Buffer& root_data) {
  expects(ranks >= 2, "scatter needs at least 2 ranks");
  expects(root_data.size() % ranks == 0,
          "scatter data must split evenly across ranks");
  const std::uint64_t count = root_data.size() / ranks;

  std::vector<Buffer> outputs(ranks);
  TraceBuilder trace("linear", ranks);
  for (Rank i = 0; i < ranks; ++i) {
    outputs[i].assign(
        root_data.begin() + static_cast<std::ptrdiff_t>(i * count),
        root_data.begin() + static_cast<std::ptrdiff_t>((i + 1) * count));
    if (i == 0) continue;  // root keeps its block locally
    Stage stage;
    stage.pairs.push_back({0, i});
    trace.add(std::move(stage), count * kElementBytes);
  }
  return {std::move(outputs), trace.take()};
}

Result<Buffer> allgather_recursive_doubling(
    const std::vector<Buffer>& inputs) {
  const std::uint64_t ranks = inputs.size();
  expects(ranks >= 2 && std::has_single_bit(ranks),
          "recursive-doubling allgather requires power-of-two ranks");
  const std::uint64_t count = common_count(inputs);

  // Each rank accumulates a contiguous (aligned) block range [lo, hi).
  struct Range {
    std::uint64_t lo, hi;
    Buffer data;
  };
  std::vector<Range> state(ranks);
  for (Rank i = 0; i < ranks; ++i) state[i] = {i, i + 1, inputs[i]};

  TraceBuilder trace("recursive-doubling", ranks);
  for (std::uint64_t step = 1; step < ranks; step <<= 1) {
    Stage stage;
    stage.pairs.reserve(ranks);
    // Snapshot payloads and ranges before applying: exchanges are symmetric
    // and both sides must see pre-stage state.
    std::vector<Buffer> shipped(ranks);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges(ranks);
    for (Rank i = 0; i < ranks; ++i) {
      shipped[i] = state[i].data;
      ranges[i] = {state[i].lo, state[i].hi};
      stage.pairs.push_back({i, i ^ step});
    }
    for (Rank i = 0; i < ranks; ++i) {
      Range& mine = state[i];
      const Rank partner = i ^ step;
      // Partner ranges are adjacent aligned blocks; merge in index order.
      if (ranges[partner].first < mine.lo) {
        Buffer merged = shipped[partner];
        merged.insert(merged.end(), mine.data.begin(), mine.data.end());
        mine.data = std::move(merged);
        mine.lo = ranges[partner].first;
      } else {
        mine.data.insert(mine.data.end(), shipped[partner].begin(),
                         shipped[partner].end());
        mine.hi = ranges[partner].second;
      }
    }
    trace.add(std::move(stage),
              (state[0].hi - state[0].lo) / 2 * count * kElementBytes);
  }

  std::vector<Buffer> outputs(ranks);
  for (Rank i = 0; i < ranks; ++i) {
    expects(state[i].lo == 0 && state[i].hi == ranks,
            "allgather must assemble every block everywhere");
    outputs[i] = std::move(state[i].data);
  }
  return {std::move(outputs), trace.take()};
}

Result<Buffer> allreduce_rabenseifner(ReduceOp op,
                                      const std::vector<Buffer>& inputs) {
  const std::uint64_t ranks = inputs.size();
  expects(ranks >= 2 && std::has_single_bit(ranks),
          "Rabenseifner allreduce requires power-of-two ranks");
  const std::uint64_t total = common_count(inputs);
  expects(total % ranks == 0,
          "Rabenseifner needs the payload to split into rank blocks");

  auto scattered = reduce_scatter_halving(op, inputs);
  auto gathered = allgather_recursive_doubling(scattered.outputs);

  Trace trace = std::move(scattered.trace);
  trace.sequence.name = "recursive-halving + recursive-doubling";
  for (std::size_t s = 0; s < gathered.trace.sequence.stages.size(); ++s) {
    trace.sequence.stages.push_back(
        std::move(gathered.trace.sequence.stages[s]));
    trace.bytes_per_pair.push_back(gathered.trace.bytes_per_pair[s]);
  }
  return {std::move(gathered.outputs), std::move(trace)};
}

Result<Buffer> bcast_scatter_ring(std::uint64_t ranks,
                                  const Buffer& root_data) {
  expects(ranks >= 2, "bcast needs at least 2 ranks");
  expects(root_data.size() % ranks == 0,
          "scatter+allgather bcast needs the payload to split evenly");

  auto scattered = scatter_binomial(ranks, root_data);
  auto gathered = allgather_ring(scattered.outputs);

  Trace trace = std::move(scattered.trace);
  trace.sequence.name = "binomial scatter + ring allgather";
  for (std::size_t s = 0; s < gathered.trace.sequence.stages.size(); ++s) {
    trace.sequence.stages.push_back(
        std::move(gathered.trace.sequence.stages[s]));
    trace.bytes_per_pair.push_back(gathered.trace.bytes_per_pair[s]);
  }
  return {std::move(gathered.outputs), std::move(trace)};
}

// --- variable-count collectives ------------------------------------------------

Result<Buffer> allgatherv_ring(const std::vector<Buffer>& inputs) {
  const std::uint64_t ranks = inputs.size();
  expects(ranks >= 2, "allgatherv needs at least 2 ranks");

  // blocks[i][j]: rank i's copy of rank j's (variable-size) block.
  std::vector<std::vector<Buffer>> blocks(ranks, std::vector<Buffer>(ranks));
  std::vector<bool> present_template(ranks, false);
  std::vector<std::vector<bool>> present(ranks, present_template);
  for (Rank i = 0; i < ranks; ++i) {
    blocks[i][i] = inputs[i];
    present[i][i] = true;  // empty contributions still count as present
  }

  TraceBuilder trace("ring", ranks);
  for (std::uint64_t t = 0; t < ranks - 1; ++t) {
    Stage stage;
    stage.pairs.reserve(ranks);
    std::uint64_t stage_bytes = 0;
    for (Rank i = 0; i < ranks; ++i) {
      const Rank block = (i + ranks - t % ranks) % ranks;
      const Rank dst = (i + 1) % ranks;
      expects(present[i][block], "ring forwards a block it holds");
      blocks[dst][block] = blocks[i][block];
      present[dst][block] = true;
      stage.pairs.push_back({i, dst});
      stage_bytes = std::max<std::uint64_t>(
          stage_bytes, blocks[i][block].size() * kElementBytes);
    }
    trace.add(std::move(stage), stage_bytes);
  }

  std::vector<Buffer> outputs(ranks);
  for (Rank i = 0; i < ranks; ++i) {
    for (Rank j = 0; j < ranks; ++j) {
      expects(present[i][j], "allgatherv missing a block");
      outputs[i].insert(outputs[i].end(), blocks[i][j].begin(),
                        blocks[i][j].end());
    }
  }
  return {std::move(outputs), trace.take()};
}

Result<Buffer> gatherv_linear(const std::vector<Buffer>& inputs) {
  const std::uint64_t ranks = inputs.size();
  expects(ranks >= 2, "gatherv needs at least 2 ranks");

  std::vector<Buffer> outputs(ranks);
  Buffer& root = outputs[0];
  root = inputs[0];
  TraceBuilder trace("linear-reverse", ranks);
  for (Rank i = 1; i < ranks; ++i) {
    root.insert(root.end(), inputs[i].begin(), inputs[i].end());
    Stage stage;
    stage.pairs.push_back({i, 0});
    trace.add(std::move(stage), inputs[i].size() * kElementBytes);
  }
  return {std::move(outputs), trace.take()};
}

// --- barrier -----------------------------------------------------------------

Result<std::uint64_t> barrier_dissemination(std::uint64_t ranks) {
  expects(ranks >= 2, "barrier needs at least 2 ranks");
  std::vector<std::uint64_t> rounds(ranks, 0);

  TraceBuilder trace("dissemination", ranks);
  for (std::uint64_t step = 1; step < ranks; step <<= 1) {
    Stage stage;
    stage.pairs.reserve(ranks);
    for (Rank i = 0; i < ranks; ++i) {
      stage.pairs.push_back({i, (i + step) % ranks});
      ++rounds[(i + step) % ranks];
    }
    trace.add(std::move(stage), 0);  // zero-byte notification
  }
  return {std::move(rounds), trace.take()};
}

}  // namespace ftcf::coll
