// Topology-aware grouped Recursive-Doubling (paper §VI).
//
// Naive recursive doubling XORs global rank bits, so a stage mixes hops of
// wildly different tree distances and congests up-links. The paper instead
// plays the doubling *per tree level*: stages are grouped, one group per
// level l = 1..h; group l exchanges data only between end-ports whose first
// common parent is at level l, all at the same hierarchical distance.
// With the per-level constants
//
//     L_l = floor(log2(m_l)),  M_l = prod_{j<=l} m_j,  E_l = M_{l-1} * 2^{L_l}
//
// group l consists of an optional pre stage folding the positions past the
// last power of two onto proxies, L_l bulk exchange stages
//
//     i <-> ((x_l XOR 2^s) - x_l) * M_{l-1} + i,   x_l = (i / M_{l-1}) mod m_l
//
// and an optional post stage returning results to the folded positions. Every
// stage has a single XOR-displacement, so Theorem 3 applies and the whole
// sequence is congestion-free under D-Mod-K with topology ordering.
//
// The generator also supports partially-populated trees: participants are
// grouped by occupied subtree, and the doubling runs over *occupied* child
// positions (the §VI remark that stage count follows the number of occupied
// leaf switches, not end-ports). This requires the occupancy to be uniform:
// at every level, all occupied subtrees must hold the same number of
// participants, equally split among the same number of occupied children.
#pragma once

#include <span>

#include "cps/stage.hpp"
#include "topology/fabric.hpp"

namespace ftcf::core {

/// Grouped recursive doubling over the full fabric (ranks are positions in
/// the topology order, i.e. host indices).
[[nodiscard]] cps::Sequence grouped_recursive_doubling(
    const topo::Fabric& fabric);

/// Grouped recursive doubling over a participant subset (host indices,
/// ascending). Pairs are expressed over *ranks* 0..P-1 of the compact
/// ordering of `participants`. Throws util::SpecError when the occupancy is
/// not uniform (see file comment).
[[nodiscard]] cps::Sequence grouped_recursive_doubling(
    const topo::Fabric& fabric, std::span<const std::uint64_t> participants);

/// The reversed sequence (grouped recursive halving).
[[nodiscard]] cps::Sequence grouped_recursive_halving(
    const topo::Fabric& fabric);

}  // namespace ftcf::core
