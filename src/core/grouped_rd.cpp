#include "core/grouped_rd.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <numeric>
#include <vector>

#include "util/error.hpp"
#include "util/expects.hpp"

namespace ftcf::core {

using topo::Fabric;
using topo::PgftSpec;

namespace {

/// Participants of one occupied level-l subtree, grouped by occupied child:
/// groups[g][r] is the rank of the r-th member (ascending host order) of the
/// g-th occupied child.
struct SubtreeGroups {
  std::vector<std::vector<cps::Rank>> groups;
};

std::uint32_t floor_log2_u64(std::uint64_t v) {
  return 63u - static_cast<std::uint32_t>(std::countl_zero(v));
}

}  // namespace

cps::Sequence grouped_recursive_doubling(
    const Fabric& fabric, std::span<const std::uint64_t> participants) {
  util::expects(!participants.empty(), "grouped RD needs participants");
  util::expects(std::is_sorted(participants.begin(), participants.end()),
                "participants must be sorted ascending by host index");
  const PgftSpec& spec = fabric.spec();

  cps::Sequence seq{.name = "grouped-recursive-doubling",
                    .num_ranks = participants.size(),
                    .stages = {}};

  for (std::uint32_t l = 1; l <= spec.height(); ++l) {
    const std::uint64_t m_below = spec.m_prefix_product(l - 1);
    const std::uint64_t m_here = spec.m_prefix_product(l);

    // Group ranks by (level-l subtree, occupied child within it).
    std::map<std::uint64_t, std::map<std::uint64_t, std::vector<cps::Rank>>>
        subtrees;
    for (cps::Rank r = 0; r < participants.size(); ++r) {
      const std::uint64_t host = participants[r];
      subtrees[host / m_here][(host / m_below) % spec.m(l)].push_back(r);
    }

    // Uniformity: every occupied subtree exposes the same number of occupied
    // children, each with the same member count.
    std::vector<SubtreeGroups> flat;
    std::size_t group_count = 0, member_count = 0;
    bool first = true;
    for (auto& [subtree_id, children] : subtrees) {
      SubtreeGroups sg;
      for (auto& [child_digit, members] : children)
        sg.groups.push_back(std::move(members));
      if (first) {
        group_count = sg.groups.size();
        member_count = sg.groups.front().size();
        first = false;
      }
      if (sg.groups.size() != group_count)
        throw util::SpecError(
            "grouped RD: uneven child occupancy at level " + std::to_string(l));
      for (const auto& g : sg.groups)
        if (g.size() != member_count)
          throw util::SpecError(
              "grouped RD: uneven member counts at level " + std::to_string(l));
      flat.push_back(std::move(sg));
    }

    if (group_count <= 1) continue;  // nothing to exchange at this level

    const std::uint32_t rounds = floor_log2_u64(group_count);
    const std::uint64_t n2 = 1ULL << rounds;
    const std::uint64_t extras = group_count - n2;

    const auto emit = [&](cps::StageRole role, auto&& pair_fn) {
      cps::Stage stage;
      stage.role = role;
      for (const SubtreeGroups& sg : flat) pair_fn(sg, stage);
      if (!stage.empty()) seq.stages.push_back(std::move(stage));
    };

    if (extras > 0) {
      // Pre: fold child positions past the last power of two onto proxies.
      emit(cps::StageRole::kFold,
           [&](const SubtreeGroups& sg, cps::Stage& stage) {
             for (std::uint64_t g = n2; g < group_count; ++g)
               for (std::size_t r = 0; r < member_count; ++r)
                 stage.pairs.push_back({sg.groups[g][r], sg.groups[g - n2][r]});
           });
    }
    for (std::uint32_t s = 0; s < rounds; ++s) {
      const std::uint64_t step = 1ULL << s;
      emit(cps::StageRole::kExchange,
           [&](const SubtreeGroups& sg, cps::Stage& stage) {
             for (std::uint64_t g = 0; g < n2; ++g)
               for (std::size_t r = 0; r < member_count; ++r)
                 stage.pairs.push_back({sg.groups[g][r], sg.groups[g ^ step][r]});
           });
    }
    if (extras > 0) {
      // Post: proxies return the result to the folded positions.
      emit(cps::StageRole::kUnfold,
           [&](const SubtreeGroups& sg, cps::Stage& stage) {
             for (std::uint64_t g = n2; g < group_count; ++g)
               for (std::size_t r = 0; r < member_count; ++r)
                 stage.pairs.push_back({sg.groups[g - n2][r], sg.groups[g][r]});
           });
    }
  }
  return seq;
}

cps::Sequence grouped_recursive_doubling(const Fabric& fabric) {
  std::vector<std::uint64_t> all(fabric.num_hosts());
  std::iota(all.begin(), all.end(), std::uint64_t{0});
  return grouped_recursive_doubling(fabric, all);
}

cps::Sequence grouped_recursive_halving(const Fabric& fabric) {
  cps::Sequence seq = grouped_recursive_doubling(fabric);
  std::reverse(seq.stages.begin(), seq.stages.end());
  // Played backwards, fold and unfold stages swap roles and directions.
  for (cps::Stage& stage : seq.stages) {
    if (stage.role == cps::StageRole::kExchange) continue;
    stage.role = stage.role == cps::StageRole::kFold ? cps::StageRole::kUnfold
                                                     : cps::StageRole::kFold;
    for (cps::Pair& pr : stage.pairs) std::swap(pr.src, pr.dst);
  }
  seq.name = "grouped-recursive-halving";
  return seq;
}

}  // namespace ftcf::core
