#include "core/jobs.hpp"

#include <algorithm>

#include "cps/generators.hpp"
#include "util/error.hpp"
#include "util/expects.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::core {

std::vector<JobPlacement> allocate_jobs(
    const topo::Fabric& fabric, const std::vector<std::uint64_t>& job_sizes) {
  const std::uint64_t classes = order::num_sub_allocations(fabric);
  const std::uint64_t unit = fabric.num_hosts() / classes;

  std::uint64_t needed = 0;
  for (const std::uint64_t size : job_sizes) {
    if (size == 0 || size % unit != 0)
      throw util::SpecError(
          "job size " + std::to_string(size) +
          " is not a positive multiple of the sub-allocation size " +
          std::to_string(unit));
    needed += size / unit;
  }
  if (needed > classes)
    throw util::SpecError("jobs need " + std::to_string(needed) +
                          " sub-allocations; fabric has " +
                          std::to_string(classes));

  std::vector<JobPlacement> placements;
  placements.reserve(job_sizes.size());
  std::uint32_t next = 0;
  for (const std::uint64_t size : job_sizes) {
    std::vector<std::uint32_t> residues(size / unit);
    for (auto& r : residues) r = next++;
    auto ordering = order::NodeOrdering::residue_allocation(fabric, residues);
    placements.push_back(JobPlacement{std::move(residues), std::move(ordering)});
  }
  return placements;
}

InterferenceReport analyze_job_interference(
    const topo::Fabric& fabric, const route::ForwardingTables& tables,
    const std::vector<JobPlacement>& jobs) {
  util::expects(!jobs.empty(), "interference analysis needs jobs");
  const analysis::HsdAnalyzer analyzer(fabric, tables);
  InterferenceReport report;

  // Per-job shift sequences; stage counts differ, so the combined run wraps
  // shorter jobs (a job whose shift finished starts it again).
  std::vector<cps::Sequence> sequences;
  std::size_t longest = 0;
  for (const JobPlacement& job : jobs) {
    sequences.push_back(cps::shift(job.ordering.num_ranks()));
    longest = std::max(longest, sequences.back().num_stages());

    const auto solo =
        analyzer.analyze_sequence(sequences.back(), job.ordering);
    report.worst_single_job_hsd =
        std::max(report.worst_single_job_hsd, solo.worst_stage_hsd);
  }

  // Each network step's combined traffic is independent of the others, so
  // the interference sweep shards per step, one workspace per worker; the
  // per-step maxima fold in step order (a max-reduction, but kept ordered
  // so any future non-commutative merge stays deterministic too).
  const par::ForOptions options{.threads = 0, .grain = 1, .label = "jobs.step"};
  std::vector<analysis::HsdAnalyzer::Workspace> workspaces(
      par::region_width(longest, options));
  const auto step_max = par::parallel_map(
      longest,
      [&](std::size_t step, std::uint32_t worker) {
        std::vector<cps::Pair> combined;
        for (std::size_t k = 0; k < jobs.size(); ++k) {
          const cps::Stage& stage =
              sequences[k].stages[step % sequences[k].num_stages()];
          const auto flows = jobs[k].ordering.map_stage(stage);
          combined.insert(combined.end(), flows.begin(), flows.end());
        }
        return analyzer.analyze_stage(combined, workspaces[worker]).max_hsd;
      },
      options);
  for (const std::uint32_t max_hsd : step_max) {
    report.worst_combined_hsd = std::max(report.worst_combined_hsd, max_hsd);
  }
  report.isolated = report.worst_combined_hsd <= 1;
  return report;
}

}  // namespace ftcf::core
