// CollectivePlan: the paper's recipe as one object.
//
// Given a fat-tree, produce the three coordinated ingredients that make MPI
// global collectives congestion-free (§I): D-Mod-K routing tables, the
// topology-aware MPI node order, and — per collective — a permutation
// sequence that the routing serves without contention (the native CPS for
// unidirectional collectives, the §VI grouped sequence for bidirectional
// ones).
//
// Quickstart:
//
//   topo::Fabric fabric(topo::paper_cluster(324));
//   core::CollectivePlan plan(fabric);
//   auto seq = plan.sequence_for(cps::CpsKind::kShift);
//   auto audit = plan.audit(seq);          // audit.congestion_free == true
#pragma once

#include <optional>

#include "analysis/hsd.hpp"
#include "core/grouped_rd.hpp"
#include "cps/generators.hpp"
#include "ordering/ordering.hpp"
#include "routing/dmodk.hpp"

namespace ftcf::core {

class CollectivePlan {
 public:
  /// Plan for a whole-fabric job. Warns (via the returned flags, not I/O)
  /// when the fabric is not an RLFT, where the guarantees are proven.
  explicit CollectivePlan(const topo::Fabric& fabric);

  /// Plan for a partial job over the given hosts (ascending host indices).
  CollectivePlan(const topo::Fabric& fabric,
                 std::vector<std::uint64_t> participants);

  [[nodiscard]] const topo::Fabric& fabric() const noexcept { return *fabric_; }
  [[nodiscard]] const route::ForwardingTables& tables() const noexcept {
    return tables_;
  }
  [[nodiscard]] const order::NodeOrdering& ordering() const noexcept {
    return ordering_;
  }
  [[nodiscard]] std::uint64_t num_ranks() const noexcept {
    return ordering_.num_ranks();
  }
  [[nodiscard]] bool is_rlft() const noexcept {
    return fabric_->spec().is_rlft();
  }

  /// The congestion-free sequence for a CPS kind: unidirectional kinds keep
  /// their native sequence; recursive doubling/halving are replaced by the
  /// grouped §VI construction (which requires uniform occupancy — throws
  /// util::SpecError otherwise).
  [[nodiscard]] cps::Sequence sequence_for(cps::CpsKind kind) const;

  struct Audit {
    bool congestion_free = false;
    analysis::SequenceMetrics metrics;
  };

  /// Route every stage of `seq` under this plan's ordering and tables and
  /// measure the hot-spot degrees.
  [[nodiscard]] Audit audit(const cps::Sequence& seq) const;

 private:
  const topo::Fabric* fabric_;
  route::ForwardingTables tables_;
  order::NodeOrdering ordering_;
  std::optional<std::vector<std::uint64_t>> participants_;
};

}  // namespace ftcf::core
