#include "core/theorems.hpp"

#include <sstream>

#include "core/grouped_rd.hpp"
#include "cps/generators.hpp"
#include "routing/dmodk.hpp"

namespace ftcf::core {

namespace {

TheoremReport run_shift_check(const topo::Fabric& fabric, bool check_up,
                              bool check_down) {
  const route::DModKRouter router;
  const route::ForwardingTables tables = router.compute(fabric);
  const analysis::HsdAnalyzer analyzer(fabric, tables);
  const auto ordering = order::NodeOrdering::topology(fabric);

  TheoremReport report;
  analysis::HsdAnalyzer::Workspace workspace;
  const std::uint64_t n = fabric.num_hosts();
  for (std::uint64_t s = 1; s < n; ++s) {
    const cps::Stage stage = cps::shift_stage(n, s);
    const auto flows = ordering.map_stage(stage);
    const analysis::StageMetrics metrics =
        analyzer.analyze_stage(flows, workspace);
    ++report.stages_checked;
    report.worst_up_hsd = std::max(report.worst_up_hsd, metrics.max_up_hsd);
    report.worst_down_hsd =
        std::max(report.worst_down_hsd, metrics.max_down_hsd);
    const bool bad = (check_up && metrics.max_up_hsd > 1) ||
                     (check_down && metrics.max_down_hsd > 1);
    if (bad && report.holds) {
      report.holds = false;
      std::ostringstream oss;
      oss << "shift stage s=" << s << " has up HSD " << metrics.max_up_hsd
          << ", down HSD " << metrics.max_down_hsd;
      report.detail = oss.str();
    }
  }
  return report;
}

}  // namespace

TheoremReport check_theorem1(const topo::Fabric& fabric) {
  return run_shift_check(fabric, /*check_up=*/true, /*check_down=*/false);
}

TheoremReport check_theorem2(const topo::Fabric& fabric) {
  return run_shift_check(fabric, /*check_up=*/false, /*check_down=*/true);
}

TheoremReport check_theorem3(const topo::Fabric& fabric) {
  const route::DModKRouter router;
  const route::ForwardingTables tables = router.compute(fabric);
  const analysis::HsdAnalyzer analyzer(fabric, tables);
  const auto ordering = order::NodeOrdering::topology(fabric);
  const cps::Sequence seq = grouped_recursive_doubling(fabric);

  TheoremReport report;
  analysis::HsdAnalyzer::Workspace workspace;
  for (std::size_t idx = 0; idx < seq.stages.size(); ++idx) {
    const auto flows = ordering.map_stage(seq.stages[idx]);
    const analysis::StageMetrics metrics =
        analyzer.analyze_stage(flows, workspace);
    ++report.stages_checked;
    report.worst_up_hsd = std::max(report.worst_up_hsd, metrics.max_up_hsd);
    report.worst_down_hsd =
        std::max(report.worst_down_hsd, metrics.max_down_hsd);
    if (metrics.max_hsd > 1 && report.holds) {
      report.holds = false;
      std::ostringstream oss;
      oss << "grouped RD stage " << idx << " has HSD " << metrics.max_hsd;
      report.detail = oss.str();
    }
  }
  return report;
}

}  // namespace ftcf::core
