#include "core/report.hpp"

#include <ostream>
#include <sstream>

#include "analysis/hsd.hpp"
#include "core/plan.hpp"
#include "core/theorems.hpp"
#include "topology/validate.hpp"
#include "util/table.hpp"

namespace ftcf::core {

void write_fabric_report(const topo::Fabric& fabric, std::ostream& os,
                         const ReportOptions& options) {
  const topo::PgftSpec& spec = fabric.spec();
  os << "=== fabric report: " << spec.to_string() << " ===\n";
  os << fabric.num_hosts() << " hosts, " << fabric.num_switches()
     << " switches over " << spec.height() << " levels, "
     << fabric.num_ports() << " ports";
  if (spec.is_rlft()) os << ", RLFT of arity K = " << spec.arity();
  os << "\n";

  const auto structure = topo::validate_fabric(fabric);
  const auto cbb = topo::validate_constant_cbb(fabric);
  os << "structure: " << (structure.ok ? "ok" : structure.problems.front())
     << "; constant CBB: " << (cbb.ok ? "yes" : "NO") << "\n";

  if (options.check_theorems) {
    const auto t1 = check_theorem1(fabric);
    const auto t2 = check_theorem2(fabric);
    const auto t3 = check_theorem3(fabric);
    os << "Theorem 1 (shift up-ports):    "
       << (t1.holds ? "holds" : t1.detail) << "\n"
       << "Theorem 2 (shift down-ports):  "
       << (t2.holds ? "holds" : t2.detail) << "\n"
       << "Theorem 3 (grouped doubling):  "
       << (t3.holds ? "holds" : t3.detail) << "\n";
  }

  if (options.audit_cps) {
    const CollectivePlan plan(fabric);
    util::Table table({"CPS", "stages", "plan HSD", "random-order HSD (avg)"});
    for (const cps::CpsKind kind : cps::kAllCpsKinds) {
      const cps::Sequence seq = plan.sequence_for(kind);
      const auto audit = plan.audit(seq);
      const auto baseline = analysis::random_order_hsd_ensemble(
          fabric, plan.tables(),
          cps::generate(kind, fabric.num_hosts()), options.random_trials,
          options.seed);
      table.add_row({seq.name, std::to_string(seq.num_stages()),
                     util::fmt_double(audit.metrics.avg_max_hsd, 2),
                     util::fmt_double(baseline.mean(), 2)});
    }
    table.print(os);
  }
}

std::string fabric_report(const topo::Fabric& fabric,
                          const ReportOptions& options) {
  std::ostringstream oss;
  write_fabric_report(fabric, oss, options);
  return oss.str();
}

}  // namespace ftcf::core
