#include "core/plan.hpp"

#include <algorithm>

namespace ftcf::core {

namespace {
route::ForwardingTables make_tables(const topo::Fabric& fabric) {
  return route::DModKRouter{}.compute(fabric);
}
}  // namespace

CollectivePlan::CollectivePlan(const topo::Fabric& fabric)
    : fabric_(&fabric),
      tables_(make_tables(fabric)),
      ordering_(order::NodeOrdering::topology(fabric)) {}

CollectivePlan::CollectivePlan(const topo::Fabric& fabric,
                               std::vector<std::uint64_t> participants)
    : fabric_(&fabric),
      tables_(make_tables(fabric)),
      ordering_(order::NodeOrdering::compact_subset(participants,
                                                    fabric.num_hosts())),
      participants_(std::move(participants)) {
  // compact_subset sorted its copy; keep ours aligned with rank order.
  participants_->assign(ordering_.hosts().begin(), ordering_.hosts().end());
}

cps::Sequence CollectivePlan::sequence_for(cps::CpsKind kind) const {
  const std::uint64_t p = num_ranks();
  switch (kind) {
    case cps::CpsKind::kRecursiveDoubling:
      if (participants_)
        return grouped_recursive_doubling(*fabric_, *participants_);
      return grouped_recursive_doubling(*fabric_);
    case cps::CpsKind::kRecursiveHalving: {
      cps::Sequence seq =
          participants_ ? grouped_recursive_doubling(*fabric_, *participants_)
                        : grouped_recursive_doubling(*fabric_);
      std::reverse(seq.stages.begin(), seq.stages.end());
      seq.name = "grouped-recursive-halving";
      return seq;
    }
    default:
      return cps::generate(kind, p);
  }
}

CollectivePlan::Audit CollectivePlan::audit(const cps::Sequence& seq) const {
  const analysis::HsdAnalyzer analyzer(*fabric_, tables_);
  Audit result;
  result.metrics = analyzer.analyze_sequence(seq, ordering_);
  result.congestion_free = result.metrics.worst_stage_hsd <= 1;
  return result;
}

}  // namespace ftcf::core
