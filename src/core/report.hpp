// Fabric report: one human-readable summary combining the structural audit,
// the routing guarantees and the congestion profile of every CPS — the
// "show me everything about this cluster" entry point used by ftcf_tool.
#pragma once

#include <iosfwd>
#include <string>

#include "routing/lft.hpp"
#include "topology/fabric.hpp"

namespace ftcf::core {

struct ReportOptions {
  bool check_theorems = true;   ///< run the (exhaustive) theorem checkers
  bool audit_cps = true;        ///< HSD of every CPS under the plan
  std::uint32_t random_trials = 3;  ///< random-order baseline trials
  std::uint64_t seed = 1;
};

/// Render the full report for a fabric under D-Mod-K + topology ordering.
void write_fabric_report(const topo::Fabric& fabric, std::ostream& os,
                         const ReportOptions& options = {});

[[nodiscard]] std::string fabric_report(const topo::Fabric& fabric,
                                        const ReportOptions& options = {});

}  // namespace ftcf::core
