// Multi-job allocation (extension).
//
// §V ends with: "Since this paper focuses on running a single very large
// job, it is beyond the scope of this paper to describe how [multiple jobs]
// can be allocated and routed to meet congestion-free traffic."
//
// This module implements the natural completion of the paper's own
// machinery: jobs are allocated on disjoint unions of §V sub-allocations
// (residue classes of the host index modulo N / prod(w)). Each job then gets
// its own compact rank order, and — because every job's Shift stage is a
// subset of a full-fabric Shift stage family — the *combined* concurrent
// traffic can be audited for cross-job interference with the same HSD
// analyzer.
#pragma once

#include <vector>

#include "analysis/hsd.hpp"
#include "ordering/ordering.hpp"
#include "topology/fabric.hpp"

namespace ftcf::core {

struct JobPlacement {
  std::vector<std::uint32_t> residues;   ///< sub-allocation classes used
  order::NodeOrdering ordering;          ///< compact ranks over those hosts
};

/// Allocate jobs onto disjoint residue classes. `job_sizes` are node counts;
/// each must be a positive multiple of the sub-allocation size
/// N / num_sub_allocations, and they must fit the fabric. Throws
/// util::SpecError otherwise. Residues are handed out in ascending order.
[[nodiscard]] std::vector<JobPlacement> allocate_jobs(
    const topo::Fabric& fabric, const std::vector<std::uint64_t>& job_sizes);

struct InterferenceReport {
  std::uint32_t worst_single_job_hsd = 0;  ///< each job alone
  std::uint32_t worst_combined_hsd = 0;    ///< all jobs at once
  bool isolated = false;  ///< combined == 1: no cross-job interference
};

/// Run every job's Shift CPS concurrently (stage s of each job in the same
/// network step, shorter jobs wrap around) under D-Mod-K and measure
/// per-link flows of the combined traffic.
[[nodiscard]] InterferenceReport analyze_job_interference(
    const topo::Fabric& fabric, const route::ForwardingTables& tables,
    const std::vector<JobPlacement>& jobs);

}  // namespace ftcf::core
