// Computational verification of the paper's theorems.
//
// The appendix proves Theorems 1-2 for complete RLFTs; Theorem 3 covers the
// grouped bidirectional traffic of §VI. These checkers *measure* the claimed
// properties on an instantiated fabric, so tests (and users with bespoke
// topologies) can confirm the guarantees rather than trust them.
#pragma once

#include <string>

#include "analysis/hsd.hpp"
#include "routing/router.hpp"

namespace ftcf::core {

struct TheoremReport {
  bool holds = true;
  std::uint32_t worst_up_hsd = 0;
  std::uint32_t worst_down_hsd = 0;
  std::uint64_t stages_checked = 0;
  std::string detail;  ///< first violation, if any
};

/// Theorem 1: under D-Mod-K with topology ordering, every stage of the Shift
/// CPS routes at most one destination through any up-going port.
TheoremReport check_theorem1(const topo::Fabric& fabric);

/// Theorem 2: ... and at most one destination through any down-going port.
TheoremReport check_theorem2(const topo::Fabric& fabric);

/// Theorem 3: the grouped recursive-doubling sequence of §VI is
/// congestion-free (HSD == 1 on every link in every stage).
TheoremReport check_theorem3(const topo::Fabric& fabric);

}  // namespace ftcf::core
