// Displacement algebra of CPS stages — closed-form stage descriptors.
//
// The enumerative pipeline materializes every (src, dst) pair of a stage;
// the symbolic certifier (check/symbolic.hpp) instead reasons about the
// *algebra* of a stage: a source-rank set (an arithmetic progression for
// every stage of the paper's eight CPS) plus either a constant displacement
// (dst = (src + d) mod N, Theorems 1-2) or a constant XOR distance
// (dst = src ^ d, the recursive-doubling family).
//
// Two ways to obtain the algebra:
//   * classify_stage_algebra reverse-engineers it from a materialized
//     Stage in O(pairs) — used when a concrete Sequence is in hand (the
//     CLI path), so crafted or hand-edited stages are classified honestly
//     (anything without a closed form is kOpaque, never mis-summarized);
//   * symbolic_sequence writes down the algebra of generate(kind, n)
//     directly from the generator definitions in O(stages), never
//     materializing a pair — this is what lets a million-endpoint shift
//     set (10^12 pairs) be described in milliseconds.
// The two agree by construction; tests/check/symbolic_test.cpp pins
// classify_stage_algebra(generate(kind, n)) == symbolic_sequence(kind, n)
// across kinds and rank counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cps/generators.hpp"
#include "cps/stage.hpp"

namespace ftcf::cps {

/// Closed-form family of a stage's pair map.
enum class AlgebraKind : std::uint8_t {
  kEmpty,   ///< no pairs
  kShift,   ///< dst = (src + displacement) mod N for every pair
  kXor,     ///< dst = src ^ xor_mask for every pair (mask != 0)
  kOpaque,  ///< duplicate sources, out-of-range ranks, or no closed form
};

[[nodiscard]] const char* algebra_kind_name(AlgebraKind kind) noexcept;

/// The source ranks of a stage. Generator stages are always an arithmetic
/// progression base + stride*k (k < count); classification of arbitrary
/// stages falls back to an explicit sorted list when the sorted sources
/// have no constant gap.
struct SourceSet {
  bool strided = true;
  std::uint64_t base = 0;
  std::uint64_t stride = 1;  ///< >= 1 when strided and count > 1
  std::uint64_t count = 0;
  std::vector<std::uint64_t> values;  ///< sorted, used when !strided

  [[nodiscard]] std::uint64_t size() const noexcept {
    return strided ? count : values.size();
  }
};

/// Closed-form descriptor of one stage.
struct StageAlgebra {
  AlgebraKind kind = AlgebraKind::kEmpty;
  std::uint64_t displacement = 0;  ///< kShift: (dst - src) mod N
  std::uint64_t xor_mask = 0;      ///< kXor: src ^ dst
  SourceSet sources;
  StageRole role = StageRole::kExchange;
};

/// Closed-form descriptor of a whole sequence (name/num_ranks mirror
/// cps::Sequence so certificates derived from either are interchangeable).
struct SequenceAlgebra {
  std::string name;
  std::uint64_t num_ranks = 0;
  std::vector<StageAlgebra> stages;
};

/// Reverse-engineer the algebra of a materialized stage. O(pairs log pairs)
/// (one sort for duplicate detection and stride recovery). Returns kOpaque
/// whenever the stage is not *exactly* a constant shift or constant XOR
/// over distinct in-range sources — a duplicate source alone would load an
/// injection link twice, so nothing uncertain ever classifies closed-form.
[[nodiscard]] StageAlgebra classify_stage_algebra(const Stage& stage,
                                                  std::uint64_t num_ranks);

/// The algebra of generate(kind, n), built from the generator definitions
/// without materializing pairs. The degenerate XOR stage over the full
/// power-of-two domain with the top bit (n == 2^(r+1), d == n/2) is
/// normalized to its equivalent shift by n/2, matching what
/// classify_stage_algebra recovers from the materialized pairs.
[[nodiscard]] SequenceAlgebra symbolic_sequence(CpsKind kind,
                                                std::uint64_t n);

}  // namespace ftcf::cps
