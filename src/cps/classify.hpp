// CPS classification — the §III observations turned into predicates:
//   1. constant displacement per stage,
//   2. unidirectional vs bidirectional,
//   3. Shift is a superset of every unidirectional CPS.
#pragma once

#include <optional>

#include "cps/stage.hpp"

namespace ftcf::cps {

/// True when no rank appears twice as a source or twice as a destination
/// (the stage is a partial permutation; self-pairs are rejected).
[[nodiscard]] bool is_partial_permutation(const Stage& stage, std::uint64_t n);

/// The constant displacement (dst - src) mod N shared by every pair of the
/// stage, or nullopt if the displacement varies. Bidirectional stages have
/// two displacement classes, d and N-d; they are reported as
/// displacement_classes instead.
[[nodiscard]] std::optional<std::uint64_t> constant_displacement(
    const Stage& stage, std::uint64_t n);

/// Distinct (dst - src) mod N values present in a stage, sorted ascending.
[[nodiscard]] std::vector<std::uint64_t> displacement_classes(
    const Stage& stage, std::uint64_t n);

/// True when every pair's reverse is also in the stage.
[[nodiscard]] bool is_bidirectional_stage(const Stage& stage);

enum class Direction { kUnidirectional, kBidirectional, kMixed };

/// Direction of a whole sequence: unidirectional if no stage contains a
/// reverse pair, bidirectional if every stage is fully symmetric.
[[nodiscard]] Direction sequence_direction(const Sequence& seq);

/// §III key claim: every stage of a unidirectional CPS is a subset of the
/// Shift stage with the same displacement. Checks all stages.
[[nodiscard]] bool shift_contains(const Sequence& seq);

}  // namespace ftcf::cps
