// Generators for the eight Collective Permutation Sequences of the paper's
// Tables 1-2, each following its formal definition exactly.
//
// Unidirectional CPS (displacement always positive; every stage is a subset
// of a Shift stage): Ring, Shift, Binomial, Dissemination, Tournament,
// Linear. Bidirectional CPS (XOR distance; every pair appears with its
// reverse in the same stage): Recursive-Doubling, Recursive-Halving.
//
// Non-power-of-2 rank counts are handled for the bidirectional CPS with the
// standard pre/post proxy permutations the paper describes in §VI: the ranks
// above the largest power of two fold their data into proxies first and
// receive results back last.
#pragma once

#include "cps/stage.hpp"

namespace ftcf::cps {

enum class CpsKind {
  kRing,
  kShift,
  kBinomial,
  kDissemination,
  kTournament,
  kLinear,
  kRecursiveDoubling,
  kRecursiveHalving,
};

/// All kinds, for table-driven tests and benches.
inline constexpr CpsKind kAllCpsKinds[] = {
    CpsKind::kRing,         CpsKind::kShift,
    CpsKind::kBinomial,     CpsKind::kDissemination,
    CpsKind::kTournament,   CpsKind::kLinear,
    CpsKind::kRecursiveDoubling, CpsKind::kRecursiveHalving,
};

[[nodiscard]] std::string cps_name(CpsKind kind);
[[nodiscard]] CpsKind parse_cps(const std::string& name);

/// Ring: the single stage  n_i -> n_{(i+1) mod N}.
/// (Ring-algorithm collectives replay this stage N-1 times.)
[[nodiscard]] Sequence ring(std::uint64_t n);

/// Shift: stages s = 1..N-1 of  n_i -> n_{(i+s) mod N}. The superset of all
/// unidirectional CPS; also the traffic of pairwise-exchange all-to-all.
[[nodiscard]] Sequence shift(std::uint64_t n);

/// A single Shift stage with displacement s (1 <= s < N).
[[nodiscard]] Stage shift_stage(std::uint64_t n, std::uint64_t s);

/// Binomial: stages s = 0..ceil(log2 N)-1 of  n_i -> n_{i+2^s}
/// for 0 <= i < 2^s and i + 2^s < N (broadcast direction; reverse the pairs
/// for the reduce direction).
[[nodiscard]] Sequence binomial(std::uint64_t n);

/// Dissemination (Bruck): stages s of  n_i -> n_{(i+2^s) mod N}.
[[nodiscard]] Sequence dissemination(std::uint64_t n);

/// Tournament: stages s of  n_{i+2^s} -> n_i  for i = 0 mod 2^{s+1},
/// i + 2^s < N (pairwise elimination towards rank 0).
[[nodiscard]] Sequence tournament(std::uint64_t n);

/// Linear: stages s = 1..N-1 of the single pair n_0 -> n_s (root-sequential
/// scatter; reverse for gather).
[[nodiscard]] Sequence linear(std::uint64_t n);

/// Recursive-Doubling: stages s = 0..log2(N')-1 of  n_i <-> n_{i XOR 2^s}
/// over N' = 2^floor(log2 N) ranks, wrapped with pre/post proxy stages when
/// N is not a power of two.
[[nodiscard]] Sequence recursive_doubling(std::uint64_t n);

/// Recursive-Halving: the same stages in reverse order (XOR distance
/// descending), with the same pre/post wrapping.
[[nodiscard]] Sequence recursive_halving(std::uint64_t n);

/// Dispatch by kind.
[[nodiscard]] Sequence generate(CpsKind kind, std::uint64_t n);

}  // namespace ftcf::cps
