// Table 1: which Collective Permutation Sequence each MVAPICH / OpenMPI
// collective algorithm uses.
//
// The printed table in the paper is partially garbled in available copies;
// this registry reconstructs it from the cited collective implementations
// (MVAPICH and the OpenMPI "tuned" component, refs [7][8][10]) following the
// paper's row/column structure: 18 algorithms, 8 CPS. Markers follow the
// paper's legend: 'm'/'M' MVAPICH small/large messages, 'o'/'O' OpenMPI
// small/large messages, and a power-of-2-only restriction flag.
#pragma once

#include <string>
#include <vector>

#include "cps/generators.hpp"

namespace ftcf::cps {

enum class MpiLibrary { kMvapich, kOpenMpi };
enum class MsgClass { kSmall, kLarge, kBoth };

struct UsageEntry {
  std::string collective;   ///< e.g. "AllGather"
  std::string algorithm;    ///< e.g. "recursive doubling"
  CpsKind cps;
  MpiLibrary library;
  MsgClass msg_class;
  bool power_of_two_only = false;
};

/// The reconstructed Table 1 contents.
[[nodiscard]] const std::vector<UsageEntry>& table1_usage();

/// Distinct collective names, in table order.
[[nodiscard]] std::vector<std::string> table1_collectives();

/// Marker string ("m", "M", "o2", ...) for one entry, per the paper legend.
[[nodiscard]] std::string usage_marker(const UsageEntry& entry);

}  // namespace ftcf::cps
