#include "cps/registry.hpp"

#include <set>

namespace ftcf::cps {

const std::vector<UsageEntry>& table1_usage() {
  static const std::vector<UsageEntry> entries = {
      // AllGather
      {"AllGather", "recursive doubling", CpsKind::kRecursiveDoubling,
       MpiLibrary::kMvapich, MsgClass::kSmall, true},
      {"AllGather", "recursive doubling", CpsKind::kRecursiveDoubling,
       MpiLibrary::kOpenMpi, MsgClass::kSmall, true},
      {"AllGather", "bruck", CpsKind::kDissemination, MpiLibrary::kOpenMpi,
       MsgClass::kSmall, false},
      {"AllGather", "ring", CpsKind::kRing, MpiLibrary::kMvapich,
       MsgClass::kLarge, false},
      {"AllGather", "ring", CpsKind::kRing, MpiLibrary::kOpenMpi,
       MsgClass::kLarge, false},
      // AllReduce
      {"AllReduce", "recursive doubling", CpsKind::kRecursiveDoubling,
       MpiLibrary::kMvapich, MsgClass::kSmall, false},
      {"AllReduce", "recursive doubling", CpsKind::kRecursiveDoubling,
       MpiLibrary::kOpenMpi, MsgClass::kSmall, false},
      {"AllReduce", "reduce-scatter + allgather (Rabenseifner)",
       CpsKind::kRecursiveHalving, MpiLibrary::kMvapich, MsgClass::kLarge,
       false},
      {"AllReduce", "ring segmented", CpsKind::kRing, MpiLibrary::kOpenMpi,
       MsgClass::kLarge, false},
      // AlltoAll
      {"AlltoAll", "bruck", CpsKind::kDissemination, MpiLibrary::kMvapich,
       MsgClass::kSmall, false},
      {"AlltoAll", "pairwise exchange / shift", CpsKind::kShift,
       MpiLibrary::kMvapich, MsgClass::kLarge, false},
      {"AlltoAll", "pairwise exchange / shift", CpsKind::kShift,
       MpiLibrary::kOpenMpi, MsgClass::kLarge, false},
      // Barrier
      {"Barrier", "dissemination", CpsKind::kDissemination,
       MpiLibrary::kOpenMpi, MsgClass::kBoth, false},
      {"Barrier", "recursive doubling", CpsKind::kRecursiveDoubling,
       MpiLibrary::kOpenMpi, MsgClass::kBoth, true},
      {"Barrier", "pairwise exchange (dissemination)",
       CpsKind::kDissemination, MpiLibrary::kMvapich, MsgClass::kBoth, false},
      {"Barrier", "tournament", CpsKind::kTournament, MpiLibrary::kOpenMpi,
       MsgClass::kBoth, false},
      // Broadcast
      {"Bcast", "binomial tree", CpsKind::kBinomial, MpiLibrary::kMvapich,
       MsgClass::kSmall, false},
      {"Bcast", "binomial tree", CpsKind::kBinomial, MpiLibrary::kOpenMpi,
       MsgClass::kSmall, false},
      {"Bcast", "scatter + ring allgather", CpsKind::kRing,
       MpiLibrary::kMvapich, MsgClass::kLarge, false},
      {"Bcast", "scatter + recursive-doubling allgather",
       CpsKind::kRecursiveDoubling, MpiLibrary::kMvapich, MsgClass::kLarge,
       true},
      // Gather / Gatherv
      {"Gather", "binomial tree", CpsKind::kBinomial, MpiLibrary::kMvapich,
       MsgClass::kBoth, false},
      {"Gather", "binomial tree", CpsKind::kBinomial, MpiLibrary::kOpenMpi,
       MsgClass::kSmall, false},
      {"Gather", "linear", CpsKind::kLinear, MpiLibrary::kOpenMpi,
       MsgClass::kLarge, false},
      // Reduce
      {"Reduce", "binomial tree", CpsKind::kBinomial, MpiLibrary::kMvapich,
       MsgClass::kSmall, false},
      {"Reduce", "binomial tree", CpsKind::kBinomial, MpiLibrary::kOpenMpi,
       MsgClass::kSmall, false},
      {"Reduce", "reduce-scatter + binomial gather",
       CpsKind::kRecursiveHalving, MpiLibrary::kMvapich, MsgClass::kLarge,
       false},
      // ReduceScatter
      {"ReduceScatter", "recursive halving", CpsKind::kRecursiveHalving,
       MpiLibrary::kMvapich, MsgClass::kSmall, true},
      {"ReduceScatter", "recursive halving", CpsKind::kRecursiveHalving,
       MpiLibrary::kOpenMpi, MsgClass::kSmall, true},
      {"ReduceScatter", "pairwise exchange / shift", CpsKind::kShift,
       MpiLibrary::kMvapich, MsgClass::kLarge, false},
      {"ReduceScatter", "ring", CpsKind::kRing, MpiLibrary::kOpenMpi,
       MsgClass::kLarge, false},
      // Scatter
      {"Scatter", "binomial tree", CpsKind::kBinomial, MpiLibrary::kMvapich,
       MsgClass::kBoth, false},
      {"Scatter", "binomial tree", CpsKind::kBinomial, MpiLibrary::kOpenMpi,
       MsgClass::kSmall, false},
      {"Scatter", "linear", CpsKind::kLinear, MpiLibrary::kOpenMpi,
       MsgClass::kLarge, false},
  };
  return entries;
}

std::vector<std::string> table1_collectives() {
  std::vector<std::string> names;
  std::set<std::string> seen;
  for (const UsageEntry& entry : table1_usage()) {
    if (seen.insert(entry.collective).second) names.push_back(entry.collective);
  }
  return names;
}

std::string usage_marker(const UsageEntry& entry) {
  std::string marker;
  const bool mvapich = entry.library == MpiLibrary::kMvapich;
  switch (entry.msg_class) {
    case MsgClass::kSmall: marker = mvapich ? "m" : "o"; break;
    case MsgClass::kLarge: marker = mvapich ? "M" : "O"; break;
    case MsgClass::kBoth: marker = mvapich ? "mM" : "oO"; break;
  }
  if (entry.power_of_two_only) marker += "2";
  return marker;
}

}  // namespace ftcf::cps
