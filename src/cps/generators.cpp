#include "cps/generators.hpp"

#include <bit>

#include "util/error.hpp"
#include "util/expects.hpp"

namespace ftcf::cps {

using util::expects;

namespace {

/// floor(log2(n)) for n >= 1.
std::uint32_t floor_log2(std::uint64_t n) {
  return 63u - static_cast<std::uint32_t>(std::countl_zero(n));
}

/// Largest power of two <= n.
std::uint64_t pow2_floor(std::uint64_t n) { return 1ULL << floor_log2(n); }

}  // namespace

std::string cps_name(CpsKind kind) {
  switch (kind) {
    case CpsKind::kRing: return "ring";
    case CpsKind::kShift: return "shift";
    case CpsKind::kBinomial: return "binomial";
    case CpsKind::kDissemination: return "dissemination";
    case CpsKind::kTournament: return "tournament";
    case CpsKind::kLinear: return "linear";
    case CpsKind::kRecursiveDoubling: return "recursive-doubling";
    case CpsKind::kRecursiveHalving: return "recursive-halving";
  }
  return "?";
}

CpsKind parse_cps(const std::string& name) {
  for (const CpsKind kind : kAllCpsKinds)
    if (cps_name(kind) == name) return kind;
  throw util::Error("unknown CPS '" + name + "'");
}

Stage shift_stage(std::uint64_t n, std::uint64_t s) {
  expects(n >= 2, "shift stage needs at least 2 ranks");
  expects(s >= 1 && s < n, "shift displacement must be in [1, N-1]");
  Stage stage;
  stage.pairs.reserve(n);
  for (Rank i = 0; i < n; ++i) stage.pairs.push_back({i, (i + s) % n});
  return stage;
}

Sequence ring(std::uint64_t n) {
  expects(n >= 2, "ring needs at least 2 ranks");
  Sequence seq{.name = "ring", .num_ranks = n, .stages = {}};
  seq.stages.push_back(shift_stage(n, 1));
  return seq;
}

Sequence shift(std::uint64_t n) {
  expects(n >= 2, "shift needs at least 2 ranks");
  Sequence seq{.name = "shift", .num_ranks = n, .stages = {}};
  seq.stages.reserve(n - 1);
  for (std::uint64_t s = 1; s < n; ++s) seq.stages.push_back(shift_stage(n, s));
  return seq;
}

Sequence binomial(std::uint64_t n) {
  expects(n >= 2, "binomial needs at least 2 ranks");
  Sequence seq{.name = "binomial", .num_ranks = n, .stages = {}};
  for (std::uint64_t step = 1; step < n; step <<= 1) {
    Stage stage;
    for (Rank i = 0; i < step && i + step < n; ++i)
      stage.pairs.push_back({i, i + step});
    seq.stages.push_back(std::move(stage));
  }
  return seq;
}

Sequence dissemination(std::uint64_t n) {
  expects(n >= 2, "dissemination needs at least 2 ranks");
  Sequence seq{.name = "dissemination", .num_ranks = n, .stages = {}};
  for (std::uint64_t step = 1; step < n; step <<= 1) {
    Stage stage;
    stage.pairs.reserve(n);
    for (Rank i = 0; i < n; ++i) stage.pairs.push_back({i, (i + step) % n});
    seq.stages.push_back(std::move(stage));
  }
  return seq;
}

Sequence tournament(std::uint64_t n) {
  expects(n >= 2, "tournament needs at least 2 ranks");
  Sequence seq{.name = "tournament", .num_ranks = n, .stages = {}};
  for (std::uint64_t step = 1; step < n; step <<= 1) {
    Stage stage;
    for (Rank i = 0; i + step < n; i += 2 * step)
      stage.pairs.push_back({i + step, i});
    seq.stages.push_back(std::move(stage));
  }
  return seq;
}

Sequence linear(std::uint64_t n) {
  expects(n >= 2, "linear needs at least 2 ranks");
  Sequence seq{.name = "linear", .num_ranks = n, .stages = {}};
  seq.stages.reserve(n - 1);
  for (Rank i = 1; i < n; ++i) {
    Stage stage;
    stage.pairs.push_back({0, i});
    seq.stages.push_back(std::move(stage));
  }
  return seq;
}

namespace {

/// Core power-of-two XOR stages over ranks [0, n2), ascending or descending
/// distance, each exchange emitted as the two directed pairs of one stage.
void append_xor_stages(Sequence& seq, std::uint64_t n2, bool ascending) {
  const std::uint32_t rounds = floor_log2(n2);
  for (std::uint32_t r = 0; r < rounds; ++r) {
    const std::uint64_t step =
        ascending ? (1ULL << r) : (1ULL << (rounds - 1 - r));
    Stage stage;
    stage.pairs.reserve(n2);
    for (Rank i = 0; i < n2; ++i) stage.pairs.push_back({i, i ^ step});
    seq.stages.push_back(std::move(stage));
  }
}

Sequence recursive_xor(std::uint64_t n, bool ascending, std::string name) {
  expects(n >= 2, "recursive doubling/halving needs at least 2 ranks");
  Sequence seq{.name = std::move(name), .num_ranks = n, .stages = {}};
  const std::uint64_t n2 = pow2_floor(n);
  const std::uint64_t extras = n - n2;

  if (extras > 0) {
    // Pre: fold the extra ranks into proxies:  n_{i+n2} -> n_i, i < extras.
    Stage pre;
    pre.role = StageRole::kFold;
    for (Rank i = 0; i < extras; ++i) pre.pairs.push_back({i + n2, i});
    seq.stages.push_back(std::move(pre));
  }
  append_xor_stages(seq, n2, ascending);
  if (extras > 0) {
    // Post: proxies return results:  n_i -> n_{i+n2}, i < extras.
    Stage post;
    post.role = StageRole::kUnfold;
    for (Rank i = 0; i < extras; ++i) post.pairs.push_back({i, i + n2});
    seq.stages.push_back(std::move(post));
  }
  return seq;
}

}  // namespace

Sequence recursive_doubling(std::uint64_t n) {
  return recursive_xor(n, /*ascending=*/true, "recursive-doubling");
}

Sequence recursive_halving(std::uint64_t n) {
  return recursive_xor(n, /*ascending=*/false, "recursive-halving");
}

Sequence generate(CpsKind kind, std::uint64_t n) {
  switch (kind) {
    case CpsKind::kRing: return ring(n);
    case CpsKind::kShift: return shift(n);
    case CpsKind::kBinomial: return binomial(n);
    case CpsKind::kDissemination: return dissemination(n);
    case CpsKind::kTournament: return tournament(n);
    case CpsKind::kLinear: return linear(n);
    case CpsKind::kRecursiveDoubling: return recursive_doubling(n);
    case CpsKind::kRecursiveHalving: return recursive_halving(n);
  }
  throw util::Error("unknown CPS kind");
}

}  // namespace ftcf::cps
