#include "cps/symbolic.hpp"

#include <algorithm>
#include <bit>

#include "util/expects.hpp"

namespace ftcf::cps {

using util::expects;

namespace {

std::uint32_t floor_log2(std::uint64_t n) {
  return 63u - static_cast<std::uint32_t>(std::countl_zero(n));
}

std::uint64_t pow2_floor(std::uint64_t n) { return 1ULL << floor_log2(n); }

SourceSet strided(std::uint64_t base, std::uint64_t stride,
                  std::uint64_t count) {
  SourceSet s;
  s.strided = true;
  s.base = base;
  s.stride = stride;
  s.count = count;
  return s;
}

StageAlgebra shift_algebra(std::uint64_t displacement, SourceSet sources,
                           StageRole role = StageRole::kExchange) {
  StageAlgebra a;
  a.kind = AlgebraKind::kShift;
  a.displacement = displacement;
  a.sources = std::move(sources);
  a.role = role;
  return a;
}

/// One recursive-doubling/halving XOR stage over [0, n2). The top-bit stage
/// of a full power-of-two job (n == n2, d == n/2) is the one XOR map that
/// is *also* a constant shift (i ^ n/2 == (i + n/2) mod n over [0, n)), and
/// classify_stage_algebra recovers the shift form first — normalize to it.
StageAlgebra xor_algebra(std::uint64_t n, std::uint64_t n2,
                         std::uint64_t step) {
  StageAlgebra a;
  a.sources = strided(0, 1, n2);
  if (n == n2 && step * 2 == n) {
    a.kind = AlgebraKind::kShift;
    a.displacement = step;
  } else {
    a.kind = AlgebraKind::kXor;
    a.xor_mask = step;
  }
  return a;
}

}  // namespace

const char* algebra_kind_name(AlgebraKind kind) noexcept {
  switch (kind) {
    case AlgebraKind::kEmpty: return "empty";
    case AlgebraKind::kShift: return "shift";
    case AlgebraKind::kXor: return "xor";
    case AlgebraKind::kOpaque: return "opaque";
  }
  return "?";
}

StageAlgebra classify_stage_algebra(const Stage& stage,
                                    std::uint64_t num_ranks) {
  StageAlgebra out;
  out.role = stage.role;
  if (stage.pairs.empty()) return out;  // kEmpty

  std::vector<std::uint64_t> srcs;
  srcs.reserve(stage.pairs.size());
  for (const Pair& p : stage.pairs) {
    if (p.src >= num_ranks || p.dst >= num_ranks) {
      out.kind = AlgebraKind::kOpaque;
      return out;
    }
    srcs.push_back(p.src);
  }
  std::sort(srcs.begin(), srcs.end());
  // A duplicate source would load its injection link once per pair — no
  // closed-form single-load argument can cover that, so refuse outright.
  if (std::adjacent_find(srcs.begin(), srcs.end()) != srcs.end()) {
    out.kind = AlgebraKind::kOpaque;
    return out;
  }

  const Pair& first = stage.pairs.front();
  const std::uint64_t d0 = (first.dst + num_ranks - first.src) % num_ranks;
  bool is_shift = true;
  for (const Pair& p : stage.pairs) {
    if ((p.dst + num_ranks - p.src) % num_ranks != d0) {
      is_shift = false;
      break;
    }
  }
  if (is_shift) {
    out.kind = AlgebraKind::kShift;
    out.displacement = d0;
  } else {
    const std::uint64_t mask = first.src ^ first.dst;
    bool is_xor = mask != 0;
    for (const Pair& p : stage.pairs) {
      if ((p.src ^ p.dst) != mask) {
        is_xor = false;
        break;
      }
    }
    if (!is_xor) {
      out.kind = AlgebraKind::kOpaque;
      return out;
    }
    out.kind = AlgebraKind::kXor;
    out.xor_mask = mask;
  }

  // Recover the source progression; arbitrary stages keep the sorted list.
  if (srcs.size() == 1) {
    out.sources = strided(srcs.front(), 1, 1);
    return out;
  }
  const std::uint64_t gap = srcs[1] - srcs[0];
  bool constant_gap = gap != 0;
  for (std::size_t k = 2; constant_gap && k < srcs.size(); ++k) {
    constant_gap = srcs[k] - srcs[k - 1] == gap;
  }
  if (constant_gap) {
    out.sources = strided(srcs.front(), gap, srcs.size());
  } else {
    out.sources.strided = false;
    out.sources.values = std::move(srcs);
  }
  return out;
}

SequenceAlgebra symbolic_sequence(CpsKind kind, std::uint64_t n) {
  expects(n >= 2, "a CPS needs at least 2 ranks");
  SequenceAlgebra seq;
  seq.name = cps_name(kind);
  seq.num_ranks = n;
  switch (kind) {
    case CpsKind::kRing:
      seq.stages.push_back(shift_algebra(1, strided(0, 1, n)));
      break;
    case CpsKind::kShift:
      seq.stages.reserve(n - 1);
      for (std::uint64_t s = 1; s < n; ++s)
        seq.stages.push_back(shift_algebra(s, strided(0, 1, n)));
      break;
    case CpsKind::kBinomial:
      for (std::uint64_t step = 1; step < n; step <<= 1)
        seq.stages.push_back(
            shift_algebra(step, strided(0, 1, std::min(step, n - step))));
      break;
    case CpsKind::kDissemination:
      for (std::uint64_t step = 1; step < n; step <<= 1)
        seq.stages.push_back(shift_algebra(step, strided(0, 1, n)));
      break;
    case CpsKind::kTournament:
      for (std::uint64_t step = 1; step < n; step <<= 1) {
        // Sources are the i + step for i = 0, 2*step, ... with i + step < n.
        const std::uint64_t count = (n - 1 - step) / (2 * step) + 1;
        seq.stages.push_back(
            shift_algebra(n - step, strided(step, 2 * step, count)));
      }
      break;
    case CpsKind::kLinear:
      seq.stages.reserve(n - 1);
      for (std::uint64_t i = 1; i < n; ++i)
        seq.stages.push_back(shift_algebra(i, strided(0, 1, 1)));
      break;
    case CpsKind::kRecursiveDoubling:
    case CpsKind::kRecursiveHalving: {
      const std::uint64_t n2 = pow2_floor(n);
      const std::uint64_t extras = n - n2;
      const std::uint32_t rounds = floor_log2(n2);
      if (extras > 0)
        seq.stages.push_back(shift_algebra(n - n2, strided(n2, 1, extras),
                                           StageRole::kFold));
      const bool ascending = kind == CpsKind::kRecursiveDoubling;
      for (std::uint32_t r = 0; r < rounds; ++r) {
        const std::uint64_t step =
            ascending ? (1ULL << r) : (1ULL << (rounds - 1 - r));
        seq.stages.push_back(xor_algebra(n, n2, step));
      }
      if (extras > 0)
        seq.stages.push_back(
            shift_algebra(n2, strided(0, 1, extras), StageRole::kUnfold));
      break;
    }
  }
  return seq;
}

}  // namespace ftcf::cps
