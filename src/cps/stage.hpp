// Collective Permutation Sequences (paper §III).
//
// The paper decomposes every MPI collective algorithm into (a) a Collective
// Permutation Sequence — who talks to whom at each stage — and (b) the data
// content exchanged. This module models part (a): a Sequence is an ordered
// list of Stages, each a set of directed (src, dst) pairs over ranks 0..N-1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftcf::cps {

using Rank = std::uint64_t;

struct Pair {
  Rank src = 0;
  Rank dst = 0;
  friend bool operator==(const Pair&, const Pair&) = default;
  friend auto operator<=>(const Pair&, const Pair&) = default;
};

/// Role of a stage within its sequence, used by the data-content layer:
/// kExchange stages combine (e.g. reduce) incoming data with local state;
/// kFold stages fold non-power-of-two extras onto proxies (combine at dst);
/// kUnfold stages return final results from proxies (replace at dst).
enum class StageRole : std::uint8_t { kExchange, kFold, kUnfold };

/// One communication stage: all pairs exchange simultaneously.
struct Stage {
  std::vector<Pair> pairs;
  StageRole role = StageRole::kExchange;

  [[nodiscard]] bool empty() const noexcept { return pairs.empty(); }
};

/// A full permutation sequence with provenance.
struct Sequence {
  std::string name;
  std::uint64_t num_ranks = 0;
  std::vector<Stage> stages;

  [[nodiscard]] std::size_t num_stages() const noexcept {
    return stages.size();
  }
  [[nodiscard]] std::uint64_t total_pairs() const noexcept {
    std::uint64_t total = 0;
    for (const Stage& st : stages) total += st.pairs.size();
    return total;
  }
};

}  // namespace ftcf::cps
