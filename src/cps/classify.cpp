#include "cps/classify.hpp"

#include <algorithm>
#include <set>

#include "util/expects.hpp"

namespace ftcf::cps {

bool is_partial_permutation(const Stage& stage, std::uint64_t n) {
  std::vector<bool> src_seen(n, false);
  std::vector<bool> dst_seen(n, false);
  for (const Pair& pr : stage.pairs) {
    if (pr.src >= n || pr.dst >= n) return false;
    if (pr.src == pr.dst) return false;
    if (src_seen[pr.src] || dst_seen[pr.dst]) return false;
    src_seen[pr.src] = true;
    dst_seen[pr.dst] = true;
  }
  return true;
}

std::optional<std::uint64_t> constant_displacement(const Stage& stage,
                                                   std::uint64_t n) {
  util::expects(n >= 1, "displacement needs a rank count");
  std::optional<std::uint64_t> d;
  for (const Pair& pr : stage.pairs) {
    const std::uint64_t disp = (pr.dst + n - pr.src % n) % n;
    if (!d) d = disp;
    else if (*d != disp) return std::nullopt;
  }
  return d;
}

std::vector<std::uint64_t> displacement_classes(const Stage& stage,
                                                std::uint64_t n) {
  std::set<std::uint64_t> classes;
  for (const Pair& pr : stage.pairs)
    classes.insert((pr.dst + n - pr.src % n) % n);
  return {classes.begin(), classes.end()};
}

bool is_bidirectional_stage(const Stage& stage) {
  std::set<Pair> pairs(stage.pairs.begin(), stage.pairs.end());
  return std::all_of(stage.pairs.begin(), stage.pairs.end(),
                     [&](const Pair& pr) {
                       return pairs.contains(Pair{pr.dst, pr.src});
                     });
}

Direction sequence_direction(const Sequence& seq) {
  // Unidirectional per the paper: the displacement is the same (and positive)
  // for every pair of a stage. This must be tested before symmetry because a
  // shift by exactly N/2 coincides with its own reverse.
  const bool all_single_class = std::all_of(
      seq.stages.begin(), seq.stages.end(), [&](const Stage& stage) {
        return stage.empty() ||
               constant_displacement(stage, seq.num_ranks).has_value();
      });
  if (all_single_class) return Direction::kUnidirectional;

  const bool all_symmetric =
      std::all_of(seq.stages.begin(), seq.stages.end(), [](const Stage& stage) {
        return stage.empty() || is_bidirectional_stage(stage);
      });
  if (all_symmetric) return Direction::kBidirectional;
  return Direction::kMixed;
}

bool shift_contains(const Sequence& seq) {
  // A stage with constant displacement d over N ranks is by construction a
  // subset of {(i, (i+d) mod N)}: membership only requires the displacement
  // to be constant and nonzero.
  for (const Stage& stage : seq.stages) {
    if (stage.empty()) continue;
    const auto d = constant_displacement(stage, seq.num_ranks);
    if (!d || *d == 0) return false;
  }
  return true;
}

}  // namespace ftcf::cps
