// Churn campaign runner: replay a resolved timeline through the incremental
// repair + re-certification engines, asserting per-event invariants.
//
// Per event the campaign
//   * applies the event to route::IncrementalRepair (dirty-column LFT
//     repair) and feeds the RepairDelta to check::IncrementalCertifier
//     (dirty-flow re-certification);
//   * asserts connectivity agreement: for a deterministic sample of source
//     hosts, the BFS up*/down* oracle (fault::updown_reachable_hosts) must
//     agree with a forwarding-table walk on *every* destination — the
//     degraded chooser is complete for up/down paths, so any disagreement is
//     a routing bug (util::InvariantError);
//   * asserts the channel dependency graph of the repaired tables stays
//     acyclic (deadlock freedom under churn);
//   * optionally (full_oracle) recomputes tables and certificate from
//     scratch and asserts byte-identity — the differential oracle.
//
// Latency goes through ftcf::obs only (FTCF_PROF_SCOPE + optional
// MetricsRegistry); the CampaignReport itself holds nothing wall-clock —
// event times are sim times, all counts are deterministic folds — so
// write_campaign_json is byte-identical at any --threads value.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "check/recertify.hpp"
#include "churn/timeline.hpp"
#include "cps/stage.hpp"
#include "obs/metrics.hpp"
#include "ordering/ordering.hpp"

namespace ftcf::churn {

struct CampaignOptions {
  /// Source hosts sampled per event for the BFS connectivity oracle; every
  /// destination is checked for each sampled source. 0 disables the check;
  /// >= num_hosts checks every pair.
  std::uint64_t sample_srcs = 8;
  /// Base seed for the per-event source samples (util::derive_seed stream).
  std::uint64_t seed = 1;
  /// Re-prove CDG deadlock freedom after every event.
  bool check_cdg = true;
  /// Differential oracle: full table + certificate recompute per event,
  /// asserted equal to the incremental state. Expensive; for tests/CI.
  bool full_oracle = false;
  /// Optional metrics sink (event counters, HSD/unrouted trajectories).
  obs::MetricsRegistry* metrics = nullptr;
};

/// One replayed event with its post-event fabric state.
struct EventOutcome {
  ChurnEvent event;
  std::string label;                   ///< event_to_string rendering
  bool applied = false;                ///< changed some health bit
  std::uint64_t entries_changed = 0;   ///< LFT slots rewritten
  std::uint64_t changed_dests = 0;     ///< recomputed LFT columns
  std::uint64_t rows_filled = 0;       ///< switch-repair fast-path fills
  std::uint64_t flows_rewalked = 0;    ///< re-certified flows
  std::uint64_t stages_touched = 0;
  std::uint64_t stages_changed = 0;    ///< stages whose witness moved
  bool contention_free = false;
  std::uint32_t max_hsd = 0;           ///< max over all stages, post-event
  std::uint64_t unroutable_flows = 0;  ///< total over all stages, post-event
  std::uint64_t unrouted = 0;          ///< (switch, dest) slots unrouted
  std::uint64_t rerouted = 0;          ///< entries off pristine D-Mod-K
  std::uint64_t non_pristine = 0;      ///< dests deviating from pristine
  std::uint64_t reachable_pairs = 0;   ///< sampled pairs the oracle connects
  std::uint64_t unreachable_pairs = 0;
  bool cdg_acyclic = true;
};

struct CampaignReport {
  std::uint64_t num_events = 0;
  std::uint64_t applied_events = 0;
  bool final_contention_free = false;
  std::uint64_t connectivity_checks = 0;  ///< sampled (src, *) oracle sweeps
  std::uint64_t cdg_checks = 0;
  std::uint64_t oracle_checks = 0;        ///< full differential recomputes
  std::vector<EventOutcome> events;
};

/// Replay `timeline` over `fabric`. Throws util::InvariantError on the
/// first violated invariant; a returned report means every check passed.
[[nodiscard]] CampaignReport run_campaign(const topo::Fabric& fabric,
                                          const Timeline& timeline,
                                          const order::NodeOrdering& ordering,
                                          const cps::Sequence& sequence,
                                          const CampaignOptions& options = {});

/// Deterministic campaign document:
/// {"meta":{...},"campaign":{...},"events":[...]} — keys sorted, events in
/// replay order, no timestamps; byte-identical at any thread count.
void write_campaign_json(std::ostream& os, const CampaignReport& report,
                         const std::map<std::string, std::string>& meta = {});

}  // namespace ftcf::churn
