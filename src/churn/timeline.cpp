#include "churn/timeline.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ftcf::churn {

using fault::Fault;
using fault::FaultKind;
using fault::FaultState;
using topo::Fabric;
using topo::NodeId;
using topo::PortId;

namespace {

/// Switch-switch cables identified by their up-going endpoint, ascending
/// PortId — the same universe and order `rand-links` samples from.
std::vector<PortId> switch_cables(const Fabric& fabric) {
  std::vector<PortId> cables;
  for (PortId pid = 0; pid < fabric.num_ports(); ++pid) {
    const topo::Port& pt = fabric.port(pid);
    const topo::Node& n = fabric.node(pt.node);
    if (n.kind != topo::NodeKind::kSwitch) continue;
    if (pt.index < n.num_down_ports) continue;  // count each cable once
    cables.push_back(pid);
  }
  return cables;
}

NodeId resolve_switch(const Fabric& fabric, const std::string& name) {
  const NodeId id = FaultState::resolve_node(fabric, name);
  if (fabric.node(id).kind != topo::NodeKind::kSwitch)
    throw util::SpecError("churn timeline: '" + name +
                          "' is a host, not a switch");
  return id;
}

}  // namespace

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kFailCable:
      return "fail-cable";
    case EventKind::kRepairCable:
      return "repair-cable";
    case EventKind::kFailSwitch:
      return "fail-switch";
    case EventKind::kRepairSwitch:
      return "repair-switch";
  }
  return "unknown";
}

std::string event_to_string(const Fabric& fabric, const ChurnEvent& event) {
  std::string out = event_kind_name(event.kind);
  out += ' ';
  if (event.kind == EventKind::kFailSwitch ||
      event.kind == EventKind::kRepairSwitch) {
    out += fabric.node_name(event.node);
    return out;
  }
  const topo::Port& pt = fabric.port(event.cable);
  const topo::Port& peer = fabric.port(pt.peer);
  out += fabric.node_name(pt.node);
  out += "[port " + std::to_string(pt.index) + "] <-> ";
  out += fabric.node_name(peer.node);
  out += "[port " + std::to_string(peer.index) + ']';
  return out;
}

Timeline resolve_timeline(const Fabric& fabric, const fault::FaultSpec& spec) {
  Timeline timeline;
  for (const Fault& fault : spec.faults) {
    switch (fault.kind) {
      case FaultKind::kLinkDown:
        if (fault.at == 0) {
          timeline.static_spec.faults.push_back(fault);
        } else {
          timeline.events.push_back(
              {fault.at, EventKind::kFailCable,
               FaultState::resolve_cable(fabric, fault.node, fault.port),
               topo::kInvalidNode});
        }
        break;
      case FaultKind::kSwitchDown:
        if (fault.at == 0) {
          timeline.static_spec.faults.push_back(fault);
        } else {
          timeline.events.push_back({fault.at, EventKind::kFailSwitch,
                                     topo::kInvalidPort,
                                     resolve_switch(fabric, fault.node)});
        }
        break;
      case FaultKind::kDegradedRate:
        timeline.static_spec.faults.push_back(fault);
        break;
      case FaultKind::kLinkFlap: {
        const PortId cable =
            FaultState::resolve_cable(fabric, fault.node, fault.port);
        timeline.events.push_back(
            {fault.down_at, EventKind::kFailCable, cable, topo::kInvalidNode});
        if (fault.up_at != sim::kNever)
          timeline.events.push_back({fault.up_at, EventKind::kRepairCable,
                                     cable, topo::kInvalidNode});
        break;
      }
      case FaultKind::kRandomLinks: {
        if (fault.at == 0) {
          timeline.static_spec.faults.push_back(fault);
          break;
        }
        // Same sample rand-links takes, killed at the event time instead.
        std::vector<PortId> cables = switch_cables(fabric);
        util::Xoshiro256 rng(fault.seed);
        util::shuffle(cables, rng);
        const std::uint64_t take =
            std::min<std::uint64_t>(fault.count, cables.size());
        for (std::uint64_t i = 0; i < take; ++i)
          timeline.events.push_back(
              {fault.at, EventKind::kFailCable, cables[i], topo::kInvalidNode});
        break;
      }
      case FaultKind::kRepairLink:
        timeline.events.push_back(
            {fault.at, EventKind::kRepairCable,
             FaultState::resolve_cable(fabric, fault.node, fault.port),
             topo::kInvalidNode});
        break;
      case FaultKind::kRepairSwitch:
        timeline.events.push_back({fault.at, EventKind::kRepairSwitch,
                                   topo::kInvalidPort,
                                   resolve_switch(fabric, fault.node)});
        break;
      case FaultKind::kMtbf: {
        std::vector<PortId> cables = switch_cables(fabric);
        util::Xoshiro256 sampler(util::derive_seed(fault.seed, 0));
        util::shuffle(cables, sampler);
        const std::uint64_t take =
            std::min<std::uint64_t>(fault.count, cables.size());
        const sim::SimTime mtbf = fault.down_at;
        const sim::SimTime mttr = fault.up_at;
        for (std::uint64_t i = 0; i < take; ++i) {
          // Per-cable stream: derive_seed gives cable i an independent
          // generator, so schedules decorrelate across cables and seeds.
          util::Xoshiro256 rng(util::derive_seed(fault.seed, 1 + i));
          sim::SimTime t = 0;
          for (;;) {
            t += 1 + static_cast<sim::SimTime>(
                         rng.below(2 * static_cast<std::uint64_t>(mtbf)));
            if (t > fault.horizon) break;
            timeline.events.push_back(
                {t, EventKind::kFailCable, cables[i], topo::kInvalidNode});
            t += 1 + static_cast<sim::SimTime>(
                         rng.below(2 * static_cast<std::uint64_t>(mttr)));
            if (t > fault.horizon) break;
            timeline.events.push_back(
                {t, EventKind::kRepairCable, cables[i], topo::kInvalidNode});
          }
        }
        break;
      }
    }
  }
  // Time-ascending; stable so same-time events keep their spec order.
  std::stable_sort(
      timeline.events.begin(), timeline.events.end(),
      [](const ChurnEvent& a, const ChurnEvent& b) { return a.at < b.at; });
  return timeline;
}

}  // namespace ftcf::churn
