#include "churn/campaign.hpp"

#include <sstream>

#include "check/certify.hpp"
#include "check/depgraph.hpp"
#include "check/diagnostics.hpp"
#include "fault/connectivity.hpp"
#include "obs/profile.hpp"
#include "routing/incremental.hpp"
#include "routing/trace.hpp"
#include "util/expects.hpp"
#include "util/rng.hpp"

namespace ftcf::churn {

using topo::Fabric;
using topo::NodeId;
using topo::PortId;
using util::ensures;

namespace {

/// Forwarding-table walk: can src actually deliver to dst right now? The
/// chooser never programs an entry over a dead cable and clears the rows of
/// dead switches, so the walk only needs the injection cable's health plus
/// the entry chain.
bool tables_route(const Fabric& fabric, const route::ForwardingTables& tables,
                  const fault::LinkHealth& health, std::uint64_t src,
                  std::uint64_t dst) {
  const NodeId host = fabric.host_node(src);
  const topo::Node& hn = fabric.node(host);
  const PortId inject = fabric.port_id(
      host, hn.num_down_ports + route::host_up_port(fabric, src, dst));
  if (!health.node_up(host) || !health.link_up(inject)) return false;
  NodeId at = fabric.port(fabric.port(inject).peer).node;
  const NodeId dst_node = fabric.host_node(dst);
  const std::size_t max_links = 2ull * fabric.height() + 2;
  for (std::size_t hop = 0; hop <= max_links; ++hop) {
    if (!tables.has_entry(at, dst)) return false;
    const PortId out = fabric.port_id(at, tables.out_port(at, dst));
    at = fabric.port(fabric.port(out).peer).node;
    if (at == dst_node) return true;
  }
  return false;
}

/// BFS-oracle agreement for a deterministic sample of sources. Counts
/// reachable/unreachable pairs into `outcome`; throws on any disagreement.
void check_connectivity(const Fabric& fabric, const route::IncrementalRepair& repair,
                        std::uint64_t sample_srcs, std::uint64_t sample_seed,
                        EventOutcome& outcome) {
  const fault::LinkHealth health = repair.health();
  const std::uint64_t num_hosts = fabric.num_hosts();
  std::vector<std::size_t> srcs;
  if (sample_srcs >= num_hosts) {
    srcs.resize(num_hosts);
    for (std::size_t j = 0; j < num_hosts; ++j) srcs[j] = j;
  } else {
    util::Xoshiro256 rng(sample_seed);
    srcs = util::random_subset(num_hosts, sample_srcs, rng);
  }
  for (const std::size_t src : srcs) {
    const std::vector<std::uint8_t> oracle =
        fault::updown_reachable_hosts(fabric, health, src);
    ensures(static_cast<bool>(oracle[src]) == health.host_up(src),
            "connectivity oracle disagrees with host_up at the source");
    for (std::uint64_t dst = 0; dst < num_hosts; ++dst) {
      if (dst == src) continue;
      const bool routed =
          tables_route(fabric, repair.tables(), health, src, dst);
      ensures(routed == static_cast<bool>(oracle[dst]),
              routed ? "tables route a pair the BFS oracle proves disconnected"
                     : "tables miss a pair the BFS oracle proves connected");
      if (routed)
        ++outcome.reachable_pairs;
      else
        ++outcome.unreachable_pairs;
    }
  }
}

bool cdg_acyclic(const Fabric& fabric, const route::ForwardingTables& tables) {
  const check::ChannelIndex ci = check::switch_channels(fabric);
  const std::vector<std::uint64_t> deps =
      check::build_dependencies(fabric, tables, ci,
                                {.label = "churn.cdg"});
  return check::find_cyclic_sccs(check::build_graph(ci.size(), deps))
             .cyclic_sccs == 0;
}

/// The differential oracle: incremental state must be *identical* to a
/// from-scratch recompute over the same health view.
void check_full_oracle(const Fabric& fabric,
                       const route::IncrementalRepair& repair,
                       const check::IncrementalCertifier& recert,
                       const order::NodeOrdering& ordering,
                       const cps::Sequence& sequence) {
  FTCF_PROF_SCOPE("churn.full_oracle");
  const route::ForwardingTables full =
      route::compute_degraded_dmodk(fabric, repair.health());
  ensures(full == repair.tables(),
          "incremental LFT repair diverged from the full recompute");
  const check::Certificate full_cert =
      check::certify_contention_freedom(fabric, full, ordering, sequence);
  std::ostringstream incremental_json;
  std::ostringstream full_json;
  check::write_certificate_json(incremental_json, recert.certificate());
  check::write_certificate_json(full_json, full_cert);
  ensures(incremental_json.str() == full_json.str(),
          "incremental re-certification diverged from the full certify");
}

}  // namespace

CampaignReport run_campaign(const Fabric& fabric, const Timeline& timeline,
                            const order::NodeOrdering& ordering,
                            const cps::Sequence& sequence,
                            const CampaignOptions& options) {
  FTCF_PROF_SCOPE("churn.campaign");
  const fault::FaultState base(fabric, timeline.static_spec);
  route::IncrementalRepair repair(base);
  check::IncrementalCertifier recert(fabric, repair.tables(), ordering,
                                     sequence);

  CampaignReport report;
  report.num_events = timeline.events.size();
  report.events.reserve(timeline.events.size());

  // Baseline invariants before the first event (sample stream index 0; the
  // i-th event uses index 1 + i).
  {
    EventOutcome baseline;  // scratch: counts are rolled into the report only
    if (options.sample_srcs > 0) {
      check_connectivity(fabric, repair, options.sample_srcs,
                         util::derive_seed(options.seed, 0), baseline);
      ++report.connectivity_checks;
    }
    if (options.check_cdg) {
      ensures(cdg_acyclic(fabric, repair.tables()),
              "baseline tables have a cyclic channel dependency graph");
      ++report.cdg_checks;
    }
  }

  for (std::size_t i = 0; i < timeline.events.size(); ++i) {
    const ChurnEvent& event = timeline.events[i];
    EventOutcome outcome;
    outcome.event = event;
    outcome.label = event_to_string(fabric, event);

    route::RepairDelta delta;
    {
      FTCF_PROF_SCOPE("churn.apply_event");
      switch (event.kind) {
        case EventKind::kFailCable:
          delta = repair.fail_cable(event.cable);
          break;
        case EventKind::kRepairCable:
          delta = repair.repair_cable(event.cable);
          break;
        case EventKind::kFailSwitch:
          delta = repair.fail_switch(event.node);
          break;
        case EventKind::kRepairSwitch:
          delta = repair.repair_switch(event.node);
          break;
      }
    }
    check::CertificateDelta cert_delta;
    {
      FTCF_PROF_SCOPE("churn.recertify_event");
      cert_delta = recert.update(delta);
    }

    outcome.applied = delta.applied;
    outcome.entries_changed = delta.entries_changed;
    outcome.changed_dests = delta.changed_dests.size();
    outcome.rows_filled = delta.row_filled_dests.size();
    outcome.flows_rewalked = cert_delta.flows_rewalked;
    outcome.stages_touched = cert_delta.stages_touched;
    outcome.stages_changed = cert_delta.stages_changed;
    outcome.contention_free = cert_delta.contention_free;
    outcome.unrouted = delta.stats.entries_unrouted;
    outcome.rerouted = delta.stats.entries_rerouted;
    outcome.non_pristine = repair.non_pristine_dests();

    // HSD trajectory from the maintained certificate state (cheap: no
    // blames to build while the fabric stays contention-free).
    const check::Certificate cert = recert.certificate();
    for (const check::StageWitness& w : cert.stages) {
      if (w.max_hsd > outcome.max_hsd) outcome.max_hsd = w.max_hsd;
      outcome.unroutable_flows += w.unroutable_flows;
    }

    {
      FTCF_PROF_SCOPE("churn.invariants");
      if (options.sample_srcs > 0) {
        check_connectivity(fabric, repair, options.sample_srcs,
                           util::derive_seed(options.seed, 1 + i), outcome);
        ++report.connectivity_checks;
      }
      if (options.check_cdg) {
        outcome.cdg_acyclic = cdg_acyclic(fabric, repair.tables());
        ensures(outcome.cdg_acyclic,
                "churn event produced a cyclic channel dependency graph: " +
                    outcome.label);
        ++report.cdg_checks;
      }
      if (options.full_oracle) {
        check_full_oracle(fabric, repair, recert, ordering, sequence);
        ++report.oracle_checks;
      }
    }

    if (delta.applied) ++report.applied_events;
    if (options.metrics != nullptr) {
      obs::MetricsRegistry& m = *options.metrics;
      m.counter("churn.events").inc();
      if (delta.applied) m.counter("churn.events_applied").inc();
      m.counter("churn.entries_changed").inc(delta.entries_changed);
      m.counter("churn.flows_rewalked").inc(cert_delta.flows_rewalked);
      m.series("churn.max_hsd")
          .sample(event.at, static_cast<double>(outcome.max_hsd));
      m.series("churn.unrouted")
          .sample(event.at, static_cast<double>(outcome.unrouted));
      m.series("churn.non_pristine")
          .sample(event.at, static_cast<double>(outcome.non_pristine));
    }
    report.events.push_back(std::move(outcome));
  }

  report.final_contention_free =
      report.events.empty()
          ? recert.certificate().contention_free
          : report.events.back().contention_free;
  return report;
}

void write_campaign_json(std::ostream& os, const CampaignReport& report,
                         const std::map<std::string, std::string>& meta) {
  os << "{\n \"meta\":{";
  bool first = true;
  for (const auto& [key, value] : meta) {
    if (!first) os << ',';
    first = false;
    check::write_json_string(os, key);
    os << ':';
    check::write_json_string(os, value);
  }
  os << "},\n \"campaign\":{\"applied_events\":" << report.applied_events
     << ",\"cdg_checks\":" << report.cdg_checks
     << ",\"connectivity_checks\":" << report.connectivity_checks
     << ",\"contention_free\":"
     << (report.final_contention_free ? "true" : "false")
     << ",\"num_events\":" << report.num_events
     << ",\"oracle_checks\":" << report.oracle_checks << "},\n \"events\":[";
  first = true;
  for (const EventOutcome& e : report.events) {
    os << (first ? "\n  " : ",\n  ");
    first = false;
    os << "{\"applied\":" << (e.applied ? "true" : "false")
       << ",\"at\":" << e.event.at << ",\"cdg_acyclic\":"
       << (e.cdg_acyclic ? "true" : "false")
       << ",\"changed_dests\":" << e.changed_dests << ",\"contention_free\":"
       << (e.contention_free ? "true" : "false")
       << ",\"entries_changed\":" << e.entries_changed
       << ",\"flows_rewalked\":" << e.flows_rewalked << ",\"kind\":\""
       << event_kind_name(e.event.kind) << "\",\"label\":";
    check::write_json_string(os, e.label);
    os << ",\"max_hsd\":" << e.max_hsd << ",\"non_pristine\":" << e.non_pristine
       << ",\"reachable_pairs\":" << e.reachable_pairs
       << ",\"rerouted\":" << e.rerouted << ",\"rows_filled\":" << e.rows_filled
       << ",\"stages_changed\":" << e.stages_changed
       << ",\"stages_touched\":" << e.stages_touched
       << ",\"unreachable_pairs\":" << e.unreachable_pairs
       << ",\"unrouted\":" << e.unrouted
       << ",\"unroutable_flows\":" << e.unroutable_flows << '}';
  }
  os << (report.events.empty() ? "]\n}\n" : "\n ]\n}\n");
}

}  // namespace ftcf::churn
