// Churn timelines: a FaultSpec resolved into a deterministic, time-ordered
// stream of cable/switch fail/repair events.
//
// The fault grammar mixes *static* faults (present from t=0) with *timed*
// ones (`@t=`, flap, repair, mtbf). resolve_timeline splits a spec into
//   * static_spec — the t=0 faults, resolvable by fault::FaultState into the
//     baseline health the churn engine starts from, and
//   * events      — every timed fault and repair, expanded and sorted by
//     event time (ties keep spec order), each resolved to a concrete cable
//     (PortId) or switch (NodeId).
//
// `mtbf:COUNT:MTBF_US:MTTR_US:HORIZON_US:SEED` expands to a random
// alternating fail/repair schedule over COUNT sampled switch-switch cables.
// Sampling uses the same cable universe and shuffle as `rand-links`; every
// cable's event stream draws from its own util::derive_seed(seed, 1 + i)
// generator — never `seed + i`, which would correlate adjacent seeds — so
// the expansion is reproducible and independent per cable. Gap lengths are
// integer draws from [1, 2*MTBF] (mean ~MTBF) and [1, 2*MTTR]; events past
// the horizon are dropped. No floating point, no wall clock: the same spec
// and fabric always resolve to the same timeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/degraded.hpp"
#include "fault/fault_spec.hpp"
#include "topology/fabric.hpp"

namespace ftcf::churn {

enum class EventKind : std::uint8_t {
  kFailCable,
  kRepairCable,
  kFailSwitch,
  kRepairSwitch,
};

[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;

/// One resolved churn event. Cable events carry one endpoint PortId (either
/// endpoint identifies the cable); switch events carry the NodeId.
struct ChurnEvent {
  sim::SimTime at = 0;
  EventKind kind = EventKind::kFailCable;
  topo::PortId cable = topo::kInvalidPort;
  topo::NodeId node = topo::kInvalidNode;
};

/// Render "fail-cable S1_000[port 6] <-> S2_000[port 0]" or
/// "repair-switch S2_003" (no time: reports carry `at` separately).
[[nodiscard]] std::string event_to_string(const topo::Fabric& fabric,
                                          const ChurnEvent& event);

/// A resolved churn timeline: the t=0 baseline plus the event stream.
struct Timeline {
  /// The static faults (link/switch/rand-links at t=0, rate factors) —
  /// resolve with fault::FaultState for the baseline health.
  fault::FaultSpec static_spec;
  /// Timed events, ascending by `at`; equal times keep spec order.
  std::vector<ChurnEvent> events;
};

/// Split and resolve `spec` against `fabric`. Throws util::SpecError when a
/// churn event names an unknown node, an out-of-range port, or targets a
/// host where a switch is required.
[[nodiscard]] Timeline resolve_timeline(const topo::Fabric& fabric,
                                        const fault::FaultSpec& spec);

}  // namespace ftcf::churn
