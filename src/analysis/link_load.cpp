#include "analysis/link_load.hpp"

#include <algorithm>
#include <sstream>

namespace ftcf::analysis {

util::IntHistogram load_histogram(const topo::Fabric& fabric,
                                  const std::vector<std::uint32_t>& loads) {
  util::IntHistogram hist;
  for (topo::PortId pid = 0; pid < loads.size() && pid < fabric.num_ports();
       ++pid) {
    if (loads[pid] > 0) hist.add(loads[pid]);
  }
  return hist;
}

std::vector<LevelLoad> per_level_loads(
    const topo::Fabric& fabric, const std::vector<std::uint32_t>& loads) {
  // Bucket: (level boundary, direction). Boundary l covers links between
  // level l and l+1; a link is upward when it leaves an up-going port.
  struct Bucket {
    std::uint32_t max = 0;
    std::uint64_t sum = 0;
    std::uint64_t used = 0;
    std::uint64_t hot = 0;
  };
  const std::uint32_t h = fabric.height();
  std::vector<Bucket> up(h), down(h);

  for (topo::PortId pid = 0; pid < loads.size(); ++pid) {
    const std::uint32_t load = loads[pid];
    if (load == 0) continue;
    const topo::Port& pt = fabric.port(pid);
    const topo::Node& n = fabric.node(pt.node);
    const bool upward =
        n.kind == topo::NodeKind::kHost || pt.index >= n.num_down_ports;
    const std::uint32_t boundary = upward ? n.level : n.level - 1;
    Bucket& b = (upward ? up : down)[boundary];
    b.max = std::max(b.max, load);
    b.sum += load;
    ++b.used;
    if (load > 1) ++b.hot;
  }

  std::vector<LevelLoad> out;
  for (std::uint32_t l = 0; l < h; ++l) {
    for (const bool upward : {true, false}) {
      const Bucket& b = upward ? up[l] : down[l];
      if (b.used == 0) continue;
      out.push_back(LevelLoad{
          .level = l,
          .upward = upward,
          .max_load = b.max,
          .avg_load = static_cast<double>(b.sum) / static_cast<double>(b.used),
          .used_links = b.used,
          .hot_links = b.hot,
      });
    }
  }
  return out;
}

std::string render_leaf_up_loads(const topo::Fabric& fabric,
                                 const std::vector<std::uint32_t>& loads) {
  std::ostringstream oss;
  const std::uint64_t leaves = fabric.switches_at_level(1);
  for (std::uint64_t leaf = 0; leaf < leaves; ++leaf) {
    const topo::NodeId sw = fabric.switch_node(1, leaf);
    const topo::Node& n = fabric.node(sw);
    oss << fabric.node_name(sw) << " up:";
    for (std::uint32_t q = 0; q < n.num_up_ports; ++q) {
      const topo::PortId pid = fabric.port_id(sw, n.num_down_ports + q);
      oss << ' ' << loads[pid];
    }
    oss << '\n';
  }
  return oss.str();
}

}  // namespace ftcf::analysis
