#include "analysis/hsd.hpp"

#include <algorithm>

#include "util/expects.hpp"

namespace ftcf::analysis {

using topo::Fabric;

HsdAnalyzer::HsdAnalyzer(const Fabric& fabric,
                         const route::ForwardingTables& tables)
    : fabric_(&fabric), tables_(&tables) {
  scratch_.assign(fabric.num_ports(), 0);
}

StageMetrics HsdAnalyzer::analyze_stage(
    std::span<const cps::Pair> host_flows,
    std::vector<std::uint32_t>* link_loads) const {
  std::fill(scratch_.begin(), scratch_.end(), 0u);
  StageMetrics metrics;

  // Inline route walk (same semantics as route::trace_route, without the
  // per-flow allocation): this loop dominates Fig. 3 / Table 3 runtimes.
  // Links are buffered per flow and committed only on delivery, so a flow
  // stranded by a degraded table leaves no partial load behind.
  const std::size_t max_links = 2ull * fabric_->height() + 2;
  std::vector<topo::PortId> walked;
  walked.reserve(max_links + 1);
  for (const cps::Pair& flow : host_flows) {
    if (flow.src == flow.dst) continue;
    ++metrics.num_flows;
    const topo::NodeId dst_node = fabric_->host_node(flow.dst);
    topo::NodeId at = fabric_->host_node(flow.src);
    std::uint32_t out_index = fabric_->node(at).num_down_ports +
                              route::host_up_port(*fabric_, flow.src, flow.dst);
    walked.clear();
    for (std::size_t hop = 0;; ++hop) {
      util::ensures(hop <= max_links, "forwarding tables loop");
      const topo::PortId out = fabric_->port_id(at, out_index);
      walked.push_back(out);
      at = fabric_->port(fabric_->port(out).peer).node;
      if (at == dst_node) {
        for (const topo::PortId pid : walked) ++scratch_[pid];
        break;
      }
      if (tolerate_unroutable_ && !tables_->has_entry(at, flow.dst)) {
        ++metrics.unroutable_flows;
        break;
      }
      out_index = tables_->out_port(at, flow.dst);
    }
  }

  for (topo::PortId pid = 0; pid < scratch_.size(); ++pid) {
    const std::uint32_t load = scratch_[pid];
    if (load == 0) continue;
    if (load > metrics.max_hsd) {
      metrics.max_hsd = load;
      metrics.hottest_port = pid;
    }
    const topo::Port& pt = fabric_->port(pid);
    const topo::Node& n = fabric_->node(pt.node);
    if (n.kind == topo::NodeKind::kHost) {
      metrics.max_host_hsd = std::max(metrics.max_host_hsd, load);  // injection
    } else if (pt.index >= n.num_down_ports) {
      metrics.max_up_hsd = std::max(metrics.max_up_hsd, load);
    } else {
      // All switch down-going ports count for Theorem 2; the leaf->host
      // delivery ports additionally count as host (NIC) links.
      metrics.max_down_hsd = std::max(metrics.max_down_hsd, load);
      const topo::Port& peer = fabric_->port(pt.peer);
      if (fabric_->node(peer.node).kind == topo::NodeKind::kHost)
        metrics.max_host_hsd = std::max(metrics.max_host_hsd, load);
    }
  }

  if (link_loads != nullptr) *link_loads = scratch_;
  return metrics;
}

SequenceMetrics HsdAnalyzer::analyze_sequence(
    const cps::Sequence& seq, const order::NodeOrdering& ordering) const {
  SequenceMetrics out;
  out.per_stage_max.reserve(seq.stages.size());
  double sum = 0.0;
  for (const cps::Stage& stage : seq.stages) {
    if (stage.empty()) {
      out.per_stage_max.push_back(0);
      continue;
    }
    const auto flows = ordering.map_stage(stage);
    const StageMetrics metrics = analyze_stage(flows);
    out.per_stage_max.push_back(metrics.max_hsd);
    out.worst_stage_hsd = std::max(out.worst_stage_hsd, metrics.max_hsd);
    out.worst_up_hsd = std::max(out.worst_up_hsd, metrics.max_up_hsd);
    out.worst_down_hsd = std::max(out.worst_down_hsd, metrics.max_down_hsd);
    out.unroutable_flows += metrics.unroutable_flows;
    sum += metrics.max_hsd;
  }
  const std::size_t counted =
      static_cast<std::size_t>(std::count_if(out.per_stage_max.begin(),
                                             out.per_stage_max.end(),
                                             [](std::uint32_t m) { return m > 0; }));
  out.avg_max_hsd = counted ? sum / static_cast<double>(counted) : 0.0;
  return out;
}

util::Accumulator random_order_hsd_ensemble(
    const Fabric& fabric, const route::ForwardingTables& tables,
    const cps::Sequence& seq, std::uint32_t trials, std::uint64_t seed) {
  const HsdAnalyzer analyzer(fabric, tables);
  util::Accumulator acc;
  for (std::uint32_t t = 0; t < trials; ++t) {
    const auto ordering = order::NodeOrdering::random(fabric, seed + t);
    acc.add(analyzer.analyze_sequence(seq, ordering).avg_max_hsd);
  }
  return acc;
}

}  // namespace ftcf::analysis
