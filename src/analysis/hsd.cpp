#include "analysis/hsd.hpp"

#include <algorithm>

#include "util/expects.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::analysis {

using topo::Fabric;

HsdAnalyzer::HsdAnalyzer(const Fabric& fabric,
                         const route::ForwardingTables& tables)
    : fabric_(&fabric), tables_(&tables) {}

StageMetrics HsdAnalyzer::analyze_stage(
    std::span<const cps::Pair> host_flows, Workspace& workspace,
    std::vector<std::uint32_t>* link_loads) const {
  std::vector<std::uint32_t>& loads = workspace.link_loads_;
  loads.assign(fabric_->num_ports(), 0u);
  StageMetrics metrics;

  // Inline route walk (same semantics as route::trace_route, without the
  // per-flow allocation): this loop dominates Fig. 3 / Table 3 runtimes.
  // Links are buffered per flow and committed only on delivery, so a flow
  // stranded by a degraded table leaves no partial load behind.
  const std::size_t max_links = 2ull * fabric_->height() + 2;
  std::vector<topo::PortId>& walked = workspace.walked_;
  walked.reserve(max_links + 1);
  for (const cps::Pair& flow : host_flows) {
    if (flow.src == flow.dst) continue;
    ++metrics.num_flows;
    const topo::NodeId dst_node = fabric_->host_node(flow.dst);
    topo::NodeId at = fabric_->host_node(flow.src);
    std::uint32_t out_index = fabric_->node(at).num_down_ports +
                              route::host_up_port(*fabric_, flow.src, flow.dst);
    walked.clear();
    for (std::size_t hop = 0;; ++hop) {
      util::ensures(hop <= max_links, "forwarding tables loop");
      const topo::PortId out = fabric_->port_id(at, out_index);
      walked.push_back(out);
      at = fabric_->port(fabric_->port(out).peer).node;
      if (at == dst_node) {
        for (const topo::PortId pid : walked) ++loads[pid];
        break;
      }
      if (tolerate_unroutable_ && !tables_->has_entry(at, flow.dst)) {
        ++metrics.unroutable_flows;
        break;
      }
      out_index = tables_->out_port(at, flow.dst);
    }
  }

  for (topo::PortId pid = 0; pid < loads.size(); ++pid) {
    const std::uint32_t load = loads[pid];
    if (load == 0) continue;
    if (load > metrics.max_hsd) {
      metrics.max_hsd = load;
      metrics.hottest_port = pid;
    }
    const topo::Port& pt = fabric_->port(pid);
    const topo::Node& n = fabric_->node(pt.node);
    if (n.kind == topo::NodeKind::kHost) {
      metrics.max_host_hsd = std::max(metrics.max_host_hsd, load);  // injection
    } else if (pt.index >= n.num_down_ports) {
      metrics.max_up_hsd = std::max(metrics.max_up_hsd, load);
    } else {
      // All switch down-going ports count for Theorem 2; the leaf->host
      // delivery ports additionally count as host (NIC) links.
      metrics.max_down_hsd = std::max(metrics.max_down_hsd, load);
      const topo::Port& peer = fabric_->port(pt.peer);
      if (fabric_->node(peer.node).kind == topo::NodeKind::kHost)
        metrics.max_host_hsd = std::max(metrics.max_host_hsd, load);
    }
  }

  if (link_loads != nullptr) *link_loads = loads;
  return metrics;
}

StageMetrics HsdAnalyzer::analyze_stage(
    std::span<const cps::Pair> host_flows,
    std::vector<std::uint32_t>* link_loads) const {
  Workspace workspace;
  return analyze_stage(host_flows, workspace, link_loads);
}

SequenceMetrics HsdAnalyzer::analyze_sequence(
    const cps::Sequence& seq, const order::NodeOrdering& ordering) const {
  const std::size_t num_stages = seq.stages.size();
  const par::ForOptions options{.threads = 0, .grain = 1, .label = "hsd.stage"};
  std::vector<Workspace> workspaces(par::region_width(num_stages, options));
  std::vector<StageMetrics> per_stage(num_stages);
  par::parallel_for(
      num_stages,
      [&](std::size_t s, std::uint32_t worker) {
        const cps::Stage& stage = seq.stages[s];
        if (stage.empty()) return;  // StageMetrics{} stays all-zero
        const auto flows = ordering.map_stage(stage);
        per_stage[s] = analyze_stage(flows, workspaces[worker]);
      },
      options);

  // Serial fold in stage order: byte-identical for any thread count.
  SequenceMetrics out;
  out.per_stage_max.reserve(num_stages);
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t s = 0; s < num_stages; ++s) {
    const StageMetrics& metrics = per_stage[s];
    out.per_stage_max.push_back(metrics.max_hsd);
    out.worst_stage_hsd = std::max(out.worst_stage_hsd, metrics.max_hsd);
    out.worst_up_hsd = std::max(out.worst_up_hsd, metrics.max_up_hsd);
    out.worst_down_hsd = std::max(out.worst_down_hsd, metrics.max_down_hsd);
    out.unroutable_flows += metrics.unroutable_flows;
    if (seq.stages[s].empty()) continue;
    sum += metrics.max_hsd;
    if (metrics.max_hsd > 0) ++counted;
  }
  out.avg_max_hsd = counted ? sum / static_cast<double>(counted) : 0.0;
  return out;
}

util::Accumulator random_order_hsd_ensemble(
    const Fabric& fabric, const route::ForwardingTables& tables,
    const cps::Sequence& seq, std::uint32_t trials, std::uint64_t seed) {
  const HsdAnalyzer analyzer(fabric, tables);

  // Fixed-size trial blocks, independent of the thread count: block b owns
  // trials [b*kBlock, ...); each task accumulates its block in trial order
  // and the block accumulators merge in block order below, so the ensemble
  // statistics do not depend on how blocks were scheduled over threads.
  constexpr std::uint32_t kBlock = 4;
  const std::size_t num_blocks = (trials + kBlock - 1) / kBlock;
  const auto block_stats = par::parallel_map(
      num_blocks,
      [&](std::size_t block) {
        util::Accumulator acc;
        const std::uint32_t begin = static_cast<std::uint32_t>(block) * kBlock;
        const std::uint32_t end = std::min(trials, begin + kBlock);
        for (std::uint32_t t = begin; t < end; ++t) {
          const auto ordering =
              order::NodeOrdering::random(fabric, util::derive_seed(seed, t));
          acc.add(analyzer.analyze_sequence(seq, ordering).avg_max_hsd);
        }
        return acc;
      },
      par::ForOptions{.threads = 0, .grain = 1, .label = "hsd.ensemble"});

  util::Accumulator acc;
  for (const util::Accumulator& block : block_stats) acc.merge(block);
  return acc;
}

}  // namespace ftcf::analysis
