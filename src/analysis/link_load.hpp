// Link-load reporting helpers: histograms over the per-port flow counts and
// per-level breakdowns, used by Fig. 1 style demonstrations and diagnostics.
#pragma once

#include <string>
#include <vector>

#include "analysis/hsd.hpp"

namespace ftcf::analysis {

/// Histogram of flow counts over all *used* directed links.
[[nodiscard]] util::IntHistogram load_histogram(
    const topo::Fabric& fabric, const std::vector<std::uint32_t>& link_loads);

struct LevelLoad {
  std::uint32_t level = 0;      ///< boundary: links between level and level+1
  bool upward = false;          ///< direction of the counted links
  std::uint32_t max_load = 0;
  double avg_load = 0.0;        ///< over used links only
  std::uint64_t used_links = 0;
  std::uint64_t hot_links = 0;  ///< links with load > 1
};

/// Per level-boundary and direction load summary.
[[nodiscard]] std::vector<LevelLoad> per_level_loads(
    const topo::Fabric& fabric, const std::vector<std::uint32_t>& link_loads);

/// Render the loads of every up-going leaf-switch link, one leaf per line —
/// the exact picture of paper Fig. 1's top row of numbers.
[[nodiscard]] std::string render_leaf_up_loads(
    const topo::Fabric& fabric, const std::vector<std::uint32_t>& link_loads);

}  // namespace ftcf::analysis
