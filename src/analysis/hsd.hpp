// Hot-Spot-Degree analysis (paper §II and §VII; the ibdm-based tool).
//
// Given a topology, routing tables and a traffic stage (a set of src->dst
// host flows), count the flows crossing every directed link. The Hot-Spot
// Degree of a link is that count; the HSD of a stage is the maximum over all
// links; the HSD of a collective is the average of the per-stage maxima
// (matching the paper: "the average of the maximal hot-spot-degree of all
// links, over all stages of the collective algorithm"). HSD == 1 everywhere
// means congestion-free.
//
// Thread safety: HsdAnalyzer holds only pointers to the (const) fabric and
// tables; all per-call state lives in an explicit Workspace, so one analyzer
// may be shared by any number of threads as long as each thread brings its
// own Workspace (the workspace-less overloads allocate a fresh one per
// call). analyze_sequence and random_order_hsd_ensemble fan out over the
// ftcf::par default thread count and merge results in stage/trial order, so
// their output is byte-identical for every thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cps/stage.hpp"
#include "ordering/ordering.hpp"
#include "routing/trace.hpp"
#include "util/stats.hpp"

namespace ftcf::analysis {

struct StageMetrics {
  std::uint32_t max_hsd = 0;         ///< max flows on any directed link
  std::uint32_t max_up_hsd = 0;      ///< max over up-going links (Theorem 1)
  std::uint32_t max_down_hsd = 0;    ///< max over down-going links (Theorem 2)
  std::uint32_t max_host_hsd = 0;    ///< max over NIC injection/delivery links
  std::uint64_t num_flows = 0;       ///< routed flows (src != dst)
  std::uint64_t unroutable_flows = 0;  ///< flows skipped (degraded tables)
  topo::PortId hottest_port = topo::kInvalidPort;
};

struct SequenceMetrics {
  double avg_max_hsd = 0.0;              ///< the paper's headline metric
  std::uint32_t worst_stage_hsd = 0;     ///< max over stages
  std::uint32_t worst_up_hsd = 0;
  std::uint32_t worst_down_hsd = 0;
  std::uint64_t unroutable_flows = 0;    ///< total over stages (degraded)
  std::vector<std::uint32_t> per_stage_max;
};

class HsdAnalyzer {
 public:
  /// Reusable per-call state (per-port counters and the route-walk buffer).
  /// One per thread: a Workspace must not be used by two concurrent
  /// analyze_stage calls, but may be reused across calls and analyzers.
  class Workspace {
   public:
    Workspace() = default;

   private:
    friend class HsdAnalyzer;
    std::vector<std::uint32_t> link_loads_;
    std::vector<topo::PortId> walked_;
  };

  HsdAnalyzer(const topo::Fabric& fabric,
              const route::ForwardingTables& tables);

  /// Degraded-fabric mode: flows that hit an unprogrammed LFT entry are
  /// counted in `unroutable_flows` and contribute no link load, instead of
  /// raising an error. Default off — on complete tables an unprogrammed
  /// entry is a bug and should fail loudly.
  void set_tolerate_unroutable(bool tolerate) noexcept {
    tolerate_unroutable_ = tolerate;
  }

  /// Analyze one stage given flows already in host-index space, using the
  /// caller's workspace (race-free under concurrent calls with distinct
  /// workspaces). When `link_loads` is non-null it receives the per-port
  /// flow counts (indexed by PortId).
  [[nodiscard]] StageMetrics analyze_stage(
      std::span<const cps::Pair> host_flows, Workspace& workspace,
      std::vector<std::uint32_t>* link_loads = nullptr) const;

  /// Convenience overload with a private, freshly-allocated workspace.
  /// Hot loops should hold a Workspace and use the overload above.
  [[nodiscard]] StageMetrics analyze_stage(
      std::span<const cps::Pair> host_flows,
      std::vector<std::uint32_t>* link_loads = nullptr) const;

  /// Analyze a full CPS under a node ordering. Stages are analyzed in
  /// parallel (ftcf::par) with one workspace per worker; metrics are folded
  /// in stage order, so the result is identical for any thread count.
  [[nodiscard]] SequenceMetrics analyze_sequence(
      const cps::Sequence& seq, const order::NodeOrdering& ordering) const;

  [[nodiscard]] const topo::Fabric& fabric() const noexcept { return *fabric_; }

 private:
  const topo::Fabric* fabric_;
  const route::ForwardingTables* tables_;
  bool tolerate_unroutable_ = false;
};

/// Fig. 3 ensemble: the sequence's avg-max-HSD under `trials` random
/// orderings; the returned accumulator carries mean/min/max across trials.
/// Trial t draws its ordering from util::derive_seed(seed, t), so ensembles
/// for different base seeds share no trials. Trials run in parallel in
/// fixed blocks whose per-block accumulators merge in block order — the
/// statistics are byte-identical for any thread count.
[[nodiscard]] util::Accumulator random_order_hsd_ensemble(
    const topo::Fabric& fabric, const route::ForwardingTables& tables,
    const cps::Sequence& seq, std::uint32_t trials, std::uint64_t seed);

}  // namespace ftcf::analysis
