// LFT-level validation: reachability and up*/down* deadlock-freedom on
// complete, corrupted, and degraded forwarding tables.
#include "routing/validate.hpp"

#include <gtest/gtest.h>

#include "fault/fault_spec.hpp"
#include "routing/degraded.hpp"
#include "routing/dmodk.hpp"
#include "topology/presets.hpp"

namespace ftcf::route {
namespace {

using fault::FaultState;
using fault::parse_faults;
using topo::Fabric;

Fabric fig4b() { return Fabric(topo::fig4b_pgft16()); }

TEST(ValidateLft, PristineDmodkFullyReachable) {
  const Fabric fabric = fig4b();
  const ForwardingTables tables = DModKRouter().compute(fabric);
  const LftAudit audit = validate_lft(fabric, tables);
  EXPECT_TRUE(audit.all_reachable())
      << (audit.problems.empty() ? "unreachable pairs"
                                 : audit.problems.front());
  EXPECT_EQ(audit.pairs_checked, 16u * 15u);
  EXPECT_EQ(audit.pairs_reachable, audit.pairs_checked);
}

TEST(ValidateLft, EmptyTablesAreTypedUnreachability) {
  const Fabric fabric = fig4b();
  const ForwardingTables tables(fabric);  // nothing programmed
  const LftAudit audit = validate_lft(fabric, tables);
  EXPECT_TRUE(audit.clean());  // unrouted is data, not a problem
  EXPECT_FALSE(audit.all_reachable());
  EXPECT_EQ(audit.pairs_reachable, 0u);
  EXPECT_EQ(audit.unreachable.size(), audit.pairs_checked);

  const RouteWalk walk = walk_route(fabric, tables, 0, 5);
  EXPECT_EQ(walk.status, RouteStatus::kUnrouted);
}

TEST(ValidateLft, UpTurnAfterDescentIsAProblem) {
  const Fabric fabric = fig4b();
  ForwardingTables tables = DModKRouter().compute(fabric);
  // Host 5 lives under leaf S1_1; point that leaf's entry for 5 upward.
  const topo::NodeId leaf =
      fabric.port(fabric.port(fabric.port_id(fabric.host_node(5), 0)).peer)
          .node;
  const topo::Node& n = fabric.node(leaf);
  tables.set_out_port(leaf, 5, n.num_down_ports);  // first up port
  EXPECT_EQ(walk_route(fabric, tables, 0, 5).status, RouteStatus::kNotUpDown);
  const LftAudit audit = validate_lft(fabric, tables);
  EXPECT_FALSE(audit.clean());
}

TEST(ValidateLft, ForeignDeliveryIsAProblem) {
  const Fabric fabric = fig4b();
  ForwardingTables tables = DModKRouter().compute(fabric);
  // Deliver host 5's traffic to its neighbor under the same leaf.
  const topo::NodeId leaf =
      fabric.port(fabric.port(fabric.port_id(fabric.host_node(5), 0)).peer)
          .node;
  tables.set_out_port(leaf, 5, tables.out_port(leaf, 4));
  EXPECT_EQ(walk_route(fabric, tables, 0, 5).status,
            RouteStatus::kForeignHost);
  EXPECT_FALSE(validate_lft(fabric, tables).clean());
}

TEST(ValidateLft, PristineTablesOnDegradedFabricCrossDeadLinks) {
  const Fabric fabric = fig4b();
  const ForwardingTables tables = DModKRouter().compute(fabric);
  // Kill one leaf up-cable; the pristine tables still route through it.
  const FaultState faults(fabric, parse_faults("link:S1_0:4"));
  const LftAudit audit = validate_lft(fabric, tables, &faults);
  EXPECT_FALSE(audit.clean());
}

TEST(ValidateLft, DegradedTablesRouteAroundADeadCable) {
  const Fabric fabric = fig4b();
  const FaultState faults(fabric, parse_faults("link:S1_0:4"));
  DegradedStats stats;
  const ForwardingTables tables = compute_degraded_dmodk(faults, &stats);
  EXPECT_GT(stats.entries_rerouted, 0u);
  EXPECT_EQ(stats.entries_unrouted, 0u);
  const LftAudit audit = validate_lft(fabric, tables, &faults);
  EXPECT_TRUE(audit.all_reachable());
}

TEST(ValidateLft, DeadHostCableStrandsOnlyThatHost) {
  const Fabric fabric = fig4b();
  const FaultState faults(fabric, parse_faults("link:H3:0"));
  EXPECT_FALSE(faults.host_up(3));
  EXPECT_EQ(faults.surviving_hosts().size(), 15u);
  DegradedStats stats;
  const ForwardingTables tables = compute_degraded_dmodk(faults, &stats);
  EXPECT_EQ(stats.unreachable_hosts, 1u);
  // Among surviving hosts the degraded tables stay fully reachable.
  const LftAudit audit = validate_lft(fabric, tables, &faults);
  EXPECT_TRUE(audit.all_reachable());
  EXPECT_EQ(audit.pairs_checked, 15u * 14u);
}

TEST(ValidateLft, SelfDestinedWalkIsTriviallyOk) {
  const Fabric fabric = fig4b();
  const ForwardingTables tables = DModKRouter().compute(fabric);
  const RouteWalk walk = walk_route(fabric, tables, 7, 7);
  EXPECT_EQ(walk.status, RouteStatus::kOk);
  EXPECT_TRUE(walk.links.empty()) << "a self-route crosses no links";
  // And the audit never counts self pairs.
  const LftAudit audit = validate_lft(fabric, tables);
  EXPECT_EQ(audit.pairs_checked, 16u * 15u);
}

TEST(ValidateLft, SingleSwitchFabricIsCleanAndCycleFree) {
  const Fabric fabric(topo::parse_pgft("PGFT(1; 4; 1; 1)"));
  const ForwardingTables tables = DModKRouter().compute(fabric);
  // No switch-to-switch channels exist, so the CDG verdict is trivially
  // acyclic and the walks (one hop up, one hop down) must agree.
  const CdgVerdict verdict{true, 0};
  const LftAudit audit =
      validate_lft(fabric, tables, nullptr, /*exhaustive_limit=*/512, &verdict);
  EXPECT_TRUE(audit.all_reachable());
  EXPECT_FALSE(audit.cdg_mismatch);
  EXPECT_EQ(audit.deadlock_free, std::optional<bool>(true));
  EXPECT_EQ(audit.first_problem(), "");
}

TEST(ValidateLft, CdgVerdictFoldsIntoCleanAndFirstProblem) {
  const Fabric fabric = fig4b();
  const ForwardingTables tables = DModKRouter().compute(fabric);
  // Pretend a cycle was found among entries no walk exercises: the audit has
  // no walk problems but must still fail clean() and synthesize a message.
  const CdgVerdict cyclic{false, 3};
  const LftAudit audit =
      validate_lft(fabric, tables, nullptr, 512, &cyclic);
  EXPECT_TRUE(audit.problems.empty());
  EXPECT_FALSE(audit.clean());
  EXPECT_NE(audit.first_problem().find("deadlock"), std::string::npos);
}

TEST(ValidateLft, UpAfterDownAgreesWithTheCdg) {
  const Fabric fabric = fig4b();
  ForwardingTables tables = DModKRouter().compute(fabric);
  const topo::NodeId leaf =
      fabric.port(fabric.port(fabric.port_id(fabric.host_node(5), 0)).peer)
          .node;
  tables.set_out_port(leaf, 5, fabric.node(leaf).num_down_ports);

  // A consistent CDG sees the down->up dependency the walk trips over.
  const CdgVerdict consistent{false, 1};
  const LftAudit agree =
      validate_lft(fabric, tables, nullptr, 512, &consistent);
  EXPECT_GT(agree.not_updown_routes, 0u);
  EXPECT_FALSE(agree.cdg_mismatch);
  EXPECT_FALSE(agree.clean());

  // A verdict claiming zero down->up dependencies contradicts the walks:
  // the cross-check must flag the analyses as inconsistent.
  const CdgVerdict contradicting{true, 0};
  const LftAudit mismatch =
      validate_lft(fabric, tables, nullptr, 512, &contradicting);
  EXPECT_TRUE(mismatch.cdg_mismatch);
  ASSERT_FALSE(mismatch.problems.empty());
  EXPECT_EQ(mismatch.problems.back().rfind("walk/CDG", 0), 0u)
      << mismatch.problems.back();
}

TEST(ValidateLft, UnroutedEntriesStayTypedUnderTheCdgVerdict) {
  const Fabric fabric = fig4b();
  const ForwardingTables tables(fabric);  // nothing programmed
  const CdgVerdict verdict{true, 0};  // empty tables: no dependencies at all
  const LftAudit audit = validate_lft(fabric, tables, nullptr, 512, &verdict);
  EXPECT_TRUE(audit.clean()) << "unrouted is data, not a deadlock";
  EXPECT_FALSE(audit.all_reachable());
  EXPECT_EQ(audit.not_updown_routes, 0u);
  EXPECT_FALSE(audit.cdg_mismatch);
}

TEST(ValidateLft, DeadSpineOnThreeLevelRlft) {
  const Fabric fabric{topo::rlft3_top(4, 2)};  // 32 hosts, 3 levels
  const FaultState faults(fabric, parse_faults("switch:spine0"));
  DegradedStats stats;
  const ForwardingTables tables = compute_degraded_dmodk(faults, &stats);
  EXPECT_GT(stats.entries_rerouted, 0u);
  const LftAudit audit = validate_lft(fabric, tables, &faults);
  EXPECT_TRUE(audit.all_reachable())
      << (audit.problems.empty() ? "unreachable pairs"
                                 : audit.problems.front());
}

}  // namespace
}  // namespace ftcf::route
