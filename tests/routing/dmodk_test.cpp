#include "routing/dmodk.hpp"

#include <gtest/gtest.h>

#include <set>

#include "routing/trace.hpp"
#include "topology/presets.hpp"

namespace ftcf::route {
namespace {

using topo::Fabric;
using topo::PgftSpec;

TEST(DModK, UpPortFormulaMatchesEq1AtLeafLevel) {
  // At a leaf (level 1) of an RLFT (w1 = 1): q = j mod (w2 * p2).
  const PgftSpec spec = topo::paper_cluster(324);  // w2*p2 = 18
  for (std::uint64_t j = 0; j < spec.num_hosts(); ++j)
    EXPECT_EQ(DModKRouter::up_port_formula(spec, 1, j), j % 18);
}

TEST(DModK, UpPortFormulaDividesAtHigherLevels) {
  const PgftSpec spec({2, 2, 4}, {1, 2, 2}, {1, 1, 1});  // tiny 3-level RLFT
  // Level 2: q = floor(j / (w1*w2)) mod (w3*p3) = floor(j/2) mod 2.
  for (std::uint64_t j = 0; j < spec.num_hosts(); ++j)
    EXPECT_EQ(DModKRouter::up_port_formula(spec, 2, j), (j / 2) % 2);
}

TEST(DModK, DownRailIsConsistentWithUpRail) {
  // The rail used descending level l must equal the rail the up-path picks
  // ascending into level l, so theorem 2's one-destination-per-down-port
  // argument goes through.
  const PgftSpec spec = topo::fig4b_pgft16();  // p2 = 2: rails exist
  for (std::uint64_t j = 0; j < spec.num_hosts(); ++j) {
    const std::uint32_t q = DModKRouter::up_port_formula(spec, 1, j);
    EXPECT_EQ(DModKRouter::down_rail_formula(spec, 2, j), q / spec.w(2));
  }
}

TEST(DModK, TablesAreCompleteOnPresets) {
  for (const std::uint64_t n : {16ull, 128ull, 324ull}) {
    const Fabric fabric(topo::paper_cluster(n));
    const ForwardingTables tables = DModKRouter{}.compute(fabric);
    EXPECT_TRUE(tables.complete());
  }
}

TEST(DModK, EveryPairIsRouted) {
  const Fabric fabric(topo::paper_cluster(128));
  const ForwardingTables tables = DModKRouter{}.compute(fabric);
  for (std::uint64_t s = 0; s < fabric.num_hosts(); s += 7) {
    for (std::uint64_t d = 0; d < fabric.num_hosts(); ++d) {
      if (s == d) continue;
      const auto links = trace_route(fabric, tables, s, d);
      ASSERT_FALSE(links.empty());
      // Last link must deliver into the destination host.
      const topo::Port& last = fabric.port(links.back());
      EXPECT_EQ(fabric.port(last.peer).node, fabric.host_node(d));
    }
  }
}

TEST(DModK, IntraLeafRoutesStayTwoHops) {
  const Fabric fabric(topo::paper_cluster(324));
  const ForwardingTables tables = DModKRouter{}.compute(fabric);
  // Hosts 0 and 1 share a leaf: host -> leaf -> host = 2 links.
  EXPECT_EQ(trace_route(fabric, tables, 0, 1).size(), 2u);
  // Hosts 0 and 323 are in different leaves: 4 links on a 2-level tree.
  EXPECT_EQ(trace_route(fabric, tables, 0, 323).size(), 4u);
}

TEST(DModK, SingleTopSwitchPerDestination) {
  // Lemma 5: all traffic towards a destination crosses one top switch.
  const Fabric fabric(topo::rlft3_top(2, 2));  // 8 hosts, 3 levels
  const ForwardingTables tables = DModKRouter{}.compute(fabric);
  for (std::uint64_t d = 0; d < fabric.num_hosts(); ++d) {
    std::set<topo::NodeId> tops;
    for (std::uint64_t s = 0; s < fabric.num_hosts(); ++s) {
      if (s == d) continue;
      for (const topo::PortId pid : trace_route(fabric, tables, s, d)) {
        const topo::NodeId node = fabric.port(pid).node;
        if (fabric.node(node).level == fabric.height()) tops.insert(node);
      }
    }
    EXPECT_LE(tops.size(), 1u) << "destination " << d;
  }
}

TEST(DModK, DownPortsServeOneDestinationEach) {
  // Theorem 2's static form: among the destinations whose traffic actually
  // descends through a switch (one peak top switch per destination, lemma 5),
  // each uses a distinct down-going port. Destinations routed through *other*
  // peaks never descend here, so only realized down-chains are compared.
  for (const auto& spec :
       {topo::fig4b_pgft16(), topo::paper_cluster(128),
        PgftSpec({2, 2, 4}, {1, 2, 2}, {1, 1, 1})}) {
    const Fabric fabric(spec);
    const ForwardingTables tables = DModKRouter{}.compute(fabric);
    // down_users[port] = destination observed descending through that port.
    std::vector<std::uint64_t> down_users(fabric.num_ports(),
                                          static_cast<std::uint64_t>(-1));
    for (std::uint64_t d = 0; d < fabric.num_hosts(); ++d) {
      for (std::uint64_t s = 0; s < fabric.num_hosts(); s += 5) {
        if (s == d) continue;
        for (const topo::PortId pid : trace_route(fabric, tables, s, d)) {
          const topo::Port& pt = fabric.port(pid);
          const topo::Node& n = fabric.node(pt.node);
          const bool down = n.kind == topo::NodeKind::kSwitch &&
                            pt.index < n.num_down_ports;
          if (!down) continue;
          auto& user = down_users[pid];
          EXPECT_TRUE(user == static_cast<std::uint64_t>(-1) || user == d)
              << "down port of " << fabric.node_name(pt.node)
              << " shared by destinations " << user << " and " << d << " ("
              << spec.to_string() << ")";
          user = d;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ftcf::route
