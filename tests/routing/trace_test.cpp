#include "routing/trace.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

#include "routing/dmodk.hpp"
#include "routing/validate.hpp"
#include "topology/presets.hpp"

namespace ftcf::route {
namespace {

using topo::Fabric;

TEST(Trace, SelfRouteIsEmpty) {
  const Fabric fabric(topo::fig4b_pgft16());
  const ForwardingTables tables = DModKRouter{}.compute(fabric);
  EXPECT_TRUE(trace_route(fabric, tables, 3, 3).empty());
}

TEST(Trace, FirstLinkLeavesTheSourceHost) {
  const Fabric fabric(topo::fig4b_pgft16());
  const ForwardingTables tables = DModKRouter{}.compute(fabric);
  const auto links = trace_route(fabric, tables, 2, 9);
  ASSERT_FALSE(links.empty());
  EXPECT_EQ(fabric.port(links.front()).node, fabric.host_node(2));
}

TEST(Trace, HopsCountExcludesHostLink) {
  const Fabric fabric(topo::fig4b_pgft16());
  const ForwardingTables tables = DModKRouter{}.compute(fabric);
  EXPECT_EQ(route_hops(fabric, tables, 0, 1), 1u);   // via shared leaf
  EXPECT_EQ(route_hops(fabric, tables, 0, 15), 3u);  // up to spine and down
  EXPECT_EQ(route_hops(fabric, tables, 0, 0), 0u);
}

TEST(Trace, UpDownPropertyHoldsOnDModK) {
  const Fabric fabric(topo::paper_cluster(324));
  const ForwardingTables tables = DModKRouter{}.compute(fabric);
  const auto report = validate_routing(fabric, tables, /*exhaustive_limit=*/400);
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? ""
                                                     : report.problems.front());
}

TEST(Trace, LoopingTablesAreDetected) {
  const Fabric fabric(topo::fig4b_pgft16());
  ForwardingTables tables = DModKRouter{}.compute(fabric);
  // Sabotage: leaf of host 0 bounces destination 15 back down to host 0's
  // port, creating a ping-pong between host and leaf... the host will resend
  // upward, so the walk exceeds the link budget and must throw.
  const topo::NodeId leaf = fabric.leaf_switch_of_host(0);
  tables.set_out_port(leaf, 15, 0);  // down port towards host 0
  EXPECT_THROW(trace_route(fabric, tables, 0, 15), util::InvariantError);
}

TEST(Trace, RejectsInvalidEndpoints) {
  const Fabric fabric(topo::fig4b_pgft16());
  const ForwardingTables tables = DModKRouter{}.compute(fabric);
  EXPECT_THROW(trace_route(fabric, tables, 0, 99), util::PreconditionError);
  EXPECT_THROW(trace_route(fabric, tables, 99, 0), util::PreconditionError);
}

}  // namespace
}  // namespace ftcf::route
