// Property tests of the D-Mod-K closed form itself (Eq. (1) and the lemmas
// of the appendix), independent of any traffic pattern.
#include <gtest/gtest.h>

#include <set>

#include "routing/dmodk.hpp"
#include "routing/trace.hpp"
#include "topology/presets.hpp"

namespace ftcf::route {
namespace {

using topo::Fabric;
using topo::PgftSpec;

std::vector<PgftSpec> sweep() {
  return {
      topo::fig4b_pgft16(),
      topo::rlft2_full(6),
      topo::rlft2_leaves(6, 6),
      topo::paper_cluster(324),
      PgftSpec({3, 3, 6}, {1, 3, 3}, {1, 1, 1}),
      PgftSpec({4, 2, 4}, {1, 2, 4}, {1, 2, 1}),  // parallel mid-level rails
  };
}

TEST(Eq1, LemmaTwoCyclicSpread) {
  // Lemma 2: any w_{l+1}p_{l+1} *consecutive* destinations map to all
  // distinct up-going ports (the cyclic, non-overlapping spread).
  for (const PgftSpec& spec : sweep()) {
    for (std::uint32_t l = 1; l < spec.height(); ++l) {
      const std::uint64_t ports = spec.up_ports_at_level(l);
      const std::uint64_t stride = spec.w_prefix_product(l);
      // Consecutive *routable* destinations at this level differ by the
      // divisor stride; check every aligned window.
      for (std::uint64_t base = 0; base + ports * stride <= spec.num_hosts();
           base += stride) {
        std::set<std::uint32_t> seen;
        for (std::uint64_t i = 0; i < ports; ++i)
          seen.insert(
              DModKRouter::up_port_formula(spec, l, base + i * stride));
        EXPECT_EQ(seen.size(), ports)
            << spec.to_string() << " level " << l << " base " << base;
      }
    }
  }
}

TEST(Eq1, PortIsPeriodicInDestination) {
  // q_l(j) depends on j only through floor(j / W_l) mod (w p): adding
  // W_l * w_{l+1} * p_{l+1} to j must not change the port.
  for (const PgftSpec& spec : sweep()) {
    for (std::uint32_t l = 1; l < spec.height(); ++l) {
      const std::uint64_t period =
          spec.w_prefix_product(l) * spec.up_ports_at_level(l);
      for (std::uint64_t j = 0; j + period < spec.num_hosts(); ++j) {
        EXPECT_EQ(DModKRouter::up_port_formula(spec, l, j),
                  DModKRouter::up_port_formula(spec, l, j + period))
            << spec.to_string();
      }
    }
  }
}

TEST(Eq1, DownRailNeverExceedsParallelism) {
  for (const PgftSpec& spec : sweep()) {
    for (std::uint32_t l = 1; l <= spec.height(); ++l) {
      for (std::uint64_t j = 0; j < spec.num_hosts(); ++j) {
        EXPECT_LT(DModKRouter::down_rail_formula(spec, l, j), spec.p(l))
            << spec.to_string();
      }
    }
  }
}

TEST(Lemma5, AllSourcesUseOnePeakPerDestination) {
  // Lemma 5 on instantiated fabrics with parallel ports: for every
  // destination, all sources' routes cross the same top-level switch.
  for (const PgftSpec& spec : sweep()) {
    const Fabric fabric(spec);
    const ForwardingTables tables = DModKRouter{}.compute(fabric);
    const std::uint64_t n = fabric.num_hosts();
    for (std::uint64_t d = 0; d < n; d += 3) {
      std::set<topo::NodeId> peaks;
      for (std::uint64_t s = 0; s < n; s += 2) {
        if (s == d) continue;
        for (const topo::PortId pid : trace_route(fabric, tables, s, d)) {
          const topo::NodeId at = fabric.port(pid).node;
          if (fabric.node(at).level == fabric.height()) peaks.insert(at);
        }
      }
      EXPECT_LE(peaks.size(), 1u)
          << spec.to_string() << " destination " << d;
    }
  }
}

TEST(Hops, MatchLcaDistance) {
  // Route length is exactly 2*lca(s,d) links: host->leaf, lca-1 up,
  // lca-1 down, leaf->host.
  const Fabric fabric(topo::paper_cluster(1944));
  const ForwardingTables tables = DModKRouter{}.compute(fabric);
  const auto lca_level = [&](std::uint64_t a, std::uint64_t b) {
    for (std::uint32_t pos = fabric.height(); pos >= 1; --pos)
      if (fabric.host_digit(a, pos) != fabric.host_digit(b, pos)) return pos;
    return 0u;
  };
  for (std::uint64_t s = 0; s < fabric.num_hosts(); s += 131) {
    for (std::uint64_t d = 1; d < fabric.num_hosts(); d += 97) {
      if (s == d) continue;
      const auto links = trace_route(fabric, tables, s, d);
      EXPECT_EQ(links.size(), 2ull * lca_level(s, d)) << s << " -> " << d;
    }
  }
}

}  // namespace
}  // namespace ftcf::route
