#include "routing/baselines.hpp"

#include <gtest/gtest.h>

#include "routing/validate.hpp"
#include "topology/presets.hpp"

namespace ftcf::route {
namespace {

using topo::Fabric;

TEST(UpDown, TablesCompleteAndValid) {
  const Fabric fabric(topo::paper_cluster(128));
  const ForwardingTables tables = UpDownMinHopRouter{}.compute(fabric);
  EXPECT_TRUE(tables.complete());
  const auto report = validate_routing(fabric, tables);
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? ""
                                                     : report.problems.front());
}

TEST(UpDown, BalancesUpPortLoadEvenly) {
  const Fabric fabric(topo::paper_cluster(128));
  const ForwardingTables tables = UpDownMinHopRouter{}.compute(fabric);
  // At any leaf, destinations spread over up-ports within +/-1 of each other.
  const topo::NodeId leaf = fabric.switch_node(1, 0);
  const topo::Node& n = fabric.node(leaf);
  std::vector<std::uint32_t> load(n.num_up_ports, 0);
  for (std::uint64_t d = 0; d < fabric.num_hosts(); ++d) {
    if (fabric.is_ancestor_of_host(leaf, d)) continue;
    ++load[tables.out_port(leaf, d) - n.num_down_ports];
  }
  const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
  EXPECT_LE(*hi - *lo, 1u);
}

TEST(RandomRouter, DeterministicPerSeed) {
  const Fabric fabric(topo::fig4b_pgft16());
  const ForwardingTables a = RandomRouter{7}.compute(fabric);
  const ForwardingTables b = RandomRouter{7}.compute(fabric);
  const ForwardingTables c = RandomRouter{8}.compute(fabric);
  bool all_equal_ab = true, all_equal_ac = true;
  for (const topo::NodeId sw : fabric.switch_ids()) {
    for (std::uint64_t d = 0; d < fabric.num_hosts(); ++d) {
      all_equal_ab &= a.out_port(sw, d) == b.out_port(sw, d);
      all_equal_ac &= a.out_port(sw, d) == c.out_port(sw, d);
    }
  }
  EXPECT_TRUE(all_equal_ab);
  EXPECT_FALSE(all_equal_ac);
}

TEST(RandomRouter, RoutesAreValid) {
  const Fabric fabric(topo::paper_cluster(128));
  const ForwardingTables tables = RandomRouter{3}.compute(fabric);
  const auto report = validate_routing(fabric, tables);
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? ""
                                                     : report.problems.front());
}

TEST(Baselines, DownDirectionIsAlwaysMinimal) {
  // Both baselines must still descend directly to the destination subtree.
  const Fabric fabric(topo::fig4b_pgft16());
  for (const auto& tables : {UpDownMinHopRouter{}.compute(fabric),
                             ForwardingTables(RandomRouter{1}.compute(fabric))}) {
    for (std::uint64_t s = 0; s < fabric.num_hosts(); ++s)
      for (std::uint64_t d = 0; d < fabric.num_hosts(); ++d) {
        if (s == d) continue;
        const std::size_t links = trace_route(fabric, tables, s, d).size();
        EXPECT_EQ(links, s / 4 == d / 4 ? 2u : 4u);
      }
  }
}

}  // namespace
}  // namespace ftcf::route
