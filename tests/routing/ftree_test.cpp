#include "routing/ftree.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

#include "analysis/hsd.hpp"
#include "cps/generators.hpp"
#include "routing/dmodk.hpp"
#include "routing/validate.hpp"
#include "topology/presets.hpp"

namespace ftcf::route {
namespace {

using topo::Fabric;
using topo::PgftSpec;

TEST(Ftree, TablesCompleteAndValid) {
  const Fabric fabric(topo::paper_cluster(128));
  const ForwardingTables tables = FtreeRouter{}.compute(fabric);
  EXPECT_TRUE(tables.complete());
  const auto report = validate_routing(fabric, tables);
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? ""
                                                     : report.problems.front());
}

TEST(Ftree, MatchesClosedFormDModKOnSingleRailRlfts) {
  // The greedy counter walk must reproduce Eq. (1)'s tables exactly on
  // complete single-rail RLFTs — the paper's formula *describes* what the
  // deployed subnet-manager engine computes.
  for (const PgftSpec& spec : {
           topo::rlft2_full(4),
           topo::paper_cluster(128),
           PgftSpec({2, 2, 4}, {1, 2, 2}, {1, 1, 1}),
           PgftSpec({3, 3, 6}, {1, 3, 3}, {1, 1, 1}),
       }) {
    const Fabric fabric(spec);
    const ForwardingTables ftree = FtreeRouter{}.compute(fabric);
    const ForwardingTables dmodk = DModKRouter{}.compute(fabric);
    for (const topo::NodeId sw : fabric.switch_ids())
      for (std::uint64_t d = 0; d < fabric.num_hosts(); ++d)
        ASSERT_EQ(ftree.out_port(sw, d), dmodk.out_port(sw, d))
            << spec.to_string() << " switch " << fabric.node_name(sw)
            << " dest " << d;
  }
}

TEST(Ftree, ShiftIsCongestionFreeOnParallelRailRlfts) {
  // With parallel rails the counter-chosen rail may differ from the closed
  // form, but the behaviour must stay congestion-free.
  const Fabric fabric(topo::paper_cluster(324));  // p2 = 2
  const ForwardingTables tables = FtreeRouter{}.compute(fabric);
  const analysis::HsdAnalyzer analyzer(fabric, tables);
  const auto ordering = order::NodeOrdering::topology(fabric);
  const auto metrics =
      analyzer.analyze_sequence(cps::shift(fabric.num_hosts()), ordering);
  EXPECT_EQ(metrics.worst_stage_hsd, 1u);
}

TEST(Ftree, BalancesLeafUpPortsExactly) {
  const Fabric fabric(topo::paper_cluster(128));
  const ForwardingTables tables = FtreeRouter{}.compute(fabric);
  const topo::NodeId leaf = fabric.switch_node(1, 3);
  const topo::Node& node = fabric.node(leaf);
  std::vector<std::uint32_t> load(node.num_up_ports, 0);
  for (std::uint64_t d = 0; d < fabric.num_hosts(); ++d) {
    if (fabric.is_ancestor_of_host(leaf, d)) continue;
    ++load[tables.out_port(leaf, d) - node.num_down_ports];
  }
  const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
  EXPECT_LE(*hi - *lo, 1u);
}

TEST(Ftree, RejectsMultiCableHosts) {
  const Fabric fabric(topo::PgftSpec({4, 4}, {2, 4}, {1, 1}));
  EXPECT_THROW((void)FtreeRouter{}.compute(fabric), util::PreconditionError);
}

}  // namespace
}  // namespace ftcf::route
