#include "routing/lft_io.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

#include "routing/dmodk.hpp"
#include "topology/presets.hpp"
#include "util/error.hpp"

namespace ftcf::route {
namespace {

using topo::Fabric;

TEST(LftIo, RoundTripsDModKTables) {
  const Fabric fabric(topo::fig4b_pgft16());
  const ForwardingTables original = DModKRouter{}.compute(fabric);
  const ForwardingTables parsed =
      from_lft_string(fabric, to_lft_string(fabric, original));
  for (const topo::NodeId sw : fabric.switch_ids())
    for (std::uint64_t d = 0; d < fabric.num_hosts(); ++d)
      EXPECT_EQ(parsed.out_port(sw, d), original.out_port(sw, d));
}

TEST(LftIo, DumpHasOneBlockPerSwitch) {
  const Fabric fabric(topo::fig4b_pgft16());
  const std::string text =
      to_lft_string(fabric, DModKRouter{}.compute(fabric));
  std::size_t blocks = 0;
  for (std::size_t pos = text.find("switch "); pos != std::string::npos;
       pos = text.find("switch ", pos + 1))
    ++blocks;
  EXPECT_EQ(blocks, fabric.num_switches());
}

TEST(LftIo, EntryBeforeHeaderFails) {
  const Fabric fabric(topo::fig4b_pgft16());
  EXPECT_THROW(from_lft_string(fabric, "0 : 1\n"), util::ParseError);
}

TEST(LftIo, UnknownSwitchFails) {
  const Fabric fabric(topo::fig4b_pgft16());
  EXPECT_THROW(from_lft_string(fabric, "switch S9_9\n0 : 1\n"),
               util::SpecError);
}

TEST(LftIo, IncompleteTableFails) {
  const Fabric fabric(topo::fig4b_pgft16());
  EXPECT_THROW(from_lft_string(fabric, "switch S1_0\n0 : 0\n"),
               util::SpecError);
}

TEST(LftIo, MalformedEntryFails) {
  const Fabric fabric(topo::fig4b_pgft16());
  EXPECT_THROW(from_lft_string(fabric, "switch S1_0\nzero : 0\n"),
               util::ParseError);
  EXPECT_THROW(from_lft_string(fabric, "switch S1_0\n0 = 0\n"),
               util::ParseError);
  EXPECT_THROW(from_lft_string(fabric, "switch S1_0\n99 : 0\n"),
               util::SpecError);
}

TEST(LftIo, CommentsAreIgnored) {
  const Fabric fabric(topo::fig4b_pgft16());
  const ForwardingTables original = DModKRouter{}.compute(fabric);
  std::string text = to_lft_string(fabric, original);
  text = "# leading comment\n" + text + "# trailing\n";
  EXPECT_NO_THROW((void)from_lft_string(fabric, text));
}

}  // namespace
}  // namespace ftcf::route
