// Malformed-input table for the LFT reader: every case must surface as a
// typed ftcf::util error with line context, never an uncaught std::stoull
// exception or an out-of-range table write.
#include <gtest/gtest.h>

#include <string>

#include "routing/lft_io.hpp"
#include "topology/presets.hpp"
#include "util/error.hpp"

namespace ftcf::route {
namespace {

enum class Expect { kParse, kSpec };

struct Case {
  const char* name;
  std::string input;
  Expect expect;
};

class MalformedLft : public ::testing::TestWithParam<Case> {};

TEST_P(MalformedLft, RaisesTypedError) {
  const topo::Fabric fabric(topo::fig4b_pgft16());
  const Case& c = GetParam();
  try {
    (void)from_lft_string(fabric, c.input);
    FAIL() << c.name << ": expected an ftcf::util error";
  } catch (const util::ParseError&) {
    EXPECT_EQ(c.expect, Expect::kParse) << c.name;
  } catch (const util::SpecError&) {
    EXPECT_EQ(c.expect, Expect::kSpec) << c.name;
  } catch (const std::exception& e) {
    FAIL() << c.name << ": escaped non-ftcf exception: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table, MalformedLft,
    ::testing::Values(
        Case{"entry_before_switch_header", "0 : 1\n", Expect::kParse},
        Case{"switch_without_name", "switch\n", Expect::kParse},
        Case{"unknown_switch", "switch S9_9\n", Expect::kSpec},
        Case{"dest_not_a_number", "switch S1_0\nabc : 1\n", Expect::kParse},
        Case{"dest_trailing_junk", "switch S1_0\n3x : 1\n", Expect::kParse},
        Case{"missing_colon", "switch S1_0\n0 1\n", Expect::kParse},
        Case{"port_not_a_number", "switch S1_0\n0 : xy\n", Expect::kParse},
        Case{"port_negative", "switch S1_0\n0 : -1\n", Expect::kParse},
        Case{"dest_out_of_range", "switch S1_0\n99 : 1\n", Expect::kSpec},
        Case{"port_out_of_radix", "switch S1_0\n0 : 99\n", Expect::kSpec},
        Case{"incomplete_tables", "switch S1_0\n0 : 1\n", Expect::kSpec}),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return std::string(param_info.param.name);
    });

}  // namespace
}  // namespace ftcf::route
