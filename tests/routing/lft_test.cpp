#include "routing/lft.hpp"

#include <gtest/gtest.h>

#include "topology/presets.hpp"
#include "util/expects.hpp"

namespace ftcf::route {
namespace {

using topo::Fabric;

TEST(ForwardingTables, StartsUnprogrammed) {
  const Fabric fabric(topo::fig4b_pgft16());
  const ForwardingTables tables(fabric);
  EXPECT_FALSE(tables.complete());
  EXPECT_THROW(tables.out_port(fabric.switch_node(1, 0), 0),
               util::PreconditionError);
}

TEST(ForwardingTables, SetThenGet) {
  const Fabric fabric(topo::fig4b_pgft16());
  ForwardingTables tables(fabric);
  const topo::NodeId sw = fabric.switch_node(1, 2);
  tables.set_out_port(sw, 5, 7);
  EXPECT_EQ(tables.out_port(sw, 5), 7u);
}

TEST(ForwardingTables, RejectsHostLookups) {
  const Fabric fabric(topo::fig4b_pgft16());
  ForwardingTables tables(fabric);
  EXPECT_THROW(tables.set_out_port(fabric.host_node(0), 1, 0),
               util::PreconditionError);
}

TEST(ForwardingTables, RejectsOutOfRange) {
  const Fabric fabric(topo::fig4b_pgft16());
  ForwardingTables tables(fabric);
  const topo::NodeId sw = fabric.switch_node(1, 0);
  EXPECT_THROW(tables.set_out_port(sw, 16, 0), util::PreconditionError);
  EXPECT_THROW(tables.set_out_port(sw, 0, 8), util::PreconditionError);
}

TEST(ForwardingTables, CompleteAfterFullProgramming) {
  const Fabric fabric(topo::fig4b_pgft16());
  ForwardingTables tables(fabric);
  for (const topo::NodeId sw : fabric.switch_ids())
    for (std::uint64_t d = 0; d < fabric.num_hosts(); ++d)
      tables.set_out_port(sw, d, 0);
  EXPECT_TRUE(tables.complete());
}

}  // namespace
}  // namespace ftcf::route
