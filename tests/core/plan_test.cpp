#include "core/plan.hpp"

#include <gtest/gtest.h>

#include "topology/presets.hpp"

namespace ftcf::core {
namespace {

using topo::Fabric;

TEST(CollectivePlan, AuditsEveryCpsCongestionFreeOnRlft) {
  const Fabric fabric(topo::paper_cluster(128));
  const CollectivePlan plan(fabric);
  EXPECT_TRUE(plan.is_rlft());
  for (const cps::CpsKind kind : cps::kAllCpsKinds) {
    const cps::Sequence seq = plan.sequence_for(kind);
    const auto audit = plan.audit(seq);
    EXPECT_TRUE(audit.congestion_free)
        << cps_name(kind) << " worst HSD " << audit.metrics.worst_stage_hsd;
  }
}

TEST(CollectivePlan, BidirectionalKindsUseGroupedSequences) {
  const Fabric fabric(topo::paper_cluster(128));
  const CollectivePlan plan(fabric);
  EXPECT_EQ(plan.sequence_for(cps::CpsKind::kRecursiveDoubling).name,
            "grouped-recursive-doubling");
  EXPECT_EQ(plan.sequence_for(cps::CpsKind::kRecursiveHalving).name,
            "grouped-recursive-halving");
  EXPECT_EQ(plan.sequence_for(cps::CpsKind::kShift).name, "shift");
}

TEST(CollectivePlan, NaiveRecursiveDoublingWouldCongest) {
  // The contrast that motivates §VI: the same fabric and routing, but the
  // naive global-XOR sequence, is NOT congestion-free. The effect needs a
  // non-power-of-two arity (K=18 here): with all-power-of-two dimensions the
  // XOR pattern happens to align with D-Mod-K's digits.
  const Fabric fabric(topo::paper_cluster(324));
  const CollectivePlan plan(fabric);
  const auto naive = cps::recursive_doubling(fabric.num_hosts());
  const auto audit = plan.audit(naive);
  EXPECT_FALSE(audit.congestion_free);
  EXPECT_GT(audit.metrics.worst_stage_hsd, 1u);
}

TEST(CollectivePlan, PartialJobOverResidueAllocation) {
  const Fabric fabric(topo::paper_cluster(128));
  // Sub-allocation residue 0: hosts 0, 16, 32, ... (one per leaf pair).
  std::vector<std::uint64_t> participants;
  for (std::uint64_t j = 0; j < fabric.num_hosts(); j += 16)
    participants.push_back(j);
  const CollectivePlan plan(fabric, participants);
  EXPECT_EQ(plan.num_ranks(), 8u);
  const auto audit = plan.audit(plan.sequence_for(cps::CpsKind::kShift));
  EXPECT_TRUE(audit.congestion_free)
      << "worst HSD " << audit.metrics.worst_stage_hsd;
}

TEST(CollectivePlan, OrderingIsTopological) {
  const Fabric fabric(topo::fig4b_pgft16());
  const CollectivePlan plan(fabric);
  for (std::uint64_t r = 0; r < plan.num_ranks(); ++r)
    EXPECT_EQ(plan.ordering().host_of(r), r);
}

}  // namespace
}  // namespace ftcf::core
