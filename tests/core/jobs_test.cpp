#include "core/jobs.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

#include <set>

#include "routing/dmodk.hpp"
#include "topology/presets.hpp"
#include "util/error.hpp"

namespace ftcf::core {
namespace {

using topo::Fabric;

TEST(Jobs, AllocatesDisjointResidues) {
  const Fabric fabric(topo::paper_cluster(128));  // 16 classes of 8 hosts
  const auto jobs = allocate_jobs(fabric, {32, 64, 8});
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].ordering.num_ranks(), 32u);
  EXPECT_EQ(jobs[1].ordering.num_ranks(), 64u);
  EXPECT_EQ(jobs[2].ordering.num_ranks(), 8u);

  std::set<std::uint32_t> residues;
  std::set<std::uint64_t> hosts;
  for (const JobPlacement& job : jobs) {
    for (const std::uint32_t r : job.residues)
      EXPECT_TRUE(residues.insert(r).second) << "residue reused";
    for (const std::uint64_t h : job.ordering.hosts())
      EXPECT_TRUE(hosts.insert(h).second) << "host reused";
  }
  EXPECT_EQ(hosts.size(), 104u);
}

TEST(Jobs, RejectsBadSizes) {
  const Fabric fabric(topo::paper_cluster(128));
  EXPECT_THROW(allocate_jobs(fabric, {12}), util::SpecError);   // not multiple
  EXPECT_THROW(allocate_jobs(fabric, {0}), util::SpecError);
  EXPECT_THROW(allocate_jobs(fabric, {96, 64}), util::SpecError);  // > fabric
}

TEST(Jobs, EachJobIsCongestionFreeAlone) {
  const Fabric fabric(topo::paper_cluster(128));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto jobs = allocate_jobs(fabric, {32, 32, 64});
  const auto report = analyze_job_interference(fabric, tables, jobs);
  EXPECT_EQ(report.worst_single_job_hsd, 1u);
}

TEST(Jobs, ConcurrentJobsStayIsolated) {
  // The extension's headline: sub-allocation placement keeps concurrent
  // shifts of independent jobs from sharing any link.
  const Fabric fabric(topo::paper_cluster(128));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto jobs = allocate_jobs(fabric, {64, 32, 16, 16});
  const auto report = analyze_job_interference(fabric, tables, jobs);
  EXPECT_EQ(report.worst_combined_hsd, 1u) << "cross-job interference";
  EXPECT_TRUE(report.isolated);
}

TEST(Jobs, WorksOnThreeLevelFabrics) {
  const Fabric fabric(topo::rlft3_top(4, 4));  // 64 hosts, 16 classes? N/prod(w)
  const std::uint64_t unit =
      fabric.num_hosts() / order::num_sub_allocations(fabric);
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto jobs = allocate_jobs(fabric, {unit * 2, unit});
  const auto report = analyze_job_interference(fabric, tables, jobs);
  EXPECT_EQ(report.worst_single_job_hsd, 1u);
  EXPECT_TRUE(report.isolated);
}

}  // namespace
}  // namespace ftcf::core
