#include "core/grouped_rd.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

#include <numeric>

#include "cps/classify.hpp"
#include "topology/presets.hpp"
#include "util/error.hpp"

namespace ftcf::core {
namespace {

using topo::Fabric;
using topo::PgftSpec;

TEST(GroupedRd, PowerOfTwoLevelsHaveOnlyExchanges) {
  const Fabric fabric(topo::fig4b_pgft16());  // m1 = m2 = 4
  const cps::Sequence seq = grouped_recursive_doubling(fabric);
  // log2(4) stages within leaves + log2(4) across leaves.
  EXPECT_EQ(seq.num_stages(), 4u);
  for (const cps::Stage& st : seq.stages)
    EXPECT_EQ(st.role, cps::StageRole::kExchange);
}

TEST(GroupedRd, StageCountFollowsTreeLevels) {
  // K=3 full 3-level: each level has floor(log2 m)=1 bulk stage + pre/post
  // (m=3 and top m=6 are not powers of two).
  const Fabric fabric(PgftSpec({3, 3, 6}, {1, 3, 3}, {1, 1, 1}));
  const cps::Sequence seq = grouped_recursive_doubling(fabric);
  std::size_t folds = 0, unfolds = 0, exchanges = 0;
  for (const cps::Stage& st : seq.stages) {
    switch (st.role) {
      case cps::StageRole::kFold: ++folds; break;
      case cps::StageRole::kUnfold: ++unfolds; break;
      case cps::StageRole::kExchange: ++exchanges; break;
    }
  }
  EXPECT_EQ(folds, 3u);     // one per level (3, 3 and 6 all non-pow2)
  EXPECT_EQ(unfolds, 3u);
  EXPECT_EQ(exchanges, 1u + 1u + 2u);  // log2(2) + log2(2) + log2(4)
}

TEST(GroupedRd, ExchangeStagesPairWithinTheRightLevel) {
  const Fabric fabric(topo::fig4b_pgft16());
  const cps::Sequence seq = grouped_recursive_doubling(fabric);
  // First two stages exchange within leaves (distance < 4), last two across.
  for (std::size_t s = 0; s < 2; ++s)
    for (const cps::Pair& pr : seq.stages[s].pairs)
      EXPECT_EQ(pr.src / 4, pr.dst / 4) << "stage " << s;
  for (std::size_t s = 2; s < 4; ++s)
    for (const cps::Pair& pr : seq.stages[s].pairs)
      EXPECT_NE(pr.src / 4, pr.dst / 4) << "stage " << s;
}

TEST(GroupedRd, EveryStageIsAPartialPermutation) {
  for (const PgftSpec& spec : {
           topo::fig4b_pgft16(),
           PgftSpec({3, 3, 6}, {1, 3, 3}, {1, 1, 1}),
           PgftSpec({5, 5, 2}, {1, 5, 5}, {1, 1, 1}),
           topo::paper_cluster(128),
       }) {
    const Fabric fabric(spec);
    const cps::Sequence seq = grouped_recursive_doubling(fabric);
    for (const cps::Stage& st : seq.stages)
      EXPECT_TRUE(cps::is_partial_permutation(st, fabric.num_hosts()))
          << spec.to_string();
  }
}

TEST(GroupedRd, BulkStagesHaveXorDisplacement) {
  // Theorem 3's hypothesis: each stage's pairs sit at one hierarchical
  // distance, i.e. at most two displacement classes d and N-d.
  const Fabric fabric(topo::paper_cluster(128));
  const cps::Sequence seq = grouped_recursive_doubling(fabric);
  for (const cps::Stage& st : seq.stages) {
    const auto classes =
        cps::displacement_classes(st, fabric.num_hosts());
    EXPECT_LE(classes.size(), 2u);
    if (st.role == cps::StageRole::kExchange && classes.size() == 2)
      EXPECT_EQ(classes[0] + classes[1], fabric.num_hosts());
  }
}

TEST(GroupedRd, UniformPartialOccupancyIsSupported) {
  // One host out of every pair of hosts: every leaf keeps 2 of 4 members.
  const Fabric fabric(topo::fig4b_pgft16());
  std::vector<std::uint64_t> participants;
  for (std::uint64_t j = 0; j < 16; j += 2) participants.push_back(j);
  const cps::Sequence seq = grouped_recursive_doubling(fabric, participants);
  EXPECT_EQ(seq.num_ranks, 8u);
  for (const cps::Stage& st : seq.stages)
    EXPECT_TRUE(cps::is_partial_permutation(st, 8));
  // Level 1 now has 2 occupied children per leaf: 1 stage; level 2 still 4.
  EXPECT_EQ(seq.num_stages(), 1u + 2u);
}

TEST(GroupedRd, RaggedOccupancyIsRejected) {
  const Fabric fabric(topo::fig4b_pgft16());
  // Leaf 0 keeps three hosts, leaf 1 keeps one: not uniform.
  const std::vector<std::uint64_t> ragged{0, 1, 2, 4};
  EXPECT_THROW(grouped_recursive_doubling(fabric, ragged), util::SpecError);
}

TEST(GroupedRd, ParticipantsMustBeSorted) {
  const Fabric fabric(topo::fig4b_pgft16());
  const std::vector<std::uint64_t> unsorted{4, 0};
  EXPECT_THROW(grouped_recursive_doubling(fabric, unsorted),
               util::PreconditionError);
}

TEST(GroupedRdHalving, ReversesAndSwapsFolds) {
  const Fabric fabric(PgftSpec({3, 3, 6}, {1, 3, 3}, {1, 1, 1}));
  const cps::Sequence dbl = grouped_recursive_doubling(fabric);
  const cps::Sequence hlv = grouped_recursive_halving(fabric);
  ASSERT_EQ(dbl.num_stages(), hlv.num_stages());
  const cps::Stage& first_hlv = hlv.stages.front();
  const cps::Stage& last_dbl = dbl.stages.back();
  ASSERT_EQ(last_dbl.role, cps::StageRole::kUnfold);
  EXPECT_EQ(first_hlv.role, cps::StageRole::kFold);
  ASSERT_EQ(first_hlv.pairs.size(), last_dbl.pairs.size());
  EXPECT_EQ(first_hlv.pairs.front().src, last_dbl.pairs.front().dst);
  EXPECT_EQ(first_hlv.pairs.front().dst, last_dbl.pairs.front().src);
}

}  // namespace
}  // namespace ftcf::core
