#include "core/theorems.hpp"

#include <gtest/gtest.h>

#include "topology/presets.hpp"

namespace ftcf::core {
namespace {

using topo::Fabric;
using topo::PgftSpec;

TEST(Theorem1, HoldsAcrossRlftSweep) {
  for (const PgftSpec& spec : {
           topo::fig4b_pgft16(),
           topo::rlft2_full(4),
           topo::rlft2_leaves(4, 4),
           topo::rlft2_leaves(6, 4),
           topo::paper_cluster(128),
           PgftSpec({2, 2, 4}, {1, 2, 2}, {1, 1, 1}),
           PgftSpec({3, 3, 6}, {1, 3, 3}, {1, 1, 1}),
           PgftSpec({4, 4, 4}, {1, 4, 4}, {1, 1, 1}),
       }) {
    const Fabric fabric(spec);
    const TheoremReport report = check_theorem1(fabric);
    EXPECT_TRUE(report.holds) << spec.to_string() << ": " << report.detail;
    EXPECT_EQ(report.worst_up_hsd, 1u) << spec.to_string();
    EXPECT_EQ(report.stages_checked, fabric.num_hosts() - 1);
  }
}

TEST(Theorem2, HoldsAcrossRlftSweep) {
  for (const PgftSpec& spec : {
           topo::fig4b_pgft16(),
           topo::rlft2_full(4),
           topo::rlft2_leaves(4, 4),
           topo::paper_cluster(128),
           PgftSpec({2, 2, 4}, {1, 2, 2}, {1, 1, 1}),
           PgftSpec({3, 3, 6}, {1, 3, 3}, {1, 1, 1}),
       }) {
    const Fabric fabric(spec);
    const TheoremReport report = check_theorem2(fabric);
    EXPECT_TRUE(report.holds) << spec.to_string() << ": " << report.detail;
    EXPECT_EQ(report.worst_down_hsd, 1u) << spec.to_string();
  }
}

TEST(Theorem3, GroupedRecursiveDoublingIsCongestionFree) {
  for (const PgftSpec& spec : {
           topo::fig4b_pgft16(),
           topo::rlft2_full(4),
           topo::paper_cluster(128),
           PgftSpec({2, 2, 4}, {1, 2, 2}, {1, 1, 1}),
           PgftSpec({3, 3, 6}, {1, 3, 3}, {1, 1, 1}),  // m=3: fold stages
           PgftSpec({5, 5, 2}, {1, 5, 5}, {1, 1, 1}),  // m=5: fold stages
       }) {
    const Fabric fabric(spec);
    const TheoremReport report = check_theorem3(fabric);
    EXPECT_TRUE(report.holds) << spec.to_string() << ": " << report.detail;
  }
}

TEST(Theorems, NonConstantCbbBreaksTheorem1) {
  // A 2:1 tapered tree cannot carry a full Shift without contention; the
  // checker must report it rather than claim the guarantee.
  const Fabric fabric(PgftSpec::xgft({4, 4}, {1, 2}));
  const TheoremReport report = check_theorem1(fabric);
  EXPECT_FALSE(report.holds);
  EXPECT_GE(report.worst_up_hsd, 2u);
  EXPECT_FALSE(report.detail.empty());
}

}  // namespace
}  // namespace ftcf::core
