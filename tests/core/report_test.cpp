#include "core/report.hpp"

#include <gtest/gtest.h>

#include "topology/presets.hpp"

namespace ftcf::core {
namespace {

TEST(Report, ContainsAllSections) {
  const topo::Fabric fabric(topo::fig4b_pgft16());
  const std::string text = fabric_report(fabric);
  EXPECT_NE(text.find("PGFT(2; 4,4; 1,2; 1,2)"), std::string::npos);
  EXPECT_NE(text.find("structure: ok"), std::string::npos);
  EXPECT_NE(text.find("Theorem 1"), std::string::npos);
  EXPECT_NE(text.find("Theorem 3"), std::string::npos);
  EXPECT_NE(text.find("grouped-recursive-doubling"), std::string::npos);
  EXPECT_NE(text.find("shift"), std::string::npos);
}

TEST(Report, SectionsCanBeDisabled) {
  const topo::Fabric fabric(topo::fig4b_pgft16());
  ReportOptions options;
  options.check_theorems = false;
  options.audit_cps = false;
  const std::string text = fabric_report(fabric, options);
  EXPECT_EQ(text.find("Theorem"), std::string::npos);
  EXPECT_EQ(text.find("| CPS"), std::string::npos);
  EXPECT_NE(text.find("structure: ok"), std::string::npos);
}

TEST(Report, FlagsArityOnRlfts) {
  const topo::Fabric fabric(topo::paper_cluster(128));
  EXPECT_NE(fabric_report(fabric, {.check_theorems = false,
                                   .audit_cps = false,
                                   .random_trials = 1,
                                   .seed = 1})
                .find("RLFT of arity K = 8"),
            std::string::npos);
}

TEST(Report, PlanColumnsAreCongestionFree) {
  const topo::Fabric fabric(topo::fig4b_pgft16());
  const std::string text = fabric_report(fabric);
  // Every CPS row shows plan HSD 1.00.
  std::size_t ones = 0;
  for (std::size_t pos = text.find("| 1.00"); pos != std::string::npos;
       pos = text.find("| 1.00", pos + 1))
    ++ones;
  EXPECT_GE(ones, 8u);
}

}  // namespace
}  // namespace ftcf::core
