// Diagnostics engine: severity accounting, suppressions, exit-code contract
// and the two reporters (text, deterministic JSON).
#include "check/diagnostics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace ftcf::check {
namespace {

TEST(Diagnostics, CountsBySeverity) {
  Diagnostics diag;
  diag.note("lft-incomplete", "S1_0", "one entry unprogrammed");
  diag.warning("rlft-cbb", "", "CBB not constant between levels 1 and 2");
  diag.warning("order-mismatch", "rank 3", "rank 3 on host 7");
  diag.error("cdg-cycle", "", "dependency cycle");
  EXPECT_EQ(diag.notes(), 1u);
  EXPECT_EQ(diag.warnings(), 2u);
  EXPECT_EQ(diag.errors(), 1u);
  EXPECT_EQ(diag.findings().size(), 4u);
  EXPECT_EQ(diag.suppressed(), 0u);
}

TEST(Diagnostics, ExitCodeContract) {
  Diagnostics clean;
  EXPECT_TRUE(clean.clean());
  EXPECT_EQ(clean.exit_code(), 0);
  EXPECT_EQ(clean.exit_code(/*strict=*/true), 0);

  Diagnostics noted;
  noted.note("lft-incomplete", "", "expected under faults");
  EXPECT_EQ(noted.exit_code(), 0);
  EXPECT_EQ(noted.exit_code(true), 0) << "notes never gate";

  Diagnostics warned;
  warned.warning("rlft-cbb", "", "unbalanced");
  EXPECT_EQ(warned.exit_code(), 0);
  EXPECT_EQ(warned.exit_code(true), 1) << "warnings gate only under strict";

  Diagnostics errored;
  errored.error("cdg-cycle", "", "cycle");
  EXPECT_EQ(errored.exit_code(), 1);
  EXPECT_EQ(errored.exit_code(true), 1);
}

TEST(Diagnostics, SuppressionsByRuleAndLocation) {
  const Suppressions sup = Suppressions::parse_string(
      "# baseline\n"
      "rlft-cbb\n"
      "order-mismatch:rank 3\n");
  EXPECT_EQ(sup.size(), 2u);

  Diagnostics diag;
  diag.set_suppressions(sup);
  diag.warning("rlft-cbb", "anywhere", "suppressed everywhere");
  diag.warning("order-mismatch", "rank 3", "suppressed by location");
  diag.warning("order-mismatch", "rank 4", "kept: location differs");
  EXPECT_EQ(diag.suppressed(), 2u);
  ASSERT_EQ(diag.findings().size(), 1u);
  EXPECT_EQ(diag.findings().front().location, "rank 4");
}

TEST(Diagnostics, SuppressionParsingRejectsGarbage) {
  EXPECT_THROW((void)Suppressions::parse_string("not a rule id!!\n"),
               util::ParseError);
}

TEST(Diagnostics, TextReportShapes) {
  Diagnostics diag;
  diag.error("cdg-cycle", "S1_0", "dependency cycle through S1_0");
  std::ostringstream oss;
  diag.write_text(oss);
  const std::string text = oss.str();
  EXPECT_NE(text.find("error[cdg-cycle]"), std::string::npos) << text;
  EXPECT_NE(text.find("S1_0"), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
}

TEST(Diagnostics, JsonIsDeterministicAndEscaped) {
  Diagnostics diag;
  diag.warning("rlft-cbb", "level \"1\"", "a\\b\n");
  std::ostringstream a, b;
  diag.write_json(a, {{"tool", "test"}, {"alpha", "first"}});
  diag.write_json(b, {{"alpha", "first"}, {"tool", "test"}});
  EXPECT_EQ(a.str(), b.str()) << "meta must be key-sorted";
  EXPECT_NE(a.str().find("\\\"1\\\""), std::string::npos) << a.str();
  EXPECT_NE(a.str().find("a\\\\b\\n"), std::string::npos) << a.str();
  EXPECT_NE(a.str().find("\"summary\""), std::string::npos);
  EXPECT_NE(a.str().find("\"findings\""), std::string::npos);
  // The meta keys come out sorted regardless of insertion order.
  EXPECT_LT(a.str().find("\"alpha\""), a.str().find("\"tool\""));
}

TEST(Diagnostics, SuppressedFindingsLeaveJsonSummaryHonest) {
  Diagnostics diag;
  diag.set_suppressions(Suppressions::parse_string("rlft-cbb\n"));
  diag.warning("rlft-cbb", "", "silenced");
  std::ostringstream oss;
  diag.write_json(oss);
  EXPECT_NE(oss.str().find("\"suppressed\":1"), std::string::npos) << oss.str();
  EXPECT_NE(oss.str().find("\"warnings\":0"), std::string::npos);
}

}  // namespace
}  // namespace ftcf::check
