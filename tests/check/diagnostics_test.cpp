// Diagnostics engine: severity accounting, suppressions, exit-code contract
// and the two reporters (text, deterministic JSON).
#include "check/diagnostics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace ftcf::check {
namespace {

TEST(Diagnostics, CountsBySeverity) {
  Diagnostics diag;
  diag.note("lft-incomplete", "S1_0", "one entry unprogrammed");
  diag.warning("rlft-cbb", "", "CBB not constant between levels 1 and 2");
  diag.warning("order-mismatch", "rank 3", "rank 3 on host 7");
  diag.error("cdg-cycle", "", "dependency cycle");
  EXPECT_EQ(diag.notes(), 1u);
  EXPECT_EQ(diag.warnings(), 2u);
  EXPECT_EQ(diag.errors(), 1u);
  EXPECT_EQ(diag.findings().size(), 4u);
  EXPECT_EQ(diag.suppressed(), 0u);
}

TEST(Diagnostics, ExitCodeContract) {
  Diagnostics clean;
  EXPECT_TRUE(clean.clean());
  EXPECT_EQ(clean.exit_code(), 0);
  EXPECT_EQ(clean.exit_code(/*strict=*/true), 0);

  Diagnostics noted;
  noted.note("lft-incomplete", "", "expected under faults");
  EXPECT_EQ(noted.exit_code(), 0);
  EXPECT_EQ(noted.exit_code(true), 0) << "notes never gate";

  Diagnostics warned;
  warned.warning("rlft-cbb", "", "unbalanced");
  EXPECT_EQ(warned.exit_code(), 0);
  EXPECT_EQ(warned.exit_code(true), 1) << "warnings gate only under strict";

  Diagnostics errored;
  errored.error("cdg-cycle", "", "cycle");
  EXPECT_EQ(errored.exit_code(), 1);
  EXPECT_EQ(errored.exit_code(true), 1);
}

TEST(Diagnostics, SuppressionsByRuleAndLocation) {
  const Suppressions sup = Suppressions::parse_string(
      "# baseline\n"
      "rlft-cbb\n"
      "order-mismatch:rank 3\n");
  EXPECT_EQ(sup.size(), 2u);

  Diagnostics diag;
  diag.set_suppressions(sup);
  diag.warning("rlft-cbb", "anywhere", "suppressed everywhere");
  diag.warning("order-mismatch", "rank 3", "suppressed by location");
  diag.warning("order-mismatch", "rank 4", "kept: location differs");
  EXPECT_EQ(diag.suppressed(), 2u);
  ASSERT_EQ(diag.findings().size(), 1u);
  EXPECT_EQ(diag.findings().front().location, "rank 4");
}

TEST(Diagnostics, SuppressionParsingRejectsGarbage) {
  EXPECT_THROW((void)Suppressions::parse_string("not a rule id!!\n"),
               util::ParseError);
}

TEST(Diagnostics, TextReportShapes) {
  Diagnostics diag;
  diag.error("cdg-cycle", "S1_0", "dependency cycle through S1_0");
  std::ostringstream oss;
  diag.write_text(oss);
  const std::string text = oss.str();
  EXPECT_NE(text.find("error[cdg-cycle]"), std::string::npos) << text;
  EXPECT_NE(text.find("S1_0"), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
}

TEST(Diagnostics, JsonIsDeterministicAndEscaped) {
  Diagnostics diag;
  diag.warning("rlft-cbb", "level \"1\"", "a\\b\n");
  std::ostringstream a, b;
  diag.write_json(a, {{"tool", "test"}, {"alpha", "first"}});
  diag.write_json(b, {{"alpha", "first"}, {"tool", "test"}});
  EXPECT_EQ(a.str(), b.str()) << "meta must be key-sorted";
  EXPECT_NE(a.str().find("\\\"1\\\""), std::string::npos) << a.str();
  EXPECT_NE(a.str().find("a\\\\b\\n"), std::string::npos) << a.str();
  EXPECT_NE(a.str().find("\"summary\""), std::string::npos);
  EXPECT_NE(a.str().find("\"findings\""), std::string::npos);
  // The meta keys come out sorted regardless of insertion order.
  EXPECT_LT(a.str().find("\"alpha\""), a.str().find("\"tool\""));
}

TEST(Diagnostics, SuppressionParsingHandlesPaddingAndComments) {
  struct Case {
    const char* text;
    std::size_t entries;
    const char* first_rule;
  };
  // Trailing comments, blank lines and whitespace padding must all parse to
  // the same clean entries a tidy file would.
  const Case cases[] = {
      {"rlft-cbb  # trailing comment\n", 1, "rlft-cbb"},
      {"\n\n  \t\nrlft-cbb\n\n", 1, "rlft-cbb"},
      {"  rlft-cbb  \n", 1, "rlft-cbb"},
      {"order-mismatch : rank 3 \n", 1, "order-mismatch"},
      {"\t order-mismatch:rank 3\t# why: legacy racks\n", 1, "order-mismatch"},
      {"# only a comment\n\n", 0, ""},
      {"rlft-cbb\nrlft-cbb:level 1\n", 2, "rlft-cbb"},
  };
  for (const Case& c : cases) {
    const Suppressions sup = Suppressions::parse_string(c.text);
    EXPECT_EQ(sup.size(), c.entries) << '"' << c.text << '"';
    if (c.entries > 0) {
      ASSERT_FALSE(sup.rules().empty()) << '"' << c.text << '"';
      EXPECT_EQ(sup.rules().front(), c.first_rule) << '"' << c.text << '"';
    }
  }
  // Padded location entries still match findings at that location.
  Diagnostics diag;
  diag.set_suppressions(Suppressions::parse_string("order-mismatch : rank 3\n"));
  diag.warning("order-mismatch", "rank 3", "padded entry must match");
  EXPECT_EQ(diag.suppressed(), 1u);
  EXPECT_TRUE(diag.findings().empty());
}

TEST(Diagnostics, KnownRuleCatalogAnswersMembership) {
  EXPECT_TRUE(is_known_rule("cdg-cycle"));
  EXPECT_TRUE(is_known_rule("hsd-violation"));
  EXPECT_TRUE(is_known_rule("cert-ok"));
  EXPECT_TRUE(is_known_rule("vl-assignment"));
  EXPECT_TRUE(is_known_rule("credit-cdg-mismatch"));
  EXPECT_TRUE(is_known_rule("blame-order-mismatch"))
      << "blame-<rule> cross-references are known iff <rule> is";
  EXPECT_FALSE(is_known_rule("blame-no-such-rule"));
  EXPECT_FALSE(is_known_rule("no-such-rule"));
  EXPECT_FALSE(is_known_rule(""));
  for (const std::string_view rule : known_rule_ids())
    EXPECT_TRUE(is_known_rule(rule)) << rule;
}

TEST(Diagnostics, BaselineRoundTripsThroughParse) {
  Diagnostics diag;
  diag.warning("rlft-cbb", "level 1", "w1");
  diag.warning("order-mismatch", "", "w2");
  diag.warning("order-mismatch", "", "same entry deduplicated");
  diag.error("cdg-cycle", "", "e1");

  std::ostringstream oss;
  write_baseline(diag, oss);
  const std::string text = oss.str();
  EXPECT_NE(text.find("# suppression baseline"), std::string::npos) << text;
  EXPECT_NE(text.find("rlft-cbb:level 1"), std::string::npos) << text;
  EXPECT_NE(text.find("order-mismatch"), std::string::npos) << text;

  // A fresh run with the written baseline suppresses the same findings.
  Diagnostics again;
  again.set_suppressions(Suppressions::parse_string(text));
  again.warning("rlft-cbb", "level 1", "w1");
  again.warning("order-mismatch", "", "w2");
  again.error("cdg-cycle", "", "e1");
  EXPECT_EQ(again.suppressed(), 3u);
  EXPECT_EQ(again.exit_code(/*strict=*/true), 0);
}

TEST(Diagnostics, SuppressionParsingHandlesCrlfLineEndings) {
  struct Case {
    const char* text;
    std::size_t entries;
    const char* rule;
    const char* location;
  };
  // Files hand-edited on Windows (or round-tripped through git with CRLF
  // conversion) must parse identically to their LF twins — in particular the
  // \r must never stick to a location substring, or the entry silently stops
  // matching anything.
  const Case cases[] = {
      {"rlft-cbb\r\n", 1, "rlft-cbb", ""},
      {"rlft-cbb\r\norder-mismatch\r\n", 2, "rlft-cbb", ""},
      {"order-mismatch:rank 3\r\n", 1, "order-mismatch", "rank 3"},
      {"order-mismatch:rank 3 \r\n", 1, "order-mismatch", "rank 3"},
      {"rlft-cbb # comment\r\n", 1, "rlft-cbb", ""},
      {"\r\n\r\nrlft-cbb\r\n\r\n", 1, "rlft-cbb", ""},
      {"rlft-cbb\r", 1, "rlft-cbb", ""},  // lone CR on the final line
  };
  for (const Case& c : cases) {
    const Suppressions sup = Suppressions::parse_string(c.text);
    ASSERT_EQ(sup.size(), c.entries) << '"' << c.text << '"';
    EXPECT_EQ(sup.rules().front(), c.rule) << '"' << c.text << '"';
    Diagnostics diag;
    diag.set_suppressions(sup);
    diag.warning(c.rule, c.location, "must be suppressed");
    EXPECT_EQ(diag.suppressed(), 1u)
        << '"' << c.text << "\" failed to match location '" << c.location
        << "'";
  }
}

TEST(Diagnostics, BaselineDeduplicatesAndSurvivesHostileLocations) {
  struct Case {
    const char* name;
    const char* rule;
    const char* location;
    const char* expect_line;  // what write_baseline must emit for it
  };
  // Locations the parser could never reproduce — comment markers, CR/LF,
  // padding the trimmer would eat — must degrade to suppressing the bare
  // rule instead of writing a line that silently matches nothing.
  const Case cases[] = {
      {"plain", "rlft-cbb", "level 1", "rlft-cbb:level 1"},
      {"empty location", "order-mismatch", "", "order-mismatch"},
      {"hash inside", "order-mismatch", "rank #3", "order-mismatch"},
      {"leading space", "order-partial", " rank 3", "order-partial"},
      {"trailing tab", "updown-turn", "S1_0\t", "updown-turn"},
      {"embedded newline", "route-problem", "a\nb", "route-problem"},
      {"embedded cr", "route-unreachable", "a\rb", "route-unreachable"},
      {"inner spaces ok", "cps-displacement", "stage 2 of 4",
       "cps-displacement:stage 2 of 4"},
  };
  for (const Case& c : cases) {
    Diagnostics diag;
    diag.warning(c.rule, c.location, "m");
    std::ostringstream oss;
    write_baseline(diag, oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find(std::string(c.expect_line) + "\n"), std::string::npos)
        << c.name << " wrote:\n"
        << text;

    // Whatever was written must parse back and suppress the same finding.
    Diagnostics again;
    again.set_suppressions(Suppressions::parse_string(text));
    again.warning(c.rule, c.location, "m");
    EXPECT_EQ(again.suppressed(), 1u) << c.name;
    EXPECT_TRUE(again.findings().empty()) << c.name;
  }

  // Duplicate findings — same rule, same location — must write one line,
  // and distinct locations of one rule must keep their own lines.
  Diagnostics diag;
  diag.warning("rlft-cbb", "level 1", "first");
  diag.warning("rlft-cbb", "level 1", "second (same entry)");
  diag.warning("rlft-cbb", "level 2", "third (new location)");
  diag.error("cdg-cycle", "", "e1");
  diag.error("cdg-cycle", "", "e2 (same entry)");
  std::ostringstream oss;
  write_baseline(diag, oss);
  const std::string text = oss.str();
  const auto count = [&](const std::string& line) {
    std::size_t n = 0;
    for (std::size_t pos = text.find(line); pos != std::string::npos;
         pos = text.find(line, pos + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(count("rlft-cbb:level 1\n"), 1u) << text;
  EXPECT_EQ(count("rlft-cbb:level 2\n"), 1u) << text;
  EXPECT_EQ(count("cdg-cycle\n"), 1u) << text;

  Diagnostics again;
  again.set_suppressions(Suppressions::parse_string(text));
  again.warning("rlft-cbb", "level 1", "m");
  again.warning("rlft-cbb", "level 2", "m");
  again.error("cdg-cycle", "", "m");
  EXPECT_EQ(again.suppressed(), 3u);
}

TEST(Diagnostics, SuppressedFindingsLeaveJsonSummaryHonest) {
  Diagnostics diag;
  diag.set_suppressions(Suppressions::parse_string("rlft-cbb\n"));
  diag.warning("rlft-cbb", "", "silenced");
  std::ostringstream oss;
  diag.write_json(oss);
  EXPECT_NE(oss.str().find("\"suppressed\":1"), std::string::npos) << oss.str();
  EXPECT_NE(oss.str().find("\"warnings\":0"), std::string::npos);
}

}  // namespace
}  // namespace ftcf::check
