// Theorem-precondition linter: which of the paper's structural premises a
// fabric/ordering/CPS satisfies, reported under stable rule IDs.
#include "check/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/grouped_rd.hpp"
#include "cps/generators.hpp"
#include "routing/dmodk.hpp"
#include "topology/presets.hpp"

namespace ftcf::check {
namespace {

using topo::Fabric;

bool has_rule(const Diagnostics& diag, const std::string& rule) {
  return std::any_of(diag.findings().begin(), diag.findings().end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(LintFabric, RlftPresetsAreClean) {
  for (const std::uint64_t nodes : {16ull, 128ull, 324ull}) {
    Diagnostics diag;
    lint_fabric(Fabric(topo::paper_cluster(nodes)), diag);
    EXPECT_TRUE(diag.clean(/*strict=*/true))
        << nodes << "-node preset flagged: "
        << (diag.findings().empty() ? "" : diag.findings().front().message);
  }
}

TEST(LintFabric, UnbalancedCbbIsFlagged) {
  // m_1*p_1 = 4 but w_2*p_2 = 1: half-bisection at the spine level.
  Diagnostics diag;
  lint_fabric(Fabric(topo::parse_pgft("PGFT(2; 4,4; 1,1; 1,1)")), diag);
  EXPECT_TRUE(has_rule(diag, "rlft-cbb"));
  EXPECT_EQ(diag.errors(), 0u) << "CBB imbalance is a warning, not an error";
}

TEST(LintFabric, VaryingRadixIsFlagged) {
  // Level-1 switches have 4 down-ports, level-2 switches 16: CBB constant
  // (4*1 == 2*2) but the radix differs, so it is a PGFT yet not an RLFT.
  Diagnostics diag;
  lint_fabric(Fabric(topo::parse_pgft("PGFT(2; 4,8; 1,2; 1,2)")), diag);
  EXPECT_TRUE(has_rule(diag, "rlft-radix"));
}

TEST(LintFabric, MultiCableHostsAreFlagged) {
  Diagnostics diag;
  lint_fabric(Fabric(topo::parse_pgft("PGFT(2; 4,4; 2,2; 1,2)")), diag);
  EXPECT_TRUE(has_rule(diag, "rlft-single-cable"));
}

TEST(LintFabric, SingleSwitchFabricIsClean) {
  Diagnostics diag;
  lint_fabric(Fabric(topo::parse_pgft("PGFT(1; 4; 1; 1)")), diag);
  EXPECT_TRUE(diag.clean(/*strict=*/true));
}

TEST(LintOrdering, TopologyOrderIsClean) {
  const Fabric fabric(topo::fig4b_pgft16());
  Diagnostics diag;
  lint_ordering(fabric, order::NodeOrdering::topology(fabric), diag);
  EXPECT_TRUE(diag.clean(/*strict=*/true));
  EXPECT_TRUE(diag.findings().empty());
}

TEST(LintOrdering, RandomOrderIsMismatched) {
  const Fabric fabric(topo::fig4b_pgft16());
  Diagnostics diag;
  lint_ordering(fabric, order::NodeOrdering::random(fabric, 7), diag);
  EXPECT_TRUE(has_rule(diag, "order-mismatch"));
}

TEST(LintOrdering, CompactSubsetIsAPartialNoteOnly) {
  const Fabric fabric(topo::fig4b_pgft16());
  Diagnostics diag;
  lint_ordering(fabric,
                order::NodeOrdering::compact_subset({0, 1, 2, 5, 9},
                                                    fabric.num_hosts()),
                diag);
  EXPECT_TRUE(has_rule(diag, "order-partial"));
  EXPECT_FALSE(has_rule(diag, "order-mismatch"))
      << "ascending-host partial jobs keep the compact order";
  EXPECT_EQ(diag.warnings(), 0u);
}

TEST(LintOrdering, ShuffledSubsetIsMismatched) {
  const Fabric fabric(topo::fig4b_pgft16());
  Diagnostics diag;
  lint_ordering(fabric,
                order::NodeOrdering(std::vector<std::uint64_t>{4, 2, 9},
                                    fabric.num_hosts()),
                diag);
  EXPECT_TRUE(has_rule(diag, "order-partial"));
  EXPECT_TRUE(has_rule(diag, "order-mismatch"));
}

TEST(LintSequence, ShiftStagesHaveConstantDisplacement) {
  Diagnostics diag;
  lint_sequence(cps::shift(16), diag);
  EXPECT_TRUE(diag.findings().empty())
      << diag.findings().front().message;
}

TEST(LintSequence, RecursiveDoublingIsASymmetricExchange) {
  Diagnostics diag;
  lint_sequence(cps::recursive_doubling(16), diag);
  EXPECT_TRUE(diag.findings().empty());
}

TEST(LintSequence, GroupedRdFoldStagesPass) {
  // Non-power-of-two hosts: the grouped-RD plan has fold/unfold stages whose
  // displacement constancy is exactly the Theorem 3 premise under lint.
  const Fabric fabric(topo::paper_cluster(324));
  Diagnostics diag;
  lint_sequence(core::grouped_recursive_doubling(fabric), diag);
  EXPECT_FALSE(has_rule(diag, "cps-displacement"))
      << diag.findings().front().message;
}

TEST(LintSequence, CraftedIrregularStageIsFlagged) {
  cps::Sequence seq;
  seq.name = "crafted";
  seq.num_ranks = 8;
  // Mixed displacements, not an involution: 0->1 (d=1), 2->5 (d=3).
  seq.stages.push_back(cps::Stage{{{0, 1}, {2, 5}}, cps::StageRole::kExchange});
  Diagnostics diag;
  lint_sequence(seq, diag);
  EXPECT_TRUE(has_rule(diag, "cps-displacement"));
  EXPECT_EQ(diag.findings().front().location, "stage 0");
}

TEST(LintSequence, OneSidedConstantDistanceIsNotAnExchange) {
  cps::Sequence seq;
  seq.name = "one-sided";
  seq.num_ranks = 8;
  // |dst-src| constant but no reverse pairs and shifts differ mod N
  // (+2 and -2): neither criterion holds.
  seq.stages.push_back(cps::Stage{{{0, 2}, {5, 3}}, cps::StageRole::kExchange});
  Diagnostics diag;
  lint_sequence(seq, diag);
  EXPECT_TRUE(has_rule(diag, "cps-displacement"));
}

TEST(LintTables, IncompleteOnPristineFabricWarns) {
  const Fabric fabric(topo::fig4b_pgft16());
  route::ForwardingTables tables(fabric);  // start empty, program one entry
  tables.set_out_port(fabric.switch_ids().front(), 0, 0);
  Diagnostics diag;
  lint_tables(fabric, tables, /*degraded_expected=*/false, diag);
  EXPECT_TRUE(has_rule(diag, "lft-incomplete"));
  EXPECT_EQ(diag.warnings(), 1u);

  Diagnostics degraded;
  lint_tables(fabric, tables, /*degraded_expected=*/true, degraded);
  EXPECT_EQ(degraded.warnings(), 0u);
  EXPECT_EQ(degraded.notes(), 1u) << "expected incompleteness is a note";
}

}  // namespace
}  // namespace ftcf::check
