// Credit-loop prover: the packet simulator's buffer topology, loop-freedom
// on pristine fabrics, agreement with the link-level CDG (the
// credit-cdg-mismatch invariant), and a crafted loop detection.
#include "check/credit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "check/cdg.hpp"
#include "check/check.hpp"
#include "routing/dmodk.hpp"
#include "routing/router.hpp"
#include "sim/packet_sim.hpp"
#include "topology/presets.hpp"

namespace ftcf::check {
namespace {

using route::ForwardingTables;
using topo::Fabric;

bool has_rule(const Diagnostics& diag, const std::string& rule) {
  return std::any_of(diag.findings().begin(), diag.findings().end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(Credit, BufferTopologyMarksSwitchInputsFinite) {
  const Fabric fabric(topo::fig4b_pgft16());
  const auto tables = route::DModKRouter{}.compute(fabric);
  const std::vector<sim::PortBuffer> buffers =
      sim::PacketSim(fabric, tables).buffer_topology();
  ASSERT_EQ(buffers.size(), fabric.num_ports());
  for (topo::PortId pid = 0; pid < fabric.num_ports(); ++pid) {
    const topo::PortId peer = fabric.port(pid).peer;
    if (peer == topo::kInvalidPort) continue;
    const bool to_switch =
        fabric.node(fabric.port(peer).node).kind == topo::NodeKind::kSwitch;
    EXPECT_EQ(buffers[pid].finite, to_switch)
        << "finite credits iff the receiving endpoint is a switch";
    EXPECT_GT(buffers[pid].credits, 0u);
    EXPECT_GT(buffers[pid].rate_bytes_per_sec, 0.0);
  }
}

TEST(Credit, PristineFabricsAreLoopFreeAndAgreeWithCdg) {
  for (const std::uint64_t nodes : {16ull, 128ull, 324ull}) {
    const Fabric fabric(topo::paper_cluster(nodes));
    for (const auto kind :
         {route::RouterKind::kDModK, route::RouterKind::kUpDown}) {
      const auto tables = route::make_router(kind)->compute(fabric);
      const std::vector<sim::PortBuffer> buffers =
          sim::PacketSim(fabric, tables).buffer_topology();
      const CreditLoopAnalysis credit =
          analyze_credit_loops(fabric, tables, buffers);
      EXPECT_TRUE(credit.deadlock_free())
          << nodes << "-node cluster, " << route::make_router(kind)->name();
      EXPECT_EQ(credit.host_injection_channels, fabric.num_hosts());
      EXPECT_GT(credit.num_dependencies, 0u);
      // Host injection channels have in-degree 0, so the credit verdict
      // must coincide with the link-level CDG verdict.
      EXPECT_EQ(credit.acyclic, analyze_cdg(fabric, tables).acyclic);
    }
  }
}

TEST(Credit, CraftedRoutingLoopIsACreditLoop) {
  const Fabric fabric(topo::fig4b_pgft16());
  ForwardingTables tables = route::DModKRouter{}.compute(fabric);
  const topo::NodeId leaf =
      fabric.port(fabric.port(fabric.port_id(fabric.host_node(0), 0)).peer)
          .node;
  tables.set_out_port(leaf, 0, fabric.node(leaf).num_down_ports);

  const std::vector<sim::PortBuffer> buffers =
      sim::PacketSim(fabric, tables).buffer_topology();
  const CreditLoopAnalysis credit =
      analyze_credit_loops(fabric, tables, buffers);
  EXPECT_FALSE(credit.acyclic);
  EXPECT_GE(credit.cyclic_scc_count, 1u);
  EXPECT_FALSE(credit.cycle.empty());
  // Still agrees with the CDG: both see the cycle, so no mismatch.
  EXPECT_FALSE(analyze_cdg(fabric, tables).acyclic);
}

TEST(Credit, RunCheckNeverReportsMismatchOnExampleFabrics) {
  for (const std::uint64_t nodes : {16ull, 128ull}) {
    const Fabric fabric(topo::paper_cluster(nodes));
    const auto tables = route::DModKRouter{}.compute(fabric);
    CheckOptions options;
    options.credit_loops = true;
    const CheckReport report = run_check(fabric, tables, options);
    ASSERT_TRUE(report.credit.has_value());
    EXPECT_TRUE(report.credit->acyclic);
    EXPECT_TRUE(has_rule(report.diagnostics, "credit-loop"));
    EXPECT_FALSE(has_rule(report.diagnostics, "credit-cdg-mismatch"))
        << nodes << "-node cluster: prover and CDG must agree";
    EXPECT_EQ(report.diagnostics.exit_code(/*strict=*/true), 0);
  }
}

TEST(Credit, RunCheckReportsACraftedLoopWithoutMismatch) {
  const Fabric fabric(topo::fig4b_pgft16());
  ForwardingTables tables = route::DModKRouter{}.compute(fabric);
  const topo::NodeId leaf =
      fabric.port(fabric.port(fabric.port_id(fabric.host_node(0), 0)).peer)
          .node;
  tables.set_out_port(leaf, 0, fabric.node(leaf).num_down_ports);

  CheckOptions options;
  options.credit_loops = true;
  const CheckReport report = run_check(fabric, tables, options);
  ASSERT_TRUE(report.credit.has_value());
  EXPECT_FALSE(report.credit->acyclic);
  EXPECT_TRUE(has_rule(report.diagnostics, "credit-loop"));
  EXPECT_FALSE(has_rule(report.diagnostics, "credit-cdg-mismatch"))
      << "both analyses see the crafted cycle";
  EXPECT_EQ(report.diagnostics.exit_code(), 1);
}

}  // namespace
}  // namespace ftcf::check
