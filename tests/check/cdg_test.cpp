// CDG deadlock analysis: acyclicity proofs for the library's routers on the
// paper's topologies, a crafted dependency cycle with its concrete chain, and
// thread-count determinism.
#include "check/cdg.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "routing/dmodk.hpp"
#include "routing/router.hpp"
#include "topology/presets.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {
namespace {

using route::ForwardingTables;
using topo::Fabric;

Fabric fig4b() { return Fabric(topo::fig4b_pgft16()); }

/// Point `host`'s own-leaf entry at the leaf's first up port: the spine's
/// pristine entry sends it straight back down, closing a two-channel cycle.
topo::NodeId corrupt_leaf_upward(const Fabric& fabric, ForwardingTables& tables,
                                 std::uint64_t host) {
  const topo::NodeId leaf =
      fabric.port(fabric.port(fabric.port_id(fabric.host_node(host), 0)).peer)
          .node;
  tables.set_out_port(leaf, host, fabric.node(leaf).num_down_ports);
  return leaf;
}

TEST(Cdg, ProvesRoutersDeadlockFreeOnFig4b) {
  const Fabric fabric = fig4b();
  for (const auto kind : {route::RouterKind::kDModK, route::RouterKind::kFtree,
                          route::RouterKind::kUpDown}) {
    const auto tables = route::make_router(kind)->compute(fabric);
    const CdgAnalysis analysis = analyze_cdg(fabric, tables);
    EXPECT_TRUE(analysis.deadlock_free())
        << route::make_router(kind)->name() << " must be deadlock-free";
    EXPECT_EQ(analysis.down_up_turns, 0u)
        << route::make_router(kind)->name() << " must never turn down->up";
    EXPECT_GT(analysis.num_dependencies, 0u);
    EXPECT_TRUE(analysis.cycle.empty());
  }
}

TEST(Cdg, ProvesPaperClustersDeadlockFree) {
  for (const std::uint64_t nodes : {128ull, 324ull}) {
    const Fabric fabric(topo::paper_cluster(nodes));
    const auto tables = route::DModKRouter{}.compute(fabric);
    const CdgAnalysis analysis = analyze_cdg(fabric, tables);
    EXPECT_TRUE(analysis.acyclic) << nodes << "-node cluster";
    EXPECT_EQ(analysis.down_up_turns, 0u);
  }
}

TEST(Cdg, ProvesThreeLevelRlftDeadlockFree) {
  const Fabric fabric{topo::rlft3_top(4, 2)};
  const auto tables = route::DModKRouter{}.compute(fabric);
  const CdgAnalysis analysis = analyze_cdg(fabric, tables);
  EXPECT_TRUE(analysis.acyclic);
  EXPECT_EQ(analysis.down_up_turns, 0u);
}

TEST(Cdg, CraftedUpTurnClosesAConcreteCycle) {
  const Fabric fabric = fig4b();
  ForwardingTables tables = route::DModKRouter{}.compute(fabric);
  const topo::NodeId leaf = corrupt_leaf_upward(fabric, tables, 0);

  const CdgAnalysis analysis = analyze_cdg(fabric, tables);
  EXPECT_FALSE(analysis.deadlock_free());
  EXPECT_GT(analysis.down_up_turns, 0u);
  EXPECT_GE(analysis.cyclic_scc_count, 1u);
  ASSERT_EQ(analysis.cycle.size(), 2u)
      << "leaf->spine->leaf is a two-channel cycle";

  // The chain names the corrupted leaf and renders as c0 -> c1 -> c0.
  const std::string chain = cycle_to_string(fabric, analysis.cycle);
  EXPECT_NE(chain.find(fabric.node_name(leaf)), std::string::npos) << chain;
  EXPECT_EQ(static_cast<int>(std::count(chain.begin(), chain.end(), '>')), 2)
      << chain;

  // Each cycle member really is a channel out of a switch, and consecutive
  // channels meet at the switch the former leads into.
  for (std::size_t i = 0; i < analysis.cycle.size(); ++i) {
    const topo::Port& from = fabric.port(analysis.cycle[i]);
    const topo::Port& next =
        fabric.port(analysis.cycle[(i + 1) % analysis.cycle.size()]);
    EXPECT_EQ(fabric.node(from.node).kind, topo::NodeKind::kSwitch);
    EXPECT_EQ(fabric.port(from.peer).node, next.node)
        << "cycle must chain channel head to next channel tail";
  }
}

TEST(Cdg, EmptyTablesHaveNoDependencies) {
  const Fabric fabric = fig4b();
  const ForwardingTables tables(fabric);  // nothing programmed
  const CdgAnalysis analysis = analyze_cdg(fabric, tables);
  EXPECT_TRUE(analysis.acyclic);
  EXPECT_EQ(analysis.num_dependencies, 0u);
  EXPECT_GT(analysis.num_channels, 0u);
}

TEST(Cdg, SingleSwitchFabricHasNoChannels) {
  const Fabric fabric(topo::parse_pgft("PGFT(1; 4; 1; 1)"));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const CdgAnalysis analysis = analyze_cdg(fabric, tables);
  EXPECT_TRUE(analysis.acyclic);
  EXPECT_EQ(analysis.num_channels, 0u);
  EXPECT_EQ(analysis.num_dependencies, 0u);
}

TEST(Cdg, AnalysisIsIdenticalAcrossThreadCounts) {
  const Fabric fabric(topo::paper_cluster(128));
  ForwardingTables tables = route::DModKRouter{}.compute(fabric);
  corrupt_leaf_upward(fabric, tables, 0);  // non-trivial cycle content

  const std::uint32_t saved = par::default_threads();
  par::set_default_threads(1);
  const CdgAnalysis one = analyze_cdg(fabric, tables);
  par::set_default_threads(8);
  const CdgAnalysis eight = analyze_cdg(fabric, tables);
  par::set_default_threads(saved);

  EXPECT_EQ(one.num_channels, eight.num_channels);
  EXPECT_EQ(one.num_dependencies, eight.num_dependencies);
  EXPECT_EQ(one.down_up_turns, eight.down_up_turns);
  EXPECT_EQ(one.acyclic, eight.acyclic);
  EXPECT_EQ(one.cyclic_scc_count, eight.cyclic_scc_count);
  EXPECT_EQ(one.cycle, eight.cycle) << "same concrete cycle, any thread count";
}

}  // namespace
}  // namespace ftcf::check
