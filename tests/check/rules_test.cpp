// Rule-ID drift guard. Two invariants keep the catalog, the analyzers and
// the docs from drifting apart:
//   * every emitted rule is in known_rule_ids() — enforced at emission time
//     by Diagnostics::add (pinned here), and re-checked over a battery of
//     run_check scenarios that exercises every analyzer;
//   * every catalog rule is actually emittable — the battery must cover the
//     whole catalog except the cross-check mismatch rules, which only an
//     implementation bug can produce.
// Adding a rule to the catalog without a scenario (or vice versa) fails here.
#include "check/check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "cps/generators.hpp"
#include "fault/fault_spec.hpp"
#include "routing/degraded.hpp"
#include "routing/dmodk.hpp"
#include "topology/presets.hpp"
#include "util/expects.hpp"

namespace ftcf::check {
namespace {

using route::ForwardingTables;
using topo::Fabric;
using topo::NodeId;

/// Rules no healthy build can emit, pinned absent from the battery instead
/// of present. The mismatch rules each assert two independent analyses
/// agree; rlft-parallel-ports defends against miswired Fabric objects that
/// no current constructor can produce (Fabric always wires itself from the
/// spec — topo files are cross-checked against that wiring on load).
const std::set<std::string> kUnreachableByConstruction = {
    "cdg-walk-mismatch",
    "cert-symbolic-mismatch",
    "cert-telemetry-mismatch",
    "credit-cdg-mismatch",
    "rlft-parallel-ports",
};

NodeId leaf_of(const Fabric& fabric, std::uint64_t host) {
  return fabric
      .port(fabric.port(fabric.port_id(fabric.host_node(host), 0)).peer)
      .node;
}

std::uint32_t port_to(const Fabric& fabric, NodeId from, NodeId to) {
  const topo::Node& node = fabric.node(from);
  for (std::uint32_t i = 0; i < node.num_down_ports + node.num_up_ports; ++i) {
    const topo::PortId peer = fabric.port(fabric.port_id(from, i)).peer;
    if (peer != topo::kInvalidPort && fabric.port(peer).node == to) return i;
  }
  ADD_FAILURE() << "no cable " << fabric.node_name(from) << " -> "
                << fabric.node_name(to);
  return 0;
}

/// Classic two-destination cycle (as in vl_test): dest 0 detours
/// spine0 -> leaf1 -> spine1, dest |leaf| detours spine1 -> leaf0 -> spine0.
void corrupt_cross_destination(const Fabric& fabric, ForwardingTables& tables) {
  const std::uint64_t h1 = fabric.node(leaf_of(fabric, 0)).num_down_ports;
  const NodeId leaf0 = leaf_of(fabric, 0);
  const NodeId leaf1 = leaf_of(fabric, h1);
  const std::uint32_t up0 = fabric.node(leaf0).num_down_ports;
  const NodeId spine0 =
      fabric.port(fabric.port(fabric.port_id(leaf0, up0)).peer).node;
  const NodeId spine1 =
      fabric.port(fabric.port(fabric.port_id(leaf0, up0 + 1)).peer).node;
  tables.set_out_port(spine0, 0, port_to(fabric, spine0, leaf1));
  tables.set_out_port(leaf1, 0, port_to(fabric, leaf1, spine1));
  tables.set_out_port(spine1, h1, port_to(fabric, spine1, leaf0));
  tables.set_out_port(leaf0, h1, port_to(fabric, leaf0, spine0));
}

TEST(Rules, CatalogIsSortedUniqueAndWellFormed) {
  const auto rules = known_rule_ids();
  ASSERT_FALSE(rules.empty());
  EXPECT_TRUE(std::is_sorted(rules.begin(), rules.end()))
      << "is_known_rule binary-searches the catalog";
  EXPECT_EQ(std::adjacent_find(rules.begin(), rules.end()), rules.end());
  for (const std::string_view rule : rules) {
    EXPECT_FALSE(rule.empty());
    for (const char c : rule)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '-')
          << "rule IDs are lowercase kebab-case: '" << rule << "'";
    EXPECT_TRUE(is_known_rule(rule)) << rule;
  }
  for (const std::string& rule : kUnreachableByConstruction)
    EXPECT_TRUE(is_known_rule(rule))
        << "mismatch allowlist entry '" << rule << "' left the catalog";
}

TEST(Rules, BlamePrefixResolvesToTheBaseRule) {
  EXPECT_TRUE(is_known_rule("blame-order-mismatch"));
  EXPECT_TRUE(is_known_rule("blame-cps-displacement"));
  EXPECT_FALSE(is_known_rule("blame-no-such-rule"));
  EXPECT_FALSE(is_known_rule("no-such-rule"));
  EXPECT_FALSE(is_known_rule(""));
}

TEST(Rules, EmittingAnUncataloguedRuleTripsTheInvariantGuard) {
  Diagnostics diag;
  EXPECT_THROW(diag.note("not-a-rule", "", "message"), util::InvariantError);
  EXPECT_THROW(diag.error("blame-not-a-rule", "", "m"), util::InvariantError);
  EXPECT_NO_THROW(diag.note("cdg-cycle", "", "m"));
  EXPECT_NO_THROW(diag.warning("blame-order-mismatch", "", "m"));
  EXPECT_EQ(diag.findings().size(), 2u)
      << "rejected findings must not be recorded";
}

/// Strip a blame- prefix so battery coverage counts the base rule.
std::string base_rule(const std::string& rule) {
  return rule.rfind("blame-", 0) == 0 ? rule.substr(6) : rule;
}

void collect(const CheckReport& report, std::set<std::string>& emitted) {
  for (const Finding& f : report.diagnostics.findings()) {
    EXPECT_TRUE(is_known_rule(f.rule)) << "emitted off-catalog: " << f.rule;
    emitted.insert(base_rule(f.rule));
  }
}

TEST(Rules, BatteryCoversTheWholeCatalog) {
  std::set<std::string> emitted;
  const Fabric fig4b(topo::fig4b_pgft16());

  {  // Pristine, every prover on: the -ok / certificate rules.
    const auto tables = route::DModKRouter{}.compute(fig4b);
    const auto ordering = order::NodeOrdering::topology(fig4b);
    const auto sequence = cps::shift(fig4b.num_hosts());
    CheckOptions options;
    options.ordering = &ordering;
    options.sequence = &sequence;
    options.certify = true;
    options.symbolic = true;
    options.symbolic_cross_check = true;
    options.tables_canonical_dmodk = true;
    options.replay_telemetry = true;
    options.propose_vls = 1;
    options.prove_vl_optimal = true;
    options.adaptive_closure = true;
    options.credit_loops = true;
    collect(run_check(fig4b, tables, options), emitted);
  }
  {  // Adversarial ring ordering: contention blame.
    const auto tables = route::DModKRouter{}.compute(fig4b);
    const auto ordering = order::NodeOrdering::adversarial_ring(fig4b);
    const auto sequence = cps::shift(fig4b.num_hosts());
    CheckOptions options;
    options.ordering = &ordering;
    options.sequence = &sequence;
    options.certify = true;
    // Symbolic on a non-identity order: declines (symbolic-inapplicable)
    // and the enumerative certifier produces the blame as before.
    options.symbolic = true;
    options.tables_canonical_dmodk = true;
    collect(run_check(fig4b, tables, options), emitted);
  }
  {  // Shuffled partial ordering + irregular stage: ordering/CPS lints.
    const auto tables = route::DModKRouter{}.compute(fig4b);
    const auto ordering = order::NodeOrdering(
        std::vector<std::uint64_t>{4, 2, 9}, fig4b.num_hosts());
    cps::Sequence crafted;
    crafted.name = "crafted";
    crafted.num_ranks = 8;
    crafted.stages.push_back(
        cps::Stage{{{0, 1}, {2, 5}}, cps::StageRole::kExchange});
    CheckOptions options;
    options.ordering = &ordering;
    options.sequence = &crafted;
    collect(run_check(fig4b, tables, options), emitted);
  }
  {  // Cross-destination cycle: deterministic + adaptive cycles, 2-lane fix.
    ForwardingTables tables = route::DModKRouter{}.compute(fig4b);
    corrupt_cross_destination(fig4b, tables);
    CheckOptions options;
    options.propose_vls = 2;
    options.adaptive_closure = true;
    collect(run_check(fig4b, tables, options), emitted);
  }
  {  // Same cycle, one lane only: greedy fails, the prover shows the gap.
    ForwardingTables tables = route::DModKRouter{}.compute(fig4b);
    corrupt_cross_destination(fig4b, tables);
    CheckOptions options;
    options.propose_vls = 1;
    options.prove_vl_optimal = true;
    collect(run_check(fig4b, tables, options), emitted);
  }
  {  // One down->up turn without a cycle: discipline warning only.
    ForwardingTables tables = route::DModKRouter{}.compute(fig4b);
    const NodeId leaf1 = leaf_of(fig4b, 4);
    const std::uint32_t det_up = tables.out_port(leaf1, 1);
    const NodeId det_spine =
        fig4b.port(fig4b.port(fig4b.port_id(leaf1, det_up)).peer).node;
    const NodeId leaf0 = leaf_of(fig4b, 0);
    const std::uint32_t down = fig4b.node(leaf0).num_down_ports;
    for (std::uint32_t q = 0; q < fig4b.node(leaf0).num_up_ports; ++q) {
      const NodeId s =
          fig4b.port(fig4b.port(fig4b.port_id(leaf0, down + q)).peer).node;
      if (s == det_spine) continue;
      tables.set_out_port(s, 1, port_to(fig4b, s, leaf1));
      break;
    }
    collect(run_check(fig4b, tables), emitted);
  }
  {  // Lost host link, rebuilt tables: expected incompleteness.
    const fault::FaultState faults(fig4b, fault::parse_faults("link:H3:0"));
    const auto tables = route::compute_degraded_dmodk(faults);
    CheckOptions options;
    options.faults = &faults;
    collect(run_check(fig4b, tables, options), emitted);
  }
  {  // Lost spine + leaf uplink, rebuilt tables: structure lints.
    const fault::FaultState faults(
        fig4b, fault::parse_faults("switch:S2_0,link:S1_1:4"));
    const auto tables = route::compute_degraded_dmodk(faults);
    CheckOptions options;
    options.faults = &faults;
    collect(run_check(fig4b, tables, options), emitted);
  }
  {  // Stale tables over a failed link: hard routing errors.
    const auto tables = route::DModKRouter{}.compute(fig4b);
    const fault::FaultState faults(fig4b,
                                   fault::parse_faults("link:S1_0:4"));
    CheckOptions options;
    options.faults = &faults;
    collect(run_check(fig4b, tables, options), emitted);
  }
  {  // Every leaf uplink down: the leaf's hosts survive but cannot leave.
    const fault::FaultState faults(
        fig4b, fault::parse_faults(
                   "link:S1_0:4,link:S1_0:5,link:S1_0:6,link:S1_0:7"));
    const auto tables = route::compute_degraded_dmodk(faults);
    CheckOptions options;
    options.faults = &faults;
    collect(run_check(fig4b, tables, options), emitted);
  }
  {  // Structurally non-RLFT PGFTs: radix / single-cable lints.
    const Fabric radix(topo::parse_pgft("PGFT(2; 4,8; 1,2; 1,2)"));
    collect(run_check(radix, route::DModKRouter{}.compute(radix)), emitted);
    const Fabric cables(topo::parse_pgft("PGFT(2; 4,4; 2,2; 1,2)"));
    collect(run_check(cables, route::DModKRouter{}.compute(cables)), emitted);
  }
  {  // Baseline naming a rule the catalog does not know.
    const auto tables = route::DModKRouter{}.compute(fig4b);
    CheckOptions options;
    options.suppressions = Suppressions::parse_string("no-such-rule\n");
    collect(run_check(fig4b, tables, options), emitted);
  }

  for (const std::string& rule : kUnreachableByConstruction)
    EXPECT_FALSE(emitted.count(rule))
        << "cross-check mismatch fired on a healthy battery: " << rule;

  for (const std::string_view rule : known_rule_ids()) {
    const std::string id(rule);
    if (kUnreachableByConstruction.count(id)) continue;
    EXPECT_TRUE(emitted.count(id))
        << "catalog rule '" << id
        << "' is not emitted by any battery scenario; add one (or move it "
           "to the mismatch allowlist if only a bug can emit it)";
  }
  for (const std::string& rule : emitted)
    EXPECT_TRUE(is_known_rule(rule)) << rule;
}

}  // namespace
}  // namespace ftcf::check
