// Branch-and-bound lane-minimality prover: pristine fabrics certify one lane
// with zero search, a crown-shaped conflict graph (C6) pins the greedy
// first-fit at 3 lanes while the exact search finds and proves 2, a
// zero-node budget reports an honest [lower, upper] gap, a per-destination
// routing loop abandons the proof, and everything is thread-count identical.
#include "check/vl_optimal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/cdg.hpp"
#include "check/vl.hpp"
#include "routing/dmodk.hpp"
#include "topology/presets.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {
namespace {

using route::ForwardingTables;
using topo::Fabric;
using topo::NodeId;

NodeId leaf_of(const Fabric& fabric, std::uint64_t host) {
  return fabric
      .port(fabric.port(fabric.port_id(fabric.host_node(host), 0)).peer)
      .node;
}

/// Port index on `from` whose cable reaches `to`.
std::uint32_t port_to(const Fabric& fabric, NodeId from, NodeId to) {
  const topo::Node& node = fabric.node(from);
  for (std::uint32_t i = 0; i < node.num_down_ports + node.num_up_ports; ++i) {
    const topo::PortId peer = fabric.port(fabric.port_id(from, i)).peer;
    if (peer != topo::kInvalidPort && fabric.port(peer).node == to) return i;
  }
  ADD_FAILURE() << "no cable " << fabric.node_name(from) << " -> "
                << fabric.node_name(to);
  return 0;
}

/// `num_down_ports`-th up port's peer, counting spines left to right.
NodeId spine(const Fabric& fabric, std::uint32_t index) {
  const NodeId leaf0 = leaf_of(fabric, 0);
  const std::uint32_t up0 = fabric.node(leaf0).num_down_ports;
  return fabric.port(fabric.port(fabric.port_id(leaf0, up0 + index)).peer)
      .node;
}

/// Close the classic 4-channel cross-destination cycle between dests `x`
/// (under leafI) and `y` (under leafJ) through the dedicated spine pair
/// (sX, sY): x detours sX -> leafJ -> sY, y detours sY -> leafI -> sX. Each
/// destination's own chain stays acyclic; the union is cyclic, so x and y
/// can never share a lane.
void add_conflict(const Fabric& fabric, ForwardingTables& tables,
                  std::uint64_t x, std::uint64_t y, NodeId sx, NodeId sy) {
  const NodeId leaf_i = leaf_of(fabric, x);
  const NodeId leaf_j = leaf_of(fabric, y);
  tables.set_out_port(sx, x, port_to(fabric, sx, leaf_j));
  tables.set_out_port(leaf_j, x, port_to(fabric, leaf_j, sy));
  tables.set_out_port(sy, y, port_to(fabric, sy, leaf_i));
  tables.set_out_port(leaf_i, y, port_to(fabric, leaf_i, sx));
}

/// Crown fabric: the conflict graph over {a1,b1,a2,b2,a3,b3} is K3,3 minus
/// the perfect matching (ai, bi) — a 6-cycle. First-fit in ascending
/// destination order (a1, b1, a2, b2, a3, b3) is forced onto 3 lanes;
/// the unique bipartition {a1,a2,a3} / {b1,b2,b3} needs only 2. Each of the
/// six conflicts detours through its own dedicated spine pair so the
/// conflicts never interact.
struct Crown {
  Fabric fabric{topo::parse_pgft("PGFT(2; 4,12; 1,12; 1,1)")};
  ForwardingTables tables;
  std::vector<std::uint64_t> a, b;

  Crown() : tables(route::DModKRouter{}.compute(fabric)) {
    for (std::uint64_t leaf = 0; leaf < 3; ++leaf) {
      a.push_back(4 * leaf);
      b.push_back(4 * leaf + 1);
    }
    std::uint32_t pair = 0;
    for (std::uint64_t i = 0; i < 3; ++i)
      for (std::uint64_t j = 0; j < 3; ++j) {
        if (i == j) continue;
        add_conflict(fabric, tables, a[i], b[j], spine(fabric, 2 * pair),
                     spine(fabric, 2 * pair + 1));
        ++pair;
      }
  }
};

/// Run greedy + prover the way run_check does.
VlOptimality prove(const Fabric& fabric, const ForwardingTables& tables,
                   std::uint32_t max_lanes, VlAssignment& assignment,
                   const VlOptimalityOptions& options = {}) {
  std::vector<std::vector<std::uint64_t>> per_dest;
  assignment = propose_vl_assignment(fabric, tables, max_lanes, &per_dest);
  return prove_vl_optimality(fabric, per_dest, max_lanes, assignment, options);
}

TEST(VlOptimal, PristineFabricCertifiesOneLaneWithZeroSearch) {
  const Fabric fabric(topo::parse_pgft("PGFT(2; 4,4; 1,4; 1,1)"));
  const auto tables = route::DModKRouter{}.compute(fabric);
  VlAssignment assignment;
  const VlOptimality opt = prove(fabric, tables, 4, assignment);

  EXPECT_TRUE(opt.optimal());
  EXPECT_EQ(opt.lower_bound, 1u);
  EXPECT_EQ(opt.upper_bound, 1u);
  EXPECT_EQ(opt.suspects, 0u);
  EXPECT_EQ(opt.conflict_edges, 0u);
  EXPECT_EQ(opt.nodes_explored, 0u) << "no suspects means no search at all";
  EXPECT_FALSE(opt.improved);
  EXPECT_TRUE(opt.clique.empty());
  EXPECT_EQ(assignment.num_lanes, 1u);
}

TEST(VlOptimal, TwoLaneAssignmentIsProvenMinimal) {
  const Fabric fabric(topo::parse_pgft("PGFT(2; 4,4; 1,4; 1,1)"));
  ForwardingTables tables = route::DModKRouter{}.compute(fabric);
  add_conflict(fabric, tables, 0, 4, spine(fabric, 0), spine(fabric, 1));
  ASSERT_FALSE(analyze_cdg(fabric, tables).acyclic);

  VlAssignment assignment;
  const VlOptimality opt = prove(fabric, tables, 4, assignment);

  EXPECT_TRUE(opt.optimal());
  EXPECT_EQ(opt.lower_bound, 2u);
  EXPECT_EQ(opt.upper_bound, 2u);
  EXPECT_EQ(assignment.num_lanes, 2u);
  EXPECT_FALSE(opt.improved) << "greedy already found the optimum";
  // Three suspects, not two: dest 1's pristine chain leaf1 -> spine1 ->
  // leaf0 happens to run inside the cyclic SCC the detours created, so it
  // cannot be ruled out a priori — but it conflicts with nobody.
  EXPECT_EQ(opt.suspects, 3u);
  EXPECT_EQ(opt.conflict_edges, 1u);
  EXPECT_EQ(opt.clique, (std::vector<std::uint64_t>{0, 4}));
}

TEST(VlOptimal, CrownConflictGraphProvesGreedySuboptimal) {
  const Crown crown;
  ASSERT_FALSE(analyze_cdg(crown.fabric, crown.tables).acyclic);

  VlAssignment greedy =
      propose_vl_assignment(crown.fabric, crown.tables, 8, nullptr);
  ASSERT_EQ(greedy.num_lanes, 3u)
      << "first-fit in ascending order must walk into the crown trap";

  VlAssignment assignment;
  const VlOptimality opt = prove(crown.fabric, crown.tables, 8, assignment);

  EXPECT_TRUE(opt.optimal());
  EXPECT_TRUE(opt.improved) << "the exact search must beat first-fit";
  EXPECT_EQ(opt.lower_bound, 2u);
  EXPECT_EQ(opt.upper_bound, 2u);
  // The six crown destinations plus three conflict-free bystanders whose
  // pristine chains graze the cyclic SCCs.
  EXPECT_EQ(opt.suspects, 9u);
  EXPECT_EQ(opt.conflict_edges, 6u);
  EXPECT_EQ(opt.clique.size(), 2u) << "C6 is triangle-free";
  EXPECT_GT(opt.nodes_explored, 0u);

  // The replacement must be the real thing: 2 lanes, complete, and every
  // lane's restricted dependency graph acyclic.
  EXPECT_EQ(assignment.num_lanes, 2u);
  EXPECT_TRUE(assignment.complete());
  for (std::uint64_t i = 0; i < 3; ++i)
    for (std::uint64_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      EXPECT_NE(assignment.lane_of_dest[crown.a[i]],
                assignment.lane_of_dest[crown.b[j]])
          << "conflicting pair (a" << i << ", b" << j << ") shares a lane";
    }
  const VlCdgAnalysis analysis =
      analyze_cdg_per_vl(crown.fabric, crown.tables, assignment);
  ASSERT_EQ(analysis.num_lanes(), 2u);
  EXPECT_TRUE(analysis.all_acyclic());
}

TEST(VlOptimal, ZeroNodeBudgetReportsAnHonestGap) {
  const Crown crown;
  VlAssignment assignment;
  VlOptimalityOptions options;
  options.node_budget = 0;
  const VlOptimality opt =
      prove(crown.fabric, crown.tables, 8, assignment, options);

  EXPECT_TRUE(opt.provable());
  EXPECT_FALSE(opt.optimal());
  EXPECT_TRUE(opt.budget_exhausted);
  EXPECT_EQ(opt.lower_bound, 2u) << "the clique bound survives a budget trip";
  EXPECT_EQ(opt.upper_bound, 3u) << "greedy remains the best known";
  EXPECT_FALSE(opt.improved);
  EXPECT_EQ(assignment.num_lanes, 3u) << "the greedy proposal must stand";
}

TEST(VlOptimal, RoutingLoopAbandonsTheProof) {
  const Fabric fabric(topo::fig4b_pgft16());
  ForwardingTables tables = route::DModKRouter{}.compute(fabric);
  const NodeId leaf = leaf_of(fabric, 0);
  tables.set_out_port(leaf, 0, fabric.node(leaf).num_down_ports);

  VlAssignment assignment;
  const VlOptimality opt = prove(fabric, tables, 4, assignment);

  EXPECT_FALSE(opt.provable());
  EXPECT_FALSE(opt.optimal());
  ASSERT_EQ(opt.unfixable.size(), 1u);
  EXPECT_EQ(opt.unfixable.front(), 0u);
  EXPECT_EQ(opt.nodes_explored, 0u);
}

TEST(VlOptimal, VerdictIsIdenticalAcrossThreadCounts) {
  const Crown crown;
  const auto run = [&](std::uint32_t threads) {
    par::set_default_threads(threads);
    VlAssignment assignment;
    const VlOptimality opt = prove(crown.fabric, crown.tables, 8, assignment);
    return std::pair{opt, assignment};
  };

  const std::uint32_t saved = par::default_threads();
  const auto [opt1, asg1] = run(1);
  const auto [opt8, asg8] = run(8);
  par::set_default_threads(saved);

  EXPECT_EQ(opt1.lower_bound, opt8.lower_bound);
  EXPECT_EQ(opt1.upper_bound, opt8.upper_bound);
  EXPECT_EQ(opt1.clique, opt8.clique);
  EXPECT_EQ(opt1.suspects, opt8.suspects);
  EXPECT_EQ(opt1.conflict_edges, opt8.conflict_edges);
  EXPECT_EQ(opt1.nodes_explored, opt8.nodes_explored);
  EXPECT_EQ(asg1.lane_of_dest, asg8.lane_of_dest);
  EXPECT_EQ(asg1.num_lanes, asg8.num_lanes);
}

}  // namespace
}  // namespace ftcf::check
