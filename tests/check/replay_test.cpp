// Telemetry replay: the dynamic (packet-sim + trace) witness must agree with
// the static certificate's per-stage HSD maxima, on clean and contended
// configurations alike, and map onto the cert-telemetry-ok /
// cert-telemetry-mismatch diagnostics.
#include "check/replay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cps/generators.hpp"
#include "routing/dmodk.hpp"
#include "topology/presets.hpp"

namespace ftcf::check {
namespace {

using topo::Fabric;

std::size_t count_rule(const Diagnostics& diag, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(diag.findings().begin(), diag.findings().end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(Replay, InOrderShiftAgreesWithCertificate) {
  const Fabric fabric(topo::paper_cluster(16));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto ordering = order::NodeOrdering::topology(fabric);
  const auto sequence = cps::shift(fabric.num_hosts());
  const Certificate cert =
      certify_contention_freedom(fabric, tables, ordering, sequence);
  ASSERT_TRUE(cert.contention_free);

  const TelemetryReplay replay = replay_certificate_telemetry(
      fabric, tables, ordering, sequence, cert);
  EXPECT_TRUE(replay.consistent());
  EXPECT_EQ(replay.mismatches, 0u);
  EXPECT_EQ(replay.inconclusive, 0u);
  EXPECT_EQ(replay.contended_confirmed, 0u);
  ASSERT_FALSE(replay.stages.empty());
  for (const StageReplay& sr : replay.stages) {
    EXPECT_TRUE(sr.match) << "stage " << sr.stage;
    EXPECT_EQ(sr.static_max_hsd, 1u) << "stage " << sr.stage;
    EXPECT_EQ(sr.dynamic_max_flows, 1u) << "stage " << sr.stage;
    EXPECT_EQ(sr.dropped_events, 0u) << "stage " << sr.stage;
  }
  // Stage list is ascending and unique.
  for (std::size_t i = 1; i < replay.stages.size(); ++i)
    EXPECT_LT(replay.stages[i - 1].stage, replay.stages[i].stage);

  Diagnostics diag;
  report_telemetry_replay(replay, diag);
  EXPECT_EQ(count_rule(diag, "cert-telemetry-ok"), 1u);
  EXPECT_EQ(count_rule(diag, "cert-telemetry-mismatch"), 0u);
  EXPECT_EQ(diag.exit_code(), 0);
}

TEST(Replay, AdversarialContentionIsConfirmedDynamically) {
  const Fabric fabric(topo::paper_cluster(16));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto ordering = order::NodeOrdering::adversarial_ring(fabric);
  const auto sequence = cps::shift(fabric.num_hosts());
  const Certificate cert =
      certify_contention_freedom(fabric, tables, ordering, sequence);
  ASSERT_FALSE(cert.contention_free);
  ASSERT_FALSE(cert.blames.empty());

  const TelemetryReplay replay = replay_certificate_telemetry(
      fabric, tables, ordering, sequence, cert);
  // The simulator sees exactly the contention the certificate proved: every
  // blamed stage replays with dynamic == static > 1, zero mismatches.
  EXPECT_TRUE(replay.consistent());
  EXPECT_GT(replay.contended_confirmed, 0u);
  EXPECT_GE(replay.stages.size(), cert.blames.size());
  for (const StageBlame& blame : cert.blames) {
    const auto it = std::find_if(
        replay.stages.begin(), replay.stages.end(),
        [&](const StageReplay& sr) { return sr.stage == blame.stage; });
    ASSERT_NE(it, replay.stages.end()) << "blamed stage " << blame.stage;
    EXPECT_EQ(it->static_max_hsd, blame.max_hsd);
    EXPECT_EQ(it->dynamic_max_flows, blame.max_hsd);
    EXPECT_TRUE(it->match);
  }
}

TEST(Replay, MaxStagesBoundsTheSampleOnCleanRuns) {
  const Fabric fabric(topo::paper_cluster(16));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto ordering = order::NodeOrdering::topology(fabric);
  const auto sequence = cps::shift(fabric.num_hosts());
  const Certificate cert =
      certify_contention_freedom(fabric, tables, ordering, sequence);

  TelemetryReplayOptions options;
  options.max_stages = 2;
  const TelemetryReplay replay = replay_certificate_telemetry(
      fabric, tables, ordering, sequence, cert, options);
  EXPECT_LE(replay.stages.size(), 2u);
  EXPECT_TRUE(replay.consistent());
}

TEST(Replay, ReplayIsDeterministicAcrossCalls) {
  const Fabric fabric(topo::paper_cluster(16));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto ordering = order::NodeOrdering::adversarial_ring(fabric);
  const auto sequence = cps::shift(fabric.num_hosts());
  const Certificate cert =
      certify_contention_freedom(fabric, tables, ordering, sequence);

  const TelemetryReplay a = replay_certificate_telemetry(
      fabric, tables, ordering, sequence, cert);
  const TelemetryReplay b = replay_certificate_telemetry(
      fabric, tables, ordering, sequence, cert);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_EQ(a.stages[i].stage, b.stages[i].stage);
    EXPECT_EQ(a.stages[i].dynamic_max_flows, b.stages[i].dynamic_max_flows);
    EXPECT_EQ(a.stages[i].match, b.stages[i].match);
  }
  EXPECT_EQ(a.contended_confirmed, b.contended_confirmed);
}

TEST(Replay, FabricatedMismatchReportsCappedErrors) {
  TelemetryReplay replay;
  for (std::size_t i = 0; i < 7; ++i) {
    StageReplay sr;
    sr.stage = i;
    sr.static_max_hsd = 1;
    sr.dynamic_max_flows = 3;
    sr.match = false;
    replay.stages.push_back(sr);
  }
  replay.mismatches = 7;
  EXPECT_FALSE(replay.consistent());

  Diagnostics diag;
  report_telemetry_replay(replay, diag);
  // One error per mismatch, capped, plus an overflow note naming the rest.
  const auto errors = count_rule(diag, "cert-telemetry-mismatch");
  EXPECT_GE(errors, 1u);
  EXPECT_LE(errors, 5u);
  EXPECT_EQ(count_rule(diag, "cert-telemetry-ok"), 0u);
  EXPECT_EQ(diag.exit_code(), 1);
}

TEST(Replay, EmptyReplayReportsNothing) {
  const TelemetryReplay replay;  // no stages sampled (e.g. empty sequence)
  Diagnostics diag;
  report_telemetry_replay(replay, diag);
  EXPECT_EQ(count_rule(diag, "cert-telemetry-mismatch"), 0u);
  EXPECT_EQ(diag.exit_code(), 0);
}

}  // namespace
}  // namespace ftcf::check
