// Contention-freedom certifier: HSD=1 witnesses for the paper's good
// configurations, root-cause blame for adversarial orders, void certificates
// over incomplete tables, and byte-identical JSON at any thread count.
#include "check/certify.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "cps/generators.hpp"
#include "routing/dmodk.hpp"
#include "topology/presets.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {
namespace {

using route::ForwardingTables;
using topo::Fabric;

bool has_rule(const Diagnostics& diag, const std::string& rule) {
  return std::any_of(diag.findings().begin(), diag.findings().end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(Certify, TopologyOrderShiftCertifiesOnPaperCluster) {
  const Fabric fabric(topo::paper_cluster(128));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto ordering = order::NodeOrdering::topology(fabric);
  const auto sequence = cps::shift(fabric.num_hosts());

  const Certificate cert =
      certify_contention_freedom(fabric, tables, ordering, sequence);
  EXPECT_TRUE(cert.contention_free);
  EXPECT_TRUE(cert.blames.empty());
  EXPECT_EQ(cert.num_ranks, fabric.num_hosts());
  EXPECT_EQ(cert.stages.size(), sequence.stages.size());
  for (const StageWitness& witness : cert.stages) {
    EXPECT_LE(witness.max_hsd, 1u);
    EXPECT_EQ(witness.shape, StageShape::kConstantShift);
    EXPECT_EQ(witness.unroutable_flows, 0u);
    EXPECT_GT(witness.links_loaded, 0u);
    EXPECT_EQ(witness.num_flows, fabric.num_hosts());
  }

  Diagnostics diag;
  report_certificate(cert, diag);
  EXPECT_TRUE(has_rule(diag, "cert-ok"));
  EXPECT_EQ(diag.exit_code(/*strict=*/true), 0);
}

TEST(Certify, AdversarialOrderIsBlamedOnOrderMismatch) {
  const Fabric fabric(topo::paper_cluster(128));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto ordering = order::NodeOrdering::adversarial_ring(fabric);
  const auto sequence = cps::shift(fabric.num_hosts());

  const Certificate cert =
      certify_contention_freedom(fabric, tables, ordering, sequence);
  EXPECT_FALSE(cert.contention_free);
  ASSERT_FALSE(cert.blames.empty());
  for (const StageBlame& blame : cert.blames) {
    EXPECT_GT(blame.max_hsd, 1u);
    EXPECT_NE(blame.hot_link, topo::kInvalidPort);
    EXPECT_FALSE(blame.hot_link_name.empty());
    EXPECT_EQ(blame.blamed_rule, "order-mismatch");
    // Exactly max_hsd flows collide; the list is capped at
    // kMaxCollidingShown.
    EXPECT_EQ(blame.colliding.size(),
              std::min<std::size_t>(blame.max_hsd, kMaxCollidingShown));
    EXPECT_EQ(cert.stages[blame.stage].max_hsd, blame.max_hsd);
  }

  Diagnostics diag;
  report_certificate(cert, diag);
  EXPECT_TRUE(has_rule(diag, "hsd-violation"));
  EXPECT_TRUE(has_rule(diag, "blame-order-mismatch"));
  EXPECT_EQ(diag.exit_code(), 1);
}

TEST(Certify, EmptyTablesVoidTheCertificate) {
  const Fabric fabric(topo::fig4b_pgft16());
  const ForwardingTables tables(fabric);  // nothing programmed
  const auto ordering = order::NodeOrdering::topology(fabric);
  const auto sequence = cps::shift(fabric.num_hosts());

  const Certificate cert =
      certify_contention_freedom(fabric, tables, ordering, sequence);
  EXPECT_FALSE(cert.contention_free);
  EXPECT_TRUE(cert.blames.empty()) << "stranded flows are not collisions";
  std::uint64_t stranded = 0;
  for (const StageWitness& witness : cert.stages)
    stranded += witness.unroutable_flows;
  EXPECT_GT(stranded, 0u);

  Diagnostics diag;
  report_certificate(cert, diag);
  EXPECT_TRUE(has_rule(diag, "hsd-violation"));
  EXPECT_EQ(diag.exit_code(), 1);
}

TEST(Certify, RecursiveDoublingWitnessMentionsTheoremThree) {
  const Fabric fabric(topo::fig4b_pgft16());
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto ordering = order::NodeOrdering::topology(fabric);
  const auto sequence = cps::recursive_doubling(fabric.num_hosts());

  const Certificate cert =
      certify_contention_freedom(fabric, tables, ordering, sequence);
  EXPECT_TRUE(cert.contention_free);
  EXPECT_TRUE(std::any_of(cert.stages.begin(), cert.stages.end(),
                          [](const StageWitness& w) {
                            return w.shape == StageShape::kSymmetricExchange;
                          }));

  Diagnostics diag;
  report_certificate(cert, diag);
  const auto it = std::find_if(
      diag.findings().begin(), diag.findings().end(),
      [](const Finding& f) { return f.rule == "cert-ok"; });
  ASSERT_NE(it, diag.findings().end());
  EXPECT_NE(it->message.find("Theorem 3"), std::string::npos) << it->message;
}

TEST(Certify, JsonIsByteIdenticalAcrossThreadCounts) {
  const Fabric fabric(topo::paper_cluster(128));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto ordering = order::NodeOrdering::adversarial_ring(fabric);
  const auto sequence = cps::shift(fabric.num_hosts());

  const auto render = [&](std::uint32_t threads) {
    const std::uint32_t saved = par::default_threads();
    par::set_default_threads(threads);
    const Certificate cert =
        certify_contention_freedom(fabric, tables, ordering, sequence);
    par::set_default_threads(saved);
    std::ostringstream oss;
    write_certificate_json(oss, cert, {{"tool", "certify_test"}});
    return oss.str();
  };
  const std::string one = render(1);
  const std::string eight = render(8);
  EXPECT_EQ(one, eight) << "the certificate must not depend on --threads";
  EXPECT_NE(one.find("\"contention_free\":false"), std::string::npos);
  EXPECT_NE(one.find("\"blame\":\"order-mismatch\""), std::string::npos);
  EXPECT_NE(one.find("\"hot_link\""), std::string::npos);
}

}  // namespace
}  // namespace ftcf::check
