// Direct IncrementalCertifier coverage: the certificate-delta document and
// the incremental-vs-full certificate equality it promises. The streaming
// engine's end-to-end behaviour (timelines, oracles, reports) lives in
// tests/churn/.
#include <gtest/gtest.h>

#include <sstream>

#include "check/certify.hpp"
#include "check/recertify.hpp"
#include "cps/generators.hpp"
#include "fault/degraded.hpp"
#include "routing/incremental.hpp"
#include "topology/presets.hpp"

namespace ftcf::check {
namespace {

struct Rig {
  Rig()
      : fabric(topo::fig4b_pgft16()),
        state(fabric, fault::parse_faults("")),
        repair(state),
        ordering(order::NodeOrdering::topology(fabric)),
        sequence(cps::shift(fabric.num_hosts())),
        recert(fabric, repair.tables(), ordering, sequence) {}

  [[nodiscard]] std::string full_json() const {
    const Certificate cert = certify_contention_freedom(
        fabric, repair.tables(), ordering, sequence);
    std::ostringstream oss;
    write_certificate_json(oss, cert, {});
    return oss.str();
  }
  [[nodiscard]] std::string incremental_json() const {
    std::ostringstream oss;
    write_certificate_json(oss, recert.certificate(), {});
    return oss.str();
  }

  topo::Fabric fabric;
  fault::FaultState state;
  route::IncrementalRepair repair;
  order::NodeOrdering ordering;
  cps::Sequence sequence;
  IncrementalCertifier recert;
};

TEST(Recertify, CertificateTracksFullCertifyThroughFailAndRepair) {
  Rig rig;
  const topo::NodeId leaf = rig.fabric.switch_node(1, 0);
  const topo::PortId cable =
      rig.fabric.port_id(leaf, rig.fabric.node(leaf).num_down_ports);

  EXPECT_EQ(rig.incremental_json(), rig.full_json());
  (void)rig.recert.update(rig.repair.fail_cable(cable));
  EXPECT_EQ(rig.incremental_json(), rig.full_json());
  (void)rig.recert.update(rig.repair.repair_cable(cable));
  EXPECT_EQ(rig.incremental_json(), rig.full_json());
}

TEST(Recertify, DeltaJsonNamesTheDamageAndTheVerdict) {
  Rig rig;
  const topo::NodeId leaf = rig.fabric.switch_node(1, 0);
  const topo::PortId cable =
      rig.fabric.port_id(leaf, rig.fabric.node(leaf).num_down_ports);
  const CertificateDelta delta = rig.recert.update(rig.repair.fail_cable(cable));
  ASSERT_TRUE(delta.applied);
  EXPECT_GT(delta.flows_rewalked, 0u);
  EXPECT_EQ(delta.changed_witnesses.size(),
            std::min<std::uint64_t>(delta.stages_changed, kMaxDeltaStagesShown));

  std::ostringstream oss;
  write_certificate_delta_json(oss, delta, {{"event", "fail-cable test"}});
  const std::string doc = oss.str();
  EXPECT_NE(doc.find("\"event\":\"fail-cable test\""), std::string::npos);
  EXPECT_NE(doc.find("\"applied\":true"), std::string::npos);
  EXPECT_NE(doc.find("\"flows_rewalked\":"), std::string::npos);
  EXPECT_NE(doc.find("\"stages\":["), std::string::npos);
  EXPECT_NE(doc.find("\"violations\":["), std::string::npos);

  // Deterministic: the same delta renders to the same bytes.
  std::ostringstream again;
  write_certificate_delta_json(again, delta, {{"event", "fail-cable test"}});
  EXPECT_EQ(doc, again.str());
}

TEST(Recertify, UnappliedDeltaRendersEmptySections) {
  Rig rig;
  // A delta that routed nothing new: repairing an already-healthy fabric is
  // modelled by an empty RepairDelta.
  const CertificateDelta delta = rig.recert.update(route::RepairDelta{});
  EXPECT_FALSE(delta.applied);
  EXPECT_EQ(delta.flows_rewalked, 0u);
  EXPECT_TRUE(delta.contention_free);

  std::ostringstream oss;
  write_certificate_delta_json(oss, delta, {});
  const std::string doc = oss.str();
  EXPECT_NE(doc.find("\"applied\":false"), std::string::npos);
  EXPECT_NE(doc.find("\"stages\":[]"), std::string::npos);
  EXPECT_NE(doc.find("\"violations\":[]"), std::string::npos);
}

}  // namespace
}  // namespace ftcf::check
