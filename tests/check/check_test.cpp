// End-to-end static analysis: run_check over pristine, corrupted and
// degraded tables; JSON determinism across thread counts; suppressions;
// metrics recording; walk/CDG agreement.
#include "check/check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "core/grouped_rd.hpp"
#include "cps/generators.hpp"
#include "fault/fault_spec.hpp"
#include "routing/degraded.hpp"
#include "routing/dmodk.hpp"
#include "topology/presets.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {
namespace {

using route::ForwardingTables;
using topo::Fabric;

Fabric fig4b() { return Fabric(topo::fig4b_pgft16()); }

bool has_rule(const Diagnostics& diag, const std::string& rule) {
  return std::any_of(diag.findings().begin(), diag.findings().end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(RunCheck, PristineDmodkIsProvablyClean) {
  const Fabric fabric = fig4b();
  const auto tables = route::DModKRouter{}.compute(fabric);
  const CheckReport report = run_check(fabric, tables);
  EXPECT_TRUE(report.deadlock_free());
  EXPECT_TRUE(report.diagnostics.clean(/*strict=*/true))
      << report.diagnostics.findings().front().message;
  EXPECT_EQ(report.diagnostics.exit_code(true), 0);
  EXPECT_TRUE(report.walk.clean());
  EXPECT_EQ(report.walk.deadlock_free, std::optional<bool>(true))
      << "the walk audit must carry the CDG verdict";
}

TEST(RunCheck, OrderingAndSequenceLintsRideAlong) {
  const Fabric fabric(topo::paper_cluster(128));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto topo_order = order::NodeOrdering::topology(fabric);
  const auto grouped = core::grouped_recursive_doubling(fabric);
  CheckOptions options;
  options.ordering = &topo_order;
  options.sequence = &grouped;
  const CheckReport report = run_check(fabric, tables, options);
  EXPECT_TRUE(report.diagnostics.clean(/*strict=*/true))
      << report.diagnostics.findings().front().message;

  const auto random_order = order::NodeOrdering::random(fabric, 3);
  options.ordering = &random_order;
  const CheckReport bad = run_check(fabric, tables, options);
  EXPECT_TRUE(has_rule(bad.diagnostics, "order-mismatch"));
  EXPECT_EQ(bad.diagnostics.exit_code(), 0) << "warnings pass the default gate";
  EXPECT_EQ(bad.diagnostics.exit_code(/*strict=*/true), 1);
}

TEST(RunCheck, CraftedCycleIsAnErrorWithTheConcreteChain) {
  const Fabric fabric = fig4b();
  ForwardingTables tables = route::DModKRouter{}.compute(fabric);
  const topo::NodeId leaf =
      fabric.port(fabric.port(fabric.port_id(fabric.host_node(0), 0)).peer)
          .node;
  tables.set_out_port(leaf, 0, fabric.node(leaf).num_down_ports);

  const CheckReport report = run_check(fabric, tables);
  EXPECT_FALSE(report.deadlock_free());
  EXPECT_FALSE(report.cdg.acyclic);
  EXPECT_TRUE(has_rule(report.diagnostics, "cdg-cycle"));
  EXPECT_EQ(report.diagnostics.exit_code(), 1);
  EXPECT_FALSE(report.walk.cdg_mismatch)
      << "walk saw the bad turn and the CDG saw the cycle: they agree";

  // The cdg-cycle finding carries the rendered chain with the leaf's name.
  const auto it = std::find_if(
      report.diagnostics.findings().begin(), report.diagnostics.findings().end(),
      [](const Finding& f) { return f.rule == "cdg-cycle"; });
  ASSERT_NE(it, report.diagnostics.findings().end());
  EXPECT_NE(it->message.find("Cycle: "), std::string::npos);
  EXPECT_NE(it->message.find(fabric.node_name(leaf)), std::string::npos)
      << it->message;
}

TEST(RunCheck, DegradedTablesReportNotesNotErrors) {
  const Fabric fabric = fig4b();
  const fault::FaultState faults(fabric, fault::parse_faults("link:H3:0"));
  const auto tables = route::compute_degraded_dmodk(faults);
  CheckOptions options;
  options.faults = &faults;
  const CheckReport report = run_check(fabric, tables, options);
  EXPECT_TRUE(report.deadlock_free())
      << "degraded rerouting must stay deadlock-free";
  EXPECT_EQ(report.diagnostics.errors(), 0u);
  EXPECT_TRUE(has_rule(report.diagnostics, "lft-incomplete"));
  EXPECT_EQ(report.diagnostics.exit_code(/*strict=*/true), 0)
      << "fault-expected incompleteness must not gate CI";
}

TEST(RunCheck, StaleTablesOverFaultsAreRouteErrors) {
  const Fabric fabric = fig4b();
  const auto tables = route::DModKRouter{}.compute(fabric);
  const fault::FaultState faults(fabric, fault::parse_faults("link:S1_0:4"));
  CheckOptions options;
  options.faults = &faults;
  const CheckReport report = run_check(fabric, tables, options);
  EXPECT_TRUE(has_rule(report.diagnostics, "route-problem"));
  EXPECT_EQ(report.diagnostics.exit_code(), 1);
}

TEST(RunCheck, SuppressionsSilenceTheGate) {
  const Fabric fabric(topo::paper_cluster(128));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto random_order = order::NodeOrdering::random(fabric, 3);
  CheckOptions options;
  options.ordering = &random_order;
  options.suppressions = Suppressions::parse_string("order-mismatch\n");
  const CheckReport report = run_check(fabric, tables, options);
  EXPECT_FALSE(has_rule(report.diagnostics, "order-mismatch"));
  EXPECT_EQ(report.diagnostics.suppressed(), 1u);
  EXPECT_EQ(report.diagnostics.exit_code(/*strict=*/true), 0);
}

TEST(RunCheck, UnknownSuppressionRulesAreFlaggedOnce) {
  const Fabric fabric = fig4b();
  const auto tables = route::DModKRouter{}.compute(fabric);
  CheckOptions options;
  options.suppressions = Suppressions::parse_string(
      "no-such-rule\n"
      "no-such-rule:somewhere\n"  // same unknown rule: one warning
      "rlft-cbb\n");              // known: no warning
  const CheckReport report = run_check(fabric, tables, options);
  const auto count = std::count_if(
      report.diagnostics.findings().begin(),
      report.diagnostics.findings().end(),
      [](const Finding& f) { return f.rule == "suppress-unknown-rule"; });
  EXPECT_EQ(count, 1) << "one warning per distinct unknown rule";
  EXPECT_EQ(report.diagnostics.exit_code(), 0);
  EXPECT_EQ(report.diagnostics.exit_code(/*strict=*/true), 1);
}

TEST(RunCheck, DegradedFabricStructureLintsFireAsNotes) {
  const Fabric fabric = fig4b();
  const fault::FaultState faults(
      fabric, fault::parse_faults("switch:S2_0,link:S1_1:4"));
  const auto tables = route::compute_degraded_dmodk(faults);
  CheckOptions options;
  options.faults = &faults;
  const CheckReport report = run_check(fabric, tables, options);
  // The degraded wiring no longer satisfies the PGFT structure or the CBB
  // premise; both are described, at note severity — faults are operating
  // conditions, not table bugs — so the exit gate stays green.
  EXPECT_TRUE(has_rule(report.diagnostics, "pgft-structure"));
  EXPECT_TRUE(has_rule(report.diagnostics, "rlft-cbb"));
  const auto it = std::find_if(
      report.diagnostics.findings().begin(),
      report.diagnostics.findings().end(),
      [](const Finding& f) { return f.rule == "pgft-structure"; });
  ASSERT_NE(it, report.diagnostics.findings().end());
  EXPECT_EQ(it->severity, Severity::kNote);
  EXPECT_EQ(it->location, "degraded");
  EXPECT_EQ(report.diagnostics.errors(), 0u);
  EXPECT_EQ(report.diagnostics.exit_code(), 0);
}

TEST(RunCheck, RateOnlyFaultsRaiseNoStructureNotes) {
  const Fabric fabric = fig4b();
  const fault::FaultState faults(fabric,
                                 fault::parse_faults("rate:S1_0:4:0.5"));
  const auto tables = route::DModKRouter{}.compute(fabric);
  CheckOptions options;
  options.faults = &faults;
  const CheckReport report = run_check(fabric, tables, options);
  EXPECT_FALSE(has_rule(report.diagnostics, "pgft-structure"))
      << "a degraded rate changes no wiring";
  EXPECT_FALSE(has_rule(report.diagnostics, "rlft-cbb"));
}

TEST(RunCheck, MetricsRecordTheAnalysis) {
  const Fabric fabric = fig4b();
  const auto tables = route::DModKRouter{}.compute(fabric);
  obs::MetricsRegistry metrics;
  CheckOptions options;
  options.metrics = &metrics;
  const CheckReport report = run_check(fabric, tables, options);
  ASSERT_NE(metrics.find_counter("check.cdg.dependencies"), nullptr);
  EXPECT_EQ(metrics.find_counter("check.cdg.dependencies")->value(),
            report.cdg.num_dependencies);
  ASSERT_NE(metrics.find_gauge("check.cdg.acyclic"), nullptr);
  EXPECT_EQ(metrics.find_gauge("check.cdg.acyclic")->value(), 1.0);
  EXPECT_EQ(metrics.find_counter("check.walk.pairs_checked")->value(),
            report.walk.pairs_checked);
}

TEST(RunCheck, JsonReportIsByteIdenticalAcrossThreadCounts) {
  const Fabric fabric(topo::paper_cluster(324));
  ForwardingTables tables = route::DModKRouter{}.compute(fabric);
  // Make the report non-trivial: one corrupted entry plus a random order.
  const topo::NodeId leaf =
      fabric.port(fabric.port(fabric.port_id(fabric.host_node(0), 0)).peer)
          .node;
  tables.set_out_port(leaf, 0, fabric.node(leaf).num_down_ports);
  const auto random_order = order::NodeOrdering::random(fabric, 11);
  CheckOptions options;
  options.ordering = &random_order;

  const auto render = [&](std::uint32_t threads) {
    const std::uint32_t saved = par::default_threads();
    par::set_default_threads(threads);
    const CheckReport report = run_check(fabric, tables, options);
    par::set_default_threads(saved);
    std::ostringstream oss;
    report.diagnostics.write_json(oss, {{"tool", "check_test"}});
    return oss.str();
  };
  const std::string one = render(1);
  const std::string eight = render(8);
  EXPECT_EQ(one, eight) << "the JSON report must not depend on --threads";
  EXPECT_NE(one.find("cdg-cycle"), std::string::npos);
}

}  // namespace
}  // namespace ftcf::check
