// Per-virtual-lane CDG search: one lane suffices on pristine fabrics, a
// crafted cross-destination cycle is broken by a 2-lane assignment, a
// per-destination routing loop is correctly reported unfixable, and the
// proposal is thread-count independent.
#include "check/vl.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "check/cdg.hpp"
#include "routing/dmodk.hpp"
#include "topology/presets.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {
namespace {

using route::ForwardingTables;
using topo::Fabric;
using topo::NodeId;

NodeId leaf_of(const Fabric& fabric, std::uint64_t host) {
  return fabric
      .port(fabric.port(fabric.port_id(fabric.host_node(host), 0)).peer)
      .node;
}

/// Port index on `from` whose cable reaches `to`.
std::uint32_t port_to(const Fabric& fabric, NodeId from, NodeId to) {
  const topo::Node& node = fabric.node(from);
  for (std::uint32_t i = 0; i < node.num_down_ports + node.num_up_ports; ++i) {
    const topo::PortId peer = fabric.port(fabric.port_id(from, i)).peer;
    if (peer != topo::kInvalidPort && fabric.port(peer).node == to) return i;
  }
  ADD_FAILURE() << "no cable " << fabric.node_name(from) << " -> "
                << fabric.node_name(to);
  return 0;
}

/// Close a 4-channel dependency cycle spanning two destinations: dest h0
/// detours spine0 -> leaf1 -> spine1 -> leaf0, dest h1 detours
/// spine1 -> leaf0 -> spine0 -> leaf1. Each destination's own dependency
/// chain stays acyclic, so separating h0 and h1 onto different lanes breaks
/// the combined cycle — the case virtual lanes exist for.
struct CrossDestCycle {
  std::uint64_t h0 = 0;
  std::uint64_t h1 = 0;
};

CrossDestCycle corrupt_cross_destination(const Fabric& fabric,
                                         ForwardingTables& tables) {
  const CrossDestCycle hosts{0, fabric.node(leaf_of(fabric, 0)).num_down_ports};
  const NodeId leaf0 = leaf_of(fabric, hosts.h0);
  const NodeId leaf1 = leaf_of(fabric, hosts.h1);
  const std::uint32_t up0 = fabric.node(leaf0).num_down_ports;
  const NodeId spine0 =
      fabric.port(fabric.port(fabric.port_id(leaf0, up0)).peer).node;
  const NodeId spine1 =
      fabric.port(fabric.port(fabric.port_id(leaf0, up0 + 1)).peer).node;
  tables.set_out_port(spine0, hosts.h0, port_to(fabric, spine0, leaf1));
  tables.set_out_port(leaf1, hosts.h0, port_to(fabric, leaf1, spine1));
  tables.set_out_port(spine1, hosts.h1, port_to(fabric, spine1, leaf0));
  tables.set_out_port(leaf0, hosts.h1, port_to(fabric, leaf0, spine0));
  return hosts;
}

TEST(Vl, PristineRoutingNeedsOneLane) {
  const Fabric fabric(topo::parse_pgft("PGFT(2; 4,4; 1,4; 1,1)"));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const VlAssignment assignment = propose_vl_assignment(fabric, tables, 4);
  EXPECT_EQ(assignment.num_lanes, 1u);
  EXPECT_TRUE(assignment.complete());
  const VlCdgAnalysis analysis = analyze_cdg_per_vl(fabric, tables, assignment);
  EXPECT_TRUE(analysis.all_acyclic());
  const route::CdgVerdict verdict = analysis.verdict();
  EXPECT_TRUE(verdict.acyclic);
  EXPECT_EQ(verdict.lanes, 1u);
}

TEST(Vl, TwoLanesBreakACrossDestinationCycle) {
  const Fabric fabric(topo::parse_pgft("PGFT(2; 4,4; 1,4; 1,1)"));
  ForwardingTables tables = route::DModKRouter{}.compute(fabric);
  const CrossDestCycle hosts = corrupt_cross_destination(fabric, tables);

  ASSERT_FALSE(analyze_cdg(fabric, tables).acyclic)
      << "the detours must close a single-lane cycle";

  const VlAssignment assignment = propose_vl_assignment(fabric, tables, 2);
  EXPECT_EQ(assignment.num_lanes, 2u);
  EXPECT_TRUE(assignment.complete());
  EXPECT_NE(assignment.lane_of_dest[hosts.h0],
            assignment.lane_of_dest[hosts.h1])
      << "the two cycle-closing destinations must land on different lanes";

  const VlCdgAnalysis analysis = analyze_cdg_per_vl(fabric, tables, assignment);
  ASSERT_EQ(analysis.num_lanes(), 2u);
  EXPECT_TRUE(analysis.all_acyclic());
  for (const CdgAnalysis& lane : analysis.lanes) EXPECT_TRUE(lane.acyclic);
  const route::CdgVerdict verdict = analysis.verdict();
  EXPECT_TRUE(verdict.acyclic);
  EXPECT_EQ(verdict.lanes, 2u);

  const std::string rendered = vl_assignment_to_string(assignment);
  EXPECT_NE(rendered.find("2 lane(s)"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("lane 1"), std::string::npos) << rendered;
}

TEST(Vl, PerDestinationRoutingLoopIsUnfixableByLanes) {
  const Fabric fabric(topo::fig4b_pgft16());
  ForwardingTables tables = route::DModKRouter{}.compute(fabric);
  // Host 0's own-leaf entry points back up: its packets loop leaf -> spine
  // -> leaf forever. That cycle lives inside destination 0's own dependency
  // set, so no lane count can break it.
  const NodeId leaf = leaf_of(fabric, 0);
  tables.set_out_port(leaf, 0, fabric.node(leaf).num_down_ports);

  const VlAssignment assignment = propose_vl_assignment(fabric, tables, 4);
  EXPECT_FALSE(assignment.complete());
  ASSERT_EQ(assignment.unassigned.size(), 1u);
  EXPECT_EQ(assignment.unassigned.front(), 0u);
  EXPECT_EQ(assignment.lane_of_dest[0], kNoLane);
  const std::string rendered = vl_assignment_to_string(assignment);
  EXPECT_NE(rendered.find("unassigned"), std::string::npos) << rendered;
}

TEST(Vl, ProposalIsIdenticalAcrossThreadCounts) {
  const Fabric fabric(topo::parse_pgft("PGFT(2; 4,4; 1,4; 1,1)"));
  ForwardingTables tables = route::DModKRouter{}.compute(fabric);
  corrupt_cross_destination(fabric, tables);

  const std::uint32_t saved = par::default_threads();
  par::set_default_threads(1);
  const VlAssignment one = propose_vl_assignment(fabric, tables, 2);
  par::set_default_threads(8);
  const VlAssignment eight = propose_vl_assignment(fabric, tables, 2);
  par::set_default_threads(saved);

  EXPECT_EQ(one.num_lanes, eight.num_lanes);
  EXPECT_EQ(one.lane_of_dest, eight.lane_of_dest);
  EXPECT_EQ(one.unassigned, eight.unassigned);
}

}  // namespace
}  // namespace ftcf::check
