// Adaptive-closure CDG prover: the routing relation mirrors the simulator's
// adaptive mode, pristine D-Mod-K fabrics stay deadlock-free under any
// up-port policy, and a single corrupted descent entry opens a cycle that
// only the adaptive closure can see — the deterministic CDG stays acyclic.
#include "check/cdg.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "routing/adaptive.hpp"
#include "routing/dmodk.hpp"
#include "topology/presets.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {
namespace {

using route::ForwardingTables;
using topo::Fabric;
using topo::NodeId;

NodeId leaf_of(const Fabric& fabric, std::uint64_t host) {
  return fabric
      .port(fabric.port(fabric.port_id(fabric.host_node(host), 0)).peer)
      .node;
}

std::uint32_t port_to(const Fabric& fabric, NodeId from, NodeId to) {
  const topo::Node& node = fabric.node(from);
  for (std::uint32_t i = 0; i < node.num_down_ports + node.num_up_ports; ++i) {
    const topo::PortId peer = fabric.port(fabric.port_id(from, i)).peer;
    if (peer != topo::kInvalidPort && fabric.port(peer).node == to) return i;
  }
  ADD_FAILURE() << "no cable " << fabric.node_name(from) << " -> "
                << fabric.node_name(to);
  return 0;
}

TEST(AdaptiveCdg, RelationMirrorsTheSimulatorSemantics) {
  const Fabric fabric(topo::fig4b_pgft16());
  const auto tables = route::DModKRouter{}.compute(fabric);
  std::vector<std::uint32_t> candidates;

  const NodeId leaf0 = leaf_of(fabric, 0);
  const std::uint32_t down = fabric.node(leaf0).num_down_ports;
  const std::uint32_t up = fabric.node(leaf0).num_up_ports;

  // Ancestor of the destination: exactly the LFT entry.
  ASSERT_EQ(route::adaptive_candidates(fabric, tables, leaf0, 0, candidates),
            1u);
  EXPECT_EQ(candidates.front(), tables.out_port(leaf0, 0));
  EXPECT_LT(candidates.front(), down) << "descent must use a down port";

  // Not an ancestor: every up port, whatever the tables say.
  const std::uint64_t remote = fabric.num_hosts() - 1;
  ASSERT_FALSE(fabric.is_ancestor_of_host(leaf0, remote));
  ASSERT_EQ(
      route::adaptive_candidates(fabric, tables, leaf0, remote, candidates),
      up);
  for (std::uint32_t q = 0; q < up; ++q) EXPECT_EQ(candidates[q], down + q);

  // Ancestor with no programmed entry: no candidates.
  ForwardingTables holed = tables;
  holed.clear_entry(leaf0, 0);
  EXPECT_EQ(route::adaptive_candidates(fabric, holed, leaf0, 0, candidates),
            0u);

  const route::AdaptiveRelationStats stats =
      route::adaptive_relation_stats(fabric, tables);
  EXPECT_EQ(stats.max_fanout, up);
  EXPECT_GT(stats.candidates, stats.pairs)
      << "the relation must be strictly wider than a function";
}

TEST(AdaptiveCdg, PristineDModKIsDeadlockFreeUnderAnyUpPortPolicy) {
  for (const char* spec :
       {"PGFT(2; 4,4; 1,2; 1,2)", "PGFT(2; 4,4; 1,4; 1,1)",
        "PGFT(3; 2,4,4; 1,2,2; 1,1,1)"}) {
    const Fabric fabric(topo::parse_pgft(spec));
    const auto tables = route::DModKRouter{}.compute(fabric);
    const AdaptiveCdgAnalysis analysis = analyze_adaptive_cdg(fabric, tables);
    EXPECT_TRUE(analysis.deadlock_free()) << spec;
    EXPECT_TRUE(analysis.cdg.cycle.empty()) << spec;
    EXPECT_GT(analysis.relation_pairs, 0u) << spec;
    // The union graph contains at least the deterministic dependencies.
    const CdgAnalysis det = analyze_cdg(fabric, tables);
    EXPECT_GE(analysis.cdg.num_dependencies, det.num_dependencies) << spec;
  }
}

TEST(AdaptiveCdg, OneCorruptDescentIsInvisibleDeterministicAllyButCyclicAdaptively) {
  const Fabric fabric(topo::fig4b_pgft16());
  ForwardingTables tables = route::DModKRouter{}.compute(fabric);

  // Dest 1 deterministically ascends into spine column 1 from every leaf, so
  // nothing deterministic ever enters the column-0 spines for dest 1. Point
  // one column-0 spine's dest-1 entry at the wrong leaf: the deterministic
  // CDG cannot reach it, but an adaptive ascent may legally enter that spine
  // and then *must* take the corrupt descent — closing a cycle with the
  // wrong leaf's all-up choice.
  const NodeId leaf0 = leaf_of(fabric, 0);
  const NodeId leaf1 = leaf_of(fabric, 4);
  const std::uint32_t det_up = tables.out_port(leaf1, 1);
  const NodeId det_spine =
      fabric.port(fabric.port(fabric.port_id(leaf1, det_up)).peer).node;
  NodeId wrong_spine = topo::kInvalidNode;
  const std::uint32_t down = fabric.node(leaf0).num_down_ports;
  for (std::uint32_t q = 0; q < fabric.node(leaf0).num_up_ports; ++q) {
    const NodeId s =
        fabric.port(fabric.port(fabric.port_id(leaf0, down + q)).peer).node;
    if (s != det_spine) {
      wrong_spine = s;
      break;
    }
  }
  ASSERT_NE(wrong_spine, topo::kInvalidNode);
  tables.set_out_port(wrong_spine, 1, port_to(fabric, wrong_spine, leaf1));

  const CdgAnalysis det = analyze_cdg(fabric, tables);
  EXPECT_TRUE(det.acyclic)
      << "the deterministic tables must look perfectly healthy";

  const AdaptiveCdgAnalysis adaptive = analyze_adaptive_cdg(fabric, tables);
  EXPECT_FALSE(adaptive.deadlock_free())
      << "some legal sequence of up-port choices must deadlock";
  ASSERT_FALSE(adaptive.cdg.cycle.empty());
  // The rendered cycle must pass through the corrupted spine.
  bool through_corrupt = false;
  for (const topo::PortId pid : adaptive.cdg.cycle)
    if (fabric.port(pid).node == wrong_spine) through_corrupt = true;
  EXPECT_TRUE(through_corrupt)
      << cycle_to_string(fabric, adaptive.cdg.cycle);
}

TEST(AdaptiveCdg, VerdictIsIdenticalAcrossThreadCounts) {
  const Fabric fabric(topo::parse_pgft("PGFT(3; 2,4,4; 1,2,2; 1,1,1)"));
  const auto tables = route::DModKRouter{}.compute(fabric);

  const std::uint32_t saved = par::default_threads();
  par::set_default_threads(1);
  const AdaptiveCdgAnalysis one = analyze_adaptive_cdg(fabric, tables);
  par::set_default_threads(8);
  const AdaptiveCdgAnalysis eight = analyze_adaptive_cdg(fabric, tables);
  par::set_default_threads(saved);

  EXPECT_EQ(one.cdg.num_dependencies, eight.cdg.num_dependencies);
  EXPECT_EQ(one.cdg.acyclic, eight.cdg.acyclic);
  EXPECT_EQ(one.relation_pairs, eight.relation_pairs);
  EXPECT_EQ(one.relation_choices, eight.relation_choices);
  EXPECT_EQ(one.max_fanout, eight.max_fanout);
}

}  // namespace
}  // namespace ftcf::check
