// Symbolic contention certifier: the Euclidean counting kernels against
// brute force, the displacement-algebra classifier against the generators,
// the prover against the enumerative certifier (byte-identical certificates
// whenever the proof applies), and the honesty contract — every input
// outside the closed form declines with a pinpointed reason, never a wrong
// proof. Includes the randomized-PGFT differential property sweep.
#include "check/symbolic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "cps/generators.hpp"
#include "routing/dmodk.hpp"
#include "topology/presets.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ftcf::check {
namespace {

using cps::AlgebraKind;
using cps::CpsKind;
using cps::SourceSet;
using cps::StageAlgebra;
using route::ForwardingTables;
using topo::Fabric;

bool has_rule(const Diagnostics& diag, const std::string& rule) {
  return std::any_of(diag.findings().begin(), diag.findings().end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

std::uint64_t brute_floor_sum(std::uint64_t n, std::uint64_t m,
                              std::uint64_t a, std::uint64_t b) {
  std::uint64_t sum = 0;
  for (std::uint64_t k = 0; k < n; ++k) sum += (a * k + b) / m;
  return sum;
}

std::uint64_t brute_count(std::uint64_t n, std::uint64_t base,
                          std::uint64_t stride, std::uint64_t m,
                          std::uint64_t w) {
  std::uint64_t count = 0;
  for (std::uint64_t k = 0; k < n; ++k)
    count += (base + stride * k) % m < w ? 1 : 0;
  return count;
}

TEST(SymbolicKernels, FloorSumMatchesBruteForce) {
  for (std::uint64_t n : {0ULL, 1ULL, 2ULL, 7ULL, 36ULL, 100ULL}) {
    for (std::uint64_t m : {1ULL, 2ULL, 3ULL, 6ULL, 17ULL, 36ULL}) {
      for (std::uint64_t a : {0ULL, 1ULL, 5ULL, 17ULL, 40ULL}) {
        for (std::uint64_t b : {0ULL, 1ULL, 11ULL, 35ULL, 99ULL}) {
          EXPECT_EQ(detail::floor_sum(n, m, a, b),
                    brute_floor_sum(n, m, a, b))
              << "n=" << n << " m=" << m << " a=" << a << " b=" << b;
        }
      }
    }
  }
}

TEST(SymbolicKernels, CountStridedModLtMatchesBruteForce) {
  for (std::uint64_t n : {0ULL, 1ULL, 5ULL, 48ULL, 101ULL}) {
    for (std::uint64_t base : {0ULL, 1ULL, 7ULL, 50ULL}) {
      for (std::uint64_t stride : {1ULL, 2ULL, 3ULL, 9ULL, 25ULL}) {
        for (std::uint64_t m : {1ULL, 2ULL, 6ULL, 16ULL, 35ULL}) {
          for (std::uint64_t w = 0; w <= m; w += (m > 4 ? m / 4 : 1)) {
            EXPECT_EQ(detail::count_strided_mod_lt(n, base, stride, m, w),
                      brute_count(n, base, stride, m, w))
                << "n=" << n << " base=" << base << " stride=" << stride
                << " m=" << m << " w=" << w;
          }
        }
      }
    }
  }
}

TEST(AlgebraClassify, DuplicateSourcesAreOpaque) {
  cps::Stage stage;
  stage.pairs = {{0, 1}, {0, 2}};
  EXPECT_EQ(cps::classify_stage_algebra(stage, 8).kind, AlgebraKind::kOpaque);
}

TEST(AlgebraClassify, OutOfRangeEndpointsAreOpaque) {
  cps::Stage stage;
  stage.pairs = {{0, 9}};
  EXPECT_EQ(cps::classify_stage_algebra(stage, 8).kind, AlgebraKind::kOpaque);
}

TEST(AlgebraClassify, RecognizesXorAndStridedSources) {
  cps::Stage stage;
  for (std::uint64_t i = 0; i < 8; ++i) stage.pairs.push_back({i, i ^ 2});
  const StageAlgebra a = cps::classify_stage_algebra(stage, 8);
  EXPECT_EQ(a.kind, AlgebraKind::kXor);
  EXPECT_EQ(a.xor_mask, 2u);
  ASSERT_TRUE(a.sources.strided);
  EXPECT_EQ(a.sources.base, 0u);
  EXPECT_EQ(a.sources.stride, 1u);
  EXPECT_EQ(a.sources.count, 8u);
}

TEST(AlgebraClassify, MixedDisplacementsAreOpaque) {
  cps::Stage stage;
  stage.pairs = {{0, 1}, {1, 3}};  // d = 1 then d = 2, masks 1 then 2
  EXPECT_EQ(cps::classify_stage_algebra(stage, 8).kind, AlgebraKind::kOpaque);
}

std::vector<std::uint64_t> expand(const SourceSet& s) {
  if (!s.strided) return s.values;
  std::vector<std::uint64_t> out;
  out.reserve(s.count);
  for (std::uint64_t k = 0; k < s.count; ++k) out.push_back(s.base + s.stride * k);
  return out;
}

// The analytic algebra (symbolic_sequence) must agree stage-by-stage with
// what the classifier recovers from the materialized generator output —
// this is what lets the pure-tuple prover skip materialization entirely.
TEST(AlgebraClassify, SymbolicSequenceMatchesGeneratedStages) {
  for (const CpsKind kind : cps::kAllCpsKinds) {
    for (const std::uint64_t n : {2ULL, 6ULL, 10ULL, 16ULL, 27ULL, 32ULL}) {
      const cps::Sequence generated = cps::generate(kind, n);
      const cps::SequenceAlgebra analytic = cps::symbolic_sequence(kind, n);
      ASSERT_EQ(analytic.stages.size(), generated.stages.size())
          << cps::cps_name(kind) << " n=" << n;
      EXPECT_EQ(analytic.name, generated.name);
      for (std::size_t s = 0; s < generated.stages.size(); ++s) {
        const StageAlgebra from_pairs =
            cps::classify_stage_algebra(generated.stages[s], n);
        const StageAlgebra& from_tuple = analytic.stages[s];
        ASSERT_EQ(from_tuple.kind, from_pairs.kind)
            << cps::cps_name(kind) << " n=" << n << " stage=" << s;
        EXPECT_NE(from_tuple.kind, AlgebraKind::kOpaque);
        if (from_tuple.kind == AlgebraKind::kShift)
          EXPECT_EQ(from_tuple.displacement % n, from_pairs.displacement % n);
        if (from_tuple.kind == AlgebraKind::kXor)
          EXPECT_EQ(from_tuple.xor_mask, from_pairs.xor_mask);
        if (from_tuple.kind != AlgebraKind::kEmpty)
          EXPECT_EQ(expand(from_tuple.sources), expand(from_pairs.sources))
              << cps::cps_name(kind) << " n=" << n << " stage=" << s;
      }
    }
  }
}

std::string cert_json(const Certificate& cert) {
  std::ostringstream os;
  write_certificate_json(os, cert);
  return os.str();
}

// Fabric-path prover vs the enumerative walk: whenever the proof applies,
// the certificates must render byte-identically.
TEST(SymbolicCertify, MatchesEnumerativeOnPaperClusterAllKinds) {
  const Fabric fabric(topo::paper_cluster(128));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto ordering = order::NodeOrdering::topology(fabric);
  for (const CpsKind kind : cps::kAllCpsKinds) {
    const cps::Sequence sequence = cps::generate(kind, fabric.num_hosts());
    const SymbolicProof proof = symbolic_certify(
        fabric, ordering, sequence, /*tables_canonical_dmodk=*/true);
    ASSERT_TRUE(proof.applicable)
        << cps::cps_name(kind) << ": " << proof.inapplicable_reason;
    const Certificate enumerative =
        certify_contention_freedom(fabric, tables, ordering, sequence);
    EXPECT_EQ(cert_json(proof.certificate), cert_json(enumerative))
        << cps::cps_name(kind);
  }
}

// Pure-tuple prover (never touches a Fabric) vs the fabric-path prover.
TEST(SymbolicCertify, TupleOverloadMatchesFabricOverload) {
  const topo::PgftSpec spec = topo::paper_cluster(128);
  const Fabric fabric(spec);
  const auto ordering = order::NodeOrdering::topology(fabric);
  for (const CpsKind kind : cps::kAllCpsKinds) {
    const SymbolicProof from_tuple = symbolic_certify(
        spec, cps::symbolic_sequence(kind, spec.num_hosts()));
    const SymbolicProof from_fabric = symbolic_certify(
        fabric, ordering, cps::generate(kind, spec.num_hosts()),
        /*tables_canonical_dmodk=*/true);
    ASSERT_TRUE(from_tuple.applicable) << cps::cps_name(kind);
    ASSERT_TRUE(from_fabric.applicable) << cps::cps_name(kind);
    EXPECT_EQ(cert_json(from_tuple.certificate),
              cert_json(from_fabric.certificate))
        << cps::cps_name(kind);
  }
}

TEST(SymbolicCertify, NonCanonicalTablesDecline) {
  const Fabric fabric(topo::paper_cluster(128));
  const auto ordering = order::NodeOrdering::topology(fabric);
  const auto sequence = cps::shift(fabric.num_hosts());
  const SymbolicProof proof = symbolic_certify(
      fabric, ordering, sequence, /*tables_canonical_dmodk=*/false);
  EXPECT_FALSE(proof.applicable);
  EXPECT_NE(proof.inapplicable_reason.find("provenance"), std::string::npos);
}

TEST(SymbolicCertify, NonIdentityOrderDeclinesNamingTheRank) {
  const Fabric fabric(topo::paper_cluster(128));
  const auto ordering = order::NodeOrdering::random(fabric, 7);
  const auto sequence = cps::shift(fabric.num_hosts());
  const SymbolicProof proof = symbolic_certify(
      fabric, ordering, sequence, /*tables_canonical_dmodk=*/true);
  EXPECT_FALSE(proof.applicable);
  EXPECT_NE(proof.inapplicable_reason.find("rank"), std::string::npos);
}

TEST(SymbolicCertify, NonClosedFormTupleDeclinesNamingTheLevel) {
  // Oversubscribed spine layer: PGFT(2; 4,4; 1,2; 1,1) has
  // W_2 * p_2 = 2 != M_1 = 4, so "up-link key == j mod M_2" is false.
  const topo::PgftSpec spec({4, 4}, {1, 2}, {1, 1});
  const SymbolicProof proof =
      symbolic_certify(spec, cps::symbolic_sequence(CpsKind::kShift, 16));
  ASSERT_FALSE(proof.applicable);
  ASSERT_TRUE(proof.inapplicable_level.has_value());
  EXPECT_EQ(*proof.inapplicable_level, 2u);
}

TEST(SymbolicCertify, MisalignedXorMaskDeclinesNamingStageAndLevel) {
  // rlft3_top(6, 9): M_1 = 6 — mask 2 has span 4, 6 % 4 != 0, and 6 is not
  // a power of two, so recursive doubling's second stage has no digit map.
  const topo::PgftSpec spec = topo::rlft3_top(6, 9);
  const SymbolicProof proof = symbolic_certify(
      spec, cps::symbolic_sequence(CpsKind::kRecursiveDoubling,
                                   spec.num_hosts()));
  ASSERT_FALSE(proof.applicable);
  EXPECT_TRUE(proof.inapplicable_stage.has_value());
  ASSERT_TRUE(proof.inapplicable_level.has_value());
  EXPECT_EQ(*proof.inapplicable_level, 1u);
}

TEST(SymbolicCertify, ReportEmitsCertSymbolicOk) {
  const topo::PgftSpec spec = topo::paper_cluster(128);
  const SymbolicProof proof = symbolic_certify(
      spec, cps::symbolic_sequence(CpsKind::kRing, spec.num_hosts()));
  ASSERT_TRUE(proof.applicable);
  Diagnostics diag;
  report_symbolic_proof(proof, diag);
  EXPECT_TRUE(has_rule(diag, "cert-symbolic-ok"));
  EXPECT_EQ(diag.exit_code(/*strict=*/true), 0);
}

TEST(SymbolicCertify, ProofJsonIsDeterministicAcrossThreadCounts) {
  const Fabric fabric(topo::paper_cluster(128));
  const auto ordering = order::NodeOrdering::topology(fabric);
  const auto sequence = cps::generate(CpsKind::kShift, fabric.num_hosts());
  std::vector<std::string> documents;
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    par::set_default_threads(threads);
    const SymbolicProof proof = symbolic_certify(
        fabric, ordering, sequence, /*tables_canonical_dmodk=*/true);
    std::ostringstream os;
    write_symbolic_proof_json(os, proof, {{"tool", "symbolic_test"}});
    documents.push_back(os.str());
  }
  par::set_default_threads(0);
  EXPECT_EQ(documents[0], documents[1]);
  EXPECT_EQ(documents[0], documents[2]);
}

TEST(RunCheck, SymbolicPathEmitsOkAndMatchingCertificate) {
  const Fabric fabric(topo::paper_cluster(128));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto ordering = order::NodeOrdering::topology(fabric);
  const auto sequence = cps::shift(fabric.num_hosts());
  CheckOptions options;
  options.ordering = &ordering;
  options.sequence = &sequence;
  options.certify = true;
  options.symbolic = true;
  options.symbolic_cross_check = true;
  options.tables_canonical_dmodk = true;
  const CheckReport report = run_check(fabric, tables, options);
  ASSERT_TRUE(report.symbolic.has_value());
  EXPECT_TRUE(report.symbolic->applicable);
  EXPECT_TRUE(has_rule(report.diagnostics, "cert-symbolic-ok"));
  EXPECT_TRUE(has_rule(report.diagnostics, "cert-ok"));
  EXPECT_FALSE(has_rule(report.diagnostics, "cert-symbolic-mismatch"));
  ASSERT_TRUE(report.certificate.has_value());
  EXPECT_TRUE(report.certificate->contention_free);
}

TEST(RunCheck, SymbolicFallsBackWhenProvenanceIsMissing) {
  const Fabric fabric(topo::paper_cluster(128));
  const auto tables = route::DModKRouter{}.compute(fabric);
  const auto ordering = order::NodeOrdering::topology(fabric);
  const auto sequence = cps::shift(fabric.num_hosts());
  CheckOptions options;
  options.ordering = &ordering;
  options.sequence = &sequence;
  options.certify = true;
  options.symbolic = true;
  options.tables_canonical_dmodk = false;
  const CheckReport report = run_check(fabric, tables, options);
  ASSERT_TRUE(report.symbolic.has_value());
  EXPECT_FALSE(report.symbolic->applicable);
  EXPECT_TRUE(has_rule(report.diagnostics, "symbolic-inapplicable"));
  EXPECT_TRUE(has_rule(report.diagnostics, "cert-ok"));  // enumerative ran
  ASSERT_TRUE(report.certificate.has_value());
  EXPECT_TRUE(report.certificate->contention_free);
}

// The randomized differential property: over a pool of PGFT tuples (closed
// form and not), node orders, and every CPS kind, the symbolic prover either
// (a) applies and reproduces the enumerative certificate byte-for-byte, or
// (b) declines with a reason — and the enumerative certifier always stands.
TEST(SymbolicProperty, RandomizedPgftDifferentialSweep) {
  const std::vector<topo::PgftSpec> pool = {
      topo::paper_cluster(128),   // closed form, 2-level
      topo::paper_cluster(324),   // closed form with p_2 = 2
      topo::rlft2_full(4),        // closed form, N = 32 (power of two)
      topo::rlft3_top(4, 4),      // closed form, 3-level, N = 64
      topo::rlft3_top(6, 9),      // closed form, M_1 = 6 (kills XOR)
      topo::fig4b_pgft16(),       // closed form with parallel ports (p_2 = 2)
      {{4, 4}, {1, 2}, {1, 1}},   // NOT closed form (oversubscribed spines)
  };
  std::uint64_t applicable_runs = 0;
  std::uint64_t declined_runs = 0;
  for (std::size_t spec_idx = 0; spec_idx < pool.size(); ++spec_idx) {
    const topo::PgftSpec& spec = pool[spec_idx];
    const Fabric fabric(spec);
    const auto tables = route::DModKRouter{}.compute(fabric);
    for (int order_case = 0; order_case < 2; ++order_case) {
      const auto ordering =
          order_case == 0
              ? order::NodeOrdering::topology(fabric)
              : order::NodeOrdering::random(
                    fabric, util::derive_seed(0xf17c5, spec_idx));
      for (const CpsKind kind : cps::kAllCpsKinds) {
        const cps::Sequence sequence =
            cps::generate(kind, fabric.num_hosts());
        const SymbolicProof proof = symbolic_certify(
            fabric, ordering, sequence, /*tables_canonical_dmodk=*/true);
        const Certificate enumerative =
            certify_contention_freedom(fabric, tables, ordering, sequence);
        if (proof.applicable) {
          ++applicable_runs;
          EXPECT_EQ(cert_json(proof.certificate), cert_json(enumerative))
              << spec.to_string() << " order=" << order_case << " "
              << cps::cps_name(kind);
        } else {
          ++declined_runs;
          EXPECT_FALSE(proof.inapplicable_reason.empty());
        }
      }
    }
  }
  // The sweep must genuinely exercise both sides of the frontier.
  EXPECT_GT(applicable_runs, 20u);
  EXPECT_GT(declined_runs, 20u);
}

}  // namespace
}  // namespace ftcf::check
