#include "cps/classify.hpp"

#include <gtest/gtest.h>

#include "cps/generators.hpp"

namespace ftcf::cps {
namespace {

TEST(Classify, PartialPermutationChecks) {
  EXPECT_TRUE(is_partial_permutation(Stage{{{0, 1}, {1, 2}}, {}}, 3));
  EXPECT_FALSE(is_partial_permutation(Stage{{{0, 1}, {0, 2}}, {}}, 3));  // dup src
  EXPECT_FALSE(is_partial_permutation(Stage{{{0, 2}, {1, 2}}, {}}, 3));  // dup dst
  EXPECT_FALSE(is_partial_permutation(Stage{{{1, 1}}, {}}, 3));          // self
  EXPECT_FALSE(is_partial_permutation(Stage{{{0, 5}}, {}}, 3));          // range
}

TEST(Classify, EveryGeneratedStageIsAPartialPermutation) {
  for (const CpsKind kind : kAllCpsKinds) {
    for (const std::uint64_t n : {2ull, 5ull, 8ull, 13ull, 16ull}) {
      const Sequence seq = generate(kind, n);
      for (const Stage& st : seq.stages)
        EXPECT_TRUE(is_partial_permutation(st, n))
            << cps_name(kind) << " n=" << n;
    }
  }
}

TEST(Classify, UnidirectionalKindsHaveConstantDisplacement) {
  // §III observation 1: constant displacement per stage.
  for (const CpsKind kind :
       {CpsKind::kRing, CpsKind::kShift, CpsKind::kBinomial,
        CpsKind::kDissemination, CpsKind::kTournament, CpsKind::kLinear}) {
    for (const std::uint64_t n : {4ull, 7ull, 16ull, 21ull}) {
      const Sequence seq = generate(kind, n);
      for (const Stage& st : seq.stages) {
        if (st.empty()) continue;
        EXPECT_TRUE(constant_displacement(st, n).has_value())
            << cps_name(kind) << " n=" << n;
      }
    }
  }
}

TEST(Classify, BidirectionalStagesHaveTwoDisplacementClasses) {
  const Sequence seq = recursive_doubling(8);
  for (const Stage& st : seq.stages) {
    const auto classes = displacement_classes(st, 8);
    if (classes.size() == 2) {
      EXPECT_EQ(classes[0] + classes[1], 8u);  // d and N-d
    } else {
      // The half-way exchange (d == N/2) folds onto a single class.
      ASSERT_EQ(classes.size(), 1u);
      EXPECT_EQ(classes[0], 4u);
    }
  }
}

TEST(Classify, DirectionClassification) {
  // §III observation 2: exactly two families.
  for (const CpsKind kind :
       {CpsKind::kRing, CpsKind::kShift, CpsKind::kBinomial,
        CpsKind::kDissemination, CpsKind::kTournament, CpsKind::kLinear}) {
    EXPECT_EQ(sequence_direction(generate(kind, 9)),
              Direction::kUnidirectional)
        << cps_name(kind);
  }
  EXPECT_EQ(sequence_direction(recursive_doubling(8)),
            Direction::kBidirectional);
  EXPECT_EQ(sequence_direction(recursive_halving(16)),
            Direction::kBidirectional);
  // With folds (non-power-of-two) the sequence mixes directions.
  EXPECT_EQ(sequence_direction(recursive_doubling(6)), Direction::kMixed);
}

TEST(Classify, ShiftContainsEveryUnidirectionalCps) {
  // §III observation 3: Shift is the superset of all unidirectional CPS.
  for (const CpsKind kind :
       {CpsKind::kRing, CpsKind::kBinomial, CpsKind::kDissemination,
        CpsKind::kTournament, CpsKind::kLinear, CpsKind::kShift}) {
    for (const std::uint64_t n : {5ull, 8ull, 12ull}) {
      EXPECT_TRUE(shift_contains(generate(kind, n)))
          << cps_name(kind) << " n=" << n;
    }
  }
  EXPECT_FALSE(shift_contains(recursive_doubling(8)));
}

TEST(Classify, DisplacementOfMixedStageIsNullopt) {
  const Stage mixed{{{0, 1}, {1, 3}}, {}};
  EXPECT_FALSE(constant_displacement(mixed, 4).has_value());
  EXPECT_EQ(displacement_classes(mixed, 4),
            (std::vector<std::uint64_t>{1, 2}));
}

}  // namespace
}  // namespace ftcf::cps
